// Package metrics provides the evaluation arithmetic shared by the
// experiment harness: slowdown ratios, geometric means and average
// indirect-target reduction (AIR) aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Slowdown returns cycles/base as the paper's slowdown factor.
func Slowdown(cycles, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(cycles) / float64(base)
}

// Geomean returns the geometric mean of vs, ignoring non-positive entries
// (benchmarks a scheme failed to run are excluded, as in the paper's
// per-scheme geomeans).
func Geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// AIRAccumulator aggregates per-CTI target-set fractions into the average
// indirect-target reduction metric of Zhang & Sekar: AIR = 1 - mean(|T|/S).
type AIRAccumulator struct {
	sumFrac float64
	sites   int
}

// Add records one indirect CTI with |T| allowed targets out of a space of S.
func (a *AIRAccumulator) Add(targets, space float64) {
	if space <= 0 {
		return
	}
	f := targets / space
	if f > 1 {
		f = 1
	}
	a.sumFrac += f
	a.sites++
}

// Sites returns the number of recorded CTIs.
func (a *AIRAccumulator) Sites() int { return a.sites }

// Percent returns the AIR as a percentage (higher is better).
func (a *AIRAccumulator) Percent() float64 {
	if a.sites == 0 {
		return 0
	}
	return 100 * (1 - a.sumFrac/float64(a.sites))
}

// Row is one labelled series of per-benchmark values; Table formats rows the
// way the paper's figures report them.
type Row struct {
	Label  string
	Values map[string]float64
}

// FormatTable renders rows as a table with one line per benchmark and one
// column per row label, appending a geomean line. Missing values print as
// "x" (a scheme that failed to run that benchmark, as in the figures).
func FormatTable(title string, benchmarks []string, rows []Row, unit string) string {
	out := title + "\n"
	out += fmt.Sprintf("%-14s", "benchmark")
	for _, r := range rows {
		out += fmt.Sprintf("%16s", r.Label)
	}
	out += "\n"
	perRow := make([][]float64, len(rows))
	for _, bm := range benchmarks {
		out += fmt.Sprintf("%-14s", bm)
		for i, r := range rows {
			v, ok := r.Values[bm]
			if !ok {
				out += fmt.Sprintf("%16s", "x")
				continue
			}
			if v > 0 {
				perRow[i] = append(perRow[i], v)
			}
			out += fmt.Sprintf("%16.2f", v)
		}
		out += "\n"
	}
	out += fmt.Sprintf("%-14s", "geomean")
	for i := range rows {
		out += fmt.Sprintf("%16.2f", Geomean(perRow[i]))
	}
	if unit != "" {
		out += "  " + unit
	}
	out += "\n"
	return out
}

// SortedKeys returns map keys in sorted order (stable table output).
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
