package metrics

import "math/bits"

// Coverage feedback for the fuzzing subsystem (internal/fuzz): a fixed-size
// bitmap over hashed coverage features. Features are arbitrary uint64s —
// executed-block addresses from the machine or the dynamic modifier, or
// synthetic (stage, error-class) tokens from robustness harnesses. The
// bitmap is an AFL-style lossy set: collisions are tolerated because the
// fuzzer only needs a monotone "have we seen something new" signal.

// BitmapBits is the number of bits in a coverage bitmap. 64K bits keeps the
// collision rate negligible for the block counts this stack produces while
// letting campaigns merge bitmaps cheaply.
const BitmapBits = 1 << 16

// Bitmap is a fixed-size coverage bitmap.
type Bitmap struct {
	bits [BitmapBits / 64]uint64
	n    int
}

// Mix64 is a splitmix64 finaliser, the hash used to map coverage features
// to bitmap bits. Exported so feature producers can combine multiple values
// into one feature (Mix64(a) ^ Mix64(b) style) without importing a second
// hashing scheme.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add records one coverage feature and reports whether its bit was new.
func (b *Bitmap) Add(feature uint64) bool {
	h := Mix64(feature) % BitmapBits
	w, m := h/64, uint64(1)<<(h%64)
	if b.bits[w]&m != 0 {
		return false
	}
	b.bits[w] |= m
	b.n++
	return true
}

// AddEdge records an (from, to) edge feature, the classic AFL edge signal.
func (b *Bitmap) AddEdge(from, to uint64) bool {
	return b.Add(Mix64(from)<<1 ^ Mix64(to))
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.n }

// NewBits returns how many of o's set bits are absent from b, without
// modifying either bitmap.
func (b *Bitmap) NewBits(o *Bitmap) int {
	n := 0
	for i, w := range o.bits {
		n += bits.OnesCount64(w &^ b.bits[i])
	}
	return n
}

// Merge ors o into b and returns the number of bits that were new to b.
func (b *Bitmap) Merge(o *Bitmap) int {
	added := 0
	for i, w := range o.bits {
		nw := w &^ b.bits[i]
		if nw != 0 {
			added += bits.OnesCount64(nw)
			b.bits[i] |= nw
		}
	}
	b.n += added
	return added
}

// Clone returns a copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := *b
	return &c
}
