package metrics

import "testing"

func TestBitmapAddAndCount(t *testing.T) {
	var b Bitmap
	if !b.Add(1) {
		t.Fatal("first Add(1) not new")
	}
	if b.Add(1) {
		t.Fatal("second Add(1) reported new")
	}
	// Distinct features land in distinct buckets (with Mix64 diffusion a
	// small set must not collide).
	for v := uint64(2); v < 100; v++ {
		b.Add(v)
	}
	if c := b.Count(); c < 95 || c > 99 {
		t.Fatalf("Count = %d after 99 distinct features", c)
	}
}

func TestBitmapNewBitsAndMerge(t *testing.T) {
	var a, b Bitmap
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	if n := a.NewBits(&b); n != 1 {
		t.Fatalf("NewBits = %d, want 1 (feature 3)", n)
	}
	if n := a.Merge(&b); n != 1 {
		t.Fatalf("Merge returned %d new bits, want 1", n)
	}
	if n := a.NewBits(&b); n != 0 {
		t.Fatalf("NewBits after merge = %d, want 0", n)
	}
	if a.Count() != 3 {
		t.Fatalf("Count after merge = %d, want 3", a.Count())
	}
}

func TestBitmapClone(t *testing.T) {
	var a Bitmap
	a.Add(7)
	c := a.Clone()
	c.Add(8)
	if a.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: a=%d c=%d", a.Count(), c.Count())
	}
}

func TestAddEdge(t *testing.T) {
	var b Bitmap
	if !b.AddEdge(1, 2) {
		t.Fatal("first edge not new")
	}
	if b.AddEdge(1, 2) {
		t.Fatal("repeat edge reported new")
	}
	if !b.AddEdge(2, 1) {
		t.Fatal("reversed edge collided with forward edge")
	}
}
