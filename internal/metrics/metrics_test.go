package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSlowdown(t *testing.T) {
	if got := Slowdown(300, 100); got != 3 {
		t.Errorf("Slowdown = %f", got)
	}
	if got := Slowdown(100, 0); got != 0 {
		t.Errorf("Slowdown by zero base = %f", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f, want 4", got)
	}
	// Non-positive entries excluded.
	if got := Geomean([]float64{2, 8, 0, -1}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean with zeros = %f, want 4", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %f", got)
	}
}

func TestAIRAccumulator(t *testing.T) {
	var a AIRAccumulator
	if a.Percent() != 0 {
		t.Error("empty AIR should be 0")
	}
	a.Add(10, 1000)  // 1% of space
	a.Add(30, 1000)  // 3%
	a.Add(999, 1000) // 99.9%... mean frac = (0.01+0.03+0.999)/3
	want := 100 * (1 - (0.01+0.03+0.999)/3)
	if math.Abs(a.Percent()-want) > 1e-9 {
		t.Errorf("AIR = %f, want %f", a.Percent(), want)
	}
	if a.Sites() != 3 {
		t.Errorf("sites = %d", a.Sites())
	}
	// Fraction clamps at 1.
	var b AIRAccumulator
	b.Add(5000, 1000)
	if b.Percent() != 0 {
		t.Errorf("clamped AIR = %f, want 0", b.Percent())
	}
	// Property: AIR always within [0, 100].
	f := func(t1, t2, s uint16) bool {
		var acc AIRAccumulator
		acc.Add(float64(t1), float64(s)+1)
		acc.Add(float64(t2), float64(s)+1)
		p := acc.Percent()
		return p >= 0 && p <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{
		{Label: "toolA", Values: map[string]float64{"b1": 2.0, "b2": 8.0}},
		{Label: "toolB", Values: map[string]float64{"b1": 1.5}},
	}
	out := FormatTable("Figure X", []string{"b1", "b2"}, rows, "slowdown")
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "toolA") {
		t.Fatalf("table missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Error("missing value not rendered as x")
	}
	if !strings.Contains(out, "4.00") {
		t.Errorf("geomean of 2,8 missing:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]float64{"c": 1, "a": 2, "b": 3})
	if strings.Join(got, "") != "abc" {
		t.Errorf("SortedKeys = %v", got)
	}
}
