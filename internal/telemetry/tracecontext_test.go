package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("root")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("minted context invalid: %+v", sc)
	}
	hdr := FormatTraceparent(sc)
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent = %q, want 00-...-01", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	// Unsampled flag round-trips too.
	sc2 := sc
	sc2.Sampled = false
	got2, ok := ParseTraceparent(FormatTraceparent(sc2))
	if !ok || got2.Sampled {
		t.Fatalf("unsampled round trip: %+v ok=%v", got2, ok)
	}
	sp.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("valid header rejected")
	}
	bad := []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",  // short trace id
		"00-" + strings.Repeat("0", 32) + "-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-" + strings.Repeat("0", 16) + "-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g",
		"garbage",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted malformed traceparent %q", s)
		}
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	tr := NewTracer(4)
	parent := tr.Start("client")
	sc := parent.Context()

	sp := tr.StartRemote(sc, "server")
	if sp.TraceID() != sc.TraceID {
		t.Fatalf("remote span trace = %s, want %s", sp.TraceID(), sc.TraceID)
	}
	if sp.rec.ParentID != sc.SpanID || !sp.rec.Remote {
		t.Fatalf("remote span parent = %q remote=%v, want %q/true",
			sp.rec.ParentID, sp.rec.Remote, sc.SpanID)
	}
	sp.End()
	parent.End()

	// An invalid parent degrades to a fresh root trace.
	fresh := tr.StartRemote(SpanContext{}, "orphan")
	if fresh.TraceID() == sc.TraceID || fresh.TraceID() == "" {
		t.Fatalf("invalid parent should mint a fresh trace, got %q", fresh.TraceID())
	}
	if fresh.rec.Remote || fresh.rec.ParentID != "" {
		t.Fatal("degraded span must not claim a remote parent")
	}
	fresh.End()
}

func TestContextCarriesSpan(t *testing.T) {
	tr := NewTracer(4)
	root, ctx := tr.StartFrom(context.Background(), "root")
	if SpanFromContext(ctx) != root {
		t.Fatal("StartFrom did not store its span in the context")
	}
	child, _ := tr.StartFrom(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace = %s, want %s", child.TraceID(), root.TraceID())
	}
	if child.rec.ParentID != root.rec.SpanID {
		t.Fatal("child not parented under the context span")
	}
	child.End()
	root.End()

	// Nil-safety: a nil tracer and a bare context are inert.
	var nilTr *Tracer
	sp, ctx2 := nilTr.StartFrom(context.Background(), "inert")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if SpanFromContext(ctx2) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSnapshotOrderLimitAndFind(t *testing.T) {
	tr := NewTracer(8)
	for _, name := range []string{"a", "b", "c"} {
		sp := tr.Start(name)
		sp.End()
	}
	all := tr.Snapshot(0)
	if len(all) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(all))
	}
	// Newest first: with equal timestamps the arrival tiebreak still puts
	// the most recent first; with distinct timestamps Start ordering wins.
	for i := 0; i+1 < len(all); i++ {
		if all[i].Start.Before(all[i+1].Start) {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
	if lim := tr.Snapshot(2); len(lim) != 2 || lim[0] != all[0] {
		t.Fatalf("Snapshot(2) = %d records, want prefix of full snapshot", len(lim))
	}
	want := all[1]
	if got := tr.Find(want.TraceID); got != want {
		t.Fatalf("Find(%s) = %v, want %v", want.TraceID, got, want)
	}
	if tr.Find("0af7651916cd43dd8448eb211c80319c") != nil {
		t.Fatal("Find of unknown trace returned a record")
	}
}

func TestSpanEventsAndError(t *testing.T) {
	tr := NewTracer(2)
	sp := tr.Start("work")
	sp.AddEvent("admitted", String("queue", "fast"))
	sp.SetError("boom")
	sp.End()
	rec := tr.Recent()[0]
	if len(rec.Events) != 1 || rec.Events[0].Name != "admitted" {
		t.Fatalf("events = %+v", rec.Events)
	}
	if rec.Status != "error" {
		t.Fatalf("status = %q, want error", rec.Status)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.Observe(0.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, `# {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`) {
		t.Fatalf("exposition lacks exemplar:\n%s", text)
	}
	samples, err := ParsePrometheus([]byte(text))
	if err != nil {
		t.Fatalf("exposition with exemplars does not parse: %v", err)
	}
	var withEx, without int
	for _, s := range samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		if s.Exemplar != nil {
			withEx++
			if got := s.Exemplar["trace_id"]; got != "0af7651916cd43dd8448eb211c80319c" {
				t.Fatalf("exemplar trace_id = %q", got)
			}
			if s.ExemplarValue != 0.05 {
				t.Fatalf("exemplar value = %v, want 0.05", s.ExemplarValue)
			}
		} else {
			without++
		}
	}
	if withEx == 0 {
		t.Fatal("no bucket sample carried the exemplar")
	}
	if without == 0 {
		t.Fatal("expected at least one bucket without an exemplar")
	}
}

// TestExemplarDisabledBitIdentical is the PR 5 invariant extended to
// exemplars: an untraced observation (empty trace ID) must render exactly
// the bytes a plain Observe renders.
func TestExemplarDisabledBitIdentical(t *testing.T) {
	mk := func(observe func(*Histogram)) string {
		r := NewRegistry()
		h := r.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
		observe(h)
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		return buf.String()
	}
	plain := mk(func(h *Histogram) { h.Observe(0.05) })
	empty := mk(func(h *Histogram) { h.ObserveExemplar(0.05, "") })
	if plain != empty {
		t.Fatalf("empty-trace exemplar changed exposition bytes:\n%s\n---\n%s", plain, empty)
	}
}
