package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer produced a live span")
	}
	// All nil-span methods must be no-ops, not panics.
	sp.SetAttr(String("k", "v"))
	c := sp.Child("child", Int("i", 1))
	c.End()
	sp.End()
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer Recent = %v, want nil", got)
	}
}

func TestDisabledGlobalStartSpan(t *testing.T) {
	SetTracer(nil)
	if sp := StartSpan("off"); sp != nil {
		t.Fatal("StartSpan with no tracer installed returned a live span")
	}
	if T() != nil {
		t.Fatal("T() non-nil after SetTracer(nil)")
	}
}

func TestSpanHierarchyAndRing(t *testing.T) {
	tr := NewTracer(3)
	root := tr.Start("analyze", String("module", "libj.jef"))
	cfgSp := root.Child("cfg")
	cfgSp.End()
	live := root.Child("liveness", Int("blocks", 12))
	live.SetAttr(Uint("iters", 3))
	live.End()
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.Name != "analyze" || len(got.Children) != 2 {
		t.Fatalf("trace = %q with %d children, want analyze/2", got.Name, len(got.Children))
	}
	if got.Children[0].Name != "cfg" || got.Children[1].Name != "liveness" {
		t.Fatalf("children = %q, %q", got.Children[0].Name, got.Children[1].Name)
	}
	if len(got.Children[1].Attrs) != 2 {
		t.Fatalf("liveness attrs = %v", got.Children[1].Attrs)
	}
	if got.Duration < 0 || got.Children[0].Duration < 0 {
		t.Fatal("negative span duration")
	}

	// Ring eviction: capacity 3 retains only the newest three roots.
	for _, name := range []string{"a", "b", "c", "d"} {
		s := tr.Start(name)
		s.End()
	}
	recent = tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(recent))
	}
	for i, want := range []string{"b", "c", "d"} {
		if recent[i].Name != want {
			t.Fatalf("ring[%d] = %q, want %q", i, recent[i].Name, want)
		}
	}

	// The records must serialize (GET /trace contract).
	if _, err := json.Marshal(recent); err != nil {
		t.Fatalf("marshal traces: %v", err)
	}
}

func TestChildEndAfterRootPublished(t *testing.T) {
	// A child ended after its root is published must still land in the
	// published record (the record is shared, not copied).
	tr := NewTracer(2)
	root := tr.Start("r")
	c := root.Child("slow")
	root.End()
	c.End()
	recent := tr.Recent()
	if len(recent) != 1 || len(recent[0].Children) != 1 {
		t.Fatalf("recent = %+v", recent)
	}
	if recent[0].Children[0].Duration == 0 {
		t.Error("late child's duration not recorded")
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start("req")
				ch := sp.Child("work")
				ch.SetAttr(Int("i", int64(i)))
				ch.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if len(tr.Recent()) != 8 {
		t.Fatalf("ring size = %d, want 8", len(tr.Recent()))
	}
}

func BenchmarkDisabledStartSpan(b *testing.B) {
	SetTracer(nil)
	for i := 0; i < b.N; i++ {
		sp := StartSpan("hot")
		sp.Child("child").End()
		sp.End()
	}
}
