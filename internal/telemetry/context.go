package telemetry

import "context"

// spanKey keys the active span in a context.Context.
type spanKey struct{}

// ContextWithSpan returns a context carrying s as the active span. A nil
// span is carried as "no span" so SpanFromContext stays nil-safe.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartFrom begins a span parented under the span carried by ctx; when ctx
// carries none it begins a root span on t. It returns the new span and a
// derived context carrying it. Both a nil tracer and a nil context span
// yield a nil (inert) span and the original context, so disabled tracing
// costs one context lookup and nothing else.
func (t *Tracer) StartFrom(ctx context.Context, name string, attrs ...Attr) (*Span, context.Context) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.Child(name, attrs...)
		return s, ContextWithSpan(ctx, s)
	}
	s := t.Start(name, attrs...)
	if s == nil {
		return nil, ctx
	}
	return s, ContextWithSpan(ctx, s)
}

// StartSpanFrom is StartFrom on the process-wide tracer: a child of the
// context's span when one is active, else a root span on the global tracer
// (nil and inert when tracing is disabled).
func StartSpanFrom(ctx context.Context, name string, attrs ...Attr) (*Span, context.Context) {
	return global.Load().StartFrom(ctx, name, attrs...)
}
