package telemetry

import (
	"strings"
	"testing"
)

func TestNilProfileIsInert(t *testing.T) {
	var p *Profile
	p.Charge(CCMemCheck, 100, 10) // must not panic
	if p.TotalCycles() != 0 || p.TotalInstrs() != 0 {
		t.Fatal("nil profile accumulated")
	}
	if b := p.Breakdown(); b != (Breakdown{}) {
		t.Fatalf("nil breakdown = %+v", b)
	}
	if p.Table() != "" {
		t.Fatal("nil profile renders a table")
	}
}

func TestBreakdownFoldsAndSums(t *testing.T) {
	p := &Profile{}
	p.Charge(CCApp, 1000, 500)
	p.Charge(CCMemCheck, 40, 20)
	p.Charge(CCDefCheck, 30, 15)
	p.Charge(CCCFICheck, 20, 10)
	p.Charge(CCCanary, 8, 4)
	p.Charge(CCDefStore, 6, 3)
	p.Charge(CCShadowStack, 4, 2)
	p.Charge(CCElided, 0, 0)
	p.Charge(CCDispatch, 275, 0)
	p.Charge(CCOther, 7, 7)

	b := p.Breakdown()
	if b.App != 1000 || b.Check != 90 || b.ShadowUpdate != 18 ||
		b.Dispatch != 275 || b.Other != 7 || b.Elided != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Overhead() != 390 {
		t.Fatalf("overhead = %d, want 390", b.Overhead())
	}
	if b.Total() != p.TotalCycles() || b.Total() != 1390 {
		t.Fatalf("total = %d, profile total = %d", b.Total(), p.TotalCycles())
	}
	if p.TotalInstrs() != 561 {
		t.Fatalf("instrs = %d, want 561", p.TotalInstrs())
	}
}

func TestCostCenterNamesAndTable(t *testing.T) {
	seen := map[string]bool{}
	for cc := CostCenter(0); cc < NumCostCenters; cc++ {
		n := cc.String()
		if n == "" || strings.HasPrefix(n, "cc(") {
			t.Fatalf("cost center %d unnamed", cc)
		}
		if seen[n] {
			t.Fatalf("duplicate cost-center name %q", n)
		}
		seen[n] = true
	}
	p := &Profile{}
	p.Charge(CCApp, 900, 450)
	p.Charge(CCMemCheck, 100, 50)
	tab := p.Table()
	for _, want := range []string{"app", "mem-check", "total", "90.00%", "10.00%"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if strings.Contains(tab, "cfi-check") {
		t.Errorf("table shows zero center:\n%s", tab)
	}
}

func BenchmarkDisabledProfileCharge(b *testing.B) {
	var p *Profile
	for i := 0; i < b.N; i++ {
		p.Charge(CCApp, 2, 1)
	}
}
