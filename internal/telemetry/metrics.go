package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in Prometheus text
// exposition format. Families and series render in sorted order, so two
// scrapes differ only in sample values. Registration is idempotent: asking
// for an already-registered (name, labels) series returns the existing
// collector, so hot paths may re-register instead of caching handles.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

type family struct {
	name, help, typ string
	series          map[string]collector // key: rendered label pairs, "" for none
}

// collector renders one series' sample lines.
type collector interface {
	sample(w io.Writer, name, labels string)
}

// Counter is a monotonically increasing metric. Nil counters ignore writes.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) sample(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

// counterFunc exposes an externally maintained monotonic counter.
type counterFunc func() uint64

func (f counterFunc) sample(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, f())
}

// Gauge is a settable metric. Nil gauges ignore writes.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) sample(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// gaugeFunc exposes an externally maintained value.
type gaugeFunc func() float64

func (f gaugeFunc) sample(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f()))
}

// Histogram is a fixed-bucket histogram of float64 observations; the +Inf
// bucket is implicit. Nil histograms ignore observations. Each bucket can
// carry one exemplar — the trace ID of the most recent observation that
// landed in it — rendered in OpenMetrics exemplar syntax so a slow bucket
// links to a concrete trace.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // len(uppers)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64

	exMu sync.Mutex
	ex   []exemplar // len(uppers)+1, parallel to counts
}

// exemplar links one bucket to the trace that last landed in it.
type exemplar struct {
	traceID string
	value   float64
	set     bool
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one observation and, when traceID is non-empty,
// attaches it as the observed bucket's exemplar. An empty traceID is
// exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.exMu.Lock()
	h.ex[i] = exemplar{traceID: traceID, value: v, set: true}
	h.exMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) sample(w io.Writer, name, labels string) {
	h.exMu.Lock()
	ex := append([]exemplar(nil), h.ex...)
	h.exMu.Unlock()
	cum := uint64(0)
	for i, ub := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
			mergeLabels(labels, `le="`+formatFloat(ub)+`"`), cum, renderExemplar(ex[i]))
	}
	cum += h.counts[len(h.uppers)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, mergeLabels(labels, `le="+Inf"`),
		cum, renderExemplar(ex[len(h.uppers)]))
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels,
		formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// renderExemplar renders one bucket exemplar in OpenMetrics syntax
// (` # {trace_id="..."} value`), or "" for an unset exemplar.
func renderExemplar(e exemplar) string {
	if !e.set {
		return ""
	}
	return ` # {trace_id="` + escapeLabel(e.traceID) + `"} ` + formatFloat(e.value)
}

// Counter returns (registering on first use) the counter series for name
// and the alternating key/value label pairs. Nil registries return nil.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c, _ := r.register(name, help, "counter", labels, func() collector {
		return &Counter{}
	}).(*Counter)
	return c
}

// CounterFunc registers a counter series backed by fn — how existing
// atomics (anserve scheduler/cache counters) surface without restructuring.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.register(name, help, "counter", labels, func() collector {
		return counterFunc(fn)
	})
}

// Gauge returns (registering on first use) the gauge series for name.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g, _ := r.register(name, help, "gauge", labels, func() collector {
		return &Gauge{}
	}).(*Gauge)
	return g
}

// GaugeFunc registers a gauge series backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", labels, func() collector {
		return gaugeFunc(fn)
	})
}

// Histogram returns (registering on first use) the histogram series for
// name with the given ascending upper bucket bounds (+Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	h, _ := r.register(name, help, "histogram", labels, func() collector {
		uppers := append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(uppers) {
			panic("telemetry: histogram buckets must be ascending: " + name)
		}
		return &Histogram{
			uppers: uppers,
			counts: make([]atomic.Uint64, len(uppers)+1),
			ex:     make([]exemplar, len(uppers)+1),
		}
	}).(*Histogram)
	return h
}

func (r *Registry) register(name, help, typ string, labels []string, mk func() collector) collector {
	if r == nil {
		return nil
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]collector{}}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s",
			name, f.typ, typ))
	}
	if c, ok := f.series[key]; ok {
		return c
	}
	c := mk()
	f.series[key] = c
	return c
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(w, "# HELP %s %s\n", n, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].sample(w, n, k)
		}
	}
}

// renderLabels turns alternating key/value pairs into a canonical
// `{k="v",...}` block (keys sorted), or "" for no labels.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label key/value list")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices an extra pair (already rendered, e.g. `le="0.5"`)
// into a rendered label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
