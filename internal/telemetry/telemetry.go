// Package telemetry is Janitizer's stdlib-only observability layer: a
// hierarchical span tracer with a ring buffer of recent traces, a
// Prometheus-style metrics registry (counters, gauges, fixed-bucket
// histograms, deterministic text exposition), and a per-rule cost-center
// profiler that attributes instrumentation cycles back to the kind of
// rewrite rule that emitted them — Valgrind-style cost-center accounting
// for the emulated pipeline.
//
// Everything is off by default and nil-safe: every method on a nil
// *Tracer, *Span, *Profile, *Counter, *Gauge or *Histogram is a no-op, so
// pipeline code can be instrumented unconditionally without configuration
// plumbing. Telemetry never touches the machine's cycle model — attaching
// or detaching it cannot change a run's measured cycles or instructions.
package telemetry

import "sync/atomic"

// global is the process-wide tracer used by StartSpan; nil (the default)
// disables pipeline tracing entirely.
var global atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer behind StartSpan.
// Passing nil restores the disabled default.
func SetTracer(t *Tracer) { global.Store(t) }

// T returns the process-wide tracer, or nil when tracing is disabled.
func T() *Tracer { return global.Load() }

// StartSpan begins a root span on the process-wide tracer. With tracing
// disabled it returns a nil span, whose methods all do nothing.
func StartSpan(name string, attrs ...Attr) *Span {
	return global.Load().Start(name, attrs...)
}
