package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jz_requests_total", "Requests served.")
	c.Inc()
	c.Add(2)
	r.Counter("jz_requests_total", "Requests served.").Inc() // idempotent registration
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("jz_workers", "Worker pool size.")
	g.Set(7)
	g.Add(1.5)
	r.CounterFunc("jz_cache_hits_total", "Cache hits by tier.",
		func() uint64 { return 11 }, "tier", "mem")
	r.CounterFunc("jz_cache_hits_total", "Cache hits by tier.",
		func() uint64 { return 3 }, "tier", "disk")
	h := r.Histogram("jz_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "tool", "jasan")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE jz_requests_total counter\n",
		"jz_requests_total 4\n",
		"# TYPE jz_workers gauge\n",
		"jz_workers 8.5\n",
		`jz_cache_hits_total{tier="disk"} 3` + "\n",
		`jz_cache_hits_total{tier="mem"} 11` + "\n",
		`jz_latency_seconds_bucket{tool="jasan",le="0.01"} 1` + "\n",
		`jz_latency_seconds_bucket{tool="jasan",le="0.1"} 2` + "\n",
		`jz_latency_seconds_bucket{tool="jasan",le="1"} 2` + "\n",
		`jz_latency_seconds_bucket{tool="jasan",le="+Inf"} 3` + "\n",
		`jz_latency_seconds_count{tool="jasan"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	samples, err := ParsePrometheus([]byte(out))
	if err != nil {
		t.Fatalf("own exposition unparseable: %v\n%s", err, out)
	}
	var sum float64
	for _, s := range samples {
		if s.Name == "jz_latency_seconds_sum" && s.Label("tool") == "jasan" {
			sum = s.Value
		}
	}
	if math.Abs(sum-5.055) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.055", sum)
	}
}

func TestExpositionDeterministicModuloValues(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, tier := range order {
			r.CounterFunc("jz_hits_total", "h", func() uint64 { return 1 }, "tier", tier)
		}
		r.Gauge("jz_a", "a").Set(1)
		r.Counter("jz_z", "z").Inc()
		var b strings.Builder
		r.WritePrometheus(&b)
		return b.String()
	}
	if a, b := build([]string{"mem", "disk"}), build([]string{"disk", "mem"}); a != b {
		t.Fatalf("exposition depends on registration order:\n%s\n--- vs ---\n%s", a, b)
	}
}

func TestNilRegistryAndCollectors(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("g", "g")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("h", "h", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	r.CounterFunc("cf", "cf", func() uint64 { return 1 })
	r.GaugeFunc("gf", "gf", func() float64 { return 1 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry exposition = %q", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("jz_esc_total", "with \"quotes\" and\nnewline",
		"path", `a\b"c`+"\n").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	samples, err := ParsePrometheus([]byte(b.String()))
	if err != nil {
		t.Fatalf("escaped exposition unparseable: %v\n%s", err, b.String())
	}
	if len(samples) != 1 || samples[0].Label("path") != `a\b"c`+"\n" {
		t.Fatalf("label round-trip = %+v", samples)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1badname 3\n",
		"name{l=\"v\" 3\n",
		"name 1 2 3\n",
		"name notafloat\n",
		"# TYPE jz_x flavour\n",
		"name{2l=\"v\"} 3\n",
	} {
		if _, err := ParsePrometheus([]byte(bad)); err == nil {
			t.Errorf("parsed malformed input %q", bad)
		}
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("jz_c_total", "c").Inc()
				r.Gauge("jz_g", "g").Add(1)
				r.Histogram("jz_h", "h", []float64{10, 100}, "k", "v").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("jz_c_total", "c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Gauge("jz_g", "g").Value(); got != 1600 {
		t.Fatalf("gauge = %v, want 1600", got)
	}
	if got := r.Histogram("jz_h", "h", []float64{10, 100}, "k", "v").Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}
