package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar holds the sample's OpenMetrics exemplar labels (for this
	// repo's histograms: trace_id), nil when the line carries none.
	Exemplar map[string]string
	// ExemplarValue is the exemplar's observed value (0 without one).
	ExemplarValue float64
}

// Label returns the sample's value for a label name ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParsePrometheus parses Prometheus text exposition format, validating
// metric/label name syntax, HELP/TYPE comments and sample values. It is
// the exposition-side contract check used by the /metrics tests (and a
// minimal scrape client); it does not cross-check samples against their
// declared types.
func ParsePrometheus(data []byte) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return fmt.Errorf("bare comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE %q", line)
		}
		switch strings.TrimSpace(fields[3]) {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type in %q", line)
		}
	default:
		return fmt.Errorf("unknown comment form %q", line)
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// An OpenMetrics exemplar (` # {labels} value`) may follow the sample
	// value on histogram bucket lines; split it off before validating.
	var exPart string
	if idx := strings.Index(rest, " # "); idx >= 0 {
		exPart = rest[idx+3:]
		rest = rest[:idx]
	}
	// An optional timestamp would follow the value; the repo's exposition
	// never emits one, so a second field is an error.
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("expected exactly one value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.Value = v
	if exPart != "" {
		if err := parseExemplar(exPart, &s); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
	}
	return s, nil
}

// parseExemplar parses the `{labels} value` tail of an OpenMetrics
// exemplar into s.
func parseExemplar(part string, s *Sample) error {
	if !strings.HasPrefix(part, "{") {
		return fmt.Errorf("malformed exemplar %q", part)
	}
	labels := map[string]string{}
	end, err := parseLabels(part, labels)
	if err != nil {
		return fmt.Errorf("exemplar: %w", err)
	}
	rest := strings.TrimSpace(part[end:])
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return fmt.Errorf("expected exactly one exemplar value, got %q", rest)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return fmt.Errorf("bad exemplar value %q", rest)
	}
	s.Exemplar = labels
	s.ExemplarValue = v
	return nil
}

// parseLabels parses a `{k="v",...}` block at the head of rest, returning
// the index just past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(rest) && isLabelChar(rest[i], i == start) {
			i++
		}
		name := rest[start:i]
		if name == "" || !strings.HasPrefix(rest[i:], `="`) {
			return 0, fmt.Errorf("malformed label near %q", rest[start:])
		}
		i += 2
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("unterminated label value")
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", rest[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
