package telemetry

import (
	"fmt"
	"strings"
)

// CostCenter classifies where an executed code-cache instruction's cycles
// go — the originating rewrite-rule kind for meta code, the application
// itself, or the DBT's own machinery. The dynamic modifier charges each
// retired instruction's cycles to its center, giving the per-rule overhead
// decomposition of `jexp profile` (BENCH_PROFILE.json).
type CostCenter uint8

const (
	// CCOther is the zero value: meta code no tool attributed (baseline
	// tools, unclassified instrumentation).
	CCOther CostCenter = iota
	// CCApp is application code — the native work itself.
	CCApp
	// CCMemCheck is inline shadow-memory access checking: MEM_ACCESS
	// rules, SCEV-hoisted checks and the dynamic fallback's checks (jasan).
	CCMemCheck
	// CCCanary is redzone shadow poisoning/unpoisoning around stack
	// canaries: POISON_CANARY / UNPOISON_CANARY rules (jasan).
	CCCanary
	// CCDefStore is definedness-shadow updating on stores plus frame
	// poisoning: MEM_DEF_STORE / FRAME_UNDEF rules (jmsan).
	CCDefStore
	// CCDefCheck is definedness checking on sink loads: MEM_DEF_LOAD
	// rules (jmsan).
	CCDefCheck
	// CCCFICheck is forward/backward control-flow checking: CFI_CALL,
	// CFI_JUMP, CFI_JUMP_NARROW, CFI_RET, CFI_RESOLVER_RET rules (jcfi).
	CCCFICheck
	// CCShadowStack is shadow-stack maintenance: SHADOW_PUSH rules (jcfi).
	CCShadowStack
	// CCGenCheck is heap-generation checking on accesses: MEM_GEN_CHECK
	// rules (jtsan).
	CCGenCheck
	// CCQuarantine is generation-shadow maintenance in the quarantine
	// allocator wrapper: marking freed spans, clearing them on allocation
	// and quarantine eviction (jtsan).
	CCQuarantine
	// CCElided is residue at proof-elided check sites (MEM_ACCESS_SAFE).
	// It should stay zero: nonzero means an "elided" rule still emits code.
	CCElided
	// CCDispatch is the DBT's own overhead: block translation cost and
	// indirect-branch dispatch cost.
	CCDispatch

	// NumCostCenters bounds the enum for array-indexed accounting.
	NumCostCenters
)

var ccNames = [NumCostCenters]string{
	CCOther:       "other",
	CCApp:         "app",
	CCMemCheck:    "mem-check",
	CCCanary:      "canary",
	CCDefStore:    "def-store",
	CCDefCheck:    "def-check",
	CCCFICheck:    "cfi-check",
	CCShadowStack: "shadow-stack",
	CCGenCheck:    "gen-check",
	CCQuarantine:  "quarantine",
	CCElided:      "elided",
	CCDispatch:    "dispatch",
}

// String names the cost center.
func (cc CostCenter) String() string {
	if int(cc) < len(ccNames) {
		return ccNames[cc]
	}
	return fmt.Sprintf("cc(%d)", uint8(cc))
}

// Profile accumulates model cycles and retired instructions per cost
// center for one run. It is charged from the run's single execution
// goroutine and is not safe for concurrent use; attach one Profile per
// dynamic modifier. A nil Profile ignores charges.
type Profile struct {
	Cycles [NumCostCenters]uint64
	Instrs [NumCostCenters]uint64
}

// Charge attributes cycles model cycles and instrs retired instructions
// to cc.
func (p *Profile) Charge(cc CostCenter, cycles, instrs uint64) {
	if p == nil {
		return
	}
	p.Cycles[cc] += cycles
	p.Instrs[cc] += instrs
}

// TotalCycles sums every center's cycles — for a run profiled end to end
// this equals the machine's final cycle counter.
func (p *Profile) TotalCycles() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, c := range p.Cycles {
		n += c
	}
	return n
}

// TotalInstrs sums every center's retired instructions.
func (p *Profile) TotalInstrs() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, c := range p.Instrs {
		n += c
	}
	return n
}

// Breakdown folds cost centers into the paper's overhead components.
// App + ShadowUpdate + Check + Elided + Dispatch + Other == TotalCycles.
type Breakdown struct {
	// App is the application's own cycles.
	App uint64 `json:"app_cycles"`
	// ShadowUpdate covers shadow-state maintenance: canary poisoning,
	// definedness stores/frame poisoning, shadow-stack pushes and
	// generation-shadow quarantine updates.
	ShadowUpdate uint64 `json:"shadow_update_cycles"`
	// Check covers inline checks: shadow-memory, definedness, generation
	// and CFI.
	Check uint64 `json:"check_cycles"`
	// Elided is residue at proof-elided sites (expected zero).
	Elided uint64 `json:"elided_cycles"`
	// Dispatch is the DBT's translation + indirect-dispatch cost.
	Dispatch uint64 `json:"dispatch_cycles"`
	// Other is unattributed meta code.
	Other uint64 `json:"other_cycles"`
}

// Breakdown folds the profile's centers into overhead components.
func (p *Profile) Breakdown() Breakdown {
	if p == nil {
		return Breakdown{}
	}
	return Breakdown{
		App:          p.Cycles[CCApp],
		ShadowUpdate: p.Cycles[CCCanary] + p.Cycles[CCDefStore] + p.Cycles[CCShadowStack] + p.Cycles[CCQuarantine],
		Check:        p.Cycles[CCMemCheck] + p.Cycles[CCDefCheck] + p.Cycles[CCCFICheck] + p.Cycles[CCGenCheck],
		Elided:       p.Cycles[CCElided],
		Dispatch:     p.Cycles[CCDispatch],
		Other:        p.Cycles[CCOther],
	}
}

// Overhead returns the attributed non-application cycles: the exact
// instrumented-minus-native cycle delta on the deterministic emulator.
func (b Breakdown) Overhead() uint64 {
	return b.ShadowUpdate + b.Check + b.Elided + b.Dispatch + b.Other
}

// Total returns every component summed, application included.
func (b Breakdown) Total() uint64 { return b.App + b.Overhead() }

// Table renders the per-cost-center accounting as a human-readable table
// (cmd/jrun -profile). Zero centers are omitted.
func (p *Profile) Table() string {
	if p == nil {
		return ""
	}
	total := p.TotalCycles()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %16s %16s %7s\n", "cost-center", "cycles", "instrs", "%cyc")
	for cc := CostCenter(0); cc < NumCostCenters; cc++ {
		if p.Cycles[cc] == 0 && p.Instrs[cc] == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.Cycles[cc]) / float64(total)
		}
		fmt.Fprintf(&b, "%-14s %16d %16d %6.2f%%\n",
			cc.String(), p.Cycles[cc], p.Instrs[cc], pct)
	}
	totalPct := 0.0
	if total > 0 {
		totalPct = 100
	}
	fmt.Fprintf(&b, "%-14s %16d %16d %6.2f%%\n", "total", total, p.TotalInstrs(), totalPct)
	return b.String()
}
