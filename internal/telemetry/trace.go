package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String constructs a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int constructs an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Uint constructs an unsigned integer attribute.
func Uint(key string, value uint64) Attr {
	return Attr{Key: key, Value: strconv.FormatUint(value, 10)}
}

// SpanContext identifies one span within one trace — the part of a span
// that travels across process boundaries in the Traceparent header.
// TraceID is 32 lowercase hex characters, SpanID 16; the zero value is
// invalid and means "no propagated context".
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Sampled bool   `json:"sampled"`
}

// Valid reports whether sc carries well-formed trace and span IDs.
func (sc SpanContext) Valid() bool {
	return isHex(sc.TraceID, 32) && isHex(sc.SpanID, 16) &&
		sc.TraceID != strings.Repeat("0", 32) &&
		sc.SpanID != strings.Repeat("0", 16)
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// TraceparentHeader is the HTTP header carrying the serialized SpanContext
// between fleet nodes (W3C Trace Context field name).
const TraceparentHeader = "Traceparent"

// FormatTraceparent renders sc in W3C traceparent form:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// non-ff version (per spec, unknown versions parse by the version-00
// layout) and reports ok=false for anything malformed.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.SplitN(strings.TrimSpace(s), "-", 4)
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	if !isHex(parts[0], 2) || parts[0] == "ff" {
		return SpanContext{}, false
	}
	if !isHex(parts[3], 2) {
		return SpanContext{}, false
	}
	sc := SpanContext{
		TraceID: parts[1],
		SpanID:  parts[2],
		Sampled: parts[3] == "01",
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// newTraceID / newSpanID mint random W3C-shaped identifiers. Generation
// happens only on traced paths (a nil tracer never mints IDs), so disabled
// telemetry stays at exactly zero overhead.
func newTraceID() string { return randHex(16) }
func newSpanID() string  { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable; an all-zero ID would be
		// invalid per W3C, so fall back to a fixed non-zero marker.
		for i := range b {
			b[i] = 0xfe
		}
	}
	return hex.EncodeToString(b)
}

// Event is a timestamped point annotation on a span.
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanRecord is the serialisable form of one span: what GET /trace returns.
// Duration marshals as nanoseconds. ParentID names the parent span — a
// local parent for child spans, a remote parent (with Remote set) for the
// server half of a cross-node request — so a requester can stitch the
// exported records of several nodes into one tree by (TraceID, ParentID).
type SpanRecord struct {
	Name     string        `json:"name"`
	TraceID  string        `json:"trace_id,omitempty"`
	SpanID   string        `json:"span_id,omitempty"`
	ParentID string        `json:"parent_id,omitempty"`
	Remote   bool          `json:"remote,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Status   string        `json:"status,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Children []*SpanRecord `json:"children,omitempty"`
}

// Tracer collects hierarchical spans and retains the most recently
// finished root traces in a fixed-capacity ring buffer.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	recent []*SpanRecord
	seq    uint64 // arrival order, breaks Start-time ties in Snapshot
	arrive map[*SpanRecord]uint64
}

// DefaultTraceCapacity is how many finished root traces NewTracer retains
// when given a non-positive capacity.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity finished root
// traces (non-positive selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		cap:    capacity,
		recent: make([]*SpanRecord, 0, capacity),
		arrive: make(map[*SpanRecord]uint64, capacity),
	}
}

// Start begins a root span of a brand-new trace. A nil tracer returns a
// nil (inert) span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, rec: &SpanRecord{
		Name:    name,
		TraceID: newTraceID(),
		SpanID:  newSpanID(),
		Start:   time.Now(),
		Attrs:   attrs,
	}}
}

// StartRemote begins a local root span whose parent lives on another node:
// the span joins parent's trace and records parent.SpanID as a remote
// ParentID. An invalid parent context degrades to Start (a fresh trace).
// A nil tracer returns a nil span.
func (t *Tracer) StartRemote(parent SpanContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Start(name, attrs...)
	}
	return &Span{tracer: t, rec: &SpanRecord{
		Name:     name,
		TraceID:  parent.TraceID,
		SpanID:   newSpanID(),
		ParentID: parent.SpanID,
		Remote:   true,
		Start:    time.Now(),
		Attrs:    attrs,
	}}
}

// Recent returns copies of the retained finished root traces, oldest
// first. The records are shared with any still-running child spans of an
// ended root, so callers should treat them as read-only.
func (t *Tracer) Recent() []*SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanRecord, len(t.recent))
	copy(out, t.recent)
	return out
}

// Snapshot returns up to limit retained root traces in deterministic
// newest-first order: descending Start time, ties broken by ascending
// span ID, then by arrival order. limit <= 0 returns everything retained.
func (t *Tracer) Snapshot(limit int) []*SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*SpanRecord, len(t.recent))
	copy(out, t.recent)
	arrive := make([]uint64, len(out))
	for i, rec := range out {
		arrive[i] = t.arrive[rec]
	}
	t.mu.Unlock()
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := out[order[a]], out[order[b]]
		if !ra.Start.Equal(rb.Start) {
			return ra.Start.After(rb.Start)
		}
		if ra.SpanID != rb.SpanID {
			return ra.SpanID < rb.SpanID
		}
		return arrive[order[a]] > arrive[order[b]]
	})
	sorted := make([]*SpanRecord, len(out))
	for i, idx := range order {
		sorted[i] = out[idx]
	}
	if limit > 0 && limit < len(sorted) {
		sorted = sorted[:limit]
	}
	return sorted
}

// Find returns the most recently finished root span of the given trace, or
// nil when the ring no longer (or never) holds it.
func (t *Tracer) Find(traceID string) *SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.recent) - 1; i >= 0; i-- {
		if t.recent[i].TraceID == traceID {
			return t.recent[i]
		}
	}
	return nil
}

// push retains a finished root trace, evicting the oldest past capacity.
func (t *Tracer) push(rec *SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.arrive[rec] = t.seq
	if len(t.recent) == t.cap {
		delete(t.arrive, t.recent[0])
		copy(t.recent, t.recent[1:])
		t.recent[len(t.recent)-1] = rec
		return
	}
	t.recent = append(t.recent, rec)
}

// Span is one timed unit of pipeline work. Every method on a nil Span does
// nothing, so spans thread through code that runs with tracing disabled.
type Span struct {
	tracer *Tracer
	parent *Span
	rec    *SpanRecord
}

// Context returns the span's propagable identity. A nil span returns the
// zero (invalid) context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID, Sampled: true}
}

// TraceID returns the span's trace identifier ("" on a nil span) — the
// value exported as a histogram exemplar and stamped on diag violations.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// Child begins a sub-span recorded under s. It shares s's trace ID and
// records s as its parent span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		parent: s,
		rec: &SpanRecord{
			Name:     name,
			TraceID:  s.rec.TraceID,
			SpanID:   newSpanID(),
			ParentID: s.rec.SpanID,
			Start:    time.Now(),
			Attrs:    attrs,
		},
	}
	s.tracer.mu.Lock()
	s.rec.Children = append(s.rec.Children, c.rec)
	s.tracer.mu.Unlock()
	return c
}

// SetAttr attaches an attribute to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
	s.tracer.mu.Unlock()
}

// AddEvent appends a timestamped point annotation to the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Name: name, Time: time.Now(), Attrs: attrs}
	s.tracer.mu.Lock()
	s.rec.Events = append(s.rec.Events, ev)
	s.tracer.mu.Unlock()
}

// SetError marks the span failed and records the failure message as an
// "error" attribute.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.rec.Status = "error"
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: "error", Value: msg})
	s.tracer.mu.Unlock()
}

// End finishes the span; ending a root span publishes its whole trace to
// the tracer's ring buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.rec.Duration = time.Since(s.rec.Start)
	s.tracer.mu.Unlock()
	if s.parent == nil {
		s.tracer.push(s.rec)
	}
}
