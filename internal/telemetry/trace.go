package telemetry

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String constructs a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int constructs an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Uint constructs an unsigned integer attribute.
func Uint(key string, value uint64) Attr {
	return Attr{Key: key, Value: strconv.FormatUint(value, 10)}
}

// SpanRecord is the serialisable form of one span: what GET /trace returns.
// Duration marshals as nanoseconds.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Children []*SpanRecord `json:"children,omitempty"`
}

// Tracer collects hierarchical spans and retains the most recently
// finished root traces in a fixed-capacity ring buffer.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	recent []*SpanRecord
}

// DefaultTraceCapacity is how many finished root traces NewTracer retains
// when given a non-positive capacity.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity finished root
// traces (non-positive selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity, recent: make([]*SpanRecord, 0, capacity)}
}

// Start begins a root span. A nil tracer returns a nil (inert) span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, rec: &SpanRecord{Name: name, Start: time.Now(), Attrs: attrs}}
}

// Recent returns copies of the retained finished root traces, oldest
// first. The records are shared with any still-running child spans of an
// ended root, so callers should treat them as read-only.
func (t *Tracer) Recent() []*SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanRecord, len(t.recent))
	copy(out, t.recent)
	return out
}

// push retains a finished root trace, evicting the oldest past capacity.
func (t *Tracer) push(rec *SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.recent) == t.cap {
		copy(t.recent, t.recent[1:])
		t.recent[len(t.recent)-1] = rec
		return
	}
	t.recent = append(t.recent, rec)
}

// Span is one timed unit of pipeline work. Every method on a nil Span does
// nothing, so spans thread through code that runs with tracing disabled.
type Span struct {
	tracer *Tracer
	parent *Span
	rec    *SpanRecord
}

// Child begins a sub-span recorded under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		parent: s,
		rec:    &SpanRecord{Name: name, Start: time.Now(), Attrs: attrs},
	}
	s.tracer.mu.Lock()
	s.rec.Children = append(s.rec.Children, c.rec)
	s.tracer.mu.Unlock()
	return c
}

// SetAttr attaches an attribute to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
	s.tracer.mu.Unlock()
}

// End finishes the span; ending a root span publishes its whole trace to
// the tracer's ring buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.rec.Duration = time.Since(s.rec.Start)
	s.tracer.mu.Unlock()
	if s.parent == nil {
		s.tracer.push(s.rec)
	}
}
