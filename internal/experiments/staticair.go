package experiments

import (
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jcfi"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/spec"
)

// StaticAIR computes the Figure 13 metric for one workload: the link-time
// average indirect-target reduction of JCFI and BinCFI over the program's
// whole static module set. BinCFI additionally reports a failure reason for
// modules its rewriting cannot handle (the gamess/zeusmp x marks).
func StaticAIR(w *spec.Workload) (jcfiAIR, bincfiAIR float64, bincfiFail string, err error) {
	main, reg, err := w.Build(false)
	if err != nil {
		return 0, 0, "", err
	}
	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return 0, 0, "", err
	}

	type modInfo struct {
		graph *cfg.Graph
		jcfiF *rules.File
		binF  *rules.File
	}
	infos := map[string]*modInfo{}
	var space float64
	jcfiTool := jcfi.New(jcfi.DefaultConfig)
	binTool := baseline.NewBinCFI()
	for _, mod := range mods {
		g, err := cfg.Build(mod)
		if err != nil {
			return 0, 0, "", err
		}
		jf, err := core.AnalyzeModule(mod, jcfiTool)
		if err != nil {
			return 0, 0, "", err
		}
		bf, err := core.AnalyzeModule(mod, binTool)
		if err != nil {
			return 0, 0, "", err
		}
		infos[mod.Name] = &modInfo{graph: g, jcfiF: jf, binF: bf}
		for _, sec := range mod.ExecSections() {
			space += float64(len(sec.Data))
		}
		if bincfiFail == "" {
			if cerr := binTool.CheckInput(mod, g); cerr != nil {
				bincfiFail = cerr.Error()
			}
		}
	}

	// Target-set sizes. JCFI's inter-module policy unions the outward
	// targets of every module into each caller's call set; BinCFI unions
	// everything (weaker scan-based sets) and adds call-preceded return
	// targets.
	countTargets := func(get func(*modInfo) *rules.File, kindMask uint64) float64 {
		seen := map[uint64]bool{}
		for _, info := range infos {
			for _, r := range get(info).Rules {
				if r.ID == rules.CFITarget && r.Data[0]&kindMask != 0 {
					seen[r.Instr] = true
				}
			}
		}
		return float64(len(seen))
	}
	const retKind = uint64(4)
	jcfiCalls := countTargets(func(i *modInfo) *rules.File { return i.jcfiF }, rules.TargetCall)
	binCalls := countTargets(func(i *modInfo) *rules.File { return i.binF },
		rules.TargetCall|rules.TargetJump)
	binRets := countTargets(func(i *modInfo) *rules.File { return i.binF }, retKind)

	var jAcc, bAcc metrics.AIRAccumulator
	for _, info := range infos {
		// Per-module jump sets for JCFI.
		jumpSet := 0.0
		for _, r := range info.jcfiF.Rules {
			if r.ID == rules.CFITarget && r.Data[0]&rules.TargetJump != 0 {
				jumpSet++
			}
		}
		for _, r := range info.jcfiF.Rules {
			switch r.ID {
			case rules.CFICall, rules.CFIResolverRet:
				jAcc.Add(jcfiCalls, space)
			case rules.CFIJump:
				// Function-range instruction boundaries + jump set.
				lo, hi := r.Data[1], r.Data[2]
				n := 0.0
				for a := lo; a < hi; a++ {
					if info.graph.IsInstrBoundary(a) {
						n++
					}
				}
				jAcc.Add(n+jumpSet, space)
			case rules.CFIRet:
				jAcc.Add(1, space) // precise shadow stack
			}
		}
		boundaries := float64(info.graph.NumInstrs())
		for _, r := range info.binF.Rules {
			switch r.ID {
			case rules.CFICall, rules.CFIResolverRet:
				bAcc.Add(binCalls, space)
			case rules.CFIJump:
				// Any instruction boundary of the module plus the
				// cross-module target union.
				bAcc.Add(boundaries+binCalls, space)
			case rules.CFIRet:
				bAcc.Add(binRets, space) // any call-preceded instruction
			}
		}
	}
	return jAcc.Percent(), bAcc.Percent(), bincfiFail, nil
}
