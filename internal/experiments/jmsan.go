package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// JMSanRow is one benchmark's measurement of the JMSan study: retired
// instruction counts under the hybrid sanitizer (with and without VSA
// def-init elision), the dynamic-only variant, the memcheck-style
// validity-bit baseline, and the combined jasan+jmsan+jcfi configuration,
// all normalised against native.
type JMSanRow struct {
	Benchmark    string `json:"benchmark"`
	NativeInstrs uint64 `json:"native_instrs"`

	JMSanInstrs         uint64 `json:"jmsan_instrs"`
	JMSanElideInstrs    uint64 `json:"jmsan_elide_instrs"`
	JMSanDynInstrs      uint64 `json:"jmsan_dyn_instrs"`
	ValgrindDefInstrs   uint64 `json:"valgrind_def_instrs"`
	ComprehensiveInstrs uint64 `json:"comprehensive_instrs"`

	// *Overhead is the retired-instruction ratio against native (the
	// study's metric: check work added to the dynamic instruction stream).
	JMSanOverhead       float64 `json:"jmsan_overhead"`
	JMSanElideOverhead  float64 `json:"jmsan_elide_overhead"`
	JMSanDynOverhead    float64 `json:"jmsan_dyn_overhead"`
	ValgrindDefOverhead float64 `json:"valgrind_def_overhead"`
	CompOverhead        float64 `json:"comprehensive_overhead"`

	// DefChecksElided counts the MEM_ACCESS_SAFE(def-init) rules the VSA
	// proofs emitted for the elide cell.
	DefChecksElided int `json:"def_checks_elided"`
	// Violations is the hybrid cell's uninitialized-read report count
	// (elide must agree — elision removes only proven-initialized checks).
	Violations int `json:"violations"`
}

// jmsanSchemes are the cells measured per benchmark, the native baseline
// first.
var jmsanSchemes = []Scheme{Native, JMSanHybrid, JMSanElide, JMSanDyn,
	ValgrindDef, Comprehensive}

// JMSan runs the uninitialized-memory study: every workload under
// JMSan-hybrid, JMSan-hybrid+elision, JMSan-dyn, the memcheck-style
// validity-bit baseline and the combined jasan+jmsan+jcfi configuration,
// comparing retired-instruction overhead against native. Elision is checked
// for soundness in the report dimension: the elide cell must report exactly
// the violations the hybrid cell reports.
func JMSan(scale int, names ...string) ([]JMSanRow, error) {
	workloads := workloadSet(scale, names...)
	ns := len(jmsanSchemes)
	results := make([]*Result, len(workloads)*ns)
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], errs[i] = Run(workloads[i/ns], jmsanSchemes[i%ns])
	})

	var rows []JMSanRow
	for wi, w := range workloads {
		byScheme := map[Scheme]*Result{}
		for si, s := range jmsanSchemes {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			byScheme[s] = res
		}
		if h, e := byScheme[JMSanHybrid].Violations, byScheme[JMSanElide].Violations; h != e {
			return nil, fmt.Errorf("%s: elision changed the report count: hybrid %d, elide %d",
				w.Name, h, e)
		}
		row := JMSanRow{
			Benchmark:           w.Name,
			NativeInstrs:        byScheme[Native].Instrs,
			JMSanInstrs:         byScheme[JMSanHybrid].Instrs,
			JMSanElideInstrs:    byScheme[JMSanElide].Instrs,
			JMSanDynInstrs:      byScheme[JMSanDyn].Instrs,
			ValgrindDefInstrs:   byScheme[ValgrindDef].Instrs,
			ComprehensiveInstrs: byScheme[Comprehensive].Instrs,
			DefChecksElided:     byScheme[JMSanElide].ElidedChecks,
			Violations:          byScheme[JMSanHybrid].Violations,
		}
		if n := float64(row.NativeInstrs); n > 0 {
			row.JMSanOverhead = float64(row.JMSanInstrs) / n
			row.JMSanElideOverhead = float64(row.JMSanElideInstrs) / n
			row.JMSanDynOverhead = float64(row.JMSanDynInstrs) / n
			row.ValgrindDefOverhead = float64(row.ValgrindDefInstrs) / n
			row.CompOverhead = float64(row.ComprehensiveInstrs) / n
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Benchmark < rows[j].Benchmark })
	return rows, nil
}

// JMSanGeomeans returns the per-scheme geometric means of the rows'
// instruction overheads: jmsan-hybrid, jmsan-elide, jmsan-dyn, valgrind-def,
// comprehensive.
func JMSanGeomeans(rows []JMSanRow) (hybrid, elide, dyn, vdef, comp float64) {
	var hs, es, ds, vs, cs []float64
	for _, r := range rows {
		hs = append(hs, r.JMSanOverhead)
		es = append(es, r.JMSanElideOverhead)
		ds = append(ds, r.JMSanDynOverhead)
		vs = append(vs, r.ValgrindDefOverhead)
		cs = append(cs, r.CompOverhead)
	}
	return metrics.Geomean(hs), metrics.Geomean(es), metrics.Geomean(ds),
		metrics.Geomean(vs), metrics.Geomean(cs)
}

// FormatJMSan renders the study as a table, the per-scheme geomeans, and one
// machine-readable `BENCH_JMSAN {json}` line per benchmark. Rows are sorted
// by benchmark name, so output is byte-identical across runs and parallelism
// settings.
func FormatJMSan(rows []JMSanRow) string {
	var b strings.Builder
	b.WriteString("JMSan uninitialized-memory study (instruction overhead vs native)\n")
	fmt.Fprintf(&b, "%-14s%10s%10s%10s%14s%10s%8s%6s\n",
		"benchmark", "jmsan", "elide", "dyn", "valgrind-def", "comp",
		"elided", "viol")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%10.3f%10.3f%10.3f%14.3f%10.3f%8d%6d\n",
			r.Benchmark, r.JMSanOverhead, r.JMSanElideOverhead,
			r.JMSanDynOverhead, r.ValgrindDefOverhead, r.CompOverhead,
			r.DefChecksElided, r.Violations)
	}
	hybrid, elide, dyn, vdef, comp := JMSanGeomeans(rows)
	fmt.Fprintf(&b, "geomean: jmsan %.3fx, jmsan-elide %.3fx, jmsan-dyn %.3fx, valgrind-def %.3fx, comprehensive %.3fx\n",
		hybrid, elide, dyn, vdef, comp)
	if hybrid < vdef {
		fmt.Fprintf(&b, "note: JMSan geomean instruction overhead beats the validity-bit memcheck model (%.3fx < %.3fx)\n",
			hybrid, vdef)
	} else {
		fmt.Fprintf(&b, "note: WARNING: JMSan geomean does not beat the memcheck model (%.3fx >= %.3fx)\n",
			hybrid, vdef)
	}
	for _, r := range rows {
		j, _ := json.Marshal(r)
		b.WriteString("BENCH_JMSAN ")
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}
