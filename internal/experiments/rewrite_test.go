package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/spec"
)

// TestRewriteBackendParityAllWorkloads is the bake-off's correctness
// acceptance: on every workload of the suite, the static and hybrid
// backends must reproduce the dynamic backend's app-observable behaviour
// (exit status and output bytes) and its sanitizer verdicts exactly. It
// runs the combined jasan+jmsan+jcfi configuration so all three tools'
// plans are exercised at once.
func TestRewriteBackendParityAllWorkloads(t *testing.T) {
	workloads := spec.All()
	if testing.Short() {
		workloads = workloadSet(1, quickSet...)
	}
	backends := []Backend{BackendDynamic, BackendStatic, BackendHybrid}
	nb := len(backends)
	results := make([]*Result, len(workloads)*nb)
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], errs[i] = RunBackend(workloads[i/nb], Comprehensive, backends[i%nb])
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s/%s: %v", workloads[i/nb].Name, backends[i%nb], err)
		}
	}
	for wi, w := range workloads {
		dyn := results[wi*nb]
		if dyn.Failed {
			t.Fatalf("%s: dynamic backend failed: %s", w.Name, dyn.Reason)
		}
		for bi := 1; bi < nb; bi++ {
			res := results[wi*nb+bi]
			if res.Failed {
				t.Errorf("%s/%s: failed: %s", w.Name, res.Backend, res.Reason)
				continue
			}
			if res.ExitStatus != dyn.ExitStatus {
				t.Errorf("%s/%s: exit %d, dynamic %d",
					w.Name, res.Backend, res.ExitStatus, dyn.ExitStatus)
			}
			if !bytes.Equal(res.Output, dyn.Output) {
				t.Errorf("%s/%s: output diverges from dynamic (%d vs %d bytes)",
					w.Name, res.Backend, len(res.Output), len(dyn.Output))
			}
			if res.Violations != dyn.Violations {
				t.Errorf("%s/%s: %d violations, dynamic %d",
					w.Name, res.Backend, res.Violations, dyn.Violations)
			}
		}
	}
}

// TestBenchRewriteOrdering is the bake-off's performance acceptance: on
// every scheme the backends cover, AOT-rewritten code must beat the dynamic
// modifier (static runs everything natively) and the hybrid must never cost
// more than staying fully dynamic.
func TestBenchRewriteOrdering(t *testing.T) {
	rows, err := BenchRewrite(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]BenchRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%s", r.Scheme, r.Backend)] = r
		t.Logf("%-14s %-8s geomean %.3f over %d benchmarks",
			r.Scheme, r.Backend, r.GeomeanSlowdown, r.Benchmarks)
	}
	for _, s := range rewriteSchemes {
		dyn := byKey[fmt.Sprintf("%s/%s", s, BackendDynamic)]
		st := byKey[fmt.Sprintf("%s/%s", s, BackendStatic)]
		hy := byKey[fmt.Sprintf("%s/%s", s, BackendHybrid)]
		if dyn.Benchmarks == 0 || st.Benchmarks == 0 || hy.Benchmarks == 0 {
			t.Errorf("%s: empty bake-off cell (dyn %d, static %d, hybrid %d benchmarks)",
				s, dyn.Benchmarks, st.Benchmarks, hy.Benchmarks)
			continue
		}
		if st.GeomeanSlowdown >= dyn.GeomeanSlowdown {
			t.Errorf("%s: static geomean %.3f does not beat dynamic %.3f",
				s, st.GeomeanSlowdown, dyn.GeomeanSlowdown)
		}
		if hy.GeomeanSlowdown > dyn.GeomeanSlowdown {
			t.Errorf("%s: hybrid geomean %.3f exceeds dynamic %.3f",
				s, hy.GeomeanSlowdown, dyn.GeomeanSlowdown)
		}
	}
}
