package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/diag"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// ObsRow is one scheme's observability-overhead summary, written by
// scripts/bench.sh into BENCH_OBS.json. The row both reports the cost of
// the full observability stack (per-run spans, structured-diagnostics
// collection, exemplared duration histograms) and certifies the PR's
// zero-cost-when-disabled invariant: the plain and observed runs of every
// cell must agree cycle-exactly.
type ObsRow struct {
	Scheme Scheme `json:"scheme"`
	// Benchmarks counts the workloads contributing to the row.
	Benchmarks int `json:"benchmarks"`
	// GeomeanSlowdown is the scheme's instrumented-vs-native geomean over
	// the contributing workloads (context for the overhead column).
	GeomeanSlowdown float64 `json:"geomean_slowdown"`
	// CyclesIdentical certifies that every observed run measured exactly
	// the same Cycles, Instrs, exit status and output bytes as its plain
	// twin — observability lives entirely outside the VM's cycle model.
	// Obs hard-errors on any divergence, so a written row is always true.
	CyclesIdentical bool `json:"cycles_identical"`
	// Spans is the number of root spans the scheme's tracer retained;
	// ViolationRecords the structured diag records collected (zero on the
	// safe benchmark suite — any nonzero value is tool noise).
	Spans            int `json:"spans"`
	ViolationRecords int `json:"violation_records"`
	// MeanOverheadPct is the mean host wall-clock overhead of the observed
	// run over the plain run per cell, measured with warm analysis caches.
	// It is a host-side timing (the only nondeterministic column).
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
}

// obsSchemes are the configurations the observability overhead figure
// tracks: each tool's hybrid variant, the elision ablation, and the
// combined four-tool configuration.
var obsSchemes = []Scheme{
	JASanHybrid, JASanElide,
	JCFIHybrid,
	JMSanHybrid, JTSanHybrid,
	Comprehensive,
}

// Obs measures the observability stack's cost over the workload suite and
// gates the disabled-path invariant. Every (workload, scheme) cell runs
// three times: once to warm the shared analysis cache, once plain (timed),
// once with an obsSink attached (timed). The plain and observed runs must
// agree on Cycles, Instrs, exit status and output bytes — any divergence
// is a hard error, because it would mean tracing or diagnostics leaked
// into the measured execution.
func Obs(scale int, names ...string) ([]ObsRow, error) {
	workloads := workloadSet(scale, names...)
	sort.Slice(workloads, func(i, j int) bool {
		return workloads[i].Name < workloads[j].Name
	})
	ns := len(obsSchemes)

	sinks := make([]*obsSink, ns)
	for i := range sinks {
		reg := telemetry.NewRegistry()
		sinks[i] = &obsSink{
			tr:   telemetry.NewTracer(2 * len(workloads)),
			dlog: diag.NewLog(),
			hist: reg.Histogram("janitizer_exp_run_duration_seconds",
				"Observed experiment run wall time.",
				[]float64{0.01, 0.05, 0.25, 1, 5, 25}),
		}
	}

	type cell struct {
		plain, observed   *Result
		plainS, observedS float64
		err               error
	}
	cells := make([]cell, len(workloads)*ns)
	runJobs(len(cells), func(i int) {
		w, si := workloads[i/ns], i%ns
		scheme := obsSchemes[si]
		c := &cells[i]
		// Warm-up run: pays the static-analysis cost into the shared cache
		// so both timed runs below measure execution, not analysis.
		if _, err := Run(w, scheme); err != nil {
			c.err = err
			return
		}
		start := time.Now()
		c.plain, c.err = Run(w, scheme)
		c.plainS = time.Since(start).Seconds()
		if c.err != nil {
			return
		}
		start = time.Now()
		c.observed, c.err = runWith(w, scheme, nil, sinks[si])
		c.observedS = time.Since(start).Seconds()
	})

	var rows []ObsRow
	for si, s := range obsSchemes {
		var slowdowns, overheads []float64
		for wi, w := range workloads {
			c := cells[wi*ns+si]
			if c.err != nil {
				return nil, c.err
			}
			if c.plain.Failed || c.observed.Failed {
				continue
			}
			if c.plain.Cycles != c.observed.Cycles ||
				c.plain.Instrs != c.observed.Instrs ||
				c.plain.ExitStatus != c.observed.ExitStatus ||
				!bytes.Equal(c.plain.Output, c.observed.Output) {
				return nil, fmt.Errorf(
					"%s/%s: observability perturbed the run: plain %d cycles %d instrs, observed %d cycles %d instrs",
					w.Name, s, c.plain.Cycles, c.plain.Instrs,
					c.observed.Cycles, c.observed.Instrs)
			}
			slowdowns = append(slowdowns, c.observed.Slowdown)
			if c.plainS > 0 {
				overheads = append(overheads, (c.observedS-c.plainS)/c.plainS*100)
			}
		}
		var mean float64
		for _, o := range overheads {
			mean += o
		}
		if len(overheads) > 0 {
			mean = math.Round(mean/float64(len(overheads))*100) / 100
		}
		rows = append(rows, ObsRow{
			Scheme:           s,
			Benchmarks:       len(slowdowns),
			GeomeanSlowdown:  metrics.Geomean(slowdowns),
			CyclesIdentical:  true,
			Spans:            len(sinks[si].tr.Snapshot(0)),
			ViolationRecords: sinks[si].dlog.Len(),
			MeanOverheadPct:  mean,
		})
	}
	return rows, nil
}

// FormatObsJSON renders the rows as an indented JSON array — the entire
// BENCH_OBS.json artifact.
func FormatObsJSON(rows []ObsRow) string {
	j, _ := json.MarshalIndent(rows, "", "  ")
	return string(j) + "\n"
}
