package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/fuzz"
	"repro/internal/fuzz/gen"
	"repro/internal/jlint"
	"repro/internal/juliet"
	"repro/internal/obj"
)

// StaticRow compares static bug finding (jlint over the VSA fixpoint)
// against sanitized execution on one suite of good/bad program pairs.
// The static side is scored twice: the must tier alone (alarms the
// analysis proves on every feasible path — the zero-false-positive
// contract) and must+may together (adding the interval-overlap tier that
// trades alarms for coverage). The dynamic side is the suite's detecting
// sanitizer run to completion on every variant.
type StaticRow struct {
	Suite string `json:"suite"`
	Cases int    `json:"cases"`

	// Must tier only.
	MustTP int `json:"must_tp"`
	MustFN int `json:"must_fn"`
	MustFP int `json:"must_fp"`
	MustTN int `json:"must_tn"`

	// Must + may tiers.
	AnyTP int `json:"any_tp"`
	AnyFN int `json:"any_fn"`
	AnyFP int `json:"any_fp"`
	AnyTN int `json:"any_tn"`

	// Dynamic detection under the suite's sanitizer.
	DynDetector string `json:"dyn_detector"`
	DynTP       int    `json:"dyn_tp"`
	DynFN       int    `json:"dyn_fn"`
	DynFP       int    `json:"dyn_fp"`
	DynTN       int    `json:"dyn_tn"`

	// StaticMS is the wall-clock total of the jlint analyses (compilation
	// excluded — both sides consume the same modules). DynMS is the
	// wall-clock total of the sanitized executions including their
	// per-module rule analysis, i.e. the full cost of getting a dynamic
	// verdict. Timings vary run-to-run; the detection counts do not.
	StaticMS float64 `json:"static_ms"`
	DynMS    float64 `json:"dyn_ms"`
}

// StaticReport is the BENCH_STATIC.json artifact.
type StaticReport struct {
	Rows []StaticRow `json:"rows"`
}

// staticVerdict scores one compiled variant on both static tiers.
type staticVerdict struct {
	must bool // any must-alarm
	any  bool // any finding at all
	ms   float64
}

func lintVerdict(mod *obj.Module) (staticVerdict, error) {
	t0 := time.Now()
	rep, err := jlint.Analyze(mod)
	if err != nil {
		return staticVerdict{}, err
	}
	v := staticVerdict{ms: float64(time.Since(t0)) / float64(time.Millisecond)}
	v.any = len(rep.Findings) > 0
	v.must = len(rep.Musts()) > 0
	return v, nil
}

// scoreTier folds a (bad?, alarmed?) observation into the TP/FN/FP/TN
// quadrant selected by tier.
func (r *StaticRow) score(bad, mustAlarm, anyAlarm bool) {
	switch {
	case bad && mustAlarm:
		r.MustTP++
	case bad:
		r.MustFN++
	case mustAlarm:
		r.MustFP++
	default:
		r.MustTN++
	}
	switch {
	case bad && anyAlarm:
		r.AnyTP++
	case bad:
		r.AnyFN++
	case anyAlarm:
		r.AnyFP++
	default:
		r.AnyTN++
	}
}

// julietRow scores one Juliet case list statically (both variants of every
// case compiled at O2, exactly as the dynamic harness compiles them) and
// dynamically (juliet.Evaluate under det).
func julietRow(suite string, det juliet.Detector, cases []juliet.Case) (StaticRow, error) {
	row := StaticRow{Suite: suite, Cases: len(cases), DynDetector: string(det)}

	type verdicts struct {
		good, bad staticVerdict
		err       error
	}
	vs := make([]verdicts, len(cases))
	runJobs(len(cases), func(i int) {
		c := cases[i]
		for _, v := range []struct {
			src string
			out *staticVerdict
		}{{c.Good, &vs[i].good}, {c.Bad, &vs[i].bad}} {
			mod, err := cc.Compile(v.src, cc.Options{Module: "case", O2: true})
			if err != nil {
				vs[i].err = fmt.Errorf("%s: compile: %w", c.ID, err)
				return
			}
			*v.out, err = lintVerdict(mod)
			if err != nil {
				vs[i].err = fmt.Errorf("%s: analyze: %w", c.ID, err)
				return
			}
		}
	})
	for _, v := range vs {
		if v.err != nil {
			return row, v.err
		}
		row.score(false, v.good.must, v.good.any)
		row.score(true, v.bad.must, v.bad.any)
		row.StaticMS += v.good.ms + v.bad.ms
	}

	t0 := time.Now()
	tally, err := juliet.Evaluate(det, cases)
	if err != nil {
		return row, err
	}
	row.DynMS = float64(time.Since(t0)) / float64(time.Millisecond)
	row.DynTP, row.DynFN = tally.TP, tally.FN
	row.DynFP, row.DynTN = tally.FP, tally.TN
	return row, nil
}

// fuzzSeeds is how many planted/unplanted program pairs each bug class
// contributes at scale 1.
const fuzzSeeds = 6

// fuzzRow scores one planted bug class: seeds are drawn deterministically
// until `pairs` programs accept the plant; each planted program is scored
// statically (jlint over the same O2 module the sanitizer executes) and
// dynamically (fuzz.CheckSource's detecting tool for the class). The
// unplanted twin of every seed provides the negative column — its dynamic
// verdict is the full differential oracle, so a dynamic FP here means
// sanitizer noise on a safe program.
func fuzzRow(b gen.Bug, pairs int) (StaticRow, error) {
	row := StaticRow{Suite: "fuzz-" + b.String(), Cases: pairs}
	if b == gen.BugUninitRead {
		row.DynDetector = "jmsan"
	} else {
		row.DynDetector = "jasan"
	}

	type pair struct{ planted, clean *gen.Prog }
	var ps []pair
	for seed := int64(1); len(ps) < pairs; seed++ {
		if seed > int64(pairs)*100 {
			return row, fmt.Errorf("%s: could not plant %d programs", b, pairs)
		}
		r := rand.New(rand.NewSource(7 + int64(b)*1000 + seed))
		p := gen.New(r)
		q := p.Clone()
		if !q.Plant(r, b) {
			continue
		}
		ps = append(ps, pair{planted: q, clean: p})
	}

	type res struct {
		sv    staticVerdict
		dyn   bool // dynamic alarm
		dynMS float64
		err   error
	}
	rs := make([]res, len(ps)*2)
	runJobs(len(rs), func(i int) {
		p, bad := ps[i/2].clean, false
		if i%2 == 1 {
			p, bad = ps[i/2].planted, true
		}
		mod, err := cc.Compile(p.Render(), cc.Options{Module: "p", O2: true})
		if err != nil {
			rs[i].err = fmt.Errorf("compile: %w", err)
			return
		}
		if rs[i].sv, err = lintVerdict(mod); err != nil {
			rs[i].err = err
			return
		}
		t0 := time.Now()
		out := fuzz.CheckSource(p, 50_000_000)
		rs[i].dynMS = float64(time.Since(t0)) / float64(time.Millisecond)
		if bad {
			rs[i].dyn = out.PlantedCaught
		} else {
			// A safe program raising any oracle violation is dynamic
			// noise; budget exhaustion yields no verdict and scores as
			// silent (the conservative direction for the dynamic side).
			rs[i].dyn = len(out.Violations) > 0
		}
	})
	for i, r := range rs {
		if r.err != nil {
			return row, fmt.Errorf("%s seed pair %d: %w", b, i/2, r.err)
		}
		bad := i%2 == 1
		row.score(bad, r.sv.must, r.sv.any)
		if bad && r.dyn {
			row.DynTP++
		} else if bad {
			row.DynFN++
		} else if r.dyn {
			row.DynFP++
		} else {
			row.DynTN++
		}
		row.StaticMS += r.sv.ms
		row.DynMS += r.dynMS
	}
	return row, nil
}

// Static runs the static-vs-dynamic detection study: the CWE-457 suite
// split into its definite (stack/scalar) and heap halves, the CWE-122
// heap-overflow suite, and every planted fuzz bug class. scale multiplies
// the fuzz program count per class.
func Static(scale int) (*StaticReport, error) {
	if scale < 1 {
		scale = 1
	}
	rep := &StaticReport{}

	s457 := juliet.Suite457()
	var definite, heap457 []juliet.Case
	for _, c := range s457 {
		if c.Definite {
			definite = append(definite, c)
		} else {
			heap457 = append(heap457, c)
		}
	}
	for _, part := range []struct {
		suite string
		det   juliet.Detector
		cases []juliet.Case
	}{
		{"cwe457-definite", juliet.JMSan, definite},
		{"cwe457-heap", juliet.JMSan, heap457},
		{"cwe122", juliet.JASan, juliet.Suite()},
	} {
		row, err := julietRow(part.suite, part.det, part.cases)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}

	for b := gen.Bug(0); b < gen.NumBugs; b++ {
		row, err := fuzzRow(b, fuzzSeeds*scale)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}

	sort.SliceStable(rep.Rows, func(i, j int) bool {
		return rep.Rows[i].Suite < rep.Rows[j].Suite
	})
	return rep, nil
}

// FormatStaticJSON renders the BENCH_STATIC.json artifact.
func FormatStaticJSON(rep *StaticReport) string {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "{}\n"
	}
	return string(b) + "\n"
}

// FormatStatic renders the human-readable summary table.
func FormatStatic(rep *StaticReport) string {
	out := "Static bug finding vs sanitized execution (per suite, good/bad pairs)\n"
	out += fmt.Sprintf("%-22s %6s | %-17s | %-17s | %-17s | %9s %9s\n",
		"suite", "cases", "must TP/FN/FP", "must+may TP/FN/FP", "dynamic TP/FN/FP",
		"static", "dynamic")
	for _, r := range rep.Rows {
		fmtTier := func(tp, fn, fp int) string {
			return fmt.Sprintf("%d/%d/%d", tp, fn, fp)
		}
		out += fmt.Sprintf("%-22s %6d | %-17s | %-17s | %-17s | %8.0fms %8.0fms\n",
			r.Suite, r.Cases,
			fmtTier(r.MustTP, r.MustFN, r.MustFP),
			fmtTier(r.AnyTP, r.AnyFN, r.AnyFP),
			fmtTier(r.DynTP, r.DynFN, r.DynFP)+" ("+r.DynDetector+")",
			r.StaticMS, r.DynMS)
	}
	return out
}
