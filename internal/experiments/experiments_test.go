package experiments

import (
	"strings"
	"testing"

	"repro/internal/juliet"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// quickSet is a representative subset covering every workload trait, keeping
// the test suite fast; the bench harness runs the full figures.
var quickSet = []string{"perlbench", "mcf", "hmmer", "lbm", "cactusADM", "gamess", "omnetpp"}

func TestRunNativeAndSchemes(t *testing.T) {
	w := spec.ByName("mcf")
	res, err := Run(w, Native)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown != 1 || res.Cycles == 0 {
		t.Fatalf("native result implausible: %+v", res)
	}
	for _, s := range []Scheme{NullClient, JASanHybrid, JCFIHybrid} {
		r, err := Run(w, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Failed {
			t.Fatalf("%s unexpectedly failed: %s", s, r.Reason)
		}
		if r.Slowdown < 1 {
			t.Errorf("%s: slowdown %.3f < 1", s, r.Slowdown)
		}
		if r.Violations != 0 {
			t.Errorf("%s: violations on benign workload: %d", s, r.Violations)
		}
	}
	if _, err := Run(w, Scheme("bogus")); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestApplicabilityGates(t *testing.T) {
	// Retrowrite refuses non-C.
	r, err := Run(spec.ByName("bwaves"), Retrowrite)
	if err != nil || !r.Failed {
		t.Fatalf("retrowrite on fortran: failed=%v err=%v", r.Failed, err)
	}
	// Lockdown fails on omnetpp/dealII.
	r, err = Run(spec.ByName("omnetpp"), Lockdown)
	if err != nil || !r.Failed {
		t.Fatalf("lockdown on omnetpp: failed=%v err=%v", r.Failed, err)
	}
	// BinCFI fails on data-in-code modules.
	r, err = Run(spec.ByName("gamess"), BinCFI)
	if err != nil || !r.Failed {
		t.Fatalf("bincfi on gamess: failed=%v err=%v", r.Failed, err)
	}
	if !strings.Contains(r.Reason, "code/data") {
		t.Errorf("bincfi failure reason = %q", r.Reason)
	}
}

// geomeanOf extracts the geomean of a labelled row.
func geomeanOf(fig *Figure, label string) float64 {
	for _, row := range fig.Rows {
		if row.Label != label {
			continue
		}
		var vals []float64
		for _, b := range fig.Benchmarks {
			if v, ok := row.Values[b]; ok && v > 0 {
				vals = append(vals, v)
			}
		}
		return metrics.Geomean(vals)
	}
	return 0
}

// TestFig7Shape checks the paper's headline ordering on the quick subset:
// Valgrind >> JASan-dyn >> JASan-hybrid ~ Retrowrite.
func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	vg := geomeanOf(fig, string(Valgrind))
	dyn := geomeanOf(fig, string(JASanDyn))
	hyb := geomeanOf(fig, string(JASanHybrid))
	rw := geomeanOf(fig, string(Retrowrite))
	t.Logf("valgrind=%.2f dyn=%.2f hybrid=%.2f retrowrite=%.2f", vg, dyn, hyb, rw)
	if !(vg > dyn && dyn > hyb) {
		t.Errorf("ordering broken: valgrind %.2f > dyn %.2f > hybrid %.2f expected", vg, dyn, hyb)
	}
	if vg < 2*hyb {
		t.Errorf("valgrind (%.2f) should dwarf hybrid (%.2f)", vg, hyb)
	}
	if rw > 0 && (hyb > 1.8*rw || rw > 1.8*hyb) {
		t.Errorf("hybrid (%.2f) and retrowrite (%.2f) should be comparable", hyb, rw)
	}
}

// TestFig8Shape: the liveness optimisation (full vs base) must deliver a
// real improvement (paper: 27%).
func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	null := geomeanOf(fig, string(NullClient))
	full := geomeanOf(fig, string(JASanHybrid))
	base := geomeanOf(fig, string(JASanHybridBase))
	dyn := geomeanOf(fig, string(JASanDyn))
	t.Logf("null=%.2f full=%.2f base=%.2f dyn=%.2f", null, full, base, dyn)
	if !(null < full && full < base) {
		t.Errorf("ordering: null %.2f < full %.2f < base %.2f expected", null, full, base)
	}
	improvement := 1 - (full-1)/(base-1)
	if improvement < 0.10 {
		t.Errorf("liveness improvement %.0f%% too small (paper: 27%%)", improvement*100)
	}
	if base > dyn*1.05 {
		t.Errorf("hybrid-base (%.2f) should not exceed dyn (%.2f)", base, dyn)
	}
}

// TestFig9Shape: CFI overheads all land in the low-overhead band and
// JCFI-dyn costs more than JCFI-hybrid.
func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	ld := geomeanOf(fig, string(Lockdown))
	dyn := geomeanOf(fig, string(JCFIDyn))
	hyb := geomeanOf(fig, string(JCFIHybrid))
	bin := geomeanOf(fig, string(BinCFI))
	t.Logf("lockdown=%.2f jcfi-dyn=%.2f jcfi-hybrid=%.2f bincfi=%.2f", ld, dyn, hyb, bin)
	for n, v := range map[string]float64{"lockdown": ld, "jcfi-dyn": dyn,
		"jcfi-hybrid": hyb, "bincfi": bin} {
		if v < 1.0 || v > 3.5 {
			t.Errorf("%s slowdown %.2f outside the CFI band", n, v)
		}
	}
	if dyn <= hyb {
		t.Errorf("jcfi-dyn (%.2f) must cost more than jcfi-hybrid (%.2f)", dyn, hyb)
	}
	if bin >= hyb {
		t.Errorf("static bincfi (%.2f) should undercut the hybrid (%.2f)", bin, hyb)
	}
}

// TestFig11Shape: forward-only < full.
func TestFig11Shape(t *testing.T) {
	fig, err := Fig11(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	null := geomeanOf(fig, string(NullClient))
	fwd := geomeanOf(fig, string(JCFIForward))
	full := geomeanOf(fig, string(JCFIHybrid))
	t.Logf("null=%.2f forward=%.2f full=%.2f", null, fwd, full)
	if !(null <= fwd && fwd < full) {
		t.Errorf("ordering: null %.2f <= forward %.2f < full %.2f expected", null, fwd, full)
	}
}

// TestFig12Shape: the published DAIR ordering — Lockdown(S) >= JCFI-hybrid >
// JCFI-dyn > Lockdown(W), all very high.
func TestFig12Shape(t *testing.T) {
	fig, err := Fig12(1, quickSet...)
	if err != nil {
		t.Fatal(err)
	}
	ldS := geomeanOf(fig, string(Lockdown))
	dyn := geomeanOf(fig, string(JCFIDyn))
	hyb := geomeanOf(fig, string(JCFIHybrid))
	ldW := geomeanOf(fig, string(LockdownWeak))
	t.Logf("lockdown-S=%.3f jcfi-dyn=%.3f jcfi-hybrid=%.3f lockdown-W=%.3f", ldS, dyn, hyb, ldW)
	// Lockdown(S) edges the hybrid on the full suite only slightly (its
	// jump AIR is actually lower, footnote 15), so allow subset noise.
	if !(ldS >= hyb-0.2 && hyb > dyn && dyn >= ldW-0.1) {
		t.Errorf("DAIR ordering broken: S=%.3f hybrid=%.3f dyn=%.3f W=%.3f",
			ldS, hyb, dyn, ldW)
	}
	if hyb < 98 {
		t.Errorf("JCFI-hybrid DAIR %.2f%% below the >99%% band", hyb)
	}
}

// TestFig13Shape: static AIR — JCFI above BinCFI, BinCFI x on gamess/zeusmp.
func TestFig13Shape(t *testing.T) {
	fig, err := Fig13("perlbench", "gcc", "gamess", "lbm")
	if err != nil {
		t.Fatal(err)
	}
	j := geomeanOf(fig, "jcfi")
	b := geomeanOf(fig, "bincfi")
	t.Logf("jcfi=%.3f bincfi=%.3f", j, b)
	if j <= b {
		t.Errorf("JCFI AIR (%.3f) must exceed BinCFI (%.3f)", j, b)
	}
	if j < 99 {
		t.Errorf("JCFI static AIR %.2f below the paper's >99.7%% band", j)
	}
	foundX := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "gamess/bincfi") {
			foundX = true
		}
	}
	if !foundX {
		t.Error("gamess should be an x for bincfi")
	}
}

// TestFig14Shape: cactusADM dominated by dynamic blocks, lbm's two hidden
// blocks visible, fully-static benchmarks at zero.
func TestFig14Shape(t *testing.T) {
	fig, err := Fig14(1, "perlbench", "hmmer", "lbm", "cactusADM")
	if err != nil {
		t.Fatal(err)
	}
	vals := fig.Rows[0].Values
	if vals["cactusADM"] < 80 {
		t.Errorf("cactusADM dynamic fraction %.1f%%, want ~92%%", vals["cactusADM"])
	}
	if vals["lbm"] < 8 || vals["lbm"] > 30 {
		t.Errorf("lbm dynamic fraction %.1f%%, want ~18%%", vals["lbm"])
	}
	if vals["hmmer"] != 0 {
		t.Errorf("hmmer dynamic fraction %.1f%%, want 0", vals["hmmer"])
	}
}

// TestSoundnessStudy: Lockdown(S) false-positives on exactly the paper's
// three callback benchmarks; the weak policy and JCFI are clean.
func TestSoundnessStudy(t *testing.T) {
	rs, err := Soundness(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("soundness rows = %d", len(rs))
	}
	for _, r := range rs {
		if r.LockdownStrongFPs == 0 {
			t.Errorf("%s: lockdown strong produced no false positives", r.Benchmark)
		}
		if r.LockdownWeakFPs != 0 {
			t.Errorf("%s: lockdown weak false positives: %d", r.Benchmark, r.LockdownWeakFPs)
		}
		if r.JCFIFPs != 0 {
			t.Errorf("%s: JCFI false positives: %d", r.Benchmark, r.JCFIFPs)
		}
	}
	if !strings.Contains(FormatSoundness(rs), "gcc") {
		t.Error("soundness table malformed")
	}
}

// TestFig10Exact: the Juliet table must reproduce the paper's numbers
// exactly (the suite was constructed so detector behaviour, not fiat,
// yields them). Subset here; TestFig10Full in -short=false mode and the
// bench harness run all 624.
func TestFig10Subset(t *testing.T) {
	cases := juliet.Suite()
	// One of each kind, eight of each where it matters.
	var sel []juliet.Case
	byKind := map[juliet.Kind]int{}
	for _, c := range cases {
		if byKind[c.Kind] < 4 {
			byKind[c.Kind]++
			sel = append(sel, c)
		}
	}
	vg, err := juliet.Evaluate(juliet.Valgrind, sel)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := juliet.Evaluate(juliet.JASan, sel)
	if err != nil {
		t.Fatal(err)
	}
	if vg.FP != 0 || ja.FP != 0 {
		t.Errorf("false positives: valgrind %d, jasan %d", vg.FP, ja.FP)
	}
	// JASan misses only heap→stack; Valgrind misses those plus doubles.
	if ja.FNByKind[juliet.HeapToStack] != 4 || ja.FN != 4 {
		t.Errorf("jasan FN = %v", ja.FNByKind)
	}
	if vg.FNByKind[juliet.HeapToStack] != 4 || vg.FNByKind[juliet.HeapToHeapDouble] != 4 {
		t.Errorf("valgrind FN = %v", vg.FNByKind)
	}
}

func TestFig10Full(t *testing.T) {
	if testing.Short() {
		t.Skip("full 624-case suite: run without -short")
	}
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if r.JASan.TP != 528 || r.JASan.FN != 96 || r.JASan.FP != 0 || r.JASan.TN != 624 {
		t.Errorf("JASan tally = %v, want TP=528 FN=96 FP=0 TN=624", r.JASan)
	}
	if r.Valgrind.TP != 504 || r.Valgrind.FN != 120 || r.Valgrind.FP != 0 || r.Valgrind.TN != 624 {
		t.Errorf("Valgrind tally = %v, want TP=504 FN=120 FP=0 TN=624", r.Valgrind)
	}
	t.Log("\n" + r.Format())
}

func TestFigureFormatting(t *testing.T) {
	fig, err := Fig14(1, "lbm")
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Format("%")
	if !strings.Contains(s, "Figure 14") || !strings.Contains(s, "lbm") {
		t.Errorf("format output malformed:\n%s", s)
	}
}
