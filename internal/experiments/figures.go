package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/spec"
)

// Parallel sets how many (workload, scheme) cells the figure loops run
// concurrently; <= 0 selects runtime.GOMAXPROCS(0). Figure output is
// deterministic regardless: results are collected per cell and assembled in
// the serial iteration order. jexp routes its -parallel flag here.
var Parallel = 1

func parallelism() int {
	if Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return Parallel
}

// runJobs executes n jobs through a worker pool of parallelism() workers.
// Each worker pulls the next job index, so long cells (cactusADM under
// valgrind) do not stall the queue behind them.
func runJobs(n int, job func(int)) {
	p := parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				job(int(i))
			}
		}()
	}
	wg.Wait()
}

// Figure is one regenerated table/figure: per-benchmark series plus the
// formatted text the jexp tool prints.
type Figure struct {
	Title      string
	Benchmarks []string
	Rows       []metrics.Row
	// Notes records failures (x marks) and commentary.
	Notes []string
}

// Format renders the figure as text.
func (f *Figure) Format(unit string) string {
	out := metrics.FormatTable(f.Title, f.Benchmarks, f.Rows, unit)
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// sweep runs the given schemes over workloads, collecting one Row per
// scheme, with the chosen metric extractor. Cells run through the worker
// pool (see Parallel); results are assembled in serial iteration order so
// the rendered figure is identical at any parallelism.
func sweep(workloads []*spec.Workload, schemes []Scheme,
	metric func(*Result) float64) (*Figure, error) {

	ns := len(schemes)
	results := make([]*Result, len(workloads)*ns)
	errs := make([]error, len(workloads)*ns)
	runJobs(len(results), func(i int) {
		results[i], errs[i] = Run(workloads[i/ns], schemes[i%ns])
	})

	fig := &Figure{}
	rows := map[Scheme]metrics.Row{}
	for _, s := range schemes {
		rows[s] = metrics.Row{Label: string(s), Values: map[string]float64{}}
	}
	for wi, w := range workloads {
		fig.Benchmarks = append(fig.Benchmarks, w.Name)
		for si, s := range schemes {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			if res.Failed {
				fig.Notes = append(fig.Notes,
					fmt.Sprintf("%s/%s: x (%s)", w.Name, s, res.Reason))
				continue
			}
			rows[s].Values[w.Name] = metric(res)
		}
	}
	for _, s := range schemes {
		fig.Rows = append(fig.Rows, rows[s])
	}
	return fig, nil
}

// workloadSet returns the full suite, or a subset by name, with the given
// scale applied.
func workloadSet(scale int, names ...string) []*spec.Workload {
	var out []*spec.Workload
	for _, w := range spec.All() {
		if len(names) > 0 {
			found := false
			for _, n := range names {
				if n == w.Name {
					found = true
				}
			}
			if !found {
				continue
			}
		}
		cp := *w
		cp.Scale = scale
		out = append(out, &cp)
	}
	return out
}

// slowdown is the Figure 7/8/9/11 metric.
func slowdown(r *Result) float64 { return r.Slowdown }

// Fig7 regenerates Figure 7: JASan (binary ASan) overhead versus the
// dynamic-only Valgrind and static-only Retrowrite baselines.
// Paper geomeans: Valgrind 9.83×, JASan-dyn 4.55×, Retrowrite 2.98× (C
// benchmarks only), JASan-hybrid 2.98×.
func Fig7(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Valgrind, JASanDyn, Retrowrite, JASanHybrid}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 7: JASan overhead vs native (slowdown factor)"
	return fig, nil
}

// Fig8 regenerates Figure 8: JASan's overhead breakdown — DynamoRIO null
// client, conservative hybrid (base), liveness-optimised hybrid (full),
// dynamic-only. Paper: full improves 27% over base.
func Fig8(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{NullClient, JASanHybrid, JASanHybridBase, JASanDyn}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 8: JASan overhead breakdown (slowdown factor)"
	return fig, nil
}

// Fig9 regenerates Figure 9: JCFI overhead versus Lockdown and BinCFI.
// Paper geomeans: Lockdown 1.21×, JCFI-dyn 1.37×, JCFI-hybrid 1.29×,
// BinCFI 1.22×.
func Fig9(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Lockdown, JCFIDyn, JCFIHybrid, BinCFI}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 9: JCFI overhead vs native (slowdown factor)"
	return fig, nil
}

// Fig11 regenerates Figure 11: forward-only versus full (forward+shadow-
// stack) JCFI. Paper: 1.15× forward-only, 1.29× full.
func Fig11(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{NullClient, JCFIForward, JCFIHybrid}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 11: forward/backward contribution to JCFI overhead (slowdown factor)"
	return fig, nil
}

// Fig12 regenerates Figure 12: dynamic AIR for Lockdown strong, JCFI-dyn,
// JCFI-hybrid and Lockdown weak. Paper: JCFI-hybrid 99.8% dropping to 99.6%
// without static analysis; Lockdown(S) slightly higher but unsound.
func Fig12(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Lockdown, JCFIDyn, JCFIHybrid, LockdownWeak},
		func(r *Result) float64 { return r.DAIR })
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 12: dynamic average indirect-target reduction, DAIR (%)"
	return fig, nil
}

// Fig13 regenerates Figure 13: static AIR of JCFI versus BinCFI.
// Paper: JCFI >99.7%, BinCFI 98.8%.
func Fig13(names ...string) (*Figure, error) {
	fig := &Figure{Title: "Figure 13: static average indirect-target reduction, AIR (%)"}
	jcfiRow := metrics.Row{Label: "jcfi", Values: map[string]float64{}}
	binRow := metrics.Row{Label: "bincfi", Values: map[string]float64{}}
	workloads := workloadSet(1, names...)
	type airCell struct {
		jAIR, bAIR float64
		bFailed    string
		err        error
	}
	cells := make([]airCell, len(workloads))
	runJobs(len(cells), func(i int) {
		c := &cells[i]
		c.jAIR, c.bAIR, c.bFailed, c.err = StaticAIR(workloads[i])
	})
	for i, w := range workloads {
		c := &cells[i]
		if c.err != nil {
			return nil, c.err
		}
		fig.Benchmarks = append(fig.Benchmarks, w.Name)
		jcfiRow.Values[w.Name] = c.jAIR
		if c.bFailed != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s/bincfi: x (%s)", w.Name, c.bFailed))
		} else {
			binRow.Values[w.Name] = c.bAIR
		}
	}
	fig.Rows = []metrics.Row{jcfiRow, binRow}
	return fig, nil
}

// Fig14 regenerates Figure 14: the fraction of executed basic blocks only
// discovered dynamically. Paper: mean 4.4%, cactusADM 92.4%, lbm 18.7%.
func Fig14(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...), []Scheme{JASanHybrid},
		func(r *Result) float64 { return 100 * r.Coverage.DynamicFraction() })
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 14: executed basic blocks only discovered dynamically (%)"
	fig.Rows[0].Label = "dynamic-blocks"
	// The paper reports the arithmetic mean (4.44%), which keeps the many
	// all-static benchmarks in the denominator.
	sum := 0.0
	for _, b := range fig.Benchmarks {
		sum += fig.Rows[0].Values[b]
	}
	if n := len(fig.Benchmarks); n > 0 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("arithmetic mean: %.2f%%", sum/float64(n)))
	}
	return fig, nil
}

// SoundnessResult captures the §6.2.2 study: false positives on benign
// callback-using benchmarks.
type SoundnessResult struct {
	Benchmark         string
	LockdownStrongFPs int
	LockdownWeakFPs   int
	JCFIFPs           int
}

// Soundness reruns the callback benchmarks (gcc, h264ref, cactusADM) under
// Lockdown strong/weak and JCFI-hybrid, counting false positives on benign
// executions. Paper: Lockdown(S) false-positives on all three; JCFI none.
func Soundness(scale int) ([]SoundnessResult, error) {
	names := []string{"gcc", "h264ref", "cactusADM"}
	schemes := []Scheme{Lockdown, LockdownWeak, JCFIHybrid}
	results := make([]*Result, len(names)*len(schemes))
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		w := *spec.ByName(names[i/len(schemes)])
		w.Scale = scale
		results[i], errs[i] = Run(&w, schemes[i%len(schemes)])
	})

	var out []SoundnessResult
	for ni, name := range names {
		r := SoundnessResult{Benchmark: name}
		for si, s := range schemes {
			res, err := results[ni*len(schemes)+si], errs[ni*len(schemes)+si]
			if err != nil {
				return nil, err
			}
			if res.Failed {
				continue
			}
			switch s {
			case Lockdown:
				r.LockdownStrongFPs = res.Violations
			case LockdownWeak:
				r.LockdownWeakFPs = res.Violations
			case JCFIHybrid:
				r.JCFIFPs = res.Violations
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatSoundness renders the soundness study.
func FormatSoundness(rs []SoundnessResult) string {
	var b strings.Builder
	b.WriteString("Soundness (§6.2.2): false positives on benign callback workloads\n")
	fmt.Fprintf(&b, "%-14s%18s%18s%10s\n", "benchmark", "lockdown-strong", "lockdown-weak", "jcfi")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-14s%18d%18d%10d\n",
			r.Benchmark, r.LockdownStrongFPs, r.LockdownWeakFPs, r.JCFIFPs)
	}
	return b.String()
}

// sortedNames is a test helper.
func sortedNames(rows []metrics.Row) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r.Label)
	}
	sort.Strings(out)
	return out
}
