package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/spec"
)

// Figure is one regenerated table/figure: per-benchmark series plus the
// formatted text the jexp tool prints.
type Figure struct {
	Title      string
	Benchmarks []string
	Rows       []metrics.Row
	// Notes records failures (x marks) and commentary.
	Notes []string
}

// Format renders the figure as text.
func (f *Figure) Format(unit string) string {
	out := metrics.FormatTable(f.Title, f.Benchmarks, f.Rows, unit)
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// sweep runs the given schemes over workloads, collecting one Row per
// scheme, with the chosen metric extractor.
func sweep(workloads []*spec.Workload, schemes []Scheme,
	metric func(*Result) float64) (*Figure, error) {

	fig := &Figure{}
	rows := map[Scheme]metrics.Row{}
	for _, s := range schemes {
		rows[s] = metrics.Row{Label: string(s), Values: map[string]float64{}}
	}
	for _, w := range workloads {
		fig.Benchmarks = append(fig.Benchmarks, w.Name)
		for _, s := range schemes {
			res, err := Run(w, s)
			if err != nil {
				return nil, err
			}
			if res.Failed {
				fig.Notes = append(fig.Notes,
					fmt.Sprintf("%s/%s: x (%s)", w.Name, s, res.Reason))
				continue
			}
			rows[s].Values[w.Name] = metric(res)
		}
	}
	for _, s := range schemes {
		fig.Rows = append(fig.Rows, rows[s])
	}
	return fig, nil
}

// workloadSet returns the full suite, or a subset by name, with the given
// scale applied.
func workloadSet(scale int, names ...string) []*spec.Workload {
	var out []*spec.Workload
	for _, w := range spec.All() {
		if len(names) > 0 {
			found := false
			for _, n := range names {
				if n == w.Name {
					found = true
				}
			}
			if !found {
				continue
			}
		}
		cp := *w
		cp.Scale = scale
		out = append(out, &cp)
	}
	return out
}

// slowdown is the Figure 7/8/9/11 metric.
func slowdown(r *Result) float64 { return r.Slowdown }

// Fig7 regenerates Figure 7: JASan (binary ASan) overhead versus the
// dynamic-only Valgrind and static-only Retrowrite baselines.
// Paper geomeans: Valgrind 9.83×, JASan-dyn 4.55×, Retrowrite 2.98× (C
// benchmarks only), JASan-hybrid 2.98×.
func Fig7(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Valgrind, JASanDyn, Retrowrite, JASanHybrid}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 7: JASan overhead vs native (slowdown factor)"
	return fig, nil
}

// Fig8 regenerates Figure 8: JASan's overhead breakdown — DynamoRIO null
// client, conservative hybrid (base), liveness-optimised hybrid (full),
// dynamic-only. Paper: full improves 27% over base.
func Fig8(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{NullClient, JASanHybrid, JASanHybridBase, JASanDyn}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 8: JASan overhead breakdown (slowdown factor)"
	return fig, nil
}

// Fig9 regenerates Figure 9: JCFI overhead versus Lockdown and BinCFI.
// Paper geomeans: Lockdown 1.21×, JCFI-dyn 1.37×, JCFI-hybrid 1.29×,
// BinCFI 1.22×.
func Fig9(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Lockdown, JCFIDyn, JCFIHybrid, BinCFI}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 9: JCFI overhead vs native (slowdown factor)"
	return fig, nil
}

// Fig11 regenerates Figure 11: forward-only versus full (forward+shadow-
// stack) JCFI. Paper: 1.15× forward-only, 1.29× full.
func Fig11(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{NullClient, JCFIForward, JCFIHybrid}, slowdown)
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 11: forward/backward contribution to JCFI overhead (slowdown factor)"
	return fig, nil
}

// Fig12 regenerates Figure 12: dynamic AIR for Lockdown strong, JCFI-dyn,
// JCFI-hybrid and Lockdown weak. Paper: JCFI-hybrid 99.8% dropping to 99.6%
// without static analysis; Lockdown(S) slightly higher but unsound.
func Fig12(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...),
		[]Scheme{Lockdown, JCFIDyn, JCFIHybrid, LockdownWeak},
		func(r *Result) float64 { return r.DAIR })
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 12: dynamic average indirect-target reduction, DAIR (%)"
	return fig, nil
}

// Fig13 regenerates Figure 13: static AIR of JCFI versus BinCFI.
// Paper: JCFI >99.7%, BinCFI 98.8%.
func Fig13(names ...string) (*Figure, error) {
	fig := &Figure{Title: "Figure 13: static average indirect-target reduction, AIR (%)"}
	jcfiRow := metrics.Row{Label: "jcfi", Values: map[string]float64{}}
	binRow := metrics.Row{Label: "bincfi", Values: map[string]float64{}}
	for _, w := range workloadSet(1, names...) {
		fig.Benchmarks = append(fig.Benchmarks, w.Name)
		jAIR, bAIR, bFailed, err := StaticAIR(w)
		if err != nil {
			return nil, err
		}
		jcfiRow.Values[w.Name] = jAIR
		if bFailed != "" {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s/bincfi: x (%s)", w.Name, bFailed))
		} else {
			binRow.Values[w.Name] = bAIR
		}
	}
	fig.Rows = []metrics.Row{jcfiRow, binRow}
	return fig, nil
}

// Fig14 regenerates Figure 14: the fraction of executed basic blocks only
// discovered dynamically. Paper: mean 4.4%, cactusADM 92.4%, lbm 18.7%.
func Fig14(scale int, names ...string) (*Figure, error) {
	fig, err := sweep(workloadSet(scale, names...), []Scheme{JASanHybrid},
		func(r *Result) float64 { return 100 * r.Coverage.DynamicFraction() })
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 14: executed basic blocks only discovered dynamically (%)"
	fig.Rows[0].Label = "dynamic-blocks"
	// The paper reports the arithmetic mean (4.44%), which keeps the many
	// all-static benchmarks in the denominator.
	sum := 0.0
	for _, b := range fig.Benchmarks {
		sum += fig.Rows[0].Values[b]
	}
	if n := len(fig.Benchmarks); n > 0 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("arithmetic mean: %.2f%%", sum/float64(n)))
	}
	return fig, nil
}

// SoundnessResult captures the §6.2.2 study: false positives on benign
// callback-using benchmarks.
type SoundnessResult struct {
	Benchmark         string
	LockdownStrongFPs int
	LockdownWeakFPs   int
	JCFIFPs           int
}

// Soundness reruns the callback benchmarks (gcc, h264ref, cactusADM) under
// Lockdown strong/weak and JCFI-hybrid, counting false positives on benign
// executions. Paper: Lockdown(S) false-positives on all three; JCFI none.
func Soundness(scale int) ([]SoundnessResult, error) {
	var out []SoundnessResult
	for _, name := range []string{"gcc", "h264ref", "cactusADM"} {
		w := *spec.ByName(name)
		w.Scale = scale
		r := SoundnessResult{Benchmark: name}
		for _, s := range []Scheme{Lockdown, LockdownWeak, JCFIHybrid} {
			res, err := Run(&w, s)
			if err != nil {
				return nil, err
			}
			if res.Failed {
				continue
			}
			switch s {
			case Lockdown:
				r.LockdownStrongFPs = res.Violations
			case LockdownWeak:
				r.LockdownWeakFPs = res.Violations
			case JCFIHybrid:
				r.JCFIFPs = res.Violations
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatSoundness renders the soundness study.
func FormatSoundness(rs []SoundnessResult) string {
	var b strings.Builder
	b.WriteString("Soundness (§6.2.2): false positives on benign callback workloads\n")
	fmt.Fprintf(&b, "%-14s%18s%18s%10s\n", "benchmark", "lockdown-strong", "lockdown-weak", "jcfi")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-14s%18d%18d%10d\n",
			r.Benchmark, r.LockdownStrongFPs, r.LockdownWeakFPs, r.JCFIFPs)
	}
	return b.String()
}

// sortedNames is a test helper.
func sortedNames(rows []metrics.Row) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r.Label)
	}
	sort.Strings(out)
	return out
}
