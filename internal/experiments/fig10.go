package experiments

import (
	"fmt"

	"repro/internal/juliet"
)

// Fig10Result is the Fig. 10 table: security properties over the 624 Juliet
// CWE-122 test cases.
type Fig10Result struct {
	Valgrind *juliet.Tally
	JASan    *juliet.Tally
}

// Fig10 regenerates Figure 10. Paper: Valgrind FP 0 / TN 624 / TP 504 /
// FN 120; JASan FP 0 / TN 624 / TP 528 / FN 96.
func Fig10() (*Fig10Result, error) {
	cases := juliet.Suite()
	vg, err := juliet.Evaluate(juliet.Valgrind, cases)
	if err != nil {
		return nil, err
	}
	ja, err := juliet.Evaluate(juliet.JASan, cases)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Valgrind: vg, JASan: ja}, nil
}

// Format renders the Fig. 10 table.
func (r *Fig10Result) Format() string {
	out := "Figure 10: security properties across 624 Juliet NIST CWE-122 test cases\n"
	out += fmt.Sprintf("%-24s%12s%12s\n", "", "Valgrind", "JASan")
	out += fmt.Sprintf("%-24s%12d%12d\n", "good: False Positives", r.Valgrind.FP, r.JASan.FP)
	out += fmt.Sprintf("%-24s%12d%12d\n", "good: True Negatives", r.Valgrind.TN, r.JASan.TN)
	out += fmt.Sprintf("%-24s%12d%12d\n", "bad:  True Positives", r.Valgrind.TP, r.JASan.TP)
	out += fmt.Sprintf("%-24s%12d%12d\n", "bad:  False Negatives", r.Valgrind.FN, r.JASan.FN)
	return out
}
