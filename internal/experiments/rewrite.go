package experiments

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rewrite"
	"repro/internal/spec"
)

// RunBackend executes one (workload, scheme, backend) cell of the bake-off.
// BackendDynamic delegates to Run; the static and hybrid backends capture
// the scheme's rewrite plans through the shared analysis service (cached,
// keyed per mode), bake them into the program's modules ahead of time, and
// execute the result natively (static) or under the failing-over dispatcher
// (hybrid). Exit status and output are checked against the uninstrumented
// native run, exactly like the dynamic path.
func RunBackend(w *spec.Workload, scheme Scheme, backend Backend) (*Result, error) {
	if backend == BackendDynamic {
		return Run(w, scheme)
	}
	if backend != BackendStatic && backend != BackendHybrid {
		return nil, fmt.Errorf("unknown backend %q", backend)
	}

	native, err := runNative(w, false)
	if err != nil {
		return nil, fmt.Errorf("%s: native: %w", w.Name, err)
	}
	res := &Result{Benchmark: w.Name, Scheme: scheme, Backend: backend,
		NativeCycles: native.Cycles}

	tool, static, err := newTool(scheme)
	if err != nil {
		return nil, err
	}
	if !static {
		res.Failed = true
		res.Reason = "scheme has no static stage to capture rewrite plans from"
		return res, nil
	}
	if _, ok := tool.(core.PlannedTool); !ok {
		res.Failed = true
		res.Reason = "tool exposes no per-instruction plans"
		return res, nil
	}

	main, reg, err := w.Build(false)
	if err != nil {
		return nil, err
	}
	files, err := service.AnalyzeProgram(main, reg, tool)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s: static analysis: %w", w.Name, scheme, backend, err)
	}
	freshTool := func() core.Tool {
		t, _, _ := newTool(scheme)
		return t
	}
	plans, err := service.RewritePlans(main, reg, files, freshTool, string(backend))
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s: plan capture: %w", w.Name, scheme, backend, err)
	}

	var out bytes.Buffer
	opts := rewrite.Options{MaxInstrs: maxInstrs, Out: &out}
	var rr *rewrite.RunResult
	if backend == BackendStatic {
		rr, err = rewrite.RunStatic(main, reg, tool, files, plans, opts)
	} else {
		rr, err = rewrite.RunHybrid(main, reg, tool, files, plans, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s: run: %w", w.Name, scheme, backend, err)
	}
	m := rr.Machine
	if m.ExitStatus != native.ExitStatus {
		return nil, fmt.Errorf("%s/%s/%s: semantics broken: exit %d, native %d",
			w.Name, scheme, backend, m.ExitStatus, native.ExitStatus)
	}
	if !bytes.Equal(out.Bytes(), native.Output) {
		return nil, fmt.Errorf("%s/%s/%s: semantics broken: output diverges from native",
			w.Name, scheme, backend)
	}

	res.Cycles = m.Cycles
	res.Slowdown = metrics.Slowdown(m.Cycles, native.Cycles)
	res.ExitStatus = m.ExitStatus
	res.Instrs = m.Instrs
	res.Output = out.Bytes()
	res.Coverage = rr.Runtime.Coverage
	res.ElidedChecks, res.NarrowedBranches = countProofRules(files)
	res.Violations = toolViolations(tool)
	return res, nil
}

// rewriteSchemes are the bake-off's schemes: every Janitizer configuration
// with a static stage whose plans both AOT backends can consume.
var rewriteSchemes = []Scheme{JASanHybrid, JCFIHybrid, JMSanHybrid, Comprehensive}

// rewriteBackends is the bake-off's backend axis.
var rewriteBackends = []Backend{BackendDynamic, BackendStatic, BackendHybrid}

// BenchRewrite runs the three-way bake-off — every rewrite scheme under the
// dynamic, static and hybrid backends — and folds each (scheme, backend)
// cell into one geomean row: the BENCH_REWRITE.json artifact.
func BenchRewrite(scale int, names ...string) ([]BenchRow, error) {
	workloads := workloadSet(scale, names...)
	sort.Slice(workloads, func(i, j int) bool {
		return workloads[i].Name < workloads[j].Name
	})
	ns, nb := len(rewriteSchemes), len(rewriteBackends)
	results := make([]*Result, len(workloads)*ns*nb)
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		w := workloads[i/(ns*nb)]
		s := rewriteSchemes[(i/nb)%ns]
		b := rewriteBackends[i%nb]
		results[i], errs[i] = RunBackend(w, s, b)
	})

	var rows []BenchRow
	for si, s := range rewriteSchemes {
		for bi, b := range rewriteBackends {
			var slowdowns []float64
			for wi := range workloads {
				idx := wi*ns*nb + si*nb + bi
				res, err := results[idx], errs[idx]
				if err != nil {
					return nil, err
				}
				if res.Failed {
					continue
				}
				slowdowns = append(slowdowns, res.Slowdown)
			}
			rows = append(rows, BenchRow{
				Scheme:          s,
				Backend:         b,
				GeomeanSlowdown: metrics.Geomean(slowdowns),
				Benchmarks:      len(slowdowns),
			})
		}
	}
	return rows, nil
}
