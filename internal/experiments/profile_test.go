package experiments

import (
	"encoding/json"
	"testing"
)

// TestProfileAttributionSumsExactly is the acceptance criterion on a CI-fast
// subset: per (benchmark, scheme) cell the attributed components sum
// exactly to the instrumented-minus-native cycle delta, and the app cost
// center reproduces the native measurement. Profile itself enforces both
// identities per cell (profileRow errors on violation), so this test is a
// run of the harness plus structural checks on the artifact.
func TestProfileAttributionSumsExactly(t *testing.T) {
	rep, err := Profile(1, "mcf", "lbm")
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(benchSchemes); len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}
	for _, row := range rep.Rows {
		if got, want := row.Components.Sum(), row.Cycles-row.NativeCycles; got != want {
			t.Errorf("%s/%s: components sum %d != overhead %d",
				row.Benchmark, row.Scheme, got, want)
		}
		if row.AppCycles != row.NativeCycles {
			t.Errorf("%s/%s: app cycles %d != native %d",
				row.Benchmark, row.Scheme, row.AppCycles, row.NativeCycles)
		}
		if row.Slowdown <= 1 {
			t.Errorf("%s/%s: slowdown %.3f, want > 1", row.Benchmark, row.Scheme, row.Slowdown)
		}
	}
	for _, s := range rep.Schemes {
		if s.Benchmarks != 2 {
			t.Errorf("%s: benchmarks = %d, want 2", s.Scheme, s.Benchmarks)
		}
		if s.OverheadCycles == 0 {
			t.Errorf("%s: zero overhead implausible", s.Scheme)
			continue
		}
		sum := s.ShadowUpdateFrac + s.CheckFrac + s.ElidedFrac + s.DispatchFrac + s.OtherFrac
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: component fractions sum to %f, want 1", s.Scheme, sum)
		}
	}
	// The artifact round-trips as JSON.
	var back ProfileReport
	if err := json.Unmarshal([]byte(FormatProfileJSON(rep)), &back); err != nil {
		t.Fatalf("BENCH_PROFILE.json not parseable: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) || len(back.Schemes) != len(rep.Schemes) {
		t.Error("JSON round-trip lost rows")
	}
}

// TestTelemetryDisabledParity proves the <1% disabled-overhead guard at its
// strongest: with no profile attached the cycle and instruction counts are
// bit-identical to a profiled run — the telemetry layer observes the cycle
// model without ever feeding back into it.
func TestTelemetryDisabledParity(t *testing.T) {
	w := workloadSet(1, "mcf")[0]
	plain, err := Run(w, JASanHybrid)
	if err != nil {
		t.Fatal(err)
	}
	profiled, prof, err := RunProfiled(w, JASanHybrid)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != profiled.Cycles || plain.Instrs != profiled.Instrs {
		t.Fatalf("profiling changed the measurement: cycles %d vs %d, instrs %d vs %d",
			plain.Cycles, profiled.Cycles, plain.Instrs, profiled.Instrs)
	}
	if prof.TotalCycles() != profiled.Cycles {
		t.Fatalf("profile total %d != machine cycles %d", prof.TotalCycles(), profiled.Cycles)
	}
}
