package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Components is the per-rule overhead decomposition of one instrumented
// run, in model cycles. The fields sum exactly to Cycles−NativeCycles: the
// DBM charges every executed instruction (and every dispatch cost) to
// exactly one cost center, and the application's own instruction stream is
// identical under translation, so the attribution is an identity, not an
// estimate.
type Components struct {
	// ShadowUpdate is metadata maintenance: canary (un)poisoning, shadow
	// stack pushes, definedness-shadow stores.
	ShadowUpdate uint64 `json:"shadow_update_cycles"`
	// Check is verification: bounds/definedness/CFI checks.
	Check uint64 `json:"check_cycles"`
	// Elided is residual meta code at statically discharged sites.
	Elided uint64 `json:"elided_cycles"`
	// Dispatch is the modifier's own cost: block translation and
	// indirect-CTI lookups.
	Dispatch uint64 `json:"dispatch_cycles"`
	// Other is meta code no tool attributed to a rule kind.
	Other uint64 `json:"other_cycles"`
}

// Sum returns the total attributed overhead.
func (c Components) Sum() uint64 {
	return c.ShadowUpdate + c.Check + c.Elided + c.Dispatch + c.Other
}

// ProfileRow is one (benchmark, scheme) attributed measurement.
type ProfileRow struct {
	Benchmark    string     `json:"benchmark"`
	Scheme       Scheme     `json:"scheme"`
	Backend      Backend    `json:"backend"`
	NativeCycles uint64     `json:"native_cycles"`
	Cycles       uint64     `json:"cycles"`
	Slowdown     float64    `json:"slowdown"`
	AppCycles    uint64     `json:"app_cycles"`
	Components   Components `json:"components"`
}

// ProfileScheme is one scheme's suite-wide summary: the geomean slowdown of
// Fig. 8/9/11 decomposed into overhead-component fractions (each component's
// share of the total attributed overhead cycles across the suite).
type ProfileScheme struct {
	Scheme          Scheme  `json:"scheme"`
	Backend         Backend `json:"backend"`
	GeomeanSlowdown float64 `json:"geomean_slowdown"`
	Benchmarks      int     `json:"benchmarks"`
	// OverheadCycles is the summed Cycles−NativeCycles across the suite.
	OverheadCycles uint64 `json:"overhead_cycles"`
	// Fractions of OverheadCycles; they sum to 1 (up to rounding) when
	// OverheadCycles is non-zero.
	ShadowUpdateFrac float64 `json:"shadow_update_frac"`
	CheckFrac        float64 `json:"check_frac"`
	ElidedFrac       float64 `json:"elided_frac"`
	DispatchFrac     float64 `json:"dispatch_frac"`
	OtherFrac        float64 `json:"other_frac"`
}

// ProfileReport is the BENCH_PROFILE.json artifact.
type ProfileReport struct {
	Rows    []ProfileRow    `json:"rows"`
	Schemes []ProfileScheme `json:"schemes"`
}

// profileRow runs one profiled cell and folds the telemetry profile into
// the attributed row, enforcing the attribution identity.
func profileRow(res *Result, prof *telemetry.Profile) (ProfileRow, error) {
	b := prof.Breakdown()
	row := ProfileRow{
		Benchmark:    res.Benchmark,
		Scheme:       res.Scheme,
		Backend:      res.Backend,
		NativeCycles: res.NativeCycles,
		Cycles:       res.Cycles,
		Slowdown:     res.Slowdown,
		AppCycles:    b.App,
		Components: Components{
			ShadowUpdate: b.ShadowUpdate,
			Check:        b.Check,
			Elided:       b.Elided,
			Dispatch:     b.Dispatch,
			Other:        b.Other,
		},
	}
	// The attribution identity, enforced per cell rather than trusted:
	// every overhead cycle lands in exactly one component, and the
	// application center reproduces the native measurement exactly.
	if row.AppCycles != row.NativeCycles {
		return row, fmt.Errorf("%s/%s: app center %d cycles != native %d",
			res.Benchmark, res.Scheme, row.AppCycles, row.NativeCycles)
	}
	if got, want := row.Components.Sum(), row.Cycles-row.NativeCycles; got != want {
		return row, fmt.Errorf("%s/%s: components sum to %d, overhead is %d",
			res.Benchmark, res.Scheme, got, want)
	}
	return row, nil
}

// Profile runs every benchmarked scheme over the workload suite with cost
// attribution enabled and decomposes each scheme's slowdown into
// shadow-update/check/elided/dispatch components. Deterministic at any
// parallelism: fixed scheme order, name-sorted workloads.
func Profile(scale int, names ...string) (*ProfileReport, error) {
	workloads := workloadSet(scale, names...)
	sort.Slice(workloads, func(i, j int) bool {
		return workloads[i].Name < workloads[j].Name
	})
	ns := len(benchSchemes)
	results := make([]*Result, len(workloads)*ns)
	profs := make([]*telemetry.Profile, len(results))
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], profs[i], errs[i] = RunProfiled(workloads[i/ns], benchSchemes[i%ns])
	})

	rep := &ProfileReport{}
	for si, s := range benchSchemes {
		var slowdowns []float64
		var overhead uint64
		var total Components
		for wi := range workloads {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			if res.Failed {
				continue
			}
			row, err := profileRow(res, profs[wi*ns+si])
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
			slowdowns = append(slowdowns, res.Slowdown)
			overhead += res.Cycles - res.NativeCycles
			total.ShadowUpdate += row.Components.ShadowUpdate
			total.Check += row.Components.Check
			total.Elided += row.Components.Elided
			total.Dispatch += row.Components.Dispatch
			total.Other += row.Components.Other
		}
		frac := func(v uint64) float64 {
			if overhead == 0 {
				return 0
			}
			return float64(v) / float64(overhead)
		}
		rep.Schemes = append(rep.Schemes, ProfileScheme{
			Scheme:           s,
			Backend:          BackendDynamic,
			GeomeanSlowdown:  metrics.Geomean(slowdowns),
			Benchmarks:       len(slowdowns),
			OverheadCycles:   overhead,
			ShadowUpdateFrac: frac(total.ShadowUpdate),
			CheckFrac:        frac(total.Check),
			ElidedFrac:       frac(total.Elided),
			DispatchFrac:     frac(total.Dispatch),
			OtherFrac:        frac(total.Other),
		})
	}
	// Rows grouped by scheme; regroup by (benchmark, scheme) for a stable
	// reading order matching the other figure artifacts.
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Benchmark != rep.Rows[j].Benchmark {
			return rep.Rows[i].Benchmark < rep.Rows[j].Benchmark
		}
		return string(rep.Rows[i].Scheme) < string(rep.Rows[j].Scheme)
	})
	return rep, nil
}

// FormatProfileJSON renders the report as the BENCH_PROFILE.json artifact.
func FormatProfileJSON(rep *ProfileReport) string {
	j, _ := json.MarshalIndent(rep, "", "  ")
	return string(j) + "\n"
}

// FormatProfile renders the per-scheme decomposition as a human-readable
// table.
func FormatProfile(rep *ProfileReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %6s %8s %8s %8s %8s %8s\n",
		"scheme", "geomean", "n", "shadow", "check", "elided", "dispatch", "other")
	for _, s := range rep.Schemes {
		fmt.Fprintf(&b, "%-18s %8.2fx %6d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			s.Scheme, s.GeomeanSlowdown, s.Benchmarks,
			100*s.ShadowUpdateFrac, 100*s.CheckFrac, 100*s.ElidedFrac,
			100*s.DispatchFrac, 100*s.OtherFrac)
	}
	return strings.TrimRight(b.String(), "\n")
}
