// Package experiments is the evaluation harness: it runs every scheme on
// every workload and regenerates each table and figure of the paper's
// evaluation section (Figs. 7–14 plus the §6.2.2 soundness study). See
// EXPERIMENTS.md for the paper-vs-measured record.
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/anserve"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/diag"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/jmsan"
	"repro/internal/jtsan"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Scheme names one configuration of one tool.
type Scheme string

// The evaluated schemes.
const (
	Native          Scheme = "native"
	NullClient      Scheme = "null-client"
	JASanHybrid     Scheme = "jasan-hybrid"
	JASanHybridBase Scheme = "jasan-hybrid-base" // no liveness optimisation
	JASanSCEV       Scheme = "jasan-scev"        // hybrid + SCEV check hoisting (ablation)
	JASanElide      Scheme = "jasan-elide"       // hybrid + VSA proof-carrying check elision
	JASanDyn        Scheme = "jasan-dyn"
	Valgrind        Scheme = "valgrind"
	Retrowrite      Scheme = "retrowrite"
	JCFIHybrid      Scheme = "jcfi-hybrid"
	JCFIForward     Scheme = "jcfi-forward" // forward-edge CFI only
	JCFINarrow      Scheme = "jcfi-narrow"  // hybrid + VSA indirect-target narrowing
	JCFIDyn         Scheme = "jcfi-dyn"
	Lockdown        Scheme = "lockdown"
	LockdownWeak    Scheme = "lockdown-weak"
	BinCFI          Scheme = "bincfi"
	JMSanHybrid     Scheme = "jmsan-hybrid"
	JMSanElide      Scheme = "jmsan-elide" // hybrid + VSA def-init check elision
	JMSanDyn        Scheme = "jmsan-dyn"
	ValgrindDef     Scheme = "valgrind-def" // memcheck model with validity bits
	JTSanHybrid     Scheme = "jtsan-hybrid"
	JTSanElide      Scheme = "jtsan-elide" // hybrid + VSA no-escape check elision
	JTSanDyn        Scheme = "jtsan-dyn"
	ValgrindTemp    Scheme = "valgrind-temporal" // memcheck model with generation tags
	// Comprehensive is the combined jasan+jmsan+jtsan+jcfi configuration:
	// all four Janitizer tools composed over one shared translation of
	// every block (core.MultiTool).
	Comprehensive Scheme = "comprehensive"
)

// Backend identifies the execution backend a measurement ran under: the
// dynamic binary modifier (the default), the static AOT rewriter, or the
// hybrid that runs statically rewritten code and fails over to the DBM.
type Backend string

// The execution backends of the bake-off.
const (
	BackendDynamic Backend = "dynamic"
	BackendStatic  Backend = "static"
	BackendHybrid  Backend = "hybrid"
)

// Result is one (benchmark, scheme, backend) measurement.
type Result struct {
	Benchmark string
	Scheme    Scheme
	// Backend is the execution backend the measurement ran under.
	Backend Backend
	// Failed marks configurations the scheme cannot run (the x marks of
	// the figures); Reason explains why.
	Failed bool
	Reason string

	Cycles       uint64
	NativeCycles uint64
	Slowdown     float64
	ExitStatus   int64
	// Instrs is the retired instruction count of the instrumented run —
	// the elision study's metric (checks removed shrink the dynamic
	// instruction stream even when cycle weights hide it).
	Instrs uint64

	Violations int
	Coverage   core.CoverageStats
	// Output is the program's captured stdout — the backend parity tests
	// demand it byte-identical across dynamic, static and hybrid runs.
	Output []byte
	// ElidedChecks counts MEM_ACCESS_SAFE rules with a VSA-backed
	// provenance (SafeFrame/SafeGlobal/SafeDedup/SafeDefInit) across the
	// program's static rule files; NarrowedBranches counts CFI_JUMP_NARROW
	// rules.
	ElidedChecks     int
	NarrowedBranches int
	// DAIR is the dynamic average indirect-target reduction (CFI schemes).
	DAIR float64
}

// maxInstrs bounds each run.
const maxInstrs = 400_000_000

// service is the evaluation's shared analysis service: one content-
// addressed rule cache for the whole process, so a module analyzed for one
// (workload, scheme) cell — above all libj, which every workload links — is
// reused by every later cell with the same tool configuration, within a
// figure and across figures of a `jexp all` run.
var service = anserve.New(anserve.Config{})

// AnalysisStats exposes the shared service's cache/scheduler counters
// (printed by jexp -stats).
func AnalysisStats() anserve.Stats { return service.Stats() }

// runNative measures the uninstrumented baseline.
func runNative(w *spec.Workload, pic bool) (*Result, error) {
	main, reg, err := w.Build(pic)
	if err != nil {
		return nil, err
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = maxInstrs
	var out bytes.Buffer
	m.Out = &out
	proc := loader.NewProcess(m, reg)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		return nil, err
	}
	if err := m.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		return nil, err
	}
	return &Result{Benchmark: w.Name, Scheme: Native, Backend: BackendDynamic,
		Cycles: m.Cycles, NativeCycles: m.Cycles, Slowdown: 1,
		ExitStatus: m.ExitStatus, Instrs: m.Instrs, Output: out.Bytes()}, nil
}

// Run executes one (workload, scheme) configuration. A nil error with
// Result.Failed set means the scheme cannot handle the benchmark — the
// figures' x marks; hard errors are real harness problems.
func Run(w *spec.Workload, scheme Scheme) (*Result, error) {
	return runWith(w, scheme, nil, nil)
}

// RunProfiled is Run with per-rule cost attribution: the DBM charges every
// executed instruction's cycles to its cost center, decomposing the
// measured overhead into shadow-update/check/elided/dispatch components.
// The profile never perturbs the cycle model — Run and RunProfiled measure
// identical Cycles/Instrs.
func RunProfiled(w *spec.Workload, scheme Scheme) (*Result, *telemetry.Profile, error) {
	prof := &telemetry.Profile{}
	res, err := runWith(w, scheme, prof, nil)
	return res, prof, err
}

// obsSink wires the full observability stack into a run: a span per
// execution (exported through tr), post-run structured-diagnostics
// collection into dlog, and a trace-exemplared duration observation into
// hist. All of it lives outside the VM's cycle model, so an observed run
// must measure identical Cycles/Instrs to a plain one — the invariant the
// Obs experiment gates.
type obsSink struct {
	tr   *telemetry.Tracer
	dlog *diag.Log
	hist *telemetry.Histogram
}

func runWith(w *spec.Workload, scheme Scheme, prof *telemetry.Profile, obs *obsSink) (*Result, error) {
	native, err := runNative(w, scheme == Retrowrite)
	if err != nil {
		return nil, fmt.Errorf("%s: native: %w", w.Name, err)
	}
	if scheme == Native {
		return native, nil
	}

	res := &Result{Benchmark: w.Name, Scheme: scheme, NativeCycles: native.Cycles}
	fail := func(reason string) (*Result, error) {
		res.Failed = true
		res.Reason = reason
		return res, nil
	}

	// Scheme applicability gates.
	switch scheme {
	case Retrowrite:
		if !w.Retrowritable() {
			return fail(fmt.Sprintf("retrowrite does not support %s input", w.Lang))
		}
	case Lockdown, LockdownWeak:
		if w.LockdownBroken {
			return fail("lockdown prototype fails on this benchmark (§6.2.1)")
		}
	}

	pic := scheme == Retrowrite
	main, reg, err := w.Build(pic)
	if err != nil {
		return nil, err
	}

	if scheme == BinCFI {
		// Rewriting-feasibility check over every static module.
		probe := baseline.NewBinCFI()
		mods, err := loader.LddClosure(main, reg)
		if err != nil {
			return nil, err
		}
		for _, mod := range mods {
			g, err := cfg.Build(mod)
			if err != nil {
				return nil, err
			}
			if err := probe.CheckInput(mod, g); err != nil {
				return fail(err.Error())
			}
		}
	}

	// Build the tool and decide whether a static stage runs.
	tool, static, err := newTool(scheme)
	if err != nil {
		return nil, err
	}
	if rw, ok := tool.(*baseline.RetrowriteTool); ok {
		if err := rw.CheckInput(main); err != nil {
			return fail(err.Error())
		}
	}

	files := map[string]*rules.File{}
	if static {
		files, err = service.AnalyzeProgram(main, reg, tool)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: static analysis: %w", w.Name, scheme, err)
		}
	}

	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = maxInstrs
	var out bytes.Buffer
	m.Out = &out
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	if prof != nil {
		rt.DBM.Prof = prof
	}
	lm, err := proc.LoadProgram(main)
	if err != nil {
		return nil, err
	}
	var sp *telemetry.Span
	var started time.Time
	if obs != nil {
		sp = obs.tr.Start("exp.run",
			telemetry.String("benchmark", w.Name),
			telemetry.String("scheme", string(scheme)))
		started = time.Now()
	}
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		if sp != nil {
			sp.SetError(err.Error())
			sp.End()
		}
		return nil, fmt.Errorf("%s/%s: run: %w", w.Name, scheme, err)
	}
	if obs != nil {
		sp.AddEvent("run-complete",
			telemetry.Int("instrs", int64(m.Instrs)),
			telemetry.Int("cycles", int64(m.Cycles)))
		sp.End()
		diag.Collect(obs.dlog, tool, diag.NewProcessSymbolizer(proc), sp.Context())
		obs.hist.ObserveExemplar(time.Since(started).Seconds(), sp.TraceID())
	}
	if m.ExitStatus != native.ExitStatus {
		return nil, fmt.Errorf("%s/%s: semantics broken: exit %d, native %d",
			w.Name, scheme, m.ExitStatus, native.ExitStatus)
	}
	if !bytes.Equal(out.Bytes(), native.Output) {
		return nil, fmt.Errorf("%s/%s: semantics broken: output diverges from native",
			w.Name, scheme)
	}

	res.Backend = BackendDynamic
	res.Cycles = m.Cycles
	res.Slowdown = metrics.Slowdown(m.Cycles, native.Cycles)
	res.ExitStatus = m.ExitStatus
	res.Instrs = m.Instrs
	res.Output = out.Bytes()
	res.Coverage = rt.Coverage
	res.ElidedChecks, res.NarrowedBranches = countProofRules(files)

	res.Violations = toolViolations(tool)
	switch tt := tool.(type) {
	case *jcfi.Tool:
		res.DAIR = tt.DynamicAIR()
	case *baseline.LockdownTool:
		res.DAIR = tt.DynamicAIR()
	case *baseline.BinCFITool:
		res.DAIR = tt.AIR()
	}
	return res, nil
}

// newTool builds the scheme's tool and reports whether its static analysis
// stage runs. Each call returns a fresh instance — plan capture and the
// measured run must not share tool state.
func newTool(scheme Scheme) (core.Tool, bool, error) {
	switch scheme {
	case NullClient:
		return &passthroughTool{}, false, nil
	case JASanHybrid:
		return jasan.New(jasan.Config{UseLiveness: true}), true, nil
	case JASanSCEV:
		return jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true}), true, nil
	case JASanElide:
		return jasan.New(jasan.Config{UseLiveness: true, Elide: true}), true, nil
	case JASanHybridBase:
		return jasan.New(jasan.Config{UseLiveness: false, UseSCEV: false}), true, nil
	case JASanDyn:
		return jasan.New(jasan.Config{}), false, nil
	case Valgrind:
		return baseline.NewValgrind(), false, nil
	case Retrowrite:
		return baseline.NewRetrowrite(), true, nil
	case JCFIHybrid:
		return jcfi.New(jcfi.DefaultConfig), true, nil
	case JCFIForward:
		return jcfi.New(jcfi.Config{Forward: true}), true, nil
	case JCFINarrow:
		return jcfi.New(jcfi.Config{Forward: true, Backward: true, Narrow: true}), true, nil
	case JCFIDyn:
		return jcfi.New(jcfi.DefaultConfig), false, nil
	case Lockdown:
		return baseline.NewLockdown(baseline.LockdownConfig{}), false, nil
	case LockdownWeak:
		return baseline.NewLockdown(baseline.LockdownConfig{Weak: true}), false, nil
	case BinCFI:
		return baseline.NewBinCFI(), true, nil
	case JMSanHybrid:
		return jmsan.New(jmsan.Config{UseLiveness: true}), true, nil
	case JMSanElide:
		return jmsan.New(jmsan.Config{UseLiveness: true, Elide: true}), true, nil
	case JMSanDyn:
		return jmsan.New(jmsan.Config{}), false, nil
	case ValgrindDef:
		return baseline.NewValgrindDef(), false, nil
	case JTSanHybrid:
		return jtsan.New(jtsan.Config{UseLiveness: true}), true, nil
	case JTSanElide:
		return jtsan.New(jtsan.Config{UseLiveness: true, Elide: true}), true, nil
	case JTSanDyn:
		return jtsan.New(jtsan.Config{}), false, nil
	case ValgrindTemp:
		return baseline.NewValgrindTemporal(), false, nil
	case Comprehensive:
		return core.NewMultiTool(
			jasan.New(jasan.Config{UseLiveness: true}),
			jmsan.New(jmsan.Config{UseLiveness: true}),
			jtsan.New(jtsan.Config{UseLiveness: true}),
			jcfi.New(jcfi.DefaultConfig)), true, nil
	}
	return nil, false, fmt.Errorf("unknown scheme %q", scheme)
}

// toolViolations extracts a tool's violation count; combined tools sum
// their parts.
func toolViolations(tool core.Tool) int {
	switch tt := tool.(type) {
	case *jasan.Tool:
		return int(tt.Report.Total)
	case *jmsan.Tool:
		return int(tt.Report.Total)
	case *jtsan.Tool:
		return int(tt.Report.Total)
	case *baseline.ValgrindTool:
		n := int(tt.Report.Total)
		if tt.DefReport != nil {
			n += int(tt.DefReport.Total)
		}
		if tt.TemporalReport != nil {
			n += int(tt.TemporalReport.Total)
		}
		return n
	case *baseline.RetrowriteTool:
		return int(tt.Report.Total)
	case *jcfi.Tool:
		return len(tt.Report.Violations)
	case *baseline.LockdownTool:
		return len(tt.Report.Violations)
	case *baseline.BinCFITool:
		return len(tt.Report.Violations)
	case *core.MultiTool:
		n := 0
		for _, sub := range tt.Tools {
			n += toolViolations(sub)
		}
		return n
	}
	return 0
}

// countProofRules tallies the VSA-backed decisions across a program's
// static rule files: MEM_ACCESS_SAFE rules whose provenance word marks a
// frame/global/dedup proof, and CFI_JUMP_NARROW rules.
func countProofRules(files map[string]*rules.File) (elided, narrowed int) {
	for _, f := range files {
		for _, r := range f.Rules {
			switch r.ID {
			case rules.MemAccessSafe:
				switch r.Data[1] {
				case rules.SafeFrame, rules.SafeGlobal, rules.SafeDedup,
					rules.SafeDefInit, rules.SafeNoEscape:
					elided++
				}
			case rules.CFIJumpNarrow:
				narrowed++
			}
		}
	}
	return elided, narrowed
}

// passthroughTool is the null client as a core.Tool (Fig. 8's DynamoRIO
// baseline).
type passthroughTool struct{}

func (passthroughTool) Name() string                                { return "null-client" }
func (passthroughTool) StaticPass(*core.StaticContext) []rules.Rule { return nil }
func (passthroughTool) RuntimeInit(*core.Runtime) error             { return nil }

func (passthroughTool) Instrument(bc *dbm.BlockContext, _ map[uint64][]rules.Rule) []dbm.CInstr {
	return dbm.NullClient{}.OnBlock(bc)
}

func (passthroughTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	return dbm.NullClient{}.OnBlock(bc)
}
