package experiments

import (
	"encoding/json"
	"sort"

	"repro/internal/metrics"
)

// BenchRow is one scheme's suite-wide cost summary: the geometric mean of
// its per-benchmark slowdowns over the workloads it can run, written by
// scripts/bench.sh into BENCH_JANITIZER.json.
type BenchRow struct {
	Scheme Scheme `json:"scheme"`
	// Backend identifies the execution backend the row measured —
	// "dynamic" for the ordinary DBM rows, "static"/"hybrid" for the
	// AOT-rewriting bake-off rows.
	Backend         Backend `json:"backend"`
	GeomeanSlowdown float64 `json:"geomean_slowdown"`
	// Benchmarks counts the workloads contributing to the geomean (a
	// scheme's applicability gates can exclude some).
	Benchmarks int `json:"benchmarks"`
}

// benchSchemes are the Janitizer configurations the benchmark gate tracks:
// each tool's hybrid and elision-enabled variants plus the combined
// jasan+jmsan+jtsan+jcfi configuration.
var benchSchemes = []Scheme{
	JASanHybrid, JASanElide,
	JCFIHybrid,
	JMSanHybrid, JMSanElide,
	JTSanHybrid, JTSanElide,
	Comprehensive,
}

// Bench runs every tracked scheme over the workload suite and folds each
// scheme's slowdowns into one geomean row. Rows come out in a fixed scheme
// order and each geomean is computed over name-sorted workloads, so the
// output is byte-identical across runs and parallelism settings.
func Bench(scale int, names ...string) ([]BenchRow, error) {
	workloads := workloadSet(scale, names...)
	sort.Slice(workloads, func(i, j int) bool {
		return workloads[i].Name < workloads[j].Name
	})
	ns := len(benchSchemes)
	results := make([]*Result, len(workloads)*ns)
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], errs[i] = Run(workloads[i/ns], benchSchemes[i%ns])
	})

	var rows []BenchRow
	for si, s := range benchSchemes {
		var slowdowns []float64
		for wi := range workloads {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			if res.Failed {
				continue
			}
			slowdowns = append(slowdowns, res.Slowdown)
		}
		rows = append(rows, BenchRow{
			Scheme:          s,
			Backend:         BackendDynamic,
			GeomeanSlowdown: metrics.Geomean(slowdowns),
			Benchmarks:      len(slowdowns),
		})
	}
	return rows, nil
}

// FormatBenchJSON renders the rows as an indented JSON array — the entire
// BENCH_JANITIZER.json artifact.
func FormatBenchJSON(rows []BenchRow) string {
	j, _ := json.MarshalIndent(rows, "", "  ")
	return string(j) + "\n"
}
