package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// JTSanRow is one benchmark's measurement of the JTSan temporal-safety
// study: weighted cycle counts under the hybrid sanitizer (with and
// without VSA no-escape elision), the dynamic-only variant, the
// memcheck-style generation-tag baseline, and the combined
// jasan+jmsan+jtsan+jcfi configuration, all normalised against native.
// Cycles are the study's headline metric (the repository's performance
// methodology: slowdown is the weighted-cycle ratio, which is where the
// memcheck model's clean-call expense lives); raw retired-instruction
// counts ride along as informational columns. The hybrid and elide cells
// additionally carry the telemetry cost centers decomposing the temporal
// overhead into generation checking, quarantine maintenance and
// proof-elided residue.
type JTSanRow struct {
	Benchmark    string `json:"benchmark"`
	NativeCycles uint64 `json:"native_cycles"`

	JTSanCycles         uint64 `json:"jtsan_cycles"`
	JTSanElideCycles    uint64 `json:"jtsan_elide_cycles"`
	JTSanDynCycles      uint64 `json:"jtsan_dyn_cycles"`
	ValgrindTempCycles  uint64 `json:"valgrind_temporal_cycles"`
	ComprehensiveCycles uint64 `json:"comprehensive_cycles"`

	// *Slowdown is the weighted-cycle ratio against native (the study's
	// headline metric).
	JTSanSlowdown        float64 `json:"jtsan_slowdown"`
	JTSanElideSlowdown   float64 `json:"jtsan_elide_slowdown"`
	JTSanDynSlowdown     float64 `json:"jtsan_dyn_slowdown"`
	ValgrindTempSlowdown float64 `json:"valgrind_temporal_slowdown"`
	CompSlowdown         float64 `json:"comprehensive_slowdown"`

	// Informational retired-instruction counts. JTSan and the memcheck
	// model instrument the same access set with a similar inline footprint,
	// so these columns tie closely — the baseline's cost difference is in
	// its clean-call cycle weights, not its instruction stream.
	NativeInstrs       uint64 `json:"native_instrs"`
	JTSanInstrs        uint64 `json:"jtsan_instrs"`
	JTSanElideInstrs   uint64 `json:"jtsan_elide_instrs"`
	ValgrindTempInstrs uint64 `json:"valgrind_temporal_instrs"`

	// GenChecksElided counts the MEM_ACCESS_SAFE(no-escape) rules the VSA
	// proofs emitted for the elide cell.
	GenChecksElided int `json:"gen_checks_elided"`
	// Violations is the hybrid cell's use-after-free/double-free report
	// count (elide must agree — elision removes only proven-safe checks).
	Violations int `json:"violations"`

	// Hybrid-cell cost centers: model cycles charged to inline generation
	// checks and to quarantine allocator work (generation-shadow marking,
	// eviction).
	GenCheckCycles   uint64 `json:"gen_check_cycles"`
	QuarantineCycles uint64 `json:"quarantine_cycles"`
	// Elide-cell cost centers: what generation checking costs after
	// no-escape elision, plus residue at elided sites (expected zero —
	// elided rules must emit no code).
	ElideGenCheckCycles uint64 `json:"elide_gen_check_cycles"`
	ElidedCycles        uint64 `json:"elided_cycles"`
}

// jtsanSchemes are the cells measured per benchmark, the native baseline
// first.
var jtsanSchemes = []Scheme{Native, JTSanHybrid, JTSanElide, JTSanDyn,
	ValgrindTemp, Comprehensive}

// JTSan runs the temporal memory-safety study: every workload under
// JTSan-hybrid, JTSan-hybrid+elision, JTSan-dyn, the memcheck-style
// generation-tag baseline and the combined jasan+jmsan+jtsan+jcfi
// configuration, comparing weighted-cycle slowdown against native.
// Every cell runs profiled, so the hybrid and elide rows carry the
// gen-check/quarantine/elided cost-center decomposition. Elision is checked
// for soundness in the report dimension: the elide cell must report exactly
// the violations the hybrid cell reports.
func JTSan(scale int, names ...string) ([]JTSanRow, error) {
	workloads := workloadSet(scale, names...)
	ns := len(jtsanSchemes)
	results := make([]*Result, len(workloads)*ns)
	profs := make([]*telemetry.Profile, len(results))
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], profs[i], errs[i] = RunProfiled(workloads[i/ns], jtsanSchemes[i%ns])
	})

	var rows []JTSanRow
	for wi, w := range workloads {
		byScheme := map[Scheme]*Result{}
		profByScheme := map[Scheme]*telemetry.Profile{}
		for si, s := range jtsanSchemes {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			byScheme[s] = res
			profByScheme[s] = profs[wi*ns+si]
		}
		if h, e := byScheme[JTSanHybrid].Violations, byScheme[JTSanElide].Violations; h != e {
			return nil, fmt.Errorf("%s: elision changed the report count: hybrid %d, elide %d",
				w.Name, h, e)
		}
		hp, ep := profByScheme[JTSanHybrid], profByScheme[JTSanElide]
		row := JTSanRow{
			Benchmark:           w.Name,
			NativeCycles:        byScheme[Native].Cycles,
			JTSanCycles:         byScheme[JTSanHybrid].Cycles,
			JTSanElideCycles:    byScheme[JTSanElide].Cycles,
			JTSanDynCycles:      byScheme[JTSanDyn].Cycles,
			ValgrindTempCycles:  byScheme[ValgrindTemp].Cycles,
			ComprehensiveCycles: byScheme[Comprehensive].Cycles,

			JTSanSlowdown:        byScheme[JTSanHybrid].Slowdown,
			JTSanElideSlowdown:   byScheme[JTSanElide].Slowdown,
			JTSanDynSlowdown:     byScheme[JTSanDyn].Slowdown,
			ValgrindTempSlowdown: byScheme[ValgrindTemp].Slowdown,
			CompSlowdown:         byScheme[Comprehensive].Slowdown,

			NativeInstrs:       byScheme[Native].Instrs,
			JTSanInstrs:        byScheme[JTSanHybrid].Instrs,
			JTSanElideInstrs:   byScheme[JTSanElide].Instrs,
			ValgrindTempInstrs: byScheme[ValgrindTemp].Instrs,

			GenChecksElided:     byScheme[JTSanElide].ElidedChecks,
			Violations:          byScheme[JTSanHybrid].Violations,
			GenCheckCycles:      hp.Cycles[telemetry.CCGenCheck],
			QuarantineCycles:    hp.Cycles[telemetry.CCQuarantine],
			ElideGenCheckCycles: ep.Cycles[telemetry.CCGenCheck],
			ElidedCycles:        ep.Cycles[telemetry.CCElided],
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Benchmark < rows[j].Benchmark })
	return rows, nil
}

// JTSanGeomeans returns the per-scheme geometric means of the rows' cycle
// slowdowns: jtsan-hybrid, jtsan-elide, jtsan-dyn, valgrind-temporal,
// comprehensive.
func JTSanGeomeans(rows []JTSanRow) (hybrid, elide, dyn, vtemp, comp float64) {
	var hs, es, ds, vs, cs []float64
	for _, r := range rows {
		hs = append(hs, r.JTSanSlowdown)
		es = append(es, r.JTSanElideSlowdown)
		ds = append(ds, r.JTSanDynSlowdown)
		vs = append(vs, r.ValgrindTempSlowdown)
		cs = append(cs, r.CompSlowdown)
	}
	return metrics.Geomean(hs), metrics.Geomean(es), metrics.Geomean(ds),
		metrics.Geomean(vs), metrics.Geomean(cs)
}

// FormatJTSan renders the study as a table, the per-scheme geomeans, and one
// machine-readable `BENCH_JTSAN {json}` line per benchmark. Rows are sorted
// by benchmark name, so output is byte-identical across runs and parallelism
// settings.
func FormatJTSan(rows []JTSanRow) string {
	var b strings.Builder
	b.WriteString("JTSan temporal memory-safety study (weighted cycle slowdown vs native)\n")
	fmt.Fprintf(&b, "%-14s%10s%10s%10s%15s%10s%8s%6s\n",
		"benchmark", "jtsan", "elide", "dyn", "valgrind-temp", "comp",
		"elided", "viol")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%10.3f%10.3f%10.3f%15.3f%10.3f%8d%6d\n",
			r.Benchmark, r.JTSanSlowdown, r.JTSanElideSlowdown,
			r.JTSanDynSlowdown, r.ValgrindTempSlowdown, r.CompSlowdown,
			r.GenChecksElided, r.Violations)
	}
	hybrid, elide, dyn, vtemp, comp := JTSanGeomeans(rows)
	fmt.Fprintf(&b, "geomean: jtsan %.3fx, jtsan-elide %.3fx, jtsan-dyn %.3fx, valgrind-temporal %.3fx, comprehensive %.3fx\n",
		hybrid, elide, dyn, vtemp, comp)
	if hybrid < vtemp {
		fmt.Fprintf(&b, "note: JTSan geomean slowdown beats the generation-tag memcheck model (%.3fx < %.3fx)\n",
			hybrid, vtemp)
	} else {
		fmt.Fprintf(&b, "note: WARNING: JTSan geomean does not beat the memcheck model (%.3fx >= %.3fx)\n",
			hybrid, vtemp)
	}
	if elide <= hybrid {
		fmt.Fprintf(&b, "note: no-escape elision never costs cycles (%.3fx <= %.3fx)\n",
			elide, hybrid)
	} else {
		fmt.Fprintf(&b, "note: WARNING: elide geomean exceeds hybrid (%.3fx > %.3fx)\n",
			elide, hybrid)
	}
	for _, r := range rows {
		j, _ := json.Marshal(r)
		b.WriteString("BENCH_JTSAN ")
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}
