package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vm"
)

// progGen generates random MiniC programs that are deterministic and
// memory-safe by construction: every array index is masked to the array
// bound, every divisor is forced non-zero, every loop has a constant trip
// count. Differential testing then cross-checks the whole stack: compiler
// optimisation levels, ipa-ra, and execution under both security tools must
// all agree with the -O0 native run — and the tools must stay silent.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	nextID int
	vars   []string // in-scope int variables
	arrays []struct {
		name string
		size int // power of two
	}
	funcs []string // callable generated functions (int -> int)
	depth int
}

func (g *progGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// expr emits a deterministic integer expression.
func (g *progGen) expr(d int) string {
	if d <= 0 {
		// Terminal: constants and variables only, so expression depth —
		// and with it the compiler's temporary pressure — stays bounded.
		if g.r.Intn(2) == 0 || len(g.vars) == 0 {
			return fmt.Sprintf("%d", g.r.Intn(100)-50)
		}
		return g.pick(g.vars)
	}
	if g.r.Intn(4) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100)-50)
		case 1:
			if len(g.vars) > 0 {
				return g.pick(g.vars)
			}
			return "7"
		case 2:
			if len(g.arrays) > 0 {
				a := g.arrays[g.r.Intn(len(g.arrays))]
				return fmt.Sprintf("%s[(%s) & %d]", a.name, g.expr(d-1), a.size-1)
			}
			return "3"
		default:
			if len(g.funcs) > 0 && g.depth < 2 {
				g.depth++
				s := fmt.Sprintf("%s(%s)", g.pick(g.funcs), g.expr(d-1))
				g.depth--
				return s
			}
			return "11"
		}
	}
	x, y := g.expr(d-1), g.expr(d-1)
	switch g.r.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("((%s & 1023) * (%s & 255))", x, y)
	case 3:
		return fmt.Sprintf("(%s / (((%s) & 7) + 1))", x, y)
	case 4:
		return fmt.Sprintf("(%s %% (((%s) & 7) + 2))", x, y)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", x, y)
	case 6:
		return fmt.Sprintf("(%s | %s)", x, y)
	case 7:
		return fmt.Sprintf("(%s & %s)", x, y)
	case 8:
		return fmt.Sprintf("((%s) << %d)", x, g.r.Intn(4))
	default:
		return fmt.Sprintf("(%s < %s)", x, y)
	}
}

// stmt emits one statement at the given indent.
func (g *progGen) stmt(indent string, d int) {
	switch g.r.Intn(6) {
	case 0: // new variable
		g.nextID++
		name := fmt.Sprintf("v%d", g.nextID)
		fmt.Fprintf(&g.b, "%sint %s = %s;\n", indent, name, g.expr(2))
		g.vars = append(g.vars, name)
	case 1: // assignment
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", indent, g.pick(g.vars), g.expr(2))
		}
	case 2: // array store
		if len(g.arrays) > 0 {
			a := g.arrays[g.r.Intn(len(g.arrays))]
			fmt.Fprintf(&g.b, "%s%s[(%s) & %d] = %s;\n",
				indent, a.name, g.expr(1), a.size-1, g.expr(2))
		}
	case 3: // if/else
		if d > 0 {
			n := len(g.vars)
			fmt.Fprintf(&g.b, "%sif (%s) {\n", indent, g.expr(1))
			g.stmt(indent+"    ", d-1)
			g.vars = g.vars[:n] // block scope ends
			fmt.Fprintf(&g.b, "%s} else {\n", indent)
			g.stmt(indent+"    ", d-1)
			g.vars = g.vars[:n]
			fmt.Fprintf(&g.b, "%s}\n", indent)
		}
	case 4: // bounded for loop
		if d > 0 {
			n := len(g.vars)
			g.nextID++
			iv := fmt.Sprintf("i%d", g.nextID)
			fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n",
				indent, iv, iv, 3+g.r.Intn(6), iv)
			g.vars = append(g.vars, iv)
			g.stmt(indent+"    ", d-1)
			g.vars = g.vars[:n] // loop scope ends
			fmt.Fprintf(&g.b, "%s}\n", indent)
		}
	default: // accumulate into a variable
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.b, "%s%s += %s;\n", indent, g.pick(g.vars), g.expr(2))
		}
	}
}

// generate builds one whole program.
func generateProgram(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	// Globals.
	nArr := 1 + g.r.Intn(2)
	for i := 0; i < nArr; i++ {
		size := 1 << (3 + g.r.Intn(3)) // 8..32
		name := fmt.Sprintf("g%d", i)
		fmt.Fprintf(&g.b, "int %s[%d];\n", name, size)
		g.arrays = append(g.arrays, struct {
			name string
			size int
		}{name, size})
	}
	// Helper functions.
	nFn := 1 + g.r.Intn(3)
	for i := 0; i < nFn; i++ {
		name := fmt.Sprintf("f%d", i)
		fmt.Fprintf(&g.b, "int %s(int x) {\n", name)
		g.vars = []string{"x"}
		// Helper bodies stay loop-free so call trees cannot multiply
		// loop trip counts exponentially across nesting levels.
		for s := 0; s < 1+g.r.Intn(3); s++ {
			g.stmt("    ", 0)
		}
		fmt.Fprintf(&g.b, "    return %s;\n}\n", g.expr(2))
		g.funcs = append(g.funcs, name)
	}
	// main.
	fmt.Fprintf(&g.b, "int main() {\n")
	g.vars = nil
	fmt.Fprintf(&g.b, "    int acc = 1;\n")
	g.vars = append(g.vars, "acc")
	for s := 0; s < 3+g.r.Intn(3); s++ {
		g.stmt("    ", 2)
	}
	fmt.Fprintf(&g.b, "    return (acc ^ (acc >> 3)) & 127;\n}\n")
	return g.b.String()
}

// diffRun executes a compiled module natively or under a tool, returning
// the exit status.
func diffRun(t *testing.T, mod *obj.Module, tool core.Tool, violations *int) int64 {
	t.Helper()
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 50_000_000
	proc := loader.NewProcess(m, reg)
	if tool == nil {
		lm, err := proc.LoadProgram(mod)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(lm.RuntimeAddr(mod.Entry)); err != nil {
			t.Fatal(err)
		}
		return m.ExitStatus
	}
	files, err := core.AnalyzeProgram(mod, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(lm.RuntimeAddr(mod.Entry)); err != nil {
		t.Fatal(err)
	}
	switch tt := tool.(type) {
	case *jasan.Tool:
		*violations += int(tt.Report.Total)
	case *jcfi.Tool:
		*violations += len(tt.Report.Violations)
	}
	return m.ExitStatus
}

// TestDifferentialCompilerAndTools is the whole-stack differential fuzzer:
// for each random safe program, -O0, -O2, -O2 without ipa-ra, JASan-hybrid
// and JCFI-hybrid must all agree, with zero tool reports.
func TestDifferentialCompilerAndTools(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generateProgram(seed)
			compile := func(opts cc.Options) *obj.Module {
				opts.Module = "p"
				mod, err := cc.Compile(src, opts)
				if err != nil {
					t.Fatalf("compile: %v\nprogram:\n%s", err, src)
				}
				return mod
			}
			o0 := compile(cc.Options{})
			o2 := compile(cc.Options{O2: true})
			o2noipa := compile(cc.Options{O2: true, NoIPARA: true})
			pic := compile(cc.Options{O2: true, PIC: true})

			want := diffRun(t, o0, nil, nil)
			for name, mod := range map[string]*obj.Module{
				"O2": o2, "O2-noipa": o2noipa, "O2-pic": pic,
			} {
				if got := diffRun(t, mod, nil, nil); got != want {
					t.Fatalf("%s exit %d != O0 exit %d\nprogram:\n%s",
						name, got, want, src)
				}
			}
			violations := 0
			if got := diffRun(t, o2, jasan.New(jasan.Config{UseLiveness: true}),
				&violations); got != want {
				t.Fatalf("JASan exit %d != %d\nprogram:\n%s", got, want, src)
			}
			if got := diffRun(t, o2, jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true}),
				&violations); got != want {
				t.Fatalf("JASan+SCEV exit %d != %d\nprogram:\n%s", got, want, src)
			}
			if got := diffRun(t, o2, jcfi.New(jcfi.DefaultConfig),
				&violations); got != want {
				t.Fatalf("JCFI exit %d != %d\nprogram:\n%s", got, want, src)
			}
			if violations != 0 {
				t.Fatalf("tools reported %d violations on a safe program:\n%s",
					violations, src)
			}
		})
	}
}

var _ = rules.Rule{}
