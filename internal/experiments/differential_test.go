package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/fuzz/gen"
)

// TestDifferentialCompilerAndTools is the whole-stack differential fuzzer,
// now a thin driver over internal/fuzz: for each generated safe program,
// -O0, -O2, -O2 without ipa-ra and PIC builds must agree natively and under
// JASan/JCFI hybrid execution, with zero tool reports (oracle 1).
func TestDifferentialCompilerAndTools(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := gen.New(rand.New(rand.NewSource(seed)))
			res := fuzz.CheckSource(p, 50_000_000)
			if res.OverBudget {
				t.Skipf("seed %d exhausted the step budget", seed)
			}
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
			if t.Failed() {
				t.Logf("program:\n%s", p.Render())
			}
		})
	}
}

// TestDifferentialMutatedPrograms extends the differential check across the
// mutation engine: mutated descendants of a safe program are still safe by
// construction and must keep the whole stack in agreement.
func TestDifferentialMutatedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation differential is slow")
	}
	r := rand.New(rand.NewSource(99))
	p := gen.New(r)
	for step := 0; step < 4; step++ {
		q := p.Clone()
		for i := 0; i < 3; i++ {
			q.Mutate(r)
		}
		res := fuzz.CheckSource(q, 50_000_000)
		if res.OverBudget {
			continue
		}
		for _, v := range res.Violations {
			t.Errorf("step %d: %s\nprogram:\n%s", step, v, q.Render())
		}
		p = q
	}
}

// TestPlantedBugsCaught is oracle 3 as a regression test: every planted-bug
// class must be flagged by JASan when injected into an otherwise safe
// program.
func TestPlantedBugsCaught(t *testing.T) {
	for b := gen.Bug(0); b < gen.NumBugs; b++ {
		t.Run(b.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7 + int64(b)))
			p := gen.New(r)
			if !p.Plant(r, b) {
				t.Fatalf("could not plant %v", b)
			}
			res := fuzz.CheckSource(p, 50_000_000)
			if res.OverBudget {
				t.Fatalf("planted program exhausted the step budget")
			}
			if !res.PlantedCaught {
				t.Fatalf("JASan missed planted %v:\n%s", b, p.Render())
			}
		})
	}
}
