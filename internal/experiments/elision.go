package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ElisionRow is one benchmark's measurement of the VSA elision study: how
// many JASan checks the static proofs removed, how many indirect branches
// JCFI narrowed to inline target sets, and the retired-instruction counts
// with and without the proofs applied.
type ElisionRow struct {
	Benchmark        string `json:"benchmark"`
	ElidedChecks     int    `json:"elided_checks"`
	NarrowedBranches int    `json:"narrowed_branches"`
	JASanInstrs      uint64 `json:"jasan_instrs"`
	JASanElideInstrs uint64 `json:"jasan_elide_instrs"`
	JCFIInstrs       uint64 `json:"jcfi_instrs"`
	JCFINarrowInstrs uint64 `json:"jcfi_narrow_instrs"`
	// InstrDeltaPct is the JASan retired-instruction change from elision,
	// in percent (negative = fewer instructions).
	InstrDeltaPct float64 `json:"instr_delta_pct"`
}

// elisionSchemes are the four cells measured per benchmark.
var elisionSchemes = []Scheme{JASanHybrid, JASanElide, JCFIHybrid, JCFINarrow}

// Elision runs the check-elision study: every workload under JASan-hybrid
// with and without VSA elision, and JCFI-hybrid with and without target
// narrowing. Violations must be zero in all cells (the safe workloads are
// benign); a violation under an elision scheme only is a soundness bug.
func Elision(scale int, names ...string) ([]ElisionRow, error) {
	workloads := workloadSet(scale, names...)
	ns := len(elisionSchemes)
	results := make([]*Result, len(workloads)*ns)
	errs := make([]error, len(results))
	runJobs(len(results), func(i int) {
		results[i], errs[i] = Run(workloads[i/ns], elisionSchemes[i%ns])
	})

	var rows []ElisionRow
	for wi, w := range workloads {
		row := ElisionRow{Benchmark: w.Name}
		byScheme := map[Scheme]*Result{}
		for si, s := range elisionSchemes {
			res, err := results[wi*ns+si], errs[wi*ns+si]
			if err != nil {
				return nil, err
			}
			if res.Violations > 0 {
				return nil, fmt.Errorf("%s/%s: %d violations on benign run",
					w.Name, s, res.Violations)
			}
			byScheme[s] = res
		}
		row.JASanInstrs = byScheme[JASanHybrid].Instrs
		row.JASanElideInstrs = byScheme[JASanElide].Instrs
		row.JCFIInstrs = byScheme[JCFIHybrid].Instrs
		row.JCFINarrowInstrs = byScheme[JCFINarrow].Instrs
		row.ElidedChecks = byScheme[JASanElide].ElidedChecks
		row.NarrowedBranches = byScheme[JCFINarrow].NarrowedBranches
		if row.JASanInstrs > 0 {
			row.InstrDeltaPct = 100 * (float64(row.JASanElideInstrs) -
				float64(row.JASanInstrs)) / float64(row.JASanInstrs)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Benchmark < rows[j].Benchmark })
	return rows, nil
}

// FormatElision renders the elision study as a table followed by one
// machine-readable `BENCH_ELISION {json}` line per benchmark. Rows are
// sorted by benchmark name, so output is byte-identical across runs and
// parallelism settings.
func FormatElision(rows []ElisionRow) string {
	var b strings.Builder
	b.WriteString("VSA proof-carrying elision study (retired instructions)\n")
	fmt.Fprintf(&b, "%-14s%8s%8s%14s%14s%9s%14s%14s\n",
		"benchmark", "elided", "narrow",
		"jasan", "jasan-elide", "delta%", "jcfi", "jcfi-narrow")
	improved := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%8d%8d%14d%14d%+9.2f%14d%14d\n",
			r.Benchmark, r.ElidedChecks, r.NarrowedBranches,
			r.JASanInstrs, r.JASanElideInstrs, r.InstrDeltaPct,
			r.JCFIInstrs, r.JCFINarrowInstrs)
		if r.JASanElideInstrs < r.JASanInstrs {
			improved++
		}
	}
	fmt.Fprintf(&b, "note: JASan instruction count dropped on %d of %d benchmarks\n",
		improved, len(rows))
	for _, r := range rows {
		j, _ := json.Marshal(r)
		b.WriteString("BENCH_ELISION ")
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}
