package isa

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodedSizes(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		size := EncodedSize(op)
		if size == 0 || size > MaxInstrLen {
			t.Errorf("op %v: bad encoded size %d", op, size)
		}
	}
	if EncodedSize(OpInvalid) != 0 {
		t.Error("OpInvalid should have size 0")
	}
	if EncodedSize(Op(200)) != 0 {
		t.Error("out-of-range op should have size 0")
	}
}

func TestEncodingIsVariableLength(t *testing.T) {
	sizes := map[uint32]bool{}
	for op := Op(1); int(op) < NumOps; op++ {
		sizes[EncodedSize(op)] = true
	}
	if len(sizes) < 4 {
		t.Fatalf("expected at least 4 distinct instruction lengths, got %d", len(sizes))
	}
}

// randInstr generates a random valid instruction for the given opcode.
func randInstr(r *rand.Rand, op Op) Instr {
	in := Instr{
		Op:   op,
		Rd:   Register(r.Intn(NumRegs)),
		Rb:   Register(r.Intn(NumRegs)),
		Ri:   Register(r.Intn(NumRegs)),
		Disp: int32(r.Uint32()),
	}
	switch opForms[op] {
	case formRI64:
		in.Imm = int64(r.Uint64())
	case formRI32, formImm:
		in.Imm = int64(int32(r.Uint32()))
	}
	// Zero out fields the form does not encode, so the decoded value
	// compares equal to the input.
	switch opForms[op] {
	case formNone:
		in.Rd, in.Rb, in.Ri, in.Disp, in.Imm = 0, 0, 0, 0, 0
	case formR:
		in.Rb, in.Ri, in.Disp, in.Imm = 0, 0, 0, 0
	case formRR:
		in.Ri, in.Disp, in.Imm = 0, 0, 0
	case formRI64, formRI32:
		in.Rb, in.Ri, in.Disp = 0, 0, 0
	case formMem:
		in.Ri, in.Imm = 0, 0
	case formMemX:
		in.Imm = 0
	case formPC:
		in.Rb, in.Ri, in.Imm = 0, 0, 0
	case formBr:
		in.Rd, in.Rb, in.Ri, in.Imm = 0, 0, 0, 0
	case formImm:
		in.Rd, in.Rb, in.Ri, in.Disp = 0, 0, 0, 0
	}
	return in
}

// TestEncodeDecodeRoundtrip is the core property test: decode(encode(i)) == i
// for every opcode with random operands.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for op := Op(1); int(op) < NumOps; op++ {
		for trial := 0; trial < 50; trial++ {
			want := randInstr(r, op)
			buf := Encode(nil, &want)
			if uint32(len(buf)) != EncodedSize(op) {
				t.Fatalf("%v: encoded %d bytes, want %d", op, len(buf), EncodedSize(op))
			}
			got, err := Decode(buf, 0)
			if err != nil {
				t.Fatalf("%v: decode: %v", op, err)
			}
			got.Size = 0 // decoded size checked above
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v roundtrip:\n got %+v\nwant %+v", op, got, want)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty buffer: got %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0}, 0); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("zero opcode: got %v, want ErrBadOpcode", err)
	}
	if _, err := Decode([]byte{255}, 0); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("opcode 255: got %v, want ErrBadOpcode", err)
	}
	// MovRI needs 10 bytes.
	if _, err := Decode([]byte{byte(OpMovRI), 0, 1, 2}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated MovRI: got %v, want ErrTruncated", err)
	}
	// Register out of range.
	if _, err := Decode([]byte{byte(OpPush), 16}, 0); !errors.Is(err, ErrBadRegister) {
		t.Errorf("push r16: got %v, want ErrBadRegister", err)
	}
}

func TestTarget(t *testing.T) {
	in := Instr{Op: OpJmp, Addr: 0x1000, Size: 5, Disp: 0x20}
	if got := in.Target(); got != 0x1025 {
		t.Errorf("forward target = %#x, want 0x1025", got)
	}
	in.Disp = -0x10
	if got := in.Target(); got != 0xff5 {
		t.Errorf("backward target = %#x, want 0xff5", got)
	}
}

func TestPredicates(t *testing.T) {
	tests := []struct {
		op                       Op
		cti, cond, indirect, mem bool
		store                    bool
		width                    int
		setsFlags, readsFlags    bool
	}{
		{op: OpJmp, cti: true},
		{op: OpJe, cti: true, cond: true, readsFlags: true},
		{op: OpJmpI, cti: true, indirect: true},
		{op: OpCallI, cti: true, indirect: true},
		{op: OpRet, cti: true, indirect: true},
		{op: OpCall, cti: true},
		{op: OpHlt, cti: true},
		{op: OpLdQ, mem: true, width: 8},
		{op: OpStB, mem: true, store: true, width: 1},
		{op: OpStXQ, mem: true, store: true, width: 8},
		{op: OpAddRR, setsFlags: true},
		{op: OpCmpRI, setsFlags: true},
		{op: OpMovRR},
		{op: OpLea},
		{op: OpPushF, readsFlags: true},
		{op: OpPopF, setsFlags: true},
	}
	for _, tt := range tests {
		in := Instr{Op: tt.op}
		if got := in.IsCTI(); got != tt.cti {
			t.Errorf("%v.IsCTI() = %v, want %v", tt.op, got, tt.cti)
		}
		if got := in.IsCondBranch(); got != tt.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.op, got, tt.cond)
		}
		if got := in.IsIndirectCTI(); got != tt.indirect {
			t.Errorf("%v.IsIndirectCTI() = %v, want %v", tt.op, got, tt.indirect)
		}
		if got := in.IsMemAccess(); got != tt.mem {
			t.Errorf("%v.IsMemAccess() = %v, want %v", tt.op, got, tt.mem)
		}
		if got := in.IsStore(); got != tt.store {
			t.Errorf("%v.IsStore() = %v, want %v", tt.op, got, tt.store)
		}
		if got := in.AccessWidth(); got != tt.width {
			t.Errorf("%v.AccessWidth() = %v, want %v", tt.op, got, tt.width)
		}
		if got := in.SetsFlags(); got != tt.setsFlags {
			t.Errorf("%v.SetsFlags() = %v, want %v", tt.op, got, tt.setsFlags)
		}
		if got := in.ReadsFlags(); got != tt.readsFlags {
			t.Errorf("%v.ReadsFlags() = %v, want %v", tt.op, got, tt.readsFlags)
		}
	}
}

func TestRegUsesDefs(t *testing.T) {
	in := Instr{Op: OpAddRR, Rd: R3, Rb: R4}
	uses := in.RegUses(nil)
	if len(uses) != 2 || uses[0] != R3 || uses[1] != R4 {
		t.Errorf("add r3,r4 uses = %v, want [r3 r4]", uses)
	}
	defs := in.RegDefs(nil)
	if len(defs) != 1 || defs[0] != R3 {
		t.Errorf("add r3,r4 defs = %v, want [r3]", defs)
	}

	st := Instr{Op: OpStXQ, Rd: R1, Rb: R2, Ri: R3}
	uses = st.RegUses(nil)
	if len(uses) != 3 {
		t.Errorf("stxq uses = %v, want 3 registers", uses)
	}
	if len(st.RegDefs(nil)) != 0 {
		t.Errorf("stxq should define no registers")
	}

	pop := Instr{Op: OpPop, Rd: R5}
	defs = pop.RegDefs(nil)
	want := map[Register]bool{R5: true, SP: true}
	for _, d := range defs {
		if !want[d] {
			t.Errorf("pop defs include unexpected %v", d)
		}
		delete(want, d)
	}
	if len(want) != 0 {
		t.Errorf("pop defs missing %v", want)
	}
}

// TestDecodeAllSequence checks sequential decoding of a hand-built stream.
func TestDecodeAllSequence(t *testing.T) {
	prog := []Instr{
		{Op: OpMovRI, Rd: R1, Imm: 42},
		{Op: OpAddRI, Rd: R1, Imm: 1},
		{Op: OpPush, Rd: R1},
		{Op: OpPop, Rd: R2},
		{Op: OpRet},
	}
	var buf []byte
	for i := range prog {
		buf = Encode(buf, &prog[i])
	}
	got, err := DecodeAll(buf, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(prog))
	}
	wantAddr := uint64(0x400000)
	for i := range got {
		if got[i].Op != prog[i].Op {
			t.Errorf("instr %d: op %v, want %v", i, got[i].Op, prog[i].Op)
		}
		if got[i].Addr != wantAddr {
			t.Errorf("instr %d: addr %#x, want %#x", i, got[i].Addr, wantAddr)
		}
		wantAddr += uint64(got[i].Size)
	}
}

// TestMisalignedDecodeDiffers demonstrates the code/data ambiguity property:
// decoding from a misaligned offset does not reproduce the aligned stream.
func TestMisalignedDecodeDiffers(t *testing.T) {
	var buf []byte
	buf = Encode(buf, &Instr{Op: OpMovRI, Rd: R1, Imm: 0x0101010101010101})
	buf = Encode(buf, &Instr{Op: OpRet})
	aligned, err := DecodeAll(buf, 0)
	if err != nil || len(aligned) != 2 {
		t.Fatalf("aligned decode failed: %v (%d instrs)", err, len(aligned))
	}
	misaligned, _ := DecodeAll(buf[1:], 1)
	if len(misaligned) == len(aligned) {
		same := true
		for i := range misaligned {
			if misaligned[i].Op != aligned[i].Op {
				same = false
			}
		}
		if same {
			t.Error("misaligned decode unexpectedly reproduced the aligned stream")
		}
	}
}

// Property: Disasm never returns an empty string and always starts with the
// opcode mnemonic.
func TestDisasmProperty(t *testing.T) {
	f := func(opRaw uint8, rd, rb, ri uint8, imm int64, disp int32) bool {
		op := Op(1 + int(opRaw)%(NumOps-1))
		in := Instr{
			Op: op, Rd: Register(rd % NumRegs), Rb: Register(rb % NumRegs),
			Ri: Register(ri % NumRegs), Imm: imm, Disp: disp, Size: EncodedSize(op),
		}
		s := Disasm(&in)
		return s != "" && strings.HasPrefix(s, op.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasmFormats(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMovRI, Rd: R1, Imm: 42}, "mov r1, 42"},
		{Instr{Op: OpLdQ, Rd: R2, Rb: SP, Disp: 8}, "ldq r2, [sp+8]"},
		{Instr{Op: OpStQ, Rd: R2, Rb: FP, Disp: -16}, "stq [fp-16], r2"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpPush, Rd: R12}, "push r12"},
		{Instr{Op: OpLdXQ, Rd: R0, Rb: R1, Ri: R2, Disp: 0}, "ldxq r0, [r1+r2*8+0]"},
		{Instr{Op: OpJmp, Addr: 0x100, Size: 5, Disp: 11}, "jmp 0x110"},
		{Instr{Op: OpTrap, Imm: 7}, "trap 7"},
	}
	for _, tt := range tests {
		if got := Disasm(&tt.in); got != tt.want {
			t.Errorf("Disasm(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRegisterString(t *testing.T) {
	if R3.String() != "r3" || SP.String() != "sp" || FP.String() != "fp" {
		t.Errorf("register names wrong: %v %v %v", R3, SP, FP)
	}
}

func TestFlagString(t *testing.T) {
	if (FlagZ | FlagC).String() != "ZC" {
		t.Errorf("FlagZ|FlagC = %q", (FlagZ | FlagC).String())
	}
	if Flag(0).String() != "-" {
		t.Errorf("zero flag = %q", Flag(0).String())
	}
}
