package isa

import (
	"fmt"
	"strings"
)

// Disasm formats in as human-readable assembly in the syntax accepted by the
// jas assembler. Direct branch targets are printed as absolute addresses.
func Disasm(in *Instr) string {
	switch opForms[in.Op] {
	case formNone:
		return in.Op.String()
	case formR:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case formRR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rb)
	case formRI64, formRI32:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case formMem:
		if in.IsStore() {
			return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Rb, in.Disp, in.Rd)
		}
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Rd, in.Rb, in.Disp)
	case formMemX:
		scale := ""
		if in.Op == OpLdXQ || in.Op == OpStXQ || in.Op == OpLeaX {
			scale = "*8"
		}
		if in.IsStore() {
			return fmt.Sprintf("%s [%s+%s%s%+d], %s",
				in.Op, in.Rb, in.Ri, scale, in.Disp, in.Rd)
		}
		return fmt.Sprintf("%s %s, [%s+%s%s%+d]",
			in.Op, in.Rd, in.Rb, in.Ri, scale, in.Disp)
	case formPC:
		return fmt.Sprintf("%s %s, [pc%+d]", in.Op, in.Rd, in.Disp)
	case formBr:
		if in.Addr != 0 || in.Size != 0 {
			return fmt.Sprintf("%s %#x", in.Op, in.Target())
		}
		return fmt.Sprintf("%s %+d", in.Op, in.Disp)
	case formImm:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return in.Op.String()
}

// DisasmBlock formats a sequence of instructions, one per line, with
// addresses, in objdump style.
func DisasmBlock(ins []Instr) string {
	var b strings.Builder
	for i := range ins {
		fmt.Fprintf(&b, "%8x:\t%s\n", ins[i].Addr, Disasm(&ins[i]))
	}
	return b.String()
}
