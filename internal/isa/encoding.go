package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoding forms. Every opcode belongs to exactly one form, which fixes its
// encoded length. Lengths range from 1 to 10 bytes, so JVA is genuinely
// variable-length: decoding from a misaligned offset yields a different —
// and usually invalid — instruction stream, exactly like x86.
type form uint8

const (
	formNone form = iota // op                          1 byte
	formR                // op rd                       2 bytes
	formRR               // op rd rb                    3 bytes
	formRI64             // op rd imm64                 10 bytes
	formRI32             // op rd imm32                 6 bytes
	formMem              // op rd rb disp32             7 bytes
	formMemX             // op rd rb ri disp32          8 bytes
	formPC               // op rd disp32                6 bytes
	formBr               // op disp32                   5 bytes
	formImm              // op imm32                    5 bytes
)

var opForms = [NumOps]form{
	OpInvalid: formNone,
	OpMovRI:   formRI64,
	OpMovRR:   formRR,
	OpLdQ:     formMem,
	OpStQ:     formMem,
	OpLdB:     formMem,
	OpStB:     formMem,
	OpLdXQ:    formMemX,
	OpStXQ:    formMemX,
	OpLdXB:    formMemX,
	OpStXB:    formMemX,
	OpLea:     formMem,
	OpLdPC:    formPC,
	OpLeaPC:   formPC,
	OpLdG:     formR,
	OpAddRR:   formRR,
	OpSubRR:   formRR,
	OpMulRR:   formRR,
	OpDivRR:   formRR,
	OpRemRR:   formRR,
	OpAndRR:   formRR,
	OpOrRR:    formRR,
	OpXorRR:   formRR,
	OpShlRR:   formRR,
	OpShrRR:   formRR,
	OpAddRI:   formRI32,
	OpSubRI:   formRI32,
	OpMulRI:   formRI32,
	OpAndRI:   formRI32,
	OpOrRI:    formRI32,
	OpXorRI:   formRI32,
	OpShlRI:   formRI32,
	OpShrRI:   formRI32,
	OpCmpRR:   formRR,
	OpCmpRI:   formRI32,
	OpTestRR:  formRR,
	OpNot:     formR,
	OpNeg:     formR,
	OpPush:    formR,
	OpPop:     formR,
	OpPushF:   formNone,
	OpPopF:    formNone,
	OpJmp:     formBr,
	OpJmpI:    formR,
	OpJe:      formBr,
	OpJne:     formBr,
	OpJl:      formBr,
	OpJle:     formBr,
	OpJg:      formBr,
	OpJge:     formBr,
	OpJb:      formBr,
	OpJae:     formBr,
	OpCall:    formBr,
	OpCallI:   formR,
	OpRet:     formNone,
	OpSyscall: formNone,
	OpTrap:    formImm,
	OpNop:     formNone,
	OpHlt:     formNone,
	OpLeaX:    formMemX,
	OpLeaXB:   formMemX,
}

var formSizes = [...]uint32{
	formNone: 1,
	formR:    2,
	formRR:   3,
	formRI64: 10,
	formRI32: 6,
	formMem:  7,
	formMemX: 8,
	formPC:   6,
	formBr:   5,
	formImm:  5,
}

// MaxInstrLen is the longest possible encoded instruction.
const MaxInstrLen = 10

// EncodedSize returns the encoded length in bytes of an instruction with
// the given opcode, or 0 if the opcode is invalid.
func EncodedSize(op Op) uint32 {
	if op == OpInvalid || int(op) >= NumOps {
		return 0
	}
	return formSizes[opForms[op]]
}

// Errors returned by Decode.
var (
	ErrBadOpcode   = errors.New("isa: invalid opcode")
	ErrTruncated   = errors.New("isa: truncated instruction")
	ErrBadRegister = errors.New("isa: register operand out of range")
)

// Encode appends the binary encoding of in to dst and returns the extended
// slice. It panics on an invalid opcode, since instructions are constructed
// by trusted code (assembler, compiler, instrumentation engines).
func Encode(dst []byte, in *Instr) []byte {
	if in.Op == OpInvalid || int(in.Op) >= NumOps {
		panic(fmt.Sprintf("isa.Encode: invalid opcode %d", in.Op))
	}
	dst = append(dst, byte(in.Op))
	switch opForms[in.Op] {
	case formNone:
	case formR:
		dst = append(dst, byte(in.Rd))
	case formRR:
		dst = append(dst, byte(in.Rd), byte(in.Rb))
	case formRI64:
		dst = append(dst, byte(in.Rd))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	case formRI32:
		dst = append(dst, byte(in.Rd))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm)))
	case formMem:
		dst = append(dst, byte(in.Rd), byte(in.Rb))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case formMemX:
		dst = append(dst, byte(in.Rd), byte(in.Rb), byte(in.Ri))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case formPC:
		dst = append(dst, byte(in.Rd))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case formBr:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case formImm:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm)))
	}
	return dst
}

// Decode decodes one instruction from buf, recording addr as its address.
// It returns the decoded instruction; in.Size gives the number of bytes
// consumed. Register operands >= NumRegs and unknown opcodes are rejected,
// which is what makes scanning mid-instruction usually fail — the property
// static disassemblers rely on heuristically.
func Decode(buf []byte, addr uint64) (Instr, error) {
	var in Instr
	if len(buf) == 0 {
		return in, ErrTruncated
	}
	op := Op(buf[0])
	if op == OpInvalid || int(op) >= NumOps {
		return in, fmt.Errorf("%w: byte %#x at %#x", ErrBadOpcode, buf[0], addr)
	}
	f := opForms[op]
	size := formSizes[f]
	if uint32(len(buf)) < size {
		return in, fmt.Errorf("%w: need %d bytes at %#x, have %d",
			ErrTruncated, size, addr, len(buf))
	}
	in.Op = op
	in.Addr = addr
	in.Size = size
	switch f {
	case formNone:
	case formR:
		in.Rd = Register(buf[1])
	case formRR:
		in.Rd, in.Rb = Register(buf[1]), Register(buf[2])
	case formRI64:
		in.Rd = Register(buf[1])
		in.Imm = int64(binary.LittleEndian.Uint64(buf[2:]))
	case formRI32:
		in.Rd = Register(buf[1])
		in.Imm = int64(int32(binary.LittleEndian.Uint32(buf[2:])))
	case formMem:
		in.Rd, in.Rb = Register(buf[1]), Register(buf[2])
		in.Disp = int32(binary.LittleEndian.Uint32(buf[3:]))
	case formMemX:
		in.Rd, in.Rb, in.Ri = Register(buf[1]), Register(buf[2]), Register(buf[3])
		in.Disp = int32(binary.LittleEndian.Uint32(buf[4:]))
	case formPC:
		in.Rd = Register(buf[1])
		in.Disp = int32(binary.LittleEndian.Uint32(buf[2:]))
	case formBr:
		in.Disp = int32(binary.LittleEndian.Uint32(buf[1:]))
	case formImm:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(buf[1:])))
	}
	if in.Rd >= NumRegs || in.Rb >= NumRegs || in.Ri >= NumRegs {
		return Instr{}, fmt.Errorf("%w: at %#x", ErrBadRegister, addr)
	}
	return in, nil
}

// DecodeAll decodes instructions from buf sequentially starting at base
// until the buffer is exhausted or an undecodable byte sequence is hit.
// It returns the decoded prefix and the first error, if any.
func DecodeAll(buf []byte, base uint64) ([]Instr, error) {
	var out []Instr
	off := uint64(0)
	for off < uint64(len(buf)) {
		in, err := Decode(buf[off:], base+off)
		if err != nil {
			return out, err
		}
		out = append(out, in)
		off += uint64(in.Size)
	}
	return out, nil
}
