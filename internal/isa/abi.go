package isa

// The JVA ABI: syscall numbers, VM service-trap codes and the canonical
// address-space layout shared by the toolchain, loader, VM and security
// runtimes.

// Syscall numbers (r0 = number; arguments in r1..r5; result in r0).
const (
	SysExit  = 1 // exit(status)
	SysWrite = 2 // write(fd, buf, len) -> bytes written
	SysBrk   = 3 // brk(incr) -> previous program break (simple sbrk)
	SysMmapX = 4 // mmapx(len) -> base of fresh writable+executable region
	SysClock = 5 // clock() -> retired instruction count
)

// Trap codes (the imm32 operand of OpTrap). Traps are VM service calls used
// for facilities that in the paper's environment live in libc, ld.so or the
// sanitizer runtime; see DESIGN.md for the substitution note. Arguments in
// r1..r5, result in r0.
const (
	// TrapMalloc: r1=size -> r0=ptr (module allocator service).
	TrapMalloc = 1
	// TrapFree: r1=ptr.
	TrapFree = 2
	// TrapDlopen: r1=ptr to name, r2=len -> r0=module handle (load base).
	TrapDlopen = 3
	// TrapDlsym: r1=handle, r2=ptr to name, r3=len -> r0=symbol address.
	TrapDlsym = 4
	// TrapResolve: lazy PLT resolution; r11=import index, caller's module
	// identified by the trap PC -> r0=resolved target. The PLT stub then
	// performs `push r0; ret`, using a return as a call — the ld.so
	// control-flow abnormality from §4.2.3 of the paper.
	TrapResolve = 5
	// TrapDlclose: r1=handle (module base); unloads the module.
	TrapDlclose = 8
	// TrapPuts: r1=ptr, r2=len; debug console output.
	TrapPuts = 6
	// TrapPutI: r1=value; debug integer output.
	TrapPutI = 7

	// Trap codes >= TrapToolBase are reserved for security-tool runtimes
	// (violation reporting, allocator interposition) registered at run
	// time.
	TrapToolBase = 100
)

// Canonical address-space layout. Everything lives below 1 GiB so that
// 32-bit scanning windows (the BinCFI-style sliding 4-byte code-pointer
// scan) can see every pointer, and so that shadow addresses fit in the
// 31-bit displacement of a memory operand.
const (
	// LayoutExecBase is the conventional link-time base for non-PIC
	// executables.
	LayoutExecBase uint64 = 0x0040_0000
	// LayoutLibBase is where the loader starts placing PIC modules.
	LayoutLibBase uint64 = 0x1000_0000
	// LayoutLibStride spaces successive PIC module load bases.
	LayoutLibStride uint64 = 0x0010_0000
	// LayoutHeapBase is the base of the program heap.
	LayoutHeapBase uint64 = 0x2000_0000
	// LayoutHeapLimit is the exclusive upper bound of the heap.
	LayoutHeapLimit uint64 = 0x3000_0000
	// LayoutJITBase is where SysMmapX hands out writable+executable
	// regions for dynamically generated code.
	LayoutJITBase uint64 = 0x3800_0000
	// LayoutStackTop is the initial stack pointer (stack grows down).
	LayoutStackTop uint64 = 0x5f00_0000
	// LayoutStackLimit is the lowest valid stack address.
	LayoutStackLimit uint64 = 0x5e00_0000
	// LayoutShadowBase maps application address a to shadow byte
	// LayoutShadowBase + a/8 (the AddressSanitizer shadow encoding).
	LayoutShadowBase uint64 = 0x6000_0000
	// LayoutShadowStackBase is the base of the JCFI shadow stack region.
	LayoutShadowStackBase uint64 = 0x7000_0000
	// LayoutShadowStackPtr is the fixed slot holding the current shadow
	// stack pointer.
	LayoutShadowStackPtr uint64 = 0x7100_0000
	// LayoutCFITableBase is where JCFI-class tools place their run-time
	// target hash tables.
	LayoutCFITableBase uint64 = 0x7200_0000
	// LayoutDefShadowBase maps application address a to the definedness
	// shadow byte LayoutDefShadowBase + a/8, with bit a%8 set when the
	// application byte is UNDEFINED. Zero-filled shadow therefore means
	// "everything defined", so only allocations and frame entries pay a
	// shadow write. The bitmap covers application addresses below
	// 0x6000_0000 (code, heap, JIT and stack); tool-runtime regions at and
	// above LayoutShadowBase fall outside it and are never checked.
	LayoutDefShadowBase uint64 = 0x7300_0000
	// LayoutGenShadowBase maps application address a to the generation
	// shadow byte LayoutGenShadowBase + a/8, with bit a%8 set when the
	// application byte belongs to a FREED (quarantined) heap chunk. The
	// zero-filled shadow therefore means "temporally live": stack, globals
	// and live heap all pass the inline fast path with no heap-range test.
	// Like the definedness bitmap, it covers application addresses below
	// LayoutShadowBase; tool-runtime regions are never checked.
	LayoutGenShadowBase uint64 = 0x7400_0000
)

// ShadowAddr returns the shadow-memory byte address covering application
// address a (8 application bytes per shadow byte).
func ShadowAddr(a uint64) uint64 { return LayoutShadowBase + a/8 }

// DefShadowAddr returns the definedness-shadow byte address covering
// application address a; bit a%8 of that byte is a's undefined flag.
func DefShadowAddr(a uint64) uint64 { return LayoutDefShadowBase + a/8 }

// GenShadowAddr returns the generation-shadow byte address covering
// application address a; bit a%8 of that byte is a's freed flag.
func GenShadowAddr(a uint64) uint64 { return LayoutGenShadowBase + a/8 }
