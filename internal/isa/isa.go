// Package isa defines the Janitizer Virtual Architecture (JVA): a 64-bit,
// variable-length encoded instruction set used as the reproduction substrate
// for binary analysis and rewriting experiments.
//
// JVA deliberately preserves the properties of x86 that make binary security
// hard and that the Janitizer paper (CGO 2025) exploits or works around:
//
//   - variable-length instruction encoding, so disassembly from an arbitrary
//     byte offset is ambiguous and code/data disambiguation is undecidable;
//   - arithmetic flags set implicitly by ALU instructions and consumed by
//     conditional branches, so instrumentation must preserve flag liveness;
//   - CALL pushes the return address on the data stack and RET pops it, so
//     return addresses are corruptible and shadow stacks are meaningful;
//   - indirect calls and jumps through registers, whose targets cannot be
//     resolved statically;
//   - PC-relative loads and address formation for position-independent code.
package isa

// Register names the 16 general-purpose registers r0..r15.
//
// Calling convention (enforced by the jcc compiler and libj runtime):
//
//	r0        return value, caller-saved
//	r1..r5    arguments 1..5, caller-saved
//	r6..r11   temporaries, caller-saved
//	r12..r13  callee-saved
//	r14      frame pointer (FP), callee-saved
//	r15      stack pointer (SP)
type Register uint8

// Well-known registers.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	FP // r14
	SP // r15

	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
)

func (r Register) String() string {
	switch r {
	case FP:
		return "fp"
	case SP:
		return "sp"
	}
	return "r" + itoa(int(r))
}

// Flag identifies one of the four arithmetic condition flags.
type Flag uint8

// Condition flags, set by ALU instructions and consumed by conditional jumps.
const (
	FlagZ Flag = 1 << iota // zero
	FlagS                  // sign
	FlagC                  // carry (unsigned overflow / borrow)
	FlagO                  // signed overflow

	// AllFlags is the mask of every condition flag.
	AllFlags = FlagZ | FlagS | FlagC | FlagO
)

func (f Flag) String() string {
	s := ""
	if f&FlagZ != 0 {
		s += "Z"
	}
	if f&FlagS != 0 {
		s += "S"
	}
	if f&FlagC != 0 {
		s += "C"
	}
	if f&FlagO != 0 {
		s += "O"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Op is a JVA opcode.
type Op uint8

// Opcodes. The numeric values are part of the binary encoding and must not
// be reordered; new opcodes may only be appended.
const (
	// OpInvalid is the zero opcode; decoding it is an error. Keeping zero
	// invalid means zero-filled memory never decodes as valid code.
	OpInvalid Op = iota

	// Data movement.
	OpMovRI // mov rd, imm64
	OpMovRR // mov rd, rs
	OpLdQ   // ldq rd, [rb+disp]      load 8 bytes
	OpStQ   // stq [rb+disp], rs      store 8 bytes
	OpLdB   // ldb rd, [rb+disp]      load 1 byte, zero-extend
	OpStB   // stb [rb+disp], rs      store 1 byte (low byte of rs)
	OpLdXQ  // ldxq rd, [rb+ri*8+disp]
	OpStXQ  // stxq [rb+ri*8+disp], rs
	OpLdXB  // ldxb rd, [rb+ri+disp]
	OpStXB  // stxb [rb+ri+disp], rs
	OpLea   // lea rd, [rb+disp]
	OpLdPC  // ldpc rd, [pc+disp]     PC-relative 8-byte load (GOT access)
	OpLeaPC // leapc rd, [pc+disp]    PC-relative address formation
	OpLdG   // ldg rd                 load the stack-canary secret (TLS slot)

	// ALU, register-register. All set Z/S/C/O.
	OpAddRR
	OpSubRR
	OpMulRR
	OpDivRR // quotient; divide by zero faults
	OpRemRR
	OpAndRR
	OpOrRR
	OpXorRR
	OpShlRR
	OpShrRR

	// ALU, register-immediate (imm32, sign-extended). All set Z/S/C/O.
	OpAddRI
	OpSubRI
	OpMulRI
	OpAndRI
	OpOrRI
	OpXorRI
	OpShlRI
	OpShrRI

	// Compare and test (set flags, no destination write).
	OpCmpRR
	OpCmpRI
	OpTestRR

	// Unary (set flags).
	OpNot
	OpNeg

	// Stack.
	OpPush
	OpPop
	OpPushF // push flags word
	OpPopF  // pop flags word

	// Control transfer. Direct targets are PC-relative displacements from
	// the address of the *next* instruction.
	OpJmp
	OpJmpI // jmpi rs (indirect jump)
	OpJe
	OpJne
	OpJl
	OpJle
	OpJg
	OpJge
	OpJb  // unsigned <
	OpJae // unsigned >=
	OpCall
	OpCallI // calli rs (indirect call)
	OpRet

	// System.
	OpSyscall // r0=number, r1..r5 args, result in r0
	OpTrap    // trap imm32: VM service call (allocator, dlopen, reports)
	OpNop
	OpHlt

	// Indexed address formation (no flags set): added for inline
	// instrumentation that must compute access addresses without
	// disturbing arithmetic flags.
	OpLeaX  // leax rd, [rb+ri*8+disp]
	OpLeaXB // leaxb rd, [rb+ri+disp]

	opMax // sentinel; not a real opcode
)

// NumOps is the number of defined opcodes (including OpInvalid).
const NumOps = int(opMax)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpMovRI:   "mov",
	OpMovRR:   "mov",
	OpLdQ:     "ldq",
	OpStQ:     "stq",
	OpLdB:     "ldb",
	OpStB:     "stb",
	OpLdXQ:    "ldxq",
	OpStXQ:    "stxq",
	OpLdXB:    "ldxb",
	OpStXB:    "stxb",
	OpLea:     "lea",
	OpLdPC:    "ldpc",
	OpLeaPC:   "leapc",
	OpLdG:     "ldg",
	OpAddRR:   "add",
	OpSubRR:   "sub",
	OpMulRR:   "mul",
	OpDivRR:   "div",
	OpRemRR:   "rem",
	OpAndRR:   "and",
	OpOrRR:    "or",
	OpXorRR:   "xor",
	OpShlRR:   "shl",
	OpShrRR:   "shr",
	OpAddRI:   "add",
	OpSubRI:   "sub",
	OpMulRI:   "mul",
	OpAndRI:   "and",
	OpOrRI:    "or",
	OpXorRI:   "xor",
	OpShlRI:   "shl",
	OpShrRI:   "shr",
	OpCmpRR:   "cmp",
	OpCmpRI:   "cmp",
	OpTestRR:  "test",
	OpNot:     "not",
	OpNeg:     "neg",
	OpPush:    "push",
	OpPop:     "pop",
	OpPushF:   "pushf",
	OpPopF:    "popf",
	OpJmp:     "jmp",
	OpJmpI:    "jmpi",
	OpJe:      "je",
	OpJne:     "jne",
	OpJl:      "jl",
	OpJle:     "jle",
	OpJg:      "jg",
	OpJge:     "jge",
	OpJb:      "jb",
	OpJae:     "jae",
	OpCall:    "call",
	OpCallI:   "calli",
	OpRet:     "ret",
	OpSyscall: "syscall",
	OpTrap:    "trap",
	OpNop:     "nop",
	OpHlt:     "hlt",
	OpLeaX:    "leax",
	OpLeaXB:   "leaxb",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op(" + itoa(int(o)) + ")"
}

// Instr is one decoded JVA instruction. Addr and Size are filled in by the
// decoder (and by the assembler after layout); the remaining fields are
// operands whose meaning depends on Op.
type Instr struct {
	Op   Op
	Rd   Register // destination (or source for stores/push)
	Rb   Register // base register for memory operands
	Ri   Register // index register for indexed memory operands
	Imm  int64    // immediate (MovRI: 64-bit; *RI ALU, Trap: 32-bit)
	Disp int32    // memory displacement or branch displacement
	Addr uint64   // address the instruction was decoded from (0 if synthetic)
	Size uint32   // encoded size in bytes
}

// Target returns the absolute target address of a direct control-transfer
// instruction (Jmp, Jcc, Call), computed from Addr, Size and Disp.
// It must not be called on other opcodes.
func (in *Instr) Target() uint64 {
	return in.Addr + uint64(in.Size) + uint64(int64(in.Disp))
}

// IsCTI reports whether the instruction is a control-transfer instruction:
// any jump, call or return.
func (in *Instr) IsCTI() bool {
	switch in.Op {
	case OpJmp, OpJmpI, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJae,
		OpCall, OpCallI, OpRet, OpHlt:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in *Instr) IsCondBranch() bool {
	switch in.Op {
	case OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJae:
		return true
	}
	return false
}

// IsIndirectCTI reports whether the instruction is an indirect control
// transfer (register-target jump or call, or a return).
func (in *Instr) IsIndirectCTI() bool {
	switch in.Op {
	case OpJmpI, OpCallI, OpRet:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction reads or writes application
// memory through a computed address (loads, stores; push/pop and PC-relative
// GOT loads are excluded: they access the stack or read-only linkage data).
func (in *Instr) IsMemAccess() bool {
	switch in.Op {
	case OpLdQ, OpStQ, OpLdB, OpStB, OpLdXQ, OpStXQ, OpLdXB, OpStXB:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory (excluding push).
func (in *Instr) IsStore() bool {
	switch in.Op {
	case OpStQ, OpStB, OpStXQ, OpStXB:
		return true
	}
	return false
}

// AccessWidth returns the width in bytes of a memory access instruction,
// or 0 for non-memory instructions.
func (in *Instr) AccessWidth() int {
	switch in.Op {
	case OpLdQ, OpStQ, OpLdXQ, OpStXQ:
		return 8
	case OpLdB, OpStB, OpLdXB, OpStXB:
		return 1
	}
	return 0
}

// SetsFlags reports whether the instruction writes the condition flags.
func (in *Instr) SetsFlags() bool {
	switch in.Op {
	case OpAddRR, OpSubRR, OpMulRR, OpDivRR, OpRemRR, OpAndRR, OpOrRR,
		OpXorRR, OpShlRR, OpShrRR,
		OpAddRI, OpSubRI, OpMulRI, OpAndRI, OpOrRI, OpXorRI, OpShlRI,
		OpShrRI,
		OpCmpRR, OpCmpRI, OpTestRR, OpNot, OpNeg, OpPopF:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction reads the condition flags.
func (in *Instr) ReadsFlags() bool {
	return in.IsCondBranch() || in.Op == OpPushF
}

// RegUses appends to dst the registers read by the instruction and returns
// the extended slice. SP is reported for push/pop/call/ret since they
// dereference it.
func (in *Instr) RegUses(dst []Register) []Register {
	switch in.Op {
	case OpMovRI, OpLdG, OpLdPC, OpLeaPC:
		// no register sources
	case OpMovRR, OpNot, OpNeg:
		if in.Op == OpMovRR {
			dst = append(dst, in.Rb)
		} else {
			dst = append(dst, in.Rd)
		}
	case OpLdQ, OpLdB, OpLea:
		dst = append(dst, in.Rb)
	case OpStQ, OpStB:
		dst = append(dst, in.Rb, in.Rd)
	case OpLdXQ, OpLdXB, OpLeaX, OpLeaXB:
		dst = append(dst, in.Rb, in.Ri)
	case OpStXQ, OpStXB:
		dst = append(dst, in.Rb, in.Ri, in.Rd)
	case OpAddRR, OpSubRR, OpMulRR, OpDivRR, OpRemRR, OpAndRR, OpOrRR,
		OpXorRR, OpShlRR, OpShrRR:
		dst = append(dst, in.Rd, in.Rb)
	case OpAddRI, OpSubRI, OpMulRI, OpAndRI, OpOrRI, OpXorRI, OpShlRI,
		OpShrRI:
		dst = append(dst, in.Rd)
	case OpCmpRR, OpTestRR:
		dst = append(dst, in.Rd, in.Rb)
	case OpCmpRI:
		dst = append(dst, in.Rd)
	case OpPush:
		dst = append(dst, in.Rd, SP)
	case OpPop, OpPushF, OpPopF:
		dst = append(dst, SP)
	case OpJmpI, OpCallI:
		dst = append(dst, in.Rd)
		if in.Op == OpCallI {
			dst = append(dst, SP)
		}
	case OpCall:
		dst = append(dst, SP)
	case OpRet:
		dst = append(dst, SP)
	case OpSyscall:
		dst = append(dst, R0, R1, R2, R3, R4, R5)
	case OpTrap:
		dst = append(dst, R1, R2, R3, R4, R5)
	}
	return dst
}

// RegDefs appends to dst the registers written by the instruction and
// returns the extended slice.
func (in *Instr) RegDefs(dst []Register) []Register {
	switch in.Op {
	case OpMovRI, OpMovRR, OpLdQ, OpLdB, OpLdXQ, OpLdXB, OpLea, OpLeaX,
		OpLeaXB, OpLdPC, OpLeaPC, OpLdG, OpPop,
		OpAddRR, OpSubRR, OpMulRR, OpDivRR, OpRemRR, OpAndRR, OpOrRR,
		OpXorRR, OpShlRR, OpShrRR,
		OpAddRI, OpSubRI, OpMulRI, OpAndRI, OpOrRI, OpXorRI, OpShlRI,
		OpShrRI, OpNot, OpNeg:
		dst = append(dst, in.Rd)
	case OpPush, OpPushF, OpPopF:
		dst = append(dst, SP)
	case OpCall, OpCallI, OpRet:
		dst = append(dst, SP)
	case OpSyscall, OpTrap:
		dst = append(dst, R0)
	}
	if in.Op == OpPop {
		dst = append(dst, SP)
	}
	return dst
}

// itoa is a minimal integer formatter so this leaf package avoids importing
// strconv (keeps the decode hot path dependency-free).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
