package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic checks placement is a pure function of the member
// set: member order must not matter, and repeated construction agrees.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:3", "n1:1", "n2:2", "n2:2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner differs across member orderings: %s vs %s",
				key, a.Owner(key), b.Owner(key))
		}
	}
	if got := a.Members(); len(got) != 3 {
		t.Fatalf("members = %v, want 3 deduplicated", got)
	}
}

// TestRingBalance checks virtual nodes spread keys across members without
// gross skew. Deterministic: fnv over fixed keys.
func TestRingBalance(t *testing.T) {
	members := []string{"10.0.0.1:7741", "10.0.0.2:7741", "10.0.0.3:7741"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sha256-like-key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys (counts %v)", m, share*100, counts)
		}
	}
}

// TestRingStability checks the consistent-hash property: removing one
// member only reassigns the keys it owned; every other key keeps its home.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"a:1", "b:2", "c:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"a:1", "b:2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before == "c:3" {
			continue // these must move somewhere
		}
		if before != after {
			moved++
		} else {
			kept++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members (kept %d)", moved, kept)
	}
}

// TestRingErrors covers the degenerate member lists.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("empty member accepted")
	}
}
