package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/anserve"
	"repro/internal/telemetry"
)

// findSpan walks a span tree depth-first for the first span named name.
func findSpan(rec *telemetry.SpanRecord, name string) *telemetry.SpanRecord {
	if rec == nil {
		return nil
	}
	if rec.Name == name {
		return rec
	}
	for _, c := range rec.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

// TestPeerFillSingleConnectedTrace is the tentpole tracing acceptance test:
// a traced client request to a non-owner node must knit the requester hop,
// the peer-fill hop, and the owner's compute into ONE trace whose exported
// span records stitch into a single connected tree by (TraceID, ParentID).
func TestPeerFillSingleConnectedTrace(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	a, b := nodes[0], nodes[1]
	mod := moduleOwnedBy(t, a.clu, b.addr)

	// The client is itself traced: its span context travels in the
	// Traceparent header, exactly as a traced CI driver would send it.
	clientSC := telemetry.SpanContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
		Sampled: true,
	}
	req, err := http.NewRequest("POST",
		"http://"+a.addr+"/analyze?tool=jasan", bytes.NewReader(mod.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(clientSC))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if tier := resp.Header.Get("X-Cache"); tier != string(anserve.TierPeer) {
		t.Fatalf("X-Cache = %q, want peer", tier)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != clientSC.TraceID {
		t.Fatalf("X-Trace-Id = %q, want the client's trace %q", got, clientSC.TraceID)
	}

	// Node A's half: a remote-parented server span rooted at the client's
	// span, with the peer fill as a child.
	aRoot := a.tr.Find(clientSC.TraceID)
	if aRoot == nil {
		t.Fatalf("node A retains no trace %s", clientSC.TraceID)
	}
	if aRoot.Name != "http.analyze" || !aRoot.Remote || aRoot.ParentID != clientSC.SpanID {
		t.Fatalf("A root = %s remote=%v parent=%s, want http.analyze under client span %s",
			aRoot.Name, aRoot.Remote, aRoot.ParentID, clientSC.SpanID)
	}
	fill := findSpan(aRoot, "cluster.peer-fill")
	if fill == nil {
		t.Fatalf("node A trace has no cluster.peer-fill span: %+v", aRoot)
	}
	if fill.TraceID != clientSC.TraceID || fill.ParentID != aRoot.SpanID {
		t.Fatalf("peer-fill span not parented under A's server span: %+v", fill)
	}

	// Node B's half: its server span joined the same trace with A's
	// peer-fill span as its remote parent — the cross-node stitch point.
	bRoot := b.tr.Find(clientSC.TraceID)
	if bRoot == nil {
		t.Fatalf("node B retains no trace %s", clientSC.TraceID)
	}
	if bRoot.Name != "http.analyze" || !bRoot.Remote {
		t.Fatalf("B root = %s remote=%v", bRoot.Name, bRoot.Remote)
	}
	if bRoot.ParentID != fill.SpanID {
		t.Fatalf("B's server span parent = %s, want A's peer-fill span %s",
			bRoot.ParentID, fill.SpanID)
	}
	if findSpan(bRoot, "anserve.analyze") == nil {
		t.Fatalf("owner's compute span missing from B's trace: %+v", bRoot)
	}

	// Both halves are resolvable over HTTP by the shared trace ID, so a
	// requester can stitch the full tree from each node's export.
	for _, node := range []*testNode{a, b} {
		hr, err := http.Get("http://" + node.addr + "/trace/" + clientSC.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("GET /trace/{id} on %s: %d", node.addr, hr.StatusCode)
		}
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("trace export on %s not JSON: %v", node.addr, err)
		}
		if rec.TraceID != clientSC.TraceID {
			t.Fatalf("exported trace on %s = %s", node.addr, rec.TraceID)
		}
	}

	// An untraced node (C) never saw the request and answers 404.
	hr, err := http.Get("http://" + nodes[2].addr + "/trace/" + clientSC.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("uninvolved node served the trace: %d", hr.StatusCode)
	}
}

// TestFleetMetricsRoundTrip scrapes a live fleet member's /metrics through
// ParsePrometheus: the exposition (including build info and exemplar-bearing
// peer-fill histograms) must be valid text format and carry the expected
// families.
func TestFleetMetricsRoundTrip(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]

	// Drive a peer fill under a known trace so the fill-latency histogram
	// carries a trace-ID exemplar.
	sc := telemetry.SpanContext{
		TraceID: "7cf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "11f067aa0ba902b7",
		Sampled: true,
	}
	mod := moduleOwnedBy(t, a.clu, b.addr)
	req, err := http.NewRequest("POST",
		"http://"+a.addr+"/analyze?tool=jasan", bytes.NewReader(mod.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(sc))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup analyze: %d", resp.StatusCode)
	}

	mr, err := http.Get("http://" + a.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", mr.StatusCode)
	}
	samples, err := telemetry.ParsePrometheus(text)
	if err != nil {
		t.Fatalf("live /metrics does not round-trip through ParsePrometheus: %v\n%s", err, text)
	}

	byName := map[string][]telemetry.Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	bi := byName["janitizer_build_info"]
	if len(bi) != 1 || bi[0].Value != 1 {
		t.Fatalf("janitizer_build_info = %+v, want one constant-1 sample", bi)
	}
	for _, label := range []string{"version", "go_version", "revision"} {
		if bi[0].Label(label) == "" {
			t.Fatalf("build info lacks %s label: %+v", label, bi[0].Labels)
		}
	}
	if fills := byName["janitizer_cluster_peer_fill_total"]; len(fills) != 1 || fills[0].Value < 1 {
		t.Fatalf("peer fill counter = %+v", fills)
	}
	var exemplared bool
	for _, s := range byName["janitizer_cluster_peer_fill_duration_seconds_bucket"] {
		if s.Exemplar != nil {
			exemplared = true
			if got := s.Exemplar["trace_id"]; got != sc.TraceID {
				t.Fatalf("fill exemplar trace = %q, want %q", got, sc.TraceID)
			}
		}
	}
	if !exemplared {
		t.Fatal("peer-fill histogram carries no trace exemplar")
	}
}
