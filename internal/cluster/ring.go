// Package cluster turns N janitizerd instances into one analysis fleet.
//
// The content-addressed rule cache (internal/anserve) makes this almost
// free: an artifact's cache key is a pure function of the module bytes and
// the tool configuration, identical on every node, so a consistent-hash
// ring over that key gives every artifact a deterministic *home shard*.
// A node that misses locally asks the home shard for the serialized
// artifact (peer fill) before computing it itself; the home shard computes
// on its own miss, so a hot module is analyzed once fleet-wide and then
// served from every node's local tier.
//
// Failure semantics are strictly availability-first: placement is an
// optimization, never a correctness dependency. If the owner is down,
// unreachable, overloaded, or returns bytes that do not parse as a rule
// file, the requesting node falls back to computing locally — a slower
// answer, never a wrong one, and never an error the client sees.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count. 128 points per
// member keeps the max/mean shard imbalance in the low single-digit
// percents for small fleets while the ring stays tiny (N*128 uint64s).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring: every member contributes
// vnodes points, a key is owned by the first point clockwise from its
// hash. Identical member lists build identical rings on every node —
// placement is deterministic fleet-wide. Removing a member only reassigns
// the keys it owned (~1/N of the space); the rest keep their home shard.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members (deduplicated; order-insensitive)
// with vnodes virtual nodes each (<= 0 selects DefaultVirtualNodes).
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(m + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on member name so every node sorts identically.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Owner returns the member owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// ringHash is FNV-1a 64 — fast, dependency-free, and stable across
// platforms and releases (placement must agree between binaries).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
