package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/anserve"
	"repro/internal/buildinfo"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/jasan"
	"repro/internal/jlint"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// testTool returns the tool configuration the test fleet serves as
// "jasan" — identical to anserve.DefaultTools().
func testTool() core.Tool { return jasan.New(jasan.Config{UseLiveness: true}) }

// gateTool blocks inside StaticPass until released, keeping an analysis in
// flight on the node that owns it.
type gateTool struct {
	core.Tool
	gate <-chan struct{}
}

func (g *gateTool) StaticPass(sc *core.StaticContext) []rules.Rule {
	<-g.gate
	return g.Tool.StaticPass(sc)
}

func (g *gateTool) Instrument(bc *dbm.BlockContext, r map[uint64][]rules.Rule) []dbm.CInstr {
	return g.Tool.Instrument(bc, r)
}

// testNode is one fleet member: service, cluster wrapper, daemon,
// listener. Each node carries its own tracer — exactly what janitizerd
// does per process — so cross-node trace tests can inspect both sides.
type testNode struct {
	addr string
	svc  *anserve.Service
	clu  *Cluster
	d    *anserve.Daemon
	tr   *telemetry.Tracer
	down bool
}

// kill shuts the node's daemon down mid-run.
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.d.Shutdown(ctx); err != nil {
		t.Fatalf("kill %s: %v", n.addr, err)
	}
	n.down = true
}

// startFleet brings up n janitizerd-equivalent nodes on loopback
// listeners, all placing against the same member list. gates[addr], when
// present, wraps that node's tool so tests can hold its analyses open.
func startFleet(t *testing.T, n int, gates map[int]<-chan struct{}) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		tr := telemetry.NewTracer(64)
		svc := anserve.New(anserve.Config{Workers: 4, Tracer: tr})
		buildinfo.Register(svc.Registry())
		clu, err := New(svc, Config{
			Self:          addrs[i],
			Members:       addrs,
			PeerTimeout:   2 * time.Minute, // gated analyses must not trip it
			FailThreshold: 1,               // tests want immediate passive demotion
		})
		if err != nil {
			t.Fatal(err)
		}
		gate := gates[i]
		tools := map[string]anserve.ToolFactory{
			"jasan": func() core.Tool {
				if gate != nil {
					return &gateTool{Tool: testTool(), gate: gate}
				}
				return testTool()
			},
			"jlint": func() core.Tool { return jlint.New() },
		}
		d := anserve.NewDaemonOpts(svc, tools, anserve.DaemonOptions{
			Handler: anserve.HandlerOpts{Analyzer: clu},
		})
		nodes[i] = &testNode{addr: addrs[i], svc: svc, clu: clu, d: d, tr: tr}
		go d.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			if node.down {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			node.d.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// compileN builds the i-th distinct test module (distinct content hash,
// same shape).
func compileN(t *testing.T, i int) *obj.Module {
	t.Helper()
	mod, err := cc.Compile(fmt.Sprintf(`
int work(int n) {
	int j;
	int s;
	s = %d;
	for (j = 0; j < n; j = j + 1) { s = s + j; }
	return s;
}
int main() { return work(10); }
`, i), cc.Options{Module: fmt.Sprintf("cluster-test-%d", i), O2: true})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// moduleOwnedBy searches for a module whose cache key lands on the wanted
// node.
func moduleOwnedBy(t *testing.T, clu *Cluster, owner string) *obj.Module {
	t.Helper()
	for i := 0; i < 256; i++ {
		mod := compileN(t, i)
		if clu.Owner(anserve.CacheKey(mod, testTool())) == owner {
			return mod
		}
	}
	t.Fatalf("no test module hashes to %s", owner)
	return nil
}

// post sends one analysis request and returns status, X-Cache tier and
// body.
func post(t *testing.T, addr string, mod *obj.Module) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/analyze?tool=jasan",
		"application/octet-stream", bytes.NewReader(mod.Marshal()))
	if err != nil {
		t.Fatalf("post to %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

// reference computes the single-node ground truth for mod.
func reference(t *testing.T, mod *obj.Module) []byte {
	t.Helper()
	f, err := core.AnalyzeModule(mod, testTool())
	if err != nil {
		t.Fatal(err)
	}
	return f.Marshal()
}

// TestPeerFill is the tentpole acceptance path: a request landing on a
// non-owner is filled from the owning sibling (computed there, once),
// cached locally, and byte-identical to a single-node analysis. The
// second request is a pure local hit.
func TestPeerFill(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	mod := moduleOwnedBy(t, a.clu, b.addr)

	status, tier, body := post(t, a.addr, mod)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if tier != string(anserve.TierPeer) {
		t.Fatalf("X-Cache = %q, want peer", tier)
	}
	if want := reference(t, mod); !bytes.Equal(body, want) {
		t.Fatal("peer-filled artifact differs from single-node analysis")
	}
	if got := a.clu.peerFills.Load(); got != 1 {
		t.Fatalf("peer fills on A = %d, want 1", got)
	}
	if got := a.svc.Stats().Sched.Analyzed; got != 0 {
		t.Fatalf("A computed %d analyses, want 0 (filled from B)", got)
	}
	if got := b.svc.Stats().Sched.Analyzed; got != 1 {
		t.Fatalf("B computed %d analyses, want exactly 1", got)
	}

	// Now resident locally: no second network hop.
	_, tier, body2 := post(t, a.addr, mod)
	if tier != string(anserve.TierLocal) {
		t.Fatalf("second request X-Cache = %q, want local", tier)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("local re-serve differs from peer fill")
	}
	if got := a.clu.peerFills.Load(); got != 1 {
		t.Fatalf("local hit triggered another fill: %d", got)
	}
}

// TestOwnerComputesLocally: the home shard itself never peer-fills.
func TestOwnerComputesLocally(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a := nodes[0]
	mod := moduleOwnedBy(t, a.clu, a.addr)
	status, tier, body := post(t, a.addr, mod)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if tier != string(anserve.TierMiss) {
		t.Fatalf("X-Cache = %q, want miss (owner computes)", tier)
	}
	if !bytes.Equal(body, reference(t, mod)) {
		t.Fatal("owner-computed artifact differs from reference")
	}
	if got := a.clu.peerFills.Load(); got != 0 {
		t.Fatalf("owner peer-filled its own key: %d", got)
	}
}

// TestByteIdenticalAcrossFleet: every node of a 3-node fleet answers the
// same module with exactly the same bytes as a single-node analysis,
// regardless of which tier served it.
func TestByteIdenticalAcrossFleet(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	for i := 0; i < 6; i++ {
		mod := compileN(t, i)
		want := reference(t, mod)
		for _, node := range nodes {
			status, tier, body := post(t, node.addr, mod)
			if status != http.StatusOK {
				t.Fatalf("node %s: status %d", node.addr, status)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("node %s served different bytes (tier %s)", node.addr, tier)
			}
		}
	}
	// The fleet must have exercised the fill path at least once.
	var fills uint64
	for _, node := range nodes {
		fills += node.clu.peerFills.Load()
	}
	if fills == 0 {
		t.Fatal("no peer fills across a 3-node sweep")
	}
}

// TestSingleflightCrossShard is the satellite concurrency test: many
// concurrent requests to a non-owner for a sibling-owned key must
// coalesce into ONE peer fill backed by ONE compute on the owner — no
// duplicate computes, no duplicate fetches, no deadlock. Run under -race
// by scripts/ci.sh.
func TestSingleflightCrossShard(t *testing.T) {
	gate := make(chan struct{})
	nodes := startFleet(t, 2, map[int]<-chan struct{}{1: gate})
	a, b := nodes[0], nodes[1]
	mod := moduleOwnedBy(t, a.clu, b.addr)

	const clients = 8
	tiers := make([]string, clients)
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], tiers[i], bodies[i] = post(t, a.addr, mod)
		}(i)
	}
	// Hold B's compute open until all but the leader have coalesced on A.
	deadline := time.Now().Add(30 * time.Second)
	for a.clu.coalesced.Load() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %d", a.clu.coalesced.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if tiers[i] != string(anserve.TierPeer) {
			t.Fatalf("client %d: tier %q, want peer", i, tiers[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d: bytes differ", i)
		}
	}
	if got := a.clu.peerFills.Load(); got != 1 {
		t.Fatalf("peer fills = %d, want exactly 1 (singleflight hop one)", got)
	}
	if got := b.svc.Stats().Sched.Analyzed; got != 1 {
		t.Fatalf("owner computed %d times, want exactly 1 (singleflight hop two)", got)
	}
	if got := a.svc.Stats().Sched.Analyzed; got != 0 {
		t.Fatalf("non-owner computed %d times, want 0", got)
	}
	if !bytes.Equal(bodies[0], reference(t, mod)) {
		t.Fatal("coalesced artifact differs from single-node analysis")
	}
}

// TestDegradesWhenPeerDies kills the owner mid-run: requests for its keys
// must keep succeeding via local compute (slower, never wrong, zero
// failures), and the dead sibling is demoted so later requests skip the
// network hop entirely.
func TestDegradesWhenPeerDies(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	mod1 := moduleOwnedBy(t, a.clu, b.addr)
	// A healthy fill first, proving the fleet was actually cooperating.
	if _, tier, _ := post(t, a.addr, mod1); tier != string(anserve.TierPeer) {
		t.Fatalf("warmup tier = %q, want peer", tier)
	}

	b.kill(t)

	// A different B-owned module: the fill fails, A computes locally.
	var mod2 *obj.Module
	for i := 0; ; i++ {
		m := compileN(t, 1000+i)
		if a.clu.Owner(anserve.CacheKey(m, testTool())) == b.addr {
			mod2 = m
			break
		}
	}
	status, tier, body := post(t, a.addr, mod2)
	if status != http.StatusOK {
		t.Fatalf("request failed after owner death: %d", status)
	}
	if tier != string(anserve.TierMiss) {
		t.Fatalf("tier = %q, want miss (local compute fallback)", tier)
	}
	if !bytes.Equal(body, reference(t, mod2)) {
		t.Fatal("fallback artifact differs from reference")
	}
	if a.clu.localFallback.Load() == 0 {
		t.Fatal("fallback not counted")
	}
	if a.clu.Healthy(b.addr) {
		t.Fatal("dead peer still marked healthy after failed fill")
	}

	// Demoted: the next B-owned miss goes straight to local compute
	// without growing the fill-error count.
	errsBefore := a.clu.peerFillErrs.Load()
	var mod3 *obj.Module
	for i := 0; ; i++ {
		m := compileN(t, 2000+i)
		if a.clu.Owner(anserve.CacheKey(m, testTool())) == b.addr {
			mod3 = m
			break
		}
	}
	status, tier, _ = post(t, a.addr, mod3)
	if status != http.StatusOK || tier != string(anserve.TierMiss) {
		t.Fatalf("post-demotion request: status %d tier %q", status, tier)
	}
	if got := a.clu.peerFillErrs.Load(); got != errsBefore {
		t.Fatalf("demoted peer still contacted: fill errors %d -> %d", errsBefore, got)
	}
}

// TestHealthProbeRecovery drives the probe loop directly: a dead peer is
// demoted by probes, and a revived one is promoted again.
func TestHealthProbeRecovery(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.clu.probeAll(ctx)
	if !a.clu.Healthy(b.addr) {
		t.Fatal("live peer probed unhealthy")
	}

	b.kill(t)
	a.clu.probeAll(ctx)
	if a.clu.Healthy(b.addr) {
		t.Fatal("dead peer probed healthy")
	}

	// Revive B's address with a fresh service.
	ln, err := net.Listen("tcp", b.addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", b.addr, err)
	}
	svc := anserve.New(anserve.Config{Workers: 1})
	d := anserve.NewDaemon(svc, anserve.DefaultTools())
	go d.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()
	a.clu.probeAll(ctx)
	if !a.clu.Healthy(b.addr) {
		t.Fatal("revived peer not promoted")
	}
}
