package cluster

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/anserve"
	"repro/internal/jlint"
	"repro/internal/obj"
)

// postJLint sends one jlint analysis request.
func postJLint(t *testing.T, addr string, mod *obj.Module) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/analyze?tool=jlint",
		"application/octet-stream", bytes.NewReader(mod.Marshal()))
	if err != nil {
		t.Fatalf("post to %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

// jlintOwnedBy finds a module whose jlint cache key lands on owner.
func jlintOwnedBy(t *testing.T, clu *Cluster, owner string) *obj.Module {
	t.Helper()
	for i := 0; i < 256; i++ {
		mod := compileN(t, i)
		if clu.Owner(anserve.CacheKey(mod, jlint.New())) == owner {
			return mod
		}
	}
	t.Fatalf("no test module hashes to %s", owner)
	return nil
}

// TestPeerFillJLintArtifact: jlint reports ride the same peer-fill path as
// rule files, with the ArtifactTool validation branch — the filled bytes
// must be the byte-exact single-node report.
func TestPeerFillJLintArtifact(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	mod := jlintOwnedBy(t, a.clu, b.addr)

	status, tier, body := postJLint(t, a.addr, mod)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if tier != string(anserve.TierPeer) {
		t.Fatalf("X-Cache = %q, want peer", tier)
	}
	rep, err := jlint.Analyze(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, rep.Marshal()) {
		t.Fatal("peer-filled report differs from a local analysis")
	}
	if err := jlint.New().ValidateArtifact(mod, body); err != nil {
		t.Fatalf("peer-filled report fails validation: %v", err)
	}
}

// TestPeerFillRejectsCorruptJLintArtifact: a corrupt artifact in the
// owner's cache must fail the filler's validation and degrade to local
// compute — never serve the corrupt bytes.
func TestPeerFillRejectsCorruptJLintArtifact(t *testing.T) {
	nodes := startFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	mod := jlintOwnedBy(t, a.clu, b.addr)

	key := anserve.CacheKey(mod, jlint.New())
	b.svc.CacheInsert(key, []byte(`{"version": 1, "corrupt": true}`))

	status, tier, body := postJLint(t, a.addr, mod)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if tier == string(anserve.TierPeer) {
		t.Fatal("corrupt peer artifact was served as a peer fill")
	}
	if err := jlint.New().ValidateArtifact(mod, body); err != nil {
		t.Fatalf("fallback response fails validation: %v", err)
	}
	if got := a.svc.Stats().Sched.Analyzed; got != 1 {
		t.Fatalf("requester computed %d analyses, want 1 (local fallback)", got)
	}
}

// TestJLintDeterministicAcrossFleet: every node serves byte-identical
// jlint reports regardless of tier, mirroring the rule-file guarantee.
func TestJLintDeterministicAcrossFleet(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	for i := 0; i < 4; i++ {
		mod := compileN(t, i)
		rep, err := jlint.Analyze(mod)
		if err != nil {
			t.Fatal(err)
		}
		want := rep.Marshal()
		for _, node := range nodes {
			status, tier, body := postJLint(t, node.addr, mod)
			if status != http.StatusOK {
				t.Fatalf("node %s: status %d", node.addr, status)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("node %s served different report bytes (tier %s)",
					node.addr, tier)
			}
		}
	}
}
