package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anserve"
	"repro/internal/core"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// Config configures one fleet member.
type Config struct {
	// Self is this node's advertised address; it must appear in Members.
	Self string
	// Members is the full static fleet list (every node, self included),
	// identical on all nodes — from janitizerd's -peers flag.
	Members []string
	// VirtualNodes per member; <= 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// PeerTimeout bounds one peer-fill round trip, including the owner's
	// compute on its own miss; 0 selects DefaultPeerTimeout.
	PeerTimeout time.Duration
	// ProbeInterval is the health-probe period; 0 selects
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive failures (probe or fill) mark
	// a peer down; 0 selects DefaultFailThreshold.
	FailThreshold int
}

// Cluster defaults.
const (
	DefaultPeerTimeout   = 15 * time.Second
	DefaultProbeInterval = 2 * time.Second
	DefaultFailThreshold = 2
)

// Cluster implements anserve.Analyzer over a fleet: local cache first,
// then a peer fill from the key's home shard, then local compute. It
// coalesces concurrent identical requests before any network hop
// (singleflight hop one; the owner's own service singleflights hop two).
type Cluster struct {
	svc    *anserve.Service
	ring   *Ring
	self   string
	client *http.Client
	cfg    Config

	peers map[string]*peerState // every member except self

	mu       sync.Mutex
	inflight map[string]*call

	// counters surface on the service registry as janitizer_cluster_*.
	peerFills     atomic.Uint64 // artifacts filled from a sibling
	peerFillErrs  atomic.Uint64 // failed fill attempts (any cause)
	localFallback atomic.Uint64 // non-owned keys computed locally anyway
	coalesced     atomic.Uint64 // requests joining an in-flight fill
	probes        atomic.Uint64 // health probes sent
	fillLatency   *telemetry.Histogram
}

// peerState tracks one sibling's health. up flips pessimistic after
// FailThreshold consecutive failures (probes and fills both count) and
// optimistic again on any success.
type peerState struct {
	up    atomic.Bool
	fails atomic.Int32
}

type call struct {
	done chan struct{}
	val  []byte
	tier anserve.Tier
	err  error
}

// New returns a fleet member wrapping svc. Config.Self must be listed in
// Config.Members.
func New(svc *anserve.Service, cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	c := &Cluster{
		svc:      svc,
		ring:     ring,
		self:     cfg.Self,
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.PeerTimeout},
		peers:    map[string]*peerState{},
		inflight: map[string]*call{},
	}
	found := false
	for _, m := range ring.Members() {
		if m == cfg.Self {
			found = true
			continue
		}
		ps := &peerState{}
		ps.up.Store(true) // optimistic: first contact decides
		c.peers[m] = ps
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in member list %v",
			cfg.Self, ring.Members())
	}
	c.registerMetrics()
	return c, nil
}

func (c *Cluster) registerMetrics() {
	r := c.svc.Registry()
	r.CounterFunc("janitizer_cluster_peer_fill_total",
		"Artifacts filled from the owning fleet sibling.",
		c.peerFills.Load)
	r.CounterFunc("janitizer_cluster_peer_fill_errors_total",
		"Peer-fill attempts that failed (transport, status, or bad bytes).",
		c.peerFillErrs.Load)
	r.CounterFunc("janitizer_cluster_local_fallback_total",
		"Sibling-owned artifacts computed locally because the owner was unavailable.",
		c.localFallback.Load)
	r.CounterFunc("janitizer_cluster_coalesced_total",
		"Requests that joined an identical in-flight cluster lookup.",
		c.coalesced.Load)
	r.CounterFunc("janitizer_cluster_probes_total",
		"Health probes sent to siblings.",
		c.probes.Load)
	r.GaugeFunc("janitizer_cluster_ring_members",
		"Fleet size this node places against.",
		func() float64 { return float64(len(c.ring.Members())) })
	for addr, ps := range c.peers {
		ps := ps
		r.GaugeFunc("janitizer_cluster_peer_up",
			"Sibling health as seen by this node (1 up, 0 down).",
			func() float64 {
				if ps.up.Load() {
					return 1
				}
				return 0
			}, "peer", addr)
	}
	c.fillLatency = r.Histogram("janitizer_cluster_peer_fill_duration_seconds",
		"Wall-clock duration of successful peer fills.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
			0.1, 0.25, 0.5, 1, 2.5, 5, 10})
}

// Ring exposes the placement ring (for tests and jload shard accounting).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the home shard for a cache key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Healthy reports whether addr is believed up. Self is always healthy;
// unknown addresses are not.
func (c *Cluster) Healthy(addr string) bool {
	if addr == c.self {
		return true
	}
	ps, ok := c.peers[addr]
	return ok && ps.up.Load()
}

func (c *Cluster) markFailure(addr string) {
	ps, ok := c.peers[addr]
	if !ok {
		return
	}
	if int(ps.fails.Add(1)) >= c.cfg.FailThreshold {
		ps.up.Store(false)
	}
}

func (c *Cluster) markSuccess(addr string) {
	ps, ok := c.peers[addr]
	if !ok {
		return
	}
	ps.fails.Store(0)
	ps.up.Store(true)
}

// Start launches the health-probe loop; it stops when ctx is cancelled.
// Probing is an optimization — fills also mark peers passively — so a
// cluster without Start still degrades correctly, just one failed fill at
// a time.
func (c *Cluster) Start(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(c.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			c.probeAll(ctx)
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()
}

func (c *Cluster) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for addr := range c.peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.probes.Add(1)
			probeCtx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval)
			defer cancel()
			req, err := http.NewRequestWithContext(probeCtx, "GET",
				"http://"+addr+"/healthz", nil)
			if err != nil {
				c.markFailure(addr)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.markFailure(addr)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.markSuccess(addr)
			} else {
				c.markFailure(addr)
			}
		}(addr)
	}
	wg.Wait()
}

// AnalyzeBytesTier implements anserve.Analyzer for a fleet member:
//
//  1. coalesce with any identical in-flight lookup (hop-one singleflight);
//  2. probe the local cache (both tiers) — hit: TierLocal;
//  3. if the key's home shard is a healthy sibling, fetch the artifact
//     from it (the sibling serves from cache or computes under its own
//     singleflight — hop two) — success: TierPeer, cached locally;
//  4. otherwise, or on any fill failure, compute locally — TierMiss.
//
// ctx carries the request's trace span (not cancellation); a coalesced
// request's result is attributed to the leader's trace.
func (c *Cluster) AnalyzeBytesTier(ctx context.Context, toolName string,
	mod *obj.Module, tool core.Tool) ([]byte, anserve.Tier, error) {

	key := anserve.CacheKey(mod, tool)

	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-call.done
		return call.val, call.tier, call.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	cl.val, cl.tier, cl.err = c.lookup(ctx, key, toolName, mod, tool)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(cl.done)
	return cl.val, cl.tier, cl.err
}

func (c *Cluster) lookup(ctx context.Context, key, toolName string,
	mod *obj.Module, tool core.Tool) ([]byte, anserve.Tier, error) {

	if b, ok := c.svc.CacheProbe(key); ok {
		return b, anserve.TierLocal, nil
	}
	owner := c.ring.Owner(key)
	if owner != c.self {
		if c.Healthy(owner) {
			if b, err := c.fillFromPeer(ctx, owner, toolName, mod, tool); err == nil {
				c.svc.CacheInsert(key, b)
				return b, anserve.TierPeer, nil
			}
		}
		// Owner down or fill failed: slower, never wrong.
		c.localFallback.Add(1)
	}
	b, tier, err := c.svc.AnalyzeBytesTier(ctx, toolName, mod, tool)
	return b, tier, err
}

// fillFromPeer fetches one artifact from its home shard. The peer serves
// the request strictly locally (PeerFillHeader), so fills cannot loop.
// Any failure — transport, non-200, or bytes that do not validate as this
// tool's artifact for this module — counts against the peer's health and
// makes the caller fall back to local compute.
//
// The fill rides the requester's trace: a child span covers the round trip
// and its context travels to the owner as a Traceparent header, so the
// owner's server span joins the same trace with this span as its remote
// parent.
func (c *Cluster) fillFromPeer(ctx context.Context, owner, toolName string,
	mod *obj.Module, tool core.Tool) ([]byte, error) {
	sp, _ := c.svc.Tracer().StartFrom(ctx, "cluster.peer-fill",
		telemetry.String("module", mod.Name),
		telemetry.String("owner", owner))
	defer sp.End()
	start := time.Now()
	fail := func(err error) ([]byte, error) {
		c.peerFillErrs.Add(1)
		c.markFailure(owner)
		sp.SetError(err.Error())
		return nil, err
	}

	url := "http://" + owner + "/analyze?tool=" + toolName
	req, err := http.NewRequest("POST", url, strings.NewReader(string(mod.Marshal())))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(anserve.PeerFillHeader, "1")
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(sc))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fail(fmt.Errorf("cluster: fill %s from %s: %w", mod.Name, owner, err))
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, anserve.MaxModuleBytes))
	if err != nil {
		return fail(fmt.Errorf("cluster: fill %s from %s: %w", mod.Name, owner, err))
	}
	if resp.StatusCode != http.StatusOK {
		// An overloaded owner (429) is healthy but busy: fall back
		// without dinging its health.
		c.peerFillErrs.Add(1)
		if resp.StatusCode != http.StatusTooManyRequests {
			c.markFailure(owner)
		}
		return nil, fmt.Errorf("cluster: fill %s from %s: status %d",
			mod.Name, owner, resp.StatusCode)
	}
	// Trust but verify: cached bytes must be this tool's artifact for
	// this module — a custom artifact for ArtifactTools, a rule file
	// otherwise.
	if at, ok := tool.(core.ArtifactTool); ok {
		if err := at.ValidateArtifact(mod, body); err != nil {
			return fail(fmt.Errorf("cluster: fill %s from %s: bad artifact: %w",
				mod.Name, owner, err))
		}
	} else {
		f, err := rules.Unmarshal(body)
		if err != nil {
			return fail(fmt.Errorf("cluster: fill %s from %s: bad artifact: %w",
				mod.Name, owner, err))
		}
		if f.Module != mod.Name {
			return fail(fmt.Errorf("cluster: fill from %s returned rules for %q, want %q",
				owner, f.Module, mod.Name))
		}
	}
	c.markSuccess(owner)
	c.peerFills.Add(1)
	c.fillLatency.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
	return body, nil
}
