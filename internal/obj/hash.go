package obj

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash returns the SHA-256 digest of the module's serialised form. Marshal
// is canonical — field order is fixed and all tables are written in the
// order they appear in the Module — so the digest is a stable content
// address: two modules with identical contents hash identically, and a
// marshal/unmarshal round trip preserves the hash. Content-addressed
// caches (internal/anserve) key analysis artifacts on this digest.
func (m *Module) Hash() [sha256.Size]byte {
	return sha256.Sum256(m.Marshal())
}

// HashString returns Hash as lowercase hex.
func (m *Module) HashString() string {
	h := m.Hash()
	return hex.EncodeToString(h[:])
}
