package obj

import (
	"encoding/binary"
	"errors"
	"testing"
)

// Regression tests for deserialiser hardening: hostile images must produce
// typed errors (ErrBadMagic / ErrMalformedModule), never panics or silent
// acceptance of trailing garbage.

func TestUnmarshalTrailingBytes(t *testing.T) {
	img := append(testModule().Marshal(), 0xde, 0xad)
	_, err := Unmarshal(img)
	if !errors.Is(err, ErrMalformedModule) {
		t.Fatalf("trailing bytes: got %v, want ErrMalformedModule", err)
	}
}

func TestUnmarshalTruncations(t *testing.T) {
	img := testModule().Marshal()
	// Every strict prefix must be rejected with a typed error, not a panic
	// or a silently-truncated module.
	for n := 0; n < len(img); n++ {
		_, err := Unmarshal(img[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(img))
		}
		if !errors.Is(err, ErrMalformedModule) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("prefix of %d bytes: untyped error %v", n, err)
		}
	}
}

func TestUnmarshalUnreasonableCounts(t *testing.T) {
	img := testModule().Marshal()
	// The section count is the first varint after magic, version byte and
	// the header fields; rather than hand-compute its offset, corrupt each
	// plausible early u32 position and require a typed rejection.
	for off := 4; off+4 <= len(img) && off < 64; off++ {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[off:], 0xffffffff)
		if _, err := Unmarshal(bad); err != nil {
			if !errors.Is(err, ErrMalformedModule) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("corrupt u32 at %d: untyped error %v", off, err)
			}
		}
	}
}

func TestValidateSectionAddrOverflow(t *testing.T) {
	m := testModule()
	m.Sections[0].Addr = ^uint64(0) - 8
	if err := m.Validate(); err == nil {
		t.Fatal("section with Addr+len overflow validated")
	}
}
