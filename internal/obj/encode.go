package obj

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialisation of JEF modules. The format is a simple tagged binary
// layout: magic, fixed header, then counted tables. All integers are
// little-endian; strings are length-prefixed (uint32) UTF-8.

// Magic identifies a serialised JEF module.
var Magic = [4]byte{'J', 'E', 'F', '1'}

// ErrBadMagic is returned when unmarshalling data that is not a JEF module.
var ErrBadMagic = errors.New("obj: bad magic (not a JEF module)")

// ErrMalformedModule is wrapped by every Unmarshal failure past the magic
// check: truncated tables, unreasonable counts, or trailing garbage.
// Robustness harnesses (internal/fuzz) assert errors.Is(err,
// ErrMalformedModule) so that hostile inputs are rejected with a typed
// error rather than a panic or a silently-truncated module.
var ErrMalformedModule = errors.New("obj: malformed module")

// Unmarshal table-count sanity caps. A hostile header can declare counts
// far beyond what any real module contains; entries are length-checked
// individually, but capping the counts up front bounds the work (and
// allocation) a malformed module can demand.
const (
	maxSections = 1 << 20
	maxSymbols  = 1 << 24
	maxImports  = 1 << 20
	maxRelocs   = 1 << 24
	maxNeeded   = 1 << 16
)

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) u64(v uint64) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated (%s at offset %d)",
			ErrMalformedModule, what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail("bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:])
	r.off += n
	return b
}

// Marshal serialises the module.
func (m *Module) Marshal() []byte {
	var w writer
	w.buf.Write(Magic[:])
	w.str(m.Name)
	w.u8(uint8(m.Type))
	if m.PIC {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u8(uint8(m.SymLevel))
	w.u64(m.Base)
	w.u64(m.Entry)

	w.u32(uint32(len(m.Sections)))
	for i := range m.Sections {
		s := &m.Sections[i]
		w.str(s.Name)
		w.u64(s.Addr)
		w.u8(s.Flags)
		w.bytes(s.Data)
	}
	w.u32(uint32(len(m.Symbols)))
	for _, s := range m.Symbols {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u64(s.Size)
		w.u8(uint8(s.Kind))
		if s.Exported {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.u32(uint32(len(m.Imports)))
	for _, im := range m.Imports {
		w.str(im.Name)
		w.u64(im.PLT)
		w.u64(im.GOT)
	}
	w.u32(uint32(len(m.Relocs)))
	for _, r := range m.Relocs {
		w.u8(uint8(r.Kind))
		w.u64(r.Where)
		w.str(r.Sym)
	}
	w.u32(uint32(len(m.Needed)))
	for _, n := range m.Needed {
		w.str(n)
	}
	return w.buf.Bytes()
}

// WriteTo serialises the module to w.
func (m *Module) WriteTo(w io.Writer) (int64, error) {
	b := m.Marshal()
	n, err := w.Write(b)
	return int64(n), err
}

// Unmarshal deserialises a module from data.
func Unmarshal(data []byte) (*Module, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], Magic[:]) {
		return nil, ErrBadMagic
	}
	r := &reader{b: data, off: 4}
	m := &Module{}
	m.Name = r.str()
	m.Type = ModuleType(r.u8())
	m.PIC = r.u8() != 0
	m.SymLevel = SymTabLevel(r.u8())
	m.Base = r.u64()
	m.Entry = r.u64()

	nsec := int(r.u32())
	if r.err == nil && nsec > maxSections {
		return nil, fmt.Errorf("%w: unreasonable section count %d",
			ErrMalformedModule, nsec)
	}
	for i := 0; i < nsec && r.err == nil; i++ {
		var s Section
		s.Name = r.str()
		s.Addr = r.u64()
		s.Flags = r.u8()
		s.Data = r.bytes()
		m.Sections = append(m.Sections, s)
	}
	nsym := int(r.u32())
	if r.err == nil && nsym > maxSymbols {
		return nil, fmt.Errorf("%w: unreasonable symbol count %d",
			ErrMalformedModule, nsym)
	}
	for i := 0; i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Addr = r.u64()
		s.Size = r.u64()
		s.Kind = SymKind(r.u8())
		s.Exported = r.u8() != 0
		m.Symbols = append(m.Symbols, s)
	}
	nimp := int(r.u32())
	if r.err == nil && nimp > maxImports {
		return nil, fmt.Errorf("%w: unreasonable import count %d",
			ErrMalformedModule, nimp)
	}
	for i := 0; i < nimp && r.err == nil; i++ {
		var im Import
		im.Name = r.str()
		im.PLT = r.u64()
		im.GOT = r.u64()
		m.Imports = append(m.Imports, im)
	}
	nrel := int(r.u32())
	if r.err == nil && nrel > maxRelocs {
		return nil, fmt.Errorf("%w: unreasonable reloc count %d",
			ErrMalformedModule, nrel)
	}
	for i := 0; i < nrel && r.err == nil; i++ {
		var rel Reloc
		rel.Kind = RelocKind(r.u8())
		rel.Where = r.u64()
		rel.Sym = r.str()
		m.Relocs = append(m.Relocs, rel)
	}
	nneed := int(r.u32())
	if r.err == nil && nneed > maxNeeded {
		return nil, fmt.Errorf("%w: unreasonable dependency count %d",
			ErrMalformedModule, nneed)
	}
	for i := 0; i < nneed && r.err == nil; i++ {
		m.Needed = append(m.Needed, r.str())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after module end",
			ErrMalformedModule, len(r.b)-r.off)
	}
	return m, nil
}
