package obj

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// testModule builds a small structurally valid non-PIC executable.
func testModule() *Module {
	return &Module{
		Name:     "prog",
		Type:     Exec,
		PIC:      false,
		SymLevel: SymFull,
		Base:     0x400000,
		Entry:    0x400100,
		Sections: []Section{
			{Name: ".init", Addr: 0x400000, Data: make([]byte, 0x40), Flags: SecExec},
			{Name: ".plt", Addr: 0x400040, Data: make([]byte, 0x40), Flags: SecExec},
			{Name: ".text", Addr: 0x400100, Data: make([]byte, 0x200), Flags: SecExec},
			{Name: ".rodata", Addr: 0x400300, Data: make([]byte, 0x80)},
			{Name: ".data", Addr: 0x400380, Data: make([]byte, 0x80), Flags: SecWrite},
			{Name: ".got", Addr: 0x400400, Data: make([]byte, 0x20), Flags: SecWrite},
		},
		Symbols: []Symbol{
			{Name: "_start", Addr: 0x400100, Size: 0x20, Kind: SymFunc, Exported: true},
			{Name: "main", Addr: 0x400120, Size: 0x80, Kind: SymFunc, Exported: true},
			{Name: "helper", Addr: 0x4001a0, Size: 0x40, Kind: SymFunc},
			{Name: "table", Addr: 0x400380, Size: 0x40, Kind: SymObject},
		},
		Imports: []Import{
			{Name: "malloc", PLT: 0x400040, GOT: 0x400400},
			{Name: "free", PLT: 0x400050, GOT: 0x400408},
		},
		Relocs: []Reloc{
			{Kind: RelGotFunc, Where: 0x400400, Sym: "malloc"},
			{Kind: RelGotFunc, Where: 0x400408, Sym: "free"},
			{Kind: RelRebase, Where: 0x400380},
		},
		Needed: []string{"libj.jef"},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testModule().Validate(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Module)
	}{
		{"no name", func(m *Module) { m.Name = "" }},
		{"bad type", func(m *Module) { m.Type = 0 }},
		{"non-PIC zero base", func(m *Module) { m.Base = 0 }},
		{"PIC with base", func(m *Module) { m.PIC = true }},
		{"overlapping sections", func(m *Module) { m.Sections[1].Addr = 0x400030 }},
		{"symbol outside sections", func(m *Module) { m.Symbols[0].Addr = 0x500000 }},
		{"reloc outside sections", func(m *Module) { m.Relocs[0].Where = 0x500000 }},
		{"reloc straddles section", func(m *Module) { m.Relocs[2].Where = 0x4003fa }},
		{"import PLT outside", func(m *Module) { m.Imports[0].PLT = 0x500000 }},
		{"entry not executable", func(m *Module) { m.Entry = 0x400380 }},
		{"entry outside", func(m *Module) { m.Entry = 0x900000 }},
	}
	for _, tt := range tests {
		m := testModule()
		tt.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid module", tt.name)
		}
	}
}

func TestSectionLookup(t *testing.T) {
	m := testModule()
	if s := m.Section(".text"); s == nil || s.Addr != 0x400100 {
		t.Fatalf("Section(.text) = %+v", s)
	}
	if s := m.Section(".nope"); s != nil {
		t.Fatalf("Section(.nope) should be nil, got %+v", s)
	}
	if s := m.SectionAt(0x400150); s == nil || s.Name != ".text" {
		t.Fatalf("SectionAt(0x400150) = %+v", s)
	}
	if s := m.SectionAt(0x400300 - 1); s == nil || s.Name != ".text" {
		t.Fatalf("SectionAt(end of .text) = %+v", s)
	}
	if s := m.SectionAt(0x999999); s != nil {
		t.Fatalf("SectionAt(outside) = %+v", s)
	}
}

func TestSymbolViews(t *testing.T) {
	m := testModule()
	if s := m.FindSymbol("main"); s == nil || s.Addr != 0x400120 {
		t.Fatalf("FindSymbol(main) = %+v", s)
	}
	if s := m.FindSymbol("nope"); s != nil {
		t.Fatalf("FindSymbol(nope) = %+v", s)
	}

	funcs := m.FuncSymbols()
	if len(funcs) != 3 {
		t.Fatalf("full symtab FuncSymbols = %d, want 3", len(funcs))
	}
	for i := 1; i < len(funcs); i++ {
		if funcs[i-1].Addr > funcs[i].Addr {
			t.Fatal("FuncSymbols not sorted by address")
		}
	}

	m.SymLevel = SymStripped
	funcs = m.FuncSymbols()
	if len(funcs) != 2 {
		t.Fatalf("stripped FuncSymbols = %d, want 2 (exported only)", len(funcs))
	}
	for _, f := range funcs {
		if !f.Exported {
			t.Errorf("stripped FuncSymbols leaked local %s", f.Name)
		}
	}

	exp := m.ExportedSymbols()
	if len(exp) != 2 {
		t.Fatalf("ExportedSymbols = %d, want 2", len(exp))
	}
}

func TestExecSections(t *testing.T) {
	m := testModule()
	exec := m.ExecSections()
	if len(exec) != 3 {
		t.Fatalf("ExecSections = %d, want 3 (.init .plt .text)", len(exec))
	}
	names := []string{exec[0].Name, exec[1].Name, exec[2].Name}
	want := []string{".init", ".plt", ".text"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ExecSections order = %v, want %v", names, want)
	}
}

func TestImportByPLT(t *testing.T) {
	m := testModule()
	if im := m.ImportByPLT(0x400050); im == nil || im.Name != "free" {
		t.Fatalf("ImportByPLT(0x400050) = %+v", im)
	}
	if im := m.ImportByPLT(0x999); im != nil {
		t.Fatalf("ImportByPLT(bogus) = %+v", im)
	}
}

func TestExtent(t *testing.T) {
	m := testModule()
	lo, span := m.Extent()
	if lo != 0x400000 {
		t.Errorf("Extent lo = %#x, want 0x400000", lo)
	}
	if span != 0x420 {
		t.Errorf("Extent span = %#x, want 0x420", span)
	}
	var empty Module
	if lo, span := empty.Extent(); lo != 0 || span != 0 {
		t.Errorf("empty Extent = %#x,%#x", lo, span)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	m := testModule()
	// Give sections distinguishable content.
	for i := range m.Sections {
		for j := range m.Sections[i].Data {
			m.Sections[i].Data[j] = byte(i*31 + j)
		}
	}
	data := m.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("nope")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := Unmarshal(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("nil input: got %v", err)
	}
	// Truncation at every prefix length must error, never panic.
	data := testModule().Marshal()
	for n := 4; n < len(data); n += 7 {
		if _, err := Unmarshal(data[:n]); err == nil {
			t.Errorf("truncated at %d bytes: no error", n)
		}
	}
}

// Property: marshal/unmarshal roundtrip over randomly generated modules.
func TestMarshalRoundtripProperty(t *testing.T) {
	gen := func(r *rand.Rand) *Module {
		m := &Module{
			Name:     "m" + string(rune('a'+r.Intn(26))),
			Type:     ModuleType(1 + r.Intn(2)),
			PIC:      r.Intn(2) == 0,
			SymLevel: SymTabLevel(1 + r.Intn(3)),
			Base:     uint64(r.Uint32()),
			Entry:    uint64(r.Uint32()),
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			data := make([]byte, r.Intn(64))
			r.Read(data)
			m.Sections = append(m.Sections, Section{
				Name:  ".s" + string(rune('0'+i)),
				Addr:  uint64(r.Uint32()),
				Data:  data,
				Flags: uint8(r.Intn(4)),
			})
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Symbols = append(m.Symbols, Symbol{
				Name: "sym" + string(rune('0'+i)), Addr: uint64(r.Uint32()),
				Size: uint64(r.Intn(100)), Kind: SymKind(1 + r.Intn(2)),
				Exported: r.Intn(2) == 0,
			})
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.Imports = append(m.Imports, Import{
				Name: "imp" + string(rune('0'+i)),
				PLT:  uint64(r.Uint32()), GOT: uint64(r.Uint32()),
			})
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.Relocs = append(m.Relocs, Reloc{
				Kind: RelocKind(1 + r.Intn(2)), Where: uint64(r.Uint32()),
				Sym: "s",
			})
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.Needed = append(m.Needed, "dep"+string(rune('0'+i)))
		}
		return m
	}
	f := func(seed int64) bool {
		m := gen(rand.New(rand.NewSource(seed)))
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteTo(t *testing.T) {
	m := testModule()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	if _, err := Unmarshal(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if Exec.String() != "exec" || SharedObj.String() != "shared-object" {
		t.Error("ModuleType strings wrong")
	}
	if ModuleType(9).String() != "unknown" {
		t.Error("unknown ModuleType string wrong")
	}
	if SymFull.String() != "full" || SymStripped.String() != "stripped" ||
		SymExports.String() != "exports-only" || SymTabLevel(9).String() != "unknown" {
		t.Error("SymTabLevel strings wrong")
	}
}
