// Package obj defines the JEF (Janitizer Executable Format) module format:
// the reproduction's analogue of ELF. A module is an executable or shared
// object with sections, a symbol table, relocations, imports/exports and
// declared dependencies, compiled either as position-dependent (non-PIC,
// fixed base) or position-independent (PIC, relocatable) code.
//
// The format deliberately preserves the properties the Janitizer paper
// depends on:
//
//   - PIC vs non-PIC modules (Retrowrite-class tools only handle PIC);
//   - symbol tables that may be full, export-only, or stripped, changing
//     what function-boundary information is available to static analysis;
//   - data sections that may contain code pointers (jump tables, vtables,
//     callback tables) found only by sliding-window scanning;
//   - multiple executable sections (.init, .plt, .text, .fini) so that
//     analyses restricted to .text lack coverage;
//   - a PLT/GOT import mechanism with lazy binding.
package obj

import (
	"fmt"
	"sort"
)

// ModuleType distinguishes executables from shared objects.
type ModuleType uint8

// Module types.
const (
	Exec ModuleType = iota + 1
	SharedObj
)

func (t ModuleType) String() string {
	switch t {
	case Exec:
		return "exec"
	case SharedObj:
		return "shared-object"
	}
	return "unknown"
}

// SymTabLevel describes how much symbol information a module retains.
type SymTabLevel uint8

// Symbol table levels.
const (
	// SymFull retains every defined symbol, local and exported.
	SymFull SymTabLevel = iota + 1
	// SymExports retains only exported (dynamic) symbols.
	SymExports
	// SymStripped retains only the exported symbols required for dynamic
	// linking, with local function boundaries discarded.
	SymStripped
)

func (l SymTabLevel) String() string {
	switch l {
	case SymFull:
		return "full"
	case SymExports:
		return "exports-only"
	case SymStripped:
		return "stripped"
	}
	return "unknown"
}

// Section flags.
const (
	SecExec  uint8 = 1 << iota // contains executable code
	SecWrite                   // writable at run time
)

// Section is a named contiguous region of the module image. Addr is the
// link-time address: absolute for non-PIC modules, relative to a zero base
// for PIC modules.
type Section struct {
	Name  string
	Addr  uint64
	Data  []byte
	Flags uint8
}

// Executable reports whether the section contains code.
func (s *Section) Executable() bool { return s.Flags&SecExec != 0 }

// Contains reports whether the link-time address a falls inside the section.
func (s *Section) Contains(a uint64) bool {
	return a >= s.Addr && a < s.Addr+uint64(len(s.Data))
}

// SymKind classifies symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota + 1
	SymObject
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymObject:
		return "object"
	}
	return "unknown"
}

// Symbol is a named address within the module, at its link-time address.
type Symbol struct {
	Name     string
	Addr     uint64
	Size     uint64
	Kind     SymKind
	Exported bool
}

// Import is a function the module expects to resolve from another module at
// load time. Each import owns one PLT entry and one GOT slot; PLT and GOT
// give the link-time addresses of those.
type Import struct {
	Name string
	PLT  uint64 // link-time address of the PLT stub for this import
	GOT  uint64 // link-time address of the GOT slot for this import
}

// RelocKind classifies load-time relocations.
type RelocKind uint8

// Relocation kinds.
const (
	// RelRebase: add the module load base to the 8-byte word at Where.
	// Used for code/data pointers embedded in PIC module data (jump
	// tables, function-pointer tables, vtable-like structures).
	RelRebase RelocKind = iota + 1
	// RelGotFunc: resolve symbol Sym from the module's dependencies and
	// store its absolute run-time address in the 8-byte GOT slot at
	// Where. Used for eager binding; under lazy binding the loader
	// instead points the slot at the lazy-resolver trampoline.
	RelGotFunc
)

// Reloc is a load-time fixup. Where is the link-time address of the affected
// 8-byte word.
type Reloc struct {
	Kind  RelocKind
	Where uint64
	Sym   string // for RelGotFunc
}

// Module is one JEF executable or shared object.
type Module struct {
	Name     string // soname, e.g. "libm.jef" or "perlbench"
	Type     ModuleType
	PIC      bool
	SymLevel SymTabLevel
	// Base is the link-time base address. Non-PIC modules must be loaded
	// exactly here; PIC modules use Base 0 and are relocated.
	Base uint64
	// Entry is the link-time address of the entry point (_start) for
	// executables; 0 for shared objects.
	Entry    uint64
	Sections []Section
	Symbols  []Symbol
	Imports  []Import
	Relocs   []Reloc
	// Needed lists soname dependencies discoverable statically (the
	// ldd-visible set). Modules loaded via dlopen do NOT appear here —
	// that distinction drives Janitizer's dynamic-fallback coverage.
	Needed []string
}

// Section returns the named section, or nil.
func (m *Module) Section(name string) *Section {
	for i := range m.Sections {
		if m.Sections[i].Name == name {
			return &m.Sections[i]
		}
	}
	return nil
}

// SectionAt returns the section containing link-time address a, or nil.
func (m *Module) SectionAt(a uint64) *Section {
	for i := range m.Sections {
		if m.Sections[i].Contains(a) {
			return &m.Sections[i]
		}
	}
	return nil
}

// FindSymbol returns the symbol with the given name, or nil.
func (m *Module) FindSymbol(name string) *Symbol {
	for i := range m.Symbols {
		if m.Symbols[i].Name == name {
			return &m.Symbols[i]
		}
	}
	return nil
}

// ExportedSymbols returns the exported symbols, sorted by address.
func (m *Module) ExportedSymbols() []Symbol {
	var out []Symbol
	for _, s := range m.Symbols {
		if s.Exported {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FuncSymbols returns function symbols visible at the module's symbol-table
// level, sorted by address: all functions for SymFull, exported functions
// otherwise.
func (m *Module) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range m.Symbols {
		if s.Kind != SymFunc {
			continue
		}
		if m.SymLevel != SymFull && !s.Exported {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ExecSections returns the executable sections in address order.
func (m *Module) ExecSections() []*Section {
	var out []*Section
	for i := range m.Sections {
		if m.Sections[i].Executable() {
			out = append(out, &m.Sections[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ImportByPLT returns the import whose PLT stub is at link-time address a,
// or nil.
func (m *Module) ImportByPLT(a uint64) *Import {
	for i := range m.Imports {
		if m.Imports[i].PLT == a {
			return &m.Imports[i]
		}
	}
	return nil
}

// Extent returns the lowest link-time address and the total span in bytes
// covered by the module's sections ([lo, lo+span)).
func (m *Module) Extent() (lo, span uint64) {
	if len(m.Sections) == 0 {
		return 0, 0
	}
	lo = ^uint64(0)
	hi := uint64(0)
	for i := range m.Sections {
		s := &m.Sections[i]
		if s.Addr < lo {
			lo = s.Addr
		}
		if end := s.Addr + uint64(len(s.Data)); end > hi {
			hi = end
		}
	}
	return lo, hi - lo
}

// Validate checks structural invariants: sections must not overlap, symbols
// and relocations must point into sections, non-PIC modules must have a
// non-zero base, and imports must have PLT/GOT addresses inside the module.
func (m *Module) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("obj: module has no name")
	}
	if m.Type != Exec && m.Type != SharedObj {
		return fmt.Errorf("obj: module %s: bad type %d", m.Name, m.Type)
	}
	if !m.PIC && m.Base == 0 {
		return fmt.Errorf("obj: module %s: non-PIC module with zero base", m.Name)
	}
	if m.PIC && m.Base != 0 {
		return fmt.Errorf("obj: module %s: PIC module with non-zero base %#x", m.Name, m.Base)
	}
	secs := append([]Section(nil), m.Sections...)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })
	for i := range secs {
		s := &secs[i]
		// An address-space wrap would defeat the overlap check below and
		// every Contains-style bound elsewhere, so reject it outright.
		if s.Addr+uint64(len(s.Data)) < s.Addr {
			return fmt.Errorf("obj: module %s: section %s end overflows address space",
				m.Name, s.Name)
		}
	}
	for i := 1; i < len(secs); i++ {
		prev := &secs[i-1]
		if prev.Addr+uint64(len(prev.Data)) > secs[i].Addr {
			return fmt.Errorf("obj: module %s: sections %s and %s overlap",
				m.Name, prev.Name, secs[i].Name)
		}
	}
	for _, s := range m.Symbols {
		if m.SectionAt(s.Addr) == nil && s.Addr != 0 {
			return fmt.Errorf("obj: module %s: symbol %s at %#x outside all sections",
				m.Name, s.Name, s.Addr)
		}
	}
	for _, r := range m.Relocs {
		sec := m.SectionAt(r.Where)
		if sec == nil {
			return fmt.Errorf("obj: module %s: reloc at %#x outside all sections",
				m.Name, r.Where)
		}
		if !sec.Contains(r.Where + 7) {
			return fmt.Errorf("obj: module %s: reloc at %#x straddles section end",
				m.Name, r.Where)
		}
	}
	for _, im := range m.Imports {
		if m.SectionAt(im.PLT) == nil {
			return fmt.Errorf("obj: module %s: import %s PLT %#x outside module",
				m.Name, im.Name, im.PLT)
		}
		if m.SectionAt(im.GOT) == nil {
			return fmt.Errorf("obj: module %s: import %s GOT %#x outside module",
				m.Name, im.Name, im.GOT)
		}
	}
	if m.Type == Exec {
		sec := m.SectionAt(m.Entry)
		if sec == nil || !sec.Executable() {
			return fmt.Errorf("obj: module %s: entry %#x not in executable section",
				m.Name, m.Entry)
		}
	}
	return nil
}
