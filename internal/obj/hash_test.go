package obj

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestHashStableAcrossRoundTrip is the cache-key stability property:
// serialize -> deserialize -> serialize must yield identical bytes and
// therefore identical content hashes, for arbitrary modules. If this breaks,
// the content-addressed rule cache silently never hits.
func TestHashStableAcrossRoundTrip(t *testing.T) {
	prop := func(m Module) bool {
		b1 := m.Marshal()
		m2, err := Unmarshal(b1)
		if err != nil {
			t.Logf("unmarshal of freshly marshaled module failed: %v", err)
			return false
		}
		b2 := m2.Marshal()
		return bytes.Equal(b1, b2) && m.Hash() == m2.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHashDiscriminates checks that the hash actually depends on content.
func TestHashDiscriminates(t *testing.T) {
	a := Module{Name: "a", Type: Exec, Base: 0x1000}
	b := a
	if a.Hash() != b.Hash() {
		t.Fatal("identical modules hash differently")
	}
	b.Base = 0x2000
	if a.Hash() == b.Hash() {
		t.Fatal("different modules hash identically")
	}
	if len(a.HashString()) != 64 {
		t.Fatalf("HashString length = %d, want 64", len(a.HashString()))
	}
}
