package dbm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/vm"
)

// setup assembles src, loads it (with libj) and returns a DBM with the given
// client.
func setup(t *testing.T, src string, client Client) (*vm.Machine, *DBM, uint64) {
	t.Helper()
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 5_000_000
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	p := loader.NewProcess(m, reg)
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	lm, err := p.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	return m, New(m, p, client), lm.RuntimeAddr(main.Entry)
}

const sumProgram = `
.module prog
.entry _start
.section .text
_start:
    mov r1, 10000
    mov r2, 0
.loop:
    add r2, r1
    sub r1, 1
    cmp r1, 0
    jg .loop
    mov r1, r2
    mov r0, 1
    syscall
`

func TestNullClientPreservesSemantics(t *testing.T) {
	m, d, entry := setup(t, sumProgram, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != 50005000 {
		t.Fatalf("sum under DBT = %d, want 50005000", m.ExitStatus)
	}
	if d.Stats.BlocksBuilt == 0 || d.Stats.BlockExecs < d.Stats.BlocksBuilt {
		t.Errorf("stats implausible: %+v", d.Stats)
	}
	// The loop body block executed 100 times but was built once.
	if d.Stats.BlocksBuilt > 5 {
		t.Errorf("built %d blocks, expected <= 5", d.Stats.BlocksBuilt)
	}
}

func TestNullClientOverheadIsSmallButNonzero(t *testing.T) {
	// Native run.
	mN := vm.New()
	mN.InstallDefaultServices()
	mN.MaxInstrs = 5_000_000
	lj, _ := libj.Module()
	pN := loader.NewProcess(mN, loader.Registry{libj.Name: lj})
	main, _ := asm.Assemble(sumProgram)
	lmN, err := pN.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	if err := mN.Run(lmN.RuntimeAddr(main.Entry)); err != nil {
		t.Fatal(err)
	}

	m, d, entry := setup(t, sumProgram, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	slow := float64(m.Cycles) / float64(mN.Cycles)
	if slow <= 1.0 {
		t.Fatalf("null client slowdown %.3f, want > 1", slow)
	}
	if slow > 1.25 {
		t.Fatalf("null client slowdown %.3f implausibly high for a loopy program", slow)
	}
}

func TestIndirectDispatchCharged(t *testing.T) {
	m, d, entry := setup(t, `
.module prog
.entry _start
.section .text
_start:
    mov r12, 0
    la r13, fn
.loop:
    calli r13          ; indirect call: dispatch cost each time
    add r12, 1
    cmp r12, 10
    jl .loop
    mov r1, 0
    mov r0, 1
    syscall
fn:
    ret
`, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	_ = m
	// 10 indirect calls + 10 returns (+ PLT/init noise is absent here).
	if d.Stats.IndirectDispatch < 20 {
		t.Errorf("indirect dispatches = %d, want >= 20", d.Stats.IndirectDispatch)
	}
}

// countingClient inserts a meta add-to-register counter before every store.
type countingClient struct {
	scratchAbuse bool
}

func (c countingClient) OnBlock(ctx *BlockContext) []CInstr {
	var out []CInstr
	for _, in := range ctx.AppInstrs {
		if in.IsStore() {
			// Inline meta-instrumentation: count stores in memory at a
			// fixed slot, preserving registers and flags via stack.
			slot := isa.LayoutCFITableBase // reuse a spare region
			out = append(out,
				Meta(isa.Instr{Op: isa.OpPushF, Size: 1}),
				Meta(isa.Instr{Op: isa.OpPush, Rd: isa.R6, Size: 2}),
				Meta(isa.Instr{Op: isa.OpPush, Rd: isa.R7, Size: 2}),
				Meta(isa.Instr{Op: isa.OpMovRI, Rd: isa.R6, Imm: int64(slot), Size: 10}),
				Meta(isa.Instr{Op: isa.OpLdQ, Rd: isa.R7, Rb: isa.R6, Size: 7}),
				Meta(isa.Instr{Op: isa.OpAddRI, Rd: isa.R7, Imm: 1, Size: 6}),
				Meta(isa.Instr{Op: isa.OpStQ, Rd: isa.R7, Rb: isa.R6, Size: 7}),
				Meta(isa.Instr{Op: isa.OpPop, Rd: isa.R7, Size: 2}),
				Meta(isa.Instr{Op: isa.OpPop, Rd: isa.R6, Size: 2}),
				Meta(isa.Instr{Op: isa.OpPopF, Size: 1}),
			)
		}
		out = append(out, App(in))
	}
	return out
}

func TestInlineInstrumentationCountsStores(t *testing.T) {
	m, d, entry := setup(t, `
.module prog
.entry _start
.section .text
_start:
    la r6, buf
    mov r7, 0
.loop:
    stxb [r6+r7], r7   ; one store per iteration
    add r7, 1
    cmp r7, 50
    jl .loop
    mov r1, 0
    mov r0, 1
    syscall
.section .data
buf:
    .zero 64
`, countingClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	count, err := m.Mem.Read64(isa.LayoutCFITableBase)
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("instrumented store count = %d, want 50", count)
	}
	if m.ExitStatus != 0 {
		t.Fatalf("program semantics broken by instrumentation: exit %d", m.ExitStatus)
	}
	if d.Stats.MetaInstrsInCache == 0 {
		t.Error("no meta instructions recorded")
	}
}

// skipClient inserts a meta conditional branch that skips a poison write —
// exercising intra-block JumpTo control flow.
type skipClient struct{}

func (skipClient) OnBlock(ctx *BlockContext) []CInstr {
	var out []CInstr
	for _, in := range ctx.AppInstrs {
		if in.IsStore() {
			// if r7 == 13 { skip the sentinel write } — meta control flow:
			//   pushf; cmp r7,13; je SKIP; (write sentinel); SKIP: popf
			base := len(out)
			_ = base
			out = append(out,
				Meta(isa.Instr{Op: isa.OpPushF, Size: 1}),
				Meta(isa.Instr{Op: isa.OpPush, Rd: isa.R8, Size: 2}),
				Meta(isa.Instr{Op: isa.OpCmpRI, Rd: isa.R7, Imm: 13, Size: 6}),
			)
			jeIdx := len(out)
			out = append(out, CInstr{}) // placeholder
			out = append(out,
				Meta(isa.Instr{Op: isa.OpMovRI, Rd: isa.R8, Imm: int64(isa.LayoutCFITableBase + 8), Size: 10}),
				Meta(isa.Instr{Op: isa.OpStQ, Rd: isa.R8, Rb: isa.R8, Size: 7}),
			)
			skipTo := len(out)
			out[jeIdx] = MetaJump(isa.Instr{Op: isa.OpJe, Size: 5}, skipTo)
			out = append(out,
				Meta(isa.Instr{Op: isa.OpPop, Rd: isa.R8, Size: 2}),
				Meta(isa.Instr{Op: isa.OpPopF, Size: 1}),
			)
		}
		out = append(out, App(in))
	}
	return out
}

func TestMetaBranchSkipsWithinBlock(t *testing.T) {
	m, d, entry := setup(t, `
.module prog
.entry _start
.section .text
_start:
    la r6, buf
    mov r7, 13
    stxb [r6+r7], r7   ; instrumentation should SKIP its sentinel write
    mov r7, 14
    stxb [r6+r7], r7   ; instrumentation should WRITE its sentinel
    mov r1, 0
    mov r0, 1
    syscall
.section .data
buf:
    .zero 64
`, skipClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	sentinel, _ := m.Mem.Read64(isa.LayoutCFITableBase + 8)
	if sentinel == 0 {
		t.Fatal("sentinel never written — meta branch always taken?")
	}
	if m.ExitStatus != 0 {
		t.Fatalf("exit = %d", m.ExitStatus)
	}
}

func TestBlockCacheReuse(t *testing.T) {
	_, d, entry := setup(t, sumProgram, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	loopBlocks := 0
	for _, b := range d.Blocks() {
		if b.Execs >= 9999 {
			loopBlocks++
		}
	}
	if loopBlocks == 0 {
		t.Error("loop block not reused from cache")
	}
	if d.Lookup(entry) == nil {
		t.Error("entry block not in cache")
	}
	d.Flush()
	if d.CacheSize() != 0 {
		t.Error("flush did not empty cache")
	}
}

func TestDBMWithLibjCalls(t *testing.T) {
	// Full program through PLT, lazy resolution, memcpy under DBT.
	m, d, entry := setup(t, `
.module prog
.entry _start
.needs libj.jef
.import memcpy
.section .text
_start:
    la r1, dst
    la r2, src
    mov r3, 6
    call memcpy
    la r6, dst
    ldb r7, [r6+5]
    mov r1, r7
    mov r0, 1
    syscall
.section .rodata
src:
    .ascii "hello!"
.section .data
dst:
    .zero 16
`, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != int64('!') {
		t.Fatalf("exit = %d, want '!'", m.ExitStatus)
	}
	// The PLT resolver's push+ret path ran under the DBT.
	if d.Stats.IndirectDispatch == 0 {
		t.Error("no indirect dispatches despite PLT ret-call")
	}
}

func TestJITCodeUnderDBM(t *testing.T) {
	// Dynamically generated code must be discovered and translated.
	ret := isa.Instr{Op: isa.OpRet}
	mov := isa.Instr{Op: isa.OpMovRI, Rd: isa.R0, Imm: 7}
	var blob []byte
	blob = isa.Encode(blob, &mov)
	blob = isa.Encode(blob, &ret)
	src := `
.module prog
.entry _start
.section .text
_start:
    mov r1, 4096
    mov r0, 4
    syscall            ; mmapx
    mov r12, r0
    la r7, blob
    mov r8, 0
.copy:
    ldxb r9, [r7+r8]
    stxb [r12+r8], r9
    add r8, 1
    cmp r8, ` + itoa(len(blob)) + `
    jl .copy
    calli r12
    mov r1, r0
    mov r0, 1
    syscall
.section .rodata
blob:
`
	for _, b := range blob {
		src += "    .byte " + itoa(int(b)) + "\n"
	}
	m, d, entry := setup(t, src, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != 7 {
		t.Fatalf("JIT exit = %d, want 7", m.ExitStatus)
	}
	// The JIT block is cached outside any module.
	found := false
	for addr := range d.Blocks() {
		if addr >= isa.LayoutJITBase && addr < isa.LayoutStackLimit {
			found = true
		}
	}
	if !found {
		t.Error("JIT block not found in code cache")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
