package dbm

import (
	"sort"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

func TestStatsCacheHitInvariant(t *testing.T) {
	_, d, entry := setup(t, sumProgram, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	s := d.Stats
	if s.BlockExecs != s.CacheHits+s.BlocksBuilt {
		t.Fatalf("BlockExecs (%d) != CacheHits (%d) + BlocksBuilt (%d)",
			s.BlockExecs, s.CacheHits, s.BlocksBuilt)
	}
	// The loop block re-executes ~10000 times: hits must dominate builds.
	if s.CacheHits < 9000 {
		t.Errorf("CacheHits = %d, want >= 9000 for the loop block", s.CacheHits)
	}
	if s.IndirectDispatch != 0 {
		t.Errorf("IndirectDispatch = %d for a program with no indirect CTIs", s.IndirectDispatch)
	}
}

func TestFlushRangeBoundary(t *testing.T) {
	_, d, entry := setup(t, sumProgram, NullClient{})
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for a := range d.Blocks() {
		addrs = append(addrs, a)
	}
	if len(addrs) < 2 {
		t.Fatalf("need >= 2 cached blocks, have %d", len(addrs))
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	lo, hi := addrs[0], addrs[1]
	before := d.CacheSize()

	// [lo, hi) is half-open: the block starting exactly at lo is evicted,
	// the block starting exactly at hi survives.
	d.FlushRange(lo, hi)
	if d.Lookup(lo) != nil {
		t.Errorf("block at lo=%#x survived FlushRange(lo, hi)", lo)
	}
	if d.Lookup(hi) == nil {
		t.Errorf("block at hi=%#x evicted by FlushRange(lo, hi)", hi)
	}
	if got := d.CacheSize(); got != before-1 {
		t.Errorf("cache size after flush = %d, want %d", got, before-1)
	}
	if d.Stats.Flushes != 1 || d.Stats.FlushedBlocks != 1 {
		t.Errorf("Flushes=%d FlushedBlocks=%d, want 1/1", d.Stats.Flushes, d.Stats.FlushedBlocks)
	}

	// An empty range touches nothing but still counts as a flush call.
	d.FlushRange(hi, hi)
	if d.Lookup(hi) == nil {
		t.Error("empty FlushRange(hi, hi) evicted the block at hi")
	}
	if d.Stats.Flushes != 2 || d.Stats.FlushedBlocks != 1 {
		t.Errorf("after empty range: Flushes=%d FlushedBlocks=%d, want 2/1",
			d.Stats.Flushes, d.Stats.FlushedBlocks)
	}

	d.Flush()
	if d.CacheSize() != 0 {
		t.Error("Flush did not empty the cache")
	}
	if d.Stats.Flushes != 3 || d.Stats.FlushedBlocks != uint64(before) {
		t.Errorf("after full flush: Flushes=%d FlushedBlocks=%d, want 3/%d",
			d.Stats.Flushes, d.Stats.FlushedBlocks, before)
	}
}

// nativeRun executes src directly on a fresh machine (no DBM) and returns it.
func nativeRun(t *testing.T, src string) *vm.Machine {
	t.Helper()
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 5_000_000
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	p := loader.NewProcess(m, loader.Registry{libj.Name: lj})
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := p.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProfileAttributionExact(t *testing.T) {
	mN := nativeRun(t, sumProgram)

	m, d, entry := setup(t, sumProgram, NullClient{})
	prof := &telemetry.Profile{}
	d.Prof = prof
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	// Attribution is exact: every cycle the machine accumulated is charged
	// to exactly one cost center, and the app center matches the native run
	// (the DBM replays the identical application instruction stream).
	if got := prof.TotalCycles(); got != m.Cycles {
		t.Fatalf("profile total cycles = %d, machine cycles = %d", got, m.Cycles)
	}
	if got := prof.TotalInstrs(); got != m.Instrs {
		t.Fatalf("profile total instrs = %d, machine instrs = %d", got, m.Instrs)
	}
	if app := prof.Cycles[telemetry.CCApp]; app != mN.Cycles {
		t.Fatalf("app cycles = %d, native cycles = %d", app, mN.Cycles)
	}
	// The NullClient emits no meta code, so the entire overhead is dispatch
	// (block builds + indirect-CTI lookups).
	b := prof.Breakdown()
	if b.Dispatch == 0 {
		t.Error("dispatch center empty despite block builds")
	}
	if b.ShadowUpdate != 0 || b.Check != 0 || b.Elided != 0 || b.Other != 0 {
		t.Errorf("unexpected non-dispatch overhead under NullClient: %+v", b)
	}
	if b.App+b.Overhead() != m.Cycles {
		t.Fatalf("app (%d) + overhead (%d) != total (%d)", b.App, b.Overhead(), m.Cycles)
	}
}

// ccClient emits a tagged meta check before every store via the Emitter.
type ccClient struct{}

func (ccClient) OnBlock(ctx *BlockContext) []CInstr {
	e := &Emitter{}
	for _, in := range ctx.AppInstrs {
		if in.IsStore() {
			e.SetCC(telemetry.CCMemCheck)
			e.SaveProlog(true, []isa.Register{isa.R8})
			e.Meta(MkInstr(isa.OpCmpRI, func(i *isa.Instr) { i.Rd = isa.R8; i.Imm = 0 }))
			e.RestoreEpilog(true, []isa.Register{isa.R8})
			e.SetCC(telemetry.CCOther)
		}
		e.App(in)
	}
	return e.Out
}

func TestProfileChargesMetaToCostCenter(t *testing.T) {
	src := `
.module prog
.entry _start
.section .text
_start:
    la r6, buf
    mov r7, 0
.loop:
    stxb [r6+r7], r7
    add r7, 1
    cmp r7, 50
    jl .loop
    mov r1, 0
    mov r0, 1
    syscall
.section .data
buf:
    .zero 64
`
	mN := nativeRun(t, src)
	m, d, entry := setup(t, src, ccClient{})
	prof := &telemetry.Profile{}
	d.Prof = prof
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != 0 {
		t.Fatalf("exit = %d", m.ExitStatus)
	}
	if prof.Cycles[telemetry.CCMemCheck] == 0 {
		t.Fatal("meta check cycles not charged to CCMemCheck")
	}
	if prof.Instrs[telemetry.CCMemCheck] == 0 {
		t.Fatal("meta check instrs not charged to CCMemCheck")
	}
	if got := prof.TotalCycles(); got != m.Cycles {
		t.Fatalf("profile total = %d, machine = %d", got, m.Cycles)
	}
	if app := prof.Cycles[telemetry.CCApp]; app != mN.Cycles {
		t.Fatalf("app cycles = %d, native = %d", app, mN.Cycles)
	}
}

func TestProfileDisabledParity(t *testing.T) {
	// A nil profile must not perturb the cycle model at all.
	mOff, dOff, e1 := setup(t, sumProgram, ccClient{})
	if err := dOff.Run(e1); err != nil {
		t.Fatal(err)
	}
	mOn, dOn, e2 := setup(t, sumProgram, ccClient{})
	dOn.Prof = &telemetry.Profile{}
	if err := dOn.Run(e2); err != nil {
		t.Fatal(err)
	}
	if mOff.Cycles != mOn.Cycles || mOff.Instrs != mOn.Instrs {
		t.Fatalf("profiling changed the model: cycles %d vs %d, instrs %d vs %d",
			mOff.Cycles, mOn.Cycles, mOff.Instrs, mOn.Instrs)
	}
}

func TestEmitterStampsCostCenter(t *testing.T) {
	e := &Emitter{}
	e.Meta(MkInstr(isa.OpNop, nil))
	e.SetCC(telemetry.CCCanary)
	e.Meta(MkInstr(isa.OpNop, nil))
	ph := e.Placeholder()
	e.SetCC(telemetry.CCMemCheck)
	e.PatchJump(ph, isa.OpJe)
	e.MetaJumpTo(isa.OpJmp, 0)
	e.App(MkInstr(isa.OpNop, nil))

	want := []telemetry.CostCenter{
		telemetry.CCOther,    // before any SetCC
		telemetry.CCCanary,   // after SetCC(CCCanary)
		telemetry.CCMemCheck, // placeholder patched after SetCC(CCMemCheck)
		telemetry.CCMemCheck, // MetaJumpTo
		telemetry.CCOther,    // app instruction: CC not meaningful, zero value
	}
	if len(e.Out) != len(want) {
		t.Fatalf("emitted %d instrs, want %d", len(e.Out), len(want))
	}
	for i, w := range want {
		if e.Out[i].CC != w {
			t.Errorf("instr %d: CC = %v, want %v", i, e.Out[i].CC, w)
		}
	}
	if e.Out[4].Meta {
		t.Error("App emitted a meta instruction")
	}
}

func TestRegisterMetricsExposition(t *testing.T) {
	_, d, entry := setup(t, sumProgram, NullClient{})
	r := telemetry.NewRegistry()
	d.RegisterMetrics(r)
	if err := d.Run(entry); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = appendProm(t, r, buf)
	samples, err := telemetry.ParsePrometheus(buf)
	if err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, buf)
	}
	get := func(name string) float64 {
		t.Helper()
		for _, s := range samples {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("sample %q missing", name)
		return 0
	}
	hits := get("janitizer_dbm_cache_hits_total")
	misses := get("janitizer_dbm_cache_misses_total")
	execs := get("janitizer_dbm_block_execs_total")
	if hits != float64(d.Stats.CacheHits) || misses != float64(d.Stats.BlocksBuilt) {
		t.Errorf("metric values diverge from Stats: hits=%v misses=%v stats=%+v", hits, misses, d.Stats)
	}
	if execs != hits+misses {
		t.Errorf("execs (%v) != hits (%v) + misses (%v)", execs, hits, misses)
	}
	if get("janitizer_dbm_cache_blocks") != float64(d.CacheSize()) {
		t.Errorf("cache_blocks gauge diverges from CacheSize %d", d.CacheSize())
	}
}

func appendProm(t *testing.T, r *telemetry.Registry, buf []byte) []byte {
	t.Helper()
	var sb promSink
	r.WritePrometheus(&sb)
	return append(buf, sb.b...)
}

type promSink struct{ b []byte }

func (s *promSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
