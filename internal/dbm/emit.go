package dbm

import (
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// Emitter builds code-cache instruction sequences for inline
// instrumentation: application instructions interleaved with meta
// instructions, including intra-block meta control flow via placeholder
// patching. Tools inline their checks as meta code ("hand-written
// non-application assembly", §4.1.1) instead of clean calls, which is what
// lets liveness information shrink save/restore costs.
type Emitter struct {
	Out []CInstr

	// cc is stamped on every emitted meta instruction (telemetry cost
	// attribution). The zero value is telemetry.CCOther, so tools that
	// never call SetCC keep their meta cycles accounted as "other".
	cc telemetry.CostCenter
}

// SetCC selects the cost center stamped on subsequently emitted meta
// instructions — tools call it when switching between rule kinds so the
// profiler can attribute each meta sequence to the rule that emitted it.
func (e *Emitter) SetCC(cc telemetry.CostCenter) { e.cc = cc }

// MkInstr constructs a meta instruction with its encoded size filled in and
// optional field initialisation.
func MkInstr(op isa.Op, f func(*isa.Instr)) isa.Instr {
	in := isa.Instr{Op: op, Size: isa.EncodedSize(op)}
	if f != nil {
		f(&in)
	}
	return in
}

// Meta appends one meta instruction, stamped with the current cost center.
func (e *Emitter) Meta(in isa.Instr) {
	e.Out = append(e.Out, CInstr{In: in, JumpTo: -1, Meta: true, CC: e.cc})
}

// MetaReloc appends one meta instruction carrying a position-dependent
// immediate, tagged so the static rewriting backend can rematerialise it
// when the surrounding code moves.
func (e *Emitter) MetaReloc(in isa.Instr, r RelocKind) {
	e.Out = append(e.Out, CInstr{In: in, JumpTo: -1, Meta: true, CC: e.cc, Reloc: r})
}

// App appends one application instruction.
func (e *Emitter) App(in isa.Instr) { e.Out = append(e.Out, App(in)) }

// Placeholder reserves a slot for a forward meta branch and returns its
// index for later patching with PatchJump.
func (e *Emitter) Placeholder() int {
	e.Out = append(e.Out, CInstr{})
	return len(e.Out) - 1
}

// PatchJump fills a placeholder with a conditional/unconditional meta branch
// targeting the current position.
func (e *Emitter) PatchJump(idx int, op isa.Op) {
	e.Out[idx] = CInstr{In: MkInstr(op, nil), JumpTo: len(e.Out), Meta: true, CC: e.cc}
}

// JumpHere returns the current position for use as a backward MetaJump
// target.
func (e *Emitter) JumpHere() int { return len(e.Out) }

// MetaJumpTo appends a meta branch to an already-known index (backward
// jumps, e.g. probe loops).
func (e *Emitter) MetaJumpTo(op isa.Op, target int) {
	e.Out = append(e.Out, CInstr{In: MkInstr(op, nil), JumpTo: target, Meta: true, CC: e.cc})
}

// ScratchCandidates is the preference order for scratch registers that are
// not known dead (they get saved/restored): temporaries first.
var ScratchCandidates = []isa.Register{
	isa.R6, isa.R7, isa.R8, isa.R9, isa.R10, isa.R11,
	isa.R3, isa.R4, isa.R5, isa.R2, isa.R1, isa.R0, isa.R12, isa.R13,
}

// PickScratch selects n scratch registers, preferring the supplied dead
// registers (which need no saving), excluding registers for which exclude
// returns true. Registers not taken from dead are returned in toSave and
// must be pushed/popped around their use.
func PickScratch(n int, dead []isa.Register, exclude func(isa.Register) bool) (regs, toSave []isa.Register) {
	used := map[isa.Register]bool{}
	for _, r := range dead {
		if len(regs) == n {
			break
		}
		if exclude(r) || used[r] {
			continue
		}
		regs = append(regs, r)
		used[r] = true
	}
	for _, r := range ScratchCandidates {
		if len(regs) == n {
			break
		}
		if exclude(r) || used[r] {
			continue
		}
		regs = append(regs, r)
		toSave = append(toSave, r)
		used[r] = true
	}
	return regs, toSave
}

// ExcludeOperands returns an exclusion predicate covering the registers an
// instruction reads or writes, plus SP and FP.
func ExcludeOperands(in *isa.Instr) func(isa.Register) bool {
	var mask uint16
	for _, r := range in.RegUses(nil) {
		mask |= 1 << r
	}
	for _, r := range in.RegDefs(nil) {
		mask |= 1 << r
	}
	mask |= 1<<isa.SP | 1<<isa.FP
	return func(r isa.Register) bool { return mask&(1<<r) != 0 }
}

// SaveProlog pushes flags (if saveFlags) and the given registers; it is
// paired with RestoreEpilog.
func (e *Emitter) SaveProlog(saveFlags bool, regs []isa.Register) {
	if saveFlags {
		e.Meta(MkInstr(isa.OpPushF, nil))
	}
	for _, r := range regs {
		r := r
		e.Meta(MkInstr(isa.OpPush, func(i *isa.Instr) { i.Rd = r }))
	}
}

// RestoreEpilog pops the registers in reverse and then the flags.
func (e *Emitter) RestoreEpilog(saveFlags bool, regs []isa.Register) {
	for i := len(regs) - 1; i >= 0; i-- {
		r := regs[i]
		e.Meta(MkInstr(isa.OpPop, func(in *isa.Instr) { in.Rd = r }))
	}
	if saveFlags {
		e.Meta(MkInstr(isa.OpPopF, nil))
	}
}
