// Package dbm implements the dynamic binary modifier underlying Janitizer —
// the reproduction's DynamoRIO. It discovers code one basic block at a time
// as control reaches it, lets a client (security tool) rewrite each block
// once at translation time, places the rewritten block in a code cache, and
// dispatches between cached blocks.
//
// Performance modelling: the machine's cycle counter is charged for every
// executed instruction (including inserted instrumentation — that is the
// honest part of the model) plus explicit DBT costs: a one-time translation
// cost per built block and a dispatch cost per executed indirect control
// transfer (the indirect-branch-lookup of a real DBT). Direct transitions
// are linked and free after the first execution, as in DynamoRIO. The
// "null client" — translation with no instrumentation — therefore shows the
// baseline DBT overhead the paper reports in Figs. 8 and 11.
package dbm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// RelocKind tags a meta instruction whose immediate is position-dependent.
// The DBM itself never consults it — meta code it caches was emitted against
// run-time addresses and is correct as-is — but the static rewriting backend
// (internal/rewrite) replays the same emission into a relocated copy of the
// code and must know which immediates to rematerialise there.
type RelocKind uint8

const (
	// RelocNone marks position-independent meta code (the default).
	RelocNone RelocKind = iota
	// RelocRetAddr marks a meta MovRI whose immediate is the return
	// address of the anchor call instruction (the shadow-stack push).
	// A static copy must substitute the copy's own fall-through address.
	RelocRetAddr
)

// CInstr is one code-cache instruction: an application instruction copied
// into the cache, or a meta-instruction inserted by the client.
type CInstr struct {
	In isa.Instr
	// JumpTo, for meta branch instructions, is the index inside the
	// block's Code slice to continue at when the branch is taken.
	// -1 selects application semantics (the branch leaves the block).
	JumpTo int
	// Meta marks inserted instrumentation (for statistics; meta
	// instructions still execute on the machine and cost cycles).
	Meta bool
	// CC is the cost center the instruction's cycles are charged to when
	// a telemetry profile is attached. Only meaningful on meta
	// instructions (application instructions always charge CCApp); the
	// zero value is telemetry.CCOther, so untagged meta code stays
	// accounted for.
	CC telemetry.CostCenter
	// Reloc marks a position-dependent meta immediate (see RelocKind).
	Reloc RelocKind
}

// App wraps an application instruction for the code cache.
func App(in isa.Instr) CInstr { return CInstr{In: in, JumpTo: -1} }

// Meta wraps an inserted meta-instruction.
func Meta(in isa.Instr) CInstr { return CInstr{In: in, JumpTo: -1, Meta: true} }

// MetaJump wraps an inserted branch that, when taken, continues at index
// target within the same block.
func MetaJump(in isa.Instr, target int) CInstr {
	return CInstr{In: in, JumpTo: target, Meta: true}
}

// Block is one translated basic block in the code cache.
type Block struct {
	// Start is the application (run-time) address the block was built
	// from.
	Start uint64
	// AppLen is the number of application instructions.
	AppLen int
	// Code is the translated instruction sequence.
	Code []CInstr
	// Execs counts executions of this block.
	Execs uint64
}

// BlockContext is what a client sees when a block is first built.
type BlockContext struct {
	DBM *DBM
	// Start is the run-time address of the block head.
	Start uint64
	// AppInstrs are the decoded application instructions, at run-time
	// addresses.
	AppInstrs []isa.Instr
	// Module is the loaded module containing the block, or nil for
	// dynamically generated (JIT) code.
	Module *loader.LoadedModule
}

// Client rewrites blocks at translation time — the DynamoRIO client
// interface. OnBlock returns the code to place in the cache; returning the
// application instructions unchanged (see NullClient) is the identity
// translation.
type Client interface {
	OnBlock(ctx *BlockContext) []CInstr
}

// NullClient performs identity translation: pure DBT overhead, no
// instrumentation (the "null client" baseline of Fig. 8).
type NullClient struct{}

// OnBlock copies the application instructions unchanged.
func (NullClient) OnBlock(ctx *BlockContext) []CInstr {
	out := make([]CInstr, len(ctx.AppInstrs))
	for i, in := range ctx.AppInstrs {
		out[i] = App(in)
	}
	return out
}

// Costs models the DBT's own overhead in machine cycles.
type Costs struct {
	// BlockBuild is charged once per block translation.
	BlockBuild uint64
	// PerInstr is charged per application instruction translated.
	PerInstr uint64
	// IndirectDispatch is charged per executed indirect control transfer
	// (the indirect-branch-lookup hash probe).
	IndirectDispatch uint64
}

// DefaultCosts approximates DynamoRIO 8.0 (a null-client overhead around
// 10–30% on call-heavy code).
var DefaultCosts = Costs{BlockBuild: 250, PerInstr: 25, IndirectDispatch: 25}

// Stats counts dynamic-modification events.
type Stats struct {
	BlocksBuilt       uint64
	BlockExecs        uint64
	IndirectDispatch  uint64
	AppInstrsInCache  uint64
	MetaInstrsInCache uint64
	// CacheHits counts dispatches served from the code cache; every
	// dispatch is either a hit or a build, so
	// BlockExecs == CacheHits + BlocksBuilt.
	CacheHits uint64
	// Flushes counts Flush/FlushRange calls; FlushedBlocks counts the
	// blocks they evicted.
	Flushes       uint64
	FlushedBlocks uint64
}

// DBM drives execution of a process under dynamic modification.
type DBM struct {
	M      *vm.Machine
	Proc   *loader.Process
	Client Client
	Costs  Costs
	Stats  Stats

	// Prof, when set, receives per-cost-center cycle/instruction
	// attribution for every executed code-cache instruction and every
	// explicit DBT charge. Nil (the default) disables attribution without
	// changing the run's measured cycles — the profiler only observes the
	// machine's counters, it never adds to them.
	Prof *telemetry.Profile

	// TraceHook, when set, observes every block dispatch (diagnostics).
	TraceHook func(pc uint64)

	cache map[uint64]*Block
}

// New creates a dynamic modifier over a loaded process. proc may be nil when
// running raw code without a loader (tests).
func New(m *vm.Machine, proc *loader.Process, client Client) *DBM {
	return &DBM{
		M: m, Proc: proc, Client: client,
		Costs: DefaultCosts,
		cache: map[uint64]*Block{},
	}
}

// Lookup returns the cached block at run-time address addr, or nil.
func (d *DBM) Lookup(addr uint64) *Block { return d.cache[addr] }

// CacheSize returns the number of blocks in the code cache.
func (d *DBM) CacheSize() int { return len(d.cache) }

// Blocks returns the cached blocks (iteration order unspecified).
func (d *DBM) Blocks() map[uint64]*Block { return d.cache }

// Flush empties the code cache (used when application code is overwritten).
func (d *DBM) Flush() {
	d.Stats.Flushes++
	d.Stats.FlushedBlocks += uint64(len(d.cache))
	d.cache = map[uint64]*Block{}
}

// FlushRange evicts cached blocks whose start address lies in [lo, hi) —
// used when a module is unloaded.
func (d *DBM) FlushRange(lo, hi uint64) {
	d.Stats.Flushes++
	for addr := range d.cache {
		if addr >= lo && addr < hi {
			delete(d.cache, addr)
			d.Stats.FlushedBlocks++
		}
	}
}

// RegisterMetrics exposes the code-cache counters on a telemetry registry
// under the given label pairs. Series read d.Stats at exposition time, so
// scrape only from the run's goroutine or after the run finishes.
func (d *DBM) RegisterMetrics(r *telemetry.Registry, labels ...string) {
	r.CounterFunc("janitizer_dbm_cache_hits_total",
		"Block dispatches served from the code cache.",
		func() uint64 { return d.Stats.CacheHits }, labels...)
	r.CounterFunc("janitizer_dbm_cache_misses_total",
		"Block dispatches that required a translation (cache misses).",
		func() uint64 { return d.Stats.BlocksBuilt }, labels...)
	r.CounterFunc("janitizer_dbm_cache_flushes_total",
		"Code-cache flush operations.",
		func() uint64 { return d.Stats.Flushes }, labels...)
	r.CounterFunc("janitizer_dbm_cache_flushed_blocks_total",
		"Blocks evicted by cache flushes.",
		func() uint64 { return d.Stats.FlushedBlocks }, labels...)
	r.CounterFunc("janitizer_dbm_block_execs_total",
		"Cached block executions.",
		func() uint64 { return d.Stats.BlockExecs }, labels...)
	r.CounterFunc("janitizer_dbm_indirect_dispatch_total",
		"Indirect-branch dispatches (hash-lookup cost charged).",
		func() uint64 { return d.Stats.IndirectDispatch }, labels...)
	r.GaugeFunc("janitizer_dbm_cache_blocks",
		"Blocks currently in the code cache.",
		func() float64 { return float64(len(d.cache)) }, labels...)
}

// Run executes the program from entry under dynamic modification until it
// halts or faults.
func (d *DBM) Run(entry uint64) error {
	sp := telemetry.StartSpan("dbm.run", telemetry.Uint("entry", entry))
	m := d.M
	m.PC = entry
	for !m.Halted {
		if err := d.Step(); err != nil {
			d.endRunSpan(sp)
			return err
		}
	}
	d.endRunSpan(sp)
	return nil
}

// Step dispatches exactly one block at the machine's current PC: cache
// lookup (or translation on a miss) followed by execution. On return m.PC
// holds the next application address, or the machine has halted. Step is
// Run's loop body, exported so the hybrid rewriting backend can interleave
// DBM dispatch with native execution of statically rewritten code.
func (d *DBM) Step() error {
	m := d.M
	if d.TraceHook != nil {
		d.TraceHook(m.PC)
	}
	blk := d.cache[m.PC]
	if blk == nil {
		var err error
		blk, err = d.build(m.PC)
		if err != nil {
			return err
		}
	} else {
		d.Stats.CacheHits++
	}
	return d.exec(blk)
}

// endRunSpan finishes the dbm.run span with the run's final counters.
func (d *DBM) endRunSpan(sp *telemetry.Span) {
	sp.SetAttr(
		telemetry.Uint("blocks_built", d.Stats.BlocksBuilt),
		telemetry.Uint("block_execs", d.Stats.BlockExecs),
		telemetry.Uint("cache_hits", d.Stats.CacheHits),
		telemetry.Uint("cycles", d.M.Cycles),
		telemetry.Uint("instrs", d.M.Instrs),
	)
	sp.End()
}

// build decodes, rewrites and caches the block starting at addr (Fig. 4
// step 2: the dispatcher fetches the block and hands it to the modifier).
func (d *DBM) build(addr uint64) (*Block, error) {
	appInstrs, err := d.decodeBlock(addr)
	if err != nil {
		return nil, err
	}
	var mod *loader.LoadedModule
	if d.Proc != nil {
		mod = d.Proc.ModuleAt(addr)
	}
	code := d.Client.OnBlock(&BlockContext{
		DBM: d, Start: addr, AppInstrs: appInstrs, Module: mod,
	})
	if len(code) == 0 {
		return nil, fmt.Errorf("dbm: client returned empty block at %#x", addr)
	}
	blk := &Block{Start: addr, AppLen: len(appInstrs), Code: code}
	d.cache[addr] = blk

	d.Stats.BlocksBuilt++
	d.Stats.AppInstrsInCache += uint64(len(appInstrs))
	for i := range code {
		if code[i].Meta {
			d.Stats.MetaInstrsInCache++
		}
	}
	buildCost := d.Costs.BlockBuild + d.Costs.PerInstr*uint64(len(appInstrs))
	d.M.AddCycles(buildCost)
	d.Prof.Charge(telemetry.CCDispatch, buildCost, 0)
	return blk, nil
}

// decodeBlock reads application instructions from memory until the first
// control transfer or system instruction.
func (d *DBM) decodeBlock(addr uint64) ([]isa.Instr, error) {
	var out []isa.Instr
	var buf [isa.MaxInstrLen]byte
	pc := addr
	for {
		if err := d.M.Mem.ReadBytes(pc, buf[:]); err != nil {
			return nil, err
		}
		in, err := isa.Decode(buf[:], pc)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, &vm.Fault{PC: pc,
				Kind: "dbm: undecodable instruction: " + err.Error()}
		}
		out = append(out, in)
		pc += uint64(in.Size)
		if in.IsCTI() || in.Op == isa.OpSyscall || in.Op == isa.OpTrap {
			return out, nil
		}
	}
}

// exec runs one cached block. Meta branches with JumpTo continue inside the
// block; application control transfers leave it with m.PC holding the next
// application address. Indirect terminators charge the dispatch cost.
//
// With a profile attached, each instruction's cycle delta — including any
// cycles its trap handler adds — is charged to its cost center, and the
// dispatch cost to CCDispatch, so the profile's total matches the
// machine's cycle counter exactly.
func (d *DBM) exec(b *Block) error {
	m := d.M
	b.Execs++
	d.Stats.BlockExecs++
	prof := d.Prof
	i := 0
	for i < len(b.Code) {
		c := &b.Code[i]
		var taken bool
		var err error
		if prof != nil {
			before := m.Cycles
			taken, err = m.Exec(&c.In)
			cc := telemetry.CCApp
			if c.Meta {
				cc = c.CC
			}
			prof.Charge(cc, m.Cycles-before, 1)
		} else {
			taken, err = m.Exec(&c.In)
		}
		if err != nil {
			return err
		}
		if m.Halted {
			return nil
		}
		if taken {
			if c.JumpTo >= 0 {
				i = c.JumpTo
				continue
			}
			// Application control transfer.
			if c.In.IsIndirectCTI() {
				d.Stats.IndirectDispatch++
				m.AddCycles(d.Costs.IndirectDispatch)
				prof.Charge(telemetry.CCDispatch, d.Costs.IndirectDispatch, 0)
			}
			return nil
		}
		i++
	}
	// Fell through the end: m.PC already holds the fall-through address
	// set by the last executed instruction.
	return nil
}
