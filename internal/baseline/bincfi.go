package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/jcfi"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
)

// ErrRewriteFailed reports that BinCFI's static rewriting produced a broken
// binary. Code/data disambiguation is undecidable (§2.1); when the linear
// disassembly the rewriter relies on desynchronises against actual control
// flow (data embedded in code sections), the rewritten output corrupts the
// data and the binary does not run — the gamess/zeusmp failures of §6.2.1.
var ErrRewriteFailed = errors.New("bincfi: static rewriting failed (code/data ambiguity)")

// BinCFITool models the static CFI of Zhang & Sekar:
//
//   - forward edges: any code-pointer constant found by the sliding-window
//     scan that lands at an instruction boundary is a permitted target — no
//     function-boundary refinement (the weaker policy JCFI improves on);
//   - returns: any call-preceded instruction is a permitted return target —
//     no shadow stack;
//   - purely static: zero translation cost, identity for unseen code.
type BinCFITool struct {
	Report *jcfi.Report

	st    *jcfi.RTState
	rt    *core.Runtime
	sites map[uint64]float64 // CTI addr -> |T| at instrument time
	space float64
}

// NewBinCFI returns the static CFI baseline.
func NewBinCFI() *BinCFITool {
	return &BinCFITool{Report: &jcfi.Report{}, sites: map[uint64]float64{}}
}

// Name implements core.Tool.
func (t *BinCFITool) Name() string { return "bincfi-sim" }

// CheckInput rejects modules whose .text contains bytes that linear
// disassembly misclassifies relative to sound recovery — static rewriting of
// such modules produces broken binaries.
func (t *BinCFITool) CheckInput(mod *obj.Module, g interface {
	IsInstrBoundary(uint64) bool
	NumInstrs() int
}) error {
	boundaries := jcfi.InstrBoundaries(mod)
	// Every soundly recovered instruction must be a linear-sweep boundary;
	// a recovered instruction the sweep missed means the rewriter would
	// have relocated through the middle of it.
	for _, sec := range mod.ExecSections() {
		pc := sec.Addr
		end := sec.Addr + uint64(len(sec.Data))
		for pc < end {
			if g.IsInstrBoundary(pc) && !boundaries[pc] {
				return fmt.Errorf("%w: %s at %#x", ErrRewriteFailed, mod.Name, pc)
			}
			pc++
		}
	}
	return nil
}

// StaticPass implements core.Tool (§4.2.1's description of BinCFI): scan for
// code pointers, accept anything at an instruction boundary, collect
// call-preceded addresses as return targets, and mark indirect CTIs.
func (t *BinCFITool) StaticPass(sc *core.StaticContext) []rules.Rule {
	var out []rules.Rule
	mod := sc.Module
	g := sc.Graph
	boundaries := jcfi.InstrBoundaries(mod)

	targets := map[uint64]uint64{} // addr -> kind bits
	for _, ptr := range jcfi.ScanCodePointers(mod) {
		if boundaries[ptr] {
			targets[ptr] |= rules.TargetCall | rules.TargetJump
		}
	}
	for _, s := range mod.ExportedSymbols() {
		if s.Kind == obj.SymFunc {
			targets[s.Addr] |= rules.TargetCall | rules.TargetJump
		}
	}
	for i := range mod.Imports {
		targets[mod.Imports[i].PLT+8] |= rules.TargetCall | rules.TargetJump
	}
	// Return targets: every call-preceded instruction.
	const retKind = uint64(4)
	for _, blk := range g.Blocks {
		term := blk.Terminator()
		if term.Op == isa.OpCall || term.Op == isa.OpCallI {
			targets[term.Addr+uint64(term.Size)] |= retKind
		}
	}
	for tgt, kind := range targets {
		out = append(out, rules.Rule{ID: rules.CFITarget, BBAddr: tgt,
			Instr: tgt, Data: [4]uint64{kind}})
	}

	for _, blk := range g.Blocks {
		term := blk.Terminator()
		lw := rules.PackLiveness(0xffff, true, nil) // static rewriter: conservative
		switch term.Op {
		case isa.OpCallI:
			out = append(out, rules.Rule{ID: rules.CFICall,
				BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
		case isa.OpJmpI:
			out = append(out, rules.Rule{ID: rules.CFIJump,
				BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
		case isa.OpRet:
			// The loader's lazy-resolver `push rX; ret` uses a return as
			// a call; BinCFI handles it by modifying the loader to use
			// an indirect jump instead, so it gets the (weak) jump
			// policy rather than the call-preceded return policy
			// (§4.2.3).
			n := len(blk.Instrs)
			if n >= 2 && blk.Instrs[n-2].Op == isa.OpPush {
				out = append(out, rules.Rule{ID: rules.CFIResolverRet,
					BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
			} else {
				out = append(out, rules.Rule{ID: rules.CFIRet,
					BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
			}
		}
	}
	return out
}

// Instrument implements core.Tool: emit the weak-policy checks against the
// module's tables. BinCFI uses one combined target set for calls and jumps.
func (t *BinCFITool) Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr {
	e := &dbm.Emitter{}
	id := 0
	if bc.Module != nil {
		id = bc.Module.ID
	}
	var modLo, modHi uint64
	if bc.Module != nil {
		modLo, modHi = jcfi.ModuleExecRange(bc.Module)
	}
	for idx := range bc.AppInstrs {
		in := &bc.AppInstrs[idx]
		for _, r := range instrRules[in.Addr] {
			switch r.ID {
			case rules.CFICall:
				jcfi.EmitCallCheck(e, in, jcfi.CallTableBase(id), true, nil)
				t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Call)))
			case rules.CFIJump:
				// BinCFI translates indirect jumps through an
				// address-translation table covering every instruction
				// boundary of the module, plus cross-module identified
				// targets: modelled as a module-range fast path with
				// the unioned call table behind it.
				jcfi.EmitJumpCheck(e, in, modLo, modHi,
					jcfi.CallTableBase(id), true, nil)
				t.recordSite(in.Addr,
					float64(modHi-modLo)+float64(len(t.st.Ensure(id).Call)))
			case rules.CFIResolverRet:
				jcfi.EmitResolverRetCheck(e, in, jcfi.CallTableBase(id), true, nil)
				t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Call)))
			case rules.CFIRet:
				jcfi.EmitRetTableCheck(e, in, jcfi.RetTableBase(id), true, nil)
				t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Ret)))
			}
		}
		e.App(*in)
	}
	return e.Out
}

func (t *BinCFITool) recordSite(addr uint64, targets float64) {
	if _, ok := t.sites[addr]; !ok {
		t.sites[addr] = targets
	}
}

// DynFallback implements core.Tool: identity — statically rewritten binaries
// leave unseen code unprotected.
func (t *BinCFITool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	return dbm.NullClient{}.OnBlock(bc)
}

// RuntimeInit implements core.Tool: build per-module target tables from the
// static rules; cross-module calls are permitted to any other module's
// scan-identified targets (BinCFI's modular policy unions target sets).
func (t *BinCFITool) RuntimeInit(rt *core.Runtime) error {
	t.rt = rt
	t.Report.HaltOnViolation = false
	t.st = jcfi.NewRTState(rt.M)
	jcfi.InstallViolationTraps(rt.M, t.Report)
	rt.DBM.Costs = StaticRewriteCosts

	const retKind = uint64(4)
	type modTargets struct {
		lm   *loader.LoadedModule
		call []uint64
		ret  []uint64
	}
	var all []modTargets
	for _, lm := range rt.Proc.Modules {
		t.space += float64(execBytes(lm.Module))
		mt := modTargets{lm: lm}
		if f, ok := rt.Files[lm.Name]; ok {
			for _, r := range f.Rules {
				if r.ID != rules.CFITarget {
					continue
				}
				if r.Data[0]&(rules.TargetCall|rules.TargetJump) != 0 {
					mt.call = append(mt.call, lm.RuntimeAddr(r.Instr))
				}
				if r.Data[0]&retKind != 0 {
					mt.ret = append(mt.ret, lm.RuntimeAddr(r.Instr))
				}
			}
		}
		all = append(all, mt)
	}
	// Union across modules: BinCFI allows cross-module transfers to any
	// identified target (its weaker policy, §4.2.3).
	for _, mt := range all {
		for _, other := range all {
			for _, a := range other.call {
				if err := t.st.AddCallTarget(mt.lm.ID, a); err != nil {
					return err
				}
			}
			for _, a := range other.ret {
				if err := t.st.AddRetTarget(mt.lm.ID, a); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// AIR returns BinCFI's static average indirect-target reduction over its
// instrumented sites.
func (t *BinCFITool) AIR() float64 {
	if len(t.sites) == 0 || t.space == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range t.sites {
		f := n / t.space
		if f > 1 {
			f = 1
		}
		sum += f
	}
	return 100 * (1 - sum/float64(len(t.sites)))
}

func execBytes(mod *obj.Module) uint64 {
	var n uint64
	for _, sec := range mod.ExecSections() {
		n += uint64(len(sec.Data))
	}
	return n
}
