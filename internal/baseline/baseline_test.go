package baseline

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jcfi"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vm"
)

// runTool loads and executes main under the given tool. static=false skips
// the static analysis entirely (dynamic-only tools).
func runTool(t *testing.T, main *obj.Module, extra loader.Registry,
	tool core.Tool, static bool) (*vm.Machine, *core.Runtime, error) {
	t.Helper()
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	for k, v := range extra {
		reg[k] = v
	}
	files := map[string]*rules.File{}
	if static {
		files, err = core.AnalyzeProgram(main, reg, tool)
		if err != nil {
			t.Fatal(err)
		}
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 50_000_000
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	return m, rt, rt.Run(lm.RuntimeAddr(main.Entry))
}

func compileC(t *testing.T, src string, opts cc.Options) *obj.Module {
	t.Helper()
	if opts.Module == "" {
		opts.Module = "prog"
	}
	mod, err := cc.Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

const overflowC = `
int main() {
    char *p = malloc(24);
    int i = 0;
    while (i < 25) { p[i] = i; i += 1; }   // one byte past the object
    free(p);
    return 0;
}`

func TestValgrindDetectsHeapOverflow(t *testing.T) {
	tool := NewValgrind()
	main := compileC(t, overflowC, cc.Options{})
	_, _, err := runTool(t, main, nil, tool, false)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Report.Total == 0 {
		t.Fatal("valgrind missed the heap overflow")
	}
}

func TestValgrindMissesHeapToStackOverflow(t *testing.T) {
	// The canary-poisoning scenario: only JASan's stack policy catches
	// this; memcheck sees fully-addressable stack memory (Fig. 10 FNs).
	src := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call victim
    mov r1, 0
    mov r0, 1
    syscall
victim:
    push fp
    mov fp, sp
    sub sp, 32
    ldg r6
    stq [fp-8], r6
    lea r7, [fp-24]
    mov r8, 0
.w:
    stxb [r7+r8], r8
    add r8, 1
    cmp r8, 20
    jl .w
    ldq r7, [fp-8]
    ldg r8
    cmp r7, r8
    je .ok
    mov sp, fp
    pop fp
    ret
.ok:
    mov sp, fp
    pop fp
    ret
`
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewValgrind()
	_, _, err = runTool(t, main, nil, tool, false)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Report.Total != 0 {
		t.Fatalf("valgrind should miss heap-to-stack/canary overwrites: %v",
			tool.Report.Violations)
	}
}

func TestValgrindDeduplicatesPerObject(t *testing.T) {
	// Two overflow sites on the SAME object: memcheck-style suppression
	// reports once; this is the fewer-than-actual behaviour of Fig. 10.
	src := `
int main() {
    char *p = malloc(16);
    p[16] = 1;          // site 1
    p[17] = 2;          // site 2, same object
    char *q = malloc(16);
    q[16] = 3;          // different object: reported again
    free(p);
    free(q);
    return 0;
}`
	tool := NewValgrind()
	main := compileC(t, src, cc.Options{})
	if _, _, err := runTool(t, main, nil, tool, false); err != nil {
		t.Fatal(err)
	}
	if tool.Report.Total != 2 {
		t.Fatalf("valgrind reports = %d, want 2 (per-object dedup)", tool.Report.Total)
	}
}

func TestRetrowriteRequiresPIC(t *testing.T) {
	tool := NewRetrowrite()
	nonPIC := compileC(t, `int main(){return 0;}`, cc.Options{})
	if err := tool.CheckInput(nonPIC); !errors.Is(err, ErrNotPIC) {
		t.Fatalf("CheckInput(non-PIC) = %v, want ErrNotPIC", err)
	}
	pic := compileC(t, `int main(){return 0;}`, cc.Options{PIC: true})
	if err := tool.CheckInput(pic); err != nil {
		t.Fatalf("CheckInput(PIC) = %v", err)
	}
}

func TestRetrowriteDetectsOverflowOnPIC(t *testing.T) {
	tool := NewRetrowrite()
	main := compileC(t, overflowC, cc.Options{PIC: true})
	m, _, err := runTool(t, main, nil, tool, true)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Report.Total == 0 {
		t.Fatal("retrowrite missed the overflow")
	}
	// Static rewriting: no DBT costs were charged beyond instrumentation.
	_ = m
}

func TestRetrowriteMissesDynamicCode(t *testing.T) {
	// A dlopened module overflows; the static rewriter never saw it, so
	// nothing is reported — the §2.1 coverage gap.
	plugin := `
.module plugin.jef
.type shared
.pic
.needs libj.jef
.import malloc
.global poke
.section .text
poke:
    push fp
    mov fp, sp
    mov r1, 16
    call malloc
    stq [r0+16], r0
    mov sp, fp
    pop fp
    ret
`
	plugMod, err := asm.Assemble(plugin)
	if err != nil {
		t.Fatal(err)
	}
	mainSrc := `
.module prog
.type exec
.base 0x400000
.entry _start
.needs libj.jef
.section .text
_start:
    la r1, pname
    mov r2, 10
    trap 3
    mov r12, r0
    mov r1, r12
    la r2, sname
    mov r3, 4
    trap 4
    calli r0
    mov r1, 0
    mov r0, 1
    syscall
.section .rodata
pname:
    .ascii "plugin.jef"
sname:
    .ascii "poke"
`
	main, err := asm.Assemble(mainSrc)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewRetrowrite()
	_, rt, err := runTool(t, main, loader.Registry{"plugin.jef": plugMod}, tool, true)
	if err != nil {
		t.Fatal(err)
	}
	if tool.Report.Total != 0 {
		t.Fatal("static rewriter should not see dlopened code")
	}
	if rt.Coverage.Fallback == 0 {
		t.Fatal("dlopened blocks should classify as fallback (identity)")
	}
}

const hijackAsm = `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    la r13, victim
    add r13, 3
    calli r13
    mov r1, 0
    mov r0, 1
    syscall
victim:
    mov r0, 7
    mov r0, 8
    ret
`

func TestBinCFIDetectsGrossHijack(t *testing.T) {
	main, err := asm.Assemble(hijackAsm)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewBinCFI()
	_, _, _ = runTool(t, main, nil, tool, true)
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bincfi missed mid-instruction hijack: %v", tool.Report.Violations)
	}
}

func TestBinCFIAllowsCallPrecededReturnHijack(t *testing.T) {
	// BinCFI's weakness: returns may target ANY call-preceded instruction,
	// so redirecting a return to a different call site goes undetected —
	// while JCFI's shadow stack catches it.
	src := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call setup          ; creates call-preceded target A at the next instr
    mov r1, 0           ; A: hijacked return lands here -> exit 0
    mov r0, 1
    syscall
setup:
    call victim
    mov r1, 7           ; normal return path -> exit 7
    mov r0, 1
    syscall
victim:
    la r6, _start
    add r6, 5           ; A (call-preceded address)
    stq [sp+0], r6      ; overwrite our own return address
    ret                 ; returns to A instead of back into setup
`
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	bTool := NewBinCFI()
	mB, _, err := runTool(t, main, nil, bTool, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bTool.Report.Violations {
		t.Fatalf("bincfi unexpectedly reported: %v", v)
	}
	if mB.ExitStatus != 0 {
		t.Fatalf("hijack did not take effect: exit %d", mB.ExitStatus)
	}

	jTool := jcfi.New(jcfi.DefaultConfig)
	main2, _ := asm.Assemble(src)
	_, _, _ = runTool(t, main2, nil, jTool, true)
	found := false
	for _, v := range jTool.Report.Violations {
		if v.Kind == "return-mismatch" {
			found = true
		}
	}
	if !found {
		t.Fatal("jcfi's shadow stack should catch the call-preceded return hijack")
	}
}

func TestBinCFIRewriteFailsOnDataInCode(t *testing.T) {
	// Data embedded in .text desynchronises linear disassembly: the
	// gamess/zeusmp failure mode.
	src := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    jmp after
pool:
    .byte 1, 0, 0, 0, 0, 0, 0, 0   ; decodes as a truncated mov-imm64:
                                   ; the linear sweep swallows the next
                                   ; real instruction's first bytes
after:
    mov r1, 0
    mov r0, 1
    syscall
`
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewBinCFI()
	if err := tool.CheckInput(main, g); !errors.Is(err, ErrRewriteFailed) {
		t.Fatalf("CheckInput = %v, want ErrRewriteFailed", err)
	}
	// Clean modules pass.
	clean := compileC(t, `int main(){return 0;}`, cc.Options{})
	g2, _ := cfg.Build(clean)
	if err := tool.CheckInput(clean, g2); err != nil {
		t.Fatalf("clean module rejected: %v", err)
	}
}

// lockdownScenario: a program passing callbacks to libj both through a
// register (qsort) and through memory (apply_table).
const lockdownScenario = `
int cmp(int a, int b) { return a - b; }
int h0(int x) { return x + 1; }
int h1(int x) { return x * 2; }
int (*handlers[2])(int) = {h0, h1};
int data[4] = {4, 1, 3, 2};
int main() {
    qsort(data, 4, cmp);                 // callback in a register (r3)
    int s = apply_table(handlers, 2, 10); // callbacks via memory
    return s + data[0];
}`

func TestLockdownStrongFalsePositiveOnMemoryCallback(t *testing.T) {
	tool := NewLockdown(LockdownConfig{})
	main := compileC(t, lockdownScenario, cc.Options{O2: true})
	m, _, err := runTool(t, main, nil, tool, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	fp := 0
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("lockdown strong policy should false-positive on memory-passed callbacks")
	}
}

func TestLockdownHeuristicCatchesRegisterCallback(t *testing.T) {
	// Only qsort (register-passed callback): the heuristic whitelists it,
	// so no violations.
	src := `
int cmp(int a, int b) { return a - b; }
int data[4] = {4, 1, 3, 2};
int main() {
    qsort(data, 4, cmp);
    return data[0];
}`
	tool := NewLockdown(LockdownConfig{})
	main := compileC(t, src, cc.Options{O2: true})
	_, _, err := runTool(t, main, nil, tool, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.Report.Violations) != 0 {
		t.Fatalf("register-passed callback flagged: %v", tool.Report.Violations)
	}
}

func TestLockdownWeakPolicyAvoidsFalsePositives(t *testing.T) {
	tool := NewLockdown(LockdownConfig{Weak: true})
	main := compileC(t, lockdownScenario, cc.Options{O2: true})
	_, _, err := runTool(t, main, nil, tool, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.Report.Violations) != 0 {
		t.Fatalf("weak policy still flagged: %v", tool.Report.Violations)
	}
	// Weak policy has a lower AIR than strong would on the same run.
	if air := tool.DynamicAIR(); air <= 0 || air > 100 {
		t.Fatalf("weak DAIR out of range: %f", air)
	}
}

func TestLockdownDetectsRealHijack(t *testing.T) {
	main, err := asm.Assemble(hijackAsm)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewLockdown(LockdownConfig{})
	_, _, _ = runTool(t, main, nil, tool, false)
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			found = true
		}
	}
	if !found {
		t.Fatal("lockdown missed a gross hijack")
	}
}

func TestLockdownShadowStack(t *testing.T) {
	src := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call victim
    mov r1, 0
    mov r0, 1
    syscall
victim:
    la r6, gadget
    stq [sp+0], r6
    ret
gadget:
    mov r1, 0
    mov r0, 1
    syscall
`
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewLockdown(LockdownConfig{})
	_, _, _ = runTool(t, main, nil, tool, false)
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "return-mismatch" {
			found = true
		}
	}
	if !found {
		t.Fatal("lockdown's shadow stack missed the return hijack")
	}
}

func TestCostProfilesOrdering(t *testing.T) {
	// Sanity on the modelled DBT costs: Valgrind ≫ DynamoRIO > libdetox >
	// static rewriting (zero).
	if ValgrindCosts.PerInstr <= LockdownCosts.PerInstr {
		t.Error("valgrind translation should cost more than lockdown")
	}
	if LockdownCosts.IndirectDispatch >= 12 {
		t.Error("lockdown dispatch should be cheaper than DynamoRIO's default")
	}
	if StaticRewriteCosts.BlockBuild != 0 || StaticRewriteCosts.PerInstr != 0 {
		t.Error("static rewriting must have zero DBT cost")
	}
}

func TestBaselineNames(t *testing.T) {
	if NewValgrind().Name() != "valgrind-sim" ||
		NewRetrowrite().Name() != "retrowrite-sim" ||
		NewBinCFI().Name() != "bincfi-sim" ||
		NewLockdown(LockdownConfig{}).Name() != "lockdown-sim" ||
		NewLockdown(LockdownConfig{Weak: true}).Name() != "lockdown-sim-weak" {
		t.Error("tool names wrong")
	}
}

var _ = strings.Contains
