// Package baseline implements the four comparison systems of the paper's
// evaluation: a Valgrind/memcheck-style dynamic-only sanitizer, a
// Retrowrite-style static-only binary rewriter, the static BinCFI scheme
// and the dynamic-only Lockdown scheme. Each exhibits the coverage,
// soundness and cost characteristics the paper measures them by.
package baseline

import (
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/jasan"
	"repro/internal/jmsan"
	"repro/internal/jtsan"
	"repro/internal/rules"
	"repro/internal/vm"
)

// ValgrindCosts models Valgrind's much heavier translation engine (its IR
// round-trip costs far more than DynamoRIO's copy-and-annotate).
var ValgrindCosts = dbm.Costs{BlockBuild: 1500, PerInstr: 100, IndirectDispatch: 30}

// Valgrind trap family: the memory check itself happens inside the handler
// — the clean-call model, as opposed to JASan's inlined checks. Codes encode
// the register holding the address and the width.
const (
	valgrindTrapBase = 300
	valgrindWidthBit = 16
)

func valgrindTrapCode(reg isa.Register, width int) int64 {
	c := int64(valgrindTrapBase) + int64(reg)
	if width == 8 {
		c += valgrindWidthBit
	}
	return c
}

// ValgrindTool is the memcheck-style dynamic-only sanitizer: no static
// analysis, every block goes through the dynamic path, every access is
// checked via a clean call that saves the full register/flag context.
// Reports are deduplicated per heap object (memcheck suppresses duplicate
// errors), which is what makes it report fewer-than-actual violations on
// multi-overflow test cases (Fig. 10). It has no canary handling, so
// heap-to-stack overflows are missed entirely.
type ValgrindTool struct {
	Report *jasan.Report
	// DefReport accumulates uninitialized-read reports when validity-bit
	// tracking is on (NewValgrindDef); nil otherwise.
	DefReport *jmsan.Report
	// TemporalReport accumulates use-after-free/double-free reports when
	// temporal tracking is on (NewValgrindTemporal); nil otherwise.
	TemporalReport *jtsan.Report
	// trackDef enables memcheck's validity-bit (definedness) modelling.
	trackDef bool
	// trackTemporal enables generation-tag temporal modelling via JTSan's
	// shared quarantine runtime.
	trackTemporal bool
	// frameSizes maps frame-undef trap sites to frame byte counts (the
	// side table jmsan's shared runtime reads).
	frameSizes map[uint64]uint64
	// seenObjects implements per-object report suppression.
	seenObjects map[uint64]bool
	objects     jasan.HeapObjects
}

// NewValgrind returns a fresh memcheck-style tool checking addressability
// only.
func NewValgrind() *ValgrindTool {
	return &ValgrindTool{Report: &jasan.Report{}, seenObjects: map[uint64]bool{}}
}

// NewValgrindDef returns the memcheck model with validity-bit tracking
// enabled: every store additionally marks its target bytes defined, every
// load is additionally routed through the precise definedness check, fresh
// heap objects and new stack frames start undefined. The shadow encoding and
// trap handlers are shared with JMSan (internal/jmsan), so the two tools
// agree byte-for-byte on what "undefined" means — the reference oracle for
// the agreement tests. Reporting is eager: every load touching an undefined
// byte reports (no origin-tracking deferral).
func NewValgrindDef() *ValgrindTool {
	t := NewValgrind()
	t.trackDef = true
	t.DefReport = &jmsan.Report{}
	t.frameSizes = map[uint64]uint64{}
	return t
}

// NewValgrindTemporal returns the memcheck model with temporal tracking
// enabled: every access additionally routes through JTSan's precise
// freed-bitmap check — still in the clean-call model, one more trap in the
// same spill bracket — and the allocator is wrapped in JTSan's
// quarantine-and-generation runtime (internal/jtsan), so the two tools
// agree byte-for-byte on what "freed" means. Every check pays the full
// context spill that JTSan's inlined fast path avoids, which is what makes
// this the overhead baseline of BENCH_JTSAN.json.
func NewValgrindTemporal() *ValgrindTool {
	t := NewValgrind()
	t.trackTemporal = true
	t.TemporalReport = &jtsan.Report{}
	return t
}

// Name implements core.Tool.
func (t *ValgrindTool) Name() string {
	if t.trackDef {
		return "valgrind-def"
	}
	if t.trackTemporal {
		return "valgrind-temporal"
	}
	return "valgrind-sim"
}

// StaticPass implements core.Tool: Valgrind has no static stage.
func (t *ValgrindTool) StaticPass(*core.StaticContext) []rules.Rule { return nil }

// Instrument implements core.Tool; it is unreachable since no rules exist,
// but falls through to the dynamic path for safety.
func (t *ValgrindTool) Instrument(bc *dbm.BlockContext, _ map[uint64][]rules.Rule) []dbm.CInstr {
	return t.DynFallback(bc)
}

// DynFallback instruments every memory access with a clean call into the
// checker.
func (t *ValgrindTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	e := &dbm.Emitter{}
	ins := bc.AppInstrs
	for i := range ins {
		in := &ins[i]
		if in.IsMemAccess() {
			t.emitCleanCheck(e, in)
		}
		e.App(*in)
		if t.trackDef {
			if size := frameAllocAt(ins, i); size > 0 {
				t.frameSizes[in.Addr] = size
				jmsan.EmitFrameUndef(e, in.Addr)
			}
		}
	}
	return e.Out
}

// frameAllocAt recognises a prologue stack allocation at index i (`mov fp,
// sp` directly followed by `sub sp, N`) and returns the frame bytes to mark
// undefined, excluding an installed canary slot — the same block-local
// pattern JMSan's dynamic fallback uses, keeping the two tools' stack
// definedness identical.
func frameAllocAt(ins []isa.Instr, i int) uint64 {
	if i < 1 {
		return 0
	}
	in := &ins[i]
	prev := &ins[i-1]
	if in.Op != isa.OpSubRI || in.Rd != isa.SP || in.Imm <= 0 ||
		prev.Op != isa.OpMovRR || prev.Rd != isa.FP || prev.Rb != isa.SP {
		return 0
	}
	size := in.Imm
	for j := i + 1; j < len(ins); j++ {
		if ins[j].Op == isa.OpLdG {
			size -= 8
			break
		}
	}
	if size <= 0 {
		return 0
	}
	return uint64(size)
}

// emitCleanCheck saves the flags and its scratch register, computes the
// address, and traps into the checker. The trap's fixed machine cost models
// the remainder of the clean-call context switch (memcheck runs its check
// in generated helper code with full state spill).
func (t *ValgrindTool) emitCleanCheck(e *dbm.Emitter, in *isa.Instr) {
	mk := dbm.MkInstr
	scratch, _ := dbm.PickScratch(1, nil, dbm.ExcludeOperands(in))
	s1 := scratch[0]
	e.Meta(mk(isa.OpPushF, nil))
	e.Meta(mk(isa.OpPush, func(ins *isa.Instr) { ins.Rd = s1 }))
	addrOf := jasan.AddrOf(in)
	addrOf(e, s1)
	e.Meta(mk(isa.OpTrap, func(ins *isa.Instr) {
		ins.Imm = valgrindTrapCode(s1, in.AccessWidth())
		ins.Addr = in.Addr
	}))
	if t.trackDef {
		// Validity bits, still in the clean-call model: one more trap in the
		// same spill bracket. Stores define their bytes, loads go through
		// the precise per-byte check (the handler reports undefined reads).
		code := jmsan.DefLoadTrapCode(s1, in.AccessWidth())
		if in.IsStore() {
			code = jmsan.DefStoreTrapCode(s1, in.AccessWidth())
		}
		e.Meta(mk(isa.OpTrap, func(ins *isa.Instr) {
			ins.Imm = code
			ins.Addr = in.Addr
		}))
	}
	if t.trackTemporal {
		// Generation tags, still in the clean-call model: every access goes
		// through JTSan's precise freed-bitmap check (the handler reports
		// dangling accesses), with no inline fast path.
		code := jtsan.GenCheckTrapCode(s1, in.AccessWidth())
		e.Meta(mk(isa.OpTrap, func(ins *isa.Instr) {
			ins.Imm = code
			ins.Addr = in.Addr
		}))
	}
	e.Meta(mk(isa.OpPop, func(ins *isa.Instr) { ins.Rd = s1 }))
	e.Meta(mk(isa.OpPopF, nil))
}

// RuntimeInit implements core.Tool: interpose the redzone allocator (shared
// with the JASan runtime — memcheck likewise owns malloc) and register the
// checker traps.
func (t *ValgrindTool) RuntimeInit(rt *core.Runtime) error {
	t.objects = jasan.InstallRuntimeOn(rt.M, &jasan.Report{}) // discard inline reports
	if t.trackDef {
		// Shares JMSan's definedness runtime: the trap families and the
		// allocator wrapper marking fresh objects undefined (chained over
		// the redzone allocator installed just above).
		jmsan.InstallRuntimeOn(rt.M, t.DefReport, t.frameSizes)
	}
	if t.trackTemporal {
		// Shares JTSan's temporal runtime: the generation-check trap family
		// and the quarantine allocator wrapper (chained over the redzone
		// allocator installed just above).
		jtsan.InstallRuntimeOn(rt.M, t.TemporalReport)
	}
	rt.DBM.Costs = ValgrindCosts
	for reg := isa.Register(0); reg < isa.NumRegs; reg++ {
		for _, width := range []int{1, 8} {
			reg, width := reg, width
			rt.M.HandleTrap(valgrindTrapCode(reg, width), func(m *vm.Machine) error {
				t.check(m, m.Regs[reg], width)
				return nil
			})
		}
	}
	return nil
}

// check performs the memcheck-style validity test in the handler: the
// shadow byte (maintained by the shared allocator runtime) decides.
func (t *ValgrindTool) check(m *vm.Machine, addr uint64, width int) {
	sb, _ := m.Mem.ReadB(isa.ShadowAddr(addr))
	bad := false
	switch {
	case sb == 0:
	case sb >= 1 && sb <= 7:
		bad = addr%8 >= uint64(sb) || width == 8
	case sb == jasan.ShadowCanary:
		// Memcheck has no canary concept: the stack is fully
		// addressable to it, so this is NOT an error for Valgrind —
		// heap-to-stack overflows go unreported (Fig. 10 FNs).
		return
	default:
		bad = true
	}
	if !bad {
		return
	}
	obj, _ := t.objects.ObjectFor(addr)
	if obj != 0 {
		// Memcheck-style duplicate suppression: one report per object.
		if t.seenObjects[obj] {
			return
		}
		t.seenObjects[obj] = true
	}
	t.Report.Total++
	t.Report.Violations = append(t.Report.Violations, jasan.Violation{
		PC: m.TrapPC, Addr: addr, Width: width, Shadow: sb,
		Kind: "valgrind:" + kindOf(sb), Object: obj,
	})
}

func kindOf(sb byte) string {
	switch sb {
	case jasan.ShadowHeapRedzone:
		return "invalid-access-redzone"
	case jasan.ShadowFreed:
		return "use-after-free"
	}
	return "invalid-access"
}
