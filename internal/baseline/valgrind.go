// Package baseline implements the four comparison systems of the paper's
// evaluation: a Valgrind/memcheck-style dynamic-only sanitizer, a
// Retrowrite-style static-only binary rewriter, the static BinCFI scheme
// and the dynamic-only Lockdown scheme. Each exhibits the coverage,
// soundness and cost characteristics the paper measures them by.
package baseline

import (
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/jasan"
	"repro/internal/rules"
	"repro/internal/vm"
)

// ValgrindCosts models Valgrind's much heavier translation engine (its IR
// round-trip costs far more than DynamoRIO's copy-and-annotate).
var ValgrindCosts = dbm.Costs{BlockBuild: 1500, PerInstr: 100, IndirectDispatch: 30}

// Valgrind trap family: the memory check itself happens inside the handler
// — the clean-call model, as opposed to JASan's inlined checks. Codes encode
// the register holding the address and the width.
const (
	valgrindTrapBase = 300
	valgrindWidthBit = 16
)

func valgrindTrapCode(reg isa.Register, width int) int64 {
	c := int64(valgrindTrapBase) + int64(reg)
	if width == 8 {
		c += valgrindWidthBit
	}
	return c
}

// ValgrindTool is the memcheck-style dynamic-only sanitizer: no static
// analysis, every block goes through the dynamic path, every access is
// checked via a clean call that saves the full register/flag context.
// Reports are deduplicated per heap object (memcheck suppresses duplicate
// errors), which is what makes it report fewer-than-actual violations on
// multi-overflow test cases (Fig. 10). It has no canary handling, so
// heap-to-stack overflows are missed entirely.
type ValgrindTool struct {
	Report *jasan.Report
	// seenObjects implements per-object report suppression.
	seenObjects map[uint64]bool
	objects     jasan.HeapObjects
}

// NewValgrind returns a fresh memcheck-style tool.
func NewValgrind() *ValgrindTool {
	return &ValgrindTool{Report: &jasan.Report{}, seenObjects: map[uint64]bool{}}
}

// Name implements core.Tool.
func (t *ValgrindTool) Name() string { return "valgrind-sim" }

// StaticPass implements core.Tool: Valgrind has no static stage.
func (t *ValgrindTool) StaticPass(*core.StaticContext) []rules.Rule { return nil }

// Instrument implements core.Tool; it is unreachable since no rules exist,
// but falls through to the dynamic path for safety.
func (t *ValgrindTool) Instrument(bc *dbm.BlockContext, _ map[uint64][]rules.Rule) []dbm.CInstr {
	return t.DynFallback(bc)
}

// DynFallback instruments every memory access with a clean call into the
// checker.
func (t *ValgrindTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	e := &dbm.Emitter{}
	for i := range bc.AppInstrs {
		in := &bc.AppInstrs[i]
		if in.IsMemAccess() {
			t.emitCleanCheck(e, in)
		}
		e.App(*in)
	}
	return e.Out
}

// emitCleanCheck saves the flags and its scratch register, computes the
// address, and traps into the checker. The trap's fixed machine cost models
// the remainder of the clean-call context switch (memcheck runs its check
// in generated helper code with full state spill).
func (t *ValgrindTool) emitCleanCheck(e *dbm.Emitter, in *isa.Instr) {
	mk := dbm.MkInstr
	scratch, _ := dbm.PickScratch(1, nil, dbm.ExcludeOperands(in))
	s1 := scratch[0]
	e.Meta(mk(isa.OpPushF, nil))
	e.Meta(mk(isa.OpPush, func(ins *isa.Instr) { ins.Rd = s1 }))
	addrOf := jasan.AddrOf(in)
	addrOf(e, s1)
	e.Meta(mk(isa.OpTrap, func(ins *isa.Instr) {
		ins.Imm = valgrindTrapCode(s1, in.AccessWidth())
		ins.Addr = in.Addr
	}))
	e.Meta(mk(isa.OpPop, func(ins *isa.Instr) { ins.Rd = s1 }))
	e.Meta(mk(isa.OpPopF, nil))
}

// RuntimeInit implements core.Tool: interpose the redzone allocator (shared
// with the JASan runtime — memcheck likewise owns malloc) and register the
// checker traps.
func (t *ValgrindTool) RuntimeInit(rt *core.Runtime) error {
	t.objects = jasan.InstallRuntimeOn(rt.M, &jasan.Report{}) // discard inline reports
	rt.DBM.Costs = ValgrindCosts
	for reg := isa.Register(0); reg < isa.NumRegs; reg++ {
		for _, width := range []int{1, 8} {
			reg, width := reg, width
			rt.M.HandleTrap(valgrindTrapCode(reg, width), func(m *vm.Machine) error {
				t.check(m, m.Regs[reg], width)
				return nil
			})
		}
	}
	return nil
}

// check performs the memcheck-style validity test in the handler: the
// shadow byte (maintained by the shared allocator runtime) decides.
func (t *ValgrindTool) check(m *vm.Machine, addr uint64, width int) {
	sb, _ := m.Mem.ReadB(isa.ShadowAddr(addr))
	bad := false
	switch {
	case sb == 0:
	case sb >= 1 && sb <= 7:
		bad = addr%8 >= uint64(sb) || width == 8
	case sb == jasan.ShadowCanary:
		// Memcheck has no canary concept: the stack is fully
		// addressable to it, so this is NOT an error for Valgrind —
		// heap-to-stack overflows go unreported (Fig. 10 FNs).
		return
	default:
		bad = true
	}
	if !bad {
		return
	}
	obj, _ := t.objects.ObjectFor(addr)
	if obj != 0 {
		// Memcheck-style duplicate suppression: one report per object.
		if t.seenObjects[obj] {
			return
		}
		t.seenObjects[obj] = true
	}
	t.Report.Total++
	t.Report.Violations = append(t.Report.Violations, jasan.Violation{
		PC: m.TrapPC, Addr: addr, Width: width, Shadow: sb,
		Kind: "valgrind:" + kindOf(sb), Object: obj,
	})
}

func kindOf(sb byte) string {
	switch sb {
	case jasan.ShadowHeapRedzone:
		return "invalid-access-redzone"
	case jasan.ShadowFreed:
		return "use-after-free"
	}
	return "invalid-access"
}
