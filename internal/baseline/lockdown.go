package baseline

import (
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/jcfi"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vm"
)

// LockdownCosts models libdetox, a leaner DBT than DynamoRIO (§6.2.1:
// Lockdown's overhead sits slightly below JCFI's despite similar checks).
var LockdownCosts = dbm.Costs{BlockBuild: 140, PerInstr: 14, IndirectDispatch: 8}

// lockdownHeuristicTrap inspects argument registers at cross-module calls
// for function pointers (Lockdown's callback heuristic).
const lockdownHeuristicTrap = 330

// LockdownConfig selects the strong (default) or weak policy of Fig. 12.
type LockdownConfig struct {
	// Weak permits any exported or symbol-known function of any module as
	// a call target (lower AIR, no callback false positives).
	Weak            bool
	HaltOnViolation bool
}

// LockdownTool models the dynamic-only CFI of Payer et al.:
//
//   - no static stage: everything happens at load and translation time;
//   - strong policy: inter-module calls must target a symbol imported by
//     the source and exported by the destination; callbacks are whitelisted
//     by a run-time heuristic that watches argument REGISTERS at
//     cross-module call boundaries — function pointers passed through
//     memory (stack-spilled, config tables) are missed, producing the
//     false positives of §6.2.2;
//   - indirect jumps may target any byte of the surrounding function
//     (nearest-symbol policy — footnote 15);
//   - precise shadow stack for returns (same as JCFI).
type LockdownTool struct {
	cfg    LockdownConfig
	Report *jcfi.Report

	st    *jcfi.RTState
	rt    *core.Runtime
	sites map[uint64]float64
	space float64
	// funcAddrs mirrors every module's function symbol addresses for the
	// register heuristic and nearest-symbol jump ranges.
	funcAddrs map[uint64]bool
	// FalsePositiveSites lists call sites that reported violations on
	// legitimate transfers (populated by the soundness experiment).
	modsSetup map[string]bool
}

// NewLockdown returns the dynamic-only CFI baseline.
func NewLockdown(cfg LockdownConfig) *LockdownTool {
	return &LockdownTool{
		cfg: cfg, Report: &jcfi.Report{},
		sites: map[uint64]float64{}, funcAddrs: map[uint64]bool{},
		modsSetup: map[string]bool{},
	}
}

// Name implements core.Tool.
func (t *LockdownTool) Name() string {
	if t.cfg.Weak {
		return "lockdown-sim-weak"
	}
	return "lockdown-sim"
}

// StaticPass implements core.Tool: Lockdown has no static stage.
func (t *LockdownTool) StaticPass(*core.StaticContext) []rules.Rule { return nil }

// Instrument implements core.Tool (unreachable without rules).
func (t *LockdownTool) Instrument(bc *dbm.BlockContext, _ map[uint64][]rules.Rule) []dbm.CInstr {
	return t.DynFallback(bc)
}

// DynFallback implements core.Tool: Lockdown's per-block translation-time
// instrumentation.
func (t *LockdownTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	e := &dbm.Emitter{}
	id := 0
	if bc.Module != nil {
		id = bc.Module.ID
	}
	ins := bc.AppInstrs
	for idx := range ins {
		in := &ins[idx]
		if idx == len(ins)-1 {
			switch in.Op {
			case isa.OpCall:
				// Cross-module direct call boundary: run the callback
				// heuristic before the transfer.
				if bc.Module != nil && t.isCrossModule(bc.Module, in.Target()) {
					e.Meta(dbm.MkInstr(isa.OpTrap, func(i *isa.Instr) {
						i.Imm = lockdownHeuristicTrap
						i.Addr = in.Addr
					}))
				}
				jcfi.EmitShadowPush(e, in, true, nil)
			case isa.OpCallI:
				jcfi.EmitCallCheck(e, in, jcfi.CallTableBase(id), true, nil)
				t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Call)))
				jcfi.EmitShadowPush(e, in, true, nil)
			case isa.OpJmpI:
				if idx > 0 && ins[idx-1].Op == isa.OpLdPC && ins[idx-1].Rd == in.Rd {
					// PLT dispatch: treated as an inter-module call.
					jcfi.EmitCallCheck(e, in, jcfi.CallTableBase(id), true, nil)
					t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Call)))
					break
				}
				var lo, hi uint64
				if bc.Module != nil {
					lo, hi = jcfi.NearestFuncRange(bc.Module, in.Addr)
				}
				jcfi.EmitJumpCheck(e, in, lo, hi, jcfi.JumpTableBase(id), true, nil)
				t.recordSite(in.Addr, float64(hi-lo)+float64(len(t.st.Ensure(id).Jump)))
			case isa.OpRet:
				if idx > 0 && ins[idx-1].Op == isa.OpPush {
					// Lockdown's secure loader handles lazy resolution
					// itself; the equivalent here is a forward check.
					jcfi.EmitResolverRetCheck(e, in, jcfi.CallTableBase(id), true, nil)
					t.recordSite(in.Addr, float64(len(t.st.Ensure(id).Call)))
				} else {
					jcfi.EmitRetCheck(e, in, true, nil)
					t.recordSite(in.Addr, 1)
				}
			}
		}
		e.App(*in)
	}
	return e.Out
}

// isCrossModule reports whether a direct call target lies outside the
// caller's module (including calls into the caller's own PLT, which
// dispatch across modules).
func (t *LockdownTool) isCrossModule(lm *loader.LoadedModule, target uint64) bool {
	if lm.ImportByPLT(lm.LinkAddr(target)) != nil {
		return true
	}
	other := t.rt.Proc.ModuleAt(target)
	return other != nil && other != lm
}

func (t *LockdownTool) recordSite(addr uint64, targets float64) {
	if _, ok := t.sites[addr]; !ok {
		t.sites[addr] = targets
	}
}

// RuntimeInit implements core.Tool.
func (t *LockdownTool) RuntimeInit(rt *core.Runtime) error {
	t.rt = rt
	t.Report.HaltOnViolation = t.cfg.HaltOnViolation
	t.st = jcfi.NewRTState(rt.M)
	if err := jcfi.InstallShadowStack(rt.M); err != nil {
		return err
	}
	jcfi.InstallViolationTraps(rt.M, t.Report)
	rt.DBM.Costs = LockdownCosts

	// Callback heuristic: inspect r1..r5 at cross-module call boundaries
	// for values that are function entries in ANY loaded module; found
	// ones become permitted call targets everywhere.
	rt.M.HandleTrap(lockdownHeuristicTrap, func(m *vm.Machine) error {
		for _, reg := range []isa.Register{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5} {
			v := m.Regs[reg]
			if t.funcAddrs[v] {
				for _, lm := range t.rt.Proc.Modules {
					if err := t.st.AddCallTarget(lm.ID, v); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})

	for _, lm := range rt.Proc.Modules {
		if err := t.setupModule(lm); err != nil {
			return err
		}
	}
	rt.Proc.OnModuleLoad = append(rt.Proc.OnModuleLoad, func(lm *loader.LoadedModule) {
		_ = t.setupModule(lm)
	})
	return nil
}

// setupModule builds Lockdown's load-time target sets.
func (t *LockdownTool) setupModule(lm *loader.LoadedModule) error {
	if t.modsSetup[lm.Name] {
		return nil
	}
	t.modsSetup[lm.Name] = true
	id := lm.ID
	t.space += float64(execBytes(lm.Module))

	var ownFuncs []uint64
	for _, s := range lm.FuncSymbols() {
		rtAddr := lm.RuntimeAddr(s.Addr)
		ownFuncs = append(ownFuncs, rtAddr)
		t.funcAddrs[rtAddr] = true
	}
	// Intra-module: own function symbols are valid call and jump targets.
	for _, a := range ownFuncs {
		if err := t.st.AddCallTarget(id, a); err != nil {
			return err
		}
		if err := t.st.AddJumpTarget(id, a); err != nil {
			return err
		}
	}
	// PLT lazy stubs.
	for i := range lm.Imports {
		stub := lm.RuntimeAddr(lm.Imports[i].PLT + 8)
		if err := t.st.AddCallTarget(id, stub); err != nil {
			return err
		}
	}
	// Inter-module policy: strong admits only imported∩exported symbols;
	// weak admits every export and every known function of every module.
	for _, other := range t.rt.Proc.Modules {
		if other.ID == id {
			continue
		}
		if t.cfg.Weak {
			for _, s := range other.FuncSymbols() {
				if err := t.st.AddCallTarget(id, other.RuntimeAddr(s.Addr)); err != nil {
					return err
				}
			}
			for _, s := range lm.FuncSymbols() {
				if err := t.st.AddCallTarget(other.ID, lm.RuntimeAddr(s.Addr)); err != nil {
					return err
				}
			}
			continue
		}
		// Strong: targets this module imports that the other exports.
		for i := range lm.Imports {
			if sym := other.FindSymbol(lm.Imports[i].Name); sym != nil && sym.Exported {
				if err := t.st.AddCallTarget(id, other.RuntimeAddr(sym.Addr)); err != nil {
					return err
				}
			}
		}
		// And symmetrically for the other module's imports from us.
		for i := range other.Imports {
			if sym := lm.FindSymbol(other.Imports[i].Name); sym != nil && sym.Exported {
				if err := t.st.AddCallTarget(other.ID, lm.RuntimeAddr(sym.Addr)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// DynamicAIR returns Lockdown's DAIR over instrumented sites.
func (t *LockdownTool) DynamicAIR() float64 {
	if len(t.sites) == 0 || t.space == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range t.sites {
		f := n / t.space
		if f > 1 {
			f = 1
		}
		sum += f
	}
	return 100 * (1 - sum/float64(len(t.sites)))
}

var _ = obj.Module{}
