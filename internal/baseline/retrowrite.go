package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/jasan"
	"repro/internal/obj"
	"repro/internal/rules"
)

// StaticRewriteCosts models a statically rewritten binary: no translation,
// no dispatch — the instrumentation was baked in offline, so only the
// inserted instructions cost anything.
var StaticRewriteCosts = dbm.Costs{}

// ErrNotPIC reports Retrowrite's headline limitation: reassembleable
// disassembly needs relocations, so only position-independent code is
// supported (§2.1).
var ErrNotPIC = errors.New("retrowrite: input is not position-independent code")

// ErrUnsupportedInput reports inputs Retrowrite's symbolization cannot
// handle (C++ exception tables, non-C languages).
var ErrUnsupportedInput = errors.New("retrowrite: unsupported input binary")

// RetrowriteTool models the static-only binary ASan of Dinesh et al.: the
// same inline shadow checks as JASan (with intra-procedural liveness), but
// applied by static rewriting. It therefore has zero run-time translation
// cost — and zero coverage for anything static analysis does not see:
// statically missed blocks, dlopened modules and generated code run
// UNINSTRUMENTED (the coverage gap of §2.1).
type RetrowriteTool struct {
	j *jasan.Tool
	// Report aliases the underlying sanitizer report.
	Report *jasan.Report
}

// NewRetrowrite returns the static rewriter with Retrowrite's optimisation
// profile (register/flag liveness, no SCEV hoisting).
func NewRetrowrite() *RetrowriteTool {
	j := jasan.New(jasan.Config{UseLiveness: true})
	return &RetrowriteTool{j: j, Report: j.Report}
}

// CheckInput validates that Retrowrite can process the module at all.
func (t *RetrowriteTool) CheckInput(mod *obj.Module) error {
	if !mod.PIC {
		return fmt.Errorf("%w: %s", ErrNotPIC, mod.Name)
	}
	return nil
}

// Name implements core.Tool.
func (t *RetrowriteTool) Name() string { return "retrowrite-sim" }

// StaticPass implements core.Tool: Retrowrite refuses non-PIC modules and
// otherwise performs the sanitizer's static analysis.
func (t *RetrowriteTool) StaticPass(sc *core.StaticContext) []rules.Rule {
	if !sc.Module.PIC {
		// Static rewriting cannot proceed; emit nothing, so the whole
		// module runs unprotected. Harnesses should call CheckInput
		// first and report the failure.
		return nil
	}
	return t.j.StaticPass(sc)
}

// Instrument implements core.Tool.
func (t *RetrowriteTool) Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr {
	return t.j.Instrument(bc, instrRules)
}

// DynFallback implements core.Tool: identity. A statically rewritten binary
// has no run-time component, so code the rewriter never saw executes
// unmodified — the coverage gap hybrid schemes close.
func (t *RetrowriteTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	return dbm.NullClient{}.OnBlock(bc)
}

// RuntimeInit implements core.Tool: install the shared sanitizer runtime
// (Retrowrite links binaries against the ASan runtime library) and zero the
// DBT costs, modelling native execution of the rewritten binary.
func (t *RetrowriteTool) RuntimeInit(rt *core.Runtime) error {
	rt.DBM.Costs = StaticRewriteCosts
	return t.j.RuntimeInit(rt)
}
