// Package analysis provides the enhanced static analyses of Janitizer's
// static analyzer (Fig. 2a, §3.3.2–§3.3.3): register and arithmetic-flag
// liveness (intra- and inter-procedural), SCEV-style loop-bound analysis,
// stack-canary detection, def-use (diffuse-chain) tracing and stack-size
// analysis. Security plug-ins (JASan, JCFI) consume these results through
// rewrite rules.
package analysis

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// RegMask is a bit set of registers (bit i = register ri).
type RegMask uint16

// Has reports whether r is in the mask.
func (m RegMask) Has(r isa.Register) bool { return m&(1<<r) != 0 }

// With returns the mask including r.
func (m RegMask) With(r isa.Register) RegMask { return m | 1<<r }

// Without returns the mask excluding r.
func (m RegMask) Without(r isa.Register) RegMask { return m &^ (1 << r) }

// Count returns the number of registers in the mask.
func (m RegMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Regs returns the registers in the mask in ascending order.
func (m RegMask) Regs() []isa.Register {
	var out []isa.Register
	for r := isa.Register(0); r < isa.NumRegs; r++ {
		if m.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Calling-convention register classes.
var (
	// CallerSaved are clobbered by calls: r0 (return), r1–r5 (args),
	// r6–r11 (temps).
	CallerSaved = maskOf(isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5,
		isa.R6, isa.R7, isa.R8, isa.R9, isa.R10, isa.R11)
	// CalleeSaved must be preserved across calls.
	CalleeSaved = maskOf(isa.R12, isa.R13, isa.FP)
	// ArgRegs carry the first five arguments.
	ArgRegs = maskOf(isa.R1, isa.R2, isa.R3, isa.R4, isa.R5)
	// AllRegs is every register.
	AllRegs = RegMask(0xffff)
)

func maskOf(regs ...isa.Register) RegMask {
	var m RegMask
	for _, r := range regs {
		m = m.With(r)
	}
	return m
}

// LivePoint is the liveness state on entry to one instruction: registers
// whose current values may still be read, and whether the arithmetic flags
// may still be read. Instrumentation inserted immediately before the
// instruction must preserve exactly this state.
type LivePoint struct {
	Regs  RegMask
	Flags bool
}

// Liveness holds per-instruction live-in information for one module graph.
type Liveness struct {
	points map[uint64]LivePoint
	// Clobbers maps function entry addresses to the callee-saved
	// registers the function may leave clobbered (convention
	// violations, §4.1.2). Populated by the inter-procedural pass.
	Clobbers map[uint64]RegMask
	// Relied maps function entry addresses to the caller-saved registers
	// ipa-ra-style callers keep live across calls into the function
	// (§4.1.2); the inter-procedural pass folds them into every point of
	// the function so FreeRegs never hands them out.
	Relied map[uint64]RegMask
}

// LiveIn returns the live-in point for the instruction at addr. Unknown
// addresses conservatively report everything live.
func (l *Liveness) LiveIn(addr uint64) LivePoint {
	if p, ok := l.points[addr]; ok {
		return p
	}
	return LivePoint{Regs: AllRegs, Flags: true}
}

// FreeRegs returns up to n registers that are dead at addr (safe as
// instrumentation scratch without saving), excluding SP, in ascending
// order. It never returns SP or FP.
func (l *Liveness) FreeRegs(addr uint64, n int) []isa.Register {
	live := l.LiveIn(addr).Regs
	var out []isa.Register
	for r := isa.Register(0); r < isa.NumRegs && len(out) < n; r++ {
		if r == isa.SP || r == isa.FP {
			continue
		}
		if !live.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// ComputeLiveness performs backward may-live dataflow over every function in
// g. Boundary assumptions are conservative (over-approximate):
//
//   - at returns, r0 (result), SP and the callee-saved set are live;
//   - at calls, the argument registers and SP are live; caller-saved
//     registers are treated as clobbered by the callee *unless* the
//     inter-procedural pass (interproc=true) found the specific callee
//     clobbers fewer — and callee-saved registers a convention-violating
//     callee clobbers are added back as live (paper §4.1.2);
//   - at indirect CTIs and edges leaving the recovered graph, everything
//     (all registers and flags) is live.
func ComputeLiveness(g *cfg.Graph, interproc bool) *Liveness {
	l := &Liveness{
		points:   map[uint64]LivePoint{},
		Clobbers: map[uint64]RegMask{},
		Relied:   map[uint64]RegMask{},
	}
	if interproc {
		l.Clobbers = ComputeClobbers(g)
	}
	for _, fn := range g.Funcs {
		l.computeFunc(g, fn)
	}
	if interproc {
		// ipa-ra reliance (§4.1.2): registers a caller keeps live across
		// a call must stay live throughout the callee's extent, or
		// instrumentation scratch choices break the caller.
		l.Relied = ReliedUpon(g, l)
		for _, fn := range g.Funcs {
			mask := l.Relied[fn.Entry]
			if mask == 0 {
				continue
			}
			for _, blk := range fn.Blocks {
				for i := range blk.Instrs {
					a := blk.Instrs[i].Addr
					p := l.points[a]
					p.Regs |= mask
					l.points[a] = p
				}
			}
		}
	}
	return l
}

// computeFunc runs the backward fixpoint over one function's blocks.
func (l *Liveness) computeFunc(g *cfg.Graph, fn *cfg.Function) {
	if len(fn.Blocks) == 0 {
		return
	}
	// liveOut per block start address.
	liveOut := map[uint64]LivePoint{}
	inState := map[uint64]LivePoint{} // live-in of each block

	// Map from block start to blocks within this function for quick
	// membership checks; edges leaving the function (calls handled at the
	// instruction level; tail jumps to other functions) are boundaries.
	inFunc := map[uint64]*cfg.BasicBlock{}
	for _, b := range fn.Blocks {
		inFunc[b.Start] = b
	}

	// Iterate to fixpoint (blocks processed in reverse address order for
	// faster convergence on reducible flow).
	blocks := append([]*cfg.BasicBlock(nil), fn.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start > blocks[j].Start })

	changed := true
	for rounds := 0; changed && rounds < 64; rounds++ {
		changed = false
		for _, b := range blocks {
			out := l.blockBoundary(b, inFunc, inState)
			in := l.flowBlock(b, out)
			old, ok := inState[b.Start]
			if !ok || old != in {
				inState[b.Start] = in
				changed = true
			}
			liveOut[b.Start] = out
		}
	}
	// Final pass to record per-instruction points.
	for _, b := range blocks {
		l.flowBlock(b, liveOut[b.Start])
	}
}

// blockBoundary computes the live-out state of block b from its successors.
func (l *Liveness) blockBoundary(b *cfg.BasicBlock,
	inFunc map[uint64]*cfg.BasicBlock, inState map[uint64]LivePoint) LivePoint {

	term := b.Terminator()
	switch term.Op {
	case isa.OpRet:
		// A `push rX; ret` idiom (the ld.so lazy-resolver pattern,
		// §4.2.3) is a return used as an indirect CALL: the argument
		// registers of the function being entered are live, so the
		// normal return-boundary assumption would be unsound. Treat it
		// like an unknown indirect transfer.
		if n := len(b.Instrs); n >= 2 && b.Instrs[n-2].Op == isa.OpPush {
			return LivePoint{Regs: AllRegs, Flags: true}
		}
		return LivePoint{Regs: maskOf(isa.R0, isa.SP).With(isa.FP) | CalleeSaved}
	case isa.OpHlt:
		return LivePoint{}
	case isa.OpJmpI:
		if len(b.Succs) > 0 {
			// Jump table with known targets: union of target live-ins,
			// but stay conservative about targets we may have missed.
			out := LivePoint{Regs: maskOf(isa.SP)}
			for _, s := range b.Succs {
				if _, ok := inFunc[s]; ok {
					p := inState[s]
					out.Regs |= p.Regs
					out.Flags = out.Flags || p.Flags
				} else {
					return LivePoint{Regs: AllRegs, Flags: true}
				}
			}
			return out
		}
		// Unknown indirect target: everything live (paper §3.3.2).
		return LivePoint{Regs: AllRegs, Flags: true}
	}

	out := LivePoint{}
	for _, s := range b.Succs {
		if _, ok := inFunc[s]; ok {
			if p, seen := inState[s]; seen {
				out.Regs |= p.Regs
				out.Flags = out.Flags || p.Flags
			}
			continue
		}
		// Successor outside the function.
		if term.Op == isa.OpCall || term.Op == isa.OpCallI {
			// The call-fallthrough edge is handled at the call
			// instruction in flowBlock; the callee-entry edge
			// contributes argument liveness there too.
			continue
		}
		// Tail jump / branch out of the recovered function: conservative.
		out = LivePoint{Regs: AllRegs, Flags: true}
	}
	return out
}

// flowBlock propagates liveness backward through b from live-out `out`,
// recording per-instruction live-in points, and returns the block live-in.
func (l *Liveness) flowBlock(b *cfg.BasicBlock, out LivePoint) LivePoint {
	cur := out
	var usesBuf, defsBuf [8]isa.Register
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		switch in.Op {
		case isa.OpCall, isa.OpCallI:
			// live = (liveAfterCall - clobbered) + uses
			clob := CallerSaved
			if in.Op == isa.OpCall {
				if extra, ok := l.Clobbers[in.Target()]; ok {
					// Convention-violating callee: its clobbered
					// callee-saved regs do NOT carry values across.
					// (They are dead after the call from the
					// caller's perspective — the violation means
					// the CALLER reads them, modelled by ipa-ra
					// callers keeping them live across the call:
					// treat them as NOT clobbered so their
					// pre-call values stay live.)
					clob = clob &^ extra
					clob |= 0 // keep shape explicit
				}
			} else {
				// Unknown callee: conservatively assume it may rely
				// on anything and clobber nothing for liveness
				// purposes (over-approximation keeps soundness).
				clob = 0
			}
			cur.Regs = (cur.Regs &^ clob) | ArgRegs | maskOf(isa.SP)
			if in.Op == isa.OpCallI {
				cur.Regs = cur.Regs.With(in.Rd) // the call target register
			}
			cur.Flags = false // calls are flag boundaries
		case isa.OpSyscall:
			cur.Regs = (cur.Regs &^ maskOf(isa.R0)) |
				maskOf(isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5)
		case isa.OpTrap:
			cur.Regs = (cur.Regs &^ maskOf(isa.R0)) |
				maskOf(isa.R1, isa.R2, isa.R3, isa.R4, isa.R5).With(isa.R11)
		default:
			for _, d := range in.RegDefs(defsBuf[:0]) {
				cur.Regs = cur.Regs.Without(d)
			}
			for _, u := range in.RegUses(usesBuf[:0]) {
				cur.Regs = cur.Regs.With(u)
			}
			if in.SetsFlags() {
				cur.Flags = false
			}
			if in.ReadsFlags() {
				cur.Flags = true
			}
		}
		l.points[in.Addr] = cur
	}
	return cur
}

// ComputeClobbers finds, for each function, the callee-saved registers it
// may clobber without restoring — the §4.1.2 convention violations found in
// hand-written assembly. The result propagates over the direct call graph to
// a fixpoint.
func ComputeClobbers(g *cfg.Graph) map[uint64]RegMask {
	clobbers := map[uint64]RegMask{}
	// Direct analysis: a callee-saved register is clobbered if the
	// function writes it but never pushes it (no save/restore discipline).
	for _, fn := range g.Funcs {
		var written, pushed RegMask
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == isa.OpPush {
					pushed = pushed.With(in.Rd)
					continue
				}
				for _, d := range in.RegDefs(nil) {
					written = written.With(d)
				}
			}
		}
		if c := written & CalleeSaved &^ pushed &^ maskOf(isa.SP); c != 0 {
			clobbers[fn.Entry] = c
		}
	}
	// Propagate through direct calls: a caller of a clobberer clobbers
	// too, unless it saves the register itself.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			var pushed RegMask
			agg := clobbers[fn.Entry]
			for _, b := range fn.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op == isa.OpPush {
						pushed = pushed.With(in.Rd)
					}
					if in.Op == isa.OpCall {
						if c, ok := clobbers[in.Target()]; ok {
							agg |= c
						}
					}
				}
			}
			agg &^= pushed
			if agg != clobbers[fn.Entry] && agg != 0 {
				clobbers[fn.Entry] = agg
				changed = true
			}
		}
	}
	return clobbers
}
