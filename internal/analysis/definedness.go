package analysis

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// Definedness is the block-local taint lattice behind JMSan's sink-directed
// checking: for every load it decides whether the loaded value can reach a
// *definedness sink* — a use where an undefined value changes behaviour:
//
//   - the condition of a conditional branch (any flag-setting instruction
//     whose flags the block terminator consumes, and every cmp/test);
//   - an address computation (base or index register of a memory access, or
//     the target of an indirect control transfer);
//   - a service-call argument (trap/syscall/call argument registers).
//
// Loads whose destination provably reaches no sink within the block and is
// dead at the block boundary need no definedness check (memcheck's lazy
// reporting discipline: copying garbage around is legal, acting on it is
// not). Taint propagates through register copies and arithmetic; it does
// NOT propagate through memory — a store of an undefined value marks the
// target bytes defined (see DESIGN.md §6 for the soundness discussion).
type Definedness struct {
	// feedsSink maps load instruction addresses to whether the loaded
	// value may reach a sink. Loads absent from the map were not analysed
	// (conservatively treated as feeding a sink).
	feedsSink map[uint64]bool
}

// FeedsSink reports whether the load at addr may pass its value to a
// definedness sink. Unknown addresses conservatively report true.
func (d *Definedness) FeedsSink(addr uint64) bool {
	if v, ok := d.feedsSink[addr]; ok {
		return v
	}
	return true
}

// ComputeDefinedness runs the sink-reachability taint analysis over every
// load in g. live supplies block-boundary liveness: a tainted register that
// is still live when the block ends may feed a sink in a successor, so the
// load conservatively counts as sink-feeding.
func ComputeDefinedness(g *cfg.Graph, live *Liveness) *Definedness {
	d := &Definedness{feedsSink: map[uint64]bool{}}
	for _, blk := range g.Blocks {
		d.analyzeBlock(blk, live)
	}
	return d
}

func (d *Definedness) analyzeBlock(blk *cfg.BasicBlock, live *Liveness) {
	// The index of the last flag-setting instruction: only its flags reach
	// the conditional terminator (if any).
	lastFlagSetter := -1
	condTerm := false
	if n := len(blk.Instrs); n > 0 {
		condTerm = blk.Instrs[n-1].IsCondBranch()
		for i := range blk.Instrs {
			if blk.Instrs[i].SetsFlags() {
				lastFlagSetter = i
			}
		}
	}
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		if !in.IsMemAccess() || in.IsStore() {
			continue
		}
		d.feedsSink[in.Addr] = traceTaint(blk, live, i, in.Rd,
			lastFlagSetter, condTerm)
	}
}

// traceTaint propagates the taint seeded at instruction index i (register
// seed freshly loaded) forward through the block and reports whether it
// reaches a sink.
func traceTaint(blk *cfg.BasicBlock, live *Liveness, i int, seed isa.Register,
	lastFlagSetter int, condTerm bool) bool {

	var tainted RegMask
	tainted = tainted.With(seed)
	var usesBuf, defsBuf [8]isa.Register
	for j := i + 1; j < len(blk.Instrs) && tainted != 0; j++ {
		in := &blk.Instrs[j]
		usesTaint := false
		for _, u := range in.RegUses(usesBuf[:0]) {
			if tainted.Has(u) {
				usesTaint = true
				break
			}
		}
		if usesTaint && isSinkUse(in, tainted, j == lastFlagSetter && condTerm) {
			return true
		}
		// Transfer: value-propagating instructions taint their destination
		// when any source is tainted; every other definition kills taint.
		switch in.Op {
		case isa.OpMovRR, isa.OpNot, isa.OpNeg,
			isa.OpAddRR, isa.OpSubRR, isa.OpMulRR, isa.OpDivRR, isa.OpRemRR,
			isa.OpAndRR, isa.OpOrRR, isa.OpXorRR, isa.OpShlRR, isa.OpShrRR,
			isa.OpAddRI, isa.OpSubRI, isa.OpMulRI, isa.OpAndRI, isa.OpOrRI,
			isa.OpXorRI, isa.OpShlRI, isa.OpShrRI,
			isa.OpLea, isa.OpLeaX, isa.OpLeaXB:
			if usesTaint {
				tainted = tainted.With(in.Rd)
			} else {
				tainted = tainted.Without(in.Rd)
			}
		case isa.OpCall, isa.OpCallI:
			// The callee clobbers the caller-saved set; whatever it leaves
			// there is no longer the loaded value.
			tainted &^= CallerSaved
		default:
			for _, def := range in.RegDefs(defsBuf[:0]) {
				tainted = tainted.Without(def)
			}
		}
	}
	if tainted == 0 {
		return false
	}
	// Taint survives to the block boundary: sink-feeding iff any tainted
	// register is live there (it may reach a sink in a successor). The
	// terminator's live-in is the best boundary point we track.
	if n := len(blk.Instrs); n > 0 {
		boundary := live.LiveIn(blk.Instrs[n-1].Addr).Regs
		// The terminator's own uses were already inspected above.
		return boundary&tainted != 0
	}
	return true
}

// isSinkUse reports whether instruction in, which uses at least one tainted
// register, constitutes a definedness sink. flagsReachBranch is true when in
// is the last flag setter before a conditional terminator.
func isSinkUse(in *isa.Instr, tainted RegMask, flagsReachBranch bool) bool {
	switch in.Op {
	case isa.OpCmpRR, isa.OpCmpRI, isa.OpTestRR:
		// Comparisons exist only to steer control flow.
		return true
	case isa.OpJmpI, isa.OpCallI:
		return tainted.Has(in.Rd)
	case isa.OpTrap:
		return tainted&maskOf(isa.R1, isa.R2, isa.R3, isa.R4, isa.R5) != 0
	case isa.OpSyscall:
		return tainted&maskOf(isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5) != 0
	case isa.OpCall:
		// Arguments flow into a callee that may branch on them.
		return tainted&ArgRegs != 0
	}
	if in.IsMemAccess() {
		// Address computation from an undefined value.
		if tainted.Has(in.Rb) {
			return true
		}
		switch in.Op {
		case isa.OpLdXQ, isa.OpStXQ, isa.OpLdXB, isa.OpStXB:
			if tainted.Has(in.Ri) {
				return true
			}
		}
		// A store of a tainted *value* is not a sink (no memory V-bit
		// propagation; the write defines the target bytes).
		return false
	}
	if in.SetsFlags() && flagsReachBranch {
		return true
	}
	return false
}
