package analysis

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// CanarySite describes one stack-canary installation in a function prologue
// and its matching epilogue check (§3.3.3, Fig. 6). JASan poisons the canary
// slot's shadow right after the store and unpoisons it right before the
// check, so any overflow that reaches the slot traps immediately.
type CanarySite struct {
	Func uint64 // function entry
	// StoreAddr is the address of the instruction storing the canary to
	// the stack; PoisonAt is the address of the *following* instruction,
	// where the POISON_CANARY rule attaches (Fig. 6b).
	StoreAddr uint64
	PoisonAt  uint64
	// Slot identifies the stack slot: base register and displacement.
	SlotBase isa.Register
	SlotDisp int32
	// CheckAddrs are addresses of epilogue instructions that reload the
	// canary slot for verification; UNPOISON_CANARY rules attach there.
	CheckAddrs []uint64
}

// FindCanaries scans every function for the canary idiom:
//
//	ldg  rX            ; load the canary secret
//	stq  [sp/fp+d], rX ; install it in the frame
//
// and, for the matching check,
//
//	ldq  rY, [sp/fp+d] ; reload the slot
//	ldg  rZ            ; (order may vary)
//	cmp  ...
//
// Identified canary code "must not be disturbed by code modification"
// (§3.3.3); JASan additionally uses the sites for shadow poisoning.
func FindCanaries(g *cfg.Graph) []CanarySite {
	var out []CanarySite
	for _, fn := range g.Funcs {
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != isa.OpLdG {
					continue
				}
				// Look ahead in the block for the canary store of rX.
				site := matchCanaryStore(b, i)
				if site == nil {
					continue
				}
				site.Func = fn.Entry
				site.CheckAddrs = findCanaryChecks(fn, site)
				out = append(out, *site)
			}
		}
	}
	return out
}

// matchCanaryStore finds `stq [sp/fp+d], rX` after the ldg at index i,
// allowing unrelated instructions in between as long as rX is not
// redefined.
func matchCanaryStore(b *cfg.BasicBlock, i int) *CanarySite {
	canReg := b.Instrs[i].Rd
	for j := i + 1; j < len(b.Instrs); j++ {
		in := &b.Instrs[j]
		if in.Op == isa.OpStQ && in.Rd == canReg &&
			(in.Rb == isa.SP || in.Rb == isa.FP) {
			poisonAt := in.Addr + uint64(in.Size)
			if j+1 < len(b.Instrs) {
				poisonAt = b.Instrs[j+1].Addr
			}
			return &CanarySite{
				StoreAddr: in.Addr,
				PoisonAt:  poisonAt,
				SlotBase:  in.Rb,
				SlotDisp:  in.Disp,
			}
		}
		for _, d := range in.RegDefs(nil) {
			if d == canReg {
				return nil
			}
		}
	}
	return nil
}

// findCanaryChecks locates reloads of the canary slot elsewhere in the
// function (the epilogue verification) — loads from the same base+disp that
// are followed in their block by an ldg (fresh secret for comparison).
func findCanaryChecks(fn *cfg.Function, site *CanarySite) []uint64 {
	var out []uint64
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Addr == site.StoreAddr {
				continue
			}
			if in.Op == isa.OpLdQ && in.Rb == site.SlotBase &&
				in.Disp == site.SlotDisp && blockHasLdg(b, i) {
				out = append(out, in.Addr)
			}
		}
	}
	return out
}

func blockHasLdg(b *cfg.BasicBlock, from int) bool {
	for j := from + 1; j < len(b.Instrs); j++ {
		if b.Instrs[j].Op == isa.OpLdG {
			return true
		}
	}
	return false
}
