package analysis

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// DefUse is the SSA-level diffuse-chain tracing of §3.3.3: for every
// register use it records the set of instructions whose definitions may
// reach it. Security analyses use it to answer questions like "does this
// access read a pointer produced by that allocation-site call?" (taint-style
// tracking).
type DefUse struct {
	// reaching maps (instruction address, register) to defining
	// instruction addresses.
	reaching map[duKey][]uint64
}

type duKey struct {
	addr uint64
	reg  isa.Register
}

// DefsOf returns the addresses of instructions whose definition of reg may
// reach the use at addr, sorted ascending. An empty result means the value
// comes from outside the function (argument or boundary).
func (du *DefUse) DefsOf(addr uint64, reg isa.Register) []uint64 {
	return du.reaching[duKey{addr, reg}]
}

// ReachesFrom reports whether the value of reg used at useAddr may originate
// at defAddr, following copy chains transitively is the caller's business —
// the analysis already propagates through moves because moves define their
// destination; use TraceOrigins for transitive pointer provenance.
func (du *DefUse) ReachesFrom(useAddr uint64, reg isa.Register, defAddr uint64) bool {
	for _, d := range du.DefsOf(useAddr, reg) {
		if d == defAddr {
			return true
		}
	}
	return false
}

// maxDefsPerReg caps the tracked definition sets to bound the fixpoint.
const maxDefsPerReg = 16

// ComputeDefUse runs per-function reaching definitions over registers.
func ComputeDefUse(g *cfg.Graph) *DefUse {
	du := &DefUse{reaching: map[duKey][]uint64{}}
	for _, fn := range g.Funcs {
		du.computeFunc(fn)
	}
	return du
}

// regDefs is a per-register set of defining instruction addresses.
type regDefs [isa.NumRegs][]uint64

func (rd *regDefs) clone() regDefs {
	var out regDefs
	for i := range rd {
		out[i] = append([]uint64(nil), rd[i]...)
	}
	return out
}

func mergeSets(a, b []uint64) ([]uint64, bool) {
	changed := false
	for _, v := range b {
		found := false
		for _, w := range a {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			if len(a) >= maxDefsPerReg {
				continue
			}
			a = append(a, v)
			changed = true
		}
	}
	return a, changed
}

func (du *DefUse) computeFunc(fn *cfg.Function) {
	if len(fn.Blocks) == 0 {
		return
	}
	inFunc := map[uint64]*cfg.BasicBlock{}
	for _, b := range fn.Blocks {
		inFunc[b.Start] = b
	}
	inSets := map[uint64]*regDefs{}
	get := func(a uint64) *regDefs {
		s := inSets[a]
		if s == nil {
			s = &regDefs{}
			inSets[a] = s
		}
		return s
	}

	// Forward fixpoint.
	blocks := append([]*cfg.BasicBlock(nil), fn.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			out := get(b.Start).clone()
			flowDefs(b, &out, nil)
			for _, s := range b.Succs {
				if _, ok := inFunc[s]; !ok {
					continue
				}
				dst := get(s)
				for r := range out {
					merged, ch := mergeSets(dst[r], out[r])
					dst[r] = merged
					changed = changed || ch
				}
			}
		}
	}
	// Record per-use reaching sets.
	for _, b := range blocks {
		state := get(b.Start).clone()
		flowDefs(b, &state, du)
	}
}

// flowDefs walks a block forward. When du is non-nil it records, for each
// register use, the current reaching definitions.
func flowDefs(b *cfg.BasicBlock, state *regDefs, du *DefUse) {
	var usesBuf, defsBuf [8]isa.Register
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if du != nil {
			for _, u := range in.RegUses(usesBuf[:0]) {
				key := duKey{in.Addr, u}
				if _, ok := du.reaching[key]; !ok {
					set := append([]uint64(nil), state[u]...)
					sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
					du.reaching[key] = set
				}
			}
		}
		// Calls clobber caller-saved registers with unknown values.
		switch in.Op {
		case isa.OpCall, isa.OpCallI:
			for _, r := range CallerSaved.Regs() {
				state[r] = []uint64{in.Addr}
			}
		case isa.OpSyscall, isa.OpTrap:
			state[isa.R0] = []uint64{in.Addr}
		default:
			for _, d := range in.RegDefs(defsBuf[:0]) {
				state[d] = []uint64{in.Addr}
			}
		}
	}
}

// TraceOrigins transitively follows copy and arithmetic chains from a use to
// the set of "origin" instructions: those that are not simple moves or
// register arithmetic over a single source (e.g. loads, la/leapc, call
// results). It answers malloc-site provenance questions (§3.3.3).
func (du *DefUse) TraceOrigins(g *cfg.Graph, useAddr uint64, reg isa.Register) []uint64 {
	seen := map[duKey]bool{}
	var origins []uint64
	var walk func(addr uint64, r isa.Register)
	walk = func(addr uint64, r isa.Register) {
		key := duKey{addr, r}
		if seen[key] {
			return
		}
		seen[key] = true
		defs := du.DefsOf(addr, r)
		if len(defs) == 0 {
			origins = append(origins, 0) // unknown/boundary origin
			return
		}
		for _, d := range defs {
			blk := g.BlockAt(d)
			if blk == nil {
				origins = append(origins, d)
				continue
			}
			var def *isa.Instr
			for i := range blk.Instrs {
				if blk.Instrs[i].Addr == d {
					def = &blk.Instrs[i]
					break
				}
			}
			if def == nil {
				origins = append(origins, d)
				continue
			}
			switch def.Op {
			case isa.OpMovRR:
				walk(d, def.Rb)
			case isa.OpAddRI, isa.OpSubRI, isa.OpMulRI, isa.OpAndRI,
				isa.OpOrRI, isa.OpXorRI, isa.OpShlRI, isa.OpShrRI:
				walk(d, def.Rd)
			case isa.OpLea:
				walk(d, def.Rb)
			default:
				origins = append(origins, d)
			}
		}
	}
	walk(useAddr, reg)
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	// dedupe
	out := origins[:0]
	for i, v := range origins {
		if i == 0 || v != origins[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// StackSize returns each function's static frame size: the constant
// subtracted from SP in the prologue plus push slots (§3.3.2's stack-size
// analysis). Functions without a recognisable prologue report 0.
func StackSize(fn *cfg.Function) uint64 {
	if len(fn.Blocks) == 0 {
		return 0
	}
	var size uint64
	entry := fn.Blocks[0]
	for i := range entry.Instrs {
		in := &entry.Instrs[i]
		switch {
		case in.Op == isa.OpPush:
			size += 8
		case in.Op == isa.OpSubRI && in.Rd == isa.SP && in.Imm > 0:
			size += uint64(in.Imm)
		}
	}
	return size
}
