package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/libj"
	"repro/internal/obj"
)

func buildGraph(t *testing.T, src string) (*obj.Module, *cfg.Graph) {
	t.Helper()
	mod, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g, err := cfg.Build(mod)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return mod, g
}

// instrAt returns the instruction at the i-th position of the function
// containing sym.
func instrAt(t *testing.T, g *cfg.Graph, mod *obj.Module, sym string, idx int) *isa.Instr {
	t.Helper()
	s := mod.FindSymbol(sym)
	if s == nil {
		t.Fatalf("no symbol %s", sym)
	}
	fn := g.FuncAt(s.Addr)
	if fn == nil {
		t.Fatalf("no function at %s", sym)
	}
	n := 0
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			if n == idx {
				return &b.Instrs[i]
			}
			n++
		}
	}
	t.Fatalf("function %s has fewer than %d instrs", sym, idx+1)
	return nil
}

func TestRegMaskBasics(t *testing.T) {
	var m RegMask
	m = m.With(isa.R3).With(isa.R7)
	if !m.Has(isa.R3) || !m.Has(isa.R7) || m.Has(isa.R4) {
		t.Fatal("mask membership wrong")
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d", m.Count())
	}
	m = m.Without(isa.R3)
	if m.Has(isa.R3) || m.Count() != 1 {
		t.Fatal("Without broken")
	}
	regs := (CalleeSaved).Regs()
	if len(regs) != 3 || regs[0] != isa.R12 || regs[2] != isa.FP {
		t.Fatalf("CalleeSaved.Regs = %v", regs)
	}
	// Property: Count equals len(Regs).
	f := func(v uint16) bool { return RegMask(v).Count() == len(RegMask(v).Regs()) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r1, 1      ; (0)
    mov r2, 2      ; (1)
    add r1, r2     ; (2) uses r1,r2
    mov r0, r1     ; (3)
    ret            ; (4)
`)
	l := ComputeLiveness(g, false)
	// At (2), r1 and r2 must be live-in.
	in2 := instrAt(t, g, mod, "f", 2)
	p := l.LiveIn(in2.Addr)
	if !p.Regs.Has(isa.R1) || !p.Regs.Has(isa.R2) {
		t.Errorf("live-in at add = %v, want r1,r2", p.Regs.Regs())
	}
	// At (1), r2's pending def means r2 not live-in; r1 is.
	in1 := instrAt(t, g, mod, "f", 1)
	p = l.LiveIn(in1.Addr)
	if p.Regs.Has(isa.R2) {
		t.Error("r2 live before its def")
	}
	if !p.Regs.Has(isa.R1) {
		t.Error("r1 not live before use")
	}
	// Dead registers are available as scratch.
	free := l.FreeRegs(in1.Addr, 2)
	if len(free) != 2 {
		t.Fatalf("free regs = %v", free)
	}
	for _, r := range free {
		if r == isa.R1 || r == isa.SP || r == isa.FP {
			t.Errorf("bad free reg %v", r)
		}
	}
}

func TestFlagLiveness(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r3, 5      ; (0) flags dead here? cmp below will set them
    cmp r1, 0      ; (1)
    mov r4, 6      ; (2) flags LIVE here (je still to come)
    je .x          ; (3)
    ret
.x:
    ret
`)
	l := ComputeLiveness(g, false)
	in2 := instrAt(t, g, mod, "f", 2)
	if !l.LiveIn(in2.Addr).Flags {
		t.Error("flags must be live between cmp and je")
	}
	in0 := instrAt(t, g, mod, "f", 0)
	if l.LiveIn(in0.Addr).Flags {
		t.Error("flags must be dead before the setting cmp")
	}
}

func TestLivenessLoop(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r1, 10     ; (0)
.loop:
    sub r1, 1      ; (1)
    cmp r1, 0      ; (2)
    jg .loop       ; (3)
    ret
`)
	l := ComputeLiveness(g, false)
	// r1 is live around the back edge.
	in1 := instrAt(t, g, mod, "f", 1)
	if !l.LiveIn(in1.Addr).Regs.Has(isa.R1) {
		t.Error("loop-carried r1 not live at loop head")
	}
}

func TestLivenessAtIndirectBranchIsConservative(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r6, r1     ; (0)
    jmpi r6        ; (1)
`)
	l := ComputeLiveness(g, false)
	// Everything (incl. flags) must be treated as live at the unknown
	// indirect branch itself.
	jmpi := instrAt(t, g, mod, "f", 1)
	p := l.LiveIn(jmpi.Addr)
	if !p.Flags {
		t.Error("flags not conservatively live at unknown jmpi")
	}
	if p.Regs != AllRegs {
		t.Errorf("regs = %v, want all live", p.Regs.Regs())
	}
	if got := l.FreeRegs(jmpi.Addr, 4); len(got) != 0 {
		t.Errorf("free regs at unknown jmpi = %v, want none", got)
	}
	// Before the mov that redefines r6, the old r6 value is dead — the
	// dataflow may legitimately hand it out as scratch.
	in0 := instrAt(t, g, mod, "f", 0)
	if l.LiveIn(in0.Addr).Regs.Has(isa.R6) {
		t.Error("r6 live before its redefinition")
	}
}

func TestLivenessUnknownAddressConservative(t *testing.T) {
	l := &Liveness{points: map[uint64]LivePoint{}}
	p := l.LiveIn(0x123456)
	if p.Regs != AllRegs || !p.Flags {
		t.Error("unknown address must report everything live")
	}
}

func TestCallBoundaryLiveness(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r1, 1      ; (0) arg
    call g         ; (1)
    mov r2, r0     ; (2) result
    ret
g:
    mov r0, 9
    ret
`)
	l := ComputeLiveness(g, false)
	in1 := instrAt(t, g, mod, "f", 1)
	p := l.LiveIn(in1.Addr)
	if !p.Regs.Has(isa.R1) {
		t.Error("argument register not live at call")
	}
	// r0 is set by the callee; it must not be live before the call.
	if p.Regs.Has(isa.R0) {
		t.Error("r0 live before call despite being defined by it")
	}
}

// TestLivenessSoundnessProperty: any register actually read by an
// instruction is in the live-in set of that instruction (may-live
// over-approximation can never miss a real use).
func TestLivenessSoundnessProperty(t *testing.T) {
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(lj)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLiveness(g, false)
	checked := 0
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			p := l.LiveIn(in.Addr)
			for _, u := range in.RegUses(nil) {
				if !p.Regs.Has(u) {
					t.Errorf("instr %#x %s: used reg %v not live-in",
						in.Addr, isa.Disasm(in), u)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no uses checked")
	}
}

func TestClobberAnalysisFindsViolation(t *testing.T) {
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(lj)
	if err != nil {
		t.Fatal(err)
	}
	clob := ComputeClobbers(g)
	sym := lj.FindSymbol("clobber_counter")
	mask, ok := clob[sym.Addr]
	if !ok || !mask.Has(isa.R12) {
		t.Fatalf("clobber_counter violation not detected: %v", clob)
	}
	// Well-behaved functions must not be flagged.
	for _, name := range []string{"memcpy", "strlen", "qsort"} {
		s := lj.FindSymbol(name)
		if m, bad := clob[s.Addr]; bad {
			t.Errorf("%s wrongly flagged as clobbering %v", name, m.Regs())
		}
	}
}

func TestCanaryDetection(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 32
    ldg r6
    stq [fp-8], r6     ; canary install
    mov r6, 0
    ; ... body ...
    ldq r7, [fp-8]     ; canary check reload
    ldg r8
    cmp r7, r8
    jne .fail
    mov sp, fp
    pop fp
    ret
.fail:
    hlt
`)
	sites := FindCanaries(g)
	if len(sites) != 1 {
		t.Fatalf("canary sites = %d, want 1", len(sites))
	}
	s := sites[0]
	if s.SlotBase != isa.FP || s.SlotDisp != -8 {
		t.Errorf("slot = [%v%+d], want [fp-8]", s.SlotBase, s.SlotDisp)
	}
	if len(s.CheckAddrs) != 1 {
		t.Errorf("check addrs = %v, want exactly the reload", s.CheckAddrs)
	}
	// PoisonAt is the instruction AFTER the store (Fig. 6).
	store := mod.FindSymbol("f")
	_ = store
	blk := g.BlockAt(s.StoreAddr)
	var storeIdx int
	for i := range blk.Instrs {
		if blk.Instrs[i].Addr == s.StoreAddr {
			storeIdx = i
		}
	}
	if s.PoisonAt != blk.Instrs[storeIdx+1].Addr {
		t.Errorf("PoisonAt = %#x, want next instruction %#x",
			s.PoisonAt, blk.Instrs[storeIdx+1].Addr)
	}
}

func TestNoCanaryFalsePositive(t *testing.T) {
	_, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    ldg r6
    mov r6, 0        ; canary value overwritten before any store
    stq [fp-8], r6
    ret
`)
	if sites := FindCanaries(g); len(sites) != 0 {
		t.Fatalf("false canary site: %+v", sites)
	}
}

func TestLoopDetectionAndInduction(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r7, 0          ; i = 0
    la r6, arr
.loop:
    ldxq r8, [r6+r7*8] ; arr[i] — induction access
    ldq r9, [r6+0]     ; arr[0] — invariant access
    add r7, 1
    cmp r7, 100
    jl .loop
    ret
.section .data
arr:
    .zero 800
`)
	la := AnalyzeLoops(g)
	if len(la.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(la.Loops))
	}
	loop := la.Loops[0]
	if loop.Induction == nil {
		t.Fatal("induction variable not found")
	}
	if loop.Induction.Reg != isa.R7 || loop.Induction.Stride != 1 {
		t.Errorf("induction = %+v", loop.Induction)
	}
	if !loop.Induction.Bounded || loop.Induction.Bound != 100 {
		t.Errorf("bound = %+v", loop.Induction)
	}
	// Access classifications.
	ind := instrAt(t, g, mod, "f", 2) // ldxq
	if la.ClassOf(ind.Addr) != AccessInduction {
		t.Errorf("ldxq class = %v, want induction", la.ClassOf(ind.Addr))
	}
	inv := instrAt(t, g, mod, "f", 3) // ldq arr[0]
	if la.ClassOf(inv.Addr) != AccessInvariant {
		t.Errorf("ldq class = %v, want invariant", la.ClassOf(inv.Addr))
	}
}

func TestLoopAccessUnknownWhenBaseVaries(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    la r6, arr
.loop:
    ldq r8, [r6+0]     ; base changes each iteration: pointer chase
    add r6, 8
    cmp r6, 100
    jl .loop
    ret
.section .data
arr:
    .zero 800
`)
	la := AnalyzeLoops(g)
	load := instrAt(t, g, mod, "f", 1)
	if got := la.ClassOf(load.Addr); got != AccessUnknown {
		t.Errorf("pointer-chase load class = %v, want unknown", got)
	}
}

func TestDefUseAndOrigins(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    trap 1             ; (0) malloc-like: defines r0
    mov r6, r0         ; (1)
    add r6, 16         ; (2)
    ldq r7, [r6+0]     ; (3) use of r6: provenance = trap
    ret
`)
	du := ComputeDefUse(g)
	load := instrAt(t, g, mod, "f", 3)
	mov := instrAt(t, g, mod, "f", 1)
	add := instrAt(t, g, mod, "f", 2)
	defs := du.DefsOf(load.Addr, isa.R6)
	if len(defs) != 1 || defs[0] != add.Addr {
		t.Fatalf("direct defs of r6 at load = %#x, want [%#x]", defs, add.Addr)
	}
	if !du.ReachesFrom(load.Addr, isa.R6, add.Addr) {
		t.Error("ReachesFrom failed for direct def")
	}
	// Transitive origin: trap (allocation site).
	trap := instrAt(t, g, mod, "f", 0)
	origins := du.TraceOrigins(g, load.Addr, isa.R6)
	found := false
	for _, o := range origins {
		if o == trap.Addr {
			found = true
		}
	}
	if !found {
		t.Errorf("origins = %#x, want to include trap at %#x (via %#x)",
			origins, trap.Addr, mov.Addr)
	}
}

func TestDefUseMergesAtJoin(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    cmp r1, 0      ; (0)
    je .b          ; (1)
    mov r6, 1      ; (2)
    jmp .join      ; (3)
.b:
    mov r6, 2      ; (4)
.join:
    mov r0, r6     ; (5) both defs reach
    ret
`)
	du := ComputeDefUse(g)
	use := instrAt(t, g, mod, "f", 5)
	defs := du.DefsOf(use.Addr, isa.R6)
	if len(defs) != 2 {
		t.Fatalf("defs at join = %d (%#x), want 2", len(defs), defs)
	}
}

func TestStackSize(t *testing.T) {
	_, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 48
    mov r0, 0
    mov sp, fp
    pop fp
    ret
`)
	var fn *cfg.Function
	for _, f := range g.Funcs {
		if f.Name == "f" || f.Name == "_entry" {
			fn = f
		}
	}
	if fn == nil {
		t.Fatal("no function")
	}
	if got := StackSize(fn); got != 56 {
		t.Fatalf("stack size = %d, want 56 (8 push + 48 locals)", got)
	}
}

func TestInterproceduralLivenessKeepsClobberedCalleeSavedLive(t *testing.T) {
	// Caller uses r12 after calling clobber-style callee. With plain
	// conventions r12 stays live across the call either way (it is
	// callee-saved); the point of the interprocedural pass is that the
	// Clobbers map flags the callee so tools can fall back to entry/exit
	// save-restore (§4.1.2). Verify the map is exposed through Liveness.
	_, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r12, 7
    call bad
    mov r0, r12
    ret
bad:
    mov r12, 0      ; clobbers callee-saved without saving
    ret
`)
	l := ComputeLiveness(g, true)
	if len(l.Clobbers) == 0 {
		t.Fatal("interprocedural pass found no clobbers")
	}
	found := false
	for _, m := range l.Clobbers {
		if m.Has(isa.R12) {
			found = true
		}
	}
	if !found {
		t.Error("r12 clobber not recorded")
	}
	// Without interproc, Clobbers stays empty.
	l2 := ComputeLiveness(g, false)
	if len(l2.Clobbers) != 0 {
		t.Error("intra-only liveness should not populate Clobbers")
	}
}

// TestSCEVNotHoistableWithoutJlLatch: loops bounded by other predicates
// (jne here) must not be classified for exclusive-bound hoisting
// arithmetic; the access stays AccessInduction (classification) but the
// jasan hoister separately requires the jl latch — assert the latch shape
// is visible so that check has something to key on.
func TestSCEVNotHoistableWithoutJlLatch(t *testing.T) {
	_, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r7, 0
    la r6, arr
.loop:
    ldxq r8, [r6+r7*8]
    add r7, 1
    cmp r7, 100
    jne .loop
    ret
.section .data
arr:
    .zero 800
`)
	la := AnalyzeLoops(g)
	if len(la.Loops) != 1 {
		t.Fatalf("loops = %d", len(la.Loops))
	}
	latch := g.Blocks[la.Loops[0].Latch]
	if latch == nil {
		t.Fatal("no latch block")
	}
	if latch.Terminator().Op == isa.OpJl {
		t.Fatal("test needs a non-jl latch")
	}
	// The induction info itself is still found (bound recorded).
	if la.Loops[0].Induction == nil || !la.Loops[0].Induction.Bounded {
		t.Error("induction with bound should still be recognised")
	}
}
