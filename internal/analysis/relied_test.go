package analysis

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// ipaRaProg hand-writes the §4.1.2 pattern: the caller keeps a value in
// caller-saved r8 across a direct call, because it "knows" the callee never
// touches r8 (gcc's ipa-ra). The callee has a memory access JASan would
// instrument; its intra-procedural liveness sees r8 as dead everywhere.
const ipaRaProg = `
.module t
.entry _start
.section .text
_start:
    mov r8, 1000        ; value the caller relies on
    call leaf           ; ipa-ra: r8 deliberately NOT saved
    add r8, 1           ; ...and used afterwards
    mov r1, r8
    mov r0, 1
    syscall
leaf:
    la r6, slot
    ldq r7, [r6+0]      ; instrumented memory access
    add r7, 1
    stq [r6+0], r7
    ret
.section .data
slot:
    .quad 5
`

func buildIpaRa(t *testing.T) *cfg.Graph {
	t.Helper()
	mod, err := asm.Assemble(ipaRaProg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(mod)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReliedUponDetectsIpaRaPattern(t *testing.T) {
	g := buildIpaRa(t)
	l := ComputeLiveness(g, false)
	relied := ReliedUpon(g, l)
	var leaf *cfg.Function
	for _, fn := range g.Funcs {
		if fn.Name == "leaf" {
			leaf = fn
		}
	}
	if leaf == nil {
		t.Fatal("no leaf function")
	}
	mask, ok := relied[leaf.Entry]
	if !ok || !mask.Has(isa.R8) {
		t.Fatalf("relied[leaf] = %v, want r8", mask.Regs())
	}
}

func TestIpaRaHazardExistsWithoutInterproc(t *testing.T) {
	// Intra-procedural liveness considers r8 free inside leaf — the
	// unsound scratch choice the paper warns about.
	g := buildIpaRa(t)
	l := ComputeLiveness(g, false)
	var accessAddr uint64
	for _, fn := range g.Funcs {
		if fn.Name != "leaf" {
			continue
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.OpLdQ {
					accessAddr = b.Instrs[i].Addr
				}
			}
		}
	}
	if accessAddr == 0 {
		t.Fatal("no access found in leaf")
	}
	if l.LiveIn(accessAddr).Regs.Has(isa.R8) {
		t.Fatal("intra-procedural liveness already keeps r8 live: test is vacuous")
	}
}

func TestInterprocLivenessProtectsReliedRegisters(t *testing.T) {
	g := buildIpaRa(t)
	l := ComputeLiveness(g, true)
	for _, fn := range g.Funcs {
		if fn.Name != "leaf" {
			continue
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				a := b.Instrs[i].Addr
				if !l.LiveIn(a).Regs.Has(isa.R8) {
					t.Errorf("r8 not live at %#x inside relied-upon leaf", a)
				}
				for _, r := range l.FreeRegs(a, 8) {
					if r == isa.R8 {
						t.Errorf("FreeRegs hands out relied r8 at %#x", a)
					}
				}
			}
		}
	}
}

func TestReliedPropagatesThroughCalls(t *testing.T) {
	// A relies-on-r9 call to mid, which itself calls inner: the reliance
	// must reach inner too — r9 has to survive the whole extent.
	mod, err := asm.Assemble(`
.module t
.entry _start
.section .text
_start:
    mov r9, 7
    call mid
    mov r1, r9
    mov r0, 1
    syscall
mid:
    push fp
    mov fp, sp
    call inner
    mov sp, fp
    pop fp
    ret
inner:
    mov r0, 3
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(mod)
	if err != nil {
		t.Fatal(err)
	}
	l := ComputeLiveness(g, false)
	relied := ReliedUpon(g, l)
	for _, name := range []string{"mid", "inner"} {
		found := false
		for _, fn := range g.Funcs {
			if fn.Name == name && relied[fn.Entry].Has(isa.R9) {
				found = true
			}
		}
		if !found {
			t.Errorf("reliance on r9 did not reach %s", name)
		}
	}
}
