package analysis

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestDefsOfSortedDeterministic locks the DefsOf ordering contract: the
// reaching-definition sets behind rule emission must come back sorted
// ascending and identical across recomputations, or rule files would not be
// byte-stable.
func TestDefsOfSortedDeterministic(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r1, 1
    cmp r2, 0
    je .b
    mov r1, 2
    jmp .j
.b:
    mov r1, 3
.j:
    mov r0, r1
    ret
`)
	use := instrAt(t, g, mod, "f", 6) // mov r0, r1 at the join
	if use.Op != isa.OpMovRR {
		t.Fatalf("unexpected instr %v at join", use.Op)
	}
	first := ComputeDefUse(g).DefsOf(use.Addr, isa.R1)
	if len(first) != 2 {
		t.Fatalf("defs = %v, want both branch defs", first)
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("defs not sorted ascending: %v", first)
		}
	}
	for round := 0; round < 20; round++ {
		got := ComputeDefUse(g).DefsOf(use.Addr, isa.R1)
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("round %d: defs %v != %v", round, got, first)
		}
	}
}

// TestFreeRegsAscending locks FreeRegs' ordering: scratch registers are
// handed out in ascending register order, never SP or FP.
func TestFreeRegsAscending(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    mov r1, 1
    mov r0, r1
    ret
`)
	l := ComputeLiveness(g, false)
	in := instrAt(t, g, mod, "f", 1)
	free := l.FreeRegs(in.Addr, 6)
	if len(free) == 0 {
		t.Fatal("no free registers on a near-empty function")
	}
	for i, r := range free {
		if r == isa.SP || r == isa.FP {
			t.Fatalf("FreeRegs handed out %v", r)
		}
		if i > 0 && free[i-1] >= r {
			t.Fatalf("FreeRegs not ascending: %v", free)
		}
	}
}

// TestCanaryReorderedIdiom covers the -O2 shape where the scheduler moves
// unrelated instructions between the ldg and the canary store, and between
// the check reload and its fresh ldg.
func TestCanaryReorderedIdiom(t *testing.T) {
	mod, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 48
    ldg r6
    mov r1, 0
    lea r2, [fp-40]
    stq [fp-8], r6
    stq [fp-24], r1
    ldq r7, [fp-8]
    mov r0, 0
    ldg r8
    cmp r7, r8
    je .ok
    hlt
.ok:
    mov sp, fp
    pop fp
    ret
`)
	sites := FindCanaries(g)
	if len(sites) != 1 {
		t.Fatalf("found %d canary sites, want 1", len(sites))
	}
	s := sites[0]
	if s.SlotBase != isa.FP || s.SlotDisp != -8 {
		t.Fatalf("slot = [%v%+d], want [fp-8]", s.SlotBase, s.SlotDisp)
	}
	store := instrAt(t, g, mod, "f", 6)
	if s.StoreAddr != store.Addr {
		t.Fatalf("store addr = %#x, want %#x", s.StoreAddr, store.Addr)
	}
	if s.PoisonAt != instrAt(t, g, mod, "f", 7).Addr {
		t.Fatalf("poison attaches at %#x, want the next instruction", s.PoisonAt)
	}
	reload := instrAt(t, g, mod, "f", 8)
	if len(s.CheckAddrs) != 1 || s.CheckAddrs[0] != reload.Addr {
		t.Fatalf("check addrs = %#x, want [%#x]", s.CheckAddrs, reload.Addr)
	}
}

// TestCanaryRejectsClobberedSecret: if the scheduled filler redefines the
// canary register before the store, the idiom must not match.
func TestCanaryRejectsClobberedSecret(t *testing.T) {
	_, g := buildGraph(t, `
.module t
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 32
    ldg r6
    mov r6, 0
    stq [fp-8], r6
    mov sp, fp
    pop fp
    ret
`)
	if sites := FindCanaries(g); len(sites) != 0 {
		t.Fatalf("matched a clobbered canary: %+v", sites)
	}
}
