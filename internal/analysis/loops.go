package analysis

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// Loop is a natural loop identified inside a function.
type Loop struct {
	Header uint64          // block address of the loop header
	Latch  uint64          // block address holding the back edge
	Blocks map[uint64]bool // all block addresses in the loop body

	// Induction describes the detected basic induction variable, if any:
	// a register incremented by a constant stride each iteration and
	// bounded by a compare at the latch or header.
	Induction *Induction
}

// Induction is a basic induction variable with a static trip bound.
type Induction struct {
	Reg    isa.Register
	Stride int64
	// Bound is the compared-against constant; Bounded reports whether a
	// bounding compare was found.
	Bound   int64
	Bounded bool
}

// AccessClass classifies a memory access inside a loop for the SCEV-guided
// check optimisation (§3.3.2).
type AccessClass uint8

// Access classes.
const (
	// AccessUnknown: no useful structure; must be checked every time.
	AccessUnknown AccessClass = iota
	// AccessInvariant: the address does not change across iterations;
	// one check at loop entry suffices.
	AccessInvariant
	// AccessInduction: the address is base + induction*scale with an
	// invariant base and a bounded induction variable; checking the
	// first and last addresses covers the whole range.
	AccessInduction
)

func (c AccessClass) String() string {
	switch c {
	case AccessInvariant:
		return "invariant"
	case AccessInduction:
		return "induction"
	}
	return "unknown"
}

// LoopAnalysis holds loops and per-access classifications for one module.
type LoopAnalysis struct {
	Loops []*Loop
	// Class maps memory-access instruction addresses to their class.
	Class map[uint64]AccessClass
	// loopOf maps block start addresses to the innermost loop.
	loopOf map[uint64]*Loop
}

// LoopFor returns the innermost loop containing the block at blockStart.
func (la *LoopAnalysis) LoopFor(blockStart uint64) *Loop { return la.loopOf[blockStart] }

// ClassOf returns the classification of a memory access (AccessUnknown for
// accesses outside loops or without structure).
func (la *LoopAnalysis) ClassOf(instrAddr uint64) AccessClass { return la.Class[instrAddr] }

// AnalyzeLoops finds natural loops in every function of g and classifies
// loop memory accesses.
func AnalyzeLoops(g *cfg.Graph) *LoopAnalysis {
	la := &LoopAnalysis{
		Class:  map[uint64]AccessClass{},
		loopOf: map[uint64]*Loop{},
	}
	for _, fn := range g.Funcs {
		la.analyzeFunc(g, fn)
	}
	return la
}

func (la *LoopAnalysis) analyzeFunc(g *cfg.Graph, fn *cfg.Function) {
	if len(fn.Blocks) == 0 {
		return
	}
	inFunc := map[uint64]*cfg.BasicBlock{}
	preds := map[uint64][]uint64{}
	for _, b := range fn.Blocks {
		inFunc[b.Start] = b
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if _, ok := inFunc[s]; ok {
				preds[s] = append(preds[s], b.Start)
			}
		}
	}

	// Back edge detection via DFS: an edge u->v is a back edge when v is
	// on the current DFS stack (v dominates u in reducible graphs; this
	// approximation suffices for compiler-shaped code).
	state := map[uint64]int{} // 0 unvisited, 1 on stack, 2 done
	type edge struct{ from, to uint64 }
	var backEdges []edge
	var dfs func(u uint64)
	dfs = func(u uint64) {
		state[u] = 1
		if b := inFunc[u]; b != nil {
			for _, s := range b.Succs {
				if _, ok := inFunc[s]; !ok {
					continue
				}
				switch state[s] {
				case 0:
					dfs(s)
				case 1:
					backEdges = append(backEdges, edge{u, s})
				}
			}
		}
		state[u] = 2
	}
	dfs(fn.Blocks[0].Start)
	sort.Slice(backEdges, func(i, j int) bool { return backEdges[i].to < backEdges[j].to })

	for _, e := range backEdges {
		loop := &Loop{Header: e.to, Latch: e.from, Blocks: map[uint64]bool{e.to: true}}
		// Natural loop body: nodes reaching the latch without passing
		// the header.
		stack := []uint64{e.from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if loop.Blocks[n] {
				continue
			}
			loop.Blocks[n] = true
			for _, p := range preds[n] {
				stack = append(stack, p)
			}
		}
		loop.Induction = findInduction(inFunc, loop)
		la.Loops = append(la.Loops, loop)
		for b := range loop.Blocks {
			// Innermost wins: later (inner) loops overwrite only if
			// smaller.
			if cur := la.loopOf[b]; cur == nil || len(loop.Blocks) < len(cur.Blocks) {
				la.loopOf[b] = loop
			}
		}
	}

	// Classify memory accesses in loops.
	for _, b := range fn.Blocks {
		loop := la.loopOf[b.Start]
		if loop == nil {
			continue
		}
		defs := loopDefs(inFunc, loop)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.IsMemAccess() {
				continue
			}
			la.Class[in.Addr] = classify(in, loop, defs)
		}
	}
}

// loopDefs returns the registers defined anywhere inside the loop body.
func loopDefs(inFunc map[uint64]*cfg.BasicBlock, loop *Loop) RegMask {
	var defs RegMask
	for addr := range loop.Blocks {
		b := inFunc[addr]
		if b == nil {
			continue
		}
		for i := range b.Instrs {
			for _, d := range b.Instrs[i].RegDefs(nil) {
				defs = defs.With(d)
			}
		}
	}
	return defs
}

// findInduction looks for the canonical induction pattern: a register
// updated exactly once in the loop by add/sub with a constant, compared
// against a constant by the latch or header block.
func findInduction(inFunc map[uint64]*cfg.BasicBlock, loop *Loop) *Induction {
	type update struct {
		reg    isa.Register
		stride int64
		count  int
	}
	updates := map[isa.Register]*update{}
	for addr := range loop.Blocks {
		b := inFunc[addr]
		if b == nil {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case isa.OpAddRI, isa.OpSubRI:
				u := updates[in.Rd]
				if u == nil {
					u = &update{reg: in.Rd}
					updates[in.Rd] = u
				}
				u.count++
				if in.Op == isa.OpAddRI {
					u.stride = in.Imm
				} else {
					u.stride = -in.Imm
				}
			default:
				// Any other def disqualifies the register.
				for _, d := range in.RegDefs(nil) {
					if u := updates[d]; u != nil {
						u.count += 100
					} else {
						updates[d] = &update{reg: d, count: 100}
					}
				}
			}
		}
	}
	var iv *update
	for _, u := range updates {
		if u.count == 1 {
			if iv != nil {
				return nil // multiple candidates: ambiguous
			}
			iv = u
		}
	}
	if iv == nil {
		return nil
	}
	ind := &Induction{Reg: iv.reg, Stride: iv.stride}
	// Bounding compare in latch or header.
	for _, where := range []uint64{loop.Latch, loop.Header} {
		b := inFunc[where]
		if b == nil {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == isa.OpCmpRI && in.Rd == iv.reg {
				ind.Bound = in.Imm
				ind.Bounded = true
			}
		}
	}
	return ind
}

// classify determines the access class of one loop memory access.
func classify(in *isa.Instr, loop *Loop, loopDefs RegMask) AccessClass {
	switch in.Op {
	case isa.OpLdQ, isa.OpStQ, isa.OpLdB, isa.OpStB:
		// [rb+disp]: invariant iff rb is not redefined in the loop.
		if !loopDefs.Has(in.Rb) {
			return AccessInvariant
		}
	case isa.OpLdXQ, isa.OpStXQ, isa.OpLdXB, isa.OpStXB:
		// [rb+ri*s+disp]: induction-linked iff rb invariant and ri is
		// the bounded induction variable.
		if loopDefs.Has(in.Rb) {
			return AccessUnknown
		}
		if loop.Induction != nil && loop.Induction.Bounded &&
			in.Ri == loop.Induction.Reg {
			return AccessInduction
		}
		if !loopDefs.Has(in.Ri) {
			return AccessInvariant
		}
	}
	return AccessUnknown
}
