package analysis

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// ReliedUpon computes, for each function, the caller-saved registers that
// some caller keeps live ACROSS a call into it without saving them — the
// ipa-ra pattern of §4.1.2: the compiler knows the callee's transitive
// extent does not touch those registers and breaks the calling convention.
// Standard intra-procedural liveness inside the callee concludes they are
// free scratch; instrumentation that trusts it clobbers the caller.
//
// Detection: a caller-saved register (other than r0, which the call itself
// defines) that is live-in at a call's fall-through instruction can only be
// correct if the caller relies on the callee preserving it. The register
// must then survive the callee's whole dynamic extent, so the reliance
// propagates transitively through the callee's own direct calls.
// (A compiler can only apply ipa-ra when the callee's transitive extent is
// fully visible, so the propagation never needs to cross module boundaries
// or indirect calls: such callees clobber conservatively and attract no
// reliance in the first place.)
func ReliedUpon(g *cfg.Graph, l *Liveness) map[uint64]RegMask {
	relied := map[uint64]RegMask{}
	for _, blk := range g.Blocks {
		term := blk.Terminator()
		if term.Op != isa.OpCall {
			continue
		}
		fall := term.Addr + uint64(term.Size)
		p, known := l.points[fall]
		if !known {
			continue
		}
		if r := p.Regs & CallerSaved &^ maskOf(isa.R0); r != 0 {
			relied[term.Target()] |= r
		}
	}
	// Propagate through the direct call graph to a fixpoint: the register
	// must survive everything the relied-upon function calls, too.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs {
			mask := relied[fn.Entry]
			if mask == 0 {
				continue
			}
			for _, blk := range fn.Blocks {
				term := blk.Terminator()
				if term.Op != isa.OpCall {
					continue
				}
				t := term.Target()
				if relied[t]&mask != mask {
					relied[t] |= mask
					changed = true
				}
			}
		}
	}
	return relied
}
