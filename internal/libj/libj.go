// Package libj provides the reproduction's C runtime library: a hand-written
// position-independent assembly module (libj.jef) that every generated
// program links against, standing in for libc.
//
// It deliberately contains the low-level pathologies the paper attributes to
// real libc-class libraries:
//
//   - qsort spills its comparison-callback function pointer to the stack and
//     reloads it before each indirect call; Lockdown-style register-tracking
//     heuristics miss such stack-passed callbacks (§6.2.2);
//   - clobber_counter violates the calling convention by using a
//     callee-saved register without saving it (§4.1.2);
//   - an .init section holds code outside .text that really executes, so
//     analyses restricted to .text lack coverage (§3.3.1);
//   - the PLT's lazy-resolution stub enters functions via push+ret (§4.2.3).
package libj

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/obj"
)

// Name is the soname programs put in .needs.
const Name = "libj.jef"

// Source is the full assembly source of libj.
const Source = `
.module libj.jef
.type shared
.pic

.global _jinit
.global malloc
.global free
.global memcpy
.global memset
.global strlen
.global strcpy
.global qsort
.global apply_table
.global dlopen
.global dlsym
.global dlclose
.global rand
.global srand
.global puts
.global puti
.global exit

.section .init
; _jinit lives in .init: executable code outside .text. It seeds the RNG.
_jinit:
    mov r6, 88172645463325252
    la r7, rand_state
    stq [r7+0], r6
    ret

.section .text
; malloc(size r1) -> r0
malloc:
    trap 1
    ret

; free(ptr r1)
free:
    trap 2
    ret

; exit(status r1) — does not return
exit:
    mov r0, 1
    syscall
    hlt

; puts(ptr r1, len r2)
puts:
    trap 6
    ret

; puti(v r1)
puti:
    trap 7
    ret

; memcpy(dst r1, src r2, n r3) -> dst
; Byte loop: dense memory traffic for sanitizers to instrument.
memcpy:
    mov r6, 0
.mc_loop:
    cmp r6, r3
    jge .mc_done
    ldxb r7, [r2+r6]
    stxb [r1+r6], r7
    add r6, 1
    jmp .mc_loop
.mc_done:
    mov r0, r1
    ret

; memset(dst r1, c r2, n r3) -> dst
memset:
    mov r6, 0
.ms_loop:
    cmp r6, r3
    jge .ms_done
    stxb [r1+r6], r2
    add r6, 1
    jmp .ms_loop
.ms_done:
    mov r0, r1
    ret

; strlen(s r1) -> r0
strlen:
    mov r0, 0
.sl_loop:
    ldxb r6, [r1+r0]
    cmp r6, 0
    je .sl_done
    add r0, 1
    jmp .sl_loop
.sl_done:
    ret

; strcpy(dst r1, src r2) -> dst
strcpy:
    mov r6, 0
.sc_loop:
    ldxb r7, [r2+r6]
    stxb [r1+r6], r7
    add r6, 1
    cmp r7, 0
    jne .sc_loop
    mov r0, r1
    ret

; qsort(base r1, n r2, cmp r3): insertion sort over 8-byte elements.
; The callback pointer is spilled to the stack frame and reloaded before
; every indirect call — the stack-passed-callback shape that defeats
; Lockdown's register heuristics.
qsort:
    push fp
    mov fp, sp
    sub sp, 32
    stq [fp-8], r3      ; spilled callback
    stq [fp-16], r1     ; base
    stq [fp-24], r2     ; n
    mov r6, 1           ; i
.qs_outer:
    ldq r7, [fp-24]
    cmp r6, r7
    jge .qs_done
    ldq r8, [fp-16]
    ldxq r9, [r8+r6*8]  ; key = base[i]
    mov r10, r6         ; j
.qs_inner:
    cmp r10, 0
    je .qs_place
    mov r11, r10
    sub r11, 1
    ldq r8, [fp-16]
    ldxq r4, [r8+r11*8] ; elem = base[j-1]
    push r6
    push r10
    push r4
    push r9
    mov r1, r9
    mov r2, r4
    ldq r5, [fp-8]      ; reload callback from the stack
    calli r5            ; cmp(key, elem)
    pop r9
    pop r4
    pop r10
    pop r6
    cmp r0, 0
    jge .qs_place
    ldq r8, [fp-16]
    stxq [r8+r10*8], r4 ; base[j] = elem
    sub r10, 1
    jmp .qs_inner
.qs_place:
    ldq r8, [fp-16]
    stxq [r8+r10*8], r9 ; base[j] = key
    add r6, 1
    jmp .qs_outer
.qs_done:
    mov sp, fp
    pop fp
    ret

; apply_table(tab r1, n r2, x r3) -> sum of tab[i](x).
; The callback pointers are loaded FROM MEMORY right before each indirect
; call: a register-tracking callback heuristic at the module boundary never
; sees them (the §6.2.2 Lockdown false-positive shape).
apply_table:
    push fp
    mov fp, sp
    sub sp, 48
    stq [fp-8], r1
    stq [fp-16], r2
    stq [fp-24], r3
    mov r6, 0
    stq [fp-32], r6     ; i
    stq [fp-40], r6     ; acc
.at_loop:
    ldq r6, [fp-32]
    ldq r7, [fp-16]
    cmp r6, r7
    jge .at_done
    ldq r8, [fp-8]
    ldxq r9, [r8+r6*8]  ; fn = tab[i], from memory
    ldq r1, [fp-24]
    calli r9
    ldq r6, [fp-40]
    add r6, r0
    stq [fp-40], r6
    ldq r6, [fp-32]
    add r6, 1
    stq [fp-32], r6
    jmp .at_loop
.at_done:
    ldq r0, [fp-40]
    mov sp, fp
    pop fp
    ret

; dlopen(name r1, len r2) -> handle (module base) or 0
dlopen:
    trap 3
    ret

; dlsym(handle r1, name r2, len r3) -> symbol address or 0
dlsym:
    trap 4
    ret

; dlclose(handle r1) -> 0 ok / -1 fail
dlclose:
    trap 8
    ret

; rand() -> r0: xorshift64. Uses PIC global access.
rand:
    la r6, rand_state
    ldq r0, [r6+0]
    mov r7, r0
    shl r7, 13
    xor r0, r7
    mov r7, r0
    shr r7, 7
    xor r0, r7
    mov r7, r0
    shl r7, 17
    xor r0, r7
    stq [r6+0], r0
    ret

; srand(seed r1)
srand:
    la r6, rand_state
    stq [r6+0], r1
    ret

; clobber_counter(n r1) -> r0: hand-written assembly that VIOLATES the
; calling convention by using callee-saved r12 as a scratch counter without
; saving or restoring it (§4.1.2). Callers in libj's own unit know this;
; intra-procedural liveness analysis of callers does not.
.global clobber_counter
clobber_counter:
    mov r12, 0
.cc_loop:
    cmp r12, r1
    jge .cc_done
    add r12, 1
    jmp .cc_loop
.cc_done:
    mov r0, r12
    ret

.section .data
rand_state:
    .quad 88172645463325252
`

var (
	once   sync.Once
	cached *obj.Module
	bakeEr error
)

// Module assembles libj once and returns the shared module object. The
// module is read-only after assembly; loaders copy its sections into process
// memory.
func Module() (*obj.Module, error) {
	once.Do(func() {
		cached, bakeEr = asm.Assemble(Source)
		if bakeEr != nil {
			bakeEr = fmt.Errorf("libj: %w", bakeEr)
		}
	})
	return cached, bakeEr
}
