package libj

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
)

func TestModuleAssembles(t *testing.T) {
	m, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != Name || !m.PIC || m.Type != obj.SharedObj {
		t.Fatalf("header: name=%s pic=%v type=%v", m.Name, m.PIC, m.Type)
	}
	// The cached module is returned again.
	m2, err := Module()
	if err != nil || m2 != m {
		t.Fatal("Module() should cache")
	}
}

func TestExportsComplete(t *testing.T) {
	m, _ := Module()
	for _, name := range []string{
		"_jinit", "malloc", "free", "memcpy", "memset", "strlen", "strcpy",
		"qsort", "apply_table", "dlopen", "dlsym", "rand", "srand",
		"puts", "puti", "exit", "clobber_counter",
	} {
		s := m.FindSymbol(name)
		if s == nil {
			t.Errorf("missing symbol %s", name)
			continue
		}
		if !s.Exported || s.Kind != obj.SymFunc {
			t.Errorf("%s: exported=%v kind=%v", name, s.Exported, s.Kind)
		}
	}
}

// TestPathologiesPresent verifies the deliberate low-level pathologies the
// reproduction depends on are actually in the binary.
func TestPathologiesPresent(t *testing.T) {
	m, _ := Module()
	g, err := cfg.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// (1) .init holds executable code outside .text.
	initSec := m.Section(".init")
	if initSec == nil || !initSec.Executable() || len(initSec.Data) == 0 {
		t.Error(".init section missing or empty")
	}
	if g.Blocks[initSec.Addr] == nil {
		t.Error(".init code not recoverable")
	}
	// (2) qsort reloads its callback from the stack frame before calli.
	qsort := m.FindSymbol("qsort")
	fn := g.FuncAt(qsort.Addr)
	sawStackReloadBeforeCall := false
	for _, b := range fn.Blocks {
		for i := 1; i < len(b.Instrs); i++ {
			if b.Instrs[i].Op == isa.OpCallI && b.Instrs[i-1].Op == isa.OpLdQ &&
				b.Instrs[i-1].Rb == isa.FP {
				sawStackReloadBeforeCall = true
			}
		}
	}
	if !sawStackReloadBeforeCall {
		t.Error("qsort's stack-spilled callback reload not found")
	}
	// (3) clobber_counter writes callee-saved r12 without saving it.
	cc := m.FindSymbol("clobber_counter")
	fn = g.FuncAt(cc.Addr)
	writes, pushes := false, false
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == isa.OpPush && in.Rd == isa.R12 {
				pushes = true
			}
			for _, d := range in.RegDefs(nil) {
				if d == isa.R12 {
					writes = true
				}
			}
		}
	}
	if !writes || pushes {
		t.Errorf("clobber_counter: writes=%v pushes=%v, want writes without saves",
			writes, pushes)
	}
	// (4) apply_table loads its callbacks from memory right before calli.
	at := m.FindSymbol("apply_table")
	fn = g.FuncAt(at.Addr)
	memLoadedCallback := false
	for _, b := range fn.Blocks {
		for i := 2; i < len(b.Instrs); i++ {
			if b.Instrs[i].Op == isa.OpCallI {
				for j := i - 3; j < i; j++ {
					if j >= 0 && b.Instrs[j].Op == isa.OpLdXQ {
						memLoadedCallback = true
					}
				}
			}
		}
	}
	if !memLoadedCallback {
		t.Error("apply_table's memory-loaded callback not found")
	}
}

// TestTextFullyDecodable: every byte of libj's executable sections decodes
// as part of a valid instruction stream (no data-in-code in the runtime
// library, unlike the deliberately hostile libfort workload module).
func TestTextFullyDecodable(t *testing.T) {
	m, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range m.ExecSections() {
		ins, err := isa.DecodeAll(sec.Data, sec.Addr)
		if err != nil {
			t.Fatalf("%s: %v", sec.Name, err)
		}
		total := uint64(0)
		for i := range ins {
			total += uint64(ins[i].Size)
		}
		if total != uint64(len(sec.Data)) {
			t.Errorf("%s: decoded %d of %d bytes", sec.Name, total, len(sec.Data))
		}
	}
}
