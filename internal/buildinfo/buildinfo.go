// Package buildinfo identifies a janitizer binary: release version, Go
// toolchain, and VCS revision. Every cmd exposes it through -version, and
// serving processes export it as the janitizer_build_info gauge (constant
// value 1, identity in the labels — the Prometheus convention for joining
// fleet metrics against deploy metadata).
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"repro/internal/telemetry"
)

// Version is the release version, overridable at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=1.2.3"
var Version = "0.10.0-dev"

// GoVersion returns the Go toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// GitRevision returns the VCS revision stamped into the binary by the Go
// toolchain ("unknown" when built outside a checkout or with -buildvcs=off).
func GitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	return "unknown"
}

// String renders the one-line -version output for cmd.
func String(cmd string) string {
	return fmt.Sprintf("%s %s (%s, rev %s)", cmd, Version, GoVersion(), GitRevision())
}

// Register exports janitizer_build_info on r: a constant-1 gauge whose
// labels carry the version identity.
func Register(r *telemetry.Registry) {
	r.GaugeFunc("janitizer_build_info",
		"Build identity of this process; constant 1, identity in the labels.",
		func() float64 { return 1 },
		"version", Version,
		"go_version", GoVersion(),
		"revision", GitRevision())
}
