package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/vm"
)

// TestUnloadDropsTableAndReusedAddressesGetFreshRules is footnote 2's
// scenario end to end: module A (with rules) is dlopened, used and
// unloaded; module B is then loaded AT THE SAME BASE with its own rule
// file. The per-module tables mean A's hints vanish in O(1) and B's blocks
// classify against B's table — no stale-hint scan, no cross-talk.
func TestUnloadDropsTableAndReusedAddressesGetFreshRules(t *testing.T) {
	plugA := `
.module a.jef
.type shared
.pic
.global fa
.section .text
fa:
    la r6, aslot
    ldq r7, [r6+0]      ; a store/load pair: gets a MemAccess-style rule
    add r7, 1
    stq [r6+0], r7
    mov r0, r7
    ret
.section .data
aslot:
    .quad 100
`
	plugB := `
.module b.jef
.type shared
.pic
.global fb
.section .text
fb:
    la r6, bslot
    ldq r7, [r6+0]
    add r7, 2
    stq [r6+0], r7
    mov r0, r7
    ret
.section .data
bslot:
    .quad 200
`
	mainSrc := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    ; dlopen a, call fa, dlclose a
    la r1, an
    mov r2, 5
    trap 3
    mov r12, r0
    mov r1, r12
    la r2, fan
    mov r3, 2
    trap 4
    calli r0
    mov r13, r0         ; 101
    mov r1, r12
    trap 8
    ; dlopen b (reuses a's base), call fb
    la r1, bn
    mov r2, 5
    trap 3
    mov r12, r0
    mov r1, r12
    la r2, fbn
    mov r3, 2
    trap 4
    calli r0            ; 202
    add r0, r13
    mov r1, r0
    mov r0, 1
    syscall
.section .rodata
an:
    .ascii "a.jef"
bn:
    .ascii "b.jef"
fan:
    .ascii "fa"
fbn:
    .ascii "fb"
`
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	a, err := asm.Assemble(plugA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := asm.Assemble(plugB)
	if err != nil {
		t.Fatal(err)
	}
	main, err := asm.Assemble(mainSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj, "a.jef": a, "b.jef": b}

	tool := &markerTool{}
	files, err := AnalyzeProgram(main, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	// Both plugins have rule files available (footnote 1: dlopened modules
	// with rule files get them).
	fa, err := AnalyzeModule(a, tool)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := AnalyzeModule(b, tool)
	if err != nil {
		t.Fatal(err)
	}
	files["a.jef"] = fa
	files["b.jef"] = fb

	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 1_000_000
	proc := loader.NewProcess(m, reg)
	rt := NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		t.Fatal(err)
	}
	if m.ExitStatus != 101+202 {
		t.Fatalf("exit = %d, want 303", m.ExitStatus)
	}
	// A's table is gone; B's table exists and is keyed at the REUSED base.
	if rt.Table("a.jef") != nil {
		t.Error("a.jef rule table not dropped on unload")
	}
	tb := rt.Table("b.jef")
	if tb == nil {
		t.Fatal("b.jef rule table missing")
	}
	lb := proc.ModuleByName("b.jef")
	sym := lb.FindSymbol("fb")
	if _, hit := tb.BlockRules(lb.RuntimeAddr(sym.Addr)); !hit {
		t.Error("b.jef blocks miss at the reused base")
	}
	// Everything ran through rule tables: no fallback blocks at all.
	if rt.Coverage.Fallback != 0 {
		t.Errorf("fallback blocks = %d; stale-hint handling broken", rt.Coverage.Fallback)
	}
	// Both plugins' stores were instrumented via the marker tool.
	sawA, sawB := false, false
	for _, addr := range tool.staticBlocks {
		if lb.Contains(addr) {
			sawB = true
		}
	}
	// A was unloaded; its block addresses equal B's base now, so check we
	// instrumented at that base BEFORE the unload too (two distinct
	// instrumentation events at the shared base).
	count := 0
	for _, addr := range tool.staticBlocks {
		if addr >= lb.LoadBase && addr < lb.LoadBase+0x10000 {
			count++
		}
	}
	sawA = count >= 2
	if !sawA || !sawB {
		t.Errorf("instrumentation events at shared base = %d (A then B expected)", count)
	}
}
