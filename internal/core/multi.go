package core

import (
	"strings"

	"repro/internal/dbm"
	"repro/internal/rules"
)

// InstrPlan is one tool's per-block instrumentation plan: hooks invoked
// around every application instruction by the shared emission walk. Each
// hook's output must be self-contained (its internal meta branches resolve
// within the instructions it emits), which is what makes plans from
// different tools composable in a single pass over the block.
type InstrPlan interface {
	// Before emits instrumentation ahead of application instruction idx.
	Before(e *dbm.Emitter, idx int)
	// After emits instrumentation behind application instruction idx.
	After(e *dbm.Emitter, idx int)
}

// PlannedTool is a Tool whose block rewriting decomposes into per-
// instruction hooks. Tools implementing it compose under MultiTool: the
// paper's "comprehensive" configuration runs JASan, JMSan and JCFI over one
// shared translation of every block instead of three.
type PlannedTool interface {
	Tool
	// PlanStatic prepares the plan for a statically-seen block (the rule-
	// guided hit path).
	PlanStatic(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) InstrPlan
	// PlanDyn prepares the plan for a block never seen statically
	// (block-local analysis only).
	PlanDyn(bc *dbm.BlockContext) InstrPlan
}

// EmitPlans runs the shared emission walk: for every application
// instruction, each plan's Before hooks, the instruction itself, then each
// plan's After hooks, in plan order.
func EmitPlans(bc *dbm.BlockContext, plans ...InstrPlan) []dbm.CInstr {
	e := &dbm.Emitter{}
	for idx := range bc.AppInstrs {
		for _, p := range plans {
			p.Before(e, idx)
		}
		e.App(bc.AppInstrs[idx])
		for _, p := range plans {
			p.After(e, idx)
		}
	}
	return e.Out
}

// MultiTool composes several planned tools into one Tool — the combined
// sanitizer configurations of the paper's composability story. Static
// passes concatenate (rule IDs are disjoint across tools, and every tool
// ignores rule IDs it does not own), instrumentation interleaves per
// instruction, and runtimes initialise in tool order (so e.g. JMSan's
// allocator interposition nests over JASan's redzone allocator).
type MultiTool struct {
	Tools []PlannedTool
}

// NewMultiTool composes tools in the given order.
func NewMultiTool(tools ...PlannedTool) *MultiTool {
	return &MultiTool{Tools: tools}
}

// Name implements Tool: the sub-tool names joined with "+".
func (m *MultiTool) Name() string {
	names := make([]string, len(m.Tools))
	for i, t := range m.Tools {
		names[i] = t.Name()
	}
	return strings.Join(names, "+")
}

// ConfigKey folds every sub-tool's configuration into one cache key, so the
// content-addressed rule cache never conflates a combined analysis with any
// of its parts (or with a differently-configured combination).
func (m *MultiTool) ConfigKey() string {
	parts := make([]string, len(m.Tools))
	for i, t := range m.Tools {
		if ck, ok := t.(interface{ ConfigKey() string }); ok {
			parts[i] = t.Name() + "{" + ck.ConfigKey() + "}"
		} else {
			parts[i] = t.Name()
		}
	}
	return strings.Join(parts, "+")
}

// StaticPass implements Tool: the concatenation of every sub-tool's rules.
func (m *MultiTool) StaticPass(sc *StaticContext) []rules.Rule {
	var out []rules.Rule
	for _, t := range m.Tools {
		out = append(out, t.StaticPass(sc)...)
	}
	return out
}

// multiPlan composes several tools' plans: each hook runs every sub-plan in
// tool order. Because every sub-plan's output is self-contained, the
// composition is itself a valid InstrPlan.
type multiPlan struct{ plans []InstrPlan }

func (m multiPlan) Before(e *dbm.Emitter, idx int) {
	for _, p := range m.plans {
		p.Before(e, idx)
	}
}

func (m multiPlan) After(e *dbm.Emitter, idx int) {
	for _, p := range m.plans {
		p.After(e, idx)
	}
}

// PlanStatic implements PlannedTool: the composition of every sub-tool's
// static plan, so MultiTool itself composes (and so the rewrite backend can
// capture one combined plan per anchor).
func (m *MultiTool) PlanStatic(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) InstrPlan {
	plans := make([]InstrPlan, len(m.Tools))
	for i, t := range m.Tools {
		plans[i] = t.PlanStatic(bc, instrRules)
	}
	return multiPlan{plans}
}

// PlanDyn implements PlannedTool: the composition of every sub-tool's
// dynamic plan.
func (m *MultiTool) PlanDyn(bc *dbm.BlockContext) InstrPlan {
	plans := make([]InstrPlan, len(m.Tools))
	for i, t := range m.Tools {
		plans[i] = t.PlanDyn(bc)
	}
	return multiPlan{plans}
}

// Instrument implements Tool: one walk, every tool's static plan.
func (m *MultiTool) Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr {
	return EmitPlans(bc, m.PlanStatic(bc, instrRules))
}

// DynFallback implements Tool: one walk, every tool's dynamic plan.
func (m *MultiTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	return EmitPlans(bc, m.PlanDyn(bc))
}

// RuntimeInit implements Tool: sub-tool runtimes initialise in order.
func (m *MultiTool) RuntimeInit(rt *Runtime) error {
	for _, t := range m.Tools {
		if err := t.RuntimeInit(rt); err != nil {
			return err
		}
	}
	return nil
}
