package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/rules"
	"repro/internal/vm"
)

// markerTool records which path (Instrument vs DynFallback) each block took
// and tags one instruction kind with rules.
type markerTool struct {
	staticBlocks   []uint64
	fallbackBlocks []uint64
	initCalled     bool
}

func (t *markerTool) Name() string { return "marker" }

func (t *markerTool) StaticPass(sc *StaticContext) []rules.Rule {
	var out []rules.Rule
	for _, blk := range sc.Graph.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.IsStore() {
				out = append(out, rules.Rule{
					ID: rules.MemAccess, BBAddr: blk.Start, Instr: in.Addr,
				})
			}
		}
	}
	return out
}

func (t *markerTool) Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr {
	t.staticBlocks = append(t.staticBlocks, bc.Start)
	return dbm.NullClient{}.OnBlock(bc)
}

func (t *markerTool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	t.fallbackBlocks = append(t.fallbackBlocks, bc.Start)
	return dbm.NullClient{}.OnBlock(bc)
}

func (t *markerTool) RuntimeInit(rt *Runtime) error {
	t.initCalled = true
	return nil
}

const prog = `
.module prog
.entry _start
.needs libj.jef
.import malloc
.section .text
_start:
    mov r1, 32
    call malloc
    mov r6, 5
    stq [r0+0], r6
    mov r1, 0
    mov r0, 1
    syscall
`

func setup(t *testing.T) (*vm.Machine, *loader.Process, loader.Registry, *markerTool) {
	t.Helper()
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 1_000_000
	return m, loader.NewProcess(m, reg), reg, &markerTool{}
}

func TestAnalyzeModuleAddsNoOpRules(t *testing.T) {
	main, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	tool := &markerTool{}
	f, err := AnalyzeModule(main, tool)
	if err != nil {
		t.Fatal(err)
	}
	var mem, noop int
	covered := map[uint64]bool{}
	for _, r := range f.Rules {
		switch r.ID {
		case rules.MemAccess:
			mem++
			covered[r.BBAddr] = true
		case rules.NoOp:
			noop++
			if covered[r.BBAddr] {
				t.Errorf("NoOp on a block that already has rules: %#x", r.BBAddr)
			}
		}
	}
	if mem == 0 {
		t.Error("tool rules missing")
	}
	if noop == 0 {
		t.Error("no NoOp marking for untouched blocks")
	}
}

func TestAnalyzeProgramCoversClosure(t *testing.T) {
	main, _ := asm.Assemble(prog)
	lj, _ := libj.Module()
	reg := loader.Registry{libj.Name: lj}
	files, err := AnalyzeProgram(main, reg, &markerTool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %d, want 2 (prog + libj)", len(files))
	}
	if files[libj.Name] == nil || files["prog"] == nil {
		t.Fatal("missing rule file")
	}
}

func TestAnalyzeProgramMissingDependency(t *testing.T) {
	main, _ := asm.Assemble(".module p\n.entry f\n.needs gone.jef\n.section .text\nf: hlt")
	if _, err := AnalyzeProgram(main, loader.Registry{}, &markerTool{}); err == nil {
		t.Fatal("missing dependency accepted")
	}
}

func TestHybridClassification(t *testing.T) {
	m, proc, reg, tool := setup(t)
	main, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	files, err := AnalyzeProgram(main, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Table("prog") == nil || rt.Table(libj.Name) == nil {
		t.Fatal("module rule tables not built at load time")
	}
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		t.Fatal(err)
	}
	if !tool.initCalled {
		t.Error("RuntimeInit not called")
	}
	if rt.Coverage.Fallback != 0 {
		t.Errorf("fully static program had %d fallback blocks: %#x",
			rt.Coverage.Fallback, tool.fallbackBlocks)
	}
	if rt.Coverage.StaticInstrumented == 0 || rt.Coverage.StaticNoOp == 0 {
		t.Errorf("classification counts implausible: %+v", rt.Coverage)
	}
	if got := rt.Coverage.Total(); got != rt.Coverage.StaticInstrumented+
		rt.Coverage.StaticNoOp+rt.Coverage.Fallback {
		t.Errorf("Total() = %d inconsistent", got)
	}
}

func TestClassifierMissRoutesToFallback(t *testing.T) {
	m, proc, _, tool := setup(t)
	main, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	// No rule files at all: everything must take the dynamic path.
	rt := NewRuntime(m, proc, tool, map[string]*rules.File{})
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		t.Fatal(err)
	}
	if rt.Coverage.StaticInstrumented != 0 || rt.Coverage.StaticNoOp != 0 {
		t.Errorf("blocks classified static without rules: %+v", rt.Coverage)
	}
	if rt.Coverage.Fallback == 0 || len(tool.fallbackBlocks) == 0 {
		t.Error("no fallback classification")
	}
	if rt.Coverage.DynamicFraction() != 1.0 {
		t.Errorf("dynamic fraction = %f", rt.Coverage.DynamicFraction())
	}
}

func TestPICRuleTableAdjustment(t *testing.T) {
	// A PIC dependency's table must be keyed by run-time addresses.
	m, proc, reg, tool := setup(t)
	main, _ := asm.Assemble(prog)
	files, err := AnalyzeProgram(main, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m, proc, tool, files)
	if _, err := proc.LoadProgram(main); err != nil {
		t.Fatal(err)
	}
	lj := proc.ModuleByName(libj.Name)
	tab := rt.Table(libj.Name)
	if tab.Base != lj.LoadBase {
		t.Errorf("libj table base = %#x, want load base %#x", tab.Base, lj.LoadBase)
	}
	// The malloc entry block must hit at its RUN-TIME address.
	sym := lj.FindSymbol("malloc")
	if _, hit := tab.BlockRules(lj.RuntimeAddr(sym.Addr)); !hit {
		t.Error("libj block misses at run-time address (PIC adjustment broken)")
	}
	if _, hit := tab.BlockRules(sym.Addr); hit {
		t.Error("libj block hits at link-time address (no adjustment applied)")
	}
}

func TestRuntimeInitFailure(t *testing.T) {
	m, proc, _, _ := setup(t)
	bad := &failingTool{}
	rt := NewRuntime(m, proc, bad, map[string]*rules.File{})
	main, _ := asm.Assemble(prog)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(lm.RuntimeAddr(main.Entry))
	if err == nil || !strings.Contains(err.Error(), "runtime init") {
		t.Fatalf("err = %v, want runtime init failure", err)
	}
}

type failingTool struct{ markerTool }

func (t *failingTool) RuntimeInit(rt *Runtime) error {
	return &vm.Fault{Kind: "synthetic init failure"}
}

var _ = isa.Instr{}
