package core_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vsa"
)

// proofProg exercises every claim kind: frame stores/loads (frame + dedup
// claims), a global array access (global claim), a canary (whose slot must
// stay excluded), and an indirect jump with a provable singleton target.
const proofProg = `
.module prog
.entry _start
.section .text
_start:
    push fp
    mov fp, sp
    sub sp, 32
    ldg r6
    stq [fp-8], r6
    mov r1, 7
    stq [fp-24], r1
    ldq r2, [fp-24]
    la r7, arr
    ldq r3, [r7+8]
    la r8, fin
    jmpi r8
fin:
    ldq r4, [fp-8]
    ldg r5
    cmp r4, r5
    je .ok
    hlt
.ok:
    mov sp, fp
    pop fp
    mov r1, 0
    mov r0, 1
    syscall
.section .data
arr:
    .zero 32
`

func assembleProof(t *testing.T) *obj.Module {
	t.Helper()
	mod, err := asm.Assemble(proofProg)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return mod
}

func elideTool() *jasan.Tool {
	return jasan.New(jasan.Config{UseLiveness: true, Elide: true})
}

func TestProofRoundTrip(t *testing.T) {
	mod := assembleProof(t)
	rf, ps, err := core.AnalyzeModuleProofs(mod, elideTool())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if ps.NumClaims() == 0 {
		t.Fatal("no claims recorded on a provably safe program")
	}
	if v := vsa.Verify(mod, ps, rf); len(v) != 0 {
		t.Fatalf("fresh proof rejected: %v", v)
	}

	// Serialise, re-parse, re-verify: the artifact must be self-contained.
	blob, err := ps.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	ps2, err := vsa.UnmarshalProofSet(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v := vsa.Verify(mod, ps2, rf); len(v) != 0 {
		t.Fatalf("round-tripped proof rejected: %v", v)
	}

	// Narrowing claims replay the same way.
	nrf, nps, err := core.AnalyzeModuleProofs(mod,
		jcfi.New(jcfi.Config{Forward: true, Backward: true, Narrow: true}))
	if err != nil {
		t.Fatalf("jcfi analyze: %v", err)
	}
	if nps.NumClaims() == 0 {
		t.Fatal("no narrowing claim for the provable indirect jump")
	}
	if v := vsa.Verify(mod, nps, nrf); len(v) != 0 {
		t.Fatalf("narrowing proof rejected: %v", v)
	}
}

func TestProofTamperDetected(t *testing.T) {
	mod := assembleProof(t)

	// Widening a claimed frame bound past the frame must be rejected.
	rf, ps, err := core.AnalyzeModuleProofs(mod, elideTool())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	tampered := false
	for fi := range ps.Funcs {
		for ci := range ps.Funcs[fi].Claims {
			c := &ps.Funcs[fi].Claims[ci]
			if c.Kind == vsa.ClaimFrame && !tampered {
				c.Hi = 100 // outside [-frameSize, -1]
				tampered = true
			}
		}
	}
	if !tampered {
		t.Fatal("no frame claim to tamper with")
	}
	if v := vsa.Verify(mod, ps, rf); len(v) == 0 {
		t.Fatal("tampered frame bound accepted")
	}

	// Dropping a claim while its elided rule remains must be rejected: the
	// rule file and proof artifact are cross-checked as a bijection.
	rf, ps, err = core.AnalyzeModuleProofs(mod, elideTool())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	dropped := false
	for fi := range ps.Funcs {
		cs := ps.Funcs[fi].Claims
		for ci := range cs {
			if cs[ci].Kind == vsa.ClaimFrame {
				ps.Funcs[fi].Claims = append(cs[:ci:ci], cs[ci+1:]...)
				dropped = true
				break
			}
		}
		if dropped {
			break
		}
	}
	if !dropped {
		t.Fatal("no claim to drop")
	}
	if v := vsa.Verify(mod, ps, rf); len(v) == 0 {
		t.Fatal("elided rule without a backing claim accepted")
	}

	// An elided rule fabricated without any analysis must be rejected too.
	rf, ps, err = core.AnalyzeModuleProofs(mod, elideTool())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	forged := false
	for i := range rf.Rules {
		r := &rf.Rules[i]
		if r.ID == rules.MemAccess && !forged {
			r.ID = rules.MemAccessSafe
			r.Data[1] = rules.SafeFrame
			forged = true
		}
	}
	if !forged {
		t.Skip("no plain MemAccess rule left to forge")
	}
	if v := vsa.Verify(mod, ps, rf); len(v) == 0 {
		t.Fatal("forged elision accepted")
	}
}

func TestRuleEmissionByteStable(t *testing.T) {
	mod := assembleProof(t)
	for _, tool := range []func() core.Tool{
		func() core.Tool { return elideTool() },
		func() core.Tool {
			return jcfi.New(jcfi.Config{Forward: true, Backward: true, Narrow: true})
		},
	} {
		rf1, ps1, err := core.AnalyzeModuleProofs(mod, tool())
		if err != nil {
			t.Fatalf("analyze 1: %v", err)
		}
		rf2, ps2, err := core.AnalyzeModuleProofs(mod, tool())
		if err != nil {
			t.Fatalf("analyze 2: %v", err)
		}
		if !bytes.Equal(rf1.Marshal(), rf2.Marshal()) {
			t.Fatal("rule file emission is not byte-stable across runs")
		}
		b1, err1 := ps1.Marshal()
		b2, err2 := ps2.Marshal()
		if err1 != nil || err2 != nil {
			t.Fatalf("proof marshal: %v %v", err1, err2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("proof artifact is not byte-stable across runs")
		}
	}
}
