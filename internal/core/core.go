// Package core implements the Janitizer framework itself (Fig. 1): a static
// analyzer that runs strong whole-module analyses and encodes the results as
// rewrite rules, and a dynamic-modifier frontend that loads those rules,
// classifies code as statically-seen or dynamically-discovered, and drives a
// security tool's instrumentation through the dynamic binary modifier.
//
// Security techniques (JASan, JCFI, and the baselines) plug in through the
// Tool interface, providing a static pass able to do cross-block analysis
// and a simpler dynamic fallback pass that works one basic block at a time
// (§3.4.3).
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/dbm"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/vsa"
)

// StaticContext hands a tool's static pass the module plus every core and
// enhanced analysis result (Fig. 2a).
type StaticContext struct {
	Module *obj.Module
	Graph  *cfg.Graph
	// Live is inter-procedural register+flag liveness (§3.3.2, §4.1.2).
	Live *analysis.Liveness
	// Loops is the SCEV-style loop/bound analysis (§3.3.2).
	Loops *analysis.LoopAnalysis
	// Canaries are the detected stack-canary sites (§3.3.3).
	Canaries []analysis.CanarySite
	// DefUse is the diffuse-chain tracing (§3.3.3).
	DefUse *analysis.DefUse
	// Proofs collects the replayable claims behind every VSA-backed
	// elision/narrowing decision a tool makes in this pass.
	Proofs *vsa.ProofSet

	vsaRes *vsa.Result
}

// EnsureVSA lazily runs the value-set analysis over the module, shared by
// every tool consulting it during one static pass.
func (sc *StaticContext) EnsureVSA() *vsa.Result {
	if sc.vsaRes == nil {
		sc.vsaRes = vsa.Analyze(sc.Module, sc.Graph, sc.Canaries)
	}
	return sc.vsaRes
}

// Tool is one security technique plugged into Janitizer.
type Tool interface {
	// Name identifies the tool ("jasan", "jcfi", ...).
	Name() string
	// StaticPass analyzes one module and returns its rewrite rules.
	// Janitizer adds NoOp marking for uncovered blocks afterwards.
	StaticPass(sc *StaticContext) []rules.Rule
	// Instrument rewrites a statically-seen block. instrRules maps
	// run-time instruction addresses to their rules.
	Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr
	// DynFallback rewrites a block never seen statically, using only
	// block-local analysis.
	DynFallback(bc *dbm.BlockContext) []dbm.CInstr
	// RuntimeInit installs the tool's run-time state (trap handlers,
	// shadow regions, target tables) before execution starts.
	RuntimeInit(rt *Runtime) error
}

// ArtifactTool is a Tool whose analysis product is a custom artifact (for
// example internal/jlint's bug report) rather than a rewrite-rule file. The
// service layer routes such tools through AnalyzeArtifact and validates
// fleet peer fills with ValidateArtifact in place of the rules.Unmarshal
// check. Artifacts must be byte-deterministic: the content-addressed cache
// and cross-node verification depend on it.
type ArtifactTool interface {
	Tool
	// AnalyzeArtifact produces the tool's artifact bytes for mod.
	AnalyzeArtifact(mod *obj.Module) ([]byte, error)
	// ValidateArtifact checks that b is a well-formed artifact produced
	// for exactly mod (an untrusted peer fill).
	ValidateArtifact(mod *obj.Module, b []byte) error
}

// AnalyzeModule runs Janitizer's static analyzer over one module for one
// tool: disassembly, CFG recovery over all executable sections, generic and
// enhanced analyses, the tool's custom security analysis, and no-op marking
// of untouched blocks (§3.3.4). It returns the module's rewrite-rule file.
func AnalyzeModule(mod *obj.Module, tool Tool) (*rules.File, error) {
	f, _, err := AnalyzeModuleProofs(mod, tool)
	return f, err
}

// AnalyzeModuleCtx is AnalyzeModule with trace-context propagation: when
// ctx carries an active telemetry span (an anserve request), the
// "core.analyze" span nests under it instead of starting a fresh trace.
func AnalyzeModuleCtx(ctx context.Context, mod *obj.Module, tool Tool) (*rules.File, error) {
	f, _, err := analyzeModuleProofs(ctx, mod, tool)
	return f, err
}

// AnalyzeModuleProofs is AnalyzeModule, additionally returning the proof
// artifact covering every VSA-backed elision/narrowing decision the tool
// made. The artifact is finalized (sorted, per-function metadata attached)
// and may be empty when the tool's configuration proves nothing.
func AnalyzeModuleProofs(mod *obj.Module, tool Tool) (*rules.File, *vsa.ProofSet, error) {
	return analyzeModuleProofs(context.Background(), mod, tool)
}

func analyzeModuleProofs(ctx context.Context, mod *obj.Module, tool Tool) (*rules.File, *vsa.ProofSet, error) {
	sp, _ := telemetry.StartSpanFrom(ctx, "core.analyze",
		telemetry.String("module", mod.Name),
		telemetry.String("tool", toolKey(tool)))
	defer sp.End()

	csp := sp.Child("cfg.build")
	g, err := cfg.Build(mod)
	csp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", mod.Name, err)
	}
	sc := &StaticContext{
		Module: mod,
		Graph:  g,
		Proofs: vsa.NewProofSet(mod.Name, toolKey(tool)),
	}
	for _, pass := range []struct {
		name string
		run  func()
	}{
		{"analysis.liveness", func() { sc.Live = analysis.ComputeLiveness(g, true) }},
		{"analysis.loops", func() { sc.Loops = analysis.AnalyzeLoops(g) }},
		{"analysis.canaries", func() { sc.Canaries = analysis.FindCanaries(g) }},
		{"analysis.defuse", func() { sc.DefUse = analysis.ComputeDefUse(g) }},
	} {
		psp := sp.Child(pass.name)
		pass.run()
		psp.End()
	}
	ssp := sp.Child("tool.static-pass")
	rs := tool.StaticPass(sc)
	ssp.End()

	// No-op marking: every recovered block without a rule gets an
	// explicit NoOp rule, so the dynamic modifier can distinguish
	// "statically proven to need nothing" from "never statically seen".
	covered := map[uint64]bool{}
	for _, r := range rs {
		covered[r.BBAddr] = true
	}
	for start := range g.Blocks {
		if !covered[start] {
			rs = append(rs, rules.Rule{ID: rules.NoOp, BBAddr: start})
		}
	}
	canonicalize(rs)
	sc.Proofs.Finalize(sc.vsaRes)
	sp.SetAttr(telemetry.Int("rules", int64(len(rs))))
	return &rules.File{Module: mod.Name, Rules: rs}, sc.Proofs, nil
}

// toolKey identifies a (tool, configuration) pair in proof artifacts.
func toolKey(tool Tool) string { return ToolKey(tool) }

// ToolKey identifies a (tool, configuration) pair: the tool name plus its
// ConfigKey when it has one. Proof artifacts, rewrite plans and caches all
// key on it so differently-configured instances never alias.
func ToolKey(tool Tool) string {
	if ck, ok := tool.(interface{ ConfigKey() string }); ok {
		return tool.Name() + ":" + ck.ConfigKey()
	}
	return tool.Name()
}

// canonicalize sorts rules into a deterministic total order. Tools and the
// no-op marking above iterate CFG maps, so emission order varies run to run;
// content-addressed caching (internal/anserve) requires that analyzing the
// same module twice marshal to identical bytes. The stable sort preserves a
// tool's relative emission order for rules that share every key field.
func canonicalize(rs []rules.Rule) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := &rs[i], &rs[j]
		if a.BBAddr != b.BBAddr {
			return a.BBAddr < b.BBAddr
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		for k := range a.Data {
			if a.Data[k] != b.Data[k] {
				return a.Data[k] < b.Data[k]
			}
		}
		return false
	})
}

// ModuleAnalyzer abstracts per-module analysis so services can interpose a
// cache or a worker pool between AnalyzeProgram and AnalyzeModule.
// internal/anserve implements it with a content-addressed rule cache and a
// concurrent scheduler; AnalyzerFunc(AnalyzeModule) is the plain serial
// analyzer.
type ModuleAnalyzer interface {
	AnalyzeModule(mod *obj.Module, tool Tool) (*rules.File, error)
}

// AnalyzerFunc adapts a function to the ModuleAnalyzer interface.
type AnalyzerFunc func(mod *obj.Module, tool Tool) (*rules.File, error)

// AnalyzeModule implements ModuleAnalyzer.
func (f AnalyzerFunc) AnalyzeModule(mod *obj.Module, tool Tool) (*rules.File, error) {
	return f(mod, tool)
}

// AnalyzeProgram analyzes the main module and its entire ldd-visible
// dependency closure (§3.3.1), returning one rule file per module. A shared
// library's analysis would be reused across programs; callers may cache the
// returned files — or use internal/anserve, which analyzes the closure
// concurrently against a content-addressed cache.
func AnalyzeProgram(main *obj.Module, reg loader.Registry, tool Tool) (map[string]*rules.File, error) {
	return AnalyzeProgramWith(main, reg, tool, AnalyzerFunc(AnalyzeModule))
}

// AnalyzeProgramWith is AnalyzeProgram with an injected per-module analyzer.
func AnalyzeProgramWith(main *obj.Module, reg loader.Registry, tool Tool,
	az ModuleAnalyzer) (map[string]*rules.File, error) {

	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := make(map[string]*rules.File, len(mods))
	for _, m := range mods {
		f, err := az.AnalyzeModule(m, tool)
		if err != nil {
			return nil, err
		}
		out[m.Name] = f
	}
	return out, nil
}

// CoverageStats counts how blocks were classified at run time — the data
// behind Fig. 14.
type CoverageStats struct {
	// StaticInstrumented blocks hit in a rule table with real rules.
	StaticInstrumented uint64
	// StaticNoOp blocks hit in a rule table with only a NoOp rule.
	StaticNoOp uint64
	// Fallback blocks missed every table and went through the dynamic
	// analyzer (dynamically generated, dlopened without rules, or
	// statically undiscovered).
	Fallback uint64
}

// Total returns the number of distinct blocks translated.
func (c CoverageStats) Total() uint64 {
	return c.StaticInstrumented + c.StaticNoOp + c.Fallback
}

// DynamicFraction returns the fraction of distinct executed blocks that were
// only seen dynamically (Fig. 14).
func (c CoverageStats) DynamicFraction() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Fallback) / float64(c.Total())
}

// Runtime is Janitizer's dynamic-modifier frontend: per-module rewrite-rule
// hash tables with PIC load-time adjustment (Fig. 5), the static/dynamic
// code classifier (Fig. 4), and the bridge to the tool's handlers.
type Runtime struct {
	M    *vm.Machine
	Proc *loader.Process
	Tool Tool
	// Files are the rule files available to the frontend, keyed by module
	// name — the per-module files written by the static analyzer. Modules
	// loaded later (dlopen) with an associated file get tables too
	// (§3.4.3, footnote 1).
	Files map[string]*rules.File

	// DBM is the underlying dynamic binary modifier.
	DBM *dbm.DBM
	// Coverage is the classifier's accounting.
	Coverage CoverageStats

	tables map[string]*rules.Table
}

// NewRuntime wires a tool into a loaded process. It must be created before
// modules are loaded so the module-load hook can build rule tables; use
// NewRuntime followed by Proc.LoadProgram.
func NewRuntime(m *vm.Machine, proc *loader.Process, tool Tool,
	files map[string]*rules.File) *Runtime {

	rt := &Runtime{
		M: m, Proc: proc, Tool: tool, Files: files,
		tables: map[string]*rules.Table{},
	}
	rt.DBM = dbm.New(m, proc, &hybridClient{rt: rt})
	proc.OnModuleLoad = append(proc.OnModuleLoad, rt.onModuleLoad)
	proc.OnModuleUnload = append(proc.OnModuleUnload, rt.onModuleUnload)
	return rt
}

// onModuleLoad builds the module's rewrite-rule hash table at load time,
// adjusting addresses by the load base for PIC modules (Fig. 5a).
func (rt *Runtime) onModuleLoad(lm *loader.LoadedModule) {
	f, ok := rt.Files[lm.Name]
	if !ok {
		return // no rule file: all its blocks go to the dynamic analyzer
	}
	base := uint64(0)
	if lm.PIC {
		base = lm.LoadBase
	}
	rt.tables[lm.Name] = rules.NewTable(f, base)
}

// onModuleUnload drops the module's rule table — a constant-time delete,
// which is the point of keeping per-module tables (footnote 2: no scan for
// stale hints even when another module later reuses the addresses) — and
// evicts its translated code.
func (rt *Runtime) onModuleUnload(lm *loader.LoadedModule) {
	delete(rt.tables, lm.Name)
	lo, span := lm.Extent()
	start := lm.RuntimeAddr(lo)
	rt.DBM.FlushRange(start, start+span)
}

// Table returns the rule table for a module name, or nil.
func (rt *Runtime) Table(module string) *rules.Table { return rt.tables[module] }

// Run initialises the tool runtime and executes the program from entry under
// the hybrid dynamic modifier.
func (rt *Runtime) Run(entry uint64) error {
	if err := rt.Tool.RuntimeInit(rt); err != nil {
		return fmt.Errorf("core: runtime init: %w", err)
	}
	return rt.DBM.Run(entry)
}

// hybridClient is the DBM client implementing Fig. 4: classify each new
// block via the per-module hash tables, then route it to the rule
// interpreter (hit) or the dynamic analyzer (miss).
type hybridClient struct {
	rt *Runtime
}

func (h *hybridClient) OnBlock(ctx *dbm.BlockContext) []dbm.CInstr {
	rt := h.rt
	var tab *rules.Table
	if ctx.Module != nil {
		tab = rt.tables[ctx.Module.Name]
	}
	if tab != nil {
		if _, hit := tab.BlockRules(ctx.Start); hit {
			// (3b) Address hit: statically seen. Collect instruction-
			// level rules across the WHOLE dynamic block: the block
			// builder stops at the first executed CTI, so one dynamic
			// block may span several static blocks (a branch target
			// mid-way makes the static CFG split where the dynamic
			// trace does not), and a NO_OP on the first static block
			// says nothing about rules attached further along.
			instrRules := map[uint64][]rules.Rule{}
			n := 0
			for _, in := range ctx.AppInstrs {
				if irs := tab.InstrRules(in.Addr); len(irs) > 0 {
					instrRules[in.Addr] = irs
					n += len(irs)
				}
			}
			if n == 0 {
				// (4b) No modification needed anywhere: place as-is.
				rt.Coverage.StaticNoOp++
				return dbm.NullClient{}.OnBlock(ctx)
			}
			rt.Coverage.StaticInstrumented++
			return rt.Tool.Instrument(ctx, instrRules)
		}
	}
	// (3a) Miss: dynamically generated, dlopened without rules, or
	// statically undiscovered code — the dynamic analyzer takes it.
	rt.Coverage.Fallback++
	return rt.Tool.DynFallback(ctx)
}
