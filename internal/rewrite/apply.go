package rewrite

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/obj"
)

// Apply bakes a rewrite plan into a JEF module, Zipr-style: every function
// the plan provably covers is copied — instrumentation fragments inlined
// around each anchor — into a fresh `.jrw` section, and the original code
// is pinned in place with 5-byte trampolines at every address the rest of
// the program may still transfer to (function entries and proven
// jump-table targets). Original bytes outside trampoline windows are left
// untouched, so any statically-invisible entry into a covered function
// still executes correct (merely uninstrumented) application code.
//
// Applicability is proof-gated per function: a function is rewritten only
// when the static CFG fully accounts for it — every block analysed, no
// unproven indirect jumps, no statically-visible entries into its interior
// — and refused otherwise, with the refusal reason recorded in the
// manifest so the hybrid backend knows to leave it to the dynamic
// modifier. Refusing is always sound; rewriting unsoundly never is.
type Rewritten struct {
	Module   *obj.Module
	Manifest *Manifest
}

// Manifest records what Apply did, in link-time addresses: consumers
// rebase by the module's actual load base (after verifying it matches the
// plan's assumption).
type Manifest struct {
	// Module, AssumedBase and ModuleID echo the plan's placement
	// assumption; runners must refuse to use the rewritten module if the
	// loader assigns a different base or load order.
	Module      string
	AssumedBase uint64
	ModuleID    int32
	// CopyLo/CopyHi bound the `.jrw` section (link addresses).
	CopyLo, CopyHi uint64
	// Alias maps every covered block's original start to its copy.
	Alias map[uint64]uint64
	// Pinned lists original addresses overwritten with trampolines.
	Pinned []uint64
	// TrapOrigin maps each copied trap's link address to the application
	// address the trap should report (plan fragments stamp traps with
	// their anchor; copied application traps map to themselves). Values
	// are runtime addresses under AssumedBase.
	TrapOrigin map[uint64]uint64
	// Covered and Refused partition the module's functions.
	Covered []CoveredFunc
	Refused []Refusal
	// Anchors counts instrumentation entries materialised into copies.
	Anchors int
}

// CoveredFunc is one statically rewritten function (link addresses).
type CoveredFunc struct {
	Name       string
	Entry, End uint64
}

// Refusal is one function the applier declined to rewrite and why.
type Refusal struct {
	Fn     string
	Entry  uint64
	Reason string
}

// trampolineLen is the encoded size of the pin-site `jmp disp32`.
const trampolineLen = uint64(5)

// copyAlign aligns the `.jrw` section past the module extent.
const copyAlign = uint64(0x1000)

// Apply rewrites mod according to plan. The returned module replaces the
// original under the same name; mod itself is not modified.
func Apply(mod *obj.Module, plan *Plan) (*Rewritten, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Module != mod.Name {
		return nil, fmt.Errorf("rewrite: plan is for %q, module is %q", plan.Module, mod.Name)
	}
	if plan.PIC != mod.PIC {
		return nil, fmt.Errorf("rewrite: plan PIC flag disagrees with module %q", mod.Name)
	}
	g, err := cfg.Build(mod)
	if err != nil {
		return nil, fmt.Errorf("rewrite: cfg %s: %w", mod.Name, err)
	}
	ap := &applier{mod: mod, plan: plan, g: g, delta: plan.AssumedBase}
	return ap.run()
}

type applier struct {
	mod   *obj.Module
	plan  *Plan
	g     *cfg.Graph
	delta uint64 // runtime = link + delta under the plan's assumption

	refused  []Refusal
	interior map[*cfg.Function]bool
	jtPins   map[*cfg.Function][]uint64
}

// entryAt returns the plan entry anchored at link address a, or nil.
func (ap *applier) entryAt(a uint64) *Entry { return ap.plan.EntryAt(a + ap.delta) }

func (ap *applier) run() (*Rewritten, error) {
	ap.findInteriorEntries()
	ap.collectJumpTablePins()

	var accepted []*cfg.Function
	for _, f := range ap.g.Funcs {
		if reason := ap.gate(f); reason != "" {
			ap.refused = append(ap.refused, Refusal{Fn: f.Name, Entry: f.Entry, Reason: reason})
			continue
		}
		accepted = append(accepted, f)
	}

	// Layout and encode; a displacement overflow refuses the offending
	// function and retries (practically never loops more than once).
	for {
		man, code, relocs, failed, reason, err := ap.emit(accepted)
		if err != nil {
			return nil, err
		}
		if failed == nil {
			return ap.assemble(man, code, relocs)
		}
		ap.refused = append(ap.refused, Refusal{Fn: failed.Name, Entry: failed.Entry, Reason: reason})
		kept := accepted[:0]
		for _, f := range accepted {
			if f != failed {
				kept = append(kept, f)
			}
		}
		accepted = kept
	}
}

// findInteriorEntries marks functions with statically-visible control
// transfers into their interior: direct edges from other functions and
// data-embedded code pointers that bypass the entry. Such functions are
// genuinely multi-entry and cannot be soundly redirected through a single
// entry trampoline, so they are refused.
func (ap *applier) findInteriorEntries() {
	ap.interior = map[*cfg.Function]bool{}
	for _, b := range ap.g.Blocks {
		for _, s := range b.Succs {
			sf := ap.g.FuncAt(s)
			if sf != nil && sf != b.Fn && s != sf.Entry {
				ap.interior[sf] = true
			}
		}
	}
	// Aligned code pointers in data sections (the same scan the CFG
	// builder seeds from): candidate dynamic entries.
	for i := range ap.mod.Sections {
		sec := &ap.mod.Sections[i]
		if sec.Executable() {
			continue
		}
		for off := 0; off+8 <= len(sec.Data); off += 8 {
			v := binary.LittleEndian.Uint64(sec.Data[off:])
			vf := ap.g.FuncAt(v)
			if vf != nil && v != vf.Entry {
				ap.interior[vf] = true
			}
		}
	}
}

// collectJumpTablePins maps each function to the proven jump-table targets
// inside it. Covered functions keep those addresses pinned: the copied
// jmpi still reads the original table, so its original-address targets
// must bounce into the copy.
func (ap *applier) collectJumpTablePins() {
	ap.jtPins = map[*cfg.Function][]uint64{}
	for _, jt := range ap.g.JumpTables {
		for _, t := range jt.Targets {
			if tf := ap.g.FuncAt(t); tf != nil {
				ap.jtPins[tf] = append(ap.jtPins[tf], t)
			}
		}
	}
	for f := range ap.jtPins {
		ap.jtPins[f] = sortedUniq(ap.jtPins[f])
	}
}

// fallsThrough reports whether execution can continue past op at the next
// sequential address (conditional branches, calls, system instructions and
// plain straight-line ops all do; only unconditional transfers do not).
func fallsThrough(op isa.Op) bool {
	switch op {
	case isa.OpJmp, isa.OpJmpI, isa.OpRet, isa.OpHlt:
		return false
	}
	return true
}

// gate decides whether f can be soundly rewritten; it returns the refusal
// reason, or "" to accept.
func (ap *applier) gate(f *cfg.Function) string {
	if sec := ap.mod.SectionAt(f.Entry); sec != nil && sec.Name == ".plt" {
		return "plt stub"
	}
	if ap.interior[f] {
		return "statically-visible interior entry"
	}
	if len(f.Blocks) == 0 || ap.g.Blocks[f.Entry] == nil {
		return "entry is not a discovered block"
	}
	for i, b := range f.Blocks {
		if !ap.plan.HasBlock(b.Start + ap.delta) {
			return "block outside the plan's static hit set"
		}
		if i > 0 && b.Start < f.Blocks[i-1].End() {
			return "overlapping blocks"
		}
		term := b.Terminator()
		if fallsThrough(term.Op) {
			if i == len(f.Blocks)-1 {
				return "falls through past the last block"
			}
			if f.Blocks[i+1].Start != b.End() {
				return "undiscovered code after a fall-through block"
			}
		}
		if term.Op == isa.OpJmpI && ap.g.JumpTables[term.Addr] == nil {
			return "unproven indirect jump"
		}
		for j := range b.Instrs {
			if reason := ap.gateAnchor(&b.Instrs[j]); reason != "" {
				return reason
			}
		}
	}
	for _, pin := range ap.pins(f) {
		if ap.g.Blocks[pin] == nil || ap.g.FuncAt(pin) != f {
			return "pinned target is not a block of this function"
		}
		if pin+trampolineLen > f.End {
			return "no room for an entry trampoline"
		}
		for a := pin + 1; a < pin+trampolineLen; a++ {
			if ap.g.Blocks[a] != nil {
				return "trampoline would overwrite a branch target"
			}
		}
	}
	for _, r := range ap.mod.Relocs {
		if r.Where < f.End && r.Where+8 > f.Entry {
			return "relocation inside the code range"
		}
	}
	return ""
}

// gateAnchor checks that the plan entry (if any) at instruction in can be
// materialised ahead of time.
func (ap *applier) gateAnchor(in *isa.Instr) string {
	e := ap.entryAt(in.Addr)
	if e == nil {
		return ""
	}
	if e.AnchorOp != uint8(in.Op) {
		return "plan anchor does not match the decoded instruction"
	}
	if len(e.After) > 0 && in.IsCTI() {
		return "instrumentation after a control transfer"
	}
	for _, frag := range [][]MetaInstr{e.Before, e.After} {
		for i := range frag {
			mi := &frag[i]
			op := isa.Op(mi.Op)
			switch op {
			case isa.OpLdPC, isa.OpLeaPC:
				return "pc-relative meta instruction"
			}
			min := isa.Instr{Op: op}
			if min.IsCTI() {
				if op != isa.OpJmp && !min.IsCondBranch() {
					return "unsupported meta control transfer"
				}
				if mi.JumpTo < 0 {
					return "meta control transfer with application semantics"
				}
			}
		}
	}
	return ""
}

// pins returns the original addresses of f that must stay executable after
// rewriting: the entry plus every proven jump-table target inside f.
func (ap *applier) pins(f *cfg.Function) []uint64 {
	return sortedUniq(append([]uint64{f.Entry}, ap.jtPins[f]...))
}

// blockCopySize returns the encoded size of b's copy: fragments plus the
// application instructions themselves.
func (ap *applier) blockCopySize(b *cfg.BasicBlock) uint64 {
	n := uint64(0)
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if e := ap.entryAt(in.Addr); e != nil {
			for j := range e.Before {
				n += uint64(isa.EncodedSize(isa.Op(e.Before[j].Op)))
			}
			for j := range e.After {
				n += uint64(isa.EncodedSize(isa.Op(e.After[j].Op)))
			}
		}
		n += uint64(in.Size)
	}
	return n
}

// emit lays out and encodes the copies for the accepted functions. On a
// displacement overflow it reports the offending function so the caller
// can refuse it and retry; otherwise it returns the manifest, the `.jrw`
// code bytes and the relocations the copies need.
func (ap *applier) emit(accepted []*cfg.Function) (*Manifest, []byte, []obj.Reloc, *cfg.Function, string, error) {
	lo, span := ap.mod.Extent()
	copyBase := (lo + span + copyAlign - 1) &^ (copyAlign - 1)

	man := &Manifest{
		Module:      ap.mod.Name,
		AssumedBase: ap.plan.AssumedBase,
		ModuleID:    ap.plan.ModuleID,
		CopyLo:      copyBase,
		Alias:       map[uint64]uint64{},
		TrapOrigin:  map[uint64]uint64{},
	}

	// Pass A: assign copy addresses to every block.
	cursor := copyBase
	for _, f := range accepted {
		for _, b := range f.Blocks {
			man.Alias[b.Start] = cursor
			cursor += ap.blockCopySize(b)
		}
	}
	man.CopyHi = cursor

	// Pass B: encode.
	var code []byte
	var relocs []obj.Reloc
	at := func() uint64 { return copyBase + uint64(len(code)) }
	for _, f := range accepted {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				e := ap.entryAt(in.Addr)
				appAddr := at()
				if e != nil {
					appAddr += fragSize(e.Before)
				}
				if e != nil {
					frag, rl, err := ap.encodeFrag(e.Before, at(), appAddr, in, man)
					if err != nil {
						return nil, nil, nil, f, err.Error(), nil
					}
					code = append(code, frag...)
					relocs = append(relocs, rl...)
					man.Anchors++
				}
				app, err := ap.encodeApp(in, at(), man)
				if err != nil {
					return nil, nil, nil, f, err.Error(), nil
				}
				code = append(code, app...)
				if e != nil {
					frag, rl, err := ap.encodeFrag(e.After, at(), appAddr, in, man)
					if err != nil {
						return nil, nil, nil, f, err.Error(), nil
					}
					code = append(code, frag...)
					relocs = append(relocs, rl...)
				}
			}
		}
		man.Covered = append(man.Covered, CoveredFunc{Name: f.Name, Entry: f.Entry, End: f.End})
	}
	if at() != man.CopyHi {
		return nil, nil, nil, nil, "", fmt.Errorf(
			"rewrite: internal error: sized %#x but encoded %#x", man.CopyHi, at())
	}
	man.Refused = append([]Refusal(nil), ap.refused...)
	sort.Slice(man.Refused, func(i, j int) bool { return man.Refused[i].Entry < man.Refused[j].Entry })
	for _, f := range accepted {
		man.Pinned = append(man.Pinned, ap.pins(f)...)
	}
	man.Pinned = sortedUniq(man.Pinned)
	return man, code, relocs, nil, "", nil
}

func fragSize(frag []MetaInstr) uint64 {
	n := uint64(0)
	for i := range frag {
		n += uint64(isa.EncodedSize(isa.Op(frag[i].Op)))
	}
	return n
}

// encodeFrag encodes one fragment starting at addr. appAddr is the copy
// address of the anchor's application instruction (return-address
// immediates are recomputed against it); in is the anchor.
func (ap *applier) encodeFrag(frag []MetaInstr, addr, appAddr uint64,
	in *isa.Instr, man *Manifest) ([]byte, []obj.Reloc, error) {

	// Fragment item addresses, plus the address just past the fragment
	// (JumpTo == len(frag) falls through to it).
	addrs := make([]uint64, len(frag)+1)
	a := addr
	for i := range frag {
		addrs[i] = a
		a += uint64(isa.EncodedSize(isa.Op(frag[i].Op)))
	}
	addrs[len(frag)] = a

	var code []byte
	var relocs []obj.Reloc
	for i := range frag {
		mi := &frag[i]
		min := mi.Instr()
		min.Addr, min.Size = addrs[i], isa.EncodedSize(isa.Op(mi.Op))
		if min.IsCTI() {
			target := addrs[mi.JumpTo]
			d := int64(target) - int64(addrs[i]+uint64(min.Size))
			if d != int64(int32(d)) {
				return nil, nil, fmt.Errorf("meta branch displacement overflow")
			}
			min.Disp = int32(d)
		}
		if mi.Reloc == uint8(dbm.RelocRetAddr) {
			// The return address the instrumentation must record is the
			// anchor's fall-through — in the copy, not the original.
			min.Imm = int64(appAddr + uint64(in.Size))
			if ap.plan.PIC {
				relocs = append(relocs, obj.Reloc{Kind: obj.RelRebase, Where: addrs[i] + 2})
			}
		}
		if min.Op == isa.OpTrap {
			man.TrapOrigin[addrs[i]] = mi.Addr
		}
		code = isa.Encode(code, &min)
	}
	return code, relocs, nil
}

// encodeApp encodes the copy of one application instruction at addr,
// retargeting direct branches through the alias map and rebasing
// pc-relative operands so they keep addressing the original image.
func (ap *applier) encodeApp(in *isa.Instr, addr uint64, man *Manifest) ([]byte, error) {
	out := *in
	out.Addr = addr
	next := addr + uint64(in.Size)
	origNext := in.Addr + uint64(in.Size)
	switch {
	case in.Op == isa.OpJmp || in.Op == isa.OpCall || in.IsCondBranch():
		target := in.Target()
		if alias, ok := man.Alias[target]; ok {
			target = alias
		}
		d := int64(target) - int64(next)
		if d != int64(int32(d)) {
			return nil, fmt.Errorf("application branch displacement overflow")
		}
		out.Disp = int32(d)
	case in.Op == isa.OpLdPC || in.Op == isa.OpLeaPC:
		eff := origNext + uint64(int64(in.Disp))
		d := int64(eff) - int64(next)
		if d != int64(int32(d)) {
			return nil, fmt.Errorf("pc-relative displacement overflow")
		}
		out.Disp = int32(d)
	case in.Op == isa.OpTrap:
		man.TrapOrigin[addr] = in.Addr + ap.delta
	}
	return isa.Encode(nil, &out), nil
}

// assemble clones the module, patches the trampolines and attaches the
// `.jrw` section.
func (ap *applier) assemble(man *Manifest, code []byte, relocs []obj.Reloc) (*Rewritten, error) {
	out := *ap.mod
	out.Sections = make([]obj.Section, len(ap.mod.Sections))
	for i := range ap.mod.Sections {
		out.Sections[i] = ap.mod.Sections[i]
		out.Sections[i].Data = append([]byte(nil), ap.mod.Sections[i].Data...)
	}
	for _, pin := range man.Pinned {
		sec := sectionAt(&out, pin)
		if sec == nil {
			return nil, fmt.Errorf("rewrite: pin %#x outside every section", pin)
		}
		alias := man.Alias[pin]
		d := int64(alias) - int64(pin+trampolineLen)
		if d != int64(int32(d)) {
			return nil, fmt.Errorf("rewrite: trampoline displacement overflow at %#x", pin)
		}
		jmp := isa.Instr{Op: isa.OpJmp, Disp: int32(d)}
		b := isa.Encode(nil, &jmp)
		copy(sec.Data[pin-sec.Addr:], b)
	}
	if len(code) > 0 {
		out.Sections = append(out.Sections, obj.Section{
			Name: ".jrw", Addr: man.CopyLo, Flags: obj.SecExec, Data: code,
		})
		out.Relocs = append(append([]obj.Reloc(nil), ap.mod.Relocs...), relocs...)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: rewritten %s invalid: %w", ap.mod.Name, err)
	}
	return &Rewritten{Module: &out, Manifest: man}, nil
}

// sectionAt finds the section containing addr in the cloned module (the
// obj helper works on the receiver, which here must be the clone so the
// patch lands in the cloned data).
func sectionAt(m *obj.Module, addr uint64) *obj.Section {
	for i := range m.Sections {
		s := &m.Sections[i]
		if addr >= s.Addr && addr < s.Addr+uint64(len(s.Data)) {
			return s
		}
	}
	return nil
}
