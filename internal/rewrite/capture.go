package rewrite

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vm"
)

// CapturePlans runs the tool's static planning hooks over every rule anchor
// of every module in main's dependency closure and records the emitted
// meta-code as one Plan per instrumented module. The tool must be a fresh
// instance dedicated to the capture (its planning hooks may accumulate
// per-run accounting) and must implement core.PlannedTool — per-instruction
// hooks are what make a captured fragment valid at any block the anchor
// appears in, which is the property the static applier relies on.
//
// Capture loads the program into a scratch machine so anchors decode from
// relocated memory exactly as the dynamic modifier would see them, and so
// PIC anchors resolve under the same deterministic loader bases a real run
// uses. Each plan records that assumption (AssumedBase, ModuleID); the
// run-time consumers refuse plans whose assumption no longer holds.
func CapturePlans(main *obj.Module, reg loader.Registry,
	files map[string]*rules.File, tool core.Tool) (map[string]*Plan, error) {

	pt, ok := tool.(core.PlannedTool)
	if !ok {
		return nil, fmt.Errorf("rewrite: tool %s does not expose per-instruction plans", tool.Name())
	}

	m := vm.New()
	m.InstallDefaultServices()
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	if _, err := proc.LoadProgram(main); err != nil {
		return nil, fmt.Errorf("rewrite: capture load: %w", err)
	}
	if err := tool.RuntimeInit(rt); err != nil {
		return nil, fmt.Errorf("rewrite: capture runtime init: %w", err)
	}

	key := core.ToolKey(tool)
	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}
	plans := make(map[string]*Plan, len(mods))
	for _, mod := range mods {
		f := files[mod.Name]
		if f == nil {
			continue
		}
		lm := proc.ModuleByName(mod.Name)
		tab := rt.Table(mod.Name)
		if lm == nil || tab == nil {
			return nil, fmt.Errorf("rewrite: module %s has rules but never loaded", mod.Name)
		}
		p, err := captureModule(m, rt, pt, lm, f)
		if err != nil {
			return nil, err
		}
		p.Tool = key
		plans[mod.Name] = p
	}
	return plans, nil
}

func captureModule(m *vm.Machine, rt *core.Runtime, pt core.PlannedTool,
	lm *loader.LoadedModule, f *rules.File) (*Plan, error) {

	base := uint64(0)
	if lm.PIC {
		base = lm.LoadBase
	}
	p := &Plan{
		Module:      lm.Name,
		ModuleID:    int32(lm.ID),
		PIC:         lm.PIC,
		AssumedBase: base,
	}

	var blocks, anchors []uint64
	for i := range f.Rules {
		r := &f.Rules[i]
		blocks = append(blocks, r.BBAddr+base)
		// CFITarget rules are target-set metadata, not instrumentation:
		// their Instr is an indirect-branch *candidate target* (which may
		// not even be an instruction boundary), and every tool's plan
		// ignores them at emission. Anchors are instrumentation sites only.
		if r.Instr != 0 && r.ID != rules.CFITarget {
			anchors = append(anchors, r.Instr+base)
		}
	}
	p.BlockAddrs = sortedUniq(blocks)
	anchors = sortedUniq(anchors)

	tab := rt.Table(lm.Name)
	var buf [isa.MaxInstrLen]byte
	for _, anchor := range anchors {
		irs := tab.InstrRules(anchor)
		if len(irs) == 0 {
			continue
		}
		// Decode the anchor from loaded (relocated) memory — the same
		// bytes the dynamic modifier's block builder decodes.
		if err := m.Mem.ReadBytes(anchor, buf[:]); err != nil {
			return nil, fmt.Errorf("rewrite: %s: read anchor %#x: %w", lm.Name, anchor, err)
		}
		in, err := isa.Decode(buf[:], anchor)
		if err != nil {
			return nil, fmt.Errorf("rewrite: %s: decode anchor %#x: %w", lm.Name, anchor, err)
		}
		bc := &dbm.BlockContext{
			DBM:       rt.DBM,
			Start:     anchor,
			AppInstrs: []isa.Instr{in},
			Module:    lm,
		}
		plan := pt.PlanStatic(bc, map[uint64][]rules.Rule{anchor: irs})
		var eb, ea dbm.Emitter
		plan.Before(&eb, 0)
		plan.After(&ea, 0)
		before, err := fragFromEmitter(eb.Out)
		if err != nil {
			return nil, fmt.Errorf("rewrite: %s anchor %#x: %w", lm.Name, anchor, err)
		}
		after, err := fragFromEmitter(ea.Out)
		if err != nil {
			return nil, fmt.Errorf("rewrite: %s anchor %#x: %w", lm.Name, anchor, err)
		}
		p.Entries = append(p.Entries, Entry{
			Anchor:   anchor,
			AnchorOp: uint8(in.Op),
			Before:   before,
			After:    after,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: captured plan invalid: %w", err)
	}
	return p, nil
}
