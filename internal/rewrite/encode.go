package rewrite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialisation of rewrite plans, mirroring the JEF module codec:
// magic, fixed header, counted tables. All integers little-endian, strings
// length-prefixed (uint32) UTF-8. The encoding is deterministic — a plan
// marshals to the same bytes every time — so cached plans are
// content-addressable and byte-comparable across analysis runs.

// PlanMagic identifies a serialised rewrite plan.
var PlanMagic = [4]byte{'J', 'P', 'L', '1'}

// ErrBadPlanMagic is returned when the input is not a rewrite plan.
var ErrBadPlanMagic = errors.New("rewrite: bad magic (not a rewrite plan)")

// ErrMalformedPlan is wrapped by every ReadPlan failure past the magic
// check: truncated tables, unreasonable counts, or trailing garbage. The
// fuzz harness asserts errors.Is(err, ErrMalformedPlan) so hostile plans
// are rejected with a typed error rather than a panic.
var ErrMalformedPlan = errors.New("rewrite: malformed plan")

// Count sanity caps: a hostile header can declare counts far beyond any
// real plan; capping them up front bounds the work and allocation a
// malformed plan can demand.
const (
	maxPlanBlocks  = 1 << 24
	maxPlanEntries = 1 << 22
	maxPlanFrag    = 1 << 16
)

type planWriter struct {
	buf bytes.Buffer
}

func (w *planWriter) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *planWriter) u32(v uint32) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *planWriter) u64(v uint64) { binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *planWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

type planReader struct {
	b   []byte
	off int
	err error
}

func (r *planReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated (%s at offset %d)",
			ErrMalformedPlan, what, r.off)
	}
}

func (r *planReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *planReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *planReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *planReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func writeMeta(w *planWriter, mi *MetaInstr) {
	w.u8(mi.Op)
	w.u8(mi.Rd)
	w.u8(mi.Rb)
	w.u8(mi.Ri)
	w.u64(uint64(mi.Imm))
	w.u32(uint32(mi.Disp))
	w.u64(mi.Addr)
	w.u32(mi.Size)
	w.u32(uint32(mi.JumpTo))
	w.u8(mi.CC)
	w.u8(mi.Reloc)
}

func readMeta(r *planReader) MetaInstr {
	var mi MetaInstr
	mi.Op = r.u8()
	mi.Rd = r.u8()
	mi.Rb = r.u8()
	mi.Ri = r.u8()
	mi.Imm = int64(r.u64())
	mi.Disp = int32(r.u32())
	mi.Addr = r.u64()
	mi.Size = r.u32()
	mi.JumpTo = int32(r.u32())
	mi.CC = r.u8()
	mi.Reloc = r.u8()
	return mi
}

// Marshal serialises the plan. The output is byte-stable: equal plans
// always produce equal bytes.
func (p *Plan) Marshal() []byte {
	var w planWriter
	w.buf.Write(PlanMagic[:])
	w.str(p.Module)
	w.str(p.Tool)
	w.u32(uint32(p.ModuleID))
	if p.PIC {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(p.AssumedBase)

	w.u32(uint32(len(p.BlockAddrs)))
	for _, a := range p.BlockAddrs {
		w.u64(a)
	}
	w.u32(uint32(len(p.Entries)))
	for i := range p.Entries {
		e := &p.Entries[i]
		w.u64(e.Anchor)
		w.u8(e.AnchorOp)
		w.u32(uint32(len(e.Before)))
		for j := range e.Before {
			writeMeta(&w, &e.Before[j])
		}
		w.u32(uint32(len(e.After)))
		for j := range e.After {
			writeMeta(&w, &e.After[j])
		}
	}
	return w.buf.Bytes()
}

// ReadPlan deserialises a plan. Structural invariants beyond size bounds
// (sortedness, jump ranges) are the caller's job via Plan.Validate.
func ReadPlan(data []byte) (*Plan, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], PlanMagic[:]) {
		return nil, ErrBadPlanMagic
	}
	r := &planReader{b: data, off: 4}
	p := &Plan{}
	p.Module = r.str()
	p.Tool = r.str()
	p.ModuleID = int32(r.u32())
	p.PIC = r.u8() != 0
	p.AssumedBase = r.u64()

	nblk := int(r.u32())
	if r.err == nil && nblk > maxPlanBlocks {
		return nil, fmt.Errorf("%w: unreasonable block count %d",
			ErrMalformedPlan, nblk)
	}
	for i := 0; i < nblk && r.err == nil; i++ {
		p.BlockAddrs = append(p.BlockAddrs, r.u64())
	}
	nent := int(r.u32())
	if r.err == nil && nent > maxPlanEntries {
		return nil, fmt.Errorf("%w: unreasonable entry count %d",
			ErrMalformedPlan, nent)
	}
	for i := 0; i < nent && r.err == nil; i++ {
		var e Entry
		e.Anchor = r.u64()
		e.AnchorOp = r.u8()
		for _, frag := range []*[]MetaInstr{&e.Before, &e.After} {
			n := int(r.u32())
			if r.err != nil {
				break
			}
			if n > maxPlanFrag {
				return nil, fmt.Errorf("%w: unreasonable fragment length %d",
					ErrMalformedPlan, n)
			}
			for j := 0; j < n && r.err == nil; j++ {
				*frag = append(*frag, readMeta(r))
			}
		}
		p.Entries = append(p.Entries, e)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after plan end",
			ErrMalformedPlan, len(r.b)-r.off)
	}
	return p, nil
}
