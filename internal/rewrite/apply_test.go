package rewrite

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/jcfi"
	"repro/internal/obj"
)

func refusalFor(man *Manifest, fn string) string {
	for _, r := range man.Refused {
		if r.Fn == fn {
			return r.Reason
		}
	}
	return ""
}

func coveredNames(man *Manifest) map[string]bool {
	out := map[string]bool{}
	for _, c := range man.Covered {
		out[c.Name] = true
	}
	return out
}

// TestApplyBackToBackAnchors rewrites a block whose instrumented
// instructions are immediately adjacent: each anchor's fragments must nest
// correctly around its own instruction, and the structural verifier must
// find the copy region exactly equal to the plan.
func TestApplyBackToBackAnchors(t *testing.T) {
	main, reg := buildProgram(t, workProg)
	_, plans := captureFor(t, main, reg, jasanTool)
	p := plans[main.Name]
	if p == nil {
		t.Fatal("no plan for the main module")
	}
	if len(p.Entries) < 4 {
		t.Fatalf("expected at least 4 anchors (2 stores + 2 loads), got %d", len(p.Entries))
	}

	rw, err := Apply(main, p)
	if err != nil {
		t.Fatal(err)
	}
	man := rw.Manifest
	if !coveredNames(man)["work"] {
		t.Fatalf("work not covered; refused: %+v", man.Refused)
	}
	if man.Anchors < 4 {
		t.Fatalf("only %d anchors baked in", man.Anchors)
	}
	// The exit path falls through past its function's last block (the exit
	// syscall could, statically, return) — the applier must refuse it, not
	// rewrite it unsoundly.
	if r := refusalFor(man, "_start"); !strings.Contains(r, "falls through") {
		t.Fatalf("_start refusal = %q, want falls-through refusal", r)
	}

	vio, err := Verify(main, p, rw)
	if err != nil {
		t.Fatal(err)
	}
	if len(vio) != 0 {
		t.Fatalf("verifier violations:\n%s", strings.Join(vio, "\n"))
	}
}

// TestRefusesTrampolineAtModuleEnd pins a 1-byte function (a bare ret) at
// the very end of .text: the 5-byte entry trampoline would run past the
// function, so the applier must refuse it and leave the original intact.
func TestRefusesTrampolineAtModuleEnd(t *testing.T) {
	const src = `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call tiny
    mov r1, 0
    mov r0, 1
    syscall
tiny:
    ret
`
	main, reg := buildProgram(t, src)
	newTool := func() core.Tool { return jcfi.New(jcfi.DefaultConfig) }
	_, plans := captureFor(t, main, reg, newTool)
	p := plans[main.Name]
	if p == nil {
		t.Fatal("no plan for the main module")
	}
	rw, err := Apply(main, p)
	if err != nil {
		t.Fatal(err)
	}
	man := rw.Manifest
	if r := refusalFor(man, "tiny"); !strings.Contains(r, "no room for an entry trampoline") {
		t.Fatalf("tiny refusal = %q, want no-room refusal; covered: %+v", r, man.Covered)
	}
	if coveredNames(man)["tiny"] {
		t.Fatal("tiny both covered and refused")
	}
	// The refused function's bytes are untouched.
	var tinyAddr uint64
	for _, s := range main.Symbols {
		if s.Name == "tiny" {
			tinyAddr = s.Addr
		}
	}
	if tinyAddr == 0 {
		t.Fatal("tiny symbol missing")
	}
	sec := rw.Module.SectionAt(tinyAddr)
	in, err := isa.Decode(sec.Data[tinyAddr-sec.Addr:], tinyAddr)
	if err != nil || in.Op != isa.OpRet {
		t.Fatalf("tiny's bytes were modified: %v %v", in.Op, err)
	}
}

// TestRefusesInteriorEntryFunction plants an aligned data word pointing at
// the second instruction of the instrumented function: a statically-visible
// interior entry. The applier must refuse the whole function — an entry
// trampoline cannot guard an entry that bypasses it.
func TestRefusesInteriorEntryFunction(t *testing.T) {
	main, reg := buildProgram(t, workProg)

	var workAddr uint64
	for _, s := range main.Symbols {
		if s.Name == "work" {
			workAddr = s.Addr
		}
	}
	if workAddr == 0 {
		t.Fatal("work symbol missing")
	}
	sec := main.SectionAt(workAddr)
	first, err := isa.Decode(sec.Data[workAddr-sec.Addr:], workAddr)
	if err != nil {
		t.Fatal(err)
	}
	interior := workAddr + uint64(first.Size)

	// Append a data section holding the interior code pointer, 8-aligned
	// past the module extent, before any analysis runs.
	lo, span := main.Extent()
	addr := (lo + span + 7) &^ 7
	word := make([]byte, 8)
	binary.LittleEndian.PutUint64(word, interior)
	main.Sections = append(main.Sections, obj.Section{
		Name: ".itest", Addr: addr, Data: word,
	})

	_, plans := captureFor(t, main, reg, jasanTool)
	p := plans[main.Name]
	if p == nil {
		t.Fatal("no plan for the main module")
	}
	rw, err := Apply(main, p)
	if err != nil {
		t.Fatal(err)
	}
	man := rw.Manifest
	if r := refusalFor(man, "work"); !strings.Contains(r, "interior entry") {
		t.Fatalf("work refusal = %q, want interior-entry refusal", r)
	}
	if coveredNames(man)["work"] {
		t.Fatal("interior-entry function was rewritten")
	}
	if _, pinned := man.Alias[workAddr]; pinned {
		t.Fatal("interior-entry function's entry was still pinned")
	}
}
