// Package rewrite implements the static ahead-of-time rewriting backend:
// a serialisable rewrite-plan IR shared with the dynamic modifier, a
// Zipr-style in-place applier that bakes a plan into a JEF module, and
// static/hybrid execution drivers.
//
// A Plan is the tool-agnostic record of every instrumentation decision a
// Janitizer tool makes for one module: for each anchor instruction, the
// exact meta-code fragments the tool would hand the DBM, captured once and
// replayed by either backend. The dynamic backend materialises fragments
// into code-cache blocks (PlanClient); the static backend encodes them into
// a `.jrw` section of a rewritten module (Apply) so instrumented code runs
// natively.
package rewrite

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// MetaInstr is one captured meta-code instruction: an isa.Instr plus the
// emitter bookkeeping (fragment-relative jump target, cost center, reloc
// tag) that both backends need to materialise it faithfully.
type MetaInstr struct {
	// Op, Rd, Rb, Ri, Imm, Disp, Addr and Size mirror isa.Instr. Addr is
	// preserved verbatim from emission: tools stamp trap metas with the
	// application anchor address so runtime handlers can attribute the
	// trap (m.TrapPC); everything else leaves it zero.
	Op, Rd, Rb, Ri uint8
	Imm            int64
	Disp           int32
	Addr           uint64
	Size           uint32
	// JumpTo is the fragment-relative branch target: -1 keeps application
	// semantics (only meaningful on CTIs), 0..len(fragment) indexes into
	// the fragment, with len(fragment) meaning "fall through past it".
	JumpTo int32
	// CC is the telemetry cost center the instruction charges.
	CC uint8
	// Reloc tags position-dependent immediates (dbm.RelocKind); the static
	// applier must recompute them against the rewritten layout.
	Reloc uint8
}

// Entry records the instrumentation captured for one anchor instruction:
// the meta-code emitted before and after it. AnchorOp is the opcode the
// anchor decoded to at capture time, letting consumers cross-check that
// the instruction they are instrumenting is the one the plan was built
// against.
type Entry struct {
	Anchor   uint64
	AnchorOp uint8
	Before   []MetaInstr
	After    []MetaInstr
}

// Plan is the serialisable rewrite plan for one (module, tool) pair. Block
// and anchor addresses are runtime addresses under the loader bases the
// plan was captured with (AssumedBase for this module); consumers verify
// the base still holds before trusting them.
type Plan struct {
	// Module is the JEF module name the plan instruments.
	Module string
	// Tool identifies the producing tool configuration (core tool key).
	Tool string
	// ModuleID and AssumedBase pin the loader placement the runtime
	// addresses in this plan were captured under. PIC mirrors the
	// module's PIC flag (AssumedBase is zero for non-PIC modules).
	ModuleID    int32
	PIC         bool
	AssumedBase uint64
	// BlockAddrs is the sorted set of statically-analysed basic-block
	// start addresses — the rule-table hit set. Blocks outside it were
	// never seen statically and must fall back to dynamic analysis.
	BlockAddrs []uint64
	// Entries holds per-anchor instrumentation, sorted by Anchor. Anchors
	// with rules but empty fragments are retained so backends classify
	// coverage identically to the rule tables.
	Entries []Entry

	indexOnce sync.Once
	blockSet  map[uint64]struct{}
	byAnchor  map[uint64]*Entry
}

func (p *Plan) buildIndex() {
	p.indexOnce.Do(func() {
		p.blockSet = make(map[uint64]struct{}, len(p.BlockAddrs))
		for _, a := range p.BlockAddrs {
			p.blockSet[a] = struct{}{}
		}
		p.byAnchor = make(map[uint64]*Entry, len(p.Entries))
		for i := range p.Entries {
			p.byAnchor[p.Entries[i].Anchor] = &p.Entries[i]
		}
	})
}

// HasBlock reports whether addr is a statically-analysed block start.
func (p *Plan) HasBlock(addr uint64) bool {
	p.buildIndex()
	_, ok := p.blockSet[addr]
	return ok
}

// EntryAt returns the instrumentation entry anchored at addr, or nil.
func (p *Plan) EntryAt(addr uint64) *Entry {
	p.buildIndex()
	return p.byAnchor[addr]
}

// Validate checks structural invariants: sorted, duplicate-free addresses
// and fragment-relative jump targets in range. Plans accepted by ReadPlan
// may still fail Validate (the codec only bounds sizes); consumers must
// call it before trusting a plan.
func (p *Plan) Validate() error {
	if p.Module == "" {
		return fmt.Errorf("rewrite: plan has empty module name")
	}
	if !p.PIC && p.AssumedBase != 0 {
		return fmt.Errorf("rewrite: non-PIC plan with nonzero base %#x", p.AssumedBase)
	}
	for i := 1; i < len(p.BlockAddrs); i++ {
		if p.BlockAddrs[i] <= p.BlockAddrs[i-1] {
			return fmt.Errorf("rewrite: block addresses not strictly sorted at %d", i)
		}
	}
	for i := range p.Entries {
		e := &p.Entries[i]
		if i > 0 && e.Anchor <= p.Entries[i-1].Anchor {
			return fmt.Errorf("rewrite: entries not strictly sorted at %d", i)
		}
		if e.Anchor == 0 {
			return fmt.Errorf("rewrite: entry %d has zero anchor", i)
		}
		for _, frag := range [][]MetaInstr{e.Before, e.After} {
			for j := range frag {
				if err := frag[j].validate(len(frag)); err != nil {
					return fmt.Errorf("rewrite: entry %#x meta %d: %w", e.Anchor, j, err)
				}
			}
		}
	}
	return nil
}

func (mi *MetaInstr) validate(fragLen int) error {
	if isa.EncodedSize(isa.Op(mi.Op)) == 0 {
		return fmt.Errorf("invalid opcode %d", mi.Op)
	}
	if mi.JumpTo < -1 || int(mi.JumpTo) > fragLen {
		return fmt.Errorf("jump target %d out of fragment range [0,%d]", mi.JumpTo, fragLen)
	}
	if mi.CC >= uint8(telemetry.NumCostCenters) {
		return fmt.Errorf("invalid cost center %d", mi.CC)
	}
	if mi.Reloc > uint8(dbm.RelocRetAddr) {
		return fmt.Errorf("invalid reloc kind %d", mi.Reloc)
	}
	return nil
}

// Instr reconstructs the isa instruction, preserving the Addr/Size fields
// recorded at emission (trap metas carry the application anchor in Addr).
func (mi *MetaInstr) Instr() isa.Instr {
	return isa.Instr{
		Op:   isa.Op(mi.Op),
		Rd:   isa.Register(mi.Rd),
		Rb:   isa.Register(mi.Rb),
		Ri:   isa.Register(mi.Ri),
		Imm:  mi.Imm,
		Disp: mi.Disp,
		Addr: mi.Addr,
		Size: mi.Size,
	}
}

// CInstr materialises the meta instruction for a code-cache block whose
// fragment starts at output index fragStart, rebasing the fragment-relative
// jump target to a block-absolute one (the inverse of metaFromCInstr).
func (mi *MetaInstr) CInstr(fragStart int) dbm.CInstr {
	jt := -1
	if mi.JumpTo >= 0 {
		jt = fragStart + int(mi.JumpTo)
	}
	return dbm.CInstr{
		In:     mi.Instr(),
		JumpTo: jt,
		Meta:   true,
		CC:     telemetry.CostCenter(mi.CC),
		Reloc:  dbm.RelocKind(mi.Reloc),
	}
}

// metaFromCInstr converts one emitter output slot into the plan IR. The
// emitter must have been fresh for the fragment, so c.JumpTo is already
// fragment-relative.
func metaFromCInstr(c dbm.CInstr, fragLen int) (MetaInstr, error) {
	if !c.Meta {
		return MetaInstr{}, fmt.Errorf("rewrite: captured fragment contains a non-meta instruction %v", c.In.Op)
	}
	if c.JumpTo < -1 || c.JumpTo > fragLen {
		return MetaInstr{}, fmt.Errorf("rewrite: captured jump target %d outside fragment of %d", c.JumpTo, fragLen)
	}
	return MetaInstr{
		Op:     uint8(c.In.Op),
		Rd:     uint8(c.In.Rd),
		Rb:     uint8(c.In.Rb),
		Ri:     uint8(c.In.Ri),
		Imm:    c.In.Imm,
		Disp:   c.In.Disp,
		Addr:   c.In.Addr,
		Size:   c.In.Size,
		JumpTo: int32(c.JumpTo),
		CC:     uint8(c.CC),
		Reloc:  uint8(c.Reloc),
	}, nil
}

// fragFromEmitter converts a fresh emitter's output into a plan fragment.
func fragFromEmitter(out []dbm.CInstr) ([]MetaInstr, error) {
	if len(out) == 0 {
		return nil, nil
	}
	frag := make([]MetaInstr, len(out))
	for i, c := range out {
		mi, err := metaFromCInstr(c, len(out))
		if err != nil {
			return nil, err
		}
		frag[i] = mi
	}
	return frag, nil
}

// sortedUniq sorts addrs and removes duplicates in place.
func sortedUniq(addrs []uint64) []uint64 {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := addrs[:0]
	for i, a := range addrs {
		if i == 0 || a != addrs[i-1] {
			out = append(out, a)
		}
	}
	return out
}
