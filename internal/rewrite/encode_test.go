package rewrite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// capturedPlans returns real plans (jasan over workProg) for codec tests.
func capturedPlans(t testing.TB) map[string]*Plan {
	t.Helper()
	main, reg := buildProgram(t, workProg)
	_, plans := captureFor(t, main, reg, jasanTool)
	if len(plans) == 0 {
		t.Fatal("no plans captured")
	}
	return plans
}

func TestPlanRoundTrip(t *testing.T) {
	for name, p := range capturedPlans(t) {
		b := p.Marshal()
		q, err := ReadPlan(b)
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: round-tripped plan invalid: %v", name, err)
		}
		if q.Module != p.Module || q.Tool != p.Tool || q.ModuleID != p.ModuleID ||
			q.PIC != p.PIC || q.AssumedBase != p.AssumedBase ||
			len(q.BlockAddrs) != len(p.BlockAddrs) || len(q.Entries) != len(p.Entries) {
			t.Fatalf("%s: round trip changed plan header/counts", name)
		}
		if !bytes.Equal(q.Marshal(), b) {
			t.Fatalf("%s: re-marshal is not byte-identical", name)
		}
	}
}

func TestMarshalByteStable(t *testing.T) {
	// Two independent captures of the same program must produce the same
	// bytes: the encoding is the cache's content address.
	main, reg := buildProgram(t, workProg)
	_, p1 := captureFor(t, main, reg, jasanTool)
	_, p2 := captureFor(t, main, reg, jasanTool)
	for name := range p1 {
		a, b := p1[name].Marshal(), p2[name].Marshal()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two captures marshal differently (%d vs %d bytes)",
				name, len(a), len(b))
		}
		if !bytes.Equal(p1[name].Marshal(), a) {
			t.Fatalf("%s: marshal is not idempotent", name)
		}
	}
}

func TestReadPlanRejectsBadMagic(t *testing.T) {
	if _, err := ReadPlan([]byte("XXXXjunk")); !errors.Is(err, ErrBadPlanMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := ReadPlan(nil); !errors.Is(err, ErrBadPlanMagic) {
		t.Fatalf("empty input: got %v", err)
	}
}

func TestReadPlanRejectsTrailingBytes(t *testing.T) {
	for name, p := range capturedPlans(t) {
		b := append(p.Marshal(), 0)
		if _, err := ReadPlan(b); !errors.Is(err, ErrMalformedPlan) {
			t.Fatalf("%s: trailing byte accepted: %v", name, err)
		}
	}
}

func TestReadPlanRejectsHostileCounts(t *testing.T) {
	// A header declaring absurd counts must be rejected up front by the
	// caps, not by attempting the allocation.
	hdr := func() *bytes.Buffer {
		var b bytes.Buffer
		b.Write(PlanMagic[:])
		for _, s := range []string{"m", "t"} {
			binary.Write(&b, binary.LittleEndian, uint32(len(s)))
			b.WriteString(s)
		}
		binary.Write(&b, binary.LittleEndian, uint32(0)) // module id
		b.WriteByte(0)                                   // pic
		binary.Write(&b, binary.LittleEndian, uint64(0)) // base
		return &b
	}

	huge := hdr()
	binary.Write(huge, binary.LittleEndian, uint32(0xFFFFFFF0)) // blocks
	if _, err := ReadPlan(huge.Bytes()); !errors.Is(err, ErrMalformedPlan) {
		t.Fatalf("hostile block count: got %v", err)
	}

	huge = hdr()
	binary.Write(huge, binary.LittleEndian, uint32(0))         // blocks
	binary.Write(huge, binary.LittleEndian, uint32(0xFFFFFF0)) // entries
	if _, err := ReadPlan(huge.Bytes()); !errors.Is(err, ErrMalformedPlan) {
		t.Fatalf("hostile entry count: got %v", err)
	}

	huge = hdr()
	binary.Write(huge, binary.LittleEndian, uint32(0))      // blocks
	binary.Write(huge, binary.LittleEndian, uint32(1))      // entries
	binary.Write(huge, binary.LittleEndian, uint64(0x1000)) // anchor
	huge.WriteByte(1)                                       // anchor op
	binary.Write(huge, binary.LittleEndian, uint32(1<<20))  // before frag
	if _, err := ReadPlan(huge.Bytes()); !errors.Is(err, ErrMalformedPlan) {
		t.Fatalf("hostile fragment length: got %v", err)
	}
}

// planCorpusSeeds returns every checked-in malformed plan image.
func planCorpusSeeds(t testing.TB) [][]byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.jpl"))
	if err != nil || len(names) == 0 {
		t.Fatalf("malformed plan corpus missing: %v (%d files)", err, len(names))
	}
	var out [][]byte
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// FuzzReadPlan mirrors the module codec's FuzzReadModule: hostile plan
// bytes must produce a typed rejection or a plan Validate can survive,
// never a panic. Explore with `go test -fuzz=FuzzReadPlan ./internal/rewrite`.
func FuzzReadPlan(f *testing.F) {
	for _, p := range capturedPlans(f) {
		f.Add(p.Marshal())
	}
	for _, m := range planCorpusSeeds(f) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(data)
		if err != nil {
			if !errors.Is(err, ErrBadPlanMagic) && !errors.Is(err, ErrMalformedPlan) {
				t.Fatalf("untyped read error: %v", err)
			}
			return
		}
		p.Validate() // must not panic on anything ReadPlan accepted
	})
}

// TestMalformedPlanCorpusNoPanics is the checked-in-corpus acceptance test.
func TestMalformedPlanCorpusNoPanics(t *testing.T) {
	for i, data := range planCorpusSeeds(t) {
		p, err := ReadPlan(data)
		if err != nil {
			if !errors.Is(err, ErrBadPlanMagic) && !errors.Is(err, ErrMalformedPlan) {
				t.Errorf("corpus[%d]: untyped read error: %v", i, err)
			}
			continue
		}
		p.Validate()
	}
}
