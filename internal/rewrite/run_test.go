package rewrite

import (
	"testing"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/loader"
	"repro/internal/vm"
)

// overflowProg triggers a one-past-the-end heap write inside a coverable
// (ret-terminated) function, so the violation fires from statically
// rewritten code under the static and hybrid backends.
const overflowProg = `
.module prog
.entry _start
.needs libj.jef
.import malloc
.import free
.section .text
poke:
    stxb [r12+r13], r6
    ret
_start:
    mov r1, 24
    call malloc
    mov r12, r0
    mov r6, 1
    mov r13, 24
    call poke
    mov r1, r12
    call free
    mov r1, 7
    mov r0, 1
    syscall
`

// TestBackendParity runs the same program under the dynamic modifier, the
// static rewriter, and the hybrid, and demands identical app-observable
// behaviour and identical sanitizer verdicts — the core claim of the
// shared-plan design.
func TestBackendParity(t *testing.T) {
	main, reg := buildProgram(t, overflowProg)
	files, plans := captureFor(t, main, reg, jasanTool)

	type outcome struct {
		exit  int64
		total uint64
		pc    uint64
	}
	outcomes := map[string]outcome{}

	// Dynamic reference: the ordinary hybrid core runtime.
	{
		tool := jasan.New(jasan.Config{})
		m := vm.New()
		m.InstallDefaultServices()
		m.MaxInstrs = 20_000_000
		proc := loader.NewProcess(m, reg)
		rt := core.NewRuntime(m, proc, tool, files)
		lm, err := proc.LoadProgram(main)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil {
			t.Fatalf("dynamic run: %v", err)
		}
		o := outcome{exit: m.ExitStatus, total: tool.Report.Total}
		if len(tool.Report.Violations) > 0 {
			o.pc = tool.Report.Violations[0].PC
		}
		outcomes["dynamic"] = o
	}

	{
		tool := jasan.New(jasan.Config{})
		res, err := RunStatic(main, reg, tool, files, plans, Options{MaxInstrs: 20_000_000})
		if err != nil {
			t.Fatalf("static run: %v", err)
		}
		o := outcome{exit: res.Machine.ExitStatus, total: tool.Report.Total}
		if len(tool.Report.Violations) > 0 {
			o.pc = tool.Report.Violations[0].PC
		}
		outcomes["static"] = o
		if len(res.Rewritten) == 0 {
			t.Fatal("static run rewrote nothing")
		}
	}

	{
		tool := jasan.New(jasan.Config{})
		res, err := RunHybrid(main, reg, tool, files, plans, Options{MaxInstrs: 20_000_000})
		if err != nil {
			t.Fatalf("hybrid run: %v", err)
		}
		o := outcome{exit: res.Machine.ExitStatus, total: tool.Report.Total}
		if len(tool.Report.Violations) > 0 {
			o.pc = tool.Report.Violations[0].PC
		}
		outcomes["hybrid"] = o
		cov := res.Runtime.Coverage
		if cov.StaticNoOp+cov.StaticInstrumented+cov.Fallback == 0 {
			t.Fatal("hybrid never fell over to the dynamic modifier (the exit path is uncovered, so it must)")
		}
	}

	ref := outcomes["dynamic"]
	if ref.exit != 7 {
		t.Fatalf("dynamic exit = %d, want 7", ref.exit)
	}
	if ref.total == 0 {
		t.Fatal("dynamic backend missed the overflow")
	}
	for _, backend := range []string{"static", "hybrid"} {
		o := outcomes[backend]
		if o != ref {
			t.Fatalf("%s diverges from dynamic: %+v vs %+v", backend, o, ref)
		}
	}
}

// TestStaticRefusesStalePlacement feeds RunStatic plans whose placement
// assumption no longer holds; it must refuse, not run with wrong addresses.
func TestStaticRefusesStalePlacement(t *testing.T) {
	main, reg := buildProgram(t, overflowProg)
	files, plans := captureFor(t, main, reg, jasanTool)
	for _, p := range plans {
		p.ModuleID++ // placement drift
	}
	tool := jasan.New(jasan.Config{})
	if _, err := RunStatic(main, reg, tool, files, plans, Options{MaxInstrs: 1_000_000}); err == nil {
		t.Fatal("stale placement accepted")
	}
}
