package rewrite

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
)

// buildProgram assembles src against the standard library registry.
func buildProgram(t testing.TB, src string) (*obj.Module, loader.Registry) {
	t.Helper()
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return main, loader.Registry{libj.Name: lj}
}

// captureFor analyzes main with a fresh tool and captures its rewrite plans
// with another fresh instance (capture initialises a scratch runtime).
func captureFor(t testing.TB, main *obj.Module, reg loader.Registry,
	newTool func() core.Tool) (map[string]*rules.File, map[string]*Plan) {

	t.Helper()
	files, err := core.AnalyzeProgram(main, reg, newTool())
	if err != nil {
		t.Fatalf("static analysis: %v", err)
	}
	plans, err := CapturePlans(main, reg, files, newTool())
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return files, plans
}

func jasanTool() core.Tool { return jasan.New(jasan.Config{}) }

// workProg keeps its instrumented memory accesses in a ret-terminated
// function: functions whose last block can fall through (e.g. ending in the
// exit syscall) are refused by the applier, so covered code lives in `work`.
const workProg = `
.module prog
.entry _start
.needs libj.jef
.import malloc
.import free
.section .text
work:
    mov r6, 7
    stq [r12], r6
    stq [r12+8], r6
    ldq r7, [r12]
    ldq r8, [r12+8]
    ret
_start:
    mov r1, 32
    call malloc
    mov r12, r0
    call work
    mov r1, r12
    call free
    mov r1, 0
    mov r0, 1
    syscall
`
