package rewrite

import (
	"repro/internal/core"
	"repro/internal/dbm"
)

// PlanClient is a DBM client that instruments blocks from captured rewrite
// plans instead of invoking the tool's emission hooks — the dynamic
// modifier consuming the same plan IR the static applier bakes into
// modules. It mirrors the core hybrid classifier exactly: statically-seen
// blocks are materialised from plan entries (or placed as-is when no
// anchor in the block carries instrumentation), unseen blocks fall back to
// the tool's dynamic analyzer.
type PlanClient struct {
	// Tool provides DynFallback for blocks outside every plan's static
	// hit set (and nothing else — instrumented blocks come from plans).
	Tool core.Tool
	// Plans maps module name to its captured plan.
	Plans map[string]*Plan
	// Coverage receives the same classification counts the core hybrid
	// client keeps. Optional.
	Coverage *core.CoverageStats
}

// OnBlock implements dbm.Client.
func (c *PlanClient) OnBlock(ctx *dbm.BlockContext) []dbm.CInstr {
	var p *Plan
	if ctx.Module != nil {
		p = c.Plans[ctx.Module.Name]
	}
	if p != nil && p.HasBlock(ctx.Start) {
		out := make([]dbm.CInstr, 0, len(ctx.AppInstrs))
		n := 0
		for _, in := range ctx.AppInstrs {
			e := p.EntryAt(in.Addr)
			if e != nil && e.AnchorOp != uint8(in.Op) {
				// The instruction is not what the plan was captured
				// against (self-modified or re-decoded differently):
				// the plan's fragments cannot be trusted here.
				e = nil
			}
			if e != nil {
				n++
				fragStart := len(out)
				for i := range e.Before {
					out = append(out, e.Before[i].CInstr(fragStart))
				}
			}
			out = append(out, dbm.App(in))
			if e != nil {
				fragStart := len(out)
				for i := range e.After {
					out = append(out, e.After[i].CInstr(fragStart))
				}
			}
		}
		if n == 0 {
			if c.Coverage != nil {
				c.Coverage.StaticNoOp++
			}
			return dbm.NullClient{}.OnBlock(ctx)
		}
		if c.Coverage != nil {
			c.Coverage.StaticInstrumented++
		}
		return out
	}
	if c.Coverage != nil {
		c.Coverage.Fallback++
	}
	return c.Tool.DynFallback(ctx)
}
