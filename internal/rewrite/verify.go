package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/obj"
)

// Verify structurally checks a rewritten module against the original and
// the plan it was built from, re-deriving every property the applier is
// supposed to guarantee instead of trusting its bookkeeping:
//
//   - original bytes are untouched outside the pinned trampoline windows;
//   - every pinned window decodes as a jmp into the copy region, to the
//     manifest's alias for that address;
//   - the copy region is exactly the plan's fragments interleaved with
//     semantically equivalent copies of the original instructions (branch
//     targets aliased or preserved, pc-relative operands still addressing
//     the original image, return-address immediates pointing at the copy
//     fall-through);
//   - relocations added by the rewrite stay inside the copy region.
//
// It returns one violation string per defect; an empty slice means the
// module passed.
func Verify(orig *obj.Module, plan *Plan, rw *Rewritten) ([]string, error) {
	man := rw.Manifest
	var v []string
	bad := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf(format, args...))
	}

	pinSet := map[uint64]bool{}
	for _, p := range man.Pinned {
		pinSet[p] = true
	}

	// Original bytes untouched outside pin windows; pin windows decode as
	// trampolines into the copy region.
	for i := range orig.Sections {
		os := &orig.Sections[i]
		rs := rw.Module.Section(os.Name)
		if rs == nil || rs.Addr != os.Addr || len(rs.Data) != len(os.Data) {
			bad("section %s resized or moved", os.Name)
			continue
		}
		for off := 0; off < len(os.Data); off++ {
			if os.Data[off] == rs.Data[off] {
				continue
			}
			a := os.Addr + uint64(off)
			inPin := false
			for p := range pinSet {
				if a >= p && a < p+trampolineLen {
					inPin = true
					break
				}
			}
			if !inPin {
				bad("byte at %#x modified outside every trampoline window", a)
			}
		}
	}
	for _, p := range man.Pinned {
		sec := sectionAt(rw.Module, p)
		if sec == nil {
			bad("pin %#x outside every section", p)
			continue
		}
		in, err := isa.Decode(sec.Data[p-sec.Addr:], p)
		if err != nil || in.Op != isa.OpJmp {
			bad("pin %#x does not decode as a trampoline jmp", p)
			continue
		}
		want, ok := man.Alias[p]
		if !ok || in.Target() != want {
			bad("trampoline at %#x jumps to %#x, want alias %#x", p, in.Target(), want)
		}
		if in.Target() < man.CopyLo || in.Target() >= man.CopyHi {
			bad("trampoline at %#x escapes the copy region", p)
		}
	}

	// Walk the copy region against the plan.
	g, err := cfg.Build(orig)
	if err != nil {
		return nil, fmt.Errorf("rewrite: verify cfg: %w", err)
	}
	jrw := rw.Module.Section(".jrw")
	if jrw == nil {
		if len(man.Alias) > 0 {
			bad("copies recorded but no .jrw section")
		}
		return v, nil
	}
	if jrw.Addr != man.CopyLo || jrw.Addr+uint64(len(jrw.Data)) != man.CopyHi {
		bad(".jrw bounds [%#x,%#x) disagree with manifest [%#x,%#x)",
			jrw.Addr, jrw.Addr+uint64(len(jrw.Data)), man.CopyLo, man.CopyHi)
		return v, nil
	}

	// Blocks in copy order.
	type pair struct{ orig, copy uint64 }
	var pairs []pair
	for o, c := range man.Alias {
		pairs = append(pairs, pair{o, c})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].copy < pairs[j].copy })
	cursor := man.CopyLo
	for _, pr := range pairs {
		if pr.copy != cursor {
			bad("copy of block %#x at %#x, expected %#x", pr.orig, pr.copy, cursor)
			return v, nil
		}
		blk := g.Blocks[pr.orig]
		if blk == nil {
			bad("aliased address %#x is not a block", pr.orig)
			return v, nil
		}
		cursor = verifyBlock(blk, plan, man, jrw, cursor, bad)
		if cursor == 0 {
			return v, nil
		}
	}
	if cursor != man.CopyHi {
		bad("copy region ends at %#x, expected %#x", cursor, man.CopyHi)
	}

	// Added relocations stay inside the copy region.
	origRelocs := map[obj.Reloc]int{}
	for _, r := range orig.Relocs {
		origRelocs[r]++
	}
	for _, r := range rw.Module.Relocs {
		if origRelocs[r] > 0 {
			origRelocs[r]--
			continue
		}
		if r.Where < man.CopyLo || r.Where+8 > man.CopyHi {
			bad("added relocation at %#x outside the copy region", r.Where)
		}
	}
	return v, nil
}

// verifyBlock checks one block's copy starting at cursor and returns the
// address just past it (0 to abort the walk).
func verifyBlock(blk *cfg.BasicBlock, plan *Plan, man *Manifest,
	jrw *obj.Section, cursor uint64, bad func(string, ...interface{})) uint64 {

	decode := func(a uint64) (isa.Instr, bool) {
		off := a - jrw.Addr
		if off >= uint64(len(jrw.Data)) {
			bad("copy walk ran past .jrw at %#x", a)
			return isa.Instr{}, false
		}
		in, err := isa.Decode(jrw.Data[off:], a)
		if err != nil {
			bad("undecodable copy instruction at %#x: %v", a, err)
			return isa.Instr{}, false
		}
		return in, true
	}

	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		e := plan.EntryAt(in.Addr + man.AssumedBase)
		appAddr := cursor
		if e != nil {
			appAddr += fragSize(e.Before)
		}
		if e != nil {
			var ok bool
			cursor, ok = verifyFrag(e.Before, cursor, appAddr, in, man, decode, bad)
			if !ok {
				return 0
			}
		}
		got, ok := decode(cursor)
		if !ok {
			return 0
		}
		verifyApp(in, &got, man, bad)
		cursor += uint64(got.Size)
		if e != nil {
			cursor, ok = verifyFrag(e.After, cursor, appAddr, in, man, decode, bad)
			if !ok {
				return 0
			}
		}
	}
	return cursor
}

func verifyFrag(frag []MetaInstr, cursor, appAddr uint64, anchor *isa.Instr,
	man *Manifest, decode func(uint64) (isa.Instr, bool),
	bad func(string, ...interface{})) (uint64, bool) {

	addrs := make([]uint64, len(frag)+1)
	a := cursor
	for i := range frag {
		addrs[i] = a
		a += uint64(isa.EncodedSize(isa.Op(frag[i].Op)))
	}
	addrs[len(frag)] = a

	for i := range frag {
		mi := &frag[i]
		got, ok := decode(addrs[i])
		if !ok {
			return 0, false
		}
		if got.Op != isa.Op(mi.Op) || got.Rd != isa.Register(mi.Rd) ||
			got.Rb != isa.Register(mi.Rb) || got.Ri != isa.Register(mi.Ri) {
			bad("meta at %#x is %v, plan says %v", addrs[i], got.Op, isa.Op(mi.Op))
			return 0, false
		}
		switch {
		case got.IsCTI():
			want := addrs[mi.JumpTo]
			if got.Target() != want {
				bad("meta branch at %#x targets %#x, want %#x", addrs[i], got.Target(), want)
			}
		case mi.Reloc == uint8(dbm.RelocRetAddr):
			want := appAddr + uint64(anchor.Size)
			if uint64(got.Imm) != want {
				bad("return-address meta at %#x holds %#x, want copy fall-through %#x",
					addrs[i], uint64(got.Imm), want)
			}
		case got.Op == isa.OpTrap:
			if got.Imm != mi.Imm {
				bad("trap meta at %#x code %d, plan says %d", addrs[i], got.Imm, mi.Imm)
			}
			if man.TrapOrigin[addrs[i]] != mi.Addr {
				bad("trap meta at %#x origin %#x, plan says %#x",
					addrs[i], man.TrapOrigin[addrs[i]], mi.Addr)
			}
		default:
			if got.Imm != mi.Imm || got.Disp != mi.Disp {
				bad("meta at %#x operands differ from plan", addrs[i])
			}
		}
	}
	return addrs[len(frag)], true
}

// verifyApp checks that the copy instruction `got` is semantically
// equivalent to the original `in` at its new address.
func verifyApp(in *isa.Instr, got *isa.Instr, man *Manifest,
	bad func(string, ...interface{})) {

	if got.Op != in.Op || got.Rd != in.Rd || got.Rb != in.Rb || got.Ri != in.Ri {
		bad("copy of %#x changed opcode/registers (%v -> %v)", in.Addr, in.Op, got.Op)
		return
	}
	switch {
	case in.Op == isa.OpJmp || in.Op == isa.OpCall || in.IsCondBranch():
		orig := in.Target()
		want := orig
		if alias, ok := man.Alias[orig]; ok {
			want = alias
		}
		if got.Target() != want {
			bad("copy of branch %#x targets %#x, want %#x", in.Addr, got.Target(), want)
		}
	case in.Op == isa.OpLdPC || in.Op == isa.OpLeaPC:
		origEff := in.Addr + uint64(in.Size) + uint64(int64(in.Disp))
		gotEff := got.Addr + uint64(got.Size) + uint64(int64(got.Disp))
		if origEff != gotEff {
			bad("copy of pc-relative %#x addresses %#x, want %#x", in.Addr, gotEff, origEff)
		}
	case in.Op == isa.OpTrap:
		if got.Imm != in.Imm {
			bad("copy of trap %#x changed code", in.Addr)
		}
		if man.TrapOrigin[got.Addr] != in.Addr+man.AssumedBase {
			bad("copy of trap %#x missing origin mapping", in.Addr)
		}
	default:
		if got.Imm != in.Imm || got.Disp != in.Disp {
			bad("copy of %#x changed operands", in.Addr)
		}
	}
}
