package rewrite

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/jcfi"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/vm"
)

// Options configures a static or hybrid run.
type Options struct {
	// MaxInstrs bounds the run (0 = unbounded).
	MaxInstrs uint64
	// Out receives program output (nil keeps the machine default).
	Out io.Writer
}

// RunResult is the outcome of a static or hybrid execution.
type RunResult struct {
	// Machine is the finished machine (cycles, instrs, exit status).
	Machine *vm.Machine
	// Runtime is the tool runtime the run used.
	Runtime *core.Runtime
	// Rewritten maps module name to its rewritten form and manifest.
	Rewritten map[string]*Rewritten
}

// RewriteModules applies each plan to its module across main's dependency
// closure, returning the rewritten modules keyed by name. Modules without
// a plan are returned untouched (nil manifest entry is not created).
func RewriteModules(main *obj.Module, reg loader.Registry,
	plans map[string]*Plan) (map[string]*Rewritten, error) {

	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}
	out := make(map[string]*Rewritten, len(plans))
	for _, mod := range mods {
		p := plans[mod.Name]
		if p == nil {
			continue
		}
		rw, err := Apply(mod, p)
		if err != nil {
			return nil, err
		}
		out[mod.Name] = rw
	}
	return out, nil
}

// coveredRanges answers "does this runtime address execute statically
// rewritten code": the `.jrw` copy ranges plus the pinned trampolines.
type coveredRanges struct {
	ranges [][2]uint64 // sorted [lo, hi) runtime copy ranges
	pins   map[uint64]bool
}

func (c *coveredRanges) contains(pc uint64) bool {
	if c.pins[pc] {
		return true
	}
	i := sort.Search(len(c.ranges), func(i int) bool { return pc < c.ranges[i][1] })
	return i < len(c.ranges) && pc >= c.ranges[i][0]
}

// prepared is the common setup shared by RunStatic and RunHybrid: modules
// rewritten, process loaded, placement assumptions verified, trap origins
// installed.
type prepared struct {
	m     *vm.Machine
	rt    *core.Runtime
	entry uint64
	rw    map[string]*Rewritten
	cov   *coveredRanges
}

func prepare(main *obj.Module, reg loader.Registry, tool core.Tool,
	files map[string]*rules.File, plans map[string]*Plan, opts Options) (*prepared, error) {

	rw, err := RewriteModules(main, reg, plans)
	if err != nil {
		return nil, err
	}
	// Swap the rewritten modules in under their original names.
	newReg := loader.Registry{}
	for name, mod := range reg {
		newReg[name] = mod
	}
	newMain := main
	for name, r := range rw {
		if name == main.Name {
			newMain = r.Module
		}
		if _, ok := newReg[name]; ok {
			newReg[name] = r.Module
		}
	}

	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = opts.MaxInstrs
	if opts.Out != nil {
		m.Out = opts.Out
	}
	proc := loader.NewProcess(m, newReg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(newMain)
	if err != nil {
		return nil, fmt.Errorf("rewrite: load: %w", err)
	}

	m.TrapOrigin = map[uint64]uint64{}
	cov := &coveredRanges{pins: map[uint64]bool{}}
	for name, r := range rw {
		lmx := proc.ModuleByName(name)
		if lmx == nil {
			return nil, fmt.Errorf("rewrite: rewritten module %s never loaded", name)
		}
		// The plan's addresses are only meaningful under the placement
		// they were captured with; the loader is deterministic, so a
		// mismatch means the program changed since capture.
		base := uint64(0)
		if lmx.PIC {
			base = lmx.LoadBase
		}
		man := r.Manifest
		if base != man.AssumedBase || int32(lmx.ID) != man.ModuleID {
			return nil, fmt.Errorf(
				"rewrite: %s loaded at base %#x id %d, plan assumed base %#x id %d",
				name, base, lmx.ID, man.AssumedBase, man.ModuleID)
		}
		for copyLink, orig := range man.TrapOrigin {
			m.TrapOrigin[lmx.RuntimeAddr(copyLink)] = orig
		}
		cov.ranges = append(cov.ranges, [2]uint64{
			lmx.RuntimeAddr(man.CopyLo), lmx.RuntimeAddr(man.CopyHi)})
		for _, pin := range man.Pinned {
			cov.pins[lmx.RuntimeAddr(pin)] = true
		}
	}
	sort.Slice(cov.ranges, func(i, j int) bool { return cov.ranges[i][0] < cov.ranges[j][0] })

	return &prepared{
		m: m, rt: rt, entry: lm.RuntimeAddr(newMain.Entry), rw: rw, cov: cov,
	}, nil
}

// RunStatic executes the program fully natively with the statically
// rewritten modules: no dynamic modifier at all. Code the applier refused
// runs as original, uninstrumented application code; the JCFI return
// checker is told which return targets are uninstrumented so shadow-stack
// entries skipped by uncovered frames reconcile instead of reporting
// false violations.
func RunStatic(main *obj.Module, reg loader.Registry, tool core.Tool,
	files map[string]*rules.File, plans map[string]*Plan, opts Options) (*RunResult, error) {

	p, err := prepare(main, reg, tool, files, plans, opts)
	if err != nil {
		return nil, err
	}
	for _, jt := range jcfiTools(p.rt.Tool) {
		cov := p.cov
		jt.Report.TolerateUninstrumented = func(target uint64) bool {
			// Instrumented returns always target copy code; anything
			// else came from an uncovered (original) frame.
			return !cov.contains(target) || cov.pins[target]
		}
	}
	if err := p.rt.Tool.RuntimeInit(p.rt); err != nil {
		return nil, fmt.Errorf("rewrite: runtime init: %w", err)
	}
	if err := p.m.Run(p.entry); err != nil {
		return nil, err
	}
	return &RunResult{Machine: p.m, Runtime: p.rt, Rewritten: p.rw}, nil
}

// RunHybrid executes the statically rewritten modules natively and fails
// over to the dynamic modifier — consuming the same plans through
// PlanClient — for every address the applier refused or never saw:
// dynamically discovered code keeps full instrumentation instead of the
// static backend's uninstrumented-native fallback.
func RunHybrid(main *obj.Module, reg loader.Registry, tool core.Tool,
	files map[string]*rules.File, plans map[string]*Plan, opts Options) (*RunResult, error) {

	p, err := prepare(main, reg, tool, files, plans, opts)
	if err != nil {
		return nil, err
	}
	p.rt.DBM.Client = &PlanClient{Tool: tool, Plans: plans, Coverage: &p.rt.Coverage}
	if err := p.rt.Tool.RuntimeInit(p.rt); err != nil {
		return nil, fmt.Errorf("rewrite: runtime init: %w", err)
	}
	m := p.m
	m.PC = p.entry
	for !m.Halted {
		if p.cov.contains(m.PC) {
			err = m.StepBlock()
		} else {
			err = p.rt.DBM.Step()
		}
		if err != nil {
			return nil, err
		}
	}
	return &RunResult{Machine: m, Runtime: p.rt, Rewritten: p.rw}, nil
}

// jcfiTools extracts every JCFI instance reachable through tool (directly
// or composed under a MultiTool).
func jcfiTools(tool core.Tool) []*jcfi.Tool {
	switch tt := tool.(type) {
	case *jcfi.Tool:
		return []*jcfi.Tool{tt}
	case *core.MultiTool:
		var out []*jcfi.Tool
		for _, sub := range tt.Tools {
			out = append(out, jcfiTools(sub)...)
		}
		return out
	}
	return nil
}
