// Package jcfi implements JCFI, the hybrid binary control-flow-integrity
// scheme of §4.2: forward edges verified by hash-table lookups against
// per-module target sets (address-taken functions, exports, jump tables,
// with Lockdown-style dynamic updates as modules load), backward edges
// enforced by a precise shadow stack, and the ld.so lazy-resolver
// return-as-call special case handled with a forward check.
package jcfi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/vsa"
)

// Config selects JCFI variants for the evaluation (Fig. 11: forward-only vs
// full). Narrow additionally consults the value-set analysis
// (internal/vsa): indirect jumps that provably resolve to a singleton
// target or a statically bounded jump table get an inline per-site target
// set instead of the module-global hash-table probe, each narrowing backed
// by a replayable vsa.Claim for cmd/jvet.
type Config struct {
	Forward         bool
	Backward        bool
	Narrow          bool
	HaltOnViolation bool
}

// DefaultConfig enables both edges.
var DefaultConfig = Config{Forward: true, Backward: true}

// siteKind classifies instrumented CTI sites for AIR accounting.
type siteKind uint8

const (
	siteCall siteKind = iota + 1
	siteJump
	siteRet
)

type site struct {
	kind siteKind
	// targets is the size of the allowed-target set at instrumentation
	// time (bytes of reachable code for jumps' range part included).
	targets float64
}

// Tool is the JCFI security technique.
type Tool struct {
	cfg    Config
	Report *Report

	st        *RTState
	rt        *core.Runtime
	sites     map[uint64]site
	codeBytes float64
}

// New returns a JCFI instance.
func New(cfg Config) *Tool {
	return &Tool{cfg: cfg, Report: &Report{}, sites: map[uint64]site{}}
}

// Name implements core.Tool.
func (t *Tool) Name() string { return "jcfi" }

// ConfigKey returns a stable identifier for the configuration fields that
// influence StaticPass output — part of the analysis-cache key
// (internal/anserve). HaltOnViolation only affects run-time behaviour, so
// it is deliberately excluded.
func (t *Tool) ConfigKey() string {
	return fmt.Sprintf("forward=%t,backward=%t,narrow=%t",
		t.cfg.Forward, t.cfg.Backward, t.cfg.Narrow)
}

// StaticPass implements core.Tool (§4.2.1): determine valid target sets by
// scanning for code pointers refined against function boundaries, and mark
// every indirect CTI (and every call, for the shadow stack) for
// instrumentation.
func (t *Tool) StaticPass(sc *core.StaticContext) []rules.Rule {
	var out []rules.Rule
	g := sc.Graph
	mod := sc.Module

	// Target sets. Address-taken constants from the sliding-window scan,
	// refined: JCFI accepts a constant only if it is a known function
	// entry (§4.2.1) — unlike BinCFI's any-instruction-boundary policy.
	funcEntry := map[uint64]bool{}
	for _, f := range g.Funcs {
		funcEntry[f.Entry] = true
	}
	callT := map[uint64]bool{}
	jumpT := map[uint64]bool{}
	for _, ptr := range ScanCodePointers(mod) {
		if funcEntry[ptr] {
			callT[ptr] = true
			jumpT[ptr] = true
		}
	}
	for _, s := range mod.ExportedSymbols() {
		if s.Kind == obj.SymFunc {
			callT[s.Addr] = true
			jumpT[s.Addr] = true
		}
	}
	// Function entries are valid indirect-jump targets (tail calls).
	for e := range funcEntry {
		jumpT[e] = true
	}
	// Jump-table entries.
	for _, jt := range g.JumpTables {
		for _, tgt := range jt.Targets {
			jumpT[tgt] = true
		}
	}
	// PLT lazy stubs are linkage targets of the GOT-initialised jmpi.
	for i := range mod.Imports {
		callT[mod.Imports[i].PLT+8] = true
		jumpT[mod.Imports[i].PLT+8] = true
	}
	for tgt := range callT {
		kind := rules.TargetCall
		if jumpT[tgt] {
			kind |= rules.TargetJump
		}
		out = append(out, rules.Rule{
			ID: rules.CFITarget, BBAddr: tgt, Instr: tgt,
			Data: [4]uint64{kind},
		})
	}
	for tgt := range jumpT {
		if callT[tgt] {
			continue // already emitted with both kinds
		}
		out = append(out, rules.Rule{
			ID: rules.CFITarget, BBAddr: tgt, Instr: tgt,
			Data: [4]uint64{rules.TargetJump},
		})
	}

	// Check sites.
	var vres *vsa.Result
	if t.cfg.Narrow {
		vres = sc.EnsureVSA()
	}
	for _, blk := range g.Blocks {
		term := blk.Terminator()
		lp := sc.Live.LiveIn(term.Addr)
		lw := packLive(lp, sc.Live, term.Addr)
		inPLT := false
		if sec := mod.SectionAt(blk.Start); sec != nil && sec.Name == ".plt" {
			inPLT = true
		}
		switch term.Op {
		case isa.OpCallI:
			out = append(out,
				rules.Rule{ID: rules.CFICall, BBAddr: blk.Start,
					Instr: term.Addr, Data: [4]uint64{lw}},
				rules.Rule{ID: rules.ShadowPush, BBAddr: blk.Start,
					Instr: term.Addr, Data: [4]uint64{lw}},
			)
		case isa.OpCall:
			out = append(out, rules.Rule{ID: rules.ShadowPush,
				BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
		case isa.OpJmpI:
			if inPLT {
				// PLT dispatch is an inter-module call in disguise.
				out = append(out, rules.Rule{ID: rules.CFICall,
					BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
				break
			}
			if vres != nil && blk.Fn != nil {
				if r, ok := narrowRule(sc, vres, blk, lw); ok {
					out = append(out, r)
					break
				}
			}
			var lo, hi, boundaries uint64
			if fn := g.FuncAt(term.Addr); fn != nil {
				lo, hi = fn.Entry, fn.End
				for a := lo; a < hi; a++ {
					if g.IsInstrBoundary(a) {
						boundaries++
					}
				}
			}
			out = append(out, rules.Rule{ID: rules.CFIJump,
				BBAddr: blk.Start, Instr: term.Addr,
				Data: [4]uint64{lw, lo, hi, boundaries}})
		case isa.OpRet:
			if isResolverRet(blk) {
				out = append(out, rules.Rule{ID: rules.CFIResolverRet,
					BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
			} else {
				out = append(out, rules.Rule{ID: rules.CFIRet,
					BBAddr: blk.Start, Instr: term.Addr, Data: [4]uint64{lw}})
			}
		}
	}
	return out
}

// maxInlineTargets bounds the distinct-target count worth inlining as a
// compare chain; larger sets stay on the hash-table probe.
const maxInlineTargets = 16

// narrowRule asks the value-set analysis to resolve the jmpi terminating
// blk. On success it returns a CFI_JUMP_NARROW rule and records the
// matching claim into the proof set.
func narrowRule(sc *core.StaticContext, vres *vsa.Result,
	blk *cfg.BasicBlock, lw uint64) (rules.Rule, bool) {
	jf := vres.ResolveJump(blk)
	if jf == nil || len(jf.Targets) == 0 || len(jf.Targets) > maxInlineTargets {
		return rules.Rule{}, false
	}
	term := blk.Terminator()
	r := rules.Rule{ID: rules.CFIJumpNarrow, BBAddr: blk.Start, Instr: term.Addr}
	c := vsa.Claim{Block: blk.Start, Instr: term.Addr, Targets: jf.Targets}
	if jf.Table {
		count := uint64(jf.IdxHi - jf.IdxLo + 1)
		r.Data = [4]uint64{lw, 1, jf.TableAddr, uint64(jf.IdxLo)<<32 | count}
		c.Kind = vsa.ClaimJumpTable
		c.Table, c.IdxLo, c.IdxHi = jf.TableAddr, jf.IdxLo, jf.IdxHi
	} else {
		r.Data = [4]uint64{lw, 0, jf.Targets[0], 0}
		c.Kind = vsa.ClaimJumpSingle
	}
	sc.Proofs.Record(blk.Fn.Entry, c)
	return r, true
}

// isResolverRet detects the `push rX; ret` lazy-resolver idiom (§4.2.3):
// the instruction immediately before the return pushes the value the return
// will consume, making the return act as an indirect call.
func isResolverRet(blk *cfg.BasicBlock) bool {
	n := len(blk.Instrs)
	return n >= 2 && blk.Instrs[n-1].Op == isa.OpRet &&
		blk.Instrs[n-2].Op == isa.OpPush
}

func packLive(lp analysis.LivePoint, live *analysis.Liveness, addr uint64) uint64 {
	var free []uint8
	for _, r := range live.FreeRegs(addr, 3) {
		free = append(free, uint8(r))
	}
	return rules.PackLiveness(uint16(lp.Regs), lp.Flags, free)
}

// RuntimeInit implements core.Tool: shadow stack, violation traps, and
// per-module run-time target tables (built now for already-loaded modules
// and on load for dlopened ones — the Lockdown-style dynamic update of
// footnote 5).
func (t *Tool) RuntimeInit(rt *core.Runtime) error {
	t.rt = rt
	t.Report.HaltOnViolation = t.cfg.HaltOnViolation
	t.st = NewRTState(rt.M)
	if err := InstallShadowStack(rt.M); err != nil {
		return err
	}
	InstallViolationTraps(rt.M, t.Report)
	for _, lm := range rt.Proc.Modules {
		if err := t.setupModule(lm); err != nil {
			return err
		}
	}
	rt.Proc.OnModuleLoad = append(rt.Proc.OnModuleLoad, func(lm *loader.LoadedModule) {
		// Errors during dlopen-time setup surface as missing targets,
		// which fail closed (violations), never open.
		_ = t.setupModule(lm)
	})
	rt.Proc.OnModuleUnload = append(rt.Proc.OnModuleUnload, func(lm *loader.LoadedModule) {
		// Dynamic update on unload (footnote 5): the module's targets
		// stop being valid everywhere, so stale permissions cannot leak
		// onto whatever reuses the address range.
		_ = t.st.RemoveModule(lm.ID)
	})
	return nil
}

// setupModule builds the module's run-time target tables and cross-links
// inter-module call permissions.
func (t *Tool) setupModule(lm *loader.LoadedModule) error {
	id := lm.ID
	set := t.st.Ensure(id)
	t.codeBytes += float64(execBytes(lm.Module))

	var callLink, jumpLink []uint64
	if f, ok := t.rt.Files[lm.Name]; ok {
		for _, r := range f.Rules {
			if r.ID != rules.CFITarget {
				continue
			}
			if r.Data[0]&rules.TargetCall != 0 {
				callLink = append(callLink, r.Instr)
			}
			if r.Data[0]&rules.TargetJump != 0 {
				jumpLink = append(jumpLink, r.Instr)
			}
		}
	} else {
		// No static hints: load-time analysis (§4.2.2).
		callLink, jumpLink = LoadTimeScan(lm)
	}
	for _, a := range callLink {
		rtAddr := lm.RuntimeAddr(a)
		if err := t.st.AddCallTarget(id, rtAddr); err != nil {
			return err
		}
		set.Exported[rtAddr] = true
	}
	for _, a := range jumpLink {
		if err := t.st.AddJumpTarget(id, lm.RuntimeAddr(a)); err != nil {
			return err
		}
	}
	// Inter-module (§4.2): this module's outward-visible targets become
	// valid call targets for every other module (and vice versa), and
	// everything lands in the global table serving dynamically generated
	// code.
	// The VM tables use open addressing, so insertion order shapes probe
	// chains and thus charged lookup cycles: iterate modules and targets in
	// sorted order to keep figure cycle counts run-to-run deterministic.
	ownExported := sortedTargets(set.Exported)
	for _, otherID := range sortedModuleIDs(t.st.sets) {
		if otherID == id || otherID == globalTableID {
			continue
		}
		for _, tgt := range sortedTargets(t.st.sets[otherID].Exported) {
			if err := t.st.AddCallTarget(id, tgt); err != nil {
				return err
			}
		}
		for _, tgt := range ownExported {
			if err := t.st.AddCallTarget(otherID, tgt); err != nil {
				return err
			}
		}
	}
	for _, tgt := range ownExported {
		if err := t.st.AddCallTarget(globalTableID, tgt); err != nil {
			return err
		}
		if err := t.st.AddJumpTarget(globalTableID, tgt); err != nil {
			return err
		}
	}
	return nil
}

func execBytes(mod *obj.Module) uint64 {
	var n uint64
	for _, sec := range mod.ExecSections() {
		n += uint64(len(sec.Data))
	}
	return n
}

// moduleID returns the table index serving a block context.
func moduleID(bc *dbm.BlockContext) int {
	if bc.Module != nil {
		return bc.Module.ID
	}
	return globalTableID
}

// Instrument implements core.Tool (the statically-guided hit path).
func (t *Tool) Instrument(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) []dbm.CInstr {
	return core.EmitPlans(bc, t.PlanStatic(bc, instrRules))
}

// PlanStatic implements core.PlannedTool: the rule-driven per-instruction
// plan behind Instrument, composable with other tools' plans.
func (t *Tool) PlanStatic(bc *dbm.BlockContext, instrRules map[uint64][]rules.Rule) core.InstrPlan {
	base := uint64(0)
	if bc.Module != nil && bc.Module.PIC {
		base = bc.Module.LoadBase
	}
	return &staticPlan{t: t, bc: bc, rules: instrRules,
		id: moduleID(bc), base: base}
}

type staticPlan struct {
	t     *Tool
	bc    *dbm.BlockContext
	rules map[uint64][]rules.Rule
	id    int
	base  uint64
}

func (p *staticPlan) After(*dbm.Emitter, int) {}

func (p *staticPlan) Before(e *dbm.Emitter, idx int) {
	t, bc, id, base := p.t, p.bc, p.id, p.base
	in := &bc.AppInstrs[idx]
	for _, r := range p.rules[in.Addr] {
		saveFlags, dead := t.unpackLive(r.Data[0])
		switch r.ID {
		case rules.ShadowPush:
			e.SetCC(telemetry.CCShadowStack)
		default:
			e.SetCC(telemetry.CCCFICheck)
		}
		switch r.ID {
		case rules.CFICall:
			if t.cfg.Forward {
				EmitCallCheck(e, in, CallTableBase(id), saveFlags, dead)
				t.recordSite(in.Addr, siteCall, float64(len(t.st.Ensure(id).Call)))
			}
		case rules.CFIJump:
			if t.cfg.Forward {
				lo, hi := r.Data[1]+base, r.Data[2]+base
				if r.Data[1] == 0 && r.Data[2] == 0 {
					lo, hi = 0, 0
				}
				EmitJumpCheck(e, in, lo, hi, JumpTableBase(id), saveFlags, dead)
				// The hybrid's policy restricts jump targets to
				// statically recovered instruction boundaries; the
				// metric counts those rather than raw range bytes
				// (footnote 15's hybrid-vs-dyn AIR gap).
				targets := float64(r.Data[3])
				if targets == 0 {
					targets = float64(hi - lo)
				}
				t.recordSite(in.Addr, siteJump,
					targets+float64(len(t.st.Ensure(id).Jump)))
			}
		case rules.CFIJumpNarrow:
			if t.cfg.Forward {
				targets := narrowTargets(bc, &r, base)
				if len(targets) == 0 {
					// Target materialisation failed (e.g. stripped
					// section): fail closed onto the module-global
					// table probe.
					EmitJumpCheck(e, in, 0, 0, JumpTableBase(id), saveFlags, dead)
					t.recordSite(in.Addr, siteJump,
						float64(len(t.st.Ensure(id).Jump)))
					break
				}
				EmitNarrowJumpCheck(e, in, targets, saveFlags, dead)
				t.recordSite(in.Addr, siteJump, float64(len(targets)))
			}
		case rules.CFIRet:
			if t.cfg.Backward {
				EmitRetCheck(e, in, saveFlags, dead)
				t.recordSite(in.Addr, siteRet, 1)
			}
		case rules.CFIResolverRet:
			if t.cfg.Forward {
				EmitResolverRetCheck(e, in, CallTableBase(id), saveFlags, dead)
				t.recordSite(in.Addr, siteCall, float64(len(t.st.Ensure(id).Call)))
			}
		case rules.ShadowPush:
			if t.cfg.Backward {
				EmitShadowPush(e, in, saveFlags, dead)
			}
		}
	}
	e.SetCC(telemetry.CCOther)
}

// narrowTargets materialises the run-time target set of a CFI_JUMP_NARROW
// rule: the singleton from the rule data, or the claimed jump-table slice
// read back from the module image, rebased for PIC modules. Returns nil
// (caller fails closed) when the words cannot be read.
func narrowTargets(bc *dbm.BlockContext, r *rules.Rule, base uint64) []uint64 {
	if r.Data[1] == 0 {
		return []uint64{r.Data[2] + base}
	}
	if bc.Module == nil {
		return nil
	}
	idxLo := r.Data[3] >> 32
	count := r.Data[3] & 0xffffffff
	if count == 0 || count > 512 {
		return nil
	}
	seen := map[uint64]bool{}
	var out []uint64
	for k := uint64(0); k < count; k++ {
		wordAddr := r.Data[2] + (idxLo+k)*8
		sec := bc.Module.SectionAt(wordAddr)
		if sec == nil || !sec.Contains(wordAddr+7) {
			return nil
		}
		tgt := binary.LittleEndian.Uint64(sec.Data[wordAddr-sec.Addr:]) + base
		if !seen[tgt] {
			seen[tgt] = true
			out = append(out, tgt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > maxInlineTargets {
		return nil
	}
	return out
}

func (t *Tool) unpackLive(packed uint64) (saveFlags bool, dead []isa.Register) {
	_, flagsLive, freeRaw := rules.UnpackLiveness(packed)
	for _, f := range freeRaw {
		dead = append(dead, isa.Register(f))
	}
	return flagsLive, dead
}

// DynFallback implements core.Tool (§4.2.2): block-local identification of
// indirect CTIs with conservative save/restore, the resolver idiom handled
// by pattern matching, and the module's load-time tables used for targets.
func (t *Tool) DynFallback(bc *dbm.BlockContext) []dbm.CInstr {
	return core.EmitPlans(bc, t.PlanDyn(bc))
}

// PlanDyn implements core.PlannedTool: the block-local fallback plan behind
// DynFallback.
func (t *Tool) PlanDyn(bc *dbm.BlockContext) core.InstrPlan {
	return &dynPlan{t: t, bc: bc, id: moduleID(bc)}
}

type dynPlan struct {
	t  *Tool
	bc *dbm.BlockContext
	id int
}

func (p *dynPlan) After(*dbm.Emitter, int) {}

func (p *dynPlan) Before(e *dbm.Emitter, idx int) {
	t, bc, id := p.t, p.bc, p.id
	ins := bc.AppInstrs
	in := &ins[idx]
	isLast := idx == len(ins)-1
	if isLast {
		switch in.Op {
		case isa.OpCallI:
			if t.cfg.Forward {
				e.SetCC(telemetry.CCCFICheck)
				EmitCallCheck(e, in, CallTableBase(id), true, nil)
				t.recordSite(in.Addr, siteCall, float64(len(t.st.Ensure(id).Call)))
			}
			if t.cfg.Backward {
				e.SetCC(telemetry.CCShadowStack)
				EmitShadowPush(e, in, true, nil)
			}
		case isa.OpCall:
			if t.cfg.Backward {
				e.SetCC(telemetry.CCShadowStack)
				EmitShadowPush(e, in, true, nil)
			}
		case isa.OpJmpI:
			if t.cfg.Forward {
				e.SetCC(telemetry.CCCFICheck)
				// Block-local PLT-dispatch idiom (ldpc rX; jmpi rX):
				// an inter-module call in disguise, checked against
				// the call table.
				if idx > 0 && ins[idx-1].Op == isa.OpLdPC &&
					ins[idx-1].Rd == in.Rd {
					EmitCallCheck(e, in, CallTableBase(id), true, nil)
					t.recordSite(in.Addr, siteCall,
						float64(len(t.st.Ensure(id).Call)))
					break
				}
				// No static CFG block-locally: fall back to the
				// nearest-symbol function range plus the table (this
				// coarser range is why JCFI-dyn's jump AIR is below
				// the hybrid's, §6.2.2 footnote 15).
				var lo, hi uint64
				if bc.Module != nil {
					lo, hi = NearestFuncRange(bc.Module, in.Addr)
				}
				EmitJumpCheck(e, in, lo, hi, JumpTableBase(id), true, nil)
				t.recordSite(in.Addr, siteJump,
					float64(hi-lo)+float64(len(t.st.Ensure(id).Jump)))
			}
		case isa.OpRet:
			resolver := idx > 0 && ins[idx-1].Op == isa.OpPush
			if resolver && t.cfg.Forward {
				e.SetCC(telemetry.CCCFICheck)
				EmitResolverRetCheck(e, in, CallTableBase(id), true, nil)
				t.recordSite(in.Addr, siteCall, float64(len(t.st.Ensure(id).Call)))
			} else if !resolver && t.cfg.Backward {
				e.SetCC(telemetry.CCCFICheck)
				EmitRetCheck(e, in, true, nil)
				t.recordSite(in.Addr, siteRet, 1)
			}
		}
		e.SetCC(telemetry.CCOther)
	}
}

func (t *Tool) recordSite(addr uint64, kind siteKind, targets float64) {
	if _, ok := t.sites[addr]; !ok {
		t.sites[addr] = site{kind: kind, targets: targets}
	}
}

// DynamicAIR returns the average indirect-target reduction (percent) over
// the indirect CTI sites that executed during the run — the Lockdown-style
// DAIR of Fig. 12. Space is the total executable bytes of loaded modules.
func (t *Tool) DynamicAIR() float64 {
	if len(t.sites) == 0 || t.codeBytes == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range t.sites {
		frac := s.targets / t.codeBytes
		if frac > 1 {
			frac = 1
		}
		sum += frac
	}
	return 100 * (1 - sum/float64(len(t.sites)))
}

// DAIRBreakdown splits the dynamic AIR by edge kind ("call", "jump",
// "ret") — the per-kind view behind footnote 15's observation that JCFI's
// jump AIR exceeds Lockdown's while its net AIR sits slightly below.
// Kinds with no executed sites are absent from the map.
func (t *Tool) DAIRBreakdown() map[string]float64 {
	if t.codeBytes == 0 {
		return nil
	}
	sums := map[siteKind]float64{}
	counts := map[siteKind]int{}
	for _, s := range t.sites {
		frac := s.targets / t.codeBytes
		if frac > 1 {
			frac = 1
		}
		sums[s.kind] += frac
		counts[s.kind]++
	}
	names := map[siteKind]string{siteCall: "call", siteJump: "jump", siteRet: "ret"}
	out := map[string]float64{}
	for k, n := range counts {
		if n > 0 {
			out[names[k]] = 100 * (1 - sums[k]/float64(n))
		}
	}
	return out
}
