package jcfi

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/rules"
	"repro/internal/vm"
)

// run executes src under JCFI. static selects the hybrid (true) or the
// dyn-only variant (false: no rule files).
func run(t *testing.T, src string, cfg Config, static bool,
	extra map[string]string) (*vm.Machine, *Tool, *core.Runtime) {
	t.Helper()
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	for name, s := range extra {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatalf("assemble %s: %v", name, err)
		}
		reg[name] = m
	}
	main, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	tool := New(cfg)
	files := map[string]*rules.File{}
	if static {
		files, err = core.AnalyzeProgram(main, reg, tool)
		if err != nil {
			t.Fatalf("static analysis: %v", err)
		}
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 20_000_000
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	// Hijack scenarios run in recover mode: the violation is recorded and
	// execution continues to the corrupt target, which typically faults.
	// Callers inspecting violations tolerate that; benign scenarios assert
	// violation-freedom, which implies a clean run.
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err != nil && len(tool.Report.Violations) == 0 {
		t.Fatalf("run: %v", err)
	}
	return m, tool, rt
}

// benignProg exercises every protected edge type legitimately: direct
// calls, an address-taken callback called indirectly, a cross-module
// callback through qsort, PLT lazy binding (the resolver push+ret), and
// returns everywhere.
const benignProg = `
.module prog
.entry _start
.needs libj.jef
.import qsort
.import rand
.section .text
_start:
    call rand           ; PLT + lazy resolver
    call rand           ; bound GOT path
    la r13, double
    mov r1, 21
    calli r13           ; intra-module indirect call (address-taken)
    mov r12, r0
    la r1, arr
    mov r2, 4
    la r3, cmpfn
    call qsort          ; cross-module stack-spilled callback
    la r6, arr
    ldq r7, [r6+0]
    add r12, r7
    cmp r12, 43         ; 42 + 1
    jne .bad
    mov r1, 0
    mov r0, 1
    syscall
.bad:
    mov r1, 1
    mov r0, 1
    syscall
double:
    mov r0, r1
    add r0, r1
    ret
cmpfn:
    mov r0, r1
    sub r0, r2
    ret
.section .data
arr:
    .quad 4
    .quad 1
    .quad 3
    .quad 2
`

func TestBenignProgramNoViolations(t *testing.T) {
	for _, static := range []bool{true, false} {
		name := "hybrid"
		if !static {
			name = "dyn"
		}
		t.Run(name, func(t *testing.T) {
			m, tool, _ := run(t, benignProg, DefaultConfig, static, nil)
			if len(tool.Report.Violations) != 0 {
				t.Fatalf("false positives: %v", tool.Report.Violations)
			}
			if m.ExitStatus != 0 {
				t.Fatalf("exit = %d (semantics broken)", m.ExitStatus)
			}
		})
	}
}

func TestQsortCallbackNotFlagged(t *testing.T) {
	// The Lockdown false-positive scenario (§6.2.2): the callback
	// function pointer reaches qsort via the stack. JCFI's static
	// analysis finds cmpfn address-taken and allows it.
	_, tool, _ := run(t, benignProg, DefaultConfig, true, nil)
	for _, v := range tool.Report.Violations {
		t.Errorf("JCFI flagged legitimate transfer: %v", v)
	}
}

// hijackProg simulates a control-flow hijack: a function pointer is
// overwritten with a mid-function gadget address and called.
const hijackProg = `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    la r13, victim
    add r13, 3          ; skew: mid-function gadget, not a function entry
    calli r13           ; forward-edge violation
    mov r1, 0
    mov r0, 1
    syscall
victim:
    mov r0, 7
    mov r0, 8
    ret
`

func TestForwardHijackDetected(t *testing.T) {
	for _, static := range []bool{true, false} {
		_, tool, _ := run(t, hijackProg, DefaultConfig, static, nil)
		found := false
		for _, v := range tool.Report.Violations {
			if v.Kind == "forward-edge" {
				found = true
			}
		}
		if !found {
			t.Fatalf("static=%v: hijack not detected: %v", static, tool.Report.Violations)
		}
	}
}

func TestReturnHijackDetected(t *testing.T) {
	// A callee overwrites its own return address (classic stack smash).
	prog := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call victim
back:
    mov r1, 0
    mov r0, 1
    syscall
victim:
    la r6, gadget
    stq [sp+0], r6      ; overwrite the return address
    ret                 ; returns to gadget, not to back
gadget:
    mov r1, 0
    mov r0, 1
    syscall
`
	_, tool, _ := run(t, prog, DefaultConfig, true, nil)
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "return-mismatch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("return hijack not detected: %v", tool.Report.Violations)
	}
}

func TestReturnHijackNotDetectedForwardOnly(t *testing.T) {
	prog := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    call victim
back:
    mov r1, 0
    mov r0, 1
    syscall
victim:
    la r6, gadget
    stq [sp+0], r6
    ret
gadget:
    mov r1, 0
    mov r0, 1
    syscall
`
	_, tool, _ := run(t, prog, Config{Forward: true}, true, nil)
	for _, v := range tool.Report.Violations {
		if v.Kind == "return-mismatch" {
			t.Fatalf("forward-only config reported a return mismatch: %v", v)
		}
	}
}

func TestJumpTableDispatchAllowed(t *testing.T) {
	prog := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    mov r7, 1
    cmp r7, 3
    jae .def
    la r6, table
    ldxq r8, [r6+r7*8]
    jmpi r8             ; legitimate jump-table dispatch
.case0:
    mov r1, 10
    jmp .out
.case1:
    mov r1, 0
    jmp .out
.case2:
    mov r1, 12
    jmp .out
.def:
    mov r1, 99
.out:
    mov r0, 1
    syscall
.section .rodata
table:
    .quad .case0
    .quad .case1
    .quad .case2
`
	m, tool, _ := run(t, prog, DefaultConfig, true, nil)
	if len(tool.Report.Violations) != 0 {
		t.Fatalf("jump table flagged: %v", tool.Report.Violations)
	}
	if m.ExitStatus != 0 {
		t.Fatalf("exit = %d", m.ExitStatus)
	}
}

func TestJumpHijackOutsideFunctionDetected(t *testing.T) {
	prog := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    la r6, other
    add r6, 3           ; mid-instruction/mid-function skew
    jmpi r6
    mov r1, 0
    mov r0, 1
    syscall
other:
    mov r1, 1
    mov r1, 2
    mov r0, 1
    syscall
`
	_, tool, _ := run(t, prog, DefaultConfig, true, nil)
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("jump hijack not detected: %v", tool.Report.Violations)
	}
}

func TestForwardOnlyCheaperThanFull(t *testing.T) {
	prog := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    mov r12, 0
.loop:
    call fn
    add r12, 1
    cmp r12, 2000
    jl .loop
    mov r1, 0
    mov r0, 1
    syscall
fn:
    ret
`
	mFwd, _, _ := run(t, prog, Config{Forward: true}, true, nil)
	mFull, _, _ := run(t, prog, DefaultConfig, true, nil)
	if mFwd.Cycles >= mFull.Cycles {
		t.Fatalf("forward-only (%d) not cheaper than full (%d)",
			mFwd.Cycles, mFull.Cycles)
	}
	t.Logf("forward/full cycle ratio: %.2f", float64(mFwd.Cycles)/float64(mFull.Cycles))
}

func TestHybridVsDynAIR(t *testing.T) {
	// The hybrid's function-range-restricted jump policy should give an
	// AIR at least as high as the fallback's table-only policy
	// (§6.2.2 footnote 15).
	_, hybrid, _ := run(t, benignProg, DefaultConfig, true, nil)
	_, dyn, _ := run(t, benignProg, DefaultConfig, false, nil)
	hAIR, dAIR := hybrid.DynamicAIR(), dyn.DynamicAIR()
	if hAIR <= 0 || hAIR > 100 || dAIR <= 0 || dAIR > 100 {
		t.Fatalf("AIR out of range: hybrid=%f dyn=%f", hAIR, dAIR)
	}
	if hAIR < dAIR-0.5 {
		t.Errorf("hybrid AIR (%f) below dyn AIR (%f)", hAIR, dAIR)
	}
	if hAIR < 95 {
		t.Errorf("hybrid AIR = %f, expected very high reduction", hAIR)
	}
	t.Logf("DAIR hybrid=%.3f%% dyn=%.3f%%", hAIR, dAIR)
}

func TestDlopenedModuleProtected(t *testing.T) {
	plugin := `
.module plugin.jef
.type shared
.pic
.global attack
.section .text
attack:
    la r6, inner
    add r6, 3
    calli r6            ; hijack inside dlopened code
    ret
inner:
    mov r0, 1
    mov r0, 2
    ret
`
	mainSrc := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    la r1, pname
    mov r2, 10
    trap 3
    mov r12, r0
    mov r1, r12
    la r2, sname
    mov r3, 6
    trap 4
    calli r0
    mov r1, 0
    mov r0, 1
    syscall
.section .rodata
pname:
    .ascii "plugin.jef"
sname:
    .ascii "attack"
`
	_, tool, rt := run(t, mainSrc, DefaultConfig, true,
		map[string]string{"plugin.jef": plugin})
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hijack in dlopened module not detected: %v", tool.Report.Violations)
	}
	if rt.Coverage.Fallback == 0 {
		t.Error("dlopened blocks not classified as fallback")
	}
}

func TestHaltOnViolation(t *testing.T) {
	lj, _ := libj.Module()
	reg := loader.Registry{libj.Name: lj}
	main, _ := asm.Assemble(hijackProg)
	tool := New(Config{Forward: true, Backward: true, HaltOnViolation: true})
	files, err := core.AnalyzeProgram(main, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 1_000_000
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, _ := proc.LoadProgram(main)
	if err := rt.Run(lm.RuntimeAddr(main.Entry)); err == nil {
		t.Fatal("HaltOnViolation did not abort execution")
	}
}

func TestStaticPassRuleShapes(t *testing.T) {
	main, err := asm.Assemble(benignProg)
	if err != nil {
		t.Fatal(err)
	}
	tool := New(DefaultConfig)
	f, err := core.AnalyzeModule(main, tool)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[rules.ID]int{}
	for _, r := range f.Rules {
		counts[r.ID]++
	}
	if counts[rules.CFICall] < 2 {
		t.Errorf("CFI_CALL rules = %d, want >= 2 (calli + PLT jmpi)", counts[rules.CFICall])
	}
	if counts[rules.CFIRet] < 2 {
		t.Errorf("CFI_RET rules = %d", counts[rules.CFIRet])
	}
	if counts[rules.ShadowPush] < 3 {
		t.Errorf("SHADOW_PUSH rules = %d", counts[rules.ShadowPush])
	}
	if counts[rules.CFITarget] == 0 {
		t.Error("no CFI_TARGET rules")
	}
	if counts[rules.CFIResolverRet] != 1 {
		t.Errorf("CFI_RESOLVER_RET rules = %d, want 1 (plt0)", counts[rules.CFIResolverRet])
	}
}

func TestScanCodePointersFindsImmediates(t *testing.T) {
	main, err := asm.Assemble(`
.module t
.entry _start
.section .text
_start:
    la r1, target       ; address-taken via an instruction immediate
    hlt
target:
    ret
.section .data
dptr:
    .quad target        ; and via a data pointer
`)
	if err != nil {
		t.Fatal(err)
	}
	tgt := main.FindSymbol("target")
	found := false
	for _, p := range ScanCodePointers(main) {
		if p == tgt.Addr {
			found = true
		}
	}
	if !found {
		t.Fatal("sliding-window scan missed the target")
	}
}

// TestIndirectTailCallAllowed: -O2 compiles `return fp(x)` into a jmpi to
// another function's entry; the jump policy's tail-call clause (function
// entries are valid indirect-jump targets) must admit it.
func TestIndirectTailCallAllowed(t *testing.T) {
	src := `
int helper(int x) { return x * 3; }
int (*fp)(int) = helper;
int viaIndirect(int x) { return fp(x + 2); }
int main() { return viaIndirect(3); }`
	mod, err := cc.Compile(src, cc.Options{Module: "p", O2: true})
	if err != nil {
		t.Fatal(err)
	}
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}
	tool := New(DefaultConfig)
	files, err := core.AnalyzeProgram(mod, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 1_000_000
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(lm.RuntimeAddr(mod.Entry)); err != nil {
		t.Fatal(err)
	}
	if len(tool.Report.Violations) != 0 {
		t.Fatalf("indirect tail call flagged: %v", tool.Report.Violations)
	}
	if m.ExitStatus != 15 {
		t.Fatalf("exit = %d, want 15", m.ExitStatus)
	}
}

func TestDAIRBreakdown(t *testing.T) {
	_, tool, _ := run(t, benignProg, DefaultConfig, true, nil)
	bd := tool.DAIRBreakdown()
	if bd["ret"] == 0 || bd["call"] == 0 {
		t.Fatalf("breakdown incomplete: %v", bd)
	}
	// Returns use a precise shadow stack: their reduction is essentially
	// total and must dominate the forward kinds.
	// One allowed target out of the (small) test binary's code bytes.
	if bd["ret"] < 99.8 {
		t.Errorf("ret DAIR = %f, want ~100 (shadow stack)", bd["ret"])
	}
	if bd["ret"] < bd["call"] {
		t.Errorf("ret DAIR (%f) below call DAIR (%f)", bd["ret"], bd["call"])
	}
	// The aggregate sits between the per-kind extremes.
	agg := tool.DynamicAIR()
	lo, hi := 100.0, 0.0
	for _, v := range bd {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if agg < lo-1e-9 || agg > hi+1e-9 {
		t.Errorf("aggregate DAIR %f outside per-kind range [%f, %f]", agg, lo, hi)
	}
}
