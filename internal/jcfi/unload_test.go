package jcfi

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/vm"
)

// TestStalePointerAfterUnloadIsViolation: a function pointer captured from
// module A stays in the program after A is dlclosed and module B is loaded
// at the SAME base. Calling the stale pointer now transfers into B's bytes
// at an address B never exposed. Without the unload-time target removal the
// stale permission from A's table entries would still allow it; with it,
// JCFI reports a forward-edge violation.
func TestStalePointerAfterUnloadIsViolation(t *testing.T) {
	// fa sits at link offset 7 so that, after B reuses the base, the
	// stale pointer lands mid-instruction inside fb.
	plugA := `
.module a.jef
.type shared
.pic
.global fa
.section .text
    nop
    nop
    nop
    nop
    nop
    nop
    nop
fa:
    mov r0, 11
    ret
`
	// B is laid out so that A's fa address falls INSIDE B's code but is
	// not one of B's valid targets.
	plugB := `
.module b.jef
.type shared
.pic
.global fb
.section .text
fb:
    mov r0, 22
    mov r0, 23
    mov r0, 24
    ret
`
	mainSrc := `
.module prog
.entry _start
.needs libj.jef
.section .text
_start:
    la r1, an
    mov r2, 5
    trap 3              ; dlopen a
    mov r12, r0
    mov r1, r12
    la r2, fan
    mov r3, 2
    trap 4              ; r0 = &fa
    mov r13, r0         ; capture the pointer
    mov r1, r12
    trap 8              ; dlclose a
    la r1, bn
    mov r2, 5
    trap 3              ; dlopen b at the reused base
    calli r13           ; STALE pointer: must be a CFI violation
    mov r1, 0
    mov r0, 1
    syscall
.section .rodata
an:
    .ascii "a.jef"
bn:
    .ascii "b.jef"
fan:
    .ascii "fa"
`
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := asm.Assemble(plugA)
	b, _ := asm.Assemble(plugB)
	main, err := asm.Assemble(mainSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj, "a.jef": a, "b.jef": b}
	tool := New(DefaultConfig)
	files, err := core.AnalyzeProgram(main, reg, tool)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 1_000_000
	proc := loader.NewProcess(m, reg)
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Run(lm.RuntimeAddr(main.Entry)) // may fault after the violation
	found := false
	for _, v := range tool.Report.Violations {
		if v.Kind == "forward-edge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale pointer into the reused base was allowed: %v",
			tool.Report.Violations)
	}
	// Sanity: A and B really shared a base.
	lb := proc.ModuleByName("b.jef")
	if lb == nil || lb.LoadBase != 0x10100000 {
		t.Fatalf("expected b.jef at a.jef's reused base, got %+v", lb)
	}
}

// TestRemoveModuleKeepsOthersWorking: after a module unloads, transfers to
// the REMAINING modules' targets still pass (tombstone deletion must not
// break probe chains).
func TestRemoveModuleKeepsOthersWorking(t *testing.T) {
	m := vm.New()
	st := NewRTState(m)
	// Insert colliding-ish targets across two modules' exported sets.
	for i := uint64(0); i < 64; i++ {
		if err := st.AddCallTarget(1, 0x1000_0000+i*8); err != nil {
			t.Fatal(err)
		}
		st.Ensure(1).Exported[0x1000_0000+i*8] = true
	}
	for i := uint64(0); i < 64; i++ {
		if err := st.AddCallTarget(2, 0x2000_0000+i*8); err != nil {
			t.Fatal(err)
		}
		st.Ensure(2).Exported[0x2000_0000+i*8] = true
	}
	// Cross-link 1's exports into 2's table (like setupModule does).
	for tgt := range st.Ensure(1).Exported {
		if err := st.AddCallTarget(2, tgt); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.RemoveModule(1); err != nil {
		t.Fatal(err)
	}
	// Module 2's own targets must all still probe successfully.
	probe := func(base, target uint64) bool {
		h := (target >> 3) & tableMask
		for i := 0; i < tableSlots; i++ {
			v, _ := m.Mem.Read64(base + h*8)
			if v == target {
				return true
			}
			if v == 0 {
				return false
			}
			h = (h + 1) & tableMask
		}
		return false
	}
	for i := uint64(0); i < 64; i++ {
		if !probe(CallTableBase(2), 0x2000_0000+i*8) {
			t.Fatalf("own target %#x lost after removing module 1", 0x2000_0000+i*8)
		}
	}
	// Module 1's cross-linked targets must be gone from 2's table.
	for i := uint64(0); i < 64; i++ {
		if probe(CallTableBase(2), 0x1000_0000+i*8) {
			t.Fatalf("stale target %#x survived removal", 0x1000_0000+i*8)
		}
	}
	// And module 1's own table is cleared.
	if probe(CallTableBase(1), 0x1000_0000) {
		t.Fatal("module 1's own table not cleared")
	}
}
