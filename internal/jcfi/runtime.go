package jcfi

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/vm"
)

// Violation is one detected control-flow-integrity violation.
type Violation struct {
	// PC is the application address of the checked CTI.
	PC uint64
	// Target is the offending transfer target (forward) or the actual
	// return address (backward).
	Target uint64
	// Kind is "forward-edge" or "return-mismatch".
	Kind string
}

func (v Violation) String() string {
	return fmt.Sprintf("jcfi: %s violation at pc %#x -> %#x", v.Kind, v.PC, v.Target)
}

// Report accumulates CFI violations.
type Report struct {
	Violations []Violation
	// HaltOnViolation aborts execution on the first violation (the
	// deployment mode); the evaluation harness records and continues.
	HaltOnViolation bool
	// TolerateUninstrumented, when non-nil, marks the purely static
	// rewriting backend: code outside the statically rewritten regions
	// runs without instrumentation, so shadow-stack pushes and pops no
	// longer pair up at coverage boundaries. The callback reports whether
	// a return target lies in UNinstrumented code. A return mismatch is
	// then reconciled instead of reported when it is explainable by such
	// a boundary (see reconcileShadow); genuine mismatches within covered
	// code still report. The dynamic and hybrid backends instrument
	// everything and leave this nil.
	TolerateUninstrumented func(target uint64) bool
}

// targetSets is the Go-side mirror of one module's run-time tables, kept for
// AIR accounting.
type TargetSets struct {
	Call map[uint64]bool // run-time addresses valid for indirect calls
	Jump map[uint64]bool // run-time addresses valid for indirect jumps
	// Ret holds valid return targets for table-based (BinCFI-style)
	// return policies.
	Ret map[uint64]bool
	// exported are the module's own outward-visible targets (exports +
	// address-taken), contributed to every other module's call set.
	Exported map[uint64]bool
}

// runtime is JCFI's dynamic state: per-module tables in VM memory plus the
// shadow stack and mirrors for metrics.
type RTState struct {
	m *vm.Machine
	// sets maps module ID to its Go-side target sets.
	sets map[int]*TargetSets
	// counts of inserted entries per VM table base (load-factor guard).
	counts map[uint64]int
}

// NewRTState creates the CFI run-time table state over a machine.
func NewRTState(m *vm.Machine) *RTState {
	return &RTState{m: m, sets: map[int]*TargetSets{}, counts: map[uint64]int{}}
}

// sortedModuleIDs returns the registered module IDs in ascending order, so
// table operations that walk every module are deterministic.
func sortedModuleIDs(sets map[int]*TargetSets) []int {
	ids := make([]int, 0, len(sets))
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// sortedTargets returns a target set's addresses in ascending order. The VM
// hash tables use open addressing, so insertion order decides probe-chain
// shape (and with it the cycles a lookup costs): every bulk insert must go
// through a sorted view, never raw map iteration.
func sortedTargets(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for tgt := range set {
		out = append(out, tgt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tombstone marks a deleted hash-table slot: probes continue past it (it is
// non-zero) but it never matches a code address.
const tombstone = ^uint64(0)

// removeVM deletes a target from the VM hash table at base, leaving a
// tombstone so later probe chains stay intact.
func (s *RTState) removeVM(base, target uint64) error {
	if target == 0 {
		return nil
	}
	h := (target >> 3) & tableMask
	for i := 0; i < tableSlots; i++ {
		slot := base + h*8
		v, err := s.m.Mem.Read64(slot)
		if err != nil {
			return err
		}
		if v == target {
			return s.m.Mem.Write64(slot, tombstone)
		}
		if v == 0 {
			return nil // not present
		}
		h = (h + 1) & tableMask
	}
	return nil
}

// RemoveModule drops an unloaded module's contribution to the run-time
// target sets: its own tables are cleared and its outward-visible targets
// are deleted from every other module's call table — the dynamic update on
// unload that footnote 5 attributes to Lockdown. Without this, a later
// module reusing the address range would inherit stale permissions.
func (s *RTState) RemoveModule(id int) error {
	set := s.sets[id]
	if set == nil {
		return nil
	}
	// Clear the module's own tables.
	zero := make([]byte, tableSlots*8)
	for _, base := range []uint64{CallTableBase(id), JumpTableBase(id), RetTableBase(id)} {
		if err := s.m.Mem.WriteBytes(base, zero); err != nil {
			return err
		}
		s.counts[base] = 0
	}
	// Delete its exported targets everywhere else.
	exported := sortedTargets(set.Exported)
	for _, otherID := range sortedModuleIDs(s.sets) {
		if otherID == id {
			continue
		}
		other := s.sets[otherID]
		for _, tgt := range exported {
			if other.Call[tgt] {
				delete(other.Call, tgt)
				if err := s.removeVM(CallTableBase(otherID), tgt); err != nil {
					return err
				}
			}
			if other.Jump[tgt] {
				delete(other.Jump, tgt)
				if err := s.removeVM(JumpTableBase(otherID), tgt); err != nil {
					return err
				}
			}
		}
	}
	delete(s.sets, id)
	return nil
}

// insertVM adds a target to the VM hash table at base (open addressing).
func (s *RTState) insertVM(base, target uint64) error {
	if target == 0 {
		return nil // zero is the empty-slot marker
	}
	if s.counts[base] >= tableSlots*3/4 {
		return fmt.Errorf("jcfi: target table at %#x overfull", base)
	}
	h := (target >> 3) & tableMask
	for i := 0; i < tableSlots; i++ {
		slot := base + h*8
		v, err := s.m.Mem.Read64(slot)
		if err != nil {
			return err
		}
		if v == target {
			return nil
		}
		if v == 0 || v == tombstone {
			s.counts[base]++
			return s.m.Mem.Write64(slot, target)
		}
		h = (h + 1) & tableMask
	}
	return fmt.Errorf("jcfi: table full")
}

// addCallTarget registers a valid indirect-call target for module id, in
// both the VM table and the mirror.
func (s *RTState) AddCallTarget(id int, target uint64) error {
	set := s.Ensure(id)
	if set.Call[target] {
		return nil
	}
	set.Call[target] = true
	return s.insertVM(CallTableBase(id), target)
}

// addJumpTarget registers a valid indirect-jump target for module id.
func (s *RTState) AddJumpTarget(id int, target uint64) error {
	set := s.Ensure(id)
	if set.Jump[target] {
		return nil
	}
	set.Jump[target] = true
	return s.insertVM(JumpTableBase(id), target)
}

func (s *RTState) Ensure(id int) *TargetSets {
	set := s.sets[id]
	if set == nil {
		set = &TargetSets{
			Call: map[uint64]bool{}, Jump: map[uint64]bool{},
			Ret: map[uint64]bool{}, Exported: map[uint64]bool{},
		}
		s.sets[id] = set
	}
	return set
}

// NearestFuncRange returns the run-time [lo,hi) byte range of the function
// containing rtAddr, identified by the closest surrounding function symbols
// (the nearest-symbol policy dynamic-only tools fall back to, footnote 15).
// It returns (0,0) when no symbol precedes the address.
func NearestFuncRange(lm *loader.LoadedModule, rtAddr uint64) (uint64, uint64) {
	link := lm.LinkAddr(rtAddr)
	syms := lm.FuncSymbols() // sorted by address
	lo, hi := uint64(0), uint64(0)
	found := false
	for i, s := range syms {
		if s.Addr > link {
			break
		}
		found = true
		lo = s.Addr
		if i+1 < len(syms) {
			hi = syms[i+1].Addr
		} else if sec := lm.SectionAt(s.Addr); sec != nil {
			hi = sec.Addr + uint64(len(sec.Data))
		}
	}
	if !found || hi <= lo {
		return 0, 0
	}
	return lm.RuntimeAddr(lo), lm.RuntimeAddr(hi)
}

// ModuleExecRange returns the run-time address range spanning the module's
// executable sections (the weakest any-byte-in-module policy).
func ModuleExecRange(lm *loader.LoadedModule) (uint64, uint64) {
	lo, hi := ^uint64(0), uint64(0)
	for _, sec := range lm.ExecSections() {
		if sec.Addr < lo {
			lo = sec.Addr
		}
		if end := sec.Addr + uint64(len(sec.Data)); end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0, 0
	}
	return lm.RuntimeAddr(lo), lm.RuntimeAddr(hi)
}

// AddRetTarget registers a valid return target for module id (BinCFI-style
// policies).
func (s *RTState) AddRetTarget(id int, target uint64) error {
	set := s.Ensure(id)
	if set.Ret[target] {
		return nil
	}
	set.Ret[target] = true
	return s.insertVM(RetTableBase(id), target)
}

// installShadowStack initialises the shadow-stack pointer slot.
func InstallShadowStack(m *vm.Machine) error {
	return m.Mem.Write64(isa.LayoutShadowStackPtr, isa.LayoutShadowStackBase)
}

// installViolationTraps registers the forward/backward violation handlers.
func InstallViolationTraps(m *vm.Machine, rep *Report) {
	for reg := isa.Register(0); reg < isa.NumRegs; reg++ {
		reg := reg
		m.HandleTrap(trapForwardBase+int64(reg), func(m *vm.Machine) error {
			v := Violation{PC: m.TrapPC, Target: m.Regs[reg], Kind: "forward-edge"}
			rep.Violations = append(rep.Violations, v)
			if rep.HaltOnViolation {
				return &vm.Fault{PC: m.TrapPC, Addr: v.Target, Kind: v.String()}
			}
			return nil
		})
		m.HandleTrap(trapReturnBase+int64(reg), func(m *vm.Machine) error {
			actual := m.Regs[reg]
			if rep.TolerateUninstrumented != nil {
				ok, err := reconcileShadow(m, actual, rep.TolerateUninstrumented)
				if err != nil {
					return err
				}
				if ok {
					return nil
				}
			}
			v := Violation{PC: m.TrapPC, Target: actual, Kind: "return-mismatch"}
			rep.Violations = append(rep.Violations, v)
			if rep.HaltOnViolation {
				return &vm.Fault{PC: m.TrapPC, Addr: v.Target, Kind: v.String()}
			}
			return nil
		})
	}
}

// reconcileShadow handles a return mismatch under the purely static backend,
// where coverage boundaries legitimately unbalance the shadow stack. At trap
// time the instrumented ret has already popped one entry: [SSP] = sspOrig-8,
// and that popped ("expected") entry did not match the actual return target.
// Two benign explanations exist:
//
//  1. A covered caller invoked uncovered code that returned without a
//     checked ret, leaking its shadow entry. The correct entry then sits
//     deeper in the shadow stack: scan downward for the actual target and,
//     if found, pop through it (discarding the leaked entries above).
//  2. An uncovered caller invoked this covered function without a shadow
//     push, so the pop consumed a deeper frame's entry. If the actual
//     return target lies in uninstrumented code, restore the pop.
//
// Anything else — in particular a corrupted return address into covered
// code — is a genuine violation and reports as usual. Tolerating returns
// into uninstrumented code is exactly the comprehensiveness gap of static
// rewriters the paper criticises; the hybrid backend closes it by running
// uncovered code under the DBM instead.
func reconcileShadow(m *vm.Machine, actual uint64, uninstrumented func(uint64) bool) (bool, error) {
	sspNow, err := m.Mem.Read64(isa.LayoutShadowStackPtr)
	if err != nil {
		return false, err
	}
	for p := sspNow - 8; p >= isa.LayoutShadowStackBase && p < sspNow; p -= 8 {
		v, err := m.Mem.Read64(p)
		if err != nil {
			return false, err
		}
		if v == actual {
			return true, m.Mem.Write64(isa.LayoutShadowStackPtr, p)
		}
	}
	if uninstrumented(actual) {
		return true, m.Mem.Write64(isa.LayoutShadowStackPtr, sspNow+8)
	}
	return false, nil
}

// moduleScan is the load-time analysis for modules WITHOUT static rules
// (§4.2.2): a raw-binary sliding-window code-pointer scan, refined by
// function symbols when available; for stripped modules it falls back to
// the weaker Lockdown-style policy (exported symbols + code-section
// addresses at instruction boundaries).
//
// The scan itself is shared with the static pass (ScanCodePointers).
func LoadTimeScan(lm *loader.LoadedModule) (callTargets, jumpTargets []uint64) {
	mod := lm.Module
	boundaries := InstrBoundaries(mod)
	funcs := map[uint64]bool{}
	for _, s := range mod.FuncSymbols() {
		funcs[s.Addr] = true
	}
	hasSymbols := mod.SymLevel == obj.SymFull && len(funcs) > 0

	for _, ptr := range ScanCodePointers(mod) {
		if hasSymbols {
			if funcs[ptr] {
				callTargets = append(callTargets, ptr)
			}
		} else if boundaries[ptr] {
			// Weaker policy for stripped binaries.
			callTargets = append(callTargets, ptr)
		}
		if boundaries[ptr] {
			jumpTargets = append(jumpTargets, ptr)
		}
	}
	for _, s := range mod.ExportedSymbols() {
		if s.Kind == obj.SymFunc {
			callTargets = append(callTargets, s.Addr)
			jumpTargets = append(jumpTargets, s.Addr)
		}
	}
	for i := range mod.Imports {
		callTargets = append(callTargets, mod.Imports[i].PLT+8)
		jumpTargets = append(jumpTargets, mod.Imports[i].PLT+8)
	}
	return callTargets, jumpTargets
}

// instrBoundaries linearly sweeps executable sections recording decodable
// instruction addresses (the boundary notion BinCFI-class scans rely on).
func InstrBoundaries(mod *obj.Module) map[uint64]bool {
	out := map[uint64]bool{}
	for _, sec := range mod.ExecSections() {
		pc := sec.Addr
		end := sec.Addr + uint64(len(sec.Data))
		for pc < end {
			in, err := decodeAt(sec, pc)
			if err != nil {
				pc++ // resynchronise one byte later, as linear sweeps do
				continue
			}
			out[pc] = true
			pc += uint64(in.Size)
		}
	}
	return out
}

func decodeAt(sec *obj.Section, pc uint64) (isa.Instr, error) {
	off := pc - sec.Addr
	return isa.Decode(sec.Data[off:], pc)
}

// ScanCodePointers performs the 4-byte sliding-window scan of §4.2.1 over
// the module's RAW bytes — all sections, code included, since functions may
// be address-taken through instruction immediates as well as data tables:
// every 4-byte little-endian window, advancing one byte at a time, whose
// value lands inside an executable section is a code-pointer candidate.
// Callers refine candidates against function entries (JCFI) or instruction
// boundaries (BinCFI's weaker policy).
func ScanCodePointers(mod *obj.Module) []uint64 {
	inExec := func(a uint64) bool {
		sec := mod.SectionAt(a)
		return sec != nil && sec.Executable()
	}
	seen := map[uint64]bool{}
	var out []uint64
	for i := range mod.Sections {
		sec := &mod.Sections[i]
		d := sec.Data
		for off := 0; off+4 <= len(d); off++ {
			v := uint64(d[off]) | uint64(d[off+1])<<8 |
				uint64(d[off+2])<<16 | uint64(d[off+3])<<24
			if v != 0 && inExec(v) && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
