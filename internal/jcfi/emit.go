package jcfi

import (
	"repro/internal/dbm"
	"repro/internal/isa"
)

// mk is shorthand for constructing meta instructions.
func mk(op isa.Op, f func(*isa.Instr)) isa.Instr { return dbm.MkInstr(op, f) }

// Runtime target hash tables live in VM memory so the CFI checks are real
// inlined code probing real tables (§4.2.2, footnote 8).
const (
	// tableSlots is the capacity of one target hash set (power of two).
	tableSlots = 1 << 12
	tableMask  = tableSlots - 1
	// tableStride separates per-module table groups: call table at +0,
	// jump table at +jumpTableOff.
	tableStride  = 0x40000
	jumpTableOff = 0x18000
	retTableOff  = 0x30000
	// globalTableID is the pseudo-module slot whose tables serve code
	// outside any module (dynamically generated code).
	globalTableID = 255
)

// callTableBase returns the VM address of module id's indirect-call target
// table.
func CallTableBase(id int) uint64 {
	return isa.LayoutCFITableBase + uint64(id)*tableStride
}

// jumpTableBase returns the VM address of module id's indirect-jump target
// table.
func JumpTableBase(id int) uint64 {
	return CallTableBase(id) + jumpTableOff
}

// RetTableBase returns the VM address of module id's return-target table
// (used by BinCFI-style any-call-preceded-instruction return policies
// instead of a shadow stack).
func RetTableBase(id int) uint64 {
	return CallTableBase(id) + retTableOff
}

// Violation trap codes: 200+reg reports a forward-edge violation with the
// offending target in reg; 216+reg reports a return-address mismatch with
// the actual return target in reg.
const (
	trapForwardBase = 200
	trapReturnBase  = 216
)

// checkPlan parameterises one inline CFI check.
type CheckPlan struct {
	AppAddr   uint64
	SaveFlags bool
	SaveRegs  []isa.Register
	S1, S2    isa.Register // S1 = target, S2 = probe index/loaded key
}

// emitTableProbe emits the open-addressing membership probe: s1 must hold
// the target; s2 is clobbered. On a miss it traps; on a hit it falls
// through to okTargets (patched by the caller via returned placeholder
// list). The probe loop:
//
//	mov  s2, s1
//	shr  s2, 3
//	and  s2, mask
//	probe:
//	push s1                  ; save target
//	shl  s2, 3               ; slot offset
//	add  s2, tableBase
//	ldq  s2, [s2]            ; hmm — this would lose the index
//
// To keep the loop to two scratch registers the emitted code recomputes the
// slot address each iteration with an indexed load from an immediate-base
// register: it temporarily uses the stack to hold the index.
func EmitTableCheck(e *dbm.Emitter, p *CheckPlan, tableBase uint64) {
	// h = (t >> 3) & mask
	e.Meta(mk(isa.OpMovRR, func(i *isa.Instr) { i.Rd, i.Rb = p.S2, p.S1 }))
	e.Meta(mk(isa.OpShrRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, 3 }))
	e.Meta(mk(isa.OpAndRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, tableMask }))
	probe := e.JumpHere()
	// key = mem[tableBase + h*8]; the index survives in s2: compute the
	// address into the stack-free temp by pushing s2 first.
	e.Meta(mk(isa.OpPush, func(i *isa.Instr) { i.Rd = p.S2 }))
	e.Meta(mk(isa.OpShlRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, 3 }))
	e.Meta(mk(isa.OpAddRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, int64(tableBase) }))
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb = p.S2, p.S2 }))
	e.Meta(mk(isa.OpCmpRR, func(i *isa.Instr) { i.Rd, i.Rb = p.S2, p.S1 }))
	jeHitPop := e.Placeholder() // key == target: hit (still must pop)
	e.Meta(mk(isa.OpCmpRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, 0 }))
	jeMissPop := e.Placeholder() // empty slot: miss (still must pop)
	// collision: h = (h+1) & mask, loop
	e.Meta(mk(isa.OpPop, func(i *isa.Instr) { i.Rd = p.S2 }))
	e.Meta(mk(isa.OpAddRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, 1 }))
	e.Meta(mk(isa.OpAndRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S2, tableMask }))
	e.MetaJumpTo(isa.OpJmp, probe)
	// miss: pop index, report
	e.PatchJump(jeMissPop, isa.OpJe)
	e.Meta(mk(isa.OpPop, func(i *isa.Instr) { i.Rd = p.S2 }))
	e.Meta(mk(isa.OpTrap, func(i *isa.Instr) {
		i.Imm = trapForwardBase + int64(p.S1)
		i.Addr = p.AppAddr
	}))
	jmpDone := e.Placeholder()
	// hit: pop index, done
	e.PatchJump(jeHitPop, isa.OpJe)
	e.Meta(mk(isa.OpPop, func(i *isa.Instr) { i.Rd = p.S2 }))
	e.PatchJump(jmpDone, isa.OpJmp)
}

// EmitCallCheck emits the forward-edge verification for an indirect call
// `calli rt` against the caller module's call-target table.
func EmitCallCheck(e *dbm.Emitter, in *isa.Instr, tableBase uint64,
	saveFlags bool, dead []isa.Register) {

	scratch, toSave := dbm.PickScratch(2, dead, dbm.ExcludeOperands(in))
	p := &CheckPlan{
		AppAddr: in.Addr, SaveFlags: saveFlags, SaveRegs: toSave,
		S1: scratch[0], S2: scratch[1],
	}
	e.SaveProlog(p.SaveFlags, p.SaveRegs)
	e.Meta(mk(isa.OpMovRR, func(i *isa.Instr) { i.Rd, i.Rb = p.S1, in.Rd }))
	EmitTableCheck(e, p, tableBase)
	e.RestoreEpilog(p.SaveFlags, p.SaveRegs)
}

// emitJumpCheck emits the indirect-jump verification: a fast range check
// against the containing function [lo,hi) followed, on failure, by a probe
// of the module's jump-target table (jump tables + function entries for
// tail calls). lo==hi disables the range fast path (fallback mode).
func EmitJumpCheck(e *dbm.Emitter, in *isa.Instr, lo, hi, tableBase uint64,
	saveFlags bool, dead []isa.Register) {

	scratch, toSave := dbm.PickScratch(2, dead, dbm.ExcludeOperands(in))
	p := &CheckPlan{
		AppAddr: in.Addr, SaveFlags: saveFlags, SaveRegs: toSave,
		S1: scratch[0], S2: scratch[1],
	}
	e.SaveProlog(p.SaveFlags, p.SaveRegs)
	e.Meta(mk(isa.OpMovRR, func(i *isa.Instr) { i.Rd, i.Rb = p.S1, in.Rd }))
	jbTable, jbOK := -1, -1
	if lo < hi {
		// if t < lo: not in range, probe the table; else if t < hi: OK.
		e.Meta(mk(isa.OpCmpRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S1, int64(lo) }))
		jbTable = e.Placeholder()
		e.Meta(mk(isa.OpCmpRI, func(i *isa.Instr) { i.Rd, i.Imm = p.S1, int64(hi) }))
		jbOK = e.Placeholder()
	}
	if jbTable >= 0 {
		e.PatchJump(jbTable, isa.OpJb)
	}
	EmitTableCheck(e, p, tableBase)
	if jbOK >= 0 {
		e.PatchJump(jbOK, isa.OpJb) // t in [lo,hi): skip straight to done
	}
	e.RestoreEpilog(p.SaveFlags, p.SaveRegs)
}

// EmitNarrowJumpCheck emits the per-site inline target-set check for a
// VSA-narrowed indirect jump: a short compare chain over the proven
// targets, trapping when none matches. No table memory is touched, so the
// fast path costs a handful of register instructions per target.
func EmitNarrowJumpCheck(e *dbm.Emitter, in *isa.Instr, targets []uint64,
	saveFlags bool, dead []isa.Register) {

	scratch, toSave := dbm.PickScratch(2, dead, dbm.ExcludeOperands(in))
	s1, s2 := scratch[0], scratch[1]
	e.SaveProlog(saveFlags, toSave)
	e.Meta(mk(isa.OpMovRR, func(i *isa.Instr) { i.Rd, i.Rb = s1, in.Rd }))
	var hits []int
	for _, tgt := range targets {
		t := tgt
		e.Meta(mk(isa.OpMovRI, func(i *isa.Instr) { i.Rd, i.Imm = s2, int64(t) }))
		e.Meta(mk(isa.OpCmpRR, func(i *isa.Instr) { i.Rd, i.Rb = s1, s2 }))
		hits = append(hits, e.Placeholder())
	}
	e.Meta(mk(isa.OpTrap, func(i *isa.Instr) {
		i.Imm = trapForwardBase + int64(s1)
		i.Addr = in.Addr
	}))
	for _, h := range hits {
		e.PatchJump(h, isa.OpJe)
	}
	e.RestoreEpilog(saveFlags, toSave)
}

// emitShadowPush emits the call-site half of the shadow stack (§4.2): the
// intended return address is pushed on the shadow stack before the call.
func EmitShadowPush(e *dbm.Emitter, in *isa.Instr, saveFlags bool, dead []isa.Register) {
	retAddr := in.Addr + uint64(in.Size)
	scratch, toSave := dbm.PickScratch(2, dead, dbm.ExcludeOperands(in))
	s1, s2 := scratch[0], scratch[1]
	e.SaveProlog(saveFlags, toSave)
	// ssp = [SSP]; [ssp] = retAddr; [SSP] = ssp + 8
	e.Meta(mk(isa.OpMovRI, func(i *isa.Instr) {
		i.Rd, i.Imm = s1, int64(isa.LayoutShadowStackPtr)
	}))
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb = s2, s1 }))
	e.Meta(mk(isa.OpPush, func(i *isa.Instr) { i.Rd = s1 }))
	// The pushed value is the anchor call's fall-through address — a
	// position-dependent immediate the static rewriting backend must
	// rematerialise when the call executes from a relocated copy.
	e.MetaReloc(mk(isa.OpMovRI, func(i *isa.Instr) { i.Rd, i.Imm = s1, int64(retAddr) }),
		dbm.RelocRetAddr)
	e.Meta(mk(isa.OpStQ, func(i *isa.Instr) { i.Rd, i.Rb = s1, s2 }))
	e.Meta(mk(isa.OpPop, func(i *isa.Instr) { i.Rd = s1 }))
	e.Meta(mk(isa.OpAddRI, func(i *isa.Instr) { i.Rd, i.Imm = s2, 8 }))
	e.Meta(mk(isa.OpStQ, func(i *isa.Instr) { i.Rd, i.Rb = s2, s1 }))
	e.RestoreEpilog(saveFlags, toSave)
}

// emitRetCheck emits the return-site half of the shadow stack: pop the
// expected return address and compare it with the actual one on the
// application stack. The actual return address sits above whatever the
// prolog saved, so its SP displacement is computed from the save set.
func EmitRetCheck(e *dbm.Emitter, in *isa.Instr, saveFlags bool, dead []isa.Register) {
	scratch, toSave := dbm.PickScratch(2, dead, func(r isa.Register) bool {
		return r == isa.SP || r == isa.FP
	})
	s1, s2 := scratch[0], scratch[1]
	e.SaveProlog(saveFlags, toSave)
	depth := int32(len(toSave)) * 8
	if saveFlags {
		depth += 8
	}
	// ssp = [SSP] - 8; expected = [ssp]; [SSP] = ssp
	e.Meta(mk(isa.OpMovRI, func(i *isa.Instr) {
		i.Rd, i.Imm = s1, int64(isa.LayoutShadowStackPtr)
	}))
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb = s2, s1 }))
	e.Meta(mk(isa.OpSubRI, func(i *isa.Instr) { i.Rd, i.Imm = s2, 8 }))
	e.Meta(mk(isa.OpStQ, func(i *isa.Instr) { i.Rd, i.Rb = s2, s1 }))
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb = s2, s2 })) // expected
	// actual = [sp + depth]
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb, i.Disp = s1, isa.SP, depth }))
	e.Meta(mk(isa.OpCmpRR, func(i *isa.Instr) { i.Rd, i.Rb = s1, s2 }))
	jeOK := e.Placeholder()
	e.Meta(mk(isa.OpTrap, func(i *isa.Instr) {
		i.Imm = trapReturnBase + int64(s1)
		i.Addr = in.Addr
	}))
	e.PatchJump(jeOK, isa.OpJe)
	e.RestoreEpilog(saveFlags, toSave)
}

// emitResolverRetCheck handles the ld.so lazy-resolver `push r0; ret`
// special case (§4.2.3): the return is really a call, so a forward-edge
// check is attached instead of a shadow-stack pop. The target is the word
// the resolver just pushed, read from the application stack.
func EmitResolverRetCheck(e *dbm.Emitter, in *isa.Instr, tableBase uint64,
	saveFlags bool, dead []isa.Register) {

	scratch, toSave := dbm.PickScratch(2, dead, func(r isa.Register) bool {
		return r == isa.SP || r == isa.FP
	})
	p := &CheckPlan{
		AppAddr: in.Addr, SaveFlags: saveFlags, SaveRegs: toSave,
		S1: scratch[0], S2: scratch[1],
	}
	e.SaveProlog(p.SaveFlags, p.SaveRegs)
	depth := int32(len(toSave)) * 8
	if saveFlags {
		depth += 8
	}
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb, i.Disp = p.S1, isa.SP, depth }))
	EmitTableCheck(e, p, tableBase)
	e.RestoreEpilog(p.SaveFlags, p.SaveRegs)
}

// EmitRetTableCheck emits a BinCFI-style return check: the actual return
// target (read from the application stack) must be a member of the
// return-target table — any call-preceded instruction under BinCFI's
// policy — instead of matching a precise shadow stack.
func EmitRetTableCheck(e *dbm.Emitter, in *isa.Instr, tableBase uint64,
	saveFlags bool, dead []isa.Register) {

	scratch, toSave := dbm.PickScratch(2, dead, func(r isa.Register) bool {
		return r == isa.SP || r == isa.FP
	})
	p := &CheckPlan{
		AppAddr: in.Addr, SaveFlags: saveFlags, SaveRegs: toSave,
		S1: scratch[0], S2: scratch[1],
	}
	e.SaveProlog(p.SaveFlags, p.SaveRegs)
	depth := int32(len(toSave)) * 8
	if saveFlags {
		depth += 8
	}
	e.Meta(mk(isa.OpLdQ, func(i *isa.Instr) { i.Rd, i.Rb, i.Disp = p.S1, isa.SP, depth }))
	EmitTableCheck(e, p, tableBase)
	e.RestoreEpilog(p.SaveFlags, p.SaveRegs)
}
