package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libj"
	"repro/internal/obj"
)

func build(t *testing.T, src string) (*obj.Module, *Graph) {
	t.Helper()
	mod, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g, err := Build(mod)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	return mod, g
}

func TestLinearFunction(t *testing.T) {
	_, g := build(t, `
.module t
.entry main
.section .text
main:
    mov r1, 1
    add r1, 2
    ret
`)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	blk := g.SortedBlocks()[0]
	if len(blk.Instrs) != 3 || blk.Terminator().Op != isa.OpRet {
		t.Fatalf("block shape wrong: %d instrs", len(blk.Instrs))
	}
	if len(blk.Succs) != 0 {
		t.Errorf("ret block has successors %v", blk.Succs)
	}
	if g.NumInstrs() != 3 {
		t.Errorf("NumInstrs = %d", g.NumInstrs())
	}
}

func TestDiamondCFG(t *testing.T) {
	mod, g := build(t, `
.module t
.entry main
.section .text
main:
    cmp r1, 0
    je .else
    mov r2, 1
    jmp .join
.else:
    mov r2, 2
.join:
    mov r0, r2
    ret
`)
	_ = mod
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	blocks := g.SortedBlocks()
	entry := blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	// Both arms join at .join.
	join := blocks[3]
	count := 0
	for _, b := range blocks[:3] {
		for _, s := range b.Succs {
			if s == join.Start {
				count++
			}
		}
	}
	if count != 2 {
		t.Errorf("join has %d predecessors, want 2", count)
	}
}

func TestBlockSplittingOnBackEdge(t *testing.T) {
	// The loop head is entered both by fallthrough and by a back edge
	// discovered later, forcing a split.
	_, g := build(t, `
.module t
.entry main
.section .text
main:
    mov r1, 10
    sub r1, 1          ; loop head (target of back edge)
    cmp r1, 0
    jg main+10         ; back edge into the middle of the first run
    ret
`)
	// Expect: [main..mov] [sub..jg] [ret]
	if len(g.Blocks) != 3 {
		for _, b := range g.SortedBlocks() {
			t.Logf("block %#x..%#x (%d instrs)", b.Start, b.End(), len(b.Instrs))
		}
		t.Fatalf("blocks = %d, want 3 (split failed)", len(g.Blocks))
	}
	blocks := g.SortedBlocks()
	if blocks[0].End() != blocks[1].Start {
		t.Error("split blocks not contiguous")
	}
	if got := blocks[0].Succs; len(got) != 1 || got[0] != blocks[1].Start {
		t.Errorf("head succs = %v", got)
	}
}

func TestCallEdgesAndFunctionPartitioning(t *testing.T) {
	mod, g := build(t, `
.module t
.entry main
.section .text
main:
    call helper
    ret
helper:
    mov r0, 1
    ret
`)
	if len(g.CallTargets) != 1 {
		t.Fatalf("call targets = %v", g.CallTargets)
	}
	helper := mod.FindSymbol("helper")
	for _, tgt := range g.CallTargets {
		if tgt != helper.Addr {
			t.Errorf("call target %#x, want helper %#x", tgt, helper.Addr)
		}
	}
	if len(g.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(g.Funcs))
	}
	f := g.FuncAt(helper.Addr)
	if f == nil || f.Name != "helper" {
		t.Fatalf("FuncAt(helper) = %+v", f)
	}
	if f2 := g.FuncAt(helper.Addr + 1); f2 != f {
		t.Error("FuncAt inside helper body should return helper")
	}
}

func TestFunctionInferenceFromCallsWhenStripped(t *testing.T) {
	// With a stripped symbol table, function entries must be inferred
	// from direct call targets.
	src := `
.module t
.strip stripped
.entry main
.section .text
main:
    call fn2
    ret
fn2:
    mov r0, 2
    ret
`
	mod, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(mod)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Funcs) != 2 {
		t.Fatalf("stripped funcs = %d, want 2 (entry + call target)", len(g.Funcs))
	}
}

func TestJumpTableDiscovery(t *testing.T) {
	mod, g := build(t, `
.module t
.entry main
.section .text
main:
    mov r7, 2          ; selector
    cmp r7, 3
    jae .default
    la r6, table
    ldxq r8, [r6+r7*8]
    jmpi r8
.case0:
    mov r0, 0
    ret
.case1:
    mov r0, 1
    ret
.case2:
    mov r0, 2
    ret
.default:
    mov r0, 99
    ret
.section .rodata
table:
    .quad .case0
    .quad .case1
    .quad .case2
`)
	_ = mod
	if len(g.JumpTables) != 1 {
		t.Fatalf("jump tables = %d, want 1", len(g.JumpTables))
	}
	var jt *JumpTable
	for _, v := range g.JumpTables {
		jt = v
	}
	if len(jt.Targets) != 3 {
		t.Fatalf("table targets = %d, want 3", len(jt.Targets))
	}
	// All case blocks must have been recovered.
	for _, tgt := range jt.Targets {
		if g.Blocks[tgt] == nil {
			t.Errorf("jump-table target %#x not recovered as a block", tgt)
		}
	}
	// The dispatch block lists the table targets as successors.
	dispatch := g.BlockAt(jt.JmpAddr)
	if dispatch == nil || !dispatch.HasIndirect {
		t.Fatal("dispatch block missing or not marked indirect")
	}
	if len(dispatch.Succs) != 3 {
		t.Errorf("dispatch succs = %v", dispatch.Succs)
	}
}

func TestComputedGotoIsNotDiscovered(t *testing.T) {
	// Arithmetically computed target: recovery must NOT find the hidden
	// block (this residue is what the dynamic fallback covers, Fig. 14).
	mod, g := build(t, `
.module t
.entry main
.section .text
main:
    la r6, hidden0
    mov r7, 16
    add r6, r7          ; target = hidden0 + 16, computed arithmetically
    jmpi r6
hidden0:
    .zero 16            ; 16 bytes of padding (data in code!)
hidden:
    mov r0, 42
    ret
`)
	hidden := mod.FindSymbol("hidden")
	if hidden == nil {
		t.Fatal("no hidden symbol?")
	}
	// Strip the symbol-table seed effect by rebuilding without symbols.
	mod.SymLevel = obj.SymStripped
	for i := range mod.Symbols {
		mod.Symbols[i].Exported = false
	}
	g, err := Build(mod)
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks[hidden.Addr] != nil {
		t.Error("computed-goto target was statically discovered; expected a coverage gap")
	}
	_ = g
}

func TestDataCodePointerSeeds(t *testing.T) {
	// A callback table in .data seeds recovery of an otherwise
	// unreferenced function.
	mod, g := build(t, `
.module t
.strip stripped
.entry main
.section .text
main:
    ret
orphan:
    mov r0, 7
    ret
.section .data
cbtable:
    .quad orphan
`)
	orphan := uint64(0)
	for _, s := range mod.Symbols {
		if s.Name == "orphan" {
			orphan = s.Addr
		}
	}
	if g.Blocks[orphan] == nil {
		t.Error("data code pointer did not seed block recovery")
	}
}

func TestPLTAndInitCovered(t *testing.T) {
	// .plt stubs and .init code must be recovered (coverage beyond .text,
	// unlike Janus).
	mod, err := asm.Assemble(`
.module t
.entry main
.needs libj.jef
.import malloc
.section .init
initfn:
    ret
.section .text
main:
    call malloc
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(mod)
	if err != nil {
		t.Fatal(err)
	}
	plt := mod.Section(".plt")
	foundPLT := false
	for start := range g.Blocks {
		if plt.Contains(start) {
			foundPLT = true
		}
	}
	if !foundPLT {
		t.Error("no blocks recovered in .plt")
	}
	initSec := mod.Section(".init")
	if g.Blocks[initSec.Addr] == nil {
		t.Error(".init code not recovered")
	}
	// The resolver stub's `push r0; ret` tail must be inside a recovered
	// block whose terminator is ret.
	stub := g.BlockAt(plt.Addr)
	if stub == nil {
		t.Fatal("plt0 not recovered")
	}
}

func TestLibjFullRecovery(t *testing.T) {
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(lj)
	if err != nil {
		t.Fatal(err)
	}
	// Every exported function must be a recovered function with blocks.
	for _, s := range lj.FuncSymbols() {
		f := g.FuncAt(s.Addr)
		if f == nil {
			t.Errorf("function %s not partitioned", s.Name)
			continue
		}
		if len(f.Blocks) == 0 && f.Entry == s.Addr {
			t.Errorf("function %s has no blocks", s.Name)
		}
		if g.Blocks[s.Addr] == nil {
			t.Errorf("function %s entry block missing", s.Name)
		}
	}
	// qsort contains an indirect call block.
	qsort := lj.FindSymbol("qsort")
	f := g.FuncAt(qsort.Addr)
	hasIndirect := false
	for _, b := range f.Blocks {
		if b.Terminator().Op == isa.OpCallI {
			hasIndirect = true
		}
	}
	if !hasIndirect {
		t.Error("qsort's indirect callback call not recovered")
	}
	// Blocks partition: no two blocks overlap.
	blocks := g.SortedBlocks()
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1].End() > blocks[i].Start {
			t.Errorf("blocks overlap: %#x..%#x and %#x",
				blocks[i-1].Start, blocks[i-1].End(), blocks[i].Start)
		}
	}
}

func TestSuccessorsAreRecoveredBlocks(t *testing.T) {
	lj, _ := libj.Module()
	g, _ := Build(lj)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.Blocks[s] == nil {
				t.Errorf("block %#x has unrecovered successor %#x", b.Start, s)
			}
		}
	}
}

func TestDataInCodeStopsRecovery(t *testing.T) {
	// Undecodable bytes inside .text (a constant pool) must not be
	// swallowed into blocks: recovery stops, it never guesses.
	_, g := build(t, `
.module t
.entry main
.section .text
main:
    jmp after
pool:
    .byte 0, 0, 0, 0, 0, 0, 0, 0
after:
    ret
`)
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == isa.OpInvalid {
				t.Fatal("invalid instruction in recovered block")
			}
		}
	}
}
