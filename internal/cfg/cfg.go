// Package cfg implements static disassembly and control-flow-graph recovery
// for JEF modules — the core-layer "disassembly & control flow" stage of
// Janitizer's static analyzer (Fig. 2a).
//
// Unlike Janus, which builds control flow only for .text and only for code
// it deems interesting, recovery here covers every executable section
// (.init, .plt, .text, .fini) and every block reachable from any seed:
// the entry point, function symbols, exported symbols, PLT stubs, section
// starts, data-embedded code pointers and discovered jump tables (§3.3.1).
//
// Recovery is deliberately *not* guaranteed complete: targets of indirect
// control transfers that are computed arithmetically (rather than loaded
// from a recognisable jump table) are undiscoverable, exactly the residue
// that Janitizer's dynamic fallback exists to cover (Fig. 14).
package cfg

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obj"
)

// BasicBlock is a maximal straight-line instruction run at link-time
// addresses. A block ends at the first control-transfer instruction or at
// the start of another block (fallthrough).
type BasicBlock struct {
	Start  uint64
	Instrs []isa.Instr
	// Succs are the statically known successor block addresses: branch
	// targets, fallthroughs, and call fallthroughs. Call/jump-table
	// targets discovered statically are included.
	Succs []uint64
	// HasIndirect records that the terminator is an indirect CTI whose
	// full target set is unknown statically.
	HasIndirect bool
	// Fn is the containing function (set during partitioning).
	Fn *Function
}

// End returns the address one past the last instruction.
func (b *BasicBlock) End() uint64 {
	last := &b.Instrs[len(b.Instrs)-1]
	return last.Addr + uint64(last.Size)
}

// Terminator returns the final instruction of the block.
func (b *BasicBlock) Terminator() *isa.Instr { return &b.Instrs[len(b.Instrs)-1] }

// Function groups blocks under a recognised function entry.
type Function struct {
	Name   string
	Entry  uint64
	End    uint64 // exclusive upper bound of the function's address range
	Blocks []*BasicBlock
}

// JumpTable describes a discovered indirect-jump dispatch table.
type JumpTable struct {
	JmpAddr   uint64   // address of the jmpi instruction
	TableAddr uint64   // link-time address of the table data
	Targets   []uint64 // link-time target addresses
}

// Graph is the recovered control-flow graph of one module.
type Graph struct {
	Module *obj.Module
	// Blocks maps block start addresses to blocks.
	Blocks map[uint64]*BasicBlock
	// Funcs are the recognised functions, sorted by entry address.
	Funcs []*Function
	// JumpTables maps jmpi instruction addresses to their tables.
	JumpTables map[uint64]*JumpTable
	// CallTargets maps call-site instruction addresses to their direct
	// targets (for call-graph construction).
	CallTargets map[uint64]uint64
	// boundaries is the set of recovered instruction addresses.
	boundaries map[uint64]bool
}

// IsInstrBoundary reports whether addr is the address of a recovered
// instruction.
func (g *Graph) IsInstrBoundary(addr uint64) bool { return g.boundaries[addr] }

// NumInstrs returns the total number of recovered instructions.
func (g *Graph) NumInstrs() int { return len(g.boundaries) }

// BlockAt returns the block containing addr (not necessarily starting at
// it), or nil.
func (g *Graph) BlockAt(addr uint64) *BasicBlock {
	if b, ok := g.Blocks[addr]; ok {
		return b
	}
	for _, b := range g.Blocks {
		if addr >= b.Start && addr < b.End() {
			return b
		}
	}
	return nil
}

// FuncAt returns the function whose range contains addr, or nil.
func (g *Graph) FuncAt(addr uint64) *Function {
	i := sort.Search(len(g.Funcs), func(i int) bool { return g.Funcs[i].Entry > addr })
	if i == 0 {
		return nil
	}
	f := g.Funcs[i-1]
	if addr < f.End {
		return f
	}
	return nil
}

// FuncEntries returns the sorted set of function entry addresses.
func (g *Graph) FuncEntries() []uint64 {
	out := make([]uint64, len(g.Funcs))
	for i, f := range g.Funcs {
		out[i] = f.Entry
	}
	return out
}

// SortedBlocks returns all blocks in address order.
func (g *Graph) SortedBlocks() []*BasicBlock {
	out := make([]*BasicBlock, 0, len(g.Blocks))
	for _, b := range g.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Build recovers the control-flow graph of mod. extraSeeds may supply
// additional known code addresses (e.g. from profiles).
func Build(mod *obj.Module, extraSeeds ...uint64) (*Graph, error) {
	g := &Graph{
		Module:      mod,
		Blocks:      map[uint64]*BasicBlock{},
		JumpTables:  map[uint64]*JumpTable{},
		CallTargets: map[uint64]uint64{},
		boundaries:  map[uint64]bool{},
	}
	b := &builder{g: g, mod: mod}
	b.run(extraSeeds)
	g.partitionFunctions()
	return g, nil
}

type builder struct {
	g   *Graph
	mod *obj.Module
	// worklist of candidate block starts
	work []uint64
}

func (b *builder) enqueue(addr uint64) {
	if b.inExec(addr) {
		b.work = append(b.work, addr)
	}
}

func (b *builder) inExec(addr uint64) bool {
	sec := b.mod.SectionAt(addr)
	return sec != nil && sec.Executable()
}

// run performs recursive-traversal disassembly.
func (b *builder) run(extraSeeds []uint64) {
	mod := b.mod
	// Seeds: entry, all visible function symbols, every executable
	// section start (.init/.fini/.plt bodies), PLT stubs, extras.
	if mod.Entry != 0 {
		b.enqueue(mod.Entry)
	}
	for _, s := range mod.FuncSymbols() {
		b.enqueue(s.Addr)
	}
	for _, s := range mod.ExportedSymbols() {
		if s.Kind == obj.SymFunc {
			b.enqueue(s.Addr)
		}
	}
	for _, sec := range mod.ExecSections() {
		b.enqueue(sec.Addr)
	}
	for i := range mod.Imports {
		b.enqueue(mod.Imports[i].PLT)
		b.enqueue(mod.Imports[i].PLT + 8) // lazy stub
	}
	for _, s := range extraSeeds {
		b.enqueue(s)
	}
	// Data-embedded code pointers (relocated quads and plain quads that
	// land in executable sections) are additional seeds: jump tables and
	// callback tables live in .rodata/.data.
	for _, ptr := range b.scanDataCodePointers() {
		b.enqueue(ptr)
	}

	for len(b.work) > 0 {
		addr := b.work[len(b.work)-1]
		b.work = b.work[:len(b.work)-1]
		b.explore(addr)
	}
}

// scanDataCodePointers returns aligned 8-byte words in non-executable
// sections whose values fall inside executable sections. This is the
// seed-level analogue of symbolization: jump tables and function-pointer
// tables produce such words. (The byte-granular sliding-window scan used by
// the CFI policy lives in the jcfi package; here alignment keeps seeds
// high-confidence.)
func (b *builder) scanDataCodePointers() []uint64 {
	var out []uint64
	for i := range b.mod.Sections {
		sec := &b.mod.Sections[i]
		if sec.Executable() {
			continue
		}
		for off := 0; off+8 <= len(sec.Data); off += 8 {
			v := binary.LittleEndian.Uint64(sec.Data[off:])
			if b.inExec(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// explore decodes the block starting at addr, splitting existing blocks if
// addr lands inside one at an instruction boundary.
func (b *builder) explore(addr uint64) {
	g := b.g
	if _, ok := g.Blocks[addr]; ok {
		return
	}
	// Inside an existing block at an instruction boundary? Split.
	if g.boundaries[addr] {
		for start, blk := range g.Blocks {
			if addr > start && addr < blk.End() {
				b.split(blk, addr)
				return
			}
		}
		return
	}

	sec := b.mod.SectionAt(addr)
	if sec == nil || !sec.Executable() {
		return
	}
	blk := &BasicBlock{Start: addr}
	pc := addr
	for {
		off := pc - sec.Addr
		if off >= uint64(len(sec.Data)) {
			break // ran off the section; tolerate (undiscovered tail)
		}
		in, err := isa.Decode(sec.Data[off:], pc)
		if err != nil {
			break // undecodable: stop; sound recovery never guesses
		}
		blk.Instrs = append(blk.Instrs, in)
		g.boundaries[pc] = true
		pc += uint64(in.Size)
		if in.IsCTI() {
			b.finishBlock(blk, &in)
			break
		}
		if in.Op == isa.OpSyscall || in.Op == isa.OpTrap {
			// System instructions end blocks so static block boundaries
			// align with the dynamic modifier's block builder.
			blk.Succs = append(blk.Succs, pc)
			break
		}
		if _, isLeader := g.Blocks[pc]; isLeader {
			// Falls through into an existing block.
			blk.Succs = append(blk.Succs, pc)
			break
		}
	}
	if len(blk.Instrs) == 0 {
		return
	}
	g.Blocks[addr] = blk
	for _, s := range blk.Succs {
		b.enqueue(s)
	}
}

// finishBlock records successor edges for a block ending in CTI `in`.
func (b *builder) finishBlock(blk *BasicBlock, in *isa.Instr) {
	fall := in.Addr + uint64(in.Size)
	switch in.Op {
	case isa.OpJmp:
		blk.Succs = append(blk.Succs, in.Target())
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJae:
		blk.Succs = append(blk.Succs, in.Target(), fall)
	case isa.OpCall:
		b.g.CallTargets[in.Addr] = in.Target()
		blk.Succs = append(blk.Succs, in.Target(), fall)
	case isa.OpCallI:
		blk.HasIndirect = true
		blk.Succs = append(blk.Succs, fall)
	case isa.OpJmpI:
		blk.HasIndirect = true
		if jt := b.matchJumpTable(blk, in); jt != nil {
			b.g.JumpTables[in.Addr] = jt
			blk.Succs = append(blk.Succs, jt.Targets...)
		}
	case isa.OpRet, isa.OpHlt:
		// no static successors
	}
}

// split cuts blk at addr (an instruction boundary strictly inside blk).
func (b *builder) split(blk *BasicBlock, addr uint64) {
	g := b.g
	idx := -1
	for i := range blk.Instrs {
		if blk.Instrs[i].Addr == addr {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	tail := &BasicBlock{
		Start:       addr,
		Instrs:      blk.Instrs[idx:],
		Succs:       blk.Succs,
		HasIndirect: blk.HasIndirect,
	}
	blk.Instrs = blk.Instrs[:idx]
	blk.Succs = []uint64{addr}
	blk.HasIndirect = false
	g.Blocks[addr] = tail
}

// matchJumpTable pattern-matches the compiler's jump-table dispatch idiom
// inside blk, ending at the jmpi:
//
//	cmp  rI, N        ; bound check (possibly in a predecessor block)
//	jae  default
//	...
//	mov  rT, table    ; or leapc rT, table
//	ldxq rD, [rT+rI*8]
//	jmpi rD
//
// and loads the table entries from module data. Entries must land at
// recovered-or-plausible code addresses in executable sections.
func (b *builder) matchJumpTable(blk *BasicBlock, jmp *isa.Instr) *JumpTable {
	ins := blk.Instrs
	n := len(ins)
	if n < 2 {
		return nil
	}
	// Find the load producing the jump register.
	var load *isa.Instr
	for i := n - 2; i >= 0; i-- {
		in := &ins[i]
		if in.Op == isa.OpLdXQ && in.Rd == jmp.Rd {
			load = in
			break
		}
		// Another def of the jump register kills the pattern.
		for _, d := range in.RegDefs(nil) {
			if d == jmp.Rd {
				return nil
			}
		}
	}
	if load == nil || load.Disp != 0 {
		return nil
	}
	// Find the table base: a la/leapc/movri of load.Rb before the load.
	var tableAddr uint64
	found := false
	for i := n - 2; i >= 0; i-- {
		in := &ins[i]
		if in.Addr >= load.Addr {
			continue
		}
		if in.Rd == load.Rb {
			switch in.Op {
			case isa.OpMovRI:
				tableAddr = uint64(in.Imm)
				found = true
			case isa.OpLeaPC:
				tableAddr = in.Addr + uint64(in.Size) + uint64(int64(in.Disp))
				found = true
			}
			break
		}
	}
	if !found {
		return nil
	}
	// Find the bound: cmp load.Ri, N in this block (bound checks placed
	// in predecessor blocks limit discovery; we then fall back to
	// validity-bounded reading).
	bound := -1
	for i := n - 2; i >= 0; i-- {
		in := &ins[i]
		if in.Op == isa.OpCmpRI && in.Rd == load.Ri {
			bound = int(in.Imm)
			break
		}
	}
	sec := b.mod.SectionAt(tableAddr)
	if sec == nil || sec.Executable() {
		return nil
	}
	maxEntries := 1024
	if bound > 0 && bound <= maxEntries {
		maxEntries = bound
	}
	jt := &JumpTable{JmpAddr: jmp.Addr, TableAddr: tableAddr}
	for k := 0; k < maxEntries; k++ {
		off := tableAddr + uint64(k)*8 - sec.Addr
		if off+8 > uint64(len(sec.Data)) {
			break
		}
		v := binary.LittleEndian.Uint64(sec.Data[off:])
		if !b.inExec(v) {
			if bound <= 0 {
				break // validity-bounded mode: stop at first non-code word
			}
			return nil // declared bound contains junk: reject the match
		}
		jt.Targets = append(jt.Targets, v)
	}
	if len(jt.Targets) == 0 {
		return nil
	}
	return jt
}

// partitionFunctions assigns blocks to functions. Function entries come from
// visible function symbols, direct call targets, the module entry and PLT
// stubs; each block belongs to the nearest preceding entry.
func (g *Graph) partitionFunctions() {
	mod := g.Module
	entrySet := map[uint64]string{}
	add := func(addr uint64, name string) {
		if _, ok := g.Blocks[addr]; !ok {
			return // only real recovered code starts functions
		}
		if old, ok := entrySet[addr]; !ok || old == "" {
			entrySet[addr] = name
		}
	}
	for _, s := range mod.FuncSymbols() {
		add(s.Addr, s.Name)
	}
	if mod.Entry != 0 {
		add(mod.Entry, "_entry")
	}
	for _, tgt := range g.CallTargets {
		add(tgt, "")
	}
	for i := range mod.Imports {
		add(mod.Imports[i].PLT, mod.Imports[i].Name+"@plt")
	}
	// Also treat each executable section start with code as an entry
	// (covers .init/.fini bodies in stripped modules).
	for _, sec := range mod.ExecSections() {
		add(sec.Addr, "")
	}

	entries := make([]uint64, 0, len(entrySet))
	for a := range entrySet {
		entries = append(entries, a)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	g.Funcs = g.Funcs[:0]
	for i, e := range entries {
		name := entrySet[e]
		if name == "" {
			name = fmt.Sprintf("func_%x", e)
		}
		end := ^uint64(0)
		if i+1 < len(entries) {
			end = entries[i+1]
		}
		// Clamp to the end of the containing section.
		if sec := mod.SectionAt(e); sec != nil {
			secEnd := sec.Addr + uint64(len(sec.Data))
			if end > secEnd {
				end = secEnd
			}
		}
		g.Funcs = append(g.Funcs, &Function{Name: name, Entry: e, End: end})
	}
	for _, blk := range g.Blocks {
		if f := g.FuncAt(blk.Start); f != nil {
			f.Blocks = append(f.Blocks, blk)
			blk.Fn = f
		}
	}
	for _, f := range g.Funcs {
		sort.Slice(f.Blocks, func(i, j int) bool {
			return f.Blocks[i].Start < f.Blocks[j].Start
		})
	}
}
