package jlint

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/vsa"
)

// The static uninit detector is a per-function forward dataflow over the
// feasible CFG tracking which frame bytes (the window [F-fs, F-1]) may and
// must have been written. A load whose byte envelope is wholly disjoint
// from the may-written set reads memory no feasible path initialised — a
// must-alarm. A load whose envelope is not wholly inside the must-written
// set is a may-alarm. Both fire only for loads the block-local definedness
// lattice says feed a sink (the same gate the dynamic JMSan uses), so dead
// and address-only loads never alarm.

// bitset is a fixed-width frame-byte set; bit i covers byte F-fs+i.
type bitset []uint64

func newBitset(n int64) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int64)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int64) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// union folds o into b, reporting whether b changed.
func (b bitset) union(o bitset) bool {
	changed := false
	for i := range b {
		if n := b[i] | o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// intersect folds o into b, reporting whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		if n := b[i] & o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// event kinds within a block, in instruction order.
const (
	evWrite = iota // may-write [lo,hi]; must-write too when exact
	evRead         // sink-feeding frame load of [lo,hi]
	evHavoc        // unknown write target: may-written := universe,
	// must-written := universe (suppresses downstream may-alarms — an
	// unknown store or callee may have initialised anything)
)

type event struct {
	kind   int
	instr  uint64 // anchoring instruction address
	lo, hi int64  // frame-window byte indexes, inclusive
	exact  bool   // write at one provable offset (counts as must-write)
	width  int
}

// defFlow is the per-block dataflow state.
type defFlow struct {
	may     bitset
	mayAll  bool
	must    bitset
	mustAll bool
}

func (d *defFlow) clone(int64) *defFlow {
	return &defFlow{may: d.may.clone(), mayAll: d.mayAll,
		must: d.must.clone(), mustAll: d.mustAll}
}

// joinFrom merges a predecessor out-state, reporting change. may is a
// union, must an intersection; the universe flags fold accordingly.
func (d *defFlow) joinFrom(o *defFlow) bool {
	changed := false
	if o.mayAll && !d.mayAll {
		d.mayAll = true
		changed = true
	}
	if !d.mayAll && d.may.union(o.may) {
		changed = true
	}
	if d.mustAll && !o.mustAll {
		d.mustAll = false
		d.must = o.must.clone()
		changed = true
	} else if !d.mustAll && !o.mustAll && d.must.intersect(o.must) {
		changed = true
	}
	return changed
}

// checkUninit runs the definedness dataflow for one function and returns
// its uninit-read findings.
func (c *checker) checkUninit(fn *cfg.Function, fs int64, wit *witnesses) []Finding {
	if fs <= 0 || fs > maxFrameBytes {
		return nil
	}
	var blocks []*cfg.BasicBlock
	for _, b := range fn.Blocks {
		if wit.seen[b.Start] && len(b.Instrs) > 0 {
			blocks = append(blocks, b)
		}
	}
	if len(blocks) == 0 {
		return nil
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })

	events := map[uint64][]event{}
	for _, b := range blocks {
		events[b.Start] = c.blockEvents(b, fs)
	}

	// Forward fixpoint over the feasible edges. In-states: entry starts
	// with nothing written; every other block starts at the intersection
	// identity (must = universe) until a predecessor reaches it.
	in := map[uint64]*defFlow{}
	apply := func(st *defFlow, evs []event) {
		for _, ev := range evs {
			switch ev.kind {
			case evWrite:
				if !st.mayAll {
					for i := ev.lo; i <= ev.hi; i++ {
						st.may.set(i)
					}
				}
				if ev.exact && !st.mustAll {
					for i := ev.lo; i <= ev.hi; i++ {
						st.must.set(i)
					}
				}
			case evHavoc:
				st.mayAll = true
				st.mustAll = true
			}
		}
	}
	work := []uint64{fn.Entry}
	in[fn.Entry] = &defFlow{may: newBitset(fs), must: newBitset(fs)}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		blk := c.g.BlockAt(cur)
		if blk == nil {
			continue
		}
		out := in[cur].clone(fs)
		apply(out, events[cur])
		for _, s := range c.res.FeasibleSuccs(blk) {
			if !wit.seen[s] {
				continue
			}
			dst, ok := in[s]
			if !ok {
				in[s] = out.clone(fs)
				work = append(work, s)
				continue
			}
			if dst.joinFrom(out) {
				work = append(work, s)
			}
		}
	}

	// Emission pass: replay each block's events against its fixed in-state
	// and judge every sink-feeding read.
	var out []Finding
	for _, blk := range blocks {
		st, ok := in[blk.Start]
		if !ok {
			continue
		}
		cur := st.clone(fs)
		chain := wit.chainTo(blk.Start)
		for _, ev := range events[blk.Start] {
			if ev.kind != evRead {
				apply(cur, []event{ev})
				continue
			}
			mayAny, mustAll := cur.mayAll, cur.mustAll
			for i := ev.lo; i <= ev.hi && !mayAny; i++ {
				mayAny = mayAny || cur.may.get(i)
			}
			for i := ev.lo; i <= ev.hi && mustAll; i++ {
				mustAll = mustAll && cur.must.get(i)
			}
			f := Finding{
				Kind: UninitRead, Func: fn.Name, FuncEntry: fn.Entry,
				Instr: ev.instr, Width: ev.width, Witness: chain,
			}
			switch {
			case !mayAny:
				f.Tier = Must
				f.Detail = fmt.Sprintf(
					"read of [F%+d,F%+d]: no feasible path writes any byte",
					ev.lo-fs, ev.hi-fs)
				out = append(out, f)
			case !mustAll:
				f.Tier = May
				f.Detail = fmt.Sprintf(
					"read of [F%+d,F%+d]: some path leaves bytes unwritten",
					ev.lo-fs, ev.hi-fs)
				out = append(out, f)
			}
		}
	}
	return out
}

// blockEvents extracts the frame write/read events of one block in
// instruction order, judged under the VSA states.
func (c *checker) blockEvents(blk *cfg.BasicBlock, fs int64) []event {
	var evs []event
	clamp := func(lo, hi int64) (int64, int64, bool) {
		// Translate F-relative [lo,hi] to window indexes [0,fs).
		lo, hi = lo+fs, hi+fs
		if hi < 0 || lo >= fs {
			return 0, 0, false
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= fs {
			hi = fs - 1
		}
		return lo, hi, true
	}
	c.res.WalkBlock(blk, func(i int, in *isa.Instr, st *vsa.State) {
		switch {
		case in.Op == isa.OpPush, in.Op == isa.OpPushF:
			sp := st.Regs[isa.SP]
			if !sp.IsFrame() || !sp.Bounded() {
				evs = append(evs, event{kind: evHavoc, instr: in.Addr})
				return
			}
			lo, hi, ok := clamp(sp.Lo-8, sp.Hi-1)
			if ok {
				evs = append(evs, event{kind: evWrite, instr: in.Addr,
					lo: lo, hi: hi, exact: sp.Lo == sp.Hi, width: 8})
			}
		case in.Op == isa.OpCall, in.Op == isa.OpCallI,
			in.Op == isa.OpSyscall, in.Op == isa.OpTrap:
			// A callee holding a pointer into this frame may write any
			// byte; the kernel and VM services likewise.
			evs = append(evs, event{kind: evHavoc, instr: in.Addr})
		case in.IsMemAccess() && in.IsStore():
			a := vsa.AddrValue(st, in)
			w := int64(in.AccessWidth())
			switch {
			case a.IsFrame() && a.Bounded():
				lo, hi, ok := clamp(a.Lo, a.Hi+w-1)
				if ok {
					evs = append(evs, event{kind: evWrite, instr: in.Addr,
						lo: lo, hi: hi, exact: a.Lo == a.Hi, width: int(w)})
				}
			case globalOnly(c, a, w):
				// Provably a store into the module image: cannot alias
				// the stack, no frame effect.
			default:
				evs = append(evs, event{kind: evHavoc, instr: in.Addr})
			}
		case in.IsMemAccess() && !in.IsStore():
			a := vsa.AddrValue(st, in)
			w := int64(in.AccessWidth())
			if !a.IsFrame() || !a.Bounded() {
				return
			}
			// Only judge reads wholly inside the frame window; straddling
			// reads are the spatial checker's business.
			if a.Lo < -fs || a.Hi+w-1 > -1 {
				return
			}
			if !c.def.FeedsSink(in.Addr) {
				return
			}
			if c.isCanarySlot(blk.Fn, a, w) {
				return
			}
			lo, hi, _ := clamp(a.Lo, a.Hi+w-1)
			evs = append(evs, event{kind: evRead, instr: in.Addr,
				lo: lo, hi: hi, width: int(w)})
		}
	})
	return evs
}

// globalOnly reports whether the store address provably lies wholly inside
// one module section (and so cannot alias the stack).
func globalOnly(c *checker, a vsa.Value, w int64) bool {
	eligible := a.Region == vsa.RLink || (a.Region == vsa.RConst && !c.mod.PIC)
	if !eligible || !a.Bounded() || a.Lo < 0 {
		return false
	}
	sec := c.mod.SectionAt(uint64(a.Lo))
	return sec != nil && sec.Contains(uint64(satAdd(a.Hi, w-1)))
}

// isCanarySlot reports whether the read covers a canary slot: the canary
// load before the epilogue check is compiler-managed, not program data.
func (c *checker) isCanarySlot(fn *cfg.Function, a vsa.Value, w int64) bool {
	if fn == nil {
		return false
	}
	for _, off := range c.res.CanarySlots[fn.Entry] {
		if a.Lo <= off+7 && a.Hi+w-1 >= off {
			return true
		}
	}
	return false
}
