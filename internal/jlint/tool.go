package jlint

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/obj"
	"repro/internal/rules"
)

// Tool plugs the static bug detector into the core/anserve tool registry.
// Unlike the sanitizers it has no dynamic side — its whole product is the
// report artifact — so the Tool methods are inert and the service layer
// routes analysis through the ArtifactTool methods instead, giving reports
// the same content-addressed caching and fleet sharding as rule files.
type Tool struct{}

// New returns the jlint tool.
func New() *Tool { return &Tool{} }

// Name implements core.Tool.
func (*Tool) Name() string { return "jlint" }

// ConfigKey pins the report format version into the cache key, so a codec
// change can never serve stale artifacts.
func (*Tool) ConfigKey() string { return fmt.Sprintf("report-v%d", ReportVersion) }

// StaticPass implements core.Tool; the detector emits no rewrite rules.
func (*Tool) StaticPass(*core.StaticContext) []rules.Rule { return nil }

// Instrument implements core.Tool as a no-op.
func (*Tool) Instrument(*dbm.BlockContext, map[uint64][]rules.Rule) []dbm.CInstr { return nil }

// DynFallback implements core.Tool as a no-op.
func (*Tool) DynFallback(*dbm.BlockContext) []dbm.CInstr { return nil }

// RuntimeInit implements core.Tool as a no-op.
func (*Tool) RuntimeInit(*core.Runtime) error { return nil }

// AnalyzeArtifact implements core.ArtifactTool: the marshaled Report.
func (*Tool) AnalyzeArtifact(mod *obj.Module) ([]byte, error) {
	rep, err := Analyze(mod)
	if err != nil {
		return nil, err
	}
	return rep.Marshal(), nil
}

// ValidateArtifact implements core.ArtifactTool: b must decode as a valid
// report for exactly this module's content.
func (*Tool) ValidateArtifact(mod *obj.Module, b []byte) error {
	rep, err := UnmarshalReport(b)
	if err != nil {
		return err
	}
	if rep.Module != mod.Name {
		return fmt.Errorf("jlint: report for module %q, want %q", rep.Module, mod.Name)
	}
	if rep.ModHash != mod.HashString() {
		return fmt.Errorf("jlint: report hash mismatch for %q", mod.Name)
	}
	return nil
}
