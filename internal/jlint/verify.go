package jlint

import (
	"fmt"

	"repro/internal/obj"
)

// Violation is one discrepancy VerifyReport found between a report and its
// from-scratch re-derivation.
type Violation struct {
	// ID is the finding's content ID, or "" for report-level violations.
	ID  string
	Msg string
}

func (v Violation) String() string {
	if v.ID == "" {
		return v.Msg
	}
	return v.ID + ": " + v.Msg
}

// VerifyReport independently re-derives the analysis for mod and checks rep
// against it, the same discipline cmd/jvet applies to elision claims:
//   - the report must be structurally valid and bound to this module;
//   - the must-alarm sets must match exactly in both directions (a stale
//     or fabricated must-alarm is a violation, as is a missing one);
//   - every finding's witness chain must replay over the re-derived
//     feasible CFG, start at the function entry, and end at the block
//     containing the anchoring instruction.
//
// May-alarms are compared as a set too — the analysis is deterministic, so
// any divergence means the report does not belong to these bytes.
func VerifyReport(mod *obj.Module, rep *Report) []Violation {
	var out []Violation
	if err := rep.Validate(); err != nil {
		return []Violation{{Msg: err.Error()}}
	}
	if rep.Module != mod.Name {
		out = append(out, Violation{Msg: fmt.Sprintf(
			"report bound to module %q, verifying %q", rep.Module, mod.Name)})
		return out
	}
	if rep.ModHash != mod.HashString() {
		out = append(out, Violation{Msg: fmt.Sprintf(
			"report bound to content %s…, module is %s…",
			rep.ModHash[:12], mod.HashString()[:12])})
		return out
	}
	fresh, err := Analyze(mod)
	if err != nil {
		return append(out, Violation{Msg: "re-derivation failed: " + err.Error()})
	}

	freshIDs := map[string]*Finding{}
	for i := range fresh.Findings {
		freshIDs[fresh.Findings[i].ID] = &fresh.Findings[i]
	}
	repIDs := map[string]bool{}
	for i := range rep.Findings {
		f := &rep.Findings[i]
		repIDs[f.ID] = true
		if freshIDs[f.ID] == nil {
			out = append(out, Violation{ID: f.ID, Msg: fmt.Sprintf(
				"%s-alarm %s at %#x not re-derivable", f.Tier, f.Kind, f.Instr)})
		}
	}
	for i := range fresh.Findings {
		f := &fresh.Findings[i]
		if !repIDs[f.ID] {
			out = append(out, Violation{ID: f.ID, Msg: fmt.Sprintf(
				"re-derivation found %s-alarm %s at %#x missing from report",
				f.Tier, f.Kind, f.Instr)})
		}
	}

	out = append(out, verifyWitnesses(mod, rep)...)
	return out
}

// verifyWitnesses replays every witness chain over a fresh CFG + VSA: each
// consecutive pair must be a feasible edge and the chain must end at the
// block containing the anchoring instruction.
func verifyWitnesses(mod *obj.Module, rep *Report) []Violation {
	res, g, err := analysisFor(mod)
	if err != nil {
		return []Violation{{Msg: "witness replay: " + err.Error()}}
	}
	var out []Violation
	for i := range rep.Findings {
		f := &rep.Findings[i]
		bad := func(msg string) {
			out = append(out, Violation{ID: f.ID, Msg: "witness: " + msg})
		}
		last := f.Witness[len(f.Witness)-1]
		anchor := g.BlockAt(f.Instr)
		if anchor == nil || anchor.Start != last {
			bad(fmt.Sprintf("chain ends at %#x, instruction %#x is not in that block",
				last, f.Instr))
			continue
		}
		if fn := g.FuncAt(f.FuncEntry); fn == nil || fn.Entry != f.FuncEntry {
			bad(fmt.Sprintf("no function at entry %#x", f.FuncEntry))
			continue
		}
		ok := true
		for j := 0; j+1 < len(f.Witness) && ok; j++ {
			blk := g.BlockAt(f.Witness[j])
			if blk == nil || blk.Start != f.Witness[j] {
				bad(fmt.Sprintf("element %#x is not a block start", f.Witness[j]))
				ok = false
				break
			}
			found := false
			for _, s := range res.FeasibleSuccs(blk) {
				if s == f.Witness[j+1] {
					found = true
				}
			}
			if !found {
				bad(fmt.Sprintf("edge %#x -> %#x is not feasible",
					f.Witness[j], f.Witness[j+1]))
				ok = false
			}
		}
	}
	return out
}
