// Package jlint is Janitizer's whole-module static bug detector: it runs
// the internal/vsa fixpoint over a JEF module and reports *bugs* instead of
// proofs, inverting the strided-interval domain into an unsafety direction.
//
// Findings come in two tiers. A must-alarm means every value in the
// abstract set violates the property — a definite spatial out-of-bounds
// access against the frame or global extents, a definite read of
// never-written frame memory, or an indirect branch whose resolved target
// set contains no admissible entry. A may-alarm means the abstract set
// overlaps a violation without being contained in it. Every finding carries
// a serialisable path witness (function, block chain, anchoring
// instruction) so cmd/jvet can re-derive it from scratch the same way it
// replays elision claims.
package jlint

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// ReportVersion is the report format version; Validate rejects others.
const ReportVersion = 1

// ErrMalformedReport is wrapped by every report-decoding rejection.
var ErrMalformedReport = errors.New("jlint: malformed report")

// Tier is the alarm confidence tier.
type Tier string

// Alarm tiers.
const (
	// Must findings hold for every value in the abstract set: the bug
	// fires on every execution reaching the anchoring instruction.
	Must Tier = "must"
	// May findings overlap a violation without being contained in it.
	May Tier = "may"
)

// Kind is the bug class of a finding.
type Kind string

// Finding kinds.
const (
	// OOBFrame is a spatial out-of-bounds access relative to the frame
	// extents of the containing function.
	OOBFrame Kind = "oob-frame"
	// OOBGlobal is a spatial out-of-bounds access against the module's
	// section extents.
	OOBGlobal Kind = "oob-global"
	// UninitRead is a read of frame memory that no feasible path wrote.
	UninitRead Kind = "uninit-read"
	// BadIndirect is an indirect branch or call whose resolved target set
	// contains no admissible target.
	BadIndirect Kind = "bad-indirect"
)

func validTier(t Tier) bool { return t == Must || t == May }

func validKind(k Kind) bool {
	switch k {
	case OOBFrame, OOBGlobal, UninitRead, BadIndirect:
		return true
	}
	return false
}

// Finding is one reported bug with its re-derivable path witness.
type Finding struct {
	// ID is a stable content hash of the finding (module hash + every
	// field below); identical analyses produce identical IDs.
	ID   string `json:"id"`
	Tier Tier   `json:"tier"`
	Kind Kind   `json:"kind"`
	// Func is the containing function's name, FuncEntry its entry address.
	Func      string `json:"func"`
	FuncEntry uint64 `json:"func_entry"`
	// Instr is the anchoring instruction address (for BadIndirect, the
	// indirect branch itself).
	Instr uint64 `json:"instr"`
	// Width is the access width in bytes (0 when not an access).
	Width int `json:"width,omitempty"`
	// Detail states the violated condition, e.g. the access interval
	// against the frame extent.
	Detail string `json:"detail"`
	// Witness is the feasible block chain from the function entry to the
	// block containing Instr, each element a block start address.
	Witness []uint64 `json:"witness"`
}

// Report is the deterministic analysis product for one module.
type Report struct {
	Version int    `json:"version"`
	Module  string `json:"module"`
	// ModHash is the hex content hash of the analyzed module.
	ModHash  string    `json:"mod_hash"`
	Findings []Finding `json:"findings"`
}

// contentID computes the stable finding ID: a 16-byte hex prefix of the
// SHA-256 over the module hash and every identity-bearing field.
func contentID(modHash string, f *Finding) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%d\x00%d\x00%d\x00%s\x00",
		modHash, f.Tier, f.Kind, f.Func, f.FuncEntry, f.Instr, f.Width, f.Detail)
	for _, w := range f.Witness {
		fmt.Fprintf(h, "%d,", w)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:32]
}

// less is the canonical finding order: function entry, instruction, kind,
// tier, detail. Sorting on it (plus content IDs) makes Marshal byte-stable.
func (f *Finding) less(o *Finding) bool {
	if f.FuncEntry != o.FuncEntry {
		return f.FuncEntry < o.FuncEntry
	}
	if f.Instr != o.Instr {
		return f.Instr < o.Instr
	}
	if f.Kind != o.Kind {
		return f.Kind < o.Kind
	}
	if f.Tier != o.Tier {
		return f.Tier < o.Tier
	}
	return f.Detail < o.Detail
}

// Finalize sorts the findings canonically and stamps every content ID.
// Analyze calls it before returning; external constructors must too.
func (r *Report) Finalize() {
	sort.Slice(r.Findings, func(i, j int) bool {
		return r.Findings[i].less(&r.Findings[j])
	})
	for i := range r.Findings {
		r.Findings[i].ID = contentID(r.ModHash, &r.Findings[i])
	}
}

// Musts returns the must-tier findings.
func (r *Report) Musts() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Tier == Must {
			out = append(out, f)
		}
	}
	return out
}

// Mays returns the may-tier findings.
func (r *Report) Mays() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Tier == May {
			out = append(out, f)
		}
	}
	return out
}

// Marshal encodes the report as byte-stable JSON: findings are emitted in
// canonical order with fixed field order, so identical analyses produce
// identical bytes — the content-addressed cache and the fleet's peer fills
// depend on it.
func (r *Report) Marshal() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Only unsupported types can fail here; the Report struct has none.
		panic("jlint: marshal: " + err.Error())
	}
	return append(b, '\n')
}

// UnmarshalReport decodes and validates report bytes. Any syntactic or
// structural defect — unknown fields, bad version, unsorted findings,
// content-ID mismatches — is rejected with ErrMalformedReport.
func UnmarshalReport(b []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedReport, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data", ErrMalformedReport)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the report's structural invariants.
func (r *Report) Validate() error {
	if r.Version != ReportVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrMalformedReport, r.Version, ReportVersion)
	}
	if r.Module == "" {
		return fmt.Errorf("%w: empty module name", ErrMalformedReport)
	}
	if len(r.ModHash) != 64 {
		return fmt.Errorf("%w: module hash %q is not 64 hex chars", ErrMalformedReport, r.ModHash)
	}
	for _, c := range r.ModHash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: module hash %q is not lowercase hex", ErrMalformedReport, r.ModHash)
		}
	}
	if len(r.Findings) > 1<<20 {
		return fmt.Errorf("%w: %d findings exceeds cap", ErrMalformedReport, len(r.Findings))
	}
	for i := range r.Findings {
		f := &r.Findings[i]
		if !validTier(f.Tier) {
			return fmt.Errorf("%w: finding %d: bad tier %q", ErrMalformedReport, i, f.Tier)
		}
		if !validKind(f.Kind) {
			return fmt.Errorf("%w: finding %d: bad kind %q", ErrMalformedReport, i, f.Kind)
		}
		if f.Width < 0 || f.Width > 8 {
			return fmt.Errorf("%w: finding %d: bad width %d", ErrMalformedReport, i, f.Width)
		}
		if len(f.Witness) == 0 {
			return fmt.Errorf("%w: finding %d: empty witness", ErrMalformedReport, i)
		}
		if len(f.Witness) > 1<<16 {
			return fmt.Errorf("%w: finding %d: witness exceeds cap", ErrMalformedReport, i)
		}
		if f.Witness[0] != f.FuncEntry {
			return fmt.Errorf("%w: finding %d: witness does not start at function entry", ErrMalformedReport, i)
		}
		if i > 0 && !r.Findings[i-1].less(f) {
			return fmt.Errorf("%w: findings %d,%d out of canonical order", ErrMalformedReport, i-1, i)
		}
		if want := contentID(r.ModHash, f); f.ID != want {
			return fmt.Errorf("%w: finding %d: content ID mismatch", ErrMalformedReport, i)
		}
	}
	return nil
}
