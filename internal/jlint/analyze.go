package jlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vsa"
)

// specRounds is the number of top-down entry-specialization rounds. Each
// round is individually sound (call-site joins over-approximate concrete
// entries by induction on call depth); more rounds only add precision for
// constant arguments threaded through constant-calling intermediaries.
const specRounds = 2

// maxFrameBytes bounds the per-function frame window the definedness
// lattice tracks; functions with larger frames skip the uninit analysis.
const maxFrameBytes = 1 << 16

// maxEnum bounds how many strided elements the global OOB check enumerates.
const maxEnum = 64

// analysisFor builds the detector's analysis inputs: the recovered CFG and
// the entry-specialized VSA fixpoint. VerifyReport re-derives through the
// same path, so witnesses replay against identical feasibility judgements.
func analysisFor(mod *obj.Module) (*vsa.Result, *cfg.Graph, error) {
	g, err := cfg.Build(mod)
	if err != nil {
		return nil, nil, fmt.Errorf("jlint: %s: %w", mod.Name, err)
	}
	canaries := analysis.FindCanaries(g)
	res := vsa.Analyze(mod, g, canaries)
	// Top-down entry specialization: functions only ever entered through
	// direct transfers get the join of their call sites' argument values
	// as entry state, turning path-dependent may-alarms into must-alarms.
	for round := 0; round < specRounds; round++ {
		ov := specializeEntries(mod, g, res)
		if len(ov) == 0 {
			break
		}
		res = vsa.AnalyzeWithEntries(mod, g, canaries, ov)
	}
	return res, g, nil
}

// Analyze runs the static bug detection over one module and returns its
// finalized, deterministic report.
func Analyze(mod *obj.Module) (*Report, error) {
	res, g, err := analysisFor(mod)
	if err != nil {
		return nil, err
	}
	live := analysis.ComputeLiveness(g, true)
	def := analysis.ComputeDefinedness(g, live)

	a := &checker{mod: mod, g: g, res: res, def: def}
	rep := &Report{Version: ReportVersion, Module: mod.Name, ModHash: mod.HashString()}
	for _, fn := range g.Funcs {
		if res.Poisoned[fn.Entry] || strings.HasSuffix(fn.Name, "@plt") {
			continue
		}
		rep.Findings = append(rep.Findings, a.checkFunc(fn)...)
	}
	rep.Finalize()
	return rep, nil
}

// specializeEntries derives entry-state overrides for functions that are
// provably only entered through this module's direct calls and tail
// transfers: not the module entry, never address-taken (no lea/mov
// materialization, no data word, no jump table), and — for shared objects,
// whose exports are externally callable — not exported. The override joins
// the abstract argument values over every transfer site under res; only
// non-symbolic (integer or link-address) bounded joins survive.
func specializeEntries(mod *obj.Module, g *cfg.Graph, res *vsa.Result) map[uint64]*vsa.RegOverride {
	taken := addressTaken(mod, g)
	exported := map[uint64]bool{}
	if mod.Type == obj.SharedObj {
		for _, s := range mod.ExportedSymbols() {
			if s.Kind == obj.SymFunc {
				exported[s.Addr] = true
			}
		}
	}
	candidate := map[uint64]bool{}
	for _, fn := range g.Funcs {
		if fn.Entry == mod.Entry || taken[fn.Entry] || exported[fn.Entry] ||
			res.Poisoned[fn.Entry] || strings.HasSuffix(fn.Name, "@plt") {
			continue
		}
		candidate[fn.Entry] = true
	}
	if len(candidate) == 0 {
		return nil
	}

	// Join argument values over every transfer site. joins[entry][r] is
	// Bot until the first site contributes, then the running join.
	joins := map[uint64]*vsa.RegOverride{}
	sawSite := map[uint64]bool{}
	contribute := func(entry uint64, st *vsa.State) {
		ov := joins[entry]
		if ov == nil {
			ov = &vsa.RegOverride{}
			for r := range ov {
				ov[r] = vsa.Bot()
			}
			joins[entry] = ov
		}
		sawSite[entry] = true
		for r := isa.Register(0); r < isa.NumRegs; r++ {
			ov[r] = ov[r].Join(st.Regs[r])
		}
	}
	for _, blk := range g.SortedBlocks() {
		if len(blk.Instrs) == 0 {
			continue
		}
		term := blk.Terminator()
		// States at the terminator: transfer happens at the instruction
		// for CTIs; for plain fallthrough the terminator executes first.
		var preTerm, postTerm *vsa.State
		ok := res.WalkBlock(blk, func(i int, in *isa.Instr, st *vsa.State) {
			if i == len(blk.Instrs)-1 {
				preTerm = st.Clone()
			}
		})
		if !ok || preTerm == nil {
			continue // unreached block: contributes no concrete entries
		}
		switch term.Op {
		case isa.OpCall:
			if candidate[term.Target()] {
				contribute(term.Target(), preTerm)
			}
		case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle,
			isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJae:
			t := term.Target()
			if candidate[t] && crossFn(g, blk, t) {
				contribute(t, preTerm)
			}
			if term.Op != isa.OpJmp {
				// Conditional fallthrough into another function's entry.
				fall := term.Addr + uint64(term.Size)
				if candidate[fall] && crossFn(g, blk, fall) {
					contribute(fall, preTerm)
				}
			}
		case isa.OpCallI, isa.OpJmpI, isa.OpRet, isa.OpHlt:
			// Indirect transfers cannot reach a never-address-taken
			// function; returns and halts transfer nowhere.
		default:
			postTerm = preTerm.Clone()
			res.Step(postTerm, term)
			for _, s := range blk.Succs {
				if candidate[s] && crossFn(g, blk, s) {
					contribute(s, postTerm)
				}
			}
		}
	}

	out := map[uint64]*vsa.RegOverride{}
	for entry, ov := range joins {
		if !sawSite[entry] {
			continue
		}
		kept := &vsa.RegOverride{}
		any := false
		for r := isa.Register(0); r < isa.NumRegs; r++ {
			v := ov[r]
			if r == isa.SP || !v.Bounded() ||
				(v.Region != vsa.RConst && v.Region != vsa.RLink) {
				continue // keep the symbolic entry value
			}
			kept[r] = v
			any = true
		}
		if any {
			out[entry] = kept
		}
	}
	return out
}

// crossFn reports whether t is the entry of a function other than blk's.
func crossFn(g *cfg.Graph, blk *cfg.BasicBlock, t uint64) bool {
	tf := g.FuncAt(t)
	return tf != nil && tf.Entry == t && tf != blk.Fn
}

// addressTaken marks function entries whose address escapes into data or a
// register: lea/mov materializations, data words decoding to the entry, and
// jump-table targets. A transfer to such a function can originate anywhere,
// so its entry state must stay fully symbolic.
func addressTaken(mod *obj.Module, g *cfg.Graph) map[uint64]bool {
	entries := map[uint64]bool{}
	for _, fn := range g.Funcs {
		entries[fn.Entry] = true
	}
	taken := map[uint64]bool{}
	for _, blk := range g.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case isa.OpLeaPC:
				if entries[in.Target()] {
					taken[in.Target()] = true
				}
			case isa.OpMovRI:
				if in.Imm > 0 && entries[uint64(in.Imm)] {
					taken[uint64(in.Imm)] = true
				}
			}
		}
	}
	for _, jt := range g.JumpTables {
		for _, t := range jt.Targets {
			if entries[t] {
				taken[t] = true
			}
		}
	}
	for i := range mod.Sections {
		sec := &mod.Sections[i]
		if sec.Executable() {
			continue
		}
		for off := 0; off+8 <= len(sec.Data); off += 8 {
			w := leUint64(sec.Data[off:])
			if entries[w] {
				taken[w] = true
			}
		}
	}
	return taken
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// checker holds the per-module analysis inputs for finding generation.
type checker struct {
	mod *obj.Module
	g   *cfg.Graph
	res *vsa.Result
	def *analysis.Definedness
}

// checkFunc derives every finding for one function: spatial frame/global
// violations, bad indirect transfers, and never-written frame reads.
func (c *checker) checkFunc(fn *cfg.Function) []Finding {
	var out []Finding
	fs := c.res.FrameSizes[fn.Entry]
	spFixed := c.frameFixed(fn)
	wit := newWitnesses(c.res, fn)

	blocks := append([]*cfg.BasicBlock(nil), fn.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })
	for _, blk := range blocks {
		if !c.res.BlockReached(blk.Start) {
			continue
		}
		chain := wit.chainTo(blk.Start)
		if chain == nil {
			continue // reachable per states but not via feasible edges: skip
		}
		c.res.WalkBlock(blk, func(i int, in *isa.Instr, st *vsa.State) {
			if in.IsMemAccess() {
				out = append(out, c.checkAccess(fn, fs, spFixed, in, st, chain)...)
			}
			if i == len(blk.Instrs)-1 && (in.Op == isa.OpJmpI || in.Op == isa.OpCallI) {
				out = append(out, c.checkIndirect(fn, blk, in, st, chain)...)
			}
		})
	}

	out = append(out, c.checkUninit(fn, fs, wit)...)
	return out
}

// frameFixed reports whether the function's static frame size covers every
// SP excursion: no pushes or SP-lowering arithmetic outside the entry
// block. Below-frame must-alarms are only sound under this condition —
// StackSize derives the frame from the prologue alone.
func (c *checker) frameFixed(fn *cfg.Function) bool {
	for bi, blk := range fn.Blocks {
		first := bi == 0 && blk.Start == fn.Entry
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case isa.OpPush, isa.OpPushF:
				if !first {
					return false
				}
			case isa.OpSubRI:
				if !first && in.Rd == isa.SP && in.Imm > 0 {
					return false
				}
			}
		}
	}
	return true
}

// checkAccess derives spatial findings for one load or store.
func (c *checker) checkAccess(fn *cfg.Function, fs int64, spFixed bool,
	in *isa.Instr, st *vsa.State, chain []uint64) []Finding {

	addr := vsa.AddrValue(st, in)
	w := int64(in.AccessWidth())
	mk := func(tier Tier, kind Kind, detail string) Finding {
		return Finding{
			Tier: tier, Kind: kind, Func: fn.Name, FuncEntry: fn.Entry,
			Instr: in.Addr, Width: int(w), Detail: detail,
			Witness: chain,
		}
	}

	// Frame direction: an access at a provable F-relative offset that
	// lies entirely outside the function's own allocation. The region
	// below the frame is only judged when the prologue covers every SP
	// excursion; the region above skips the pushed return address word.
	if addr.IsFrame() && addr.Bounded() && fs > 0 {
		lo, hi := addr.Lo, satAdd(addr.Hi, w-1)
		switch {
		case spFixed && hi < -fs:
			return []Finding{mk(Must, OOBFrame, fmt.Sprintf(
				"access [F%+d,F%+d] entirely below frame [F-%d,F-1]", lo, hi, fs))}
		case lo >= 8:
			return []Finding{mk(Must, OOBFrame, fmt.Sprintf(
				"access [F%+d,F%+d] entirely above frame and return address", lo, hi))}
		case (lo < -fs && hi >= -fs && spFixed) || (lo <= 7 && hi > 7 && lo >= -fs):
			return []Finding{mk(May, OOBFrame, fmt.Sprintf(
				"access [F%+d,F%+d] straddles frame extent [F-%d,F-1]", lo, hi, fs))}
		}
		return nil
	}

	// Global direction: integer or link-region addresses measured against
	// the section extents. Only address-plausible ranges participate —
	// the interval must start at or beyond the image base, so small
	// integer ranges (byte loads, counters) never alarm.
	eligible := addr.Region == vsa.RLink ||
		(addr.Region == vsa.RConst && !c.mod.PIC)
	if !eligible || !addr.Bounded() || addr.Lo < 0 {
		return nil
	}
	imageLo := c.imageBase()
	if imageLo == 0 || uint64(addr.Lo) < imageLo {
		return nil
	}
	type span struct{ lo, hi uint64 }
	var spans []span
	if n := strideCount(addr); n > 0 && n <= maxEnum {
		for k := int64(0); k < n; k++ {
			a := uint64(addr.Lo + k*addr.Stride)
			spans = append(spans, span{a, a + uint64(w) - 1})
		}
	} else {
		spans = append(spans, span{uint64(addr.Lo), uint64(satAdd(addr.Hi, w-1))})
	}
	bad, good := 0, 0
	for _, s := range spans {
		sec := c.mod.SectionAt(s.lo)
		if sec != nil && sec.Contains(s.hi) {
			good++
		} else {
			bad++
		}
	}
	if bad == 0 {
		return nil
	}
	detail := fmt.Sprintf("access [%#x,%#x] vs section extents",
		uint64(addr.Lo), uint64(satAdd(addr.Hi, w-1)))
	if good == 0 && len(spans) > 1 || (len(spans) == 1 && addrExact(addr)) {
		return []Finding{mk(Must, OOBGlobal, detail)}
	}
	return []Finding{mk(May, OOBGlobal, detail)}
}

// addrExact reports whether the value denotes exactly one concrete address.
func addrExact(v vsa.Value) bool {
	_, ok := v.Singleton()
	return ok
}

// strideCount returns the number of concrete elements a bounded strided
// interval denotes, or 0 when it cannot be enumerated.
func strideCount(v vsa.Value) int64 {
	if !v.Bounded() {
		return 0
	}
	if v.Lo == v.Hi {
		return 1
	}
	if v.Stride <= 0 || (v.Hi-v.Lo)%v.Stride != 0 {
		return 0
	}
	return (v.Hi-v.Lo)/v.Stride + 1
}

// checkIndirect derives bad-indirect findings: an indirect jump or call
// whose abstract target set resolves to concrete addresses none of which is
// admissible. Unresolvable targets yield nothing — absence of a proof is
// not a bug.
func (c *checker) checkIndirect(fn *cfg.Function, blk *cfg.BasicBlock,
	in *isa.Instr, st *vsa.State, chain []uint64) []Finding {

	if in.Op == isa.OpJmpI && c.g.JumpTables[in.Addr] != nil {
		return nil // resolved dispatch table: ordinary edges
	}
	v := st.Regs[in.Rd]
	eligible := v.Region == vsa.RLink || (v.Region == vsa.RConst && !c.mod.PIC)
	if !eligible || !v.Bounded() || v.Lo < 0 {
		return nil
	}
	n := strideCount(v)
	if n <= 0 || n > maxEnum {
		return nil
	}
	// Two grades of inadmissibility. A target outside every executable
	// section can never be code — transferring there faults on any
	// execution. A target inside an executable section that static
	// recovery didn't establish as admissible may still be
	// dynamically-discovered code (the lbm computed-goto pattern), so it
	// can only ever support a may-alarm.
	execTarget := func(t uint64) bool {
		sec := c.mod.SectionAt(t)
		return sec != nil && sec.Executable()
	}
	admissible := func(t uint64) bool {
		if in.Op == isa.OpCallI {
			tf := c.g.FuncAt(t)
			return tf != nil && tf.Entry == t && c.g.IsInstrBoundary(t)
		}
		return c.res.ValidJumpTarget(fn, t)
	}
	nonExec, inadmissible := 0, 0
	for k := int64(0); k < n; k++ {
		t := uint64(v.Lo + k*v.Stride)
		if !execTarget(t) {
			nonExec++
		}
		if !admissible(t) {
			inadmissible++
		}
	}
	if inadmissible == 0 {
		return nil
	}
	what := "jump"
	if in.Op == isa.OpCallI {
		what = "call"
	}
	f := Finding{
		Kind: BadIndirect, Func: fn.Name, FuncEntry: fn.Entry,
		Instr: in.Addr,
		Detail: fmt.Sprintf(
			"indirect %s resolves to %d target(s): %d outside executable sections, %d inadmissible",
			what, n, nonExec, inadmissible),
		Witness: chain,
	}
	if nonExec == int(n) {
		f.Tier = Must
	} else {
		f.Tier = May
	}
	return []Finding{f}
}

// witnesses computes shortest feasible block chains from the function entry
// via BFS over FeasibleSuccs, memoized per function.
type witnesses struct {
	prev map[uint64]uint64
	seen map[uint64]bool
}

func newWitnesses(res *vsa.Result, fn *cfg.Function) *witnesses {
	w := &witnesses{prev: map[uint64]uint64{}, seen: map[uint64]bool{}}
	if len(fn.Blocks) == 0 {
		return w
	}
	blkAt := map[uint64]*cfg.BasicBlock{}
	for _, b := range fn.Blocks {
		blkAt[b.Start] = b
	}
	queue := []uint64{fn.Entry}
	w.seen[fn.Entry] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		blk := blkAt[cur]
		if blk == nil {
			continue
		}
		for _, s := range res.FeasibleSuccs(blk) {
			if !w.seen[s] {
				w.seen[s] = true
				w.prev[s] = cur
				queue = append(queue, s)
			}
		}
	}
	return w
}

// chainTo returns the entry-to-start block chain, or nil when start is not
// reachable over feasible edges.
func (w *witnesses) chainTo(start uint64) []uint64 {
	if !w.seen[start] {
		return nil
	}
	var rev []uint64
	for cur := start; ; {
		rev = append(rev, cur)
		p, ok := w.prev[cur]
		if !ok {
			break
		}
		cur = p
	}
	out := make([]uint64, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// satAdd mirrors the vsa-internal saturating add for the exported Lo/Hi
// sentinel arithmetic.
func satAdd(a, b int64) int64 {
	const minB, maxB = -1 << 63, 1<<63 - 1
	if a == minB || b == minB {
		if a == maxB || b == maxB {
			return maxB
		}
		return minB
	}
	if a == maxB || b == maxB {
		return maxB
	}
	s := a + b
	if b > 0 && s < a {
		return maxB
	}
	if b < 0 && s > a {
		return minB
	}
	return s
}

// imageBase returns the lowest section address, or 0 for an empty image.
func (c *checker) imageBase() uint64 {
	base := uint64(0)
	for i := range c.mod.Sections {
		a := c.mod.Sections[i].Addr
		if base == 0 || a < base {
			base = a
		}
	}
	return base
}
