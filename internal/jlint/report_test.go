package jlint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
)

// capturedReports produces real reports for fuzz seeds and codec tests.
func capturedReports(tb testing.TB) []*Report {
	tb.Helper()
	var out []*Report
	for _, src := range []string{
		`
.module clean
.entry f
.section .text
f:
    mov r0, 0
    hlt
`, `
.module buggy
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 16
    mov r1, 5
    stq [fp-40], r1
    la r7, d
    jmpi r7
    hlt
.section .data
d:
    .quad 1
`} {
		mod, err := asm.Assemble(src)
		if err != nil {
			tb.Fatalf("assemble: %v", err)
		}
		rep, err := Analyze(mod)
		if err != nil {
			tb.Fatalf("analyze: %v", err)
		}
		out = append(out, rep)
	}
	return out
}

func reportCorpusSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	dir := filepath.Join("testdata", "malformed")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatalf("corpus: %v", err)
	}
	var out [][]byte
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatalf("corpus %s: %v", e.Name(), err)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		tb.Fatal("empty malformed corpus")
	}
	return out
}

func TestReportRoundTrip(t *testing.T) {
	for _, rep := range capturedReports(t) {
		b := rep.Marshal()
		got, err := UnmarshalReport(b)
		if err != nil {
			t.Fatalf("%s: %v", rep.Module, err)
		}
		if !bytes.Equal(got.Marshal(), b) {
			t.Errorf("%s: round-trip bytes differ", rep.Module)
		}
	}
}

func TestMalformedReportCorpusRejected(t *testing.T) {
	for i, b := range reportCorpusSeeds(t) {
		_, err := UnmarshalReport(b)
		if err == nil {
			t.Errorf("corpus[%d] accepted", i)
			continue
		}
		if !errors.Is(err, ErrMalformedReport) {
			t.Errorf("corpus[%d]: untyped error: %v", i, err)
		}
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	rep := capturedReports(t)[1]
	if len(rep.Findings) < 2 {
		t.Fatalf("need >= 2 findings, have %d", len(rep.Findings))
	}
	// Edited detail without a re-stamped ID: content mismatch.
	b := rep.Marshal()
	mut := bytes.Replace(b, []byte(rep.Findings[0].Detail),
		[]byte("innocuous"), 1)
	if _, err := UnmarshalReport(mut); !errors.Is(err, ErrMalformedReport) {
		t.Errorf("edited detail accepted: %v", err)
	}
	// Reordered findings: canonical-order violation.
	swapped := *rep
	swapped.Findings = append([]Finding(nil), rep.Findings...)
	swapped.Findings[0], swapped.Findings[1] = swapped.Findings[1], swapped.Findings[0]
	if err := swapped.Validate(); !errors.Is(err, ErrMalformedReport) {
		t.Errorf("reordered findings accepted: %v", err)
	}
}

func FuzzReportCodec(f *testing.F) {
	for _, rep := range capturedReports(f) {
		f.Add(rep.Marshal())
	}
	for _, b := range reportCorpusSeeds(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := UnmarshalReport(data)
		if err != nil {
			if !errors.Is(err, ErrMalformedReport) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Anything accepted must re-marshal to an equally valid report:
		// the byte-stable codec round-trips accept-side canonical forms.
		b := rep.Marshal()
		again, err := UnmarshalReport(b)
		if err != nil {
			t.Fatalf("re-decode of accepted report failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), b) {
			t.Fatal("marshal not a fixpoint")
		}
	})
}
