package jlint

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/juliet"
	"repro/internal/obj"
	"repro/internal/spec"
)

func analyzeAsm(t *testing.T, src string) *Report {
	t.Helper()
	mod, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	rep, err := Analyze(mod)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func mustOfKind(rep *Report, k Kind) []Finding {
	var out []Finding
	for _, f := range rep.Musts() {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

func TestMustFrameOOB(t *testing.T) {
	// [fp-40] with fp = F-8 is F-48: entirely below the 24-byte frame
	// (push fp + sub sp,16). [fp+24] is F+16: past the return address.
	rep := analyzeAsm(t, `
.module t
.entry f
.section .text
f:
    push fp
    mov fp, sp
    sub sp, 16
    mov r1, 5
    stq [fp-40], r1
    ldq r2, [fp+24]
    mov sp, fp
    pop fp
    hlt
`)
	fs := mustOfKind(rep, OOBFrame)
	if len(fs) != 2 {
		t.Fatalf("must oob-frame findings = %d, want 2: %+v", len(fs), rep.Findings)
	}
	for _, f := range fs {
		if f.Func != "f" || len(f.Witness) == 0 {
			t.Errorf("bad finding shape: %+v", f)
		}
	}
}

func TestMustGlobalOOB(t *testing.T) {
	// The load's address is the data label plus 4096: provably past the
	// end of every section in a non-PIC image.
	rep := analyzeAsm(t, `
.module t
.entry f
.section .text
f:
    la r1, glob
    ldq r2, [r1+4096]
    hlt
.section .data
glob:
    .quad 7
`)
	if n := len(mustOfKind(rep, OOBGlobal)); n != 1 {
		t.Fatalf("must oob-global findings = %d, want 1: %+v", n, rep.Findings)
	}
}

func TestMustBadIndirect(t *testing.T) {
	// The computed jump target is a data-section label: never executable.
	rep := analyzeAsm(t, `
.module t
.entry f
.section .text
f:
    la r7, d
    jmpi r7
    hlt
.section .data
d:
    .quad 1
`)
	if n := len(mustOfKind(rep, BadIndirect)); n != 1 {
		t.Fatalf("must bad-indirect findings = %d, want 1: %+v", n, rep.Findings)
	}
}

func TestExecRangeIndirectIsMayOnly(t *testing.T) {
	// The lbm idiom: a computed goto into executable bytes the static
	// recovery never disassembled. Inadmissible, but possibly real code —
	// must stay a may-alarm.
	rep := analyzeAsm(t, `
.module t
.entry f
.section .text
f:
    la r7, hidden
    jmpi r7
hidden:
    mov r0, 1
    hlt
`)
	if n := len(mustOfKind(rep, BadIndirect)); n != 0 {
		t.Fatalf("exec-range indirect produced %d must-alarms: %+v", n, rep.Findings)
	}
}

// TestCWE457Detection is the static half of the acceptance criteria: every
// definite-bug case (the stack and scalar shapes, where the uninit read is
// on the only feasible path) yields a must uninit-read alarm; no good
// variant yields any must-alarm.
func TestCWE457Detection(t *testing.T) {
	for _, c := range juliet.Suite457() {
		for _, v := range []struct {
			name string
			src  string
			bad  bool
		}{{"good", c.Good, false}, {"bad", c.Bad, true}} {
			mod, err := cc.Compile(v.src, cc.Options{Module: "case", O2: true})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", c.ID, v.name, err)
			}
			rep, err := Analyze(mod)
			if err != nil {
				t.Fatalf("%s/%s: analyze: %v", c.ID, v.name, err)
			}
			musts := rep.Musts()
			if !v.bad && len(musts) != 0 {
				t.Errorf("%s/good: %d must-alarms (want 0): %+v", c.ID, len(musts), musts[0])
			}
			if v.bad && c.Definite {
				uninit := mustOfKind(rep, UninitRead)
				if len(uninit) == 0 {
					t.Errorf("%s/bad: definite case missed (findings: %+v)", c.ID, rep.Findings)
				}
			}
		}
	}
}

// TestSafeWorkloadsZeroMustAlarms runs the detector over every suite
// workload module (mains and their library closures): the must tier must
// stay silent on all of them.
func TestSafeWorkloadsZeroMustAlarms(t *testing.T) {
	for _, w := range spec.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			main, reg, err := w.Build(false)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			mods := []*obj.Module{main}
			for _, m := range reg {
				mods = append(mods, m)
			}
			for _, m := range mods {
				rep, err := Analyze(m)
				if err != nil {
					t.Fatalf("analyze %s: %v", m.Name, err)
				}
				for _, f := range rep.Musts() {
					t.Errorf("%s: must-alarm %s in %s at %#x: %s",
						m.Name, f.Kind, f.Func, f.Instr, f.Detail)
				}
			}
		})
	}
}

func TestReportDeterminism(t *testing.T) {
	for _, w := range spec.All()[:6] {
		main, _, err := w.Build(false)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r1, err := Analyze(main)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Analyze(main)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1.Marshal(), r2.Marshal()) {
			t.Errorf("%s: report bytes differ between runs", w.Name)
		}
	}
}

func TestVerifyReport(t *testing.T) {
	for _, c := range juliet.Suite457()[72:76] {
		mod, err := cc.Compile(c.Bad, cc.Options{Module: "case", O2: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(mod)
		if err != nil {
			t.Fatal(err)
		}
		if v := VerifyReport(mod, rep); len(v) != 0 {
			t.Errorf("%s: clean report has %d violations: %v", c.ID, len(v), v[0])
		}
		if len(rep.Findings) == 0 {
			t.Fatalf("%s: expected findings", c.ID)
		}
		// A report with a finding removed must fail re-derivation.
		tampered := &Report{Version: rep.Version, Module: rep.Module,
			ModHash: rep.ModHash, Findings: rep.Findings[1:]}
		tampered.Finalize()
		if v := VerifyReport(mod, tampered); len(v) == 0 {
			t.Errorf("%s: tampered report verified clean", c.ID)
		}
		// A report bound to different module content must be rejected.
		other := &Report{Version: rep.Version, Module: rep.Module,
			ModHash: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}
		other.Finalize()
		if v := VerifyReport(mod, other); len(v) == 0 {
			t.Errorf("%s: wrong-hash report verified clean", c.ID)
		}
	}
}
