package asm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestDisasmReassembleRoundtrip: disassembling a module's .text and feeding
// the text back through the assembler reproduces the exact code bytes —
// the reassembleable-disassembly property Retrowrite-class tools depend on.
func TestDisasmReassembleRoundtrip(t *testing.T) {
	orig, err := Assemble(`
.module t
.entry _start
.base 0x400000
.section .text
_start:
    mov r1, 42
    ldq r2, [sp+8]
    stxb [r3+r4-1], r5
    leax r6, [r7+r8*8+16]
    cmp r1, r2
    jne _start
    calli r6
    pushf
    popf
    trap 7
    ldg r9
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	text := orig.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild assembly from the disassembly. Branch targets print as
	// absolute addresses, so emit them as label-free `sym+off` via a
	// single leading label.
	var b strings.Builder
	b.WriteString(".module t\n.entry L0\n.base 0x400000\n.section .text\nL0:\n")
	for i := range ins {
		line := isa.Disasm(&ins[i])
		// Absolute branch targets -> L0+offset expressions.
		if ins[i].IsCTI() && !ins[i].IsIndirectCTI() && ins[i].Op != isa.OpHlt {
			off := ins[i].Target() - text.Addr
			line = fmt.Sprintf("%s L0+%d", ins[i].Op, off)
		}
		b.WriteString("    " + line + "\n")
	}
	re, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, b.String())
	}
	reText := re.Section(".text")
	if len(reText.Data) != len(text.Data) {
		t.Fatalf("reassembled size %d != %d", len(reText.Data), len(text.Data))
	}
	for i := range text.Data {
		if text.Data[i] != reText.Data[i] {
			t.Fatalf("byte %d differs: %#x vs %#x", i, text.Data[i], reText.Data[i])
		}
	}
}
