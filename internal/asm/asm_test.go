package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
)

func mustAssemble(t *testing.T, src string) *obj.Module {
	t.Helper()
	m, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return m
}

const tinyExec = `
.module prog
.type exec
.base 0x400000
.entry _start

.section .text
_start:
    mov r1, 7
    call main
    mov r1, r0
    mov r0, 1        ; SysExit
    syscall
.global main
main:
    push fp
    mov fp, sp
    add r1, 35
    mov r0, r1
    pop fp
    ret
`

func TestAssembleTinyExec(t *testing.T) {
	m := mustAssemble(t, tinyExec)
	if m.Name != "prog" || m.Type != obj.Exec || m.PIC {
		t.Fatalf("header wrong: %+v", m)
	}
	if m.Base != 0x400000 {
		t.Fatalf("base = %#x", m.Base)
	}
	text := m.Section(".text")
	if text == nil {
		t.Fatal("no .text")
	}
	start := m.FindSymbol("_start")
	if start == nil || start.Addr != m.Entry {
		t.Fatalf("_start symbol %+v, entry %#x", start, m.Entry)
	}
	main := m.FindSymbol("main")
	if main == nil || !main.Exported || main.Kind != obj.SymFunc {
		t.Fatalf("main symbol %+v", main)
	}
	if start.Exported {
		t.Error("_start should not be exported (no .global)")
	}
	// Decode the whole .text and check the instruction stream.
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatalf("decode .text: %v", err)
	}
	if len(ins) != 11 {
		t.Fatalf("decoded %d instructions, want 11:\n%s", len(ins), isa.DisasmBlock(ins))
	}
	// The call must target main.
	var call *isa.Instr
	for i := range ins {
		if ins[i].Op == isa.OpCall {
			call = &ins[i]
		}
	}
	if call == nil || call.Target() != main.Addr {
		t.Fatalf("call target %#x, want main at %#x", call.Target(), main.Addr)
	}
	// Symbol sizes are auto-computed.
	if start.Size == 0 || main.Size == 0 {
		t.Errorf("symbol sizes not filled: start=%d main=%d", start.Size, main.Size)
	}
}

func TestLabelBranchBackwards(t *testing.T) {
	m := mustAssemble(t, `
.module loop
.entry _start
.section .text
_start:
    mov r1, 10
.loop:
    sub r1, 1
    cmp r1, 0
    jne .loop
    hlt
`)
	text := m.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	var jne *isa.Instr
	for i := range ins {
		if ins[i].Op == isa.OpJne {
			jne = &ins[i]
		}
	}
	if jne == nil {
		t.Fatal("no jne")
	}
	// .loop is right after the first mov (10 bytes).
	want := text.Addr + 10
	if jne.Target() != want {
		t.Fatalf("jne target %#x, want %#x", jne.Target(), want)
	}
	// local label must not appear in symbol table
	if m.FindSymbol(".loop") != nil {
		t.Error(".loop leaked into symbol table")
	}
}

func TestMemoryOperands(t *testing.T) {
	m := mustAssemble(t, `
.module mem
.entry f
.section .text
f:
    ldq r1, [sp+8]
    stq [fp-16], r2
    ldb r3, [r4]
    ldxq r5, [r6+r7*8+32]
    stxb [r8+r9-1], r10
    lea r11, [sp+24]
    ret
`)
	text := m.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		op   isa.Op
		rd   isa.Register
		rb   isa.Register
		ri   isa.Register
		disp int32
	}
	wants := []want{
		{isa.OpLdQ, isa.R1, isa.SP, 0, 8},
		{isa.OpStQ, isa.R2, isa.FP, 0, -16},
		{isa.OpLdB, isa.R3, isa.R4, 0, 0},
		{isa.OpLdXQ, isa.R5, isa.R6, isa.R7, 32},
		{isa.OpStXB, isa.R10, isa.R8, isa.R9, -1},
		{isa.OpLea, isa.R11, isa.SP, 0, 24},
		{isa.OpRet, 0, 0, 0, 0},
	}
	if len(ins) != len(wants) {
		t.Fatalf("got %d instrs, want %d:\n%s", len(ins), len(wants), isa.DisasmBlock(ins))
	}
	for i, w := range wants {
		in := ins[i]
		if in.Op != w.op || in.Rd != w.rd || in.Rb != w.rb || in.Ri != w.ri || in.Disp != w.disp {
			t.Errorf("instr %d: got %s (%+v), want %+v", i, isa.Disasm(&in), in, w)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	m := mustAssemble(t, `
.module data
.entry f
.section .text
f:
    ret
.section .data
bytes:
    .byte 1, 2, 0xff
msg:
    .asciz "hi"
.align 8
table:
    .quad f
    .quad 12345
    .long 7
`)
	data := m.Section(".data")
	if data == nil {
		t.Fatal("no .data")
	}
	f := m.FindSymbol("f")
	table := m.FindSymbol("table")
	if table == nil {
		t.Fatal("no table symbol")
	}
	off := table.Addr - data.Addr
	if table.Addr%8 != 0 {
		t.Errorf("table not 8-aligned: %#x", table.Addr)
	}
	got := binary.LittleEndian.Uint64(data.Data[off:])
	if got != f.Addr {
		t.Errorf(".quad f = %#x, want %#x", got, f.Addr)
	}
	if v := binary.LittleEndian.Uint64(data.Data[off+8:]); v != 12345 {
		t.Errorf(".quad 12345 = %d", v)
	}
	if v := binary.LittleEndian.Uint32(data.Data[off+16:]); v != 7 {
		t.Errorf(".long 7 = %d", v)
	}
	if string(data.Data[3:6]) != "hi\x00" {
		t.Errorf("asciz = %q", data.Data[3:6])
	}
	if data.Data[0] != 1 || data.Data[1] != 2 || data.Data[2] != 0xff {
		t.Errorf("bytes = %v", data.Data[:3])
	}
	// Non-PIC module: symbolic .quad needs no reloc.
	for _, r := range m.Relocs {
		if r.Kind == obj.RelRebase {
			t.Errorf("unexpected rebase reloc in non-PIC module: %+v", r)
		}
	}
}

func TestPICModule(t *testing.T) {
	m := mustAssemble(t, `
.module libx.jef
.type shared
.pic
.global f
.section .text
f:
    la r1, tab
    leapc r2, f
    ret
.section .data
tab:
    .quad f
`)
	if !m.PIC || m.Base != 0 {
		t.Fatalf("PIC header wrong: PIC=%v base=%#x", m.PIC, m.Base)
	}
	// la must have become LeaPC, not MovRI.
	text := m.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Op != isa.OpLeaPC {
		t.Fatalf("la in PIC = %v, want leapc", ins[0].Op)
	}
	tab := m.FindSymbol("tab")
	if got := ins[0].Target; got == nil {
		_ = got
	}
	// leapc target: addr+size+disp == tab
	if want := tab.Addr; ins[0].Addr+uint64(ins[0].Size)+uint64(int64(ins[0].Disp)) != want {
		t.Errorf("la disp resolves to %#x, want %#x",
			ins[0].Addr+uint64(ins[0].Size)+uint64(int64(ins[0].Disp)), want)
	}
	// The symbolic .quad must carry a rebase reloc.
	found := false
	for _, r := range m.Relocs {
		if r.Kind == obj.RelRebase && r.Where == tab.Addr {
			found = true
		}
	}
	if !found {
		t.Error("missing RelRebase for .quad f in PIC module")
	}
}

func TestNonPICLa(t *testing.T) {
	m := mustAssemble(t, `
.module abs
.entry f
.section .text
f:
    la r1, f
    ret
`)
	text := m.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Op != isa.OpMovRI {
		t.Fatalf("la in non-PIC = %v, want mov-imm64", ins[0].Op)
	}
	if uint64(ins[0].Imm) != m.FindSymbol("f").Addr {
		t.Errorf("la imm = %#x, want f addr %#x", ins[0].Imm, m.FindSymbol("f").Addr)
	}
}

func TestImportsGeneratePLT(t *testing.T) {
	m := mustAssemble(t, `
.module prog
.entry _start
.needs libj.jef
.import malloc
.import free
.section .text
_start:
    mov r1, 64
    call malloc
    mov r1, r0
    call free
    hlt
`)
	if len(m.Imports) != 2 {
		t.Fatalf("imports = %d, want 2", len(m.Imports))
	}
	plt := m.Section(".plt")
	got := m.Section(".got")
	if plt == nil || got == nil {
		t.Fatal("missing .plt or .got")
	}
	if !plt.Executable() {
		t.Error(".plt not executable")
	}
	if len(plt.Data) != 24*3 {
		t.Errorf(".plt size = %d, want 72", len(plt.Data))
	}
	if len(got.Data) != 16 {
		t.Errorf(".got size = %d, want 16", len(got.Data))
	}

	// calls must target the PLT stubs
	text := m.Section(".text")
	ins, err := isa.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatal(err)
	}
	var calls []uint64
	for i := range ins {
		if ins[i].Op == isa.OpCall {
			calls = append(calls, ins[i].Target())
		}
	}
	if len(calls) != 2 || calls[0] != m.Imports[0].PLT || calls[1] != m.Imports[1].PLT {
		t.Fatalf("call targets %#x, want PLT %#x %#x",
			calls, m.Imports[0].PLT, m.Imports[1].PLT)
	}

	// PLT slot 0 ends in push r0; ret (the ld.so abnormality).
	stub, err := isa.DecodeAll(plt.Data[:8], plt.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if stub[0].Op != isa.OpTrap || stub[0].Imm != isa.TrapResolve {
		t.Errorf("plt0[0] = %s, want trap %d", isa.Disasm(&stub[0]), isa.TrapResolve)
	}
	if stub[1].Op != isa.OpPush || stub[2].Op != isa.OpRet {
		t.Errorf("plt0 tail = %s; %s, want push r0; ret",
			isa.Disasm(&stub[1]), isa.Disasm(&stub[2]))
	}

	// Import stub k: ldpc through its GOT slot then jmpi.
	for k, im := range m.Imports {
		off := im.PLT - plt.Addr
		entry, err := isa.DecodeAll(plt.Data[off:off+8], im.PLT)
		if err != nil {
			t.Fatalf("decode plt entry %d: %v", k, err)
		}
		if entry[0].Op != isa.OpLdPC || entry[1].Op != isa.OpJmpI {
			t.Fatalf("plt entry %d: %s; %s", k,
				isa.Disasm(&entry[0]), isa.Disasm(&entry[1]))
		}
		slot := entry[0].Addr + uint64(entry[0].Size) + uint64(int64(entry[0].Disp))
		if slot != im.GOT {
			t.Errorf("plt entry %d reads %#x, want GOT %#x", k, slot, im.GOT)
		}
		// Initial GOT value: lazy stub at PLT+8.
		init := binary.LittleEndian.Uint64(got.Data[im.GOT-got.Addr:])
		if init != im.PLT+8 {
			t.Errorf("GOT[%d] initial = %#x, want lazy stub %#x", k, init, im.PLT+8)
		}
	}

	// GOT relocs present.
	nGot := 0
	for _, r := range m.Relocs {
		if r.Kind == obj.RelGotFunc {
			nGot++
		}
	}
	if nGot != 2 {
		t.Errorf("RelGotFunc relocs = %d, want 2", nGot)
	}
	if m.Needed[0] != "libj.jef" {
		t.Errorf("needed = %v", m.Needed)
	}
}

func TestSectionOrdering(t *testing.T) {
	m := mustAssemble(t, `
.module ord
.entry f
.import x
.section .data
d: .quad 1
.section .text
f: ret
.section .rodata
r: .byte 9
`)
	var names []string
	for _, s := range m.Sections {
		names = append(names, s.Name)
	}
	want := []string{".plt", ".text", ".rodata", ".data", ".got"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("section order = %v, want %v", names, want)
	}
	// Ascending, non-overlapping addresses (Validate enforces overlap).
	for i := 1; i < len(m.Sections); i++ {
		if m.Sections[i].Addr <= m.Sections[i-1].Addr {
			t.Fatalf("sections not in ascending address order: %v", names)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no module", ".section .text\nf: ret", "missing .module"},
		{"unknown mnemonic", ".module m\n.entry f\nf: frob r1", "unknown mnemonic"},
		{"bad operand combo", ".module m\n.entry f\nf: mov 4, r1", "unsupported operand"},
		{"undefined symbol", ".module m\n.entry f\nf: jmp nowhere", "undefined symbol"},
		{"duplicate label", ".module m\n.entry f\nf: ret\nf: ret", "duplicate label"},
		{"bad directive", ".module m\n.bogus 4", "unknown directive"},
		{"bad type", ".module m\n.type weird", ".type"},
		{"entry undefined", ".module m\n.entry nope\n.section .text\nf: ret", "entry symbol"},
		{"bad reg", ".module m\n.entry f\nf: push r16", "unsupported operand"},
		{"two indexes", ".module m\n.entry f\nf: ldxq r1, [r2+r3+r4]", "two index registers"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCommentsAndLabelsOnOneLine(t *testing.T) {
	m := mustAssemble(t, `
.module c
.entry f
.section .text
f: mov r1, 1   ; trailing comment
   # whole-line comment
   // another
g: h: ret      ; two labels share an address
`)
	g := m.FindSymbol("g")
	h := m.FindSymbol("h")
	if g == nil || h == nil || g.Addr != h.Addr {
		t.Fatalf("g=%+v h=%+v", g, h)
	}
}

func TestStripLevels(t *testing.T) {
	m := mustAssemble(t, ".module m\n.strip stripped\n.entry f\n.section .text\nf: ret")
	if m.SymLevel != obj.SymStripped {
		t.Errorf("symlevel = %v", m.SymLevel)
	}
}

func TestRoundtripThroughMarshal(t *testing.T) {
	m := mustAssemble(t, tinyExec)
	m2, err := obj.Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Entry != m.Entry {
		t.Error("marshal roundtrip lost header fields")
	}
}
