package asm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obj"
)

// mnemonic tables. RR-vs-RI ALU selection happens on operand shape.
var aluRR = map[string]isa.Op{
	"add": isa.OpAddRR, "sub": isa.OpSubRR, "mul": isa.OpMulRR,
	"div": isa.OpDivRR, "rem": isa.OpRemRR, "and": isa.OpAndRR,
	"or": isa.OpOrRR, "xor": isa.OpXorRR, "shl": isa.OpShlRR,
	"shr": isa.OpShrRR, "cmp": isa.OpCmpRR, "test": isa.OpTestRR,
}

var aluRI = map[string]isa.Op{
	"add": isa.OpAddRI, "sub": isa.OpSubRI, "mul": isa.OpMulRI,
	"and": isa.OpAndRI, "or": isa.OpOrRI, "xor": isa.OpXorRI,
	"shl": isa.OpShlRI, "shr": isa.OpShrRI, "cmp": isa.OpCmpRI,
}

var branches = map[string]isa.Op{
	"jmp": isa.OpJmp, "je": isa.OpJe, "jne": isa.OpJne, "jl": isa.OpJl,
	"jle": isa.OpJle, "jg": isa.OpJg, "jge": isa.OpJge, "jb": isa.OpJb,
	"jae": isa.OpJae, "call": isa.OpCall,
}

var loads = map[string]isa.Op{
	"ldq": isa.OpLdQ, "ldb": isa.OpLdB, "lea": isa.OpLea,
}

var stores = map[string]isa.Op{
	"stq": isa.OpStQ, "stb": isa.OpStB,
}

var loadsX = map[string]isa.Op{
	"ldxq": isa.OpLdXQ, "ldxb": isa.OpLdXB,
	"leax": isa.OpLeaX, "leaxb": isa.OpLeaXB,
}

var storesX = map[string]isa.Op{
	"stxq": isa.OpStXQ, "stxb": isa.OpStXB,
}

var nullary = map[string]isa.Op{
	"ret": isa.OpRet, "syscall": isa.OpSyscall, "nop": isa.OpNop,
	"hlt": isa.OpHlt, "pushf": isa.OpPushF, "popf": isa.OpPopF,
}

var unaryReg = map[string]isa.Op{
	"push": isa.OpPush, "pop": isa.OpPop, "not": isa.OpNot,
	"neg": isa.OpNeg, "jmpi": isa.OpJmpI, "calli": isa.OpCallI,
	"ldg": isa.OpLdG,
}

// laSize is the layout size of the `la` pseudo-instruction: MovRI (10 bytes)
// in non-PIC modules, LeaPC (6 bytes) in PIC modules.
func (a *assembler) laSize() uint64 {
	if a.pic {
		return uint64(isa.EncodedSize(isa.OpLeaPC))
	}
	return uint64(isa.EncodedSize(isa.OpMovRI))
}

// parseInstr parses one instruction line into an item.
func (a *assembler) parseInstr(line string) error {
	if a.cur == nil {
		a.cur = a.sectionNamed(".text")
	}
	mn, rest := splitWord(line)
	var ops []operand
	for _, f := range splitOperands(rest) {
		op, err := parseOperand(f)
		if err != nil {
			return a.errf("%s: %v", mn, err)
		}
		ops = append(ops, op)
	}
	it := item{kind: itemInstr, line: a.line, mn: mn, ops: ops}

	bad := func() error {
		return a.errf("%s: unsupported operand combination", mn)
	}
	nOps := func(n int) bool { return len(ops) == n }
	// asSym reinterprets an operand in a symbol-only position: names that
	// happen to look like registers (a function called "fp", say) are
	// symbols there.
	asSym := func(op operand) operand {
		if op.kind == opReg {
			return operand{kind: opSym, sym: op.reg.String()}
		}
		return op
	}

	switch {
	case mn == "la":
		if !nOps(2) || ops[0].kind != opReg {
			return bad()
		}
		ops[1] = asSym(ops[1])
		it.ops = ops
		if ops[1].kind != opSym {
			return bad()
		}
		// Opcode chosen at emit time (MovRI vs LeaPC); size known now.
		it.in = isa.Instr{Op: isa.OpMovRI, Rd: ops[0].reg}
		if a.pic {
			it.in.Op = isa.OpLeaPC
		}
	case mn == "mov":
		if !nOps(2) || ops[0].kind != opReg {
			return bad()
		}
		switch ops[1].kind {
		case opReg:
			it.in = isa.Instr{Op: isa.OpMovRR, Rd: ops[0].reg, Rb: ops[1].reg}
		case opImm:
			it.in = isa.Instr{Op: isa.OpMovRI, Rd: ops[0].reg, Imm: ops[1].val}
		default:
			return bad()
		}
	case mn == "trap":
		if !nOps(1) || ops[0].kind != opImm {
			return bad()
		}
		it.in = isa.Instr{Op: isa.OpTrap, Imm: ops[0].val}
	case nullary[mn] != 0:
		if !nOps(0) {
			return bad()
		}
		it.in = isa.Instr{Op: nullary[mn]}
	case unaryReg[mn] != 0:
		if !nOps(1) || ops[0].kind != opReg {
			return bad()
		}
		it.in = isa.Instr{Op: unaryReg[mn], Rd: ops[0].reg}
	case mn == "ldpc" || mn == "leapc":
		op := isa.OpLdPC
		if mn == "leapc" {
			op = isa.OpLeaPC
		}
		if nOps(2) && ops[0].kind == opReg && ops[1].kind == opPC {
			it.in = isa.Instr{Op: op, Rd: ops[0].reg, Disp: int32(ops[1].val)}
		} else if nOps(2) && ops[0].kind == opReg &&
			asSym(ops[1]).kind == opSym {
			ops[1] = asSym(ops[1])
			it.ops = ops
			it.in = isa.Instr{Op: op, Rd: ops[0].reg}
		} else {
			return bad()
		}
	case loads[mn] != 0 || loadsX[mn] != 0:
		if !nOps(2) || ops[0].kind != opReg {
			return bad()
		}
		switch {
		case ops[1].kind == opMem && loads[mn] != 0:
			it.in = isa.Instr{Op: loads[mn], Rd: ops[0].reg,
				Rb: ops[1].rb, Disp: int32(ops[1].val)}
		case ops[1].kind == opMemX && loadsX[mn] != 0:
			it.in = isa.Instr{Op: loadsX[mn], Rd: ops[0].reg,
				Rb: ops[1].rb, Ri: ops[1].ri, Disp: int32(ops[1].val)}
		default:
			return bad()
		}
	case stores[mn] != 0 || storesX[mn] != 0:
		if !nOps(2) || ops[1].kind != opReg {
			return bad()
		}
		switch {
		case ops[0].kind == opMem && stores[mn] != 0:
			it.in = isa.Instr{Op: stores[mn], Rd: ops[1].reg,
				Rb: ops[0].rb, Disp: int32(ops[0].val)}
		case ops[0].kind == opMemX && storesX[mn] != 0:
			it.in = isa.Instr{Op: storesX[mn], Rd: ops[1].reg,
				Rb: ops[0].rb, Ri: ops[0].ri, Disp: int32(ops[0].val)}
		default:
			return bad()
		}
	case aluRR[mn] != 0 || aluRI[mn] != 0:
		if !nOps(2) || ops[0].kind != opReg {
			return bad()
		}
		switch {
		case ops[1].kind == opReg && aluRR[mn] != 0:
			it.in = isa.Instr{Op: aluRR[mn], Rd: ops[0].reg, Rb: ops[1].reg}
		case ops[1].kind == opImm && aluRI[mn] != 0:
			it.in = isa.Instr{Op: aluRI[mn], Rd: ops[0].reg, Imm: ops[1].val}
		default:
			return bad()
		}
	case branches[mn] != 0:
		if !nOps(1) {
			return bad()
		}
		ops[0] = asSym(ops[0])
		it.ops = ops
		if ops[0].kind != opSym {
			return bad()
		}
		it.in = isa.Instr{Op: branches[mn]}
	default:
		return a.errf("unknown mnemonic %q", mn)
	}
	a.cur.items = append(a.cur.items, it)
	return nil
}

// canonical section layout order; unknown sections follow in declaration
// order.
var sectionOrder = map[string]int{
	".init": 0, ".plt": 1, ".text": 2, ".fini": 3,
	".rodata": 4, ".data": 5, ".got": 6,
}

const (
	pltEntrySize = 24 // bytes per PLT slot (slot 0 is the resolver stub)
	gotSlotSize  = 8
)

// finish runs layout, symbol resolution and emission.
func (a *assembler) finish() (*obj.Module, error) {
	if a.modName == "" {
		return nil, fmt.Errorf("asm: missing .module directive")
	}
	base := a.base
	if a.pic {
		base = 0
	}

	// Synthesize .plt and .got for imports.
	if len(a.imports) > 0 {
		plt := a.sectionNamed(".plt")
		plt.items = append(plt.items, item{
			kind:  itemData,
			bytes: make([]byte, pltEntrySize*(len(a.imports)+1)),
		})
		got := a.sectionNamed(".got")
		got.items = append(got.items, item{
			kind:  itemData,
			bytes: make([]byte, gotSlotSize*len(a.imports)),
		})
	}

	// Order sections canonically.
	ordered := append([]*section(nil), a.sections...)
	stableSortSections(ordered)

	// Pass 1: layout. Assign addresses to every item and collect symbols.
	symAddr := map[string]uint64{}
	addr := base
	for _, sec := range ordered {
		addr = align(addr, 16)
		secStart := addr
		for i := range sec.items {
			it := &sec.items[i]
			it.addr = addr
			switch it.kind {
			case itemInstr:
				if it.mn == "la" {
					it.size = a.laSize()
				} else {
					it.size = uint64(isa.EncodedSize(it.in.Op))
				}
			case itemLabel:
				if _, dup := symAddr[it.name]; dup {
					return nil, &Error{Line: it.line,
						Msg: fmt.Sprintf("duplicate label %q", it.name)}
				}
				symAddr[it.name] = addr
			case itemData:
				it.size = uint64(len(it.bytes))
			case itemQuad:
				it.size = 8
			case itemLong:
				it.size = 4
			case itemAlign:
				it.size = align(addr, uint64(it.val)) - addr
			}
			addr += it.size
		}
		_ = secStart
	}

	// Import PLT/GOT addresses.
	pltBase, gotBase := uint64(0), uint64(0)
	for _, sec := range ordered {
		if len(sec.items) == 0 {
			continue
		}
		switch sec.name {
		case ".plt":
			pltBase = sec.items[0].addr
		case ".got":
			gotBase = sec.items[0].addr
		}
	}
	imports := make([]obj.Import, len(a.imports))
	importIdx := map[string]int{}
	for k, name := range a.imports {
		imports[k] = obj.Import{
			Name: name,
			PLT:  pltBase + uint64(pltEntrySize*(k+1)),
			GOT:  gotBase + uint64(gotSlotSize*k),
		}
		importIdx[name] = k
	}

	// resolve maps a symbol reference to its link-time address; import
	// names resolve to their PLT stubs.
	resolve := func(sym string, it *item) (uint64, error) {
		if v, ok := symAddr[sym]; ok {
			return v, nil
		}
		if k, ok := importIdx[sym]; ok {
			return imports[k].PLT, nil
		}
		return 0, &Error{Line: it.line, Msg: fmt.Sprintf("undefined symbol %q", sym)}
	}

	// Pass 2: emit bytes.
	mod := &obj.Module{
		Name:     a.modName,
		Type:     a.modType,
		PIC:      a.pic,
		SymLevel: a.symLevel,
		Base:     a.base,
		Needed:   a.needs,
		Imports:  imports,
	}
	if a.pic {
		mod.Base = 0
	}

	for _, sec := range ordered {
		if len(sec.items) == 0 {
			continue
		}
		secAddr := sec.items[0].addr
		var data []byte
		emitAt := func() uint64 { return secAddr + uint64(len(data)) }
		for i := range sec.items {
			it := &sec.items[i]
			// pad to the laid-out address (alignment gaps)
			for emitAt() < it.addr {
				data = append(data, 0)
			}
			switch it.kind {
			case itemLabel:
				if it.name[0] != '.' {
					kind := obj.SymObject
					if sec.flags&obj.SecExec != 0 {
						kind = obj.SymFunc
					}
					mod.Symbols = append(mod.Symbols, obj.Symbol{
						Name: it.name, Addr: it.addr, Kind: kind,
						Exported: a.globals[it.name],
					})
				}
			case itemData:
				if sec.name == ".plt" && len(a.imports) > 0 && i == 0 {
					data = a.emitPLT(data, pltBase, imports)
				} else if sec.name == ".got" && len(a.imports) > 0 && i == 0 {
					data = a.emitGOT(data, pltBase, imports, mod)
				} else {
					data = append(data, it.bytes...)
				}
			case itemQuad, itemLong:
				v := it.val
				if it.sym != "" {
					s, err := resolve(it.sym, it)
					if err != nil {
						return nil, err
					}
					v += int64(s)
					if a.pic && it.kind == itemQuad {
						mod.Relocs = append(mod.Relocs, obj.Reloc{
							Kind: obj.RelRebase, Where: it.addr,
						})
					}
				}
				if it.kind == itemQuad {
					data = appendLE(data, uint64(v), 8)
				} else {
					data = appendLE(data, uint64(v), 4)
				}
			case itemAlign:
				for n := uint64(0); n < it.size; n++ {
					data = append(data, 0)
				}
			case itemInstr:
				var err error
				data, err = a.emitInstr(data, it, resolve)
				if err != nil {
					return nil, err
				}
			}
		}
		mod.Sections = append(mod.Sections, obj.Section{
			Name: sec.name, Addr: secAddr, Data: data, Flags: sec.flags,
		})
	}

	// Symbol sizes: distance to the next symbol in the same section, or to
	// section end.
	fillSymbolSizes(mod)

	if a.entrySym != "" {
		e, ok := symAddr[a.entrySym]
		if !ok {
			return nil, fmt.Errorf("asm: entry symbol %q undefined", a.entrySym)
		}
		mod.Entry = e
	}
	if err := mod.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return mod, nil
}

// emitInstr encodes one instruction item, resolving symbolic operands.
func (a *assembler) emitInstr(data []byte, it *item,
	resolve func(string, *item) (uint64, error)) ([]byte, error) {

	in := it.in
	in.Addr = it.addr
	in.Size = uint32(it.size)
	nextPC := it.addr + it.size

	switch {
	case it.mn == "la":
		target, err := resolve(it.ops[1].sym, it)
		if err != nil {
			return nil, err
		}
		target += uint64(it.ops[1].val)
		if a.pic {
			in.Op = isa.OpLeaPC
			in.Disp = int32(int64(target) - int64(nextPC))
		} else {
			in.Op = isa.OpMovRI
			in.Imm = int64(target)
		}
	case in.Op == isa.OpLdPC || in.Op == isa.OpLeaPC:
		if len(it.ops) == 2 && it.ops[1].kind == opSym {
			target, err := resolve(it.ops[1].sym, it)
			if err != nil {
				return nil, err
			}
			in.Disp = int32(int64(target+uint64(it.ops[1].val)) - int64(nextPC))
		}
	case branches[it.mn] != 0:
		target, err := resolve(it.ops[0].sym, it)
		if err != nil {
			return nil, err
		}
		in.Disp = int32(int64(target+uint64(it.ops[0].val)) - int64(nextPC))
	}
	return isa.Encode(data, &in), nil
}

// emitPLT generates the PLT: slot 0 is the shared lazy-resolution stub that
// ends in `push r0; ret` — deliberately using a return instruction to enter
// the resolved function, reproducing the ld.so lazy-binding control-flow
// abnormality (§4.2.3). Slot k+1 belongs to import k:
//
//	ldpc r11, [got_k]   ; jump through GOT
//	jmpi r11
//	lazy_k: mov r11, k  ; first call lands here via the initial GOT value
//	jmp plt0
func (a *assembler) emitPLT(data []byte, pltBase uint64, imports []obj.Import) []byte {
	emit := func(in isa.Instr, at uint64) uint64 {
		in.Addr = at
		in.Size = isa.EncodedSize(in.Op)
		data = isa.Encode(data, &in)
		return at + uint64(in.Size)
	}
	pad := func(at, until uint64) uint64 {
		for at < until {
			at = emit(isa.Instr{Op: isa.OpNop}, at)
		}
		return at
	}
	// Slot 0: resolver stub.
	at := pltBase
	at = emit(isa.Instr{Op: isa.OpTrap, Imm: isa.TrapResolve}, at)
	at = emit(isa.Instr{Op: isa.OpPush, Rd: isa.R0}, at)
	at = emit(isa.Instr{Op: isa.OpRet}, at)
	at = pad(at, pltBase+pltEntrySize)
	// Import slots.
	for k, im := range imports {
		entry := pltBase + uint64(pltEntrySize*(k+1))
		ldpcSize := uint64(isa.EncodedSize(isa.OpLdPC))
		at = emit(isa.Instr{Op: isa.OpLdPC, Rd: isa.R11,
			Disp: int32(int64(im.GOT) - int64(entry+ldpcSize))}, entry)
		at = emit(isa.Instr{Op: isa.OpJmpI, Rd: isa.R11}, at)
		// lazy stub at entry+8
		at = emit(isa.Instr{Op: isa.OpMovRI, Rd: isa.R11, Imm: int64(k)}, at)
		jmpSize := uint64(isa.EncodedSize(isa.OpJmp))
		at = emit(isa.Instr{Op: isa.OpJmp,
			Disp: int32(int64(pltBase) - int64(at+jmpSize))}, at)
		at = pad(at, entry+pltEntrySize)
	}
	return data
}

// emitGOT fills initial GOT values: the link-time address of each import's
// lazy stub (PLT slot + 8). Each slot also carries a RelGotFunc reloc naming
// the symbol, so eager loaders can bind directly and lazy loaders of PIC
// modules know to rebase.
func (a *assembler) emitGOT(data []byte, pltBase uint64,
	imports []obj.Import, mod *obj.Module) []byte {
	for _, im := range imports {
		lazy := im.PLT + 8
		data = appendLE(data, lazy, 8)
		mod.Relocs = append(mod.Relocs, obj.Reloc{
			Kind: obj.RelGotFunc, Where: im.GOT, Sym: im.Name,
		})
	}
	return data
}

func appendLE(b []byte, v uint64, n int) []byte {
	for i := 0; i < n; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

func align(v, n uint64) uint64 { return (v + n - 1) &^ (n - 1) }

func stableSortSections(secs []*section) {
	// insertion sort by canonical rank (stable, tiny input)
	rank := func(s *section) int {
		if r, ok := sectionOrder[s.name]; ok {
			return r
		}
		return 100
	}
	for i := 1; i < len(secs); i++ {
		for j := i; j > 0 && rank(secs[j]) < rank(secs[j-1]); j-- {
			secs[j], secs[j-1] = secs[j-1], secs[j]
		}
	}
}

// fillSymbolSizes assigns each zero-sized symbol the distance to the next
// symbol in the same section (or the section end).
func fillSymbolSizes(mod *obj.Module) {
	for i := range mod.Symbols {
		s := &mod.Symbols[i]
		if s.Size != 0 {
			continue
		}
		sec := mod.SectionAt(s.Addr)
		if sec == nil {
			continue
		}
		end := sec.Addr + uint64(len(sec.Data))
		for j := range mod.Symbols {
			t := &mod.Symbols[j]
			if t.Addr > s.Addr && t.Addr < end && sec.Contains(t.Addr) {
				end = t.Addr
			}
		}
		s.Size = end - s.Addr
	}
}
