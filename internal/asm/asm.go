// Package asm implements jas, a two-pass assembler from JVA textual
// assembly to JEF modules.
//
// Source structure:
//
//	.module name          module soname
//	.type exec|shared     module type (default exec)
//	.pic                  position-independent (default position-dependent)
//	.base 0x400000        link-time base for non-PIC modules
//	.entry _start         entry symbol (executables)
//	.needs libj.jef       declared dependency (ldd-visible)
//	.import malloc        imported function: synthesizes a PLT stub + GOT slot
//	.global name          export symbol `name`
//	.strip full|exports|stripped   symbol table level (default full)
//	.section .text        switch section
//
//	label:                define a symbol (labels starting with '.' are
//	                      assembly-local and never enter the symbol table)
//	mnemonic operands     one instruction (see package isa)
//	.quad v | sym | sym+off    8-byte datum (symbolic values relocated in PIC)
//	.long v | sym              4-byte datum
//	.byte v, v, ...            bytes
//	.ascii "..." / .asciz "..."
//	.zero n                    n zero bytes
//	.align n                   pad with zeros to an n-byte boundary
//
// Pseudo-instruction: `la rd, sym` materialises a symbol address — a 64-bit
// absolute immediate in non-PIC modules, a PC-relative LeaPC in PIC modules.
// Direct calls/jumps to imported functions are routed through their PLT stub.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/obj"
)

// Error is an assembly diagnostic with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// itemKind discriminates parsed items within a section.
type itemKind uint8

const (
	itemInstr itemKind = iota
	itemLabel
	itemData  // raw bytes known at parse time
	itemQuad  // 8-byte symbolic value
	itemLong  // 4-byte symbolic value
	itemAlign // pad to boundary
)

// operand is a parsed instruction operand.
type operand struct {
	kind opKind
	reg  isa.Register
	ri   isa.Register
	rb   isa.Register
	val  int64  // immediate or displacement
	sym  string // symbol reference
}

type opKind uint8

const (
	opReg  opKind = iota // r3
	opImm                // 42
	opMem                // [rb+disp]
	opMemX               // [rb+ri(*8)+disp]
	opPC                 // [pc+disp]
	opSym                // label
)

// item is one parsed source element.
type item struct {
	kind  itemKind
	line  int
	in    isa.Instr // itemInstr: partially filled instruction
	ops   []operand // itemInstr: original operands for fixup
	mn    string    // itemInstr: mnemonic (for error messages)
	name  string    // itemLabel: symbol name
	bytes []byte    // itemData
	sym   string    // itemQuad/itemLong symbol ("" for pure value)
	val   int64     // itemQuad/itemLong addend or value; itemAlign boundary
	size  uint64    // assigned during layout
	addr  uint64    // assigned during layout
}

// section accumulates items for one output section.
type section struct {
	name  string
	items []item
	flags uint8
}

// assembler holds parse state.
type assembler struct {
	modName  string
	modType  obj.ModuleType
	pic      bool
	base     uint64
	entrySym string
	symLevel obj.SymTabLevel
	needs    []string
	imports  []string
	globals  map[string]bool
	sections []*section
	cur      *section
	line     int
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) sectionNamed(name string) *section {
	for _, s := range a.sections {
		if s.name == name {
			return s
		}
	}
	flags := uint8(0)
	switch name {
	case ".text", ".init", ".fini", ".plt":
		flags = obj.SecExec
	case ".data", ".bss", ".got":
		flags = obj.SecWrite
	}
	s := &section{name: name, flags: flags}
	a.sections = append(a.sections, s)
	return s
}

// Assemble assembles one source file into a JEF module.
func Assemble(src string) (*obj.Module, error) {
	a := &assembler{
		modType:  obj.Exec,
		base:     isa.LayoutExecBase,
		symLevel: obj.SymFull,
		globals:  map[string]bool{},
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.parseLine(raw); err != nil {
			return nil, err
		}
	}
	return a.finish()
}

// parseLine handles one source line.
func (a *assembler) parseLine(raw string) error {
	line := stripComment(raw)
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Label definitions may share a line with an instruction.
	for {
		idx := labelEnd(line)
		if idx < 0 {
			break
		}
		name := line[:idx]
		if err := a.defineLabel(name); err != nil {
			return err
		}
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.parseDirective(line)
	}
	return a.parseInstr(line)
}

// labelEnd returns the index of the ':' terminating a leading label, or -1.
func labelEnd(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if !isIdentChar(c) && !(i == 0 && c == '.') && c != '.' {
			return -1
		}
	}
	return -1
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func (a *assembler) defineLabel(name string) error {
	if a.cur == nil {
		a.cur = a.sectionNamed(".text")
	}
	a.cur.items = append(a.cur.items, item{kind: itemLabel, line: a.line, name: name})
	return nil
}

// parseDirective handles lines beginning with '.'.
func (a *assembler) parseDirective(line string) error {
	word, rest := splitWord(line)
	rest = strings.TrimSpace(rest)
	switch word {
	case ".module":
		a.modName = rest
	case ".type":
		switch rest {
		case "exec":
			a.modType = obj.Exec
		case "shared":
			a.modType = obj.SharedObj
		default:
			return a.errf(".type: want exec or shared, got %q", rest)
		}
	case ".pic":
		a.pic = true
	case ".base":
		v, err := parseInt(rest)
		if err != nil {
			return a.errf(".base: %v", err)
		}
		a.base = uint64(v)
	case ".entry":
		a.entrySym = rest
	case ".needs":
		a.needs = append(a.needs, rest)
	case ".import":
		a.imports = append(a.imports, rest)
	case ".global":
		a.globals[rest] = true
	case ".strip":
		switch rest {
		case "full":
			a.symLevel = obj.SymFull
		case "exports":
			a.symLevel = obj.SymExports
		case "stripped":
			a.symLevel = obj.SymStripped
		default:
			return a.errf(".strip: want full, exports or stripped, got %q", rest)
		}
	case ".section":
		a.cur = a.sectionNamed(rest)
	case ".quad", ".long":
		if a.cur == nil {
			return a.errf("%s outside section", word)
		}
		kind := itemQuad
		if word == ".long" {
			kind = itemLong
		}
		for _, f := range splitOperands(rest) {
			sym, addend, err := parseSymExpr(f)
			if err != nil {
				return a.errf("%s: %v", word, err)
			}
			a.cur.items = append(a.cur.items,
				item{kind: kind, line: a.line, sym: sym, val: addend})
		}
	case ".byte":
		if a.cur == nil {
			return a.errf(".byte outside section")
		}
		var bs []byte
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return a.errf(".byte: %v", err)
			}
			bs = append(bs, byte(v))
		}
		a.cur.items = append(a.cur.items, item{kind: itemData, line: a.line, bytes: bs})
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("%s: bad string %s: %v", word, rest, err)
		}
		b := []byte(s)
		if word == ".asciz" {
			b = append(b, 0)
		}
		a.cur.items = append(a.cur.items, item{kind: itemData, line: a.line, bytes: b})
	case ".zero":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return a.errf(".zero: bad count %q", rest)
		}
		a.cur.items = append(a.cur.items,
			item{kind: itemData, line: a.line, bytes: make([]byte, n)})
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(".align: bad boundary %q", rest)
		}
		a.cur.items = append(a.cur.items, item{kind: itemAlign, line: a.line, val: n})
	default:
		return a.errf("unknown directive %s", word)
	}
	return nil
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i+1:]
}

// splitOperands splits on commas not inside brackets or strings.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		out = append(out, last)
	}
	return out
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty integer")
	}
	return strconv.ParseInt(s, 0, 64)
}

// parseSymExpr parses `42`, `sym` or `sym+8` / `sym-8`.
func parseSymExpr(s string) (sym string, addend int64, err error) {
	s = strings.TrimSpace(s)
	if v, e := parseInt(s); e == nil {
		return "", v, nil
	}
	// find +/- splitting symbol and addend (not leading)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, e := parseInt(s[i:])
			if e != nil {
				return "", 0, fmt.Errorf("bad addend in %q", s)
			}
			return s[:i], v, nil
		}
	}
	if !isIdentStart(s) {
		return "", 0, fmt.Errorf("bad expression %q", s)
	}
	return s, 0, nil
}

func isIdentStart(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func parseReg(s string) (isa.Register, bool) {
	switch s {
	case "sp":
		return isa.SP, true
	case "fp":
		return isa.FP, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Register(n), true
		}
	}
	return 0, false
}

// parseOperand classifies one operand string.
func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if r, ok := parseReg(s); ok {
		return operand{kind: opReg, reg: r}, nil
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		return parseMem(s[1 : len(s)-1])
	}
	if v, err := parseInt(s); err == nil {
		return operand{kind: opImm, val: v}, nil
	}
	if isIdentStart(s) {
		sym, addend, err := parseSymExpr(s)
		if err != nil {
			return operand{}, err
		}
		return operand{kind: opSym, sym: sym, val: addend}, nil
	}
	return operand{}, fmt.Errorf("bad operand %q", s)
}

// parseMem parses the inside of [...]: rb, rb+disp, rb-disp, rb+ri,
// rb+ri*8, rb+ri+disp, rb+ri*8+disp, pc+disp, pc+sym.
func parseMem(s string) (operand, error) {
	parts := splitAddExpr(s)
	if len(parts) == 0 {
		return operand{}, fmt.Errorf("empty memory operand")
	}
	op := operand{kind: opMem}
	first := strings.TrimSpace(parts[0])
	if first == "pc" {
		op.kind = opPC
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if v, err := parseInt(p); err == nil {
				op.val += v
				continue
			}
			name := strings.TrimPrefix(p, "+")
			if !isIdentStart(name) {
				return operand{}, fmt.Errorf("bad pc-relative term %q", p)
			}
			if op.sym != "" {
				return operand{}, fmt.Errorf("multiple symbols in %q", s)
			}
			op.sym = name
		}
		return op, nil
	}
	rb, ok := parseReg(first)
	if !ok {
		return operand{}, fmt.Errorf("bad base register %q", first)
	}
	op.rb = rb
	seenIndex := false
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		// Index register term: "+ri" or "+ri*8" (scale is implied by the
		// mnemonic's access width, so "*8" is accepted documentation).
		t := strings.TrimSuffix(strings.TrimPrefix(p, "+"), "*8")
		if r, ok := parseReg(t); ok {
			if seenIndex {
				return operand{}, fmt.Errorf("two index registers in %q", s)
			}
			seenIndex = true
			op.kind = opMemX
			op.ri = r
			continue
		}
		v, err := parseInt(p)
		if err != nil {
			return operand{}, fmt.Errorf("bad memory term %q", p)
		}
		op.val += v
	}
	return op, nil
}

// splitAddExpr splits "a+b-c" into ["a", "+b", "-c"] keeping signs.
func splitAddExpr(s string) []string {
	var out []string
	start := 0
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			out = append(out, s[start:i])
			start = i
		}
	}
	out = append(out, s[start:])
	return out
}
