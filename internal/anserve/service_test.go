package anserve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dbm"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
)

// testModule compiles a small program whose analysis produces a non-trivial
// rule file.
func testModule(t *testing.T) *obj.Module {
	t.Helper()
	mod, err := cc.Compile(`
int sum(int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
int main() { return sum(10); }
`, cc.Options{Module: "anserve-test", O2: true})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestCachedMatchesFresh is the cache-correctness acceptance criterion: the
// cached artifact and a freshly run analysis marshal to identical bytes.
func TestCachedMatchesFresh(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{})

	first, err := svc.AnalyzeModuleBytes(mod, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := svc.AnalyzeModuleBytes(mod, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.AnalyzeModule(mod, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, cached) {
		t.Fatal("cached artifact differs from first analysis")
	}
	if !bytes.Equal(cached, fresh.Marshal()) {
		t.Fatal("cached artifact differs from a fresh core.AnalyzeModule")
	}
	st := svc.Stats()
	if st.Sched.Analyzed != 1 {
		t.Fatalf("analyzed = %d, want 1", st.Sched.Analyzed)
	}
	if st.Sched.CacheHits != 1 || st.Cache.Hits() != 1 {
		t.Fatalf("stats = %+v, want exactly one cache hit", st)
	}
	if f, err := rules.Unmarshal(cached); err != nil || f.Module != mod.Name {
		t.Fatalf("cached artifact does not round-trip: %v", err)
	}
}

// TestToolConfigSeparation checks that differently-configured instances of
// one tool do not alias each other's cache entries.
func TestToolConfigSeparation(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{})
	tools := []core.Tool{
		jasan.New(jasan.Config{UseLiveness: true}),
		jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true}),
		jcfi.New(jcfi.DefaultConfig),
		jcfi.New(jcfi.Config{Forward: true}),
	}
	keys := map[string]bool{}
	for _, tool := range tools {
		keys[CacheKey(mod, tool)] = true
		if _, err := svc.AnalyzeModuleBytes(mod, tool); err != nil {
			t.Fatal(err)
		}
	}
	if len(keys) != len(tools) {
		t.Fatalf("cache keys collide: %d distinct for %d configurations",
			len(keys), len(tools))
	}
	if st := svc.Stats(); st.Sched.Analyzed != uint64(len(tools)) {
		t.Fatalf("analyzed = %d, want %d", st.Sched.Analyzed, len(tools))
	}
}

// gateTool blocks inside StaticPass until released, letting the test hold
// an analysis in flight while more requests arrive.
type gateTool struct {
	core.Tool
	gate <-chan struct{}
}

func (g *gateTool) StaticPass(sc *core.StaticContext) []rules.Rule {
	<-g.gate
	return g.Tool.StaticPass(sc)
}

func (g *gateTool) Instrument(bc *dbm.BlockContext, r map[uint64][]rules.Rule) []dbm.CInstr {
	return g.Tool.Instrument(bc, r)
}

// TestSingleflight holds one analysis open while seven more identical
// requests arrive, then releases it: exactly one analysis may run, with
// every other request coalescing onto it.
func TestSingleflight(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{Workers: 8})
	gate := make(chan struct{})
	tool := &gateTool{Tool: jasan.New(jasan.Config{UseLiveness: true}), gate: gate}

	const clients = 8
	results := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.AnalyzeModuleBytes(mod, tool)
		}(i)
	}
	// Wait until the seven other requests have coalesced onto the held
	// analysis, then open the gate.
	for svc.Stats().Sched.Coalesced < clients-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d: response differs", i)
		}
	}
	st := svc.Stats()
	if st.Sched.Analyzed != 1 {
		t.Fatalf("analyzed = %d, want exactly 1", st.Sched.Analyzed)
	}
	if st.Sched.Coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", st.Sched.Coalesced, clients-1)
	}
}

// TestAnalyzeProgram checks the concurrent dependency-aware closure path
// against the serial core.AnalyzeProgram reference.
func TestAnalyzeProgram(t *testing.T) {
	mod := testModule(t)
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	reg := loader.Registry{libj.Name: lj}

	svc := New(Config{Workers: 4})
	got, err := svc.AnalyzeProgram(mod, reg, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AnalyzeProgram(mod, reg, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("got %d files, want %d (main + libj)", len(got), len(want))
	}
	for name, wf := range want {
		gf, ok := got[name]
		if !ok {
			t.Fatalf("missing rule file for %s", name)
		}
		if !bytes.Equal(gf.Marshal(), wf.Marshal()) {
			t.Fatalf("%s: service and serial analysis disagree", name)
		}
	}
	if st := svc.Stats(); st.Sched.Analyzed != 2 {
		t.Fatalf("analyzed = %d, want 2", st.Sched.Analyzed)
	}
}

// TestDiskTierSurvivesRestart checks that a new service over the same cache
// directory serves artifacts without re-analyzing.
func TestDiskTierSurvivesRestart(t *testing.T) {
	mod := testModule(t)
	dir := t.TempDir()

	s1 := New(Config{CacheDir: dir})
	first, err := s1.AnalyzeModuleBytes(mod, jcfi.New(jcfi.DefaultConfig))
	if err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{CacheDir: dir})
	again, err := s2.AnalyzeModuleBytes(mod, jcfi.New(jcfi.DefaultConfig))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("disk-tier artifact differs from original analysis")
	}
	st := s2.Stats()
	if st.Sched.Analyzed != 0 {
		t.Fatalf("analyzed = %d after restart, want 0 (disk hit)", st.Sched.Analyzed)
	}
	if st.Cache.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.Cache.DiskHits)
	}
}
