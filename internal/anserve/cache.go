// Package anserve is the analysis service: long-lived, concurrent,
// cache-backed serving of Janitizer's static analysis. The paper's central
// economics (§3.3–3.4) are that expensive whole-module analysis runs *once*
// and its rewrite-rule artifact (.jrw) is reused across program runs and
// across every binary linking a shared library. This package turns that
// one-shot CLI story into serving infrastructure:
//
//   - a content-addressed rule cache (two tiers: in-memory LRU with a byte
//     budget, optional on-disk artifact store), keyed by the SHA-256 of the
//     module serialization plus the tool name/configuration;
//   - a concurrent dependency-aware scheduler: a bounded worker pool that
//     analyzes a program closure's modules in topological order (libraries
//     before the binaries that need them) and deduplicates concurrent
//     submissions of the same module (singleflight);
//   - an HTTP front end (cmd/janitizerd) exposing POST /analyze and
//     GET /stats with graceful drain on shutdown.
package anserve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/obj"
)

// ConfigKeyer is implemented by tools whose static pass depends on
// configuration (jasan's liveness/SCEV toggles, jcfi's edge selection).
// The key joins the tool name in the cache key so differently-configured
// instances of one tool do not alias each other's artifacts.
type ConfigKeyer interface {
	ConfigKey() string
}

// toolKey identifies one tool configuration for cache-keying purposes.
func toolKey(tool core.Tool) string {
	k := tool.Name()
	if ck, ok := tool.(ConfigKeyer); ok {
		k += "?" + ck.ConfigKey()
	}
	return k
}

// CacheKey returns the content address of one (module, tool configuration)
// analysis artifact: hex SHA-256 over the module's content hash and the
// tool key. Stable across processes — obj.Module.Hash is canonical.
func CacheKey(mod *obj.Module, tool core.Tool) string {
	h := sha256.New()
	mh := mod.Hash()
	h.Write(mh[:])
	h.Write([]byte{0})
	h.Write([]byte(toolKey(tool)))
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats are the cache tier counters, readable via Service.Stats and
// GET /stats.
type CacheStats struct {
	MemHits    uint64 `json:"mem_hits"`
	MemMisses  uint64 `json:"mem_misses"`
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	Evictions  uint64 `json:"evictions"`
	Puts       uint64 `json:"puts"`
	MemBytes   int64  `json:"mem_bytes"`
	MemEntries int    `json:"mem_entries"`
}

// Hits returns the total hits across both tiers.
func (s CacheStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Cache is the two-tier content-addressed rule cache. The memory tier is an
// LRU bounded by a byte budget; the optional disk tier stores one marshaled
// rules.File per key under dir/<key>.jrw and survives process restarts. A
// disk hit is promoted into the memory tier. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	dir    string
	stats  CacheStats
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache with the given memory budget in bytes (<= 0
// disables the memory tier) and optional disk directory ("" disables the
// disk tier; the directory is created on first use).
func NewCache(memBudget int64, dir string) *Cache {
	return &Cache{
		budget: memBudget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
		dir:    dir,
	}
}

// Get returns the artifact stored under key, or nil, false. The returned
// slice is shared — callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.MemHits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	c.stats.MemMisses++
	c.mu.Unlock()

	if c.dir == "" {
		return nil, false
	}
	val, err := os.ReadFile(c.diskPath(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.stats.DiskMisses++
		return nil, false
	}
	c.stats.DiskHits++
	c.insertMemLocked(key, val)
	return val, true
}

// Put stores the artifact under key in both tiers. The cache keeps a
// reference to val — callers must not modify it afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.stats.Puts++
	c.insertMemLocked(key, val)
	c.mu.Unlock()

	if c.dir == "" {
		return
	}
	// Disk writes are best-effort: a failed write only costs a future
	// re-analysis. Write-then-rename keeps concurrent readers from
	// observing partial artifacts.
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".jrw-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	_ = os.Rename(tmp.Name(), c.diskPath(key))
}

// insertMemLocked adds an entry to the memory tier and evicts from the LRU
// tail until the budget holds. Entries larger than the whole budget are not
// cached in memory at all.
func (c *Cache) insertMemLocked(key string, val []byte) {
	if c.budget <= 0 || int64(len(val)) > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.used += int64(len(val))
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.val))
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemBytes = c.used
	s.MemEntries = len(c.items)
	return s
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".jrw")
}
