// Package anserve is the analysis service: long-lived, concurrent,
// cache-backed serving of Janitizer's static analysis. The paper's central
// economics (§3.3–3.4) are that expensive whole-module analysis runs *once*
// and its rewrite-rule artifact (.jrw) is reused across program runs and
// across every binary linking a shared library. This package turns that
// one-shot CLI story into serving infrastructure:
//
//   - a content-addressed rule cache (two tiers: in-memory LRU with a byte
//     budget, optional on-disk artifact store with a size cap and
//     checksum-framed entries), keyed by the SHA-256 of the module
//     serialization plus the tool name/configuration;
//   - a concurrent dependency-aware scheduler: a bounded worker pool that
//     analyzes a program closure's modules in topological order (libraries
//     before the binaries that need them) and deduplicates concurrent
//     submissions of the same module (singleflight);
//   - an HTTP front end (cmd/janitizerd) exposing POST /analyze,
//     POST /analyze/batch, GET /stats, GET /healthz and GET /readyz with
//     admission control, per-tenant quotas and graceful drain on shutdown;
//   - a fleet mode (internal/cluster) that consistent-hash-shards the cache
//     across N daemons with peer cache fill.
package anserve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obj"
)

// ConfigKeyer is implemented by tools whose static pass depends on
// configuration (jasan's liveness/SCEV toggles, jcfi's edge selection).
// The key joins the tool name in the cache key so differently-configured
// instances of one tool do not alias each other's artifacts.
type ConfigKeyer interface {
	ConfigKey() string
}

// toolKey identifies one tool configuration for cache-keying purposes.
func toolKey(tool core.Tool) string {
	k := tool.Name()
	if ck, ok := tool.(ConfigKeyer); ok {
		k += "?" + ck.ConfigKey()
	}
	return k
}

// CacheKey returns the content address of one (module, tool configuration)
// analysis artifact: hex SHA-256 over the module's content hash and the
// tool key. Stable across processes — obj.Module.Hash is canonical — and
// across fleet members, which is what makes consistent-hash placement
// (internal/cluster) agree on an owner for every artifact.
func CacheKey(mod *obj.Module, tool core.Tool) string {
	h := sha256.New()
	mh := mod.Hash()
	h.Write(mh[:])
	h.Write([]byte{0})
	h.Write([]byte(toolKey(tool)))
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats are the cache tier counters, readable via Service.Stats and
// GET /stats.
type CacheStats struct {
	MemHits       uint64 `json:"mem_hits"`
	MemMisses     uint64 `json:"mem_misses"`
	DiskHits      uint64 `json:"disk_hits"`
	DiskMisses    uint64 `json:"disk_misses"`
	Evictions     uint64 `json:"evictions"`
	Puts          uint64 `json:"puts"`
	MemBytes      int64  `json:"mem_bytes"`
	MemEntries    int    `json:"mem_entries"`
	DiskEvictions uint64 `json:"disk_evictions"`
	DiskCorrupt   uint64 `json:"disk_corrupt"`
}

// Hits returns the total hits across both tiers.
func (s CacheStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Cache is the two-tier content-addressed rule cache. The memory tier is an
// LRU bounded by a byte budget; the optional disk tier stores one framed
// artifact per key under dir/<key>.jrw and survives process restarts. A
// disk hit is promoted into the memory tier. Safe for concurrent use.
//
// Disk entries are checksum-framed (magic + SHA-256 + payload): a
// truncated, garbled or foreign file is treated as a miss and deleted, not
// trusted and not fatal. When a disk budget is set, a put that pushes the
// tier over budget garbage-collects least-recently-used entries,
// approximated by file mtime (reads touch their entry).
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	dir    string
	stats  CacheStats

	diskBudget int64
	diskMu     sync.Mutex // serializes GC scans, not data-path IO
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache with the given memory budget in bytes (<= 0
// disables the memory tier) and optional disk directory ("" disables the
// disk tier; the directory is created on first use). The disk tier is
// unbounded; use NewCacheDisk to cap it.
func NewCache(memBudget int64, dir string) *Cache {
	return NewCacheDisk(memBudget, dir, 0)
}

// NewCacheDisk is NewCache with a disk-tier byte budget (<= 0: unbounded).
func NewCacheDisk(memBudget int64, dir string, diskBudget int64) *Cache {
	return &Cache{
		budget:     memBudget,
		ll:         list.New(),
		items:      map[string]*list.Element{},
		dir:        dir,
		diskBudget: diskBudget,
	}
}

// diskMagic frames every disk-tier entry: 4 magic bytes, the SHA-256 of the
// payload, then the payload. Anything that fails the frame check — short
// file, wrong magic, checksum mismatch — is a corrupt entry.
var diskMagic = []byte("jrw\x01")

const diskHeaderLen = 4 + sha256.Size

// frameDisk wraps an artifact for the disk tier.
func frameDisk(val []byte) []byte {
	out := make([]byte, 0, diskHeaderLen+len(val))
	out = append(out, diskMagic...)
	sum := sha256.Sum256(val)
	out = append(out, sum[:]...)
	return append(out, val...)
}

// unframeDisk validates a disk entry and returns its payload.
func unframeDisk(b []byte) ([]byte, bool) {
	if len(b) < diskHeaderLen || !bytes.Equal(b[:4], diskMagic) {
		return nil, false
	}
	payload := b[diskHeaderLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(b[4:diskHeaderLen], sum[:]) {
		return nil, false
	}
	return payload, true
}

// Get returns the artifact stored under key, or nil, false. The returned
// slice is shared — callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.MemHits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	c.stats.MemMisses++
	c.mu.Unlock()

	if c.dir == "" {
		return nil, false
	}
	path := c.diskPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.mu.Lock()
		c.stats.DiskMisses++
		c.mu.Unlock()
		return nil, false
	}
	val, ok := unframeDisk(raw)
	if !ok {
		// Corrupt-entry tolerance: a truncated or garbled artifact is a
		// miss, and the bad file is removed so it cannot keep tripping.
		os.Remove(path)
		c.mu.Lock()
		c.stats.DiskCorrupt++
		c.stats.DiskMisses++
		c.mu.Unlock()
		return nil, false
	}
	// Touch: disk GC evicts by mtime, so a read refreshes its entry.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.DiskHits++
	c.insertMemLocked(key, val)
	return val, true
}

// Put stores the artifact under key in both tiers. The cache keeps a
// reference to val — callers must not modify it afterwards.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	c.stats.Puts++
	c.insertMemLocked(key, val)
	c.mu.Unlock()

	if c.dir == "" {
		return
	}
	// Disk writes are best-effort: a failed write only costs a future
	// re-analysis. Write-then-rename keeps concurrent readers from
	// observing partial artifacts.
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".jrw-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(frameDisk(val)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if c.diskBudget > 0 {
		c.gcDisk()
	}
}

// gcDisk brings the disk tier back under budget by deleting
// least-recently-used entries (oldest mtime first).
func (c *Cache) gcDisk() {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jrw") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= c.diskBudget {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})
	var evicted uint64
	for _, f := range files {
		if total <= c.diskBudget {
			break
		}
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			total -= f.size
			evicted++
		}
	}
	if evicted > 0 {
		c.mu.Lock()
		c.stats.DiskEvictions += evicted
		c.mu.Unlock()
	}
}

// insertMemLocked adds an entry to the memory tier and evicts from the LRU
// tail until the budget holds. Entries larger than the whole budget are not
// cached in memory at all.
func (c *Cache) insertMemLocked(key string, val []byte) {
	if c.budget <= 0 || int64(len(val)) > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.used += int64(len(val))
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.val))
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemBytes = c.used
	s.MemEntries = len(c.items)
	return s
}

// DiskReady reports whether the disk tier can accept writes: the directory
// exists (created if needed) and a probe file round-trips. A cache without
// a disk tier is trivially ready.
func (c *Cache) DiskReady() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(c.dir, ".readyz-*")
	if err != nil {
		return err
	}
	name := probe.Name()
	_, werr := probe.Write([]byte("ok"))
	cerr := probe.Close()
	os.Remove(name)
	if werr != nil {
		return werr
	}
	return cerr
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".jrw")
}
