package anserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/rules"
)

// TestDaemonConcurrentClients is the end-to-end integration test: a daemon
// on a loopback listener, eight concurrent clients POSTing the same module,
// exactly one analysis run (singleflight + cache), byte-identical
// responses, hits visible in GET /stats, and a clean graceful shutdown.
func TestDaemonConcurrentClients(t *testing.T) {
	mod := testModule(t)
	modBytes := mod.Marshal()

	svc := New(Config{Workers: 4})
	gate := make(chan struct{})
	tools := map[string]ToolFactory{
		"jasan": func() core.Tool {
			return &gateTool{
				Tool: jasan.New(jasan.Config{UseLiveness: true}),
				gate: gate,
			}
		},
	}
	d := NewDaemon(svc, tools)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	post := func() ([]byte, error) {
		resp, err := http.Post(base+"/analyze?tool=jasan",
			"application/octet-stream", bytes.NewReader(modBytes))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		return body, nil
	}

	const clients = 8
	responses := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = post()
		}(i)
	}
	// Hold the one admitted analysis open until the other seven requests
	// have coalesced onto it, so the test exercises real concurrency
	// rather than racing request arrival against analysis completion.
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats().Sched.Coalesced < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v", svc.Stats().Sched)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("client %d: response not byte-identical", i)
		}
	}
	if f, err := rules.Unmarshal(responses[0]); err != nil || f.Module != mod.Name {
		t.Fatalf("response is not a valid rule file for %s: %v", mod.Name, err)
	}

	// Exactly one analysis ran across the eight submissions.
	readStats := func() Stats {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := readStats()
	if st.Sched.Analyzed != 1 {
		t.Fatalf("analyzed = %d, want exactly 1", st.Sched.Analyzed)
	}
	if st.Sched.Submitted != clients {
		t.Fatalf("submitted = %d, want %d", st.Sched.Submitted, clients)
	}

	// A repeated POST is a pure cache hit, visible in /stats.
	again, err := post()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, responses[0]) {
		t.Fatal("repeated POST returned different bytes")
	}
	st = readStats()
	if st.Cache.Hits() == 0 {
		t.Fatalf("stats after repeated POST show no cache hits: %+v", st)
	}
	if st.Sched.Analyzed != 1 {
		t.Fatalf("repeated POST re-ran analysis: analyzed = %d", st.Sched.Analyzed)
	}

	// Bad requests are rejected without touching the scheduler.
	resp, err := http.Post(base+"/analyze?tool=nope", "application/octet-stream",
		bytes.NewReader(modBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tool: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(base+"/analyze?tool=jasan", "application/octet-stream",
		bytes.NewReader([]byte("not a module")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad module: status %d, want 400", resp.StatusCode)
	}

	// Graceful shutdown: Serve returns nil.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after graceful shutdown", err)
	}
}

// TestDaemonDrainsInflight checks that Shutdown waits for an in-flight
// analysis instead of killing it.
func TestDaemonDrainsInflight(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{})
	gate := make(chan struct{})
	d := NewDaemon(svc, map[string]ToolFactory{
		"jasan": func() core.Tool {
			return &gateTool{
				Tool: jasan.New(jasan.Config{UseLiveness: true}),
				gate: gate,
			}
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()

	type result struct {
		status int
		body   []byte
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/analyze?tool=jasan",
			"application/octet-stream", bytes.NewReader(mod.Marshal()))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: body, err: err}
	}()

	// Wait for the request to be in flight (holding the gate), then start
	// a graceful shutdown and only afterwards release the analysis.
	for svc.Stats().Sched.Submitted == 0 {
		time.Sleep(time.Millisecond)
	}
	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- d.Shutdown(ctx) }()
	time.Sleep(10 * time.Millisecond)
	close(gate)

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d: %s", res.status, res.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
