package anserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// DefaultRunMaxInstrs bounds POST /run executions when HandlerOpts leaves
// RunMaxInstrs at zero: generous enough for every harness workload, small
// enough that a runaway module cannot pin a daemon.
const DefaultRunMaxInstrs = 50_000_000

// maxRunOutput caps the program output echoed back in a RunResponse.
const maxRunOutput = 1 << 16

// RunResponse is the POST /run reply: the module was analyzed (through the
// shared analyzer, so cache tiers and peer fills apply), executed under the
// requested tool, and its sanitizer reports collected into the daemon's
// violation log. Violations holds the structured records this run produced
// (deduplicated, symbolized, stamped with the request's trace context);
// the full accumulated log is at GET /violations.
type RunResponse struct {
	Module     string           `json:"module"`
	Tool       string           `json:"tool"`
	Tier       string           `json:"tier"`
	ExitStatus int64            `json:"exit_status"`
	Cycles     uint64           `json:"cycles"`
	Instrs     uint64           `json:"instrs"`
	RunError   string           `json:"run_error,omitempty"`
	Output     string           `json:"output,omitempty"`
	TraceID    string           `json:"trace_id,omitempty"`
	Violations []diag.Violation `json:"violations"`
}

// handleRun serves POST /run?tool=...: analyze the posted module (and its
// libj dependency) through the analyzer — so rules come from the local
// cache, a peer fill, or a fresh analysis exactly as /analyze would — then
// load and execute it under the tool and convert the trap reports into
// structured violations.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request,
	tools map[string]ToolFactory, an Analyzer, opts HandlerOpts,
	maxBody int64, diagLog *diag.Log) {

	name := r.URL.Query().Get("tool")
	sp := startServerSpan(s.Tracer(), r, "http.run",
		telemetry.String("tool", name))
	defer sp.End()
	if id := sp.TraceID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	fail := func(status int, code, msg string, retryAfterSec int) {
		sp.SetError(msg)
		writeError(w, status, code, msg, retryAfterSec)
	}

	factory, ok := tools[name]
	if !ok {
		fail(http.StatusBadRequest, ErrCodeUnknownTool,
			fmt.Sprintf("unknown tool %q", name), 0)
		return
	}
	tool := factory()
	if _, isArtifact := tool.(core.ArtifactTool); isArtifact {
		fail(http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Sprintf("tool %q produces analysis artifacts, not executable rules", name), 0)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		fail(http.StatusRequestEntityTooLarge, ErrCodeBodyTooLarge,
			fmt.Sprintf("module exceeds %d bytes", maxBody), 0)
		return
	}
	mod, err := obj.Unmarshal(body)
	if err != nil {
		fail(http.StatusBadRequest, ErrCodeBadModule,
			"bad module: "+err.Error(), 0)
		return
	}
	sp.SetAttr(telemetry.String("module", mod.Name))

	if ok, wait := opts.Quota.Allow(r.Header.Get("X-Tenant"), 1); !ok {
		fail(http.StatusTooManyRequests, ErrCodeQuotaExceeded,
			"tenant quota exceeded", retryAfterSeconds(wait))
		return
	}
	if !s.TryAdmit(1) {
		fail(http.StatusTooManyRequests, ErrCodeOverloaded,
			"scheduler queue full", 1)
		return
	}
	sp.AddEvent("admitted")

	// Analyze the program and its libj dependency through the analyzer so
	// the rules ride the cache/peer-fill path and land in this trace. The
	// span context is detached from the request context: the analysis
	// completes (and caches) even if the requester gives up.
	actx := telemetry.ContextWithSpan(context.Background(), sp)
	lj, err := libj.Module()
	if err != nil {
		s.Finish(1)
		fail(http.StatusInternalServerError, ErrCodeRunFailed,
			"libj: "+err.Error(), 0)
		return
	}
	files := map[string]*rules.File{}
	var mainTier Tier
	for _, dep := range []*obj.Module{mod, lj} {
		res, timedOut := awaitAnalyze(
			goAnalyze(actx, an, name, dep, factory(), func() {}),
			opts.Timeout)
		if timedOut {
			s.Finish(1)
			fail(http.StatusGatewayTimeout, ErrCodeTimeout,
				fmt.Sprintf("analysis exceeded %s", opts.Timeout), 0)
			return
		}
		if res.err != nil {
			s.Finish(1)
			fail(http.StatusInternalServerError, ErrCodeAnalysisFailed,
				res.err.Error(), 0)
			return
		}
		f, err := rules.Unmarshal(res.b)
		if err != nil {
			s.Finish(1)
			fail(http.StatusInternalServerError, ErrCodeAnalysisFailed,
				"bad rules for "+dep.Name+": "+err.Error(), 0)
			return
		}
		files[dep.Name] = f
		if dep == mod {
			mainTier = res.tier
		}
	}
	sp.SetAttr(telemetry.String("tier", string(mainTier)))
	sp.AddEvent("analysis-complete")

	maxInstrs := opts.RunMaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultRunMaxInstrs
	}
	var out bytes.Buffer
	m := vm.New()
	m.Out = &out
	m.InstallDefaultServices()
	m.MaxInstrs = maxInstrs
	proc := loader.NewProcess(m, loader.Registry{libj.Name: lj})
	rt := core.NewRuntime(m, proc, tool, files)
	lm, err := proc.LoadProgram(mod)
	if err != nil {
		s.Finish(1)
		fail(http.StatusInternalServerError, ErrCodeRunFailed,
			"load: "+err.Error(), 0)
		return
	}
	runErr := rt.Run(lm.RuntimeAddr(mod.Entry))
	s.Finish(1)
	sp.AddEvent("run-complete",
		telemetry.Int("instrs", int64(m.Instrs)))
	if runErr != nil {
		// A trapped violation may abort the run after the sanitizer
		// reported; the reports gathered so far still count, so this is
		// recorded, not a request failure.
		sp.SetAttr(telemetry.String("run_error", runErr.Error()))
	}

	// Convert the trap reports into structured, symbolized violations.
	// Collect into a scratch log first so the response can carry exactly
	// this run's findings, then merge into the daemon-wide log behind
	// GET /violations.
	runLog := diag.NewLog()
	diag.Collect(runLog, tool, diag.NewProcessSymbolizer(proc), sp.Context())
	found := runLog.Entries()
	if found == nil {
		found = []diag.Violation{}
	}
	for _, v := range found {
		diagLog.Add(v)
	}
	sp.SetAttr(telemetry.Int("violations", int64(len(found))))

	output := out.String()
	if len(output) > maxRunOutput {
		output = output[:maxRunOutput]
	}
	resp := RunResponse{
		Module:     mod.Name,
		Tool:       name,
		Tier:       string(mainTier),
		ExitStatus: m.ExitStatus,
		Cycles:     m.Cycles,
		Instrs:     m.Instrs,
		Output:     output,
		TraceID:    sp.TraceID(),
		Violations: found,
	}
	if runErr != nil {
		resp.RunError = runErr.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
