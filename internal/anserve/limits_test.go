package anserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jasan"
)

// newTestRequest builds a request for header-carrying tests; recordReq
// runs it through the handler.
func newTestRequest(method, target string, body []byte) *http.Request {
	if body != nil {
		return httptest.NewRequest(method, target, bytes.NewReader(body))
	}
	return httptest.NewRequest(method, target, nil)
}

func recordReq(h http.Handler, r *http.Request) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// decodeErr unpacks a typed JSON error body.
func decodeErr(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body not typed JSON: %v: %s", err, body)
	}
	return env.Error
}

// TestAnalyzeBodyTooLarge is the satellite regression test for the request
// body limit: an oversized POST answers 413 with a typed JSON error, and
// never reaches the scheduler.
func TestAnalyzeBodyTooLarge(t *testing.T) {
	svc := New(Config{Workers: 1})
	h := svc.HandlerWith(DefaultTools(), HandlerOpts{MaxBodyBytes: 64})
	w := doReq(t, h, "POST", "/analyze?tool=jasan", make([]byte, 1024))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != ErrCodeBodyTooLarge {
		t.Fatalf("error code = %q, want %q", e.Code, ErrCodeBodyTooLarge)
	}
	if st := svc.Stats(); st.Sched.Submitted != 0 {
		t.Fatalf("oversized body reached the scheduler: %+v", st.Sched)
	}
}

// TestAnalyzeTimeout is the satellite regression test for the per-request
// timeout: a stuck analysis answers 504 with a typed JSON error while the
// work finishes in the background and lands in the cache.
func TestAnalyzeTimeout(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{Workers: 1})
	gate := make(chan struct{})
	tools := map[string]ToolFactory{
		"jasan": func() core.Tool {
			return &gateTool{Tool: jasan.New(jasan.Config{UseLiveness: true}), gate: gate}
		},
	}
	h := svc.HandlerWith(tools, HandlerOpts{Timeout: 20 * time.Millisecond})

	w := doReq(t, h, "POST", "/analyze?tool=jasan", mod.Marshal())
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != ErrCodeTimeout {
		t.Fatalf("error code = %q, want %q", e.Code, ErrCodeTimeout)
	}

	// The abandoned analysis still completes and caches.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Sched.Analyzed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background analysis never completed")
		}
		time.Sleep(time.Millisecond)
	}
	w = doReq(t, h, "POST", "/analyze?tool=jasan", mod.Marshal())
	if w.Code != http.StatusOK {
		t.Fatalf("post-timeout retry: status = %d", w.Code)
	}
	if got := w.Header().Get("X-Cache"); got != string(TierLocal) {
		t.Fatalf("post-timeout retry X-Cache = %q, want %q", got, TierLocal)
	}
}

// TestAnalyzeBackpressure fills the admission gate and checks the next
// request bounces with 429 + Retry-After instead of queueing unboundedly.
func TestAnalyzeBackpressure(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{Workers: 1, MaxQueue: 1}) // admit limit = 2
	gate := make(chan struct{})
	tools := map[string]ToolFactory{
		"jasan": func() core.Tool {
			return &gateTool{Tool: jasan.New(jasan.Config{UseLiveness: true}), gate: gate}
		},
	}
	h := svc.HandlerWith(tools, HandlerOpts{})

	// Two concurrent gated requests exhaust the admit limit. They target
	// distinct tools keys? No — same key coalesces after admission, which
	// is fine: admission is per HTTP request.
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			w := doReq(t, h, "POST", "/analyze?tool=jasan", mod.Marshal())
			done <- w.Code
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Accepting() {
		if time.Now().After(deadline) {
			t.Fatal("admission gate never filled")
		}
		time.Sleep(time.Millisecond)
	}

	w := doReq(t, h, "POST", "/analyze?tool=jasan", mod.Marshal())
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != ErrCodeOverloaded {
		t.Fatalf("error code = %q, want %q", e.Code, ErrCodeOverloaded)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if svc.Stats().Sched.Rejected == 0 {
		t.Fatal("rejection not counted")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("admitted request finished with %d", code)
		}
	}
	// Slots released: accepted again.
	w = doReq(t, h, "POST", "/analyze?tool=jasan", mod.Marshal())
	if w.Code != http.StatusOK {
		t.Fatalf("post-drain request: status = %d", w.Code)
	}
}

// TestTenantQuota checks the per-tenant token bucket at the handler level:
// one tenant exhausting its burst answers 429 + Retry-After without
// affecting another tenant.
func TestTenantQuota(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{Workers: 2})
	h := svc.HandlerWith(DefaultTools(), HandlerOpts{
		Quota: NewTenantLimiter(0.001, 2), // 2 requests, then a long wait
	})
	post := func(tenant string) *ErrorBody {
		r := newTestRequest("POST", "/analyze?tool=jasan", mod.Marshal())
		if tenant != "" {
			r.Header.Set("X-Tenant", tenant)
		}
		w := recordReq(h, r)
		if w.Code == http.StatusOK {
			return nil
		}
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		e := decodeErr(t, w.Body.Bytes())
		return &e
	}
	if e := post("alice"); e != nil {
		t.Fatalf("alice #1 rejected: %+v", e)
	}
	if e := post("alice"); e != nil {
		t.Fatalf("alice #2 rejected: %+v", e)
	}
	e := post("alice")
	if e == nil || e.Code != ErrCodeQuotaExceeded {
		t.Fatalf("alice #3 = %+v, want %s", e, ErrCodeQuotaExceeded)
	}
	// An independent tenant still has its full burst.
	if e := post("bob"); e != nil {
		t.Fatalf("bob rejected by alice's quota: %+v", e)
	}
}

// TestHealthEndpoints checks /healthz is unconditional and /readyz
// degrades to 503 when the cache dir cannot accept writes.
func TestHealthEndpoints(t *testing.T) {
	svc := New(Config{Workers: 1, CacheDir: t.TempDir()})
	h := svc.Handler(DefaultTools())
	if w := doReq(t, h, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	if w := doReq(t, h, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", w.Code, w.Body.String())
	}

	// A cache dir under a regular file can never be created: unready.
	// (Permission bits are no use here — tests may run as root.)
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := New(Config{Workers: 1, CacheDir: filepath.Join(file, "sub")})
	hb := bad.Handler(DefaultTools())
	if w := doReq(t, hb, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz must stay 200 while serving, got %d", w.Code)
	}
	w := doReq(t, hb, "GET", "/readyz", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz over unwritable cache dir = %d, want 503", w.Code)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte("cache dir")) {
		t.Fatalf("readyz body does not name the reason: %s", w.Body.String())
	}
}

// TestBatchAPI exercises POST /analyze/batch: per-item results in request
// order, per-item errors that do not fail siblings, bytes identical to the
// single-request path, and the batch size cap.
func TestBatchAPI(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{Workers: 4})
	h := svc.HandlerWith(DefaultTools(), HandlerOpts{MaxBatch: 8})

	req := BatchRequest{Requests: []BatchItem{
		{Tool: "jasan", Module: mod.Marshal()},
		{Tool: "jcfi", Module: mod.Marshal()},
		{Tool: "jasan", Module: []byte("not a module")},
		{Tool: "nope", Module: mod.Marshal()},
	}}
	body, _ := json.Marshal(req)
	w := doReq(t, h, "POST", "/analyze/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(resp.Results))
	}
	for i := 0; i < 2; i++ {
		res := resp.Results[i]
		if res.Error != nil {
			t.Fatalf("item %d failed: %+v", i, res.Error)
		}
		if res.Module != mod.Name || len(res.Rules) == 0 {
			t.Fatalf("item %d incomplete: %+v", i, res)
		}
	}
	if e := resp.Results[2].Error; e == nil || e.Code != ErrCodeBadModule {
		t.Fatalf("item 2 error = %+v, want %s", resp.Results[2].Error, ErrCodeBadModule)
	}
	if e := resp.Results[3].Error; e == nil || e.Code != ErrCodeUnknownTool {
		t.Fatalf("item 3 error = %+v, want %s", resp.Results[3].Error, ErrCodeUnknownTool)
	}

	// Batch bytes match the single-request path exactly.
	direct, err := svc.AnalyzeModuleBytes(mod, jasan.New(jasan.Config{UseLiveness: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Results[0].Rules, direct) {
		t.Fatal("batch result differs from direct analysis")
	}

	// Oversized batches bounce with a typed 413.
	big := BatchRequest{Requests: make([]BatchItem, 9)}
	for i := range big.Requests {
		big.Requests[i] = BatchItem{Tool: "jasan", Module: mod.Marshal()}
	}
	body, _ = json.Marshal(big)
	w = doReq(t, h, "POST", "/analyze/batch", body)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d, want 413", w.Code)
	}
	if e := decodeErr(t, w.Body.Bytes()); e.Code != ErrCodeBatchTooLarge {
		t.Fatalf("error code = %q, want %q", e.Code, ErrCodeBatchTooLarge)
	}
}
