package anserve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rewrite"
	"repro/internal/rules"
)

// RewriteCacheKey returns the content address of one (module, tool, rewrite
// mode, placement) plan artifact. It extends the rule-cache key with the
// rewrite mode and the plan's placement assumption (load base + module ID):
// a plan is only valid under the deterministic loader placement it was
// captured with, and static and hybrid consumers must never alias each
// other's entries.
func RewriteCacheKey(mod *obj.Module, tool core.Tool, mode string,
	base uint64, moduleID int32) string {

	h := sha256.New()
	mh := mod.Hash()
	h.Write(mh[:])
	h.Write([]byte{0})
	h.Write([]byte(toolKey(tool)))
	h.Write([]byte{0})
	h.Write([]byte("rewrite=" + mode))
	var pin [12]byte
	binary.LittleEndian.PutUint64(pin[:8], base)
	binary.LittleEndian.PutUint32(pin[8:], uint32(moduleID))
	h.Write(pin[:])
	return hex.EncodeToString(h.Sum(nil))
}

// RewritePlans returns the rewrite plans for main's dependency closure,
// serving them from the content-addressed cache when possible. mode is
// "static" or "hybrid" — the plans are identical today, but the mode is
// part of the cache key so the two backends' artifacts stay distinct (a
// future backend divergence must not be masked by a stale shared entry).
//
// newTool builds a fresh tool instance for the capture run: plan capture
// initialises a scratch runtime, so the caller's instance (which will run
// the program) must not be reused for it. files are the closure's static
// rule files (from AnalyzeProgram).
func (s *Service) RewritePlans(main *obj.Module, reg loader.Registry,
	files map[string]*rules.File, newTool func() core.Tool,
	mode string) (map[string]*rewrite.Plan, error) {

	if mode != "static" && mode != "hybrid" {
		return nil, fmt.Errorf("anserve: unknown rewrite mode %q", mode)
	}
	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("anserve: %w", err)
	}
	keyTool := newTool()

	// Plan placement assumptions depend on the loader's deterministic
	// base assignment, which capture reproduces; probing the cache needs
	// the same bases without a full capture, so compute them the same way
	// the capture's scratch process will.
	bases, ids, err := plannedPlacement(main, reg)
	if err != nil {
		return nil, err
	}

	plans := make(map[string]*rewrite.Plan, len(mods))
	missing := false
	for _, mod := range mods {
		if files[mod.Name] == nil {
			continue
		}
		key := RewriteCacheKey(mod, keyTool, mode, bases[mod.Name], ids[mod.Name])
		raw, ok := s.CacheProbe(key)
		if !ok {
			missing = true
			break
		}
		p, err := rewrite.ReadPlan(raw)
		if err != nil || p.Validate() != nil {
			missing = true
			break
		}
		plans[mod.Name] = p
	}
	if !missing {
		return plans, nil
	}

	captured, err := rewrite.CapturePlans(main, reg, files, newTool())
	if err != nil {
		return nil, err
	}
	capturedNames := make([]string, 0, len(captured))
	for name := range captured {
		capturedNames = append(capturedNames, name)
	}
	sort.Strings(capturedNames)
	for _, name := range capturedNames {
		p := captured[name]
		mod := reg[name]
		if name == main.Name {
			mod = main
		}
		if mod == nil {
			continue
		}
		key := RewriteCacheKey(mod, keyTool, mode, p.AssumedBase, p.ModuleID)
		s.CacheInsert(key, p.Marshal())
	}
	return captured, nil
}

// plannedPlacement computes the load base and module ID the deterministic
// loader will assign each closure module, by dry-loading the program into
// a scratch process. Bases feed the rewrite cache key, so a cache probe
// agrees with what a capture run would record.
func plannedPlacement(main *obj.Module, reg loader.Registry) (map[string]uint64, map[string]int32, error) {
	proc, err := loader.DryLoad(main, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("anserve: placement: %w", err)
	}
	bases := map[string]uint64{}
	ids := map[string]int32{}
	for _, lm := range proc.Modules {
		base := uint64(0)
		if lm.PIC {
			base = lm.LoadBase
		}
		bases[lm.Name] = base
		ids[lm.Name] = int32(lm.ID)
	}
	return bases, ids, nil
}
