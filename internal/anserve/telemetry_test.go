package anserve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/jasan"
	"repro/internal/telemetry"
)

// doReq runs one request through the service handler and returns the
// recorder.
func doReq(t *testing.T, h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestStatsJSONShape is the regression guard for satellite (3): the /stats
// payload must keep its exact field names — external dashboards parse it —
// even though the same counters now also surface on /metrics.
func TestStatsJSONShape(t *testing.T) {
	svc := New(Config{Workers: 2})
	if _, err := svc.AnalyzeModuleBytes(testModule(t),
		jasan.New(jasan.Config{UseLiveness: true})); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler(DefaultTools())
	w := doReq(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /stats: %d", w.Code)
	}
	var payload map[string]map[string]json.Number
	if err := json.Unmarshal(w.Body.Bytes(), &payload); err != nil {
		t.Fatalf("stats not a two-level JSON object: %v", err)
	}
	want := map[string][]string{
		"cache": {"mem_hits", "mem_misses", "disk_hits", "disk_misses",
			"evictions", "puts", "mem_bytes", "mem_entries",
			"disk_evictions", "disk_corrupt"},
		"scheduler": {"submitted", "coalesced", "cache_hits", "analyzed",
			"errors", "rejected", "workers"},
	}
	for section, fields := range want {
		got, ok := payload[section]
		if !ok {
			t.Fatalf("section %q missing from /stats", section)
		}
		for _, f := range fields {
			if _, ok := got[f]; !ok {
				t.Errorf("field %s.%s missing from /stats", section, f)
			}
		}
		if len(got) != len(fields) {
			keys := make([]string, 0, len(got))
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Errorf("section %q has fields %v, want exactly %v", section, keys, fields)
		}
	}
}

func TestMetricsEndpointMatchesStats(t *testing.T) {
	svc := New(Config{Workers: 2})
	tool := jasan.New(jasan.Config{UseLiveness: true})
	mod := testModule(t)
	for i := 0; i < 3; i++ { // 1 analysis + 2 cache hits
		if _, err := svc.AnalyzeModuleBytes(mod, tool); err != nil {
			t.Fatal(err)
		}
	}
	h := svc.Handler(DefaultTools())
	w := doReq(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples, err := telemetry.ParsePrometheus(w.Body.Bytes())
	if err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, w.Body.String())
	}
	find := func(name, labelKey, labelVal string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			if labelKey != "" && s.Labels[labelKey] != labelVal {
				continue
			}
			return s.Value, true
		}
		return 0, false
	}
	st := svc.Stats()
	checks := []struct {
		name, lk, lv string
		want         float64
	}{
		{"janitizer_analyze_submitted_total", "", "", float64(st.Sched.Submitted)},
		{"janitizer_analyze_coalesced_total", "", "", float64(st.Sched.Coalesced)},
		{"janitizer_analyze_cache_hits_total", "", "", float64(st.Sched.CacheHits)},
		{"janitizer_analyzed_total", "", "", float64(st.Sched.Analyzed)},
		{"janitizer_analyze_errors_total", "", "", float64(st.Sched.Errors)},
		{"janitizer_analysis_workers", "", "", float64(st.Sched.Workers)},
		{"janitizer_rule_cache_hits_total", "tier", "mem", float64(st.Cache.MemHits)},
		{"janitizer_rule_cache_hits_total", "tier", "disk", float64(st.Cache.DiskHits)},
		{"janitizer_rule_cache_misses_total", "tier", "mem", float64(st.Cache.MemMisses)},
		{"janitizer_rule_cache_mem_bytes", "", "", float64(st.Cache.MemBytes)},
	}
	for _, c := range checks {
		got, ok := find(c.name, c.lk, c.lv)
		if !ok {
			t.Errorf("metric %s{%s=%q} missing", c.name, c.lk, c.lv)
			continue
		}
		if got != c.want {
			t.Errorf("%s{%s=%q} = %v, /stats says %v", c.name, c.lk, c.lv, got, c.want)
		}
	}
	// The cache-miss analysis recorded a per-tool latency observation.
	if cnt, ok := find("janitizer_analysis_duration_seconds_count", "tool", "jasan"); !ok || cnt != 1 {
		t.Errorf("analysis latency histogram count = %v (found=%t), want 1", cnt, ok)
	}
}

func TestMetricsDeterministicModuloValues(t *testing.T) {
	svc := New(Config{Workers: 2})
	h := svc.Handler(DefaultTools())
	shape := func(body string) string {
		var b strings.Builder
		for _, line := range strings.Split(body, "\n") {
			// Strip the trailing value so only names/labels/comments remain.
			if line == "" || strings.HasPrefix(line, "#") {
				b.WriteString(line + "\n")
				continue
			}
			i := strings.LastIndexByte(line, ' ')
			b.WriteString(line[:i] + "\n")
		}
		return b.String()
	}
	mod := testModule(t)
	tool := jasan.New(jasan.Config{UseLiveness: true})
	if _, err := svc.AnalyzeModuleBytes(mod, tool); err != nil {
		t.Fatal(err)
	}
	first := doReq(t, h, "GET", "/metrics", nil).Body.String()
	// A repeat request for the same tool moves counter values but
	// introduces no new series.
	if _, err := svc.AnalyzeModuleBytes(mod, tool); err != nil {
		t.Fatal(err)
	}
	second := doReq(t, h, "GET", "/metrics", nil).Body.String()
	if shape(first) != shape(second) {
		t.Errorf("exposition shape changed between scrapes:\n--- first\n%s\n--- second\n%s",
			first, second)
	}
}

func TestTraceEndpoint(t *testing.T) {
	svc := New(Config{Workers: 2})
	h := svc.Handler(DefaultTools())

	// Tracer disabled: an empty JSON array, not null.
	telemetry.SetTracer(nil)
	w := doReq(t, h, "GET", "/trace", nil)
	if got := strings.TrimSpace(w.Body.String()); got != "[]" {
		t.Errorf("GET /trace with tracer off = %q, want []", got)
	}

	telemetry.SetTracer(telemetry.NewTracer(16))
	defer telemetry.SetTracer(nil)
	if _, err := svc.AnalyzeModuleBytes(testModule(t),
		jasan.New(jasan.Config{UseLiveness: true})); err != nil {
		t.Fatal(err)
	}
	w = doReq(t, h, "GET", "/trace", nil)
	var spans []*telemetry.SpanRecord
	if err := json.Unmarshal(w.Body.Bytes(), &spans); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	found := false
	for _, sp := range spans {
		if sp.Name == "anserve.analyze" {
			found = true
		}
	}
	if !found {
		t.Errorf("anserve.analyze span missing from /trace (%d spans)", len(spans))
	}
}

func TestRequestLoggingAndDebug(t *testing.T) {
	svc := New(Config{Workers: 2})
	var logBuf bytes.Buffer
	d := NewDaemonOpts(svc, DefaultTools(), DaemonOptions{
		Logger: newTestLogger(&logBuf),
		Debug:  true,
	})
	h := d.srv.Handler

	w := doReq(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /stats via daemon handler: %d", w.Code)
	}
	if id := w.Header().Get("X-Request-Id"); id == "" {
		t.Error("X-Request-Id header missing")
	}
	logged := logBuf.String()
	for _, want := range []string{"method=GET", "path=/stats", "status=200", "id=req-"} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q: %s", want, logged)
		}
	}

	// pprof is mounted when Debug is set.
	w = doReq(t, h, "GET", "/debug/pprof/cmdline", nil)
	if w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: %d", w.Code)
	}

	// ...and absent otherwise.
	plain := NewDaemonOpts(svc, DefaultTools(), DaemonOptions{})
	w = doReq(t, plain.srv.Handler, "GET", "/debug/pprof/cmdline", nil)
	if w.Code == http.StatusOK {
		t.Error("pprof served without -debug")
	}
}

func newTestLogger(w *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}
