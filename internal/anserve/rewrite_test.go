package anserve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/rewrite"
)

// TestRewriteCacheKeyDistinct checks every axis of the plan cache key:
// rewrite mode, placement (base and module ID), tool configuration — the
// static and hybrid backends, and plans captured under different loader
// placements, must never alias each other's entries.
func TestRewriteCacheKeyDistinct(t *testing.T) {
	mod := testModule(t)
	tool := jasan.New(jasan.Config{UseLiveness: true})
	base := RewriteCacheKey(mod, tool, "static", 0, 0)
	keys := map[string]string{
		"mode":   RewriteCacheKey(mod, tool, "hybrid", 0, 0),
		"base":   RewriteCacheKey(mod, tool, "static", 0x10000, 0),
		"id":     RewriteCacheKey(mod, tool, "static", 0, 1),
		"config": RewriteCacheKey(mod, jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true}), "static", 0, 0),
		"rules":  CacheKey(mod, tool),
	}
	for axis, k := range keys {
		if k == base {
			t.Errorf("%s does not separate cache keys", axis)
		}
	}
}

// TestRewritePlansCached checks the plan cache round trip: a second
// RewritePlans call must be served entirely from the cache and yield plans
// byte-identical to the captured ones, while a different mode misses and
// re-captures.
func TestRewritePlansCached(t *testing.T) {
	lj, err := libj.Module()
	if err != nil {
		t.Fatal(err)
	}
	main := testModule(t)
	reg := loader.Registry{libj.Name: lj}
	newTool := func() core.Tool { return jasan.New(jasan.Config{UseLiveness: true}) }

	svc := New(Config{})
	files, err := svc.AnalyzeProgram(main, reg, newTool())
	if err != nil {
		t.Fatal(err)
	}

	first, err := svc.RewritePlans(main, reg, files, newTool, "static")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no plans captured")
	}
	hits := svc.Stats().Cache.Hits()

	second, err := svc.RewritePlans(main, reg, files, newTool, "static")
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Cache.Hits(); got < hits+uint64(len(first)) {
		t.Fatalf("second call hit the cache %d times, want >= %d", got-hits, len(first))
	}
	if len(second) != len(first) {
		t.Fatalf("cached call returned %d plans, captured %d", len(second), len(first))
	}
	for name, p := range first {
		q := second[name]
		if q == nil {
			t.Fatalf("cached call lost the plan for %s", name)
		}
		if string(p.Marshal()) != string(q.Marshal()) {
			t.Errorf("%s: cached plan differs from captured plan", name)
		}
	}

	// A different mode must not be served from the static entries.
	if _, err := svc.RewritePlans(main, reg, files, newTool, "hybrid"); err != nil {
		t.Fatal(err)
	}

	// Cached plans are directly consumable: they validate and apply.
	for name, p := range second {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: cached plan invalid: %v", name, err)
		}
		mod := reg[name]
		if name == main.Name {
			mod = main
		}
		if _, err := rewrite.Apply(mod, p); err != nil {
			t.Fatalf("%s: cached plan does not apply: %v", name, err)
		}
	}

	if _, err := svc.RewritePlans(main, reg, files, newTool, "inplace"); err == nil {
		t.Fatal("unknown rewrite mode accepted")
	}
}
