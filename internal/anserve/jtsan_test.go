package anserve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/jmsan"
	"repro/internal/jtsan"
	"repro/internal/rules"
)

// TestJTSanCacheKeySeparation extends the composition-safety criterion to
// the temporal sanitizer: jtsan's two configurations and the four-tool
// comprehensive composition must all hash to cache keys distinct from each
// other and from the pre-existing three-tool compositions, so registering
// the new tool can never be served a stale artifact.
func TestJTSanCacheKeySeparation(t *testing.T) {
	mod := testModule(t)
	tools := []core.Tool{
		jtsan.New(jtsan.Config{UseLiveness: true}),
		jtsan.New(jtsan.Config{UseLiveness: true, Elide: true}),
		// The old three-tool composition and the new four-tool
		// comprehensive must not collide.
		core.NewMultiTool(
			jasan.New(jasan.Config{UseLiveness: true}),
			jmsan.New(jmsan.Config{UseLiveness: true}),
			jcfi.New(jcfi.DefaultConfig),
		),
		core.NewMultiTool(
			jasan.New(jasan.Config{UseLiveness: true}),
			jmsan.New(jmsan.Config{UseLiveness: true}),
			jtsan.New(jtsan.Config{UseLiveness: true}),
			jcfi.New(jcfi.DefaultConfig),
		),
	}
	keys := map[string]bool{}
	for _, tool := range tools {
		keys[CacheKey(mod, tool)] = true
	}
	if len(keys) != len(tools) {
		t.Fatalf("cache keys collide: %d distinct for %d configurations",
			len(keys), len(tools))
	}

	// The service must actually run one analysis per configuration — a
	// collision would surface here as a bogus cache hit.
	svc := New(Config{})
	var artifacts [][]byte
	for _, tool := range tools {
		out, err := svc.AnalyzeModuleBytes(mod, tool)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, out)
	}
	if st := svc.Stats(); st.Sched.Analyzed != uint64(len(tools)) {
		t.Fatalf("analyzed = %d, want %d (one per configuration)",
			st.Sched.Analyzed, len(tools))
	}
	if bytes.Equal(artifacts[2], artifacts[3]) {
		t.Fatal("three-tool and four-tool comprehensive artifacts are identical")
	}
}

// TestHandlerServesJTSan drives the HTTP API with the real default registry:
// tool=jtsan must return a rule file carrying generation checks, tool=
// jtsan-elide must additionally carry no-escape elisions, and the expanded
// comprehensive configuration must carry all four tools' rule families.
func TestHandlerServesJTSan(t *testing.T) {
	mod := testModule(t)
	modBytes := mod.Marshal()
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler(DefaultTools()))
	defer srv.Close()

	post := func(tool string) []byte {
		t.Helper()
		resp, err := http.Post(srv.URL+"/analyze?tool="+url.QueryEscape(tool),
			"application/octet-stream", bytes.NewReader(modBytes))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tool=%s: status %d: %s", tool, resp.StatusCode, body)
		}
		return body
	}

	count := func(body []byte, ids ...rules.ID) map[rules.ID]int {
		t.Helper()
		f, err := rules.Unmarshal(body)
		if err != nil {
			t.Fatalf("response does not round-trip: %v", err)
		}
		n := map[rules.ID]int{}
		for _, r := range f.Rules {
			n[r.ID]++
		}
		return n
	}

	plain := count(post("jtsan"))
	if plain[rules.MemGenCheck] == 0 {
		t.Fatal("jtsan artifact carries no MEM_GEN_CHECK rules")
	}
	elide := count(post("jtsan-elide"))
	if elide[rules.MemGenCheck] >= plain[rules.MemGenCheck] {
		t.Fatalf("elision did not reduce generation checks: %d -> %d",
			plain[rules.MemGenCheck], elide[rules.MemGenCheck])
	}
	var noEscape int
	f, err := rules.Unmarshal(post("jtsan-elide"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Rules {
		if r.ID == rules.MemAccessSafe && r.Data[1] == rules.SafeNoEscape {
			noEscape++
		}
	}
	if noEscape == 0 {
		t.Fatal("jtsan-elide artifact carries no no-escape elisions")
	}

	comp := count(post("comprehensive"))
	for _, id := range []rules.ID{rules.MemAccess, rules.MemDefStore,
		rules.MemGenCheck, rules.CFIRet} {
		if comp[id] == 0 {
			t.Fatalf("comprehensive artifact carries no %s rules", id)
		}
	}
	if st := svc.Stats(); st.Sched.Analyzed != 3 {
		t.Fatalf("analyzed = %d, want 3 (jtsan-elide POSTed twice, cached once)",
			st.Sched.Analyzed)
	}
}
