package anserve

import (
	"math"
	"sync"
	"time"
)

// TenantLimiter is a per-tenant token-bucket rate limiter keyed by the
// X-Tenant request header. Each tenant gets an independent bucket holding
// up to Burst tokens refilled at Rate tokens/second; a request (or batch
// item) costs one token. Requests without an X-Tenant header share the ""
// bucket. Safe for concurrent use.
type TenantLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantLimiter returns a limiter granting each tenant rate tokens/sec
// with the given burst capacity. rate <= 0 returns nil — a nil limiter
// admits everything, so callers can wire the flag value through untested.
func NewTenantLimiter(rate float64, burst int) *TenantLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: map[string]*bucket{},
		now:     time.Now,
	}
}

// Allow spends n tokens from tenant's bucket. When the bucket cannot cover
// n it reports false plus how long until it could — the Retry-After hint.
func (l *TenantLimiter) Allow(tenant string, n int) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	cost := float64(n)
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	wait := time.Duration((cost - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// retryAfterSeconds rounds a wait up to whole seconds, minimum 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
