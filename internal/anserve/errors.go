package anserve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Error codes returned in typed JSON error bodies by the HTTP API.
const (
	ErrCodeUnknownTool    = "unknown_tool"     // 400
	ErrCodeBadRequest     = "bad_request"      // 400
	ErrCodeBadModule      = "bad_module"       // 400
	ErrCodeBodyTooLarge   = "body_too_large"   // 413
	ErrCodeBatchTooLarge  = "batch_too_large"  // 413
	ErrCodeOverloaded     = "overloaded"       // 429 (admission gate full)
	ErrCodeQuotaExceeded  = "quota_exceeded"   // 429 (per-tenant token bucket)
	ErrCodeAnalysisFailed = "analysis_failed"  // 500
	ErrCodeTimeout        = "analysis_timeout" // 504
	ErrCodeNotFound       = "not_found"        // 404 (trace lookup miss)
	ErrCodeRunFailed      = "run_failed"       // 500 (POST /run execution error)
)

// ErrorBody is the typed JSON error payload: every non-2xx response from
// the analysis API carries {"error":{"code":...,"message":...}} so clients
// can branch on a stable code instead of scraping message text.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError sends a typed JSON error. retryAfter > 0 additionally sets the
// Retry-After header (whole seconds, rounded up to at least 1).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfterSec int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{ErrorBody{Code: code, Message: msg}})
}
