package anserve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cc"
	"repro/internal/jasan"
	"repro/internal/jlint"
)

// TestJLintArtifactServiceAndCache: jlint is an ArtifactTool — the service
// must cache its JSON report under a key distinct from every rule-file
// tool, serve the identical bytes on a hit, and validate artifacts against
// the module they claim to describe.
func TestJLintArtifactServiceAndCache(t *testing.T) {
	mod := testModule(t)
	lint := jlint.New()
	if CacheKey(mod, lint) == CacheKey(mod, jasan.New(jasan.Config{UseLiveness: true})) {
		t.Fatal("jlint and jasan share a cache key")
	}

	svc := New(Config{})
	first, err := svc.AnalyzeModuleBytes(mod, lint)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := jlint.UnmarshalReport(first)
	if err != nil {
		t.Fatalf("artifact is not a jlint report: %v", err)
	}
	if rep.Module != mod.Name || rep.ModHash != mod.HashString() {
		t.Fatalf("report bound to %s/%s, want %s/%s",
			rep.Module, rep.ModHash, mod.Name, mod.HashString())
	}

	second, err := svc.AnalyzeModuleBytes(mod, lint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached artifact differs from fresh analysis")
	}
	if st := svc.Stats(); st.Sched.Analyzed != 1 {
		t.Fatalf("analyzed = %d, want 1 (second request is a cache hit)",
			st.Sched.Analyzed)
	}

	if err := lint.ValidateArtifact(mod, first); err != nil {
		t.Fatalf("genuine artifact rejected: %v", err)
	}
	if err := lint.ValidateArtifact(mod, first[:len(first)/2]); err == nil {
		t.Fatal("truncated artifact accepted")
	}
	other, err := cc.Compile(`int main() { return 3; }`,
		cc.Options{Module: "anserve-other", O2: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.ValidateArtifact(other, first); err == nil {
		t.Fatal("artifact for a different module accepted")
	}
}

// TestHandlerServesJLint: the HTTP API serves jlint reports through the
// default tool registry.
func TestHandlerServesJLint(t *testing.T) {
	mod := testModule(t)
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler(DefaultTools()))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/analyze?tool=jlint",
		"application/octet-stream", bytes.NewReader(mod.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rep, err := jlint.UnmarshalReport(body)
	if err != nil {
		t.Fatalf("response is not a jlint report: %v", err)
	}
	if rep.ModHash != mod.HashString() {
		t.Fatal("report bound to wrong module content")
	}
}
