package anserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/obj"
	"repro/internal/telemetry"
)

// Batch API limits. A batch request is bounded twice: MaxBatch items per
// request (larger batches answer 413 — split them) and BatchFanout
// concurrently executing items per request, so one fat batch cannot
// monopolize the worker pool against interactive requests.
const (
	DefaultMaxBatch    = 64
	DefaultBatchFanout = 8
)

// BatchRequest is the POST /analyze/batch payload.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchItem is one analysis in a batch. Module is the serialized JEF
// module (base64 in JSON, per encoding/json []byte convention).
type BatchItem struct {
	Tool   string `json:"tool"`
	Module []byte `json:"module"`
}

// BatchResponse is the POST /analyze/batch reply: one result per request
// item, in request order. Item failures are per-item — one bad module does
// not fail its siblings.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one item's outcome: either Rules (with Module and Tier
// set) or Error.
type BatchResult struct {
	Module string     `json:"module,omitempty"`
	Tier   string     `json:"tier,omitempty"`
	Rules  []byte     `json:"rules,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}

// handleBatch serves POST /analyze/batch: decode, enforce batch bounds,
// charge quota and admission for the whole batch up front, then run items
// through the analyzer with bounded fan-out.
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request,
	tools map[string]ToolFactory, an Analyzer, opts HandlerOpts, maxBody int64) {

	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	fanout := opts.BatchFanout
	if fanout <= 0 {
		fanout = DefaultBatchFanout
	}

	sp := startServerSpan(s.Tracer(), r, "http.batch")
	defer sp.End()
	if id := sp.TraceID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	fail := func(status int, code, msg string, retryAfterSec int) {
		sp.SetError(msg)
		writeError(w, status, code, msg, retryAfterSec)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		fail(http.StatusRequestEntityTooLarge, ErrCodeBodyTooLarge,
			fmt.Sprintf("batch body exceeds %d bytes", maxBody), 0)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		fail(http.StatusBadRequest, ErrCodeBadRequest,
			"bad batch JSON: "+err.Error(), 0)
		return
	}
	n := len(req.Requests)
	sp.SetAttr(telemetry.Int("items", int64(n)))
	if n == 0 {
		fail(http.StatusBadRequest, ErrCodeBadRequest,
			"empty batch", 0)
		return
	}
	if n > maxBatch {
		fail(http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", n, maxBatch), 0)
		return
	}
	if ok, wait := opts.Quota.Allow(r.Header.Get("X-Tenant"), n); !ok {
		fail(http.StatusTooManyRequests, ErrCodeQuotaExceeded,
			"tenant quota exceeded", retryAfterSeconds(wait))
		return
	}
	if !s.TryAdmit(n) {
		fail(http.StatusTooManyRequests, ErrCodeOverloaded,
			"scheduler queue full", 1)
		return
	}
	sp.AddEvent("admitted")

	results := make([]BatchResult, n)
	sem := make(chan struct{}, fanout)
	var wg sync.WaitGroup
	for i, item := range req.Requests {
		wg.Add(1)
		go func(i int, item BatchItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			isp := sp.Child("batch.item",
				telemetry.Int("index", int64(i)),
				telemetry.String("tool", item.Tool))
			defer isp.End()
			ictx := telemetry.ContextWithSpan(context.Background(), isp)
			results[i] = s.batchItem(ictx, item, tools, an, opts)
			if results[i].Error != nil {
				isp.SetError(results[i].Error.Message)
			}
		}(i, item)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BatchResponse{Results: results})
}

// batchItem runs one batch entry and releases its admission slot when the
// underlying work (not just the wait) finishes.
func (s *Service) batchItem(ctx context.Context, item BatchItem,
	tools map[string]ToolFactory, an Analyzer, opts HandlerOpts) BatchResult {

	factory, ok := tools[item.Tool]
	if !ok {
		s.Finish(1)
		return BatchResult{Error: &ErrorBody{
			Code:    ErrCodeUnknownTool,
			Message: fmt.Sprintf("unknown tool %q", item.Tool),
		}}
	}
	mod, err := obj.Unmarshal(item.Module)
	if err != nil {
		s.Finish(1)
		return BatchResult{Error: &ErrorBody{
			Code:    ErrCodeBadModule,
			Message: "bad module: " + err.Error(),
		}}
	}
	res, timedOut := awaitAnalyze(
		goAnalyze(ctx, an, item.Tool, mod, factory(), func() { s.Finish(1) }),
		opts.Timeout)
	if timedOut {
		return BatchResult{Module: mod.Name, Error: &ErrorBody{
			Code:    ErrCodeTimeout,
			Message: fmt.Sprintf("analysis exceeded %s", opts.Timeout),
		}}
	}
	if res.err != nil {
		return BatchResult{Module: mod.Name, Error: &ErrorBody{
			Code:    ErrCodeAnalysisFailed,
			Message: res.err.Error(),
		}}
	}
	return BatchResult{Module: mod.Name, Tier: string(res.tier), Rules: res.b}
}
