package anserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/jmsan"
	"repro/internal/obj"
	"repro/internal/telemetry"
)

// MaxModuleBytes bounds the request body accepted by POST /analyze.
const MaxModuleBytes = 64 << 20

// ToolFactory creates a fresh tool instance per analysis request, so
// request handling never shares mutable tool state (reports, runtime
// tables) across concurrent analyses. Instances from one factory must
// share the same name/ConfigKey.
type ToolFactory func() core.Tool

// DefaultTools returns the daemon's built-in tool registry.
func DefaultTools() map[string]ToolFactory {
	return map[string]ToolFactory{
		"jasan": func() core.Tool {
			return jasan.New(jasan.Config{UseLiveness: true})
		},
		"jasan-base": func() core.Tool {
			return jasan.New(jasan.Config{})
		},
		"jasan-scev": func() core.Tool {
			return jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true})
		},
		"jcfi": func() core.Tool {
			return jcfi.New(jcfi.DefaultConfig)
		},
		"jcfi-forward": func() core.Tool {
			return jcfi.New(jcfi.Config{Forward: true})
		},
		"jmsan": func() core.Tool {
			return jmsan.New(jmsan.Config{UseLiveness: true})
		},
		"jmsan-elide": func() core.Tool {
			return jmsan.New(jmsan.Config{UseLiveness: true, Elide: true})
		},
		"jasan+jmsan": func() core.Tool {
			return core.NewMultiTool(
				jasan.New(jasan.Config{UseLiveness: true}),
				jmsan.New(jmsan.Config{UseLiveness: true}),
			)
		},
		"comprehensive": func() core.Tool {
			return core.NewMultiTool(
				jasan.New(jasan.Config{UseLiveness: true}),
				jmsan.New(jmsan.Config{UseLiveness: true}),
				jcfi.New(jcfi.DefaultConfig),
			)
		},
	}
}

// Handler returns the service's HTTP API:
//
//	POST /analyze?tool=<name>   body: serialized JEF module
//	                            response: marshaled .jrw rule file
//	GET  /stats                 cache + scheduler counters as JSON
func (s *Service) Handler(tools map[string]ToolFactory) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("tool")
		factory, ok := tools[name]
		if !ok {
			var known []string
			for n := range tools {
				known = append(known, n)
			}
			sort.Strings(known)
			http.Error(w, fmt.Sprintf("unknown tool %q (have %v)", name, known),
				http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxModuleBytes))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		mod, err := obj.Unmarshal(body)
		if err != nil {
			http.Error(w, "bad module: "+err.Error(), http.StatusBadRequest)
			return
		}
		out, err := s.AnalyzeModuleBytes(mod, factory())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Module", mod.Name)
		_, _ = w.Write(out)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		recent := telemetry.T().Recent()
		if recent == nil {
			recent = []*telemetry.SpanRecord{} // tracer disabled: empty array, not null
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recent)
	})
	return mux
}

// Daemon wraps the service handler in an http.Server with graceful
// shutdown: Shutdown stops accepting connections and drains in-flight
// requests before returning.
type Daemon struct {
	Service *Service
	srv     *http.Server
}

// DaemonOptions configures optional daemon behaviour.
type DaemonOptions struct {
	// Logger enables structured request logging (one slog line per request
	// with a process-unique request id). Nil disables logging.
	Logger *slog.Logger
	// Debug mounts net/http/pprof under /debug/pprof/.
	Debug bool
}

// NewDaemon returns a daemon serving svc through the given tool registry.
func NewDaemon(svc *Service, tools map[string]ToolFactory) *Daemon {
	return NewDaemonOpts(svc, tools, DaemonOptions{})
}

// NewDaemonOpts returns a daemon with request logging and debug endpoints
// configured.
func NewDaemonOpts(svc *Service, tools map[string]ToolFactory, opts DaemonOptions) *Daemon {
	h := svc.Handler(tools)
	if opts.Debug {
		mux := http.NewServeMux()
		mux.Handle("/", h)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		h = mux
	}
	if opts.Logger != nil {
		h = requestLog(opts.Logger, h)
	}
	return &Daemon{
		Service: svc,
		srv:     &http.Server{Handler: h},
	}
}

// reqSeq numbers requests across all daemons in the process.
var reqSeq atomic.Uint64

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// requestLog wraps next with structured per-request logging: each request
// gets a process-unique id, echoed back in the X-Request-Id header and
// attached to the log line alongside method, path, status, size and
// duration.
func requestLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", time.Since(start),
			"remote", r.RemoteAddr,
		)
	})
}

// Serve accepts connections on ln until Shutdown. Returns nil after a
// graceful shutdown.
func (d *Daemon) Serve(ln net.Listener) error {
	err := d.srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops the daemon, draining in-flight requests until
// ctx expires.
func (d *Daemon) Shutdown(ctx context.Context) error {
	return d.srv.Shutdown(ctx)
}

// DefaultDrainTimeout bounds how long cmd/janitizerd waits for in-flight
// analyses on SIGINT before giving up the drain.
const DefaultDrainTimeout = 30 * time.Second
