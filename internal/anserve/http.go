package anserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/jlint"
	"repro/internal/jmsan"
	"repro/internal/jtsan"
	"repro/internal/obj"
	"repro/internal/telemetry"
)

// MaxModuleBytes bounds the request body accepted by POST /analyze.
const MaxModuleBytes = 64 << 20

// ToolFactory creates a fresh tool instance per analysis request, so
// request handling never shares mutable tool state (reports, runtime
// tables) across concurrent analyses. Instances from one factory must
// share the same name/ConfigKey.
type ToolFactory func() core.Tool

// DefaultTools returns the daemon's built-in tool registry.
func DefaultTools() map[string]ToolFactory {
	return map[string]ToolFactory{
		"jasan": func() core.Tool {
			return jasan.New(jasan.Config{UseLiveness: true})
		},
		"jasan-base": func() core.Tool {
			return jasan.New(jasan.Config{})
		},
		"jasan-scev": func() core.Tool {
			return jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true})
		},
		"jcfi": func() core.Tool {
			return jcfi.New(jcfi.DefaultConfig)
		},
		"jcfi-forward": func() core.Tool {
			return jcfi.New(jcfi.Config{Forward: true})
		},
		"jmsan": func() core.Tool {
			return jmsan.New(jmsan.Config{UseLiveness: true})
		},
		"jmsan-elide": func() core.Tool {
			return jmsan.New(jmsan.Config{UseLiveness: true, Elide: true})
		},
		"jtsan": func() core.Tool {
			return jtsan.New(jtsan.Config{UseLiveness: true})
		},
		"jtsan-elide": func() core.Tool {
			return jtsan.New(jtsan.Config{UseLiveness: true, Elide: true})
		},
		"jasan+jmsan": func() core.Tool {
			return core.NewMultiTool(
				jasan.New(jasan.Config{UseLiveness: true}),
				jmsan.New(jmsan.Config{UseLiveness: true}),
			)
		},
		"jlint": func() core.Tool {
			return jlint.New()
		},
		"comprehensive": func() core.Tool {
			return core.NewMultiTool(
				jasan.New(jasan.Config{UseLiveness: true}),
				jmsan.New(jmsan.Config{UseLiveness: true}),
				jtsan.New(jtsan.Config{UseLiveness: true}),
				jcfi.New(jcfi.DefaultConfig),
			)
		},
	}
}

// HandlerOpts configures the service's HTTP API surface.
type HandlerOpts struct {
	// Analyzer serves the analysis requests; nil selects the Service
	// itself (single-node). A fleet member passes its cluster wrapper.
	Analyzer Analyzer
	// MaxBodyBytes bounds request bodies; 0 selects MaxModuleBytes.
	MaxBodyBytes int64
	// Timeout bounds each analysis request (and each batch item); an
	// expired request answers 504 while the analysis itself finishes in
	// the background and lands in the cache. 0 disables the bound.
	Timeout time.Duration
	// MaxBatch caps items per POST /analyze/batch; 0 selects
	// DefaultMaxBatch.
	MaxBatch int
	// BatchFanout bounds per-request concurrent batch items; 0 selects
	// DefaultBatchFanout.
	BatchFanout int
	// Quota rate-limits tenants (X-Tenant header); nil disables quotas.
	Quota *TenantLimiter
	// ServiceTime is a benchmarking knob: a minimum per-request service
	// latency on POST /analyze, spent while the admission slot is held.
	// It models the fixed per-machine serving cost when an entire fleet is
	// colocated on one host (where wall-clock CPU cannot distinguish one
	// node from three) — each node's capacity becomes its in-flight window
	// divided by this duration, which is per-process exactly like a real
	// machine's capacity is per-machine. 0 (the default) disables it;
	// production deployments never set it.
	ServiceTime time.Duration
	// Diag is the violation log behind GET /violations, fed by POST /run
	// executions. Nil creates a fresh log per handler, so the endpoints
	// always work; daemons that want to inspect the log in-process pass
	// their own.
	Diag *diag.Log
	// RunMaxInstrs bounds POST /run executions; 0 selects
	// DefaultRunMaxInstrs.
	RunMaxInstrs uint64
}

// PeerFillHeader marks fleet-internal cache-fill requests. A request
// carrying it is answered strictly from the local service — never
// re-forwarded (no forwarding loops) and never charged against a tenant
// quota (the originating ingress already was).
const PeerFillHeader = "X-Peer-Fill"

// Handler returns the service's HTTP API with default options:
//
//	POST /analyze?tool=<name>   body: serialized JEF module
//	                            response: marshaled .jrw rule file
//	POST /analyze/batch         JSON batch of the above
//	POST /run?tool=<name>       analyze + execute a module, recording
//	                            structured violation diagnostics
//	GET  /violations            deduplicated diag.Violation records (JSON,
//	                            byte-stable order)
//	GET  /stats                 cache + scheduler counters as JSON
//	GET  /metrics               Prometheus text exposition
//	GET  /trace?limit=N         recent traces, newest first
//	GET  /trace/{id}            one retained trace by trace ID
//	GET  /healthz, /readyz      liveness and readiness probes
//
// Every request accepts a W3C Traceparent header; traced responses echo
// the trace ID in X-Trace-Id.
func (s *Service) Handler(tools map[string]ToolFactory) http.Handler {
	return s.HandlerWith(tools, HandlerOpts{})
}

// analyzeResult carries one finished analysis out of its goroutine.
type analyzeResult struct {
	b    []byte
	tier Tier
	err  error
}

// goAnalyze runs one analysis in its own goroutine so the caller can give
// up waiting (per-request timeout) without cancelling the work: the result
// still lands in the cache, and release (the admission slot) fires when the
// work — not the wait — completes. ctx carries the request span only; it
// must not be the (cancellable) request context.
func goAnalyze(ctx context.Context, an Analyzer, toolName string, mod *obj.Module,
	tool core.Tool, release func()) <-chan analyzeResult {
	ch := make(chan analyzeResult, 1)
	go func() {
		defer release()
		b, tier, err := an.AnalyzeBytesTier(ctx, toolName, mod, tool)
		ch <- analyzeResult{b, tier, err}
	}()
	return ch
}

// startServerSpan begins the server half of a traced request: when the
// request carries a Traceparent header (a traced client or a peer fill)
// the new span joins that trace with the remote caller as its parent, so
// the requester can stitch both nodes' exports into one tree; otherwise it
// roots a fresh trace. A nil tracer yields a nil (inert) span.
func startServerSpan(tr *telemetry.Tracer, r *http.Request, name string,
	attrs ...telemetry.Attr) *telemetry.Span {
	if sc, ok := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader)); ok {
		return tr.StartRemote(sc, name, attrs...)
	}
	return tr.Start(name, attrs...)
}

// awaitAnalyze waits for res up to timeout (0: forever). timedOut reports
// the wait expired with the analysis still running.
func awaitAnalyze(res <-chan analyzeResult, timeout time.Duration) (analyzeResult, bool) {
	if timeout <= 0 {
		return <-res, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case r := <-res:
		return r, false
	case <-t.C:
		return analyzeResult{}, true
	}
}

// HandlerWith returns the service's HTTP API with explicit options.
func (s *Service) HandlerWith(tools map[string]ToolFactory, opts HandlerOpts) http.Handler {
	an := opts.Analyzer
	if an == nil {
		an = s
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = MaxModuleBytes
	}

	diagLog := opts.Diag
	if diagLog == nil {
		diagLog = diag.NewLog()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("tool")
		peerFill := r.Header.Get(PeerFillHeader) != ""
		sp := startServerSpan(s.Tracer(), r, "http.analyze",
			telemetry.String("tool", name))
		defer sp.End()
		if id := sp.TraceID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		if peerFill {
			sp.SetAttr(telemetry.String("peer_fill", "1"))
		}
		fail := func(status int, code, msg string, retryAfterSec int) {
			sp.SetError(msg)
			writeError(w, status, code, msg, retryAfterSec)
		}
		factory, ok := tools[name]
		if !ok {
			var known []string
			for n := range tools {
				known = append(known, n)
			}
			sort.Strings(known)
			fail(http.StatusBadRequest, ErrCodeUnknownTool,
				fmt.Sprintf("unknown tool %q (have %v)", name, known), 0)
			return
		}
		if !peerFill {
			if ok, wait := opts.Quota.Allow(r.Header.Get("X-Tenant"), 1); !ok {
				fail(http.StatusTooManyRequests, ErrCodeQuotaExceeded,
					"tenant quota exceeded", retryAfterSeconds(wait))
				return
			}
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				fail(http.StatusRequestEntityTooLarge, ErrCodeBodyTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", maxBody), 0)
				return
			}
			fail(http.StatusBadRequest, ErrCodeBadRequest,
				"read body: "+err.Error(), 0)
			return
		}
		mod, err := obj.Unmarshal(body)
		if err != nil {
			fail(http.StatusBadRequest, ErrCodeBadModule,
				"bad module: "+err.Error(), 0)
			return
		}
		sp.SetAttr(telemetry.String("module", mod.Name))
		if !s.TryAdmit(1) {
			fail(http.StatusTooManyRequests, ErrCodeOverloaded,
				"scheduler queue full", 1)
			return
		}
		sp.AddEvent("admitted")
		reqAn := an
		if peerFill {
			reqAn = s // peer fills are terminal: never re-forwarded
		}
		if opts.ServiceTime > 0 {
			time.Sleep(opts.ServiceTime) // bench knob: slot held, see HandlerOpts
		}
		// The analysis outlives an abandoned wait, so it carries a detached
		// context holding only the request span — never r.Context().
		actx := telemetry.ContextWithSpan(context.Background(), sp)
		res, timedOut := awaitAnalyze(
			goAnalyze(actx, reqAn, name, mod, factory(), func() { s.Finish(1) }),
			opts.Timeout)
		if timedOut {
			fail(http.StatusGatewayTimeout, ErrCodeTimeout,
				fmt.Sprintf("analysis exceeded %s (still running; retry to hit the cache)",
					opts.Timeout), 0)
			return
		}
		if res.err != nil {
			fail(http.StatusInternalServerError, ErrCodeAnalysisFailed,
				res.err.Error(), 0)
			return
		}
		sp.SetAttr(telemetry.String("tier", string(res.tier)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Module", mod.Name)
		w.Header().Set("X-Cache", string(res.tier))
		_, _ = w.Write(res.b)
	})
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, tools, an, opts, maxBody, diagLog)
	})
	mux.HandleFunc("GET /violations", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(diagLog)
	})
	mux.HandleFunc("POST /analyze/batch", func(w http.ResponseWriter, r *http.Request) {
		s.handleBatch(w, r, tools, an, opts, maxBody)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		var reasons []string
		if err := s.DiskReady(); err != nil {
			reasons = append(reasons, "cache dir not writable: "+err.Error())
		}
		if !s.Accepting() {
			reasons = append(reasons, "scheduler queue full")
		}
		w.Header().Set("Content-Type", "application/json")
		if len(reasons) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"status": "unready", "reasons": reasons,
			})
			return
		}
		_, _ = io.WriteString(w, "{\"status\":\"ready\"}\n")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, ErrCodeBadRequest,
					fmt.Sprintf("bad limit %q", v), 0)
				return
			}
			limit = n
		}
		recent := s.Tracer().Snapshot(limit)
		if recent == nil {
			recent = []*telemetry.SpanRecord{} // tracer disabled: empty array, not null
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recent)
	})
	mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		rec := s.Tracer().Find(id)
		if rec == nil {
			writeError(w, http.StatusNotFound, ErrCodeNotFound,
				fmt.Sprintf("no retained trace %q on this node", id), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
	return mux
}

// Daemon wraps the service handler in an http.Server with graceful
// shutdown: Shutdown stops accepting connections and drains in-flight
// requests before returning.
type Daemon struct {
	Service *Service
	srv     *http.Server
}

// DaemonOptions configures optional daemon behaviour.
type DaemonOptions struct {
	// Logger enables structured request logging (one slog line per request
	// with a process-unique request id). Nil disables logging.
	Logger *slog.Logger
	// Debug mounts net/http/pprof under /debug/pprof/.
	Debug bool
	// Handler configures the API surface (analyzer routing, body limits,
	// timeouts, batch bounds, quotas).
	Handler HandlerOpts
}

// NewDaemon returns a daemon serving svc through the given tool registry.
func NewDaemon(svc *Service, tools map[string]ToolFactory) *Daemon {
	return NewDaemonOpts(svc, tools, DaemonOptions{})
}

// NewDaemonOpts returns a daemon with request logging and debug endpoints
// configured.
func NewDaemonOpts(svc *Service, tools map[string]ToolFactory, opts DaemonOptions) *Daemon {
	h := svc.HandlerWith(tools, opts.Handler)
	if opts.Debug {
		mux := http.NewServeMux()
		mux.Handle("/", h)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		h = mux
	}
	if opts.Logger != nil {
		h = requestLog(opts.Logger, h)
	}
	return &Daemon{
		Service: svc,
		srv:     &http.Server{Handler: h},
	}
}

// reqSeq numbers requests across all daemons in the process.
var reqSeq atomic.Uint64

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// requestLog wraps next with structured per-request logging: each request
// gets a process-unique id, echoed back in the X-Request-Id header and
// attached to the log line alongside method, path, status, size and
// duration.
func requestLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", time.Since(start),
			"remote", r.RemoteAddr,
		)
	})
}

// Serve accepts connections on ln until Shutdown. Returns nil after a
// graceful shutdown.
func (d *Daemon) Serve(ln net.Listener) error {
	err := d.srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops the daemon, draining in-flight requests until
// ctx expires.
func (d *Daemon) Shutdown(ctx context.Context) error {
	return d.srv.Shutdown(ctx)
}

// DefaultDrainTimeout bounds how long cmd/janitizerd waits for in-flight
// analyses on SIGINT before giving up the drain.
const DefaultDrainTimeout = 30 * time.Second
