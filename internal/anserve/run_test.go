package anserve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/diag"
	"repro/internal/telemetry"
)

// buggyModule compiles a program with a one-byte heap overflow jasan must
// trap.
func buggyModule(t *testing.T) []byte {
	t.Helper()
	mod, err := cc.Compile(`
int main() {
    char *buf = malloc(16);
    for (int i = 0; i < 16; i++) buf[i] = i & 127;
    buf[18] = 7;
    int s = buf[0] + buf[8];
    free(buf);
    return s & 63;
}
`, cc.Options{Module: "runbug", O2: true})
	if err != nil {
		t.Fatal(err)
	}
	return mod.Marshal()
}

// TestRunEndpointStructuredViolations is the acceptance path for the diag
// layer: POST /run executes the module, and the response (and GET
// /violations) carry structured, symbolized, CWE-classified records tied to
// the request's trace.
func TestRunEndpointStructuredViolations(t *testing.T) {
	tr := telemetry.NewTracer(16)
	svc := New(Config{Workers: 2, Tracer: tr})
	dlog := diag.NewLog()
	h := svc.HandlerWith(DefaultTools(), HandlerOpts{Diag: dlog})

	w := doReq(t, h, "POST", "/run?tool=jasan", buggyModule(t))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /run: %d: %s", w.Code, w.Body.String())
	}
	traceID := w.Header().Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("traced daemon did not echo X-Trace-Id on /run")
	}
	var resp RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("run response not JSON: %v", err)
	}
	if resp.Module != "runbug" || resp.Tool != "jasan" {
		t.Fatalf("module/tool = %q/%q", resp.Module, resp.Tool)
	}
	if resp.Tier != string(TierMiss) {
		t.Fatalf("first run tier = %q, want miss", resp.Tier)
	}
	if resp.Instrs == 0 || resp.Cycles == 0 {
		t.Fatal("run reported zero instrs/cycles")
	}
	if len(resp.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly 1", resp.Violations)
	}
	v := resp.Violations[0]
	if v.Tool != "jasan" || v.Kind != "heap-buffer-overflow" || v.CWE != "CWE-122" {
		t.Fatalf("violation classification: %+v", v)
	}
	if v.Func != "main" || v.Module != "runbug" {
		t.Fatalf("violation not symbolized to main[runbug]: %+v", v)
	}
	if v.Rule != "MEM_ACCESS" || v.CostCenter != "mem-check" {
		t.Fatalf("rule attribution: %+v", v)
	}
	if v.TraceID != traceID || resp.TraceID != traceID {
		t.Fatalf("violation trace = %q response trace = %q, want %q",
			v.TraceID, resp.TraceID, traceID)
	}
	if v.ID == "" || v.Count != 1 {
		t.Fatalf("identity fields: %+v", v)
	}

	// The trace the violation references is resolvable on this node.
	w = doReq(t, h, "GET", "/trace/"+traceID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /trace/%s: %d", traceID, w.Code)
	}
	var root telemetry.SpanRecord
	if err := json.Unmarshal(w.Body.Bytes(), &root); err != nil {
		t.Fatal(err)
	}
	if root.Name != "http.run" || root.TraceID != traceID {
		t.Fatalf("trace root = %s/%s", root.Name, root.TraceID)
	}

	// GET /violations serves the accumulated log, byte-stable.
	w = doReq(t, h, "GET", "/violations", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /violations: %d", w.Code)
	}
	var served []diag.Violation
	if err := json.Unmarshal(w.Body.Bytes(), &served); err != nil {
		t.Fatal(err)
	}
	if len(served) != 1 || served[0].ID != v.ID {
		t.Fatalf("GET /violations = %+v, want the run's record", served)
	}

	// A second identical run dedups into the same record and serves the
	// analysis from cache.
	w = doReq(t, h, "POST", "/run?tool=jasan", buggyModule(t))
	var resp2 RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Tier != string(TierLocal) {
		t.Fatalf("second run tier = %q, want local", resp2.Tier)
	}
	if dlog.Len() != 1 || dlog.Total() != 2 {
		t.Fatalf("dedup after second run: len=%d total=%d, want 1/2", dlog.Len(), dlog.Total())
	}
}

// TestRunEndpointCleanModule: a well-behaved program reports no violations
// and its exit status round-trips.
func TestRunEndpointCleanModule(t *testing.T) {
	svc := New(Config{Workers: 2})
	h := svc.Handler(DefaultTools())
	mod, err := cc.Compile(`
int main() {
    char *buf = malloc(8);
    buf[7] = 41;
    int s = buf[7] + 1;
    free(buf);
    return s;
}
`, cc.Options{Module: "runclean", O2: true})
	if err != nil {
		t.Fatal(err)
	}
	w := doReq(t, h, "POST", "/run?tool=jasan", mod.Marshal())
	if w.Code != http.StatusOK {
		t.Fatalf("POST /run: %d: %s", w.Code, w.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Violations) != 0 {
		t.Fatalf("clean module reported %+v", resp.Violations)
	}
	if resp.ExitStatus != 42 {
		t.Fatalf("exit status = %d, want 42", resp.ExitStatus)
	}
	if resp.RunError != "" {
		t.Fatalf("run error = %q", resp.RunError)
	}
}

// TestRunEndpointErrors covers the /run request-validation surface.
func TestRunEndpointErrors(t *testing.T) {
	svc := New(Config{Workers: 2})
	h := svc.Handler(DefaultTools())

	w := doReq(t, h, "POST", "/run?tool=nope", []byte("x"))
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), ErrCodeUnknownTool) {
		t.Fatalf("unknown tool: %d %s", w.Code, w.Body.String())
	}
	// jlint produces analysis artifacts, not executable rule files.
	w = doReq(t, h, "POST", "/run?tool=jlint", []byte("x"))
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), ErrCodeBadRequest) {
		t.Fatalf("artifact tool: %d %s", w.Code, w.Body.String())
	}
	w = doReq(t, h, "POST", "/run?tool=jasan", []byte("not a module"))
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), ErrCodeBadModule) {
		t.Fatalf("bad module: %d %s", w.Code, w.Body.String())
	}
}

// TestTraceByIDNotFound: an unknown (or malformed) trace ID is a typed 404.
func TestTraceByIDNotFound(t *testing.T) {
	tr := telemetry.NewTracer(4)
	svc := New(Config{Workers: 1, Tracer: tr})
	h := svc.Handler(DefaultTools())
	w := doReq(t, h, "GET", "/trace/0af7651916cd43dd8448eb211c80319c", nil)
	if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), ErrCodeNotFound) {
		t.Fatalf("unknown trace: %d %s", w.Code, w.Body.String())
	}
}

// TestTraceLimitValidation: /trace?limit=N must honor the limit and reject
// junk.
func TestTraceLimitValidation(t *testing.T) {
	tr := telemetry.NewTracer(16)
	svc := New(Config{Workers: 1, Tracer: tr})
	h := svc.Handler(DefaultTools())
	for i := 0; i < 3; i++ {
		sp := tr.Start("warm")
		sp.End()
	}
	w := doReq(t, h, "GET", "/trace?limit=2", nil)
	var spans []*telemetry.SpanRecord
	if err := json.Unmarshal(w.Body.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("limit=2 returned %d spans", len(spans))
	}
	w = doReq(t, h, "GET", "/trace?limit=bogus", nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bogus limit: %d", w.Code)
	}
}
