package anserve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/core"
	"repro/internal/jasan"
	"repro/internal/jmsan"
	"repro/internal/rules"
)

// TestJMSanCacheKeySeparation is the composition-safety criterion for the
// content-addressed cache: a jasan-only configuration and a combined
// jasan+jmsan configuration of the *same module* must hash to distinct
// cache keys, so adding a second sanitizer can never be served a stale
// jasan-only artifact (and vice versa).
func TestJMSanCacheKeySeparation(t *testing.T) {
	mod := testModule(t)
	tools := []core.Tool{
		jasan.New(jasan.Config{UseLiveness: true}),
		jmsan.New(jmsan.Config{UseLiveness: true}),
		jmsan.New(jmsan.Config{UseLiveness: true, Elide: true}),
		core.NewMultiTool(
			jasan.New(jasan.Config{UseLiveness: true}),
			jmsan.New(jmsan.Config{UseLiveness: true}),
		),
	}
	keys := map[string]bool{}
	for _, tool := range tools {
		keys[CacheKey(mod, tool)] = true
	}
	if len(keys) != len(tools) {
		t.Fatalf("cache keys collide: %d distinct for %d configurations",
			len(keys), len(tools))
	}

	// The service must actually run one analysis per configuration — a
	// collision would surface here as a bogus cache hit.
	svc := New(Config{})
	var artifacts [][]byte
	for _, tool := range tools {
		out, err := svc.AnalyzeModuleBytes(mod, tool)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, out)
	}
	if st := svc.Stats(); st.Sched.Analyzed != uint64(len(tools)) {
		t.Fatalf("analyzed = %d, want %d (one per configuration)",
			st.Sched.Analyzed, len(tools))
	}
	if bytes.Equal(artifacts[0], artifacts[3]) {
		t.Fatal("jasan-only and jasan+jmsan artifacts are identical")
	}
}

// TestHandlerServesJMSan drives the HTTP API with the real default registry:
// POSTing one module as tool=jasan and again as tool=jasan+jmsan must run
// two analyses (distinct cache keys) and return distinct, valid rule files,
// with the combined artifact carrying jmsan's definedness rules.
func TestHandlerServesJMSan(t *testing.T) {
	mod := testModule(t)
	modBytes := mod.Marshal()
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler(DefaultTools()))
	defer srv.Close()

	post := func(tool string) []byte {
		t.Helper()
		// QueryEscape matters: the "+" in "jasan+jmsan" would otherwise
		// decode to a space server-side.
		resp, err := http.Post(srv.URL+"/analyze?tool="+url.QueryEscape(tool),
			"application/octet-stream", bytes.NewReader(modBytes))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tool=%s: status %d: %s", tool, resp.StatusCode, body)
		}
		return body
	}

	asanOnly := post("jasan")
	combined := post("jasan+jmsan")
	if bytes.Equal(asanOnly, combined) {
		t.Fatal("jasan and jasan+jmsan responses are byte-identical")
	}
	if st := svc.Stats(); st.Sched.Analyzed != 2 {
		t.Fatalf("analyzed = %d, want 2 (one per tool configuration)",
			st.Sched.Analyzed)
	}

	f, err := rules.Unmarshal(combined)
	if err != nil {
		t.Fatalf("combined response does not round-trip: %v", err)
	}
	var defRules int
	for _, r := range f.Rules {
		switch r.ID {
		case rules.MemDefStore, rules.MemDefLoad, rules.FrameUndef:
			defRules++
		}
	}
	if defRules == 0 {
		t.Fatal("combined jasan+jmsan artifact carries no definedness rules")
	}
}
