package anserve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// DefaultMemCacheBytes is the default memory-tier budget.
const DefaultMemCacheBytes = 64 << 20

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent module analyses; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// MemCacheBytes is the in-memory cache budget; 0 selects
	// DefaultMemCacheBytes, negative disables the memory tier.
	MemCacheBytes int64
	// CacheDir enables the on-disk artifact tier when non-empty.
	CacheDir string
	// DiskCacheBytes caps the on-disk tier; entries beyond the budget are
	// garbage-collected LRU-by-mtime. <= 0 leaves the tier unbounded.
	DiskCacheBytes int64
	// MaxQueue bounds admitted-but-not-yet-finished analysis requests
	// beyond the worker pool: once Workers+MaxQueue requests are in
	// flight, further submissions are rejected by TryAdmit and the HTTP
	// layer answers 429. <= 0 disables admission control.
	MaxQueue int
	// Tracer is this service's span tracer — the store behind GET /trace
	// and the parent of every request span. Nil falls back to the
	// process-wide telemetry tracer (disabled by default), so existing
	// single-node deployments are unchanged; in-process multi-node fleets
	// (tests) pass distinct tracers to keep per-node trace stores apart.
	Tracer *telemetry.Tracer
}

// Tier says where an analysis response came from. The HTTP layer echoes it
// in the X-Cache response header and cmd/jload aggregates it per request.
type Tier string

const (
	// TierLocal is a hit in this node's own cache (either tier).
	TierLocal Tier = "local"
	// TierPeer is an artifact filled from the owning fleet sibling.
	TierPeer Tier = "peer"
	// TierMiss is an analysis computed on this node.
	TierMiss Tier = "miss"
)

// Analyzer is the request-path analysis interface. A single node serves
// straight from its Service; a fleet member routes through
// internal/cluster's consistent-hash peer-fill wrapper. toolName is the
// registry name of the tool (needed to forward the request to a sibling;
// the plain Service ignores it). ctx carries the request's telemetry span
// (when tracing is enabled) so analysis and peer-fill spans nest under the
// originating request — implementations must not use it for cancellation,
// because an abandoned request's analysis still finishes and fills the
// cache.
type Analyzer interface {
	AnalyzeBytesTier(ctx context.Context, toolName string, mod *obj.Module, tool core.Tool) ([]byte, Tier, error)
}

// SchedStats are the scheduler counters, readable via Service.Stats and
// GET /stats.
type SchedStats struct {
	// Submitted counts AnalyzeModule requests.
	Submitted uint64 `json:"submitted"`
	// Coalesced counts requests that joined an identical in-flight
	// analysis instead of starting their own (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts requests served from either cache tier.
	CacheHits uint64 `json:"cache_hits"`
	// Analyzed counts actual static-analysis executions.
	Analyzed uint64 `json:"analyzed"`
	// Errors counts failed analyses.
	Errors uint64 `json:"errors"`
	// Rejected counts requests turned away by the admission gate.
	Rejected uint64 `json:"rejected"`
	// Workers is the pool bound.
	Workers int `json:"workers"`
}

// Stats is the combined service snapshot served by GET /stats.
type Stats struct {
	Cache CacheStats `json:"cache"`
	Sched SchedStats `json:"scheduler"`
}

// Service is the analysis service: content-addressed caching plus a bounded
// worker pool with singleflight deduplication. It implements
// core.ModuleAnalyzer; a single Service is meant to be shared process-wide
// (the evaluation harness keeps one for the whole run, janitizerd keeps one
// for the daemon's lifetime). Safe for concurrent use.
type Service struct {
	cache *Cache
	sem   chan struct{}

	mu       sync.Mutex
	inflight map[string]*inflightCall

	submitted, coalesced, cacheHits, analyzed, errors atomic.Uint64

	// reg exposes the same counters as Stats in Prometheus text format
	// (GET /metrics); latency records per-tool analysis durations.
	reg     *telemetry.Registry
	latency map[string]*telemetry.Histogram
	latMu   sync.Mutex

	// tr is the per-node tracer (nil: the process-wide one).
	tr *telemetry.Tracer

	// admitLimit caps concurrently admitted requests (0: unlimited);
	// rejected counts submissions turned away at the admission gate.
	admitLimit int64
	admitCur   atomic.Int64
	rejected   atomic.Uint64
}

type inflightCall struct {
	done chan struct{}
	val  []byte
	tier Tier
	err  error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	memBytes := cfg.MemCacheBytes
	if memBytes == 0 {
		memBytes = DefaultMemCacheBytes
	}
	s := &Service{
		cache:    NewCacheDisk(memBytes, cfg.CacheDir, cfg.DiskCacheBytes),
		sem:      make(chan struct{}, workers),
		inflight: map[string]*inflightCall{},
		reg:      telemetry.NewRegistry(),
		latency:  map[string]*telemetry.Histogram{},
		tr:       cfg.Tracer,
	}
	if cfg.MaxQueue > 0 {
		s.admitLimit = int64(workers + cfg.MaxQueue)
	}
	s.registerMetrics()
	return s
}

// registerMetrics exposes the scheduler and cache counters on the service's
// registry. The functions read the same atomics (and the same Cache.Stats
// snapshot) that back GET /stats, so the two views can never diverge.
func (s *Service) registerMetrics() {
	r := s.reg
	cf := func(name, help string, fn func() uint64) {
		r.CounterFunc(name, help, fn)
	}
	cf("janitizer_analyze_submitted_total",
		"Analysis requests submitted to the scheduler.",
		s.submitted.Load)
	cf("janitizer_analyze_coalesced_total",
		"Requests that joined an identical in-flight analysis.",
		s.coalesced.Load)
	cf("janitizer_analyze_cache_hits_total",
		"Requests served from either rule-cache tier.",
		s.cacheHits.Load)
	cf("janitizer_analyzed_total",
		"Static-analysis executions.",
		s.analyzed.Load)
	cf("janitizer_analyze_errors_total",
		"Failed analyses.",
		s.errors.Load)
	r.GaugeFunc("janitizer_analysis_workers",
		"Worker-pool bound.",
		func() float64 { return float64(cap(s.sem)) })

	cacheCounter := func(name, help, tier string, fn func(CacheStats) uint64) {
		r.CounterFunc(name, help,
			func() uint64 { return fn(s.cache.Stats()) }, "tier", tier)
	}
	cacheCounter("janitizer_rule_cache_hits_total",
		"Rule-cache hits by tier.", "mem",
		func(c CacheStats) uint64 { return c.MemHits })
	cacheCounter("janitizer_rule_cache_hits_total",
		"Rule-cache hits by tier.", "disk",
		func(c CacheStats) uint64 { return c.DiskHits })
	cacheCounter("janitizer_rule_cache_misses_total",
		"Rule-cache misses by tier.", "mem",
		func(c CacheStats) uint64 { return c.MemMisses })
	cacheCounter("janitizer_rule_cache_misses_total",
		"Rule-cache misses by tier.", "disk",
		func(c CacheStats) uint64 { return c.DiskMisses })
	cacheCounter("janitizer_rule_cache_evictions_total",
		"Cache evictions by tier.", "mem",
		func(c CacheStats) uint64 { return c.Evictions })
	cacheCounter("janitizer_rule_cache_evictions_total",
		"Cache evictions by tier.", "disk",
		func(c CacheStats) uint64 { return c.DiskEvictions })
	cacheCounter("janitizer_rule_cache_corrupt_total",
		"Disk-tier entries dropped as corrupt.", "disk",
		func(c CacheStats) uint64 { return c.DiskCorrupt })
	cacheCounter("janitizer_rule_cache_puts_total",
		"Rule-cache insertions.", "mem",
		func(c CacheStats) uint64 { return c.Puts })
	cf("janitizer_analyze_rejected_total",
		"Requests rejected by the admission gate (backpressure).",
		s.rejected.Load)
	r.GaugeFunc("janitizer_rule_cache_mem_bytes",
		"Memory-tier resident bytes.",
		func() float64 { return float64(s.cache.Stats().MemBytes) })
	r.GaugeFunc("janitizer_rule_cache_mem_entries",
		"Memory-tier resident entries.",
		func() float64 { return float64(s.cache.Stats().MemEntries) })
}

// latencyBuckets spans sub-millisecond module analyses to multi-second
// whole-program closures.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// toolLatency returns (lazily creating) the per-tool analysis-duration
// histogram.
func (s *Service) toolLatency(tool string) *telemetry.Histogram {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	h, ok := s.latency[tool]
	if !ok {
		h = s.reg.Histogram("janitizer_analysis_duration_seconds",
			"Wall-clock duration of cache-miss static analyses by tool.",
			latencyBuckets, "tool", tool)
		s.latency[tool] = h
	}
	return h
}

// Registry returns the service's metrics registry — the source for
// GET /metrics; callers may register additional instruments on it.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Tracer returns this service's span tracer: the per-node tracer from
// Config.Tracer, or the process-wide telemetry tracer (possibly nil —
// tracing disabled) when none was configured.
func (s *Service) Tracer() *telemetry.Tracer {
	if s.tr != nil {
		return s.tr
	}
	return telemetry.T()
}

// Workers returns the worker-pool bound.
func (s *Service) Workers() int { return cap(s.sem) }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Cache: s.cache.Stats(),
		Sched: SchedStats{
			Submitted: s.submitted.Load(),
			Coalesced: s.coalesced.Load(),
			CacheHits: s.cacheHits.Load(),
			Analyzed:  s.analyzed.Load(),
			Errors:    s.errors.Load(),
			Rejected:  s.rejected.Load(),
			Workers:   cap(s.sem),
		},
	}
}

// TryAdmit reserves n admission slots, or reports backpressure: false
// means the scheduler queue is full and the caller should answer 429.
// Every successful TryAdmit must be paired with a Finish. With MaxQueue
// unset admission always succeeds.
func (s *Service) TryAdmit(n int) bool {
	if s.admitLimit <= 0 {
		return true
	}
	for {
		cur := s.admitCur.Load()
		if cur+int64(n) > s.admitLimit {
			s.rejected.Add(uint64(n))
			return false
		}
		if s.admitCur.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// Finish releases n admission slots reserved by TryAdmit.
func (s *Service) Finish(n int) {
	if s.admitLimit > 0 {
		s.admitCur.Add(-int64(n))
	}
}

// Accepting reports whether the admission gate has room — the readiness
// half of GET /readyz.
func (s *Service) Accepting() bool {
	return s.admitLimit <= 0 || s.admitCur.Load() < s.admitLimit
}

// DiskReady reports whether the on-disk cache tier (if configured) accepts
// writes; used by GET /readyz.
func (s *Service) DiskReady() error { return s.cache.DiskReady() }

// CacheProbe is a pure cache lookup by content address — no scheduling, no
// computation. internal/cluster uses it to distinguish a local hit from a
// peer-fill opportunity. The returned slice is shared.
func (s *Service) CacheProbe(key string) ([]byte, bool) { return s.cache.Get(key) }

// CacheInsert stores an externally produced artifact (a peer fill) under
// its content address. The cache keeps a reference to val.
func (s *Service) CacheInsert(key string, val []byte) { s.cache.Put(key, val) }

// AnalyzeModuleBytes returns the marshaled rules.File (.jrw bytes) for mod
// under tool, serving from cache when possible. Concurrent calls for the
// same (module, tool configuration) coalesce into one analysis. The
// returned slice is shared — callers must not modify it.
func (s *Service) AnalyzeModuleBytes(mod *obj.Module, tool core.Tool) ([]byte, error) {
	b, _, err := s.AnalyzeBytesTier(context.Background(), "", mod, tool)
	return b, err
}

// AnalyzeBytesTier implements Analyzer: AnalyzeModuleBytes plus where the
// answer came from (TierLocal for a cache hit, TierMiss for a computed
// analysis; coalesced callers inherit the leader's tier). toolName is
// ignored — a single node never forwards.
func (s *Service) AnalyzeBytesTier(ctx context.Context, _ string, mod *obj.Module, tool core.Tool) ([]byte, Tier, error) {
	s.submitted.Add(1)
	key := CacheKey(mod, tool)

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-c.done
		return c.val, c.tier, c.err
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.val, c.tier, c.err = s.analyze(ctx, key, mod, tool)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.val, c.tier, c.err
}

// AnalyzeModule implements core.ModuleAnalyzer over the cached byte path.
func (s *Service) AnalyzeModule(mod *obj.Module, tool core.Tool) (*rules.File, error) {
	b, err := s.AnalyzeModuleBytes(mod, tool)
	if err != nil {
		return nil, err
	}
	return rules.Unmarshal(b)
}

func (s *Service) analyze(ctx context.Context, key string, mod *obj.Module, tool core.Tool) ([]byte, Tier, error) {
	sp, ctx := s.Tracer().StartFrom(ctx, "anserve.analyze",
		telemetry.String("module", mod.Name),
		telemetry.String("tool", tool.Name()))
	defer sp.End()
	if b, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		sp.SetAttr(telemetry.String("cache", "hit"))
		return b, TierLocal, nil
	}
	sp.SetAttr(telemetry.String("cache", "miss"))
	s.sem <- struct{}{} // worker-pool slot
	defer func() { <-s.sem }()
	sp.AddEvent("worker-acquired")
	start := time.Now()
	var b []byte
	var err error
	if at, ok := tool.(core.ArtifactTool); ok {
		b, err = at.AnalyzeArtifact(mod)
	} else {
		var f *rules.File
		f, err = core.AnalyzeModuleCtx(ctx, mod, tool)
		if err == nil {
			b = f.Marshal()
		}
	}
	// The exemplar links the slow bucket to the concrete trace that filled
	// it; with tracing disabled TraceID is "" and this is a plain Observe.
	s.toolLatency(tool.Name()).ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
	if err != nil {
		s.errors.Add(1)
		sp.SetError(err.Error())
		return nil, TierMiss, fmt.Errorf("anserve: %w", err)
	}
	s.analyzed.Add(1)
	s.cache.Put(key, b)
	return b, TierMiss, nil
}

// AnalyzeProgram analyzes the main module and its ldd-visible closure
// concurrently, in dependency-topological order: a module's analysis starts
// only after every dependency that precedes it in the closure has finished,
// so shared libraries land in the cache before the binaries that need them.
// Goroutines park on dependency completion without holding worker slots, so
// the pool bound applies to actual analyses only. Drop-in replacement for
// core.AnalyzeProgram.
func (s *Service) AnalyzeProgram(main *obj.Module, reg loader.Registry,
	tool core.Tool) (map[string]*rules.File, error) {

	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("anserve: %w", err)
	}

	type node struct {
		mod  *obj.Module
		done chan struct{}
		file *rules.File
		err  error
	}
	nodes := make(map[string]*node, len(mods))
	index := make(map[string]int, len(mods))
	order := make([]*node, len(mods))
	for i, m := range mods {
		n := &node{mod: m, done: make(chan struct{})}
		nodes[m.Name] = n
		index[m.Name] = i
		order[i] = n
	}
	for i, n := range order {
		go func(i int, n *node) {
			defer close(n.done)
			for _, dep := range n.mod.Needed {
				// Wait only for dependencies that precede this
				// module in the closure: LddClosure emits
				// dependency-first order, and the index guard keeps
				// a (malformed) dependency cycle from deadlocking
				// the pool.
				dn, ok := nodes[dep]
				if !ok || index[dep] >= i {
					continue
				}
				<-dn.done
				if dn.err != nil {
					n.err = fmt.Errorf("anserve: %s: dependency %s failed",
						n.mod.Name, dep)
					return
				}
			}
			n.file, n.err = s.AnalyzeModule(n.mod, tool)
		}(i, n)
	}

	out := make(map[string]*rules.File, len(order))
	for _, n := range order {
		<-n.done
	}
	// Dependency-first order means the root cause sorts before the
	// "dependency failed" placeholders.
	for _, n := range order {
		if n.err != nil {
			return nil, n.err
		}
		out[n.mod.Name] = n.file
	}
	return out, nil
}
