package anserve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
)

// DefaultMemCacheBytes is the default memory-tier budget.
const DefaultMemCacheBytes = 64 << 20

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent module analyses; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// MemCacheBytes is the in-memory cache budget; 0 selects
	// DefaultMemCacheBytes, negative disables the memory tier.
	MemCacheBytes int64
	// CacheDir enables the on-disk artifact tier when non-empty.
	CacheDir string
}

// SchedStats are the scheduler counters, readable via Service.Stats and
// GET /stats.
type SchedStats struct {
	// Submitted counts AnalyzeModule requests.
	Submitted uint64 `json:"submitted"`
	// Coalesced counts requests that joined an identical in-flight
	// analysis instead of starting their own (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts requests served from either cache tier.
	CacheHits uint64 `json:"cache_hits"`
	// Analyzed counts actual static-analysis executions.
	Analyzed uint64 `json:"analyzed"`
	// Errors counts failed analyses.
	Errors uint64 `json:"errors"`
	// Workers is the pool bound.
	Workers int `json:"workers"`
}

// Stats is the combined service snapshot served by GET /stats.
type Stats struct {
	Cache CacheStats `json:"cache"`
	Sched SchedStats `json:"scheduler"`
}

// Service is the analysis service: content-addressed caching plus a bounded
// worker pool with singleflight deduplication. It implements
// core.ModuleAnalyzer; a single Service is meant to be shared process-wide
// (the evaluation harness keeps one for the whole run, janitizerd keeps one
// for the daemon's lifetime). Safe for concurrent use.
type Service struct {
	cache *Cache
	sem   chan struct{}

	mu       sync.Mutex
	inflight map[string]*inflightCall

	submitted, coalesced, cacheHits, analyzed, errors atomic.Uint64
}

type inflightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	memBytes := cfg.MemCacheBytes
	if memBytes == 0 {
		memBytes = DefaultMemCacheBytes
	}
	return &Service{
		cache:    NewCache(memBytes, cfg.CacheDir),
		sem:      make(chan struct{}, workers),
		inflight: map[string]*inflightCall{},
	}
}

// Workers returns the worker-pool bound.
func (s *Service) Workers() int { return cap(s.sem) }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Cache: s.cache.Stats(),
		Sched: SchedStats{
			Submitted: s.submitted.Load(),
			Coalesced: s.coalesced.Load(),
			CacheHits: s.cacheHits.Load(),
			Analyzed:  s.analyzed.Load(),
			Errors:    s.errors.Load(),
			Workers:   cap(s.sem),
		},
	}
}

// AnalyzeModuleBytes returns the marshaled rules.File (.jrw bytes) for mod
// under tool, serving from cache when possible. Concurrent calls for the
// same (module, tool configuration) coalesce into one analysis. The
// returned slice is shared — callers must not modify it.
func (s *Service) AnalyzeModuleBytes(mod *obj.Module, tool core.Tool) ([]byte, error) {
	s.submitted.Add(1)
	key := CacheKey(mod, tool)

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.val, c.err = s.analyze(key, mod, tool)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// AnalyzeModule implements core.ModuleAnalyzer over the cached byte path.
func (s *Service) AnalyzeModule(mod *obj.Module, tool core.Tool) (*rules.File, error) {
	b, err := s.AnalyzeModuleBytes(mod, tool)
	if err != nil {
		return nil, err
	}
	return rules.Unmarshal(b)
}

func (s *Service) analyze(key string, mod *obj.Module, tool core.Tool) ([]byte, error) {
	if b, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		return b, nil
	}
	s.sem <- struct{}{} // worker-pool slot
	defer func() { <-s.sem }()
	f, err := core.AnalyzeModule(mod, tool)
	if err != nil {
		s.errors.Add(1)
		return nil, fmt.Errorf("anserve: %w", err)
	}
	s.analyzed.Add(1)
	b := f.Marshal()
	s.cache.Put(key, b)
	return b, nil
}

// AnalyzeProgram analyzes the main module and its ldd-visible closure
// concurrently, in dependency-topological order: a module's analysis starts
// only after every dependency that precedes it in the closure has finished,
// so shared libraries land in the cache before the binaries that need them.
// Goroutines park on dependency completion without holding worker slots, so
// the pool bound applies to actual analyses only. Drop-in replacement for
// core.AnalyzeProgram.
func (s *Service) AnalyzeProgram(main *obj.Module, reg loader.Registry,
	tool core.Tool) (map[string]*rules.File, error) {

	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("anserve: %w", err)
	}

	type node struct {
		mod  *obj.Module
		done chan struct{}
		file *rules.File
		err  error
	}
	nodes := make(map[string]*node, len(mods))
	index := make(map[string]int, len(mods))
	order := make([]*node, len(mods))
	for i, m := range mods {
		n := &node{mod: m, done: make(chan struct{})}
		nodes[m.Name] = n
		index[m.Name] = i
		order[i] = n
	}
	for i, n := range order {
		go func(i int, n *node) {
			defer close(n.done)
			for _, dep := range n.mod.Needed {
				// Wait only for dependencies that precede this
				// module in the closure: LddClosure emits
				// dependency-first order, and the index guard keeps
				// a (malformed) dependency cycle from deadlocking
				// the pool.
				dn, ok := nodes[dep]
				if !ok || index[dep] >= i {
					continue
				}
				<-dn.done
				if dn.err != nil {
					n.err = fmt.Errorf("anserve: %s: dependency %s failed",
						n.mod.Name, dep)
					return
				}
			}
			n.file, n.err = s.AnalyzeModule(n.mod, tool)
		}(i, n)
	}

	out := make(map[string]*rules.File, len(order))
	for _, n := range order {
		<-n.done
	}
	// Dependency-first order means the root cause sorts before the
	// "dependency failed" placeholders.
	for _, n := range order {
		if n.err != nil {
			return nil, n.err
		}
		out[n.mod.Name] = n.file
	}
	return out, nil
}
