package anserve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obj"
	"repro/internal/rules"
	"repro/internal/telemetry"
)

// DefaultMemCacheBytes is the default memory-tier budget.
const DefaultMemCacheBytes = 64 << 20

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent module analyses; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// MemCacheBytes is the in-memory cache budget; 0 selects
	// DefaultMemCacheBytes, negative disables the memory tier.
	MemCacheBytes int64
	// CacheDir enables the on-disk artifact tier when non-empty.
	CacheDir string
}

// SchedStats are the scheduler counters, readable via Service.Stats and
// GET /stats.
type SchedStats struct {
	// Submitted counts AnalyzeModule requests.
	Submitted uint64 `json:"submitted"`
	// Coalesced counts requests that joined an identical in-flight
	// analysis instead of starting their own (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts requests served from either cache tier.
	CacheHits uint64 `json:"cache_hits"`
	// Analyzed counts actual static-analysis executions.
	Analyzed uint64 `json:"analyzed"`
	// Errors counts failed analyses.
	Errors uint64 `json:"errors"`
	// Workers is the pool bound.
	Workers int `json:"workers"`
}

// Stats is the combined service snapshot served by GET /stats.
type Stats struct {
	Cache CacheStats `json:"cache"`
	Sched SchedStats `json:"scheduler"`
}

// Service is the analysis service: content-addressed caching plus a bounded
// worker pool with singleflight deduplication. It implements
// core.ModuleAnalyzer; a single Service is meant to be shared process-wide
// (the evaluation harness keeps one for the whole run, janitizerd keeps one
// for the daemon's lifetime). Safe for concurrent use.
type Service struct {
	cache *Cache
	sem   chan struct{}

	mu       sync.Mutex
	inflight map[string]*inflightCall

	submitted, coalesced, cacheHits, analyzed, errors atomic.Uint64

	// reg exposes the same counters as Stats in Prometheus text format
	// (GET /metrics); latency records per-tool analysis durations.
	reg     *telemetry.Registry
	latency map[string]*telemetry.Histogram
	latMu   sync.Mutex
}

type inflightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	memBytes := cfg.MemCacheBytes
	if memBytes == 0 {
		memBytes = DefaultMemCacheBytes
	}
	s := &Service{
		cache:    NewCache(memBytes, cfg.CacheDir),
		sem:      make(chan struct{}, workers),
		inflight: map[string]*inflightCall{},
		reg:      telemetry.NewRegistry(),
		latency:  map[string]*telemetry.Histogram{},
	}
	s.registerMetrics()
	return s
}

// registerMetrics exposes the scheduler and cache counters on the service's
// registry. The functions read the same atomics (and the same Cache.Stats
// snapshot) that back GET /stats, so the two views can never diverge.
func (s *Service) registerMetrics() {
	r := s.reg
	cf := func(name, help string, fn func() uint64) {
		r.CounterFunc(name, help, fn)
	}
	cf("janitizer_analyze_submitted_total",
		"Analysis requests submitted to the scheduler.",
		s.submitted.Load)
	cf("janitizer_analyze_coalesced_total",
		"Requests that joined an identical in-flight analysis.",
		s.coalesced.Load)
	cf("janitizer_analyze_cache_hits_total",
		"Requests served from either rule-cache tier.",
		s.cacheHits.Load)
	cf("janitizer_analyzed_total",
		"Static-analysis executions.",
		s.analyzed.Load)
	cf("janitizer_analyze_errors_total",
		"Failed analyses.",
		s.errors.Load)
	r.GaugeFunc("janitizer_analysis_workers",
		"Worker-pool bound.",
		func() float64 { return float64(cap(s.sem)) })

	cacheCounter := func(name, help, tier string, fn func(CacheStats) uint64) {
		r.CounterFunc(name, help,
			func() uint64 { return fn(s.cache.Stats()) }, "tier", tier)
	}
	cacheCounter("janitizer_rule_cache_hits_total",
		"Rule-cache hits by tier.", "mem",
		func(c CacheStats) uint64 { return c.MemHits })
	cacheCounter("janitizer_rule_cache_hits_total",
		"Rule-cache hits by tier.", "disk",
		func(c CacheStats) uint64 { return c.DiskHits })
	cacheCounter("janitizer_rule_cache_misses_total",
		"Rule-cache misses by tier.", "mem",
		func(c CacheStats) uint64 { return c.MemMisses })
	cacheCounter("janitizer_rule_cache_misses_total",
		"Rule-cache misses by tier.", "disk",
		func(c CacheStats) uint64 { return c.DiskMisses })
	cacheCounter("janitizer_rule_cache_evictions_total",
		"Memory-tier evictions.", "mem",
		func(c CacheStats) uint64 { return c.Evictions })
	cacheCounter("janitizer_rule_cache_puts_total",
		"Rule-cache insertions.", "mem",
		func(c CacheStats) uint64 { return c.Puts })
	r.GaugeFunc("janitizer_rule_cache_mem_bytes",
		"Memory-tier resident bytes.",
		func() float64 { return float64(s.cache.Stats().MemBytes) })
	r.GaugeFunc("janitizer_rule_cache_mem_entries",
		"Memory-tier resident entries.",
		func() float64 { return float64(s.cache.Stats().MemEntries) })
}

// latencyBuckets spans sub-millisecond module analyses to multi-second
// whole-program closures.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// toolLatency returns (lazily creating) the per-tool analysis-duration
// histogram.
func (s *Service) toolLatency(tool string) *telemetry.Histogram {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	h, ok := s.latency[tool]
	if !ok {
		h = s.reg.Histogram("janitizer_analysis_duration_seconds",
			"Wall-clock duration of cache-miss static analyses by tool.",
			latencyBuckets, "tool", tool)
		s.latency[tool] = h
	}
	return h
}

// Registry returns the service's metrics registry — the source for
// GET /metrics; callers may register additional instruments on it.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Workers returns the worker-pool bound.
func (s *Service) Workers() int { return cap(s.sem) }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Cache: s.cache.Stats(),
		Sched: SchedStats{
			Submitted: s.submitted.Load(),
			Coalesced: s.coalesced.Load(),
			CacheHits: s.cacheHits.Load(),
			Analyzed:  s.analyzed.Load(),
			Errors:    s.errors.Load(),
			Workers:   cap(s.sem),
		},
	}
}

// AnalyzeModuleBytes returns the marshaled rules.File (.jrw bytes) for mod
// under tool, serving from cache when possible. Concurrent calls for the
// same (module, tool configuration) coalesce into one analysis. The
// returned slice is shared — callers must not modify it.
func (s *Service) AnalyzeModuleBytes(mod *obj.Module, tool core.Tool) ([]byte, error) {
	s.submitted.Add(1)
	key := CacheKey(mod, tool)

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.val, c.err = s.analyze(key, mod, tool)

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// AnalyzeModule implements core.ModuleAnalyzer over the cached byte path.
func (s *Service) AnalyzeModule(mod *obj.Module, tool core.Tool) (*rules.File, error) {
	b, err := s.AnalyzeModuleBytes(mod, tool)
	if err != nil {
		return nil, err
	}
	return rules.Unmarshal(b)
}

func (s *Service) analyze(key string, mod *obj.Module, tool core.Tool) ([]byte, error) {
	sp := telemetry.StartSpan("anserve.analyze",
		telemetry.String("module", mod.Name),
		telemetry.String("tool", tool.Name()))
	defer sp.End()
	if b, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		sp.SetAttr(telemetry.String("cache", "hit"))
		return b, nil
	}
	sp.SetAttr(telemetry.String("cache", "miss"))
	s.sem <- struct{}{} // worker-pool slot
	defer func() { <-s.sem }()
	start := time.Now()
	f, err := core.AnalyzeModule(mod, tool)
	s.toolLatency(tool.Name()).Observe(time.Since(start).Seconds())
	if err != nil {
		s.errors.Add(1)
		return nil, fmt.Errorf("anserve: %w", err)
	}
	s.analyzed.Add(1)
	b := f.Marshal()
	s.cache.Put(key, b)
	return b, nil
}

// AnalyzeProgram analyzes the main module and its ldd-visible closure
// concurrently, in dependency-topological order: a module's analysis starts
// only after every dependency that precedes it in the closure has finished,
// so shared libraries land in the cache before the binaries that need them.
// Goroutines park on dependency completion without holding worker slots, so
// the pool bound applies to actual analyses only. Drop-in replacement for
// core.AnalyzeProgram.
func (s *Service) AnalyzeProgram(main *obj.Module, reg loader.Registry,
	tool core.Tool) (map[string]*rules.File, error) {

	mods, err := loader.LddClosure(main, reg)
	if err != nil {
		return nil, fmt.Errorf("anserve: %w", err)
	}

	type node struct {
		mod  *obj.Module
		done chan struct{}
		file *rules.File
		err  error
	}
	nodes := make(map[string]*node, len(mods))
	index := make(map[string]int, len(mods))
	order := make([]*node, len(mods))
	for i, m := range mods {
		n := &node{mod: m, done: make(chan struct{})}
		nodes[m.Name] = n
		index[m.Name] = i
		order[i] = n
	}
	for i, n := range order {
		go func(i int, n *node) {
			defer close(n.done)
			for _, dep := range n.mod.Needed {
				// Wait only for dependencies that precede this
				// module in the closure: LddClosure emits
				// dependency-first order, and the index guard keeps
				// a (malformed) dependency cycle from deadlocking
				// the pool.
				dn, ok := nodes[dep]
				if !ok || index[dep] >= i {
					continue
				}
				<-dn.done
				if dn.err != nil {
					n.err = fmt.Errorf("anserve: %s: dependency %s failed",
						n.mod.Name, dep)
					return
				}
			}
			n.file, n.err = s.AnalyzeModule(n.mod, tool)
		}(i, n)
	}

	out := make(map[string]*rules.File, len(order))
	for _, n := range order {
		<-n.done
	}
	// Dependency-first order means the root cause sorts before the
	// "dependency failed" placeholders.
	for _, n := range order {
		if n.err != nil {
			return nil, n.err
		}
		out[n.mod.Name] = n.file
	}
	return out, nil
}
