package anserve

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestCacheMemLRU(t *testing.T) {
	c := NewCache(100, "")
	val := func(n int) []byte { return bytes.Repeat([]byte{byte(n)}, 40) }
	c.Put("a", val(1))
	c.Put("b", val(2))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before budget exceeded")
	}
	// "a" is now MRU; inserting "c" must evict "b".
	c.Put("c", val(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.MemBytes > 100 {
		t.Fatalf("mem bytes %d over budget", st.MemBytes)
	}
	if st.MemEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.MemEntries)
	}
}

func TestCacheOversizedEntrySkipsMemory(t *testing.T) {
	c := NewCache(10, "")
	c.Put("big", make([]byte, 100))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry cached in memory tier")
	}
	if st := c.Stats(); st.MemEntries != 0 || st.MemBytes != 0 {
		t.Fatalf("stats after oversized put: %+v", st)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(1<<20, dir)
	c1.Put("k", []byte("artifact"))

	// A fresh cache over the same directory serves from disk and
	// promotes into memory.
	c2 := NewCache(1<<20, dir)
	got, ok := c2.Get("k")
	if !ok || string(got) != "artifact" {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemMisses != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit after 1 mem miss", st)
	}
	// Promoted: the second get hits memory.
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit after promotion", st)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.jrw")); len(files) != 1 {
		t.Fatalf("disk artifacts = %v, want exactly one .jrw", files)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1<<10, t.TempDir())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%d", i%7)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("got %q under key %q", v, k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
