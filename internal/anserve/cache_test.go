package anserve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCacheMemLRU(t *testing.T) {
	c := NewCache(100, "")
	val := func(n int) []byte { return bytes.Repeat([]byte{byte(n)}, 40) }
	c.Put("a", val(1))
	c.Put("b", val(2))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before budget exceeded")
	}
	// "a" is now MRU; inserting "c" must evict "b".
	c.Put("c", val(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.MemBytes > 100 {
		t.Fatalf("mem bytes %d over budget", st.MemBytes)
	}
	if st.MemEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.MemEntries)
	}
}

func TestCacheOversizedEntrySkipsMemory(t *testing.T) {
	c := NewCache(10, "")
	c.Put("big", make([]byte, 100))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry cached in memory tier")
	}
	if st := c.Stats(); st.MemEntries != 0 || st.MemBytes != 0 {
		t.Fatalf("stats after oversized put: %+v", st)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(1<<20, dir)
	c1.Put("k", []byte("artifact"))

	// A fresh cache over the same directory serves from disk and
	// promotes into memory.
	c2 := NewCache(1<<20, dir)
	got, ok := c2.Get("k")
	if !ok || string(got) != "artifact" {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemMisses != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit after 1 mem miss", st)
	}
	// Promoted: the second get hits memory.
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit after promotion", st)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.jrw")); len(files) != 1 {
		t.Fatalf("disk artifacts = %v, want exactly one .jrw", files)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1<<10, t.TempDir())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%d", i%7)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("got %q under key %q", v, k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestCacheCorruptDiskEntry is the corrupt-entry tolerance test: a
// truncated or garbled disk artifact must read as a miss (and be removed),
// never as data and never as a crash.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(1<<20, dir)
	c1.Put("k", []byte("artifact"))
	path := c1.diskPath("k")

	for name, garble := range map[string]func() error{
		"truncated": func() error {
			return os.Truncate(path, diskHeaderLen+3)
		},
		"garbled": func() error {
			return os.WriteFile(path, []byte("not a framed artifact at all"), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			c1.Put("k", []byte("artifact")) // restore a good entry
			if err := garble(); err != nil {
				t.Fatal(err)
			}
			// Fresh cache: no memory copy, must go to disk.
			c2 := NewCache(1<<20, dir)
			if v, ok := c2.Get("k"); ok {
				t.Fatalf("corrupt entry served as %q", v)
			}
			if st := c2.Stats(); st.DiskCorrupt != 1 {
				t.Fatalf("disk corrupt = %d, want 1 (%+v)", st.DiskCorrupt, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not deleted: %v", err)
			}
		})
	}
}

// TestCacheDiskGC checks the disk-tier size cap: pushing past the budget
// evicts the least-recently-used entries (oldest mtime first), keeping the
// most recent ones.
func TestCacheDiskGC(t *testing.T) {
	dir := t.TempDir()
	val := make([]byte, 1024)
	// Budget fits ~3 framed 1KiB entries (frame adds 36 bytes each).
	c := NewCacheDisk(-1, dir, 3400)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Put(key, val)
		// Backdate each entry so mtime order equals insertion order even
		// on coarse filesystem clocks.
		if err := os.Chtimes(c.diskPath(key), base.Add(time.Duration(i)*time.Minute),
			base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	c.gcDisk() // final sweep with all mtimes settled
	var kept []string
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := os.Stat(c.diskPath(key)); err == nil {
			kept = append(kept, key)
		}
	}
	if len(kept) > 3 {
		t.Fatalf("disk over budget: kept %v", kept)
	}
	for _, k := range kept {
		if k == "k0" || k == "k1" {
			t.Fatalf("LRU entry %s survived GC over newer entries (kept %v)", k, kept)
		}
	}
	if st := c.Stats(); st.DiskEvictions == 0 {
		t.Fatalf("stats show no disk evictions: %+v", st)
	}
}
