package anserve

import (
	"testing"
	"time"
)

// TestTenantLimiterBucket drives the token bucket with a fake clock:
// burst spends down, refill is proportional to elapsed time and capped at
// burst, and the retry hint covers the deficit.
func TestTenantLimiterBucket(t *testing.T) {
	l := NewTenantLimiter(2, 4) // 2 tokens/sec, burst 4
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	if ok, _ := l.Allow("a", 4); !ok {
		t.Fatal("burst not granted")
	}
	ok, wait := l.Allow("a", 1)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if want := 500 * time.Millisecond; wait != want {
		t.Fatalf("retry hint = %v, want %v", wait, want)
	}

	// One second refills 2 tokens.
	now = now.Add(time.Second)
	if ok, _ := l.Allow("a", 2); !ok {
		t.Fatal("refilled tokens not granted")
	}
	if ok, _ := l.Allow("a", 1); ok {
		t.Fatal("over-granted past the refill")
	}

	// Refill caps at burst, not beyond.
	now = now.Add(time.Hour)
	if ok, _ := l.Allow("a", 4); !ok {
		t.Fatal("burst not restored after idle")
	}
	if ok, _ := l.Allow("a", 1); ok {
		t.Fatal("bucket exceeded burst capacity")
	}

	// Tenants are independent.
	if ok, _ := l.Allow("b", 4); !ok {
		t.Fatal("tenant b throttled by tenant a")
	}

	// A nil limiter admits everything.
	var nilL *TenantLimiter
	if ok, _ := nilL.Allow("x", 1000); !ok {
		t.Fatal("nil limiter rejected")
	}
}
