// Package spec provides the evaluation workload suite: 28 synthetic
// programs named after the SPEC CPU2006 benchmarks the paper evaluates on.
// Each workload is compiled from MiniC (plus hand-written assembly modules
// where a benchmark's published trait demands it) and models the
// characteristic that drives that benchmark's bar in the paper's figures:
//
//   - memory-access density (ASan overhead, Figs. 7–8),
//   - indirect-call/return frequency (CFI overhead, Figs. 9/11),
//   - callbacks passed through memory into library code — gcc, h264ref,
//     cactusADM (the Lockdown false positives of §6.2.2),
//   - dlopen-loaded solver code — cactusADM (92.4% dynamically discovered
//     blocks, Fig. 14),
//   - computed-goto blocks invisible to static recovery — lbm (two blocks,
//     18.7% of a tiny kernel, Fig. 14),
//   - data embedded in code sections — gamess, zeusmp (BinCFI's rewriting
//     failures, §6.2.1),
//   - source language (Retrowrite handles only C, and the paper's Fig. 7
//     marks the rest with x).
package spec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/cc"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/obj"
)

// Workload is one benchmark program.
type Workload struct {
	Name string
	// Lang is the source language of the real benchmark: "c", "c++" or
	// "fortran". Retrowrite applies only to C (Fig. 7's x marks).
	Lang string
	// Src is the MiniC source of the main program. The token SCALE_N is
	// replaced with the iteration scale at build time.
	Src string
	// ExtraC maps additional shared-object module names to MiniC sources.
	ExtraC map[string]string
	// ExtraAsm maps additional module names to assembly sources.
	ExtraAsm map[string]string
	// DlopenOnly lists modules present in the registry but absent from
	// the static dependency closure (loaded via dlopen at run time).
	DlopenOnly []string
	// LockdownBroken marks benchmarks the Lockdown prototype could not
	// run (omnetpp, dealII — §6.2.1 reports the same failures).
	LockdownBroken bool
	// Scale multiplies the workload's base iteration count.
	Scale int
}

// Retrowritable reports whether the Retrowrite baseline applies (C only).
func (w *Workload) Retrowritable() bool { return w.Lang == "c" }

// Build compiles the workload: the main module (PIC if requested — used for
// the Retrowrite configuration), every extra module, and a registry
// containing libj and all of them. Static dependencies are wired through
// .needs/imports; DlopenOnly modules are only in the registry.
func (w *Workload) Build(picMain bool) (*obj.Module, loader.Registry, error) {
	scale := w.Scale
	if scale <= 0 {
		scale = 1
	}
	lj, err := libj.Module()
	if err != nil {
		return nil, nil, err
	}
	reg := loader.Registry{libj.Name: lj}

	expand := func(src string) string {
		return strings.ReplaceAll(src, "SCALE_N", fmt.Sprintf("%d", scale))
	}
	// Iterate the module maps in sorted-name order so the built main
	// module is byte-identical across runs (Needed order is part of the
	// module serialization, and content-addressed rule caching keys on
	// the module hash).
	cNames := sortedKeys(w.ExtraC)
	asmNames := sortedKeys(w.ExtraAsm)
	for _, name := range cNames {
		mod, err := cc.Compile(expand(w.ExtraC[name]), cc.Options{
			Module: name, Shared: true, O2: true, NoRuntime: true,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("spec %s: module %s: %w", w.Name, name, err)
		}
		reg[name] = mod
	}
	for _, name := range asmNames {
		mod, err := asm.Assemble(expand(w.ExtraAsm[name]))
		if err != nil {
			return nil, nil, fmt.Errorf("spec %s: module %s: %w", w.Name, name, err)
		}
		reg[name] = mod
	}

	main, err := cc.Compile(expand(w.Src), cc.Options{
		Module: w.Name, O2: true, PIC: picMain,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("spec %s: %w", w.Name, err)
	}
	// Wire static dependencies: every extra module not in DlopenOnly.
	dlopenOnly := map[string]bool{}
	for _, n := range w.DlopenOnly {
		dlopenOnly[n] = true
	}
	for _, name := range cNames {
		if !dlopenOnly[name] {
			main.Needed = append(main.Needed, name)
		}
	}
	for _, name := range asmNames {
		if !dlopenOnly[name] {
			main.Needed = append(main.Needed, name)
		}
	}
	return main, reg, nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names returns the benchmark names in the paper's figure order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}
