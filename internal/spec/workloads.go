package spec

import "fmt"

// The workload table. Sources use SCALE_N as the iteration multiplier.

// libfortAsm is the hand-written "Fortran runtime" module with a constant
// pool embedded in the code section: linear disassembly desynchronises on
// it, which is what breaks BinCFI's static rewriting for gamess and zeusmp.
const libfortAsm = `
.module libfort.jef
.type shared
.pic
.global fsum
.global fscale
.section .text
; fsum(arr r1, n r2) -> sum of n quads
fsum:
    mov r0, 0
    mov r6, 0
.fs_loop:
    cmp r6, r2
    jge .fs_done
    ldxq r7, [r1+r6*8]
    add r0, r7
    add r6, 1
    jmp .fs_loop
.fs_done:
    ret
.fs_pool:
    ; Fortran-style constant pool embedded between functions: decodes as a
    ; truncated mov-imm64 and swallows the head of fscale in linear sweeps.
    .byte 1, 0, 0, 0, 0, 0, 0, 0
fscale:
; fscale(arr r1, n r2, k r3): arr[i] *= k
    mov r6, 0
.fc_loop:
    cmp r6, r2
    jge .fc_done
    ldxq r7, [r1+r6*8]
    mul r7, r3
    stxq [r1+r6*8], r7
    add r6, 1
    jmp .fc_loop
.fc_done:
    ret
`

// liblbmAsm holds lbm's streaming kernel with a computed goto: the two
// dispatch targets are reached through address arithmetic no static
// recovery can resolve — the two dynamically-discovered blocks of Fig. 14.
const liblbmAsm = `
.module liblbm.jef
.type shared
.pic
.global lbm_kernel
.section .text
; lbm_kernel(n r1) -> checksum
lbm_kernel:
    push fp
    mov fp, sp
    mov r0, 0
    mov r6, 0
.lk_loop:
    cmp r6, r1
    jge .lk_done
    la r7, .lk_even
    mov r8, r6
    and r8, 1
    mul r8, 59          ; each hidden block is 59 bytes
    add r7, r8
    jmpi r7             ; computed goto: targets invisible statically
.lk_even:
    add r0, 2           ; 6 bytes
    add r6, 1           ; 6
    shl r0, 1           ; 6
    xor r0, 11          ; 6
    shr r0, 1           ; 6
    add r0, 1           ; 6
    and r0, 65535       ; 6
    or r0, 2            ; 6
    add r0, 1           ; 6
    jmp .lk_loop        ; 5   = 59 bytes
.lk_odd:
    add r0, 5           ; 6
    add r6, 1           ; 6
    shl r0, 1           ; 6
    xor r0, 7           ; 6
    shr r0, 1           ; 6
    add r0, 3           ; 6
    and r0, 65535       ; 6
    or r0, 1            ; 6
    add r0, 2           ; 6
    jmp .lk_loop        ; 5   = 59 bytes
.lk_done:
    mov sp, fp
    pop fp
    ret
`

// cactusSolverC is the dlopened solver module that holds nearly all of
// cactusADM's code — none of it visible to the static analyzer (Fig. 14's
// 92.4% dynamically discovered blocks). The stage functions are generated
// to give the solver a realistically large block count relative to the tiny
// statically-visible main program.
var cactusSolverC = genCactusSolver()

func genCactusSolver() string {
	src := "int grid[512];\n"
	// 40 generated stage functions with distinct control flow.
	for i := 0; i < 40; i++ {
		src += fmt.Sprintf(`
static int stage%d(int x) {
    int acc = x;
    for (int i = %d; i < 500; i += %d) {
        if ((grid[i] & %d) != 0) acc += grid[i] / %d;
        else acc -= grid[i] %% %d;
        grid[i] = (grid[i] + acc) & 1023;
    }
    return acc;
}`, i, 1+i%7, 3+i%5, 1+(i%4), 2+i%3, 3+i%6)
	}
	src += "\nstatic int pipeline(int x) {\n    int acc = x;\n"
	for i := 0; i < 40; i++ {
		src += fmt.Sprintf("    acc += stage%d(acc) & 255;\n", i)
	}
	src += "    return acc;\n}\n"
	src += `
static int setup(int seed) {
    for (int i = 0; i < 512; i++) grid[i] = (i * seed + 17) % 251;
    return seed;
}
int solve(int iters) {
    setup(3);
    int acc = 0;
    for (int k = 0; k < iters; k++) acc += pipeline(k) & 255;
    return acc & 1023;
}
`
	return src
}

// all is the workload table, in the paper's figure order.
var all = []*Workload{
	{
		Name: "perlbench", Lang: "c",
		// Interpreter-shaped: opcode dispatch through a function-pointer
		// table plus hash-style string mixing — indirect-call heavy.
		Src: `
int opAdd(int x) { return x + 3; }
int opMul(int x) { return x * 2 + 1; }
int opMask(int x) { return x & 1023; }
int opShift(int x) { return (x << 1) ^ (x >> 3); }
int (*dispatch[4])(int) = {opAdd, opMul, opMask, opShift};
char script[64] = "sub f { return $_[0] * 2; } print f(21);";
int main() {
    int acc = 7;
    int n = SCALE_N * 1500;
    for (int i = 0; i < n; i++) {
        int op = (acc ^ i) & 3;
        acc = dispatch[op](acc);
        acc += script[i & 31];
    }
    return acc & 127;
}`,
	},
	{
		Name: "bzip2", Lang: "c",
		// Byte-granular compression loop: dense 1-byte loads and stores.
		Src: `
char in[4096];
char out[4608];
int main() {
    for (int i = 0; i < 4096; i++) in[i] = (i * 7 + (i >> 3)) & 255;
    int w = 0;
    int n = SCALE_N * 3;
    for (int r = 0; r < n; r++) {
        w = 0;
        int i = 0;
        while (i < 4095) {
            char c = in[i];
            int run = 1;
            while (i + run < 4095 && in[i + run] == c && run < 255) run++;
            if (run > 3) { out[w] = 0; out[w+1] = run; out[w+2] = c; w += 3; }
            else { out[w] = c; w += 1; }
            i += run;
        }
    }
    return w & 127;
}`,
	},
	{
		Name: "gcc", Lang: "c",
		// Compiler-shaped: dense switch (jump table at -O2), many small
		// functions, and pass callbacks registered in a TABLE handed to
		// library code — one of Lockdown's false-positive cases (§6.2.2).
		Src: `
int passCSE(int x) { return x ^ (x >> 2); }
int passDCE(int x) { return x & 0x7fff; }
int passFold(int x) { return x * 3 + 1; }
int (*passes[3])(int) = {passCSE, passDCE, passFold};
int lower(int op, int v) {
    switch (op) {
    case 0: return v + 1;
    case 1: return v - 1;
    case 2: return v * 2;
    case 3: return v / 2;
    case 4: return v & 255;
    case 5: return v | 4096;
    case 6: return v ^ 77;
    case 7: return v << 2;
    default: return v;
    }
}
int main() {
    int ir = 11;
    int n = SCALE_N * 900;
    for (int i = 0; i < n; i++) ir = lower(i & 7, ir) & 0xffff;
    ir += apply_table(passes, 3, ir);
    return ir & 127;
}`,
	},
	{
		Name: "mcf", Lang: "c",
		// Pointer chasing over a malloc'd linked structure.
		Src: `
int main() {
    int n = 600;
    int *nodes[600];
    for (int i = 0; i < n; i++) {
        int *node = malloc(16);
        node[0] = i * 3 + 1;
        nodes[i] = node;
    }
    for (int i = 0; i < n; i++) nodes[i][1] = nodes[(i * 7 + 3) % n];
    int acc = 0;
    int hops = SCALE_N * 9000;
    int *cur = nodes[0];
    for (int i = 0; i < hops; i++) {
        acc += cur[0];
        cur = cur[1];
    }
    for (int i = 0; i < n; i++) free(nodes[i]);
    return acc & 127;
}`,
	},
	{
		Name: "gobmk", Lang: "c",
		// Recursive board evaluation over char arrays (canary frames).
		Src: `
char board[81];
int evalpos(int pos, int depth) {
    char line[16];
    for (int i = 0; i < 9; i++) line[i] = board[(pos + i * 9) % 81];
    int s = 0;
    for (int i = 0; i < 9; i++) s += line[i];
    if (depth == 0) return s;
    int best = -99999;
    for (int m = 0; m < 3; m++) {
        int v = evalpos((pos + m * 13 + 5) % 81, depth - 1) - s;
        if (v > best) best = v;
    }
    return best;
}
int main() {
    for (int i = 0; i < 81; i++) board[i] = (i * 5 + 2) % 3;
    int acc = 0;
    int n = SCALE_N * 55;
    for (int g = 0; g < n; g++) acc += evalpos(g % 81, 3);
    return acc & 127;
}`,
	},
	{
		Name: "hmmer", Lang: "c",
		// Dynamic-programming inner loop: dense 8-byte array traffic.
		Src: `
int vit[256];
int trans[256];
int main() {
    for (int i = 0; i < 256; i++) { vit[i] = i & 31; trans[i] = (i * 3) & 15; }
    int n = SCALE_N * 170;
    for (int row = 0; row < n; row++) {
        for (int i = 1; i < 255; i++) {
            int a = vit[i-1] + trans[i];
            int b = vit[i] + trans[(i+row) & 255];
            if (a > b) vit[i] = a & 0xffff; else vit[i] = b & 0xffff;
        }
    }
    return vit[128] & 127;
}`,
	},
	{
		Name: "sjeng", Lang: "c",
		// Game-tree search: recursion + switch dispatch on move kind.
		Src: `
int apply(int kind, int v) {
    switch (kind) {
    case 0: return v + 9;
    case 1: return v - 4;
    case 2: return v ^ 33;
    case 3: return v * 2;
    case 4: return v / 3;
    case 5: return v | 5;
    default: return v;
    }
}
int search(int pos, int depth) {
    if (depth == 0) return pos & 63;
    int best = -100000;
    for (int m = 0; m < 4; m++) {
        int v = apply((pos + m) % 6, pos) - search((pos * 5 + m) & 1023, depth - 1);
        if (v > best) best = v;
    }
    return best;
}
int main() {
    int acc = 0;
    int n = SCALE_N * 16;
    for (int i = 0; i < n; i++) acc += search(i * 37 & 1023, 4);
    return acc & 127;
}`,
	},
	{
		Name: "libquantum", Lang: "c",
		// Quantum register simulation: bit-twiddling sweeps over a vector.
		Src: `
int reg[2048];
int main() {
    for (int i = 0; i < 2048; i++) reg[i] = i;
    int n = SCALE_N * 60;
    for (int g = 0; g < n; g++) {
        int mask = 1 << (g % 10);
        for (int i = 0; i < 2048; i++) reg[i] = reg[i] ^ (reg[i] & mask) * 2;
    }
    int acc = 0;
    for (int i = 0; i < 2048; i++) acc += reg[i] & 7;
    return acc & 127;
}`,
	},
	{
		Name: "h264ref", Lang: "c",
		// Video encoding shape: block memcpy traffic plus filter callbacks
		// handed to library code through a table (Lockdown FP, §6.2.2).
		Src: `
char frame[4096];
char ref[4096];
int filterLuma(int x) { return (x * 5 + 4) / 8; }
int filterChroma(int x) { return (x + 1) / 2; }
int (*filters[2])(int) = {filterLuma, filterChroma};
int main() {
    for (int i = 0; i < 4096; i++) ref[i] = (i * 3) & 255;
    int n = SCALE_N * 60;
    int sad = 0;
    for (int mb = 0; mb < n; mb++) {
        int off = (mb * 272) % 3800;
        memcpy(frame, ref + off, 256);
        for (int i = 0; i < 256; i += 16) sad += frame[i];
    }
    sad += apply_table(filters, 2, sad & 255);
    return sad & 127;
}`,
	},
	{
		Name: "omnetpp", Lang: "c++", LockdownBroken: true,
		// Discrete-event simulation: handler dispatch via function
		// pointers on a ring queue.
		Src: `
int qtime[128];
int qkind[128];
int state = 1;
int hTimer(int t) { state = state + t; return 1; }
int hMsg(int t) { state = state ^ (t * 3); return 2; }
int hGate(int t) { state = state - (t & 7); return 1; }
int (*handlers[3])(int) = {hTimer, hMsg, hGate};
int main() {
    int head = 0;
    int tail = 0;
    for (int i = 0; i < 64; i++) { qtime[tail] = i; qkind[tail] = i % 3; tail = (tail+1)&127; }
    int n = SCALE_N * 9000;
    for (int ev = 0; ev < n; ev++) {
        int k = qkind[head];
        int t = qtime[head];
        head = (head + 1) & 127;
        int dt = handlers[k](t);
        qtime[tail] = t + dt;
        qkind[tail] = (k + state) % 3;
        tail = (tail + 1) & 127;
    }
    return state & 127;
}`,
	},
	{
		Name: "astar", Lang: "c++",
		// Grid pathfinding: open-list scan plus neighbour relaxation.
		Src: `
int dist[256];
int visited[256];
int main() {
    int n = SCALE_N * 6;
    int acc = 0;
    for (int rep = 0; rep < n; rep++) {
        for (int i = 0; i < 256; i++) { dist[i] = 99999; visited[i] = 0; }
        dist[0] = 0;
        for (int round = 0; round < 96; round++) {
            int best = -1;
            int bestd = 100000;
            for (int i = 0; i < 256; i++)
                if (!visited[i] && dist[i] < bestd) { bestd = dist[i]; best = i; }
            if (best < 0) break;
            visited[best] = 1;
            int r = best / 16; int c = best % 16;
            if (c+1 < 16 && dist[best]+1 < dist[best+1]) dist[best+1] = dist[best]+1;
            if (r+1 < 16 && dist[best]+1 < dist[best+16]) dist[best+16] = dist[best]+1;
        }
        acc += dist[255] & 7;
    }
    return acc & 127;
}`,
	},
	{
		Name: "xalancbmk", Lang: "c++",
		// XSLT-shaped: tree walk with per-node-type virtual dispatch.
		Src: `
int kind[512];
int child[512];
int sib[512];
int vText(int n) { return n & 15; }
int vElem(int n) { return (n * 3) & 31; }
int vAttr(int n) { return n ^ 5; }
int (*vtable[3])(int) = {vText, vElem, vAttr};
int walk(int n, int depth) {
    if (n < 0 || depth > 24) return 0;
    int s = vtable[kind[n]](n);
    return s + walk(child[n], depth+1) + walk(sib[n], depth+1);
}
int main() {
    for (int i = 0; i < 512; i++) {
        kind[i] = i % 3;
        if (2*i+1 < 512) child[i] = 2*i+1; else child[i] = -1;
        if (i+1 < 512 && i % 2 == 0) sib[i] = -1; else sib[i] = -1;
    }
    int acc = 0;
    int n = SCALE_N * 110;
    for (int r = 0; r < n; r++) acc += walk(0, 0) & 255;
    return acc & 127;
}`,
	},
	{
		Name: "bwaves", Lang: "fortran",
		// Blast-wave stencil: triple-nested FP-style array loops.
		Src: `
int u[1350];
int main() {
    for (int i = 0; i < 1350; i++) u[i] = i & 63;
    int n = SCALE_N * 26;
    for (int t = 0; t < n; t++) {
        for (int i = 15; i < 1335; i++) {
            u[i] = (u[i-15] + u[i] * 2 + u[i+15]) / 4 + (u[i-1] + u[i+1]) / 2;
        }
    }
    int acc = 0;
    for (int i = 0; i < 1350; i++) acc += u[i] & 3;
    return acc & 127;
}`,
	},
	{
		Name: "gamess", Lang: "fortran",
		// Quantum-chemistry kernels linked against the Fortran runtime
		// module whose embedded constant pool breaks BinCFI (§6.2.1).
		ExtraAsm: map[string]string{"libfort.jef": libfortAsm},
		Src: `
int fsum(int *a, int n);
int fscale(int *a, int n, int k);
int ints[700];
int main() {
    for (int i = 0; i < 700; i++) ints[i] = (i * 11 + 3) & 127;
    int acc = 0;
    int n = SCALE_N * 60;
    for (int it = 0; it < n; it++) {
        fscale(ints, 700, 3);
        for (int i = 0; i < 700; i++) ints[i] = ints[i] % 977;
        acc += fsum(ints, 700) & 1023;
    }
    return acc & 127;
}`,
	},
	{
		Name: "milc", Lang: "c",
		// Lattice QCD shape: complex-ish arithmetic over site arrays.
		Src: `
int re[1024];
int im[1024];
int main() {
    for (int i = 0; i < 1024; i++) { re[i] = i & 31; im[i] = (i * 3) & 31; }
    int n = SCALE_N * 55;
    for (int t = 0; t < n; t++) {
        for (int i = 0; i < 1023; i++) {
            int a = re[i]; int b = im[i];
            int c = re[i+1]; int d = im[i+1];
            re[i] = (a*c - b*d) % 251;
            im[i] = (a*d + b*c) % 251;
        }
    }
    return (re[100] + im[200]) & 127;
}`,
	},
	{
		Name: "zeusmp", Lang: "fortran",
		// Magnetohydrodynamics stencil over the Fortran runtime module
		// (BinCFI rewriting failure, like gamess).
		ExtraAsm: map[string]string{"libfort.jef": libfortAsm},
		Src: `
int fsum(int *a, int n);
int v[900];
int main() {
    for (int i = 0; i < 900; i++) v[i] = (i * 7) & 255;
    int n = SCALE_N * 45;
    for (int t = 0; t < n; t++) {
        for (int i = 30; i < 870; i++)
            v[i] = (v[i-30] + 2*v[i] + v[i+30] + v[i-1] + v[i+1]) / 6;
    }
    return fsum(v, 900) & 127;
}`,
	},
	{
		Name: "gromacs", Lang: "c",
		// Molecular dynamics: pairwise force accumulation.
		Src: `
int pos[512];
int force[512];
int main() {
    for (int i = 0; i < 512; i++) { pos[i] = (i * 13) & 255; force[i] = 0; }
    int n = SCALE_N * 9;
    for (int t = 0; t < n; t++) {
        for (int i = 0; i < 512; i++) {
            int f = 0;
            for (int j = i + 1; j < i + 24 && j < 512; j++) {
                int d = pos[i] - pos[j];
                if (d < 0) d = -d;
                f += 1000 / (d + 1);
            }
            force[i] = (force[i] + f) & 0xffff;
        }
        for (int i = 0; i < 512; i++) pos[i] = (pos[i] + force[i] / 64) & 255;
    }
    return force[256] & 127;
}`,
	},
	{
		Name: "cactusADM", Lang: "fortran",
		// Numerical relativity: nearly ALL work happens in a solver module
		// loaded via dlopen — invisible to ldd and the static analyzer, so
		// 90%+ of executed blocks are dynamically discovered (Fig. 14).
		ExtraC:     map[string]string{"cactus_solver.jef": cactusSolverC},
		DlopenOnly: []string{"cactus_solver.jef"},
		Src: `
int main() {
    int h = dlopen("cactus_solver.jef", 17);
    if (h == 0) return 99;
    int (*solve)(int) = dlsym(h, "solve", 5);
    if (solve == 0) return 98;
    return solve(SCALE_N * 4) & 127;
}`,
	},
	{
		Name: "leslie3d", Lang: "fortran",
		// Eddy simulation: layered stencil sweeps.
		Src: `
int q[1200];
int main() {
    for (int i = 0; i < 1200; i++) q[i] = (i * 5 + 1) & 127;
    int n = SCALE_N * 30;
    for (int t = 0; t < n; t++) {
        for (int i = 40; i < 1160; i++)
            q[i] = (q[i-40] + q[i] + q[i+40] + q[i-1]*2 + q[i+1]*2) / 7;
    }
    int acc = 0;
    for (int i = 0; i < 1200; i++) acc += q[i] & 1;
    return acc & 127;
}`,
	},
	{
		Name: "namd", Lang: "c++",
		// Molecular dynamics with cutoff: nested pair loops, heavy loads.
		Src: `
int x[400];
int y[400];
int main() {
    for (int i = 0; i < 400; i++) { x[i] = (i*17)&511; y[i] = (i*29)&511; }
    int acc = 0;
    int n = SCALE_N * 10;
    for (int t = 0; t < n; t++) {
        for (int i = 0; i < 400; i++) {
            for (int j = i+1; j < i+20 && j < 400; j++) {
                int dx = x[i]-x[j]; int dy = y[i]-y[j];
                int r2 = dx*dx + dy*dy;
                if (r2 < 10000) acc += 100000 / (r2 + 10);
            }
        }
    }
    return acc & 127;
}`,
	},
	{
		Name: "dealII", Lang: "c++", LockdownBroken: true,
		// Finite elements: local matrix assembly into a global sparse-ish
		// structure.
		Src: `
int K[2048];
int elem[16];
int main() {
    int n = SCALE_N * 220;
    for (int e = 0; e < n; e++) {
        for (int i = 0; i < 16; i++) elem[i] = ((e + i) * 7) & 63;
        for (int i = 0; i < 4; i++)
            for (int j = 0; j < 4; j++) {
                int gi = (e * 4 + i) & 2047;
                K[gi] = (K[gi] + elem[i*4+j]) & 0xffff;
            }
    }
    int acc = 0;
    for (int i = 0; i < 2048; i++) acc += K[i] & 3;
    return acc & 127;
}`,
	},
	{
		Name: "soplex", Lang: "c++",
		// Simplex pivoting: column scans and row updates.
		Src: `
int tab[1600];
int main() {
    for (int i = 0; i < 1600; i++) tab[i] = ((i * 37) % 113) - 56;
    int n = SCALE_N * 55;
    for (int p = 0; p < n; p++) {
        int col = -1; int best = 0;
        for (int j = 0; j < 40; j++)
            if (tab[39*40+j] < best) { best = tab[39*40+j]; col = j; }
        if (col < 0) col = p % 40;
        for (int i = 0; i < 39; i++) {
            int piv = tab[i*40+col];
            for (int j = 0; j < 40; j++)
                tab[i*40+j] = (tab[i*40+j] - piv) % 1009;
        }
    }
    return tab[820] & 127;
}`,
	},
	{
		Name: "povray", Lang: "c++",
		// Ray tracing: intersection loop with per-material shading
		// dispatch through function pointers.
		Src: `
int sx[32];
int sr[32];
int shadeMatte(int d) { return d / 2; }
int shadeShiny(int d) { return d * 3 / 4 + 8; }
int (*shaders[2])(int) = {shadeMatte, shadeShiny};
int main() {
    for (int i = 0; i < 32; i++) { sx[i] = (i * 29) & 255; sr[i] = 4 + (i & 7); }
    int img = 0;
    int n = SCALE_N * 2600;
    for (int ray = 0; ray < n; ray++) {
        int ox = (ray * 11) & 255;
        int hit = -1; int hd = 99999;
        for (int s = 0; s < 32; s++) {
            int d = ox - sx[s];
            if (d < 0) d = -d;
            if (d < sr[s] && d < hd) { hd = d; hit = s; }
        }
        if (hit >= 0) img += shaders[hit & 1](hd);
    }
    return img & 127;
}`,
	},
	{
		Name: "calculix", Lang: "fortran",
		// Structural FEM: banded matrix-vector products.
		Src: `
int A[1984];
int xv[64];
int yv[64];
int main() {
    for (int i = 0; i < 1984; i++) A[i] = ((i * 13) % 61) - 30;
    for (int i = 0; i < 64; i++) xv[i] = i & 15;
    int n = SCALE_N * 140;
    for (int t = 0; t < n; t++) {
        for (int i = 0; i < 62; i++) {
            int s = 0;
            for (int b = 0; b < 31; b++) s += A[i*31+b] * xv[(i+b) & 63];
            yv[i & 63] = s % 4093;
        }
        for (int i = 0; i < 64; i++) xv[i] = (xv[i] + yv[i]) & 31;
    }
    return yv[32] & 127;
}`,
	},
	{
		Name: "GemsFDTD", Lang: "fortran",
		// Finite-difference time domain: E/H field leapfrog updates.
		Src: `
int E[1100];
int H[1100];
int main() {
    for (int i = 0; i < 1100; i++) { E[i] = 0; H[i] = (i & 31) - 16; }
    int n = SCALE_N * 50;
    for (int t = 0; t < n; t++) {
        for (int i = 1; i < 1099; i++) E[i] = (E[i] + (H[i] - H[i-1]) / 2) % 32749;
        for (int i = 1; i < 1099; i++) H[i] = (H[i] + (E[i+1] - E[i]) / 2) % 32749;
    }
    return (E[550] + H[550]) & 127;
}`,
	},
	{
		Name: "tonto", Lang: "fortran",
		// Quantum crystallography: integral accumulation with symmetry.
		Src: `
int basis[256];
int main() {
    for (int i = 0; i < 256; i++) basis[i] = (i * 19 + 7) & 127;
    int acc = 0;
    int n = SCALE_N * 9;
    for (int t = 0; t < n; t++) {
        for (int i = 0; i < 256; i++)
            for (int j = i; j < i + 28 && j < 256; j++) {
                int v = basis[i] * basis[j];
                acc = (acc + v / (1 + ((i + j) & 7))) % 65521;
            }
    }
    return acc & 127;
}`,
	},
	{
		Name: "lbm", Lang: "c",
		// Lattice-Boltzmann: a tiny kernel whose inner dispatch lives in
		// the computed-goto assembly module (two statically invisible
		// blocks — Fig. 14's 18.7% from just two blocks).
		ExtraAsm: map[string]string{"liblbm.jef": liblbmAsm},
		Src: `
int lbm_kernel(int n);
int main() {
    return lbm_kernel(SCALE_N * 12000) & 127;
}`,
	},
	{
		Name: "sphinx3", Lang: "c",
		// Speech recognition: acoustic scoring over byte features.
		Src: `
char feat[2048];
int mean[256];
int main() {
    for (int i = 0; i < 2048; i++) feat[i] = (i * 23) & 255;
    for (int i = 0; i < 256; i++) mean[i] = (i * 5) & 255;
    int score = 0;
    int n = SCALE_N * 55;
    for (int f = 0; f < n; f++) {
        for (int i = 0; i < 2048; i++) {
            int d = feat[i] - mean[i & 255];
            score = (score + d * d) % 999983;
        }
    }
    return score & 127;
}`,
	},
}

// All returns the workload table (fresh copies of the slice header; the
// workloads themselves are shared and must not be mutated).
func All() []*Workload { return all }
