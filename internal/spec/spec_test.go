package spec

import (
	"testing"

	"repro/internal/loader"
	"repro/internal/vm"
)

// runNative executes a workload natively and returns exit status and
// instruction count.
func runNative(t *testing.T, w *Workload, pic bool) (int64, uint64) {
	t.Helper()
	main, reg, err := w.Build(pic)
	if err != nil {
		t.Fatalf("%s: build: %v", w.Name, err)
	}
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = 100_000_000
	proc := loader.NewProcess(m, reg)
	lm, err := proc.LoadProgram(main)
	if err != nil {
		t.Fatalf("%s: load: %v", w.Name, err)
	}
	if err := m.Run(lm.RuntimeAddr(main.Entry)); err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	return m.ExitStatus, m.Instrs
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	if len(All()) != 28 {
		t.Fatalf("workloads = %d, want 28 (the SPEC CPU2006 suite)", len(All()))
	}
	seen := map[string]bool{}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if seen[w.Name] {
				t.Fatal("duplicate name")
			}
			seen[w.Name] = true
			status, instrs := runNative(t, w, false)
			if instrs < 20_000 {
				t.Errorf("only %d instructions: workload too small to measure", instrs)
			}
			if instrs > 40_000_000 {
				t.Errorf("%d instructions: workload too large for the harness", instrs)
			}
			// Deterministic?
			status2, instrs2 := runNative(t, w, false)
			if status != status2 || instrs != instrs2 {
				t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)",
					status, instrs, status2, instrs2)
			}
			t.Logf("%s: exit=%d instrs=%d", w.Name, status, instrs)
		})
	}
}

func TestPICVariantsMatchNonPIC(t *testing.T) {
	// Retrowrite runs on PIC builds; their behaviour must match.
	for _, name := range []string{"perlbench", "mcf", "lbm", "gcc"} {
		w := ByName(name)
		s1, _ := runNative(t, w, false)
		s2, _ := runNative(t, w, true)
		if s1 != s2 {
			t.Errorf("%s: PIC exit %d != non-PIC exit %d", name, s2, s1)
		}
	}
}

func TestLanguageGates(t *testing.T) {
	counts := map[string]int{}
	for _, w := range All() {
		counts[w.Lang]++
		if w.Lang == "c" && !w.Retrowritable() {
			t.Errorf("%s: C benchmark must be retrowritable", w.Name)
		}
		if w.Lang != "c" && w.Retrowritable() {
			t.Errorf("%s: non-C benchmark must not be retrowritable", w.Name)
		}
	}
	if counts["c"] < 8 || counts["c++"] < 5 || counts["fortran"] < 5 {
		t.Errorf("language mix implausible: %v", counts)
	}
}

func TestTraits(t *testing.T) {
	if w := ByName("cactusADM"); len(w.DlopenOnly) == 0 {
		t.Error("cactusADM must dlopen its solver")
	}
	if w := ByName("lbm"); w.ExtraAsm["liblbm.jef"] == "" {
		t.Error("lbm must link the computed-goto kernel")
	}
	for _, n := range []string{"gamess", "zeusmp"} {
		if w := ByName(n); w.ExtraAsm["libfort.jef"] == "" {
			t.Errorf("%s must link libfort (data-in-code)", n)
		}
	}
	broken := 0
	for _, w := range All() {
		if w.LockdownBroken {
			broken++
		}
	}
	if broken != 2 {
		t.Errorf("LockdownBroken count = %d, want 2 (omnetpp, dealII)", broken)
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
	if len(Names()) != 28 {
		t.Error("Names() length wrong")
	}
}

func TestScaleParameter(t *testing.T) {
	w := *ByName("lbm")
	w.Scale = 1
	_, i1 := runNative(t, &w, false)
	w.Scale = 2
	_, i2 := runNative(t, &w, false)
	if i2 < i1*3/2 {
		t.Errorf("scale=2 instrs %d not ~2x scale=1 %d", i2, i1)
	}
}
