package rules

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	return &File{
		Module: "libx.jef",
		Rules: []Rule{
			{ID: MemAccess, BBAddr: 0x100, Instr: 0x104, Data: [4]uint64{1, 2, 0, 0}},
			{ID: MemAccess, BBAddr: 0x100, Instr: 0x10c, Data: [4]uint64{3, 0, 0, 0}},
			{ID: NoOp, BBAddr: 0x200},
			{ID: PoisonCanary, BBAddr: 0x300, Instr: 0x30a, Data: [4]uint64{14, 0xfffffff8, 0, 0}},
		},
	}
}

func TestFileRoundtrip(t *testing.T) {
	f := sampleFile()
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("XXXX....")); !errors.Is(err, ErrBadRuleFile) {
		t.Errorf("bad magic: %v", err)
	}
	data := sampleFile().Marshal()
	for n := 4; n < len(data); n += 5 {
		if _, err := Unmarshal(data[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestFileRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		file := &File{Module: "m"}
		for i, n := 0, r.Intn(20); i < n; i++ {
			file.Rules = append(file.Rules, Rule{
				ID:     ID(1 + r.Intn(10)),
				BBAddr: uint64(r.Uint32()),
				Instr:  uint64(r.Uint32()),
				Data: [4]uint64{r.Uint64(), r.Uint64(),
					r.Uint64(), r.Uint64()},
			})
		}
		got, err := Unmarshal(file.Marshal())
		return err == nil && reflect.DeepEqual(got, file)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableNonPIC(t *testing.T) {
	tab := NewTable(sampleFile(), 0)
	rs, ok := tab.BlockRules(0x100)
	if !ok || len(rs) != 2 {
		t.Fatalf("block 0x100: ok=%v rules=%d", ok, len(rs))
	}
	if _, ok := tab.BlockRules(0x200); !ok {
		t.Fatal("NoOp block must hit in the table")
	}
	if _, ok := tab.BlockRules(0x999); ok {
		t.Fatal("unknown block must miss")
	}
	if got := tab.InstrRules(0x104); len(got) != 1 || got[0].ID != MemAccess {
		t.Fatalf("InstrRules(0x104) = %v", got)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
}

// TestTablePICAdjustment checks Fig. 5a step 4: all addresses shift by the
// module load base, and lookups by run-time address hit.
func TestTablePICAdjustment(t *testing.T) {
	const base = 0x1000_0000
	tab := NewTable(sampleFile(), base)
	if _, ok := tab.BlockRules(0x100); ok {
		t.Fatal("link-time address should miss after adjustment")
	}
	rs, ok := tab.BlockRules(base + 0x100)
	if !ok || len(rs) != 2 {
		t.Fatalf("run-time address miss: ok=%v", ok)
	}
	for _, r := range rs {
		if r.Instr < base {
			t.Errorf("instr addr %#x not adjusted", r.Instr)
		}
	}
	blocks := tab.Blocks()
	if len(blocks) != 3 || blocks[0] != base+0x100 {
		t.Fatalf("Blocks() = %#x", blocks)
	}
}

// TestTablesDoNotOverlap models footnote 2: two modules with identical
// link-time layouts loaded at different bases produce disjoint run-time key
// sets.
func TestTablesDoNotOverlap(t *testing.T) {
	f := sampleFile()
	t1 := NewTable(f, 0x1000_0000)
	t2 := NewTable(f, 0x1010_0000)
	for _, b := range t1.Blocks() {
		if _, ok := t2.BlockRules(b); ok {
			t.Fatalf("address %#x present in both tables", b)
		}
	}
}

func TestPackLiveness(t *testing.T) {
	v := PackLiveness(0xbeef, true, []uint8{3, 9, 15})
	regs, flags, free := UnpackLiveness(v)
	if regs != 0xbeef || !flags {
		t.Fatalf("regs=%#x flags=%v", regs, flags)
	}
	if len(free) != 3 || free[0] != 3 || free[1] != 9 || free[2] != 15 {
		t.Fatalf("free = %v", free)
	}
	// No free regs.
	regs, flags, free = UnpackLiveness(PackLiveness(0, false, nil))
	if regs != 0 || flags || free != nil {
		t.Fatalf("empty pack: %v %v %v", regs, flags, free)
	}
	// Property: roundtrip for random inputs.
	prop := func(regs uint16, flags bool, f1, f2 uint8) bool {
		free := []uint8{f1 % 16, f2 % 16}
		gr, gf, gfree := UnpackLiveness(PackLiveness(regs, flags, free))
		return gr == regs && gf == flags && len(gfree) == 2 &&
			gfree[0] == free[0] && gfree[1] == free[1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleStrings(t *testing.T) {
	r := Rule{ID: PoisonCanary, BBAddr: 0x40275f, Instr: 0x402772}
	s := r.String()
	if !strings.Contains(s, "POISON_CANARY") || !strings.Contains(s, "0x402772") {
		t.Errorf("rule string = %q", s)
	}
	if ID(999).String() != "RULE(999)" {
		t.Error("unknown ID string wrong")
	}
}
