// Package rules implements Janitizer's rewrite rules (Fig. 3): the
// interface between the static analyzer and the dynamic modifier. Each rule
// names a handler routine (RuleID), the basic block and instruction it
// applies to (link-time addresses) and up to four data words. Rules are
// recorded in a separate file per binary module and loaded at run time with
// the module; a shared library analyzed once serves every binary that links
// it (§3.3.1).
package rules

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ID selects the dynamic modifier's handler routine for a rule.
type ID uint16

// Rule IDs. The numeric values are part of the rule-file encoding.
const (
	// NoOp marks a statically inspected block that needs no modification,
	// letting the dynamic modifier distinguish "statically proven fine"
	// from "never statically seen" (§3.3.4).
	NoOp ID = 1

	// MemAccess: instrument this memory access with a shadow check.
	// Data1 packs the liveness summary (see PackLiveness), Data2 the
	// access class (analysis.AccessClass) for SCEV-driven optimisation.
	MemAccess ID = 2
	// MemAccessSafe: the access is statically proven safe; the handler
	// skips it (coverage is still recorded). Data1 packs liveness as
	// MemAccess; Data2 records the elision provenance (Safe* constants
	// below); Data3 carries provenance detail (the dominating anchor's
	// instruction address for SafeDedup).
	MemAccessSafe ID = 3
	// PoisonCanary: poison the canary slot's shadow after this
	// instruction's predecessor stores the canary (Fig. 6). Data1 packs
	// the slot base register, Data2 the displacement.
	PoisonCanary ID = 4
	// UnpoisonCanary: unpoison the canary slot before the epilogue check
	// reloads it. Data as PoisonCanary.
	UnpoisonCanary ID = 5

	// CFICall: verify the target of this indirect call against the
	// forward-edge table. Data1 packs liveness.
	CFICall ID = 6
	// CFIJump: verify the target of this indirect jump. Data1 packs
	// liveness; Data2 holds the containing function entry (intra-function
	// policy), Data3 the function end.
	CFIJump ID = 7
	// CFIRet: verify this return against the shadow stack. Data1 packs
	// liveness.
	CFIRet ID = 8
	// ShadowPush: push the return address of this (direct or indirect)
	// call on the shadow stack. Data1 packs liveness.
	ShadowPush ID = 9
	// CFIResolverRet: the ld.so lazy-resolver `push r0; ret` special case
	// — attach a forward (indirect-call) check instead of a return check
	// (§4.2.3).
	CFIResolverRet ID = 10

	// HoistedCheck: SCEV-derived range check hoisted to a loop preheader
	// (§3.3.2): the in-loop accesses it covers are marked MemAccessSafe.
	// Data1 packs liveness at the hoist point, Data2 packs the base
	// register (low byte) and access width (next byte), Data3/Data4 hold
	// the first and last displacement of the covered range (as signed
	// 32-bit values).
	HoistedCheck ID = 11

	// CFITarget is not an instrumentation rule: it carries one valid
	// indirect-CTI target (Instr = the target's link-time address) from
	// the static analyzer to the dynamic modifier, which populates its
	// run-time target hash tables from these — with PIC adjustment by the
	// shared rule-loading path (§4.2.2). Data1 is a TargetKind bit set:
	// 1 = indirect-call target, 2 = indirect-jump target.
	CFITarget ID = 12

	// CFIJumpNarrow: verify this indirect jump against a small per-site
	// inline target set instead of the module-global hash table. Data1
	// packs liveness; Data2 is 0 for a singleton target or 1 for a
	// jump-table dispatch; Data3 holds the link-time target (singleton) or
	// the link-time table address (table); Data4 packs the table index
	// range as lo<<32 | count. Always derived from a replayable vsa jump
	// claim.
	CFIJumpNarrow ID = 13

	// MemDefStore: this store defines memory — clear the definedness
	// shadow's undefined bits for the written bytes (JMSan, §4 tool 3).
	// Data1 packs liveness as MemAccess; Data2 the access class.
	MemDefStore ID = 14
	// MemDefLoad: this load's value reaches a definedness sink (branch
	// condition, address computation or service-call argument) — check the
	// definedness shadow of the loaded bytes and report when any is
	// undefined. Data1 packs liveness; Data2 the access class.
	MemDefLoad ID = 15
	// FrameUndef: this instruction is a prologue `sub sp, N` — mark the
	// fresh frame bytes below the canary slot undefined at entry. Data1
	// packs liveness after the SP adjustment; Data2 holds the frame size N.
	FrameUndef ID = 16

	// MemGenCheck: instrument this memory access with a heap-generation
	// check — trap when any accessed byte belongs to a freed (quarantined)
	// chunk (JTSan use-after-free detection). Data1 packs liveness as
	// MemAccess; Data2 the access class.
	MemGenCheck ID = 17

	// QuarTick: this instruction is an allocator service trap (malloc or
	// free) — the anchor for JTSan's quarantine cost tick. Without it a
	// block whose only interesting instruction is the trap carries no rules
	// at all and the core marks it NO_OP, so the tick would never be
	// planted. Carries no data words.
	QuarTick ID = 18

	// CustomBase is the first rule ID reserved for out-of-tree tools:
	// handler interpretation is tool-private, so custom techniques can
	// define their own IDs at CustomBase and above without colliding with
	// the built-in handlers.
	CustomBase ID = 0x100
)

// MemAccessSafe provenance values (Data2): why the static pass proved the
// access safe. SafeFrame and above are VSA-backed elisions carrying a
// replayable vsa.Claim; SafeCanary/SafeHoisted are the pre-VSA exemptions.
const (
	// SafeCanary: the access is part of the recognised canary idiom
	// (store or epilogue reload) and is handled by the canary rules.
	SafeCanary uint64 = 1
	// SafeHoisted: covered by an SCEV range check hoisted to the loop
	// preheader (HoistedCheck rule).
	SafeHoisted uint64 = 2
	// SafeFrame: proven in-bounds of the function's own frame, away from
	// canary slots (vsa frame claim).
	SafeFrame uint64 = 3
	// SafeGlobal: proven in-bounds of one statically sized module section
	// (vsa global claim).
	SafeGlobal uint64 = 4
	// SafeDedup: re-checks an address already checked by a dominating
	// access in the same block (vsa dedup claim); Data3 holds the anchor's
	// instruction address.
	SafeDedup uint64 = 5
	// SafeDefInit: a JMSan load proven definitely-initialized — a store to
	// the same proven address dominates it on the straight-line path (vsa
	// def-init claim); Data3 holds the dominating store's instruction
	// address.
	SafeDefInit uint64 = 6
	// SafeNoSink: a JMSan load whose value the definedness taint lattice
	// shows reaching no sink in its block or live-out set — using an
	// undefined value here cannot influence control flow, addresses or
	// service calls. Not VSA-backed (no replayable claim), like SafeCanary.
	SafeNoSink uint64 = 7
	// SafeNoEscape: a JTSan access whose pointer's value set provably
	// cannot include a freed heap chunk between any free and the access
	// (vsa no-escape claim): the address is in-frame, in a statically sized
	// module section, or re-checks a generation-checked dominating access
	// in the same block; Data3 holds the anchor's instruction address for
	// the dedup form (0 otherwise).
	SafeNoEscape uint64 = 8
)

// CFITarget kind bits (Data1 of CFITarget rules).
const (
	TargetCall uint64 = 1 << iota
	TargetJump
)

var idNames = map[ID]string{
	NoOp:           "NO_OP",
	MemAccess:      "MEM_ACCESS",
	MemAccessSafe:  "MEM_ACCESS_SAFE",
	PoisonCanary:   "POISON_CANARY",
	UnpoisonCanary: "UNPOISON_CANARY",
	CFICall:        "CFI_CALL",
	CFIJump:        "CFI_JUMP",
	CFIRet:         "CFI_RET",
	ShadowPush:     "SHADOW_PUSH",
	CFIResolverRet: "CFI_RESOLVER_RET",
	HoistedCheck:   "HOISTED_CHECK",
	CFITarget:      "CFI_TARGET",
	CFIJumpNarrow:  "CFI_JUMP_NARROW",
	MemDefStore:    "MEM_DEF_STORE",
	MemDefLoad:     "MEM_DEF_LOAD",
	FrameUndef:     "FRAME_UNDEF",
	MemGenCheck:    "MEM_GEN_CHECK",
	QuarTick:       "QUAR_TICK",
}

func (id ID) String() string {
	if s, ok := idNames[id]; ok {
		return s
	}
	return fmt.Sprintf("RULE(%d)", uint16(id))
}

// Rule is one rewrite rule (Fig. 3): handler ID, basic-block address,
// instruction address and four optional data words. Addresses are link-time;
// the dynamic modifier adjusts them by the module load base for PIC code
// when populating its hash tables (Fig. 5a).
type Rule struct {
	ID     ID
	BBAddr uint64
	Instr  uint64
	Data   [4]uint64
}

func (r Rule) String() string {
	return fmt.Sprintf("%s bb=%#x instr=%#x data=[%#x %#x %#x %#x]",
		r.ID, r.BBAddr, r.Instr, r.Data[0], r.Data[1], r.Data[2], r.Data[3])
}

// File is the per-module rule file: the module it was generated for plus
// its rules.
type File struct {
	Module string
	Rules  []Rule
}

// fileMagic identifies serialised rule files.
var fileMagic = [4]byte{'J', 'R', 'W', '1'}

// ErrBadRuleFile reports a malformed rule file.
var ErrBadRuleFile = errors.New("rules: bad rule file")

// Marshal serialises the rule file.
func (f *File) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(len(f.Module)))
	buf.WriteString(f.Module)
	binary.Write(&buf, binary.LittleEndian, uint32(len(f.Rules)))
	for _, r := range f.Rules {
		binary.Write(&buf, binary.LittleEndian, uint16(r.ID))
		binary.Write(&buf, binary.LittleEndian, r.BBAddr)
		binary.Write(&buf, binary.LittleEndian, r.Instr)
		for _, d := range r.Data {
			binary.Write(&buf, binary.LittleEndian, d)
		}
	}
	return buf.Bytes()
}

// WriteTo writes the serialised file to w.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	b := f.Marshal()
	n, err := w.Write(b)
	return int64(n), err
}

// Unmarshal parses a serialised rule file.
func Unmarshal(data []byte) (*File, error) {
	if len(data) < 8 || !bytes.Equal(data[:4], fileMagic[:]) {
		return nil, ErrBadRuleFile
	}
	off := 4
	rd32 := func() (uint32, error) {
		if off+4 > len(data) {
			return 0, fmt.Errorf("%w: truncated at %d", ErrBadRuleFile, off)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	rd64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("%w: truncated at %d", ErrBadRuleFile, off)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	nameLen, err := rd32()
	if err != nil {
		return nil, err
	}
	if off+int(nameLen) > len(data) {
		return nil, fmt.Errorf("%w: bad name length", ErrBadRuleFile)
	}
	f := &File{Module: string(data[off : off+int(nameLen)])}
	off += int(nameLen)
	count, err := rd32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated rule %d", ErrBadRuleFile, i)
		}
		var r Rule
		r.ID = ID(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if r.BBAddr, err = rd64(); err != nil {
			return nil, err
		}
		if r.Instr, err = rd64(); err != nil {
			return nil, err
		}
		for j := range r.Data {
			if r.Data[j], err = rd64(); err != nil {
				return nil, err
			}
		}
		f.Rules = append(f.Rules, r)
	}
	return f, nil
}

// Table is one module's rewrite-rule hash table in the dynamic modifier
// (Fig. 5): rules keyed by *run-time* basic-block address. Per-module tables
// let modules load and unload without scanning for stale hints (§3.4.2).
type Table struct {
	// ModuleName identifies the module the table belongs to.
	ModuleName string
	// Base is the load-base adjustment that was applied (0 for non-PIC).
	Base    uint64
	byBlock map[uint64][]Rule
	byInstr map[uint64][]Rule
}

// NewTable builds a run-time table from a rule file, adjusting link-time
// addresses by base (pass 0 for non-PIC modules) — Fig. 5a step 4.
func NewTable(f *File, base uint64) *Table {
	t := &Table{
		ModuleName: f.Module,
		Base:       base,
		byBlock:    make(map[uint64][]Rule, len(f.Rules)),
		byInstr:    make(map[uint64][]Rule, len(f.Rules)),
	}
	for _, r := range f.Rules {
		r.BBAddr += base
		r.Instr += base
		t.byBlock[r.BBAddr] = append(t.byBlock[r.BBAddr], r)
		if r.Instr != 0 {
			t.byInstr[r.Instr] = append(t.byInstr[r.Instr], r)
		}
	}
	return t
}

// BlockRules returns the rules attached to the basic block at run-time
// address bb, and whether the block was statically seen at all (a hash-table
// hit, Fig. 4 step 3b).
func (t *Table) BlockRules(bb uint64) ([]Rule, bool) {
	rs, ok := t.byBlock[bb]
	return rs, ok
}

// InstrRules returns the rules attached to the instruction at run-time
// address addr.
func (t *Table) InstrRules(addr uint64) []Rule { return t.byInstr[addr] }

// Len returns the number of distinct blocks with rules.
func (t *Table) Len() int { return len(t.byBlock) }

// Blocks returns the run-time block addresses present, sorted (testing and
// diagnostics).
func (t *Table) Blocks() []uint64 {
	out := make([]uint64, 0, len(t.byBlock))
	for a := range t.byBlock {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PackLiveness encodes a liveness summary into a rule data word: the low 16
// bits hold the live-register mask, bit 16 the flags-live bit, bits 17+ up
// to three free (dead) register numbers + 1 (0 = none).
func PackLiveness(liveRegs uint16, flagsLive bool, free []uint8) uint64 {
	v := uint64(liveRegs)
	if flagsLive {
		v |= 1 << 16
	}
	for i := 0; i < 3 && i < len(free); i++ {
		v |= uint64(free[i]+1) << (17 + 5*i)
	}
	return v
}

// UnpackLiveness reverses PackLiveness.
func UnpackLiveness(v uint64) (liveRegs uint16, flagsLive bool, free []uint8) {
	liveRegs = uint16(v)
	flagsLive = v&(1<<16) != 0
	for i := 0; i < 3; i++ {
		f := (v >> (17 + 5*i)) & 0x1f
		if f == 0 {
			break
		}
		free = append(free, uint8(f-1))
	}
	return
}
