package fuzz

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Crash is one captured panic from a guarded pipeline stage. Crashes are
// oracle-2 violations by definition: hostile input must produce typed
// errors, never panics.
type Crash struct {
	// Sig is the deduplication signature: stage plus the digit-stripped
	// panic message plus the topmost in-repo source file. Two panics with
	// the same signature are the same bug.
	Sig string
	// Stage names the pipeline stage that panicked.
	Stage string
	// Msg is the raw panic message.
	Msg string
	// Frame is the topmost repro-internal frame of the panic stack.
	Frame string
}

// guard runs one pipeline stage, converting a panic into a triaged Crash.
func guard(stage string, f func() error) (err error, crash *Crash) {
	defer func() {
		if rec := recover(); rec != nil {
			msg := fmt.Sprint(rec)
			frame := topFrame(debug.Stack())
			crash = &Crash{
				Sig:   stage + "|" + stripDigits(msg) + "|" + frame,
				Stage: stage,
				Msg:   msg,
				Frame: frame,
			}
		}
	}()
	return f(), nil
}

// topFrame extracts the first repro-internal source file from a panic
// stack, without its line number (line numbers churn across edits; the
// file identifies the faulting component well enough for deduplication).
func topFrame(stack []byte) string {
	for _, line := range strings.Split(string(stack), "\n") {
		line = strings.TrimSpace(line)
		i := strings.Index(line, "repro/internal/")
		if i < 0 || !strings.Contains(line, ".go:") {
			continue
		}
		if j := strings.Index(line[i:], ".go:"); j >= 0 {
			return line[i : i+j+3]
		}
	}
	return "unknown"
}

// stripDigits normalises a message for signature purposes: concrete
// offsets, addresses and lengths vary per input, the message shape does
// not.
func stripDigits(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		switch {
		case strings.HasPrefix(s[i:], "0x"): // hex literal
			i += 2
			for i < len(s) && isHex(s[i]) {
				i++
			}
			b.WriteByte('#')
		case s[i] >= '0' && s[i] <= '9': // decimal run
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			b.WriteByte('#')
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	if b.Len() > 120 {
		return b.String()[:120]
	}
	return b.String()
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
