package fuzz

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/fuzz/gen"
	"repro/internal/metrics"
)

// Campaign orchestration. Determinism is the design invariant: a campaign is
// a sequence of fixed-size rounds whose jobs are derived *sequentially* from
// a per-job rand seeded by (campaign seed, domain, round, job index) against
// the corpus state at round start. Job execution is pure, so the batch can
// run on any number of workers; results are merged back in job order. The
// report carries no worker count and no timestamps, so identical seeds give
// byte-identical reports at -workers 1 and -workers 8.

// Config parameterises one campaign.
type Config struct {
	// Seed is the campaign PRNG seed; every derived rand descends from it.
	Seed int64
	// Cases is the number of cases to run per enabled domain.
	Cases int
	// Workers is the executor parallelism (never affects results).
	Workers int
	// Source and Module enable the two domains. Both default on when
	// neither is set.
	Source, Module bool
	// SrcBudget and ModBudget are the per-run instruction budgets.
	SrcBudget, ModBudget uint64
	// PlantEvery makes every n-th source case a planted-bug detection
	// probe instead of a differential case.
	PlantEvery int
	// MinimizeBudget caps oracle re-runs per minimised reproducer.
	MinimizeBudget int
	// Minimize enables end-of-campaign reproducer minimisation.
	Minimize bool
}

func (c Config) withDefaults() Config {
	if c.Cases <= 0 {
		c.Cases = 500
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if !c.Source && !c.Module {
		c.Source, c.Module = true, true
	}
	if c.SrcBudget == 0 {
		c.SrcBudget = 50_000_000
	}
	if c.ModBudget == 0 {
		c.ModBudget = 200_000
	}
	if c.PlantEvery <= 0 {
		c.PlantEvery = 8
	}
	if c.MinimizeBudget <= 0 {
		c.MinimizeBudget = 256
	}
	return c
}

// batchSize is the fixed round width, independent of worker count.
const batchSize = 32

// seedBatch is the number of fresh programs force-admitted before round 1.
const seedBatch = 4

// jobSeed derives the deterministic per-job PRNG seed.
func jobSeed(seed int64, domain, round, j uint64) int64 {
	return int64(metrics.Mix64(uint64(seed) ^ metrics.Mix64(domain<<40|round<<20|j)))
}

// Report is the campaign result, JSON-stable across worker counts.
type Report struct {
	Seed   int64         `json:"seed"`
	Cases  int           `json:"cases"`
	Source *DomainReport `json:"source,omitempty"`
	Module *DomainReport `json:"module,omitempty"`
}

// Bad is the count of oracle failures; jfuzz exits nonzero when it is.
func (r *Report) Bad() int {
	n := 0
	for _, d := range []*DomainReport{r.Source, r.Module} {
		if d != nil {
			n += d.ViolationCount + d.CrashCount
		}
	}
	return n
}

// DomainReport summarises one domain's campaign.
type DomainReport struct {
	Cases          int            `json:"cases"`
	CorpusSize     int            `json:"corpus_size"`
	CorpusRejects  int            `json:"corpus_rejects"`
	CoverageBits   int            `json:"coverage_bits"`
	OverBudget     int            `json:"over_budget"`
	ViolationCount int            `json:"violation_count"`
	Violations     []Violation    `json:"violations,omitempty"`
	CrashCount     int            `json:"crash_count"`
	Crashes        []CrashReport  `json:"crashes,omitempty"`
	Planted        *PlantedReport `json:"planted,omitempty"`
}

// Violation is one oracle-failure class with a representative reproducer.
type Violation struct {
	Class   string `json:"class"`
	Count   int    `json:"count"`
	Example string `json:"example"`
	// Repro is the (minimised) reproducer: MiniC source for domain A,
	// hex module bytes for domain B.
	Repro string `json:"repro,omitempty"`
}

// CrashReport is one deduplicated panic signature.
type CrashReport struct {
	Sig      string `json:"sig"`
	Stage    string `json:"stage"`
	Frame    string `json:"frame"`
	Count    int    `json:"count"`
	ReproHex string `json:"repro_hex,omitempty"`
}

// PlantedReport summarises oracle 3: detection of deliberately planted bugs.
type PlantedReport struct {
	Tried   int            `json:"tried"`
	Caught  int            `json:"caught"`
	ByClass []PlantedClass `json:"by_class"`
}

// PlantedClass is per-bug-class detection stats.
type PlantedClass struct {
	Class  string `json:"class"`
	Tried  int    `json:"tried"`
	Caught int    `json:"caught"`
}

// violAgg accumulates one violation class during a campaign.
type violAgg struct {
	count   int
	example string
	prog    *gen.Prog // domain A reproducer
	data    []byte    // domain B reproducer
}

// crashAgg accumulates one crash signature during a campaign.
type crashAgg struct {
	crash *Crash
	count int
	data  []byte
}

// reportCaps bound reproducer detail in the report.
const (
	maxViolClasses = 10
	maxCrashSigs   = 10
	maxMinimized   = 3
	maxReproHex    = 256 // bytes of reproducer shown as hex
)

// pmap maps f over in with the given parallelism, preserving order.
func pmap[T, R any](workers int, in []T, f func(T) R) []R {
	out := make([]R, len(in))
	if workers <= 1 || len(in) <= 1 {
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = f(in[i])
			}
		}()
	}
	for i := range in {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Run executes a campaign and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed, Cases: cfg.Cases}
	if cfg.Source {
		d, err := runSourceDomain(cfg)
		if err != nil {
			return nil, err
		}
		rep.Source = d
	}
	if cfg.Module {
		d, err := runModuleDomain(cfg)
		if err != nil {
			return nil, err
		}
		rep.Module = d
	}
	return rep, nil
}

// Domain indices for jobSeed.
const (
	domSource uint64 = 1
	domModule uint64 = 2
)

type srcJob struct {
	prog    *gen.Prog
	planted gen.Bug
	isPlant bool
}

type srcOut struct {
	res   *SourceResult
	crash *Crash
}

func runSourceDomain(cfg Config) (*DomainReport, error) {
	rep := &DomainReport{}
	corpus := NewCorpus()
	viols := map[string]*violAgg{}
	crashes := map[string]*crashAgg{}
	plantTried := make([]int, gen.NumBugs)
	plantCaught := make([]int, gen.NumBugs)

	runOne := func(job *srcJob) srcOut {
		var res *SourceResult
		// The source pipeline on safe generated programs should never
		// panic; a panic here is a compiler/runtime bug worth a crash
		// record rather than a dead campaign.
		_, crash := guard("source", func() error {
			res = CheckSource(job.prog, cfg.SrcBudget)
			return nil
		})
		return srcOut{res: res, crash: crash}
	}

	merge := func(job *srcJob, out srcOut, force bool) {
		rep.Cases++
		if out.crash != nil {
			agg := crashes[out.crash.Sig]
			if agg == nil {
				agg = &crashAgg{crash: out.crash, data: []byte(job.prog.Render())}
				crashes[out.crash.Sig] = agg
			}
			agg.count++
			return
		}
		res := out.res
		if res.OverBudget {
			rep.OverBudget++
			return
		}
		if job.isPlant {
			plantTried[job.planted]++
			if res.PlantedCaught {
				plantCaught[job.planted]++
			} else {
				class := "planted-missed:" + job.planted.String()
				agg := viols[class]
				if agg == nil {
					agg = &violAgg{example: class, prog: job.prog}
					viols[class] = agg
				}
				agg.count++
			}
			return
		}
		for _, v := range res.Violations {
			class := stripDigits(v)
			agg := viols[class]
			if agg == nil {
				agg = &violAgg{example: v, prog: job.prog}
				viols[class] = agg
			}
			agg.count++
		}
		if len(res.Violations) == 0 {
			corpus.Add(&Entry{
				ID:   EntryID([]byte(job.prog.Render())),
				Prog: job.prog,
				Cov:  res.Cov,
				Size: job.prog.NumStmts(),
			}, force)
		}
	}

	// Round 0: seed the corpus with fresh programs, force-admitted.
	nSeed := min(seedBatch, cfg.Cases)
	jobs := make([]*srcJob, nSeed)
	for j := range jobs {
		r := rand.New(rand.NewSource(jobSeed(cfg.Seed, domSource, 0, uint64(j))))
		jobs[j] = &srcJob{prog: gen.New(r)}
	}
	for j, out := range pmap(cfg.Workers, jobs, runOne) {
		merge(jobs[j], out, true)
	}
	if len(corpus.Entries) == 0 {
		return nil, fmt.Errorf("fuzz: source seeding produced no usable corpus")
	}

	derive := func(r *rand.Rand, caseIdx int) *srcJob {
		if caseIdx%cfg.PlantEvery == cfg.PlantEvery-1 {
			p := corpus.Pick(r).Prog.Clone()
			class := gen.Bug(uint64(caseIdx/cfg.PlantEvery) % uint64(gen.NumBugs))
			if p.Plant(r, class) {
				return &srcJob{prog: p, planted: class, isPlant: true}
			}
		}
		if r.Intn(10) == 0 {
			return &srcJob{prog: gen.New(r)}
		}
		p := corpus.Pick(r).Prog.Clone()
		for n := 1 + r.Intn(3); n > 0; n-- {
			p.Mutate(r)
		}
		return &srcJob{prog: p}
	}

	caseIdx := nSeed
	for round := uint64(1); caseIdx < cfg.Cases; round++ {
		b := min(batchSize, cfg.Cases-caseIdx)
		jobs = make([]*srcJob, b)
		for j := 0; j < b; j++ {
			r := rand.New(rand.NewSource(jobSeed(cfg.Seed, domSource, round, uint64(j))))
			jobs[j] = derive(r, caseIdx+j)
		}
		for j, out := range pmap(cfg.Workers, jobs, runOne) {
			merge(jobs[j], out, false)
		}
		caseIdx += b
	}

	rep.CorpusSize = len(corpus.Entries)
	rep.CorpusRejects = corpus.Rejects
	rep.CoverageBits = corpus.Global.Count()
	rep.Violations, rep.ViolationCount = finishViolations(viols)
	rep.Crashes, rep.CrashCount = finishCrashes(crashes)
	if tried := sum(plantTried); tried > 0 {
		pr := &PlantedReport{Tried: tried, Caught: sum(plantCaught)}
		for b := gen.Bug(0); b < gen.NumBugs; b++ {
			pr.ByClass = append(pr.ByClass, PlantedClass{
				Class: b.String(), Tried: plantTried[b], Caught: plantCaught[b]})
		}
		rep.Planted = pr
	}

	if cfg.Minimize {
		// Sequential, deterministic reproducer minimisation for the first
		// few violation classes (planted-missed repros stay un-minimised:
		// statement deletion could remove the planted store itself and
		// hand back a trivially-safe "reproducer").
		minimized := 0
		for i := range rep.Violations {
			if minimized >= maxMinimized {
				break
			}
			v := &rep.Violations[i]
			agg := viols[v.Class]
			if agg.prog == nil || len(agg.prog.Planted) > 0 {
				v.Repro = capStr(agg.prog.Render())
				continue
			}
			class := v.Class
			keep := func(q *gen.Prog) bool {
				res := CheckSource(q, cfg.SrcBudget)
				if res.OverBudget {
					return false
				}
				for _, qv := range res.Violations {
					if stripDigits(qv) == class {
						return true
					}
				}
				return false
			}
			v.Repro = capStr(gen.Minimize(agg.prog, keep, cfg.MinimizeBudget).Render())
			minimized++
		}
	}
	return rep, nil
}

type modJob struct {
	data []byte
}

func runModuleDomain(cfg Config) (*DomainReport, error) {
	rep := &DomainReport{}
	reg, err := Libj()
	if err != nil {
		return nil, err
	}
	seeds, err := SeedModules()
	if err != nil {
		return nil, err
	}
	corpus := NewCorpus()
	viols := map[string]*violAgg{}
	crashes := map[string]*crashAgg{}

	runOne := func(job *modJob) *ModResult {
		return CheckModule(job.data, reg, cfg.ModBudget)
	}

	merge := func(job *modJob, res *ModResult, force bool) {
		rep.Cases++
		if res.Crash != nil {
			agg := crashes[res.Crash.Sig]
			if agg == nil {
				agg = &crashAgg{crash: res.Crash, data: job.data}
				crashes[res.Crash.Sig] = agg
			}
			agg.count++
			return
		}
		for _, v := range res.Violations {
			class := stripDigits(v)
			agg := viols[class]
			if agg == nil {
				agg = &violAgg{example: v, data: job.data}
				viols[class] = agg
			}
			agg.count++
		}
		// Error outcomes stay in the corpus: rejected-input paths are
		// exactly the code this domain wants to keep exploring.
		corpus.Add(&Entry{
			ID:   EntryID(job.data),
			Data: job.data,
			Cov:  res.Cov,
			Size: len(job.data)/64 + 1,
		}, force)
	}

	// Round 0: the deterministic seed modules, force-admitted. Seed
	// executions count toward the case budget like any other.
	nSeed := min(len(seeds), cfg.Cases)
	jobs := make([]*modJob, nSeed)
	for j := range jobs {
		jobs[j] = &modJob{data: seeds[j]}
	}
	for j, res := range pmap(cfg.Workers, jobs, runOne) {
		merge(jobs[j], res, true)
	}
	if len(corpus.Entries) == 0 {
		return nil, fmt.Errorf("fuzz: module seeding produced no usable corpus")
	}

	caseIdx := nSeed
	for round := uint64(1); caseIdx < cfg.Cases; round++ {
		b := min(batchSize, cfg.Cases-caseIdx)
		jobs = make([]*modJob, b)
		for j := 0; j < b; j++ {
			r := rand.New(rand.NewSource(jobSeed(cfg.Seed, domModule, round, uint64(j))))
			parent := corpus.Pick(r)
			partner := corpus.Entries[r.Intn(len(corpus.Entries))]
			jobs[j] = &modJob{data: MutateBytes(r, parent.Data, partner.Data)}
		}
		for j, res := range pmap(cfg.Workers, jobs, runOne) {
			merge(jobs[j], res, false)
		}
		caseIdx += b
	}

	rep.CorpusSize = len(corpus.Entries)
	rep.CorpusRejects = corpus.Rejects
	rep.CoverageBits = corpus.Global.Count()
	rep.Violations, rep.ViolationCount = finishViolations(viols)
	rep.Crashes, rep.CrashCount = finishCrashes(crashes)

	if cfg.Minimize {
		for i := range rep.Crashes {
			if i >= maxMinimized {
				break
			}
			cr := &rep.Crashes[i]
			sig := cr.Sig
			fails := func(d []byte) bool {
				r := CheckModule(d, reg, cfg.ModBudget)
				return r.Crash != nil && r.Crash.Sig == sig
			}
			cr.ReproHex = capHex(DDMin(crashes[sig].data, fails, cfg.MinimizeBudget))
		}
		for i := range rep.Violations {
			if i >= maxMinimized {
				break
			}
			v := &rep.Violations[i]
			class := v.Class
			fails := func(d []byte) bool {
				r := CheckModule(d, reg, cfg.ModBudget)
				for _, qv := range r.Violations {
					if stripDigits(qv) == class {
						return true
					}
				}
				return false
			}
			v.Repro = capHex(DDMin(viols[class].data, fails, cfg.MinimizeBudget))
		}
	}
	return rep, nil
}

// finishViolations turns the aggregation map into a sorted, capped slice.
func finishViolations(viols map[string]*violAgg) ([]Violation, int) {
	classes := make([]string, 0, len(viols))
	total := 0
	for c, a := range viols {
		classes = append(classes, c)
		total += a.count
	}
	sort.Strings(classes)
	var out []Violation
	for _, c := range classes {
		if len(out) >= maxViolClasses {
			break
		}
		out = append(out, Violation{Class: c, Count: viols[c].count,
			Example: capStr(viols[c].example)})
	}
	return out, total
}

// finishCrashes turns the crash map into a sorted, capped slice.
func finishCrashes(crashes map[string]*crashAgg) ([]CrashReport, int) {
	sigs := make([]string, 0, len(crashes))
	total := 0
	for s, a := range crashes {
		sigs = append(sigs, s)
		total += a.count
	}
	sort.Strings(sigs)
	var out []CrashReport
	for _, s := range sigs {
		if len(out) >= maxCrashSigs {
			break
		}
		a := crashes[s]
		out = append(out, CrashReport{Sig: s, Stage: a.crash.Stage,
			Frame: a.crash.Frame, Count: a.count})
	}
	return out, total
}

func capStr(s string) string {
	const n = 4096
	if len(s) > n {
		return s[:n] + "...[truncated]"
	}
	return s
}

func capHex(b []byte) string {
	if len(b) > maxReproHex {
		return hex.EncodeToString(b[:maxReproHex]) +
			fmt.Sprintf("...[%d bytes total]", len(b))
	}
	return hex.EncodeToString(b)
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
