package fuzz

// DDMin reduces a byte input with the classic ddmin algorithm: it returns a
// subsequence of data for which fails still returns true, removing ever
// finer-grained chunks until no single chunk at byte granularity can be
// dropped. fails(data) must be true on entry; fails is called at most
// budget times (minimisation is best-effort past the budget).
func DDMin(data []byte, fails func([]byte) bool, budget int) []byte {
	cur := append([]byte(nil), data...)
	n := 2
	for len(cur) >= 2 && budget > 0 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur) && budget > 0; lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := append(append([]byte(nil), cur[:lo]...), cur[hi:]...)
			if len(cand) == 0 {
				continue
			}
			budget--
			if fails(cand) {
				cur = cand
				n = maxInt(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // single-byte granularity reached: 1-minimal
			}
			n = minInt(2*n, len(cur))
		}
	}
	return cur
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
