package fuzz

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func covOf(features ...uint64) *metrics.Bitmap {
	b := &metrics.Bitmap{}
	for _, f := range features {
		b.Add(f)
	}
	return b
}

func TestCorpusNoveltyGate(t *testing.T) {
	c := NewCorpus()
	if !c.Add(&Entry{ID: "a", Cov: covOf(1, 2), Size: 1}, false) {
		t.Fatal("novel entry rejected")
	}
	// Identical coverage: the gate must reject it.
	if c.Add(&Entry{ID: "b", Cov: covOf(1, 2), Size: 1}, false) {
		t.Fatal("duplicate-coverage entry admitted")
	}
	if c.Rejects != 1 {
		t.Fatalf("Rejects = %d, want 1", c.Rejects)
	}
	// One new feature: admitted, NewBits records only the novelty.
	if !c.Add(&Entry{ID: "c", Cov: covOf(2, 3), Size: 1}, false) {
		t.Fatal("entry with one new feature rejected")
	}
	if got := c.Entries[len(c.Entries)-1].NewBits; got != 1 {
		t.Fatalf("NewBits = %d, want 1", got)
	}
	// Force bypasses the gate (initial seeding).
	if !c.Add(&Entry{ID: "d", Cov: covOf(1), Size: 1}, true) {
		t.Fatal("forced entry rejected")
	}
	if len(c.Entries) != 3 {
		t.Fatalf("corpus size = %d, want 3", len(c.Entries))
	}
}

func TestCorpusEnergyPick(t *testing.T) {
	c := NewCorpus()
	c.Add(&Entry{ID: "hot", Cov: covOf(1, 2, 3, 4, 5, 6, 7, 8), Size: 4}, true)
	c.Add(&Entry{ID: "cold", Cov: covOf(1), Size: 50}, true)
	// "hot" contributed 8 new bits, "cold" zero beyond overlap: the
	// energy-weighted scheduler must prefer "hot".
	counts := map[string]int{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		counts[c.Pick(r).ID]++
	}
	if counts["hot"] <= counts["cold"] {
		t.Fatalf("energy scheduling inverted: %v", counts)
	}
	// Pick pressure decays energy, but never to zero: both stay reachable.
	if counts["cold"] == 0 {
		t.Fatalf("low-energy entry starved: %v", counts)
	}
}

func TestDDMinReducesAndPreserves(t *testing.T) {
	data := []byte("xxxxAyyyyyyyyyyyByyyyxxxxxxxxxxxxxxxxzzz")
	fails := func(d []byte) bool {
		return bytes.ContainsRune(d, 'A') && bytes.ContainsRune(d, 'B')
	}
	min := DDMin(data, fails, 10_000)
	if !fails(min) {
		t.Fatalf("minimised input no longer fails: %q", min)
	}
	if len(min) != 2 {
		t.Fatalf("ddmin left %d bytes (%q), want 2", len(min), min)
	}
}

func TestDDMinBudget(t *testing.T) {
	calls := 0
	fails := func(d []byte) bool { calls++; return true }
	DDMin(make([]byte, 1024), fails, 7)
	if calls > 7 {
		t.Fatalf("ddmin ran %d oracle calls past a budget of 7", calls)
	}
}

// TestCampaignDeterministicAcrossWorkers is the headline determinism
// guarantee: identical seeds produce byte-identical campaign reports
// regardless of executor parallelism.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign determinism is slow")
	}
	base := Config{Seed: 3, Cases: 40, Source: true, Module: true, Minimize: true}
	run := func(workers int) []byte {
		cfg := base
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	w1 := run(1)
	w8 := run(8)
	if !bytes.Equal(w1, w8) {
		t.Fatalf("reports differ across worker counts:\n-workers 1: %s\n-workers 8: %s", w1, w8)
	}
}

// TestCampaignSafeStackIsQuiet: a short campaign on the current tree must
// find no oracle violations — the stack agrees with itself and planted bugs
// are detected.
func TestCampaignSafeStackIsQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run is slow")
	}
	rep, err := Run(Config{Seed: 1, Cases: 40, Source: true, Module: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.Bad(); bad != 0 {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("%d oracle failures on a clean tree:\n%s", bad, blob)
	}
	if rep.Source.Planted == nil || rep.Source.Planted.Tried == 0 {
		t.Fatal("campaign ran no planted-bug probes")
	}
	if rep.Source.Planted.Caught != rep.Source.Planted.Tried {
		t.Fatalf("planted bugs missed: %+v", rep.Source.Planted)
	}
	if rep.Source.CoverageBits == 0 || rep.Module.CoverageBits == 0 {
		t.Fatal("campaign observed no coverage")
	}
}
