// Package fuzz is the coverage-guided differential fuzzing subsystem: the
// continuous-correctness tooling behind the paper's "comprehensive security"
// claim. It fuzzes the vertical stack (jcc -> obj -> loader -> DBM -> tools)
// over two input domains with three oracles:
//
//   - Domain A (source): safe-by-construction MiniC programs from
//     internal/fuzz/gen. Oracle 1 (differential): -O0, -O2, -O2 without
//     ipa-ra and PIC builds must produce identical results natively and
//     under JASan, JMSan, JTSan and JCFI, with the tools silent. Oracle 3
//     (detection): planted heap bugs (gen.Plant) must trip JASan, planted
//     uninitialized reads must trip JMSan, and planted temporal bugs
//     (use-after-free, double free) must trip JTSan — each with elision
//     both off and on.
//   - Domain B (module): byte/structure-mutated serialised JEF modules.
//     Oracle 2 (robustness): the obj deserialiser, cfg disassembler,
//     analysis pipeline, loader and machine must return typed errors —
//     never panic — within a bounded step budget.
//
// Coverage feedback comes from the stack itself: the machine's
// executed-block hook and the dynamic modifier's block discovery, folded
// into metrics.Bitmap, drive an energy-based corpus scheduler with
// novelty-gated seed retention (corpus.go). Campaigns are deterministic:
// same seed, same case count => byte-identical reports at any worker count
// (campaign.go).
package fuzz

import (
	"bytes"
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fuzz/gen"
	"repro/internal/jasan"
	"repro/internal/jcfi"
	"repro/internal/jmsan"
	"repro/internal/jtsan"
	"repro/internal/libj"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/obj"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Coverage feature salts, keeping the domains' feature spaces apart in the
// shared bitmap.
const (
	featNativeBlock uint64 = iota + 1
	featDBMBlock
	featStage
	featErrClass
	featShape
)

// feature folds a salted value into one bitmap feature.
func feature(salt, v uint64) uint64 {
	return metrics.Mix64(salt)<<1 ^ v
}

// SourceResult is the verdict on one source-domain case.
type SourceResult struct {
	// Violations lists oracle failures: compile errors, run faults,
	// differential mismatches, or tool noise on a safe program.
	Violations []string
	// PlantedCaught reports whether JASan flagged a planted-bug program.
	PlantedCaught bool
	// OverBudget is set when a run exhausted the per-case step budget;
	// the case is discarded without a verdict.
	OverBudget bool
	// Cov is the coverage the case observed (native blocks + DBM blocks).
	Cov *metrics.Bitmap
}

// runOutcome is one execution's observables.
type runOutcome struct {
	exit       int64
	out        string
	err        error
	overBudget bool
}

func newMachine(budget uint64, out *bytes.Buffer) *vm.Machine {
	m := vm.New()
	m.InstallDefaultServices()
	m.MaxInstrs = budget
	m.Out = out
	return m
}

func isBudgetFault(err error) bool {
	f, ok := err.(*vm.Fault)
	return ok && f.Kind == "instruction budget exhausted"
}

// runNative executes mod natively. cov, when non-nil, accumulates
// executed-block coverage through the machine's block hook.
func runNative(mod *obj.Module, reg loader.Registry, budget uint64,
	cov *metrics.Bitmap) runOutcome {

	var buf bytes.Buffer
	m := newMachine(budget, &buf)
	if cov != nil {
		m.BlockHook = func(pc uint64) { cov.Add(feature(featNativeBlock, pc)) }
	}
	proc := loader.NewProcess(m, reg)
	lm, err := proc.LoadProgram(mod)
	if err != nil {
		return runOutcome{err: err}
	}
	err = m.Run(lm.RuntimeAddr(mod.Entry))
	return runOutcome{exit: m.ExitStatus, out: buf.String(), err: err,
		overBudget: isBudgetFault(err)}
}

// runTool executes mod under a security tool through the hybrid runtime,
// returning the outcome and the tool's violation count. cov, when non-nil,
// accumulates the dynamic modifier's block-discovery coverage.
func runTool(mod *obj.Module, reg loader.Registry, tool core.Tool,
	budget uint64, cov *metrics.Bitmap) (runOutcome, int) {

	var buf bytes.Buffer
	m := newMachine(budget, &buf)
	files, err := core.AnalyzeProgram(mod, reg, tool)
	if err != nil {
		return runOutcome{err: err}, 0
	}
	pr := loader.NewProcess(m, reg)
	// The runtime must exist before LoadProgram so its module-load hook
	// can build the rule tables.
	rt := core.NewRuntime(m, pr, tool, files)
	lm, err := pr.LoadProgram(mod)
	if err != nil {
		return runOutcome{err: err}, 0
	}
	if cov != nil {
		rt.DBM.TraceHook = func(pc uint64) { cov.Add(feature(featDBMBlock, pc)) }
	}
	err = rt.Run(lm.RuntimeAddr(mod.Entry))
	violations := 0
	switch tt := tool.(type) {
	case *jasan.Tool:
		violations = int(tt.Report.Total)
	case *jcfi.Tool:
		violations = len(tt.Report.Violations)
	case *jmsan.Tool:
		violations = int(tt.Report.Total)
	case *jtsan.Tool:
		violations = int(tt.Report.Total)
	}
	return runOutcome{exit: m.ExitStatus, out: buf.String(), err: err,
		overBudget: isBudgetFault(err)}, violations
}

// Libj returns the shared runtime library registry every generated program
// links against.
func Libj() (loader.Registry, error) {
	lj, err := libj.Module()
	if err != nil {
		return nil, err
	}
	return loader.Registry{libj.Name: lj}, nil
}

// CheckSource runs the full source-domain oracle on one program with the
// given per-run step budget. Programs with planted bugs skip the
// differential comparison (they are unsafe by design) and report only
// whether JASan caught the bug.
func CheckSource(p *gen.Prog, budget uint64) *SourceResult {
	res := &SourceResult{Cov: &metrics.Bitmap{}}
	src := p.Render()
	reg, err := Libj()
	if err != nil {
		res.Violations = append(res.Violations, "libj: "+err.Error())
		return res
	}

	compile := func(name string, opts cc.Options) *obj.Module {
		opts.Module = "p"
		mod, err := cc.Compile(src, opts)
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("compile-%s: %v", name, err))
			return nil
		}
		return mod
	}

	if len(p.Planted) > 0 {
		o2 := compile("O2", cc.Options{O2: true})
		if o2 == nil {
			return res
		}
		// The detecting tool depends on the planted class: read-before-write
		// bugs are JMSan's to catch, temporal bugs (use-after-free, double
		// free) are JTSan's, and the remaining heap-safety bugs JASan's
		// (uninitialized and temporal accesses are in bounds, so JASan stays
		// silent on them by design).
		uninit, temporal := false, false
		for _, b := range p.Planted {
			switch b {
			case gen.BugUninitRead.String():
				uninit = true
			case gen.BugUseAfterFree.String(), gen.BugDoubleFree.String():
				temporal = true
			}
		}
		var plain, elide core.Tool
		switch {
		case temporal:
			plain = jtsan.New(jtsan.Config{UseLiveness: true})
			elide = jtsan.New(jtsan.Config{UseLiveness: true, Elide: true})
		case uninit:
			plain = jmsan.New(jmsan.Config{UseLiveness: true})
			elide = jmsan.New(jmsan.Config{UseLiveness: true, Elide: true})
		default:
			plain = jasan.New(jasan.Config{UseLiveness: true})
			elide = jasan.New(jasan.Config{UseLiveness: true, Elide: true})
		}
		out, n := runTool(o2, reg, plain, budget, res.Cov)
		// A planted store corrupts real memory (allocator metadata
		// included), so the run may spin to budget exhaustion *after* the
		// detection — the verdict only needs the report.
		res.PlantedCaught = n > 0
		if !res.PlantedCaught && out.overBudget {
			res.OverBudget = true
			return res
		}
		// Structured-diagnostics oracle: every raw report must convert into
		// a fully classified Violation record (kind, CWE, rule attribution)
		// with the totals agreeing. Violation strings stay deterministic so
		// campaign reports remain byte-identical across worker counts.
		if res.PlantedCaught {
			dlog := diag.NewLog()
			if got := diag.Collect(dlog, plain, nil, telemetry.SpanContext{}); got != n {
				res.Violations = append(res.Violations,
					fmt.Sprintf("diag-oracle: %d structured records for %d raw reports", got, n))
			}
			for _, v := range dlog.Entries() {
				if v.Kind == "" || v.CWE == "" || v.Rule == "" || v.CostCenter == "" {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"diag-oracle: unclassified record tool=%s kind=%q cwe=%q rule=%q",
						v.Tool, v.Kind, v.CWE, v.Rule))
				}
			}
		}
		// Oracle 3 under elision: the VSA proofs must never remove the
		// check that catches the planted bug. Catching with elision off
		// but missing with it on is a soundness regression.
		outE, nE := runTool(o2, reg, elide, budget, res.Cov)
		if res.PlantedCaught && nE == 0 {
			if outE.overBudget {
				res.OverBudget = true
			} else {
				res.Violations = append(res.Violations,
					"elide-regression: planted bug caught without elision but missed with it")
			}
		}
		return res
	}

	o0 := compile("O0", cc.Options{})
	o2 := compile("O2", cc.Options{O2: true})
	o2noipa := compile("O2-noipa", cc.Options{O2: true, NoIPARA: true})
	pic := compile("O2-pic", cc.Options{O2: true, PIC: true})
	if o0 == nil || o2 == nil || o2noipa == nil || pic == nil {
		return res
	}

	want := runNative(o0, reg, budget, res.Cov)
	if want.overBudget {
		res.OverBudget = true
		return res
	}
	if want.err != nil {
		res.Violations = append(res.Violations,
			fmt.Sprintf("run-O0: %v", want.err))
		return res
	}
	for _, alt := range []struct {
		name string
		mod  *obj.Module
	}{{"O2", o2}, {"O2-noipa", o2noipa}, {"O2-pic", pic}} {
		got := runNative(alt.mod, reg, budget, nil)
		if got.overBudget {
			res.OverBudget = true
			return res
		}
		if got.err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("run-%s: %v", alt.name, got.err))
			continue
		}
		if got.exit != want.exit || got.out != want.out {
			res.Violations = append(res.Violations,
				fmt.Sprintf("diff-%s: exit %d out %q != O0 exit %d out %q",
					alt.name, got.exit, got.out, want.exit, want.out))
		}
	}

	// Elision on/off agreement rides the shared O0 baseline: every entry —
	// with or without VSA proofs, at either optimisation level — must match
	// the same expected output with zero tool violations.
	for _, tc := range []struct {
		name string
		mod  *obj.Module
		tool core.Tool
	}{
		{"jasan", o2, jasan.New(jasan.Config{UseLiveness: true})},
		{"jasan-scev", o2, jasan.New(jasan.Config{UseLiveness: true, UseSCEV: true})},
		{"jasan-elide", o2, jasan.New(jasan.Config{UseLiveness: true, Elide: true})},
		{"jasan-elide-O0", o0, jasan.New(jasan.Config{UseLiveness: true, Elide: true})},
		{"jcfi", o2, jcfi.New(jcfi.DefaultConfig)},
		{"jcfi-narrow", o2, jcfi.New(jcfi.Config{Forward: true, Backward: true, Narrow: true})},
		{"jmsan", o2, jmsan.New(jmsan.Config{UseLiveness: true})},
		{"jmsan-elide", o2, jmsan.New(jmsan.Config{UseLiveness: true, Elide: true})},
		{"jtsan", o2, jtsan.New(jtsan.Config{UseLiveness: true})},
		{"jtsan-elide", o2, jtsan.New(jtsan.Config{UseLiveness: true, Elide: true})},
	} {
		got, n := runTool(tc.mod, reg, tc.tool, budget, res.Cov)
		if got.overBudget {
			res.OverBudget = true
			return res
		}
		if got.err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("tool-%s: %v", tc.name, got.err))
			continue
		}
		if got.exit != want.exit || got.out != want.out {
			res.Violations = append(res.Violations,
				fmt.Sprintf("diff-%s: exit %d out %q != O0 exit %d out %q",
					tc.name, got.exit, got.out, want.exit, want.out))
		}
		if n != 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("noise-%s: %d violations on a safe program", tc.name, n))
		}
	}
	return res
}
