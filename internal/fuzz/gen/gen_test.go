package gen

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
)

// TestGenerateCompiles checks that every generated program compiles at both
// optimisation levels and renders deterministically.
func TestGenerateCompiles(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		p := New(rand.New(rand.NewSource(seed)))
		src := p.Render()
		if src != p.Render() {
			t.Fatalf("seed %d: nondeterministic render", seed)
		}
		for _, opts := range []cc.Options{{Module: "p"}, {Module: "p", O2: true}} {
			if _, err := cc.Compile(src, opts); err != nil {
				t.Fatalf("seed %d: compile: %v\nprogram:\n%s", seed, err, src)
			}
		}
	}
}

// TestMutateStaysCompilable checks the safe mutation engine: programs stay
// compilable through long mutation chains.
func TestMutateStaysCompilable(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := New(r)
		for step := 0; step < 25; step++ {
			q := p.Clone()
			if !q.Mutate(r) {
				continue
			}
			src := q.Render()
			if _, err := cc.Compile(src, cc.Options{Module: "p", O2: true}); err != nil {
				t.Fatalf("seed %d step %d: mutation broke compile: %v\nprogram:\n%s",
					seed, step, err, src)
			}
			p = q
		}
	}
}

// TestCloneIsDeep checks that mutating a clone leaves the original alone.
func TestCloneIsDeep(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := New(r)
	src := p.Render()
	q := p.Clone()
	for i := 0; i < 10; i++ {
		q.Mutate(r)
		q.Plant(r, Bug(i%int(NumBugs)))
	}
	if p.Render() != src {
		t.Fatal("mutating the clone changed the original")
	}
}

// TestPlantAllClasses checks every planted-bug class applies and renders to
// a compilable program.
func TestPlantAllClasses(t *testing.T) {
	for b := Bug(0); b < NumBugs; b++ {
		r := rand.New(rand.NewSource(int64(b) + 1))
		p := New(r)
		if !p.Plant(r, b) {
			t.Fatalf("%v: plant failed", b)
		}
		if len(p.Planted) != 1 || p.Planted[0] != b.String() {
			t.Fatalf("%v: planted record %v", b, p.Planted)
		}
		if _, err := cc.Compile(p.Render(), cc.Options{Module: "p", O2: true}); err != nil {
			t.Fatalf("%v: compile: %v\nprogram:\n%s", b, err, p.Render())
		}
	}
}

// TestMinimizeShrinks checks the reducer: with a predicate that only needs
// the planted statement, minimisation should strip most of the program and
// the result must still satisfy the predicate.
func TestMinimizeShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := New(r)
	for i := 0; i < 6; i++ {
		p.Mutate(r)
	}
	if !p.Plant(r, BugHeapOverflow) {
		t.Fatal("plant failed")
	}
	keep := func(q *Prog) bool {
		// The "failure" reproduces iff the program still compiles and
		// still contains a planted RawStore.
		if _, err := cc.Compile(q.Render(), cc.Options{Module: "p"}); err != nil {
			return false
		}
		for _, s := range q.Main {
			if s.Kind == RawStore {
				return true
			}
		}
		return false
	}
	min := Minimize(p, keep, 500)
	if !keep(min) {
		t.Fatal("minimised program no longer reproduces")
	}
	if min.NumStmts() >= p.NumStmts() {
		t.Fatalf("no shrink: %d -> %d statements", p.NumStmts(), min.NumStmts())
	}
}
