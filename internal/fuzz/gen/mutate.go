package gen

import (
	"fmt"
	"math/rand"
)

// This file is the statement/expression mutation engine. Safe mutations
// transform one safe-by-construction program into another (the differential
// oracle must still hold); Plant deliberately violates the heap-safety
// invariant in a way JASan is required to detect (fuzz oracle 3).

// maxStmts caps program growth under repeated insertion mutations so cases
// stay within the per-case execution budget.
const maxStmts = 60

// site identifies one statement position together with the naming context
// in force just before it.
type site struct {
	list *[]Stmt
	idx  int
	c    ctx
	nest int // remaining control-flow nesting budget for new statements
}

// sites enumerates every statement position in generation scope order.
func (p *Prog) sites() []site {
	var out []site
	for fi := range p.Funcs {
		c := ctx{vars: []string{"x"}, mut: []string{"x"},
			arrays: p.globals(), funcs: funcNames(p.Funcs[:fi])}
		walkStmts(&p.Funcs[fi].Body, &c, 0, &out)
	}
	c := ctx{vars: []string{"acc"}, mut: []string{"acc"},
		arrays: p.mutArrays(), funcs: funcNames(p.Funcs)}
	walkStmts(&p.Main, &c, 2, &out)
	return out
}

// mutArrays returns the arrays mutations may reference: Uninit arrays are
// excluded, since a mutation-inserted store would define the very slots the
// planted uninitialized read depends on.
func (p *Prog) mutArrays() []Array {
	var out []Array
	for _, a := range p.Arrays {
		if !a.Uninit {
			out = append(out, a)
		}
	}
	return out
}

func walkStmts(list *[]Stmt, c *ctx, nest int, out *[]site) {
	for i := 0; i < len(*list); i++ {
		snap := *c
		snap.vars = append([]string(nil), c.vars...)
		snap.mut = append([]string(nil), c.mut...)
		*out = append(*out, site{list: list, idx: i, c: snap, nest: nest})
		s := &(*list)[i]
		switch s.Kind {
		case Decl:
			c.vars = append(c.vars, s.Name)
			c.mut = append(c.mut, s.Name)
		case If:
			n, nm := len(c.vars), len(c.mut)
			walkStmts(&s.Then, c, nest-1, out)
			c.vars, c.mut = c.vars[:n], c.mut[:nm]
			walkStmts(&s.Else, c, nest-1, out)
			c.vars, c.mut = c.vars[:n], c.mut[:nm]
		case For:
			n, nm := len(c.vars), len(c.mut)
			c.vars = append(c.vars, s.Name) // readable, not assignable
			walkStmts(&s.Body, c, nest-1, out)
			c.vars, c.mut = c.vars[:n], c.mut[:nm]
		}
	}
}

// exprNodes collects the expression nodes hanging directly off s (nested
// statements are separate sites).
func (s *Stmt) exprNodes() []*Expr {
	var out []*Expr
	for _, e := range []*Expr{s.Idx, s.Val, s.Cond} {
		collectExprs(e, &out)
	}
	return out
}

func collectExprs(e *Expr, out *[]*Expr) {
	if e == nil {
		return
	}
	*out = append(*out, e)
	collectExprs(e.X, out)
	collectExprs(e.Y, out)
}

// swappable binary operators: any of these can replace any other without
// touching the safety invariants.
var swapOps = []ExprKind{Add, Sub, Xor, Or, And, Less}

// Mutate applies one random safety-preserving mutation in place and reports
// whether anything changed. Mutate callers typically work on a Clone.
func (p *Prog) Mutate(r *rand.Rand) bool {
	for try := 0; try < 8; try++ {
		sites := p.sites()
		if len(sites) == 0 {
			// Degenerate program: grow main from scratch.
			c := ctx{vars: []string{"acc"}, mut: []string{"acc"},
				arrays: p.mutArrays(), funcs: funcNames(p.Funcs)}
			if st := p.genStmt(r, &c, 2); st != nil {
				p.Main = append(p.Main, *st)
				return true
			}
			continue
		}
		st := sites[r.Intn(len(sites))]
		s := &(*st.list)[st.idx]
		if s.Kind == RawStore || s.Kind == RawLoad || s.Kind == RawFree {
			continue // planted statements are not mutation targets
		}
		switch r.Intn(5) {
		case 0: // insert a fresh statement before this one
			if p.NumStmts() >= maxStmts {
				continue
			}
			c := st.c
			ns := p.genStmt(r, &c, st.nest)
			if ns == nil {
				continue
			}
			l := *st.list
			l = append(l[:st.idx:st.idx], append([]Stmt{*ns}, l[st.idx:]...)...)
			*st.list = l
			return true
		case 1: // delete (declarations stay: later statements may use them)
			if s.Kind == Decl {
				continue
			}
			*st.list = append((*st.list)[:st.idx], (*st.list)[st.idx+1:]...)
			return true
		case 2: // regenerate one attached expression
			c := st.c
			switch s.Kind {
			case Decl, Assign, AddAssign:
				s.Val = p.genExpr(r, &c, 2)
			case Store:
				if r.Intn(2) == 0 {
					s.Idx = p.genExpr(r, &c, 1)
				} else {
					s.Val = p.genExpr(r, &c, 2)
				}
			case If:
				s.Cond = p.genExpr(r, &c, 1)
			case For:
				s.Trip = 3 + r.Intn(6)
			}
			return true
		case 3: // tweak a constant
			var consts []*Expr
			for _, e := range s.exprNodes() {
				if e.Kind == Const {
					consts = append(consts, e)
				}
			}
			if s.Kind == For && r.Intn(2) == 0 {
				s.Trip = 1 + r.Intn(8)
				return true
			}
			if len(consts) == 0 {
				continue
			}
			consts[r.Intn(len(consts))].K = int64(r.Intn(100) - 50)
			return true
		default: // swap a binary operator
			var bins []*Expr
			for _, e := range s.exprNodes() {
				for _, k := range swapOps {
					if e.Kind == k {
						bins = append(bins, e)
						break
					}
				}
			}
			if len(bins) == 0 {
				continue
			}
			bins[r.Intn(len(bins))].Kind = swapOps[r.Intn(len(swapOps))]
			return true
		}
	}
	return false
}

// Bug enumerates the planted-bug mutation classes of the detection oracle.
// Every class produces a guaranteed-executed heap-safety violation, so a
// run under JASan that stays silent is an oracle failure.
type Bug uint8

// Planted-bug classes.
const (
	// BugHeapOverflow stores one element past the end of a heap object.
	BugHeapOverflow Bug = iota
	// BugShrinkAlloc shrinks an allocation below its masked index bound
	// and touches the now-out-of-bounds last element.
	BugShrinkAlloc
	// BugUseAfterFree stores to a heap object after it is freed.
	BugUseAfterFree
	// BugDropMask widens an index mask past the object bound (the classic
	// dropped-bounds-check) and indexes through the gap.
	BugDropMask
	// BugUninitRead allocates a fresh heap array whose zero-fill is
	// suppressed and reads two of its never-written slots into a
	// comparison — a read-before-write JMSan must detect (JASan cannot:
	// the accesses are in bounds).
	BugUninitRead
	// BugDoubleFree frees a heap object a second time after main's
	// epilogue already freed it — a free-time generation mismatch JTSan
	// must detect (JASan cannot: no access is out of bounds).
	BugDoubleFree
	// NumBugs is the class count.
	NumBugs
)

func (b Bug) String() string {
	switch b {
	case BugHeapOverflow:
		return "heap-overflow"
	case BugShrinkAlloc:
		return "shrink-alloc"
	case BugUseAfterFree:
		return "use-after-free"
	case BugDropMask:
		return "drop-bounds-mask"
	case BugUninitRead:
		return "uninit-read"
	case BugDoubleFree:
		return "double-free"
	}
	return fmt.Sprintf("bug-%d", b)
}

// Plant applies one planted-bug mutation of class b and reports success.
// The resulting program is recorded as unsafe via Planted.
func (p *Prog) Plant(r *rand.Rand, b Bug) bool {
	// Uninit arrays only exist in already-planted programs and are not
	// valid targets for further planting (a store would define their slots).
	var heaps []Array
	for _, a := range p.heaps() {
		if !a.Uninit {
			heaps = append(heaps, a)
		}
	}
	if len(heaps) == 0 {
		return false
	}
	a := heaps[r.Intn(len(heaps))]
	val := &Expr{Kind: Const, K: int64(1 + r.Intn(9))}
	switch b {
	case BugHeapOverflow:
		p.Main = append(p.Main, Stmt{Kind: RawStore, Name: a.Name,
			K: a.AllocElems, Val: val})
	case BugShrinkAlloc:
		if a.Size < 2 {
			return false
		}
		for i := range p.Arrays {
			if p.Arrays[i].Name == a.Name {
				p.Arrays[i].AllocElems = a.Size - 1
			}
		}
		// The store was in bounds under the original allocation; only the
		// shrink makes it a violation.
		p.Main = append(p.Main, Stmt{Kind: RawStore, Name: a.Name,
			K: a.Size - 1, Val: val})
	case BugUseAfterFree:
		p.PostFree = append(p.PostFree, Stmt{Kind: RawStore, Name: a.Name,
			K: 0, Val: val})
	case BugDoubleFree:
		p.PostFree = append(p.PostFree, Stmt{Kind: RawFree, Name: a.Name})
	case BugDropMask:
		// Mask widened to twice the bound: index Size survives the mask
		// and lands one element past the object.
		p.Main = append(p.Main, Stmt{Kind: Store, Name: a.Name,
			Mask: 2*a.Size - 1, Idx: &Expr{Kind: Const, K: a.Size}, Val: val})
	case BugUninitRead:
		// A fresh heap array with the zero-fill suppressed; two distinct
		// never-written slots feed a comparison on every execution.
		p.nextID++
		name := fmt.Sprintf("u%d", p.nextID)
		size := int64(8)
		p.Arrays = append(p.Arrays, Array{Name: name, Size: size,
			Heap: true, AllocElems: size, Uninit: true})
		p.Main = append(p.Main, Stmt{Kind: RawLoad, Name: name,
			K: int64(r.Intn(4)), Mask: int64(4 + r.Intn(4))})
	default:
		return false
	}
	p.Planted = append(p.Planted, b.String())
	return true
}

// deleteNth removes the n-th statement in walk order (any kind) and reports
// whether n was in range. Used by Minimize; removing a declaration whose
// uses remain produces a program the compiler rejects, which the
// minimisation predicate treats as "failure gone" and reverts.
func (p *Prog) deleteNth(n int) bool {
	sites := p.sites()
	// PostFree statements are deletable too (they follow main's frees).
	c := ctx{vars: []string{"acc"}, arrays: p.Arrays, funcs: funcNames(p.Funcs)}
	walkStmts(&p.PostFree, &c, 0, &sites)
	if n < 0 || n >= len(sites) {
		return false
	}
	st := sites[n]
	*st.list = append((*st.list)[:st.idx], (*st.list)[st.idx+1:]...)
	return true
}

// Minimize returns the smallest variant of p (by statement deletion) for
// which keep still returns true — the ddmin-style reducer for source-domain
// findings. keep is called at most budget times; p itself is not modified.
func Minimize(p *Prog, keep func(*Prog) bool, budget int) *Prog {
	cur := p.Clone()
	for improved := true; improved; {
		improved = false
		for i := 0; i < cur.NumStmts() && budget > 0; i++ {
			cand := cur.Clone()
			if !cand.deleteNth(i) {
				break
			}
			budget--
			if keep(cand) {
				cur = cand
				improved = true
				i-- // the next statement slid into slot i
			}
		}
		if budget <= 0 {
			break
		}
	}
	return cur
}
