// Package gen generates and mutates random MiniC programs for the fuzzing
// subsystem (internal/fuzz). Programs are deterministic and memory-safe by
// construction: every array index is masked to the array bound, every
// divisor is forced non-zero, every loop has a constant trip count, and
// helper-function bodies stay loop-free so call trees cannot multiply trip
// counts. Differential testing (fuzz oracle 1) cross-checks the whole stack
// over these programs: compiler optimisation levels and execution under the
// security tools must agree with the -O0 native run, with the tools silent.
//
// Unlike the original string-emitting generator (formerly duplicated in
// internal/experiments), programs here are small ASTs, so the fuzzer can
// apply statement/expression-level mutations that preserve the safety
// invariants (package mutate operations), deliberately break them to plant
// detectable bugs (fuzz oracle 3), and delete statements during test-case
// minimisation.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// ExprKind enumerates expression forms. Compound forms encode their safety
// pattern in the renderer, so no mutation of subtrees can make an unsafe
// expression: division and modulus render with a non-zero-forced divisor,
// multiplication renders with magnitude masks, shifts are bounded, and
// array indices are masked by the enclosing Index/Store node.
type ExprKind uint8

// Expression kinds.
const (
	Const   ExprKind = iota // K
	VarRef                  // Name
	Index                   // Name[(X) & K]
	Call                    // Name(X)
	Add                     // (X + Y)
	Sub                     // (X - Y)
	MulMask                 // ((X & 1023) * (Y & 255))
	DivSafe                 // (X / (((Y) & 7) + 1))
	ModSafe                 // (X % (((Y) & 7) + 2))
	Xor                     // (X ^ Y)
	Or                      // (X | Y)
	And                     // (X & Y)
	Shl                     // ((X) << K), K in 0..3
	Less                    // (X < Y)
)

// Expr is one expression node.
type Expr struct {
	Kind ExprKind
	K    int64 // Const value, Index mask, Shl amount
	Name string
	X, Y *Expr
}

// StmtKind enumerates statement forms.
type StmtKind uint8

// Statement kinds.
const (
	Decl      StmtKind = iota // int Name = Val;
	Assign                    // Name = Val;
	AddAssign                 // Name += Val;
	Store                     // Name[(Idx) & Mask] = Val;
	RawStore                  // Name[K] = Val;   (planted bugs only)
	RawLoad                   // if (Name[K] < Name[Mask]) ... (planted bugs only)
	RawFree                   // free(Name);      (planted bugs only)
	If                        // if (Cond) { Then } else { Else }
	For                       // for (int Name = 0; Name < Trip; Name++) { Body }
)

// Stmt is one statement node.
type Stmt struct {
	Kind       StmtKind
	Name       string
	Mask, K    int64
	Idx, Val   *Expr
	Cond       *Expr
	Trip       int
	Then, Else []Stmt
	Body       []Stmt
}

// Array is one int-array object the program indexes. Global arrays live in
// the data section; heap arrays are malloc'd at the top of main and freed
// at its end, which is what gives JASan redzones to defend and the planted
// heap bugs something to overflow.
type Array struct {
	Name string
	// Size is the power-of-two element count every masked index respects.
	Size int64
	Heap bool
	// AllocElems is the element count actually allocated for heap arrays.
	// It equals Size unless a planted shrink-allocation bug reduced it.
	AllocElems int64
	// Uninit suppresses the zero-fill loop the renderer emits after a heap
	// array's malloc. Safe programs never set it: it exists for the planted
	// uninitialized-read bug class, whose reads must hit memory no store
	// ever defined (the JMSan detection oracle).
	Uninit bool
}

// Fn is one helper function: int Name(int x).
type Fn struct {
	Name string
	Body []Stmt
	Ret  *Expr
}

// Prog is one whole generated program.
type Prog struct {
	Arrays []Array
	Funcs  []Fn
	Main   []Stmt
	// PostFree statements render after the heap frees at the end of main;
	// safe programs have none (planted use-after-free bugs go here).
	PostFree []Stmt
	// Planted describes deliberately-introduced bugs, empty for safe
	// programs. A program with planted bugs must trip JASan.
	Planted []string
	// nextID feeds fresh variable names across generation and mutation.
	nextID int
}

// globals returns the non-heap arrays.
func (p *Prog) globals() []Array {
	var out []Array
	for _, a := range p.Arrays {
		if !a.Heap {
			out = append(out, a)
		}
	}
	return out
}

// heaps returns the heap arrays.
func (p *Prog) heaps() []Array {
	var out []Array
	for _, a := range p.Arrays {
		if a.Heap {
			out = append(out, a)
		}
	}
	return out
}

// ctx carries the generation context: what is nameable at the current
// program point.
type ctx struct {
	vars []string // in-scope int variables (readable)
	// mut is the assignable subset of vars: loop induction variables are
	// readable but never assignment targets, otherwise a `i += negative`
	// mutation turns a bounded loop into a non-terminating one.
	mut    []string
	arrays []Array  // indexable arrays (helpers cannot see heap locals)
	funcs  []string // callable helpers (no recursion: only earlier ones)
	depth  int      // call-nesting depth limiter during expr generation
}

func pick(r *rand.Rand, ss []string) string { return ss[r.Intn(len(ss))] }

// genExpr builds a random expression of depth at most d.
func (p *Prog) genExpr(r *rand.Rand, c *ctx, d int) *Expr {
	if d <= 0 {
		// Terminal: constants and variables only, so expression depth —
		// and with it the compiler's temporary pressure — stays bounded.
		if r.Intn(2) == 0 || len(c.vars) == 0 {
			return &Expr{Kind: Const, K: int64(r.Intn(100) - 50)}
		}
		return &Expr{Kind: VarRef, Name: pick(r, c.vars)}
	}
	if r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return &Expr{Kind: Const, K: int64(r.Intn(100) - 50)}
		case 1:
			if len(c.vars) > 0 {
				return &Expr{Kind: VarRef, Name: pick(r, c.vars)}
			}
			return &Expr{Kind: Const, K: 7}
		case 2:
			if len(c.arrays) > 0 {
				a := c.arrays[r.Intn(len(c.arrays))]
				return &Expr{Kind: Index, Name: a.Name, K: a.Size - 1,
					X: p.genExpr(r, c, d-1)}
			}
			return &Expr{Kind: Const, K: 3}
		default:
			if len(c.funcs) > 0 && c.depth < 2 {
				c.depth++
				e := &Expr{Kind: Call, Name: pick(r, c.funcs),
					X: p.genExpr(r, c, d-1)}
				c.depth--
				return e
			}
			return &Expr{Kind: Const, K: 11}
		}
	}
	x, y := p.genExpr(r, c, d-1), p.genExpr(r, c, d-1)
	switch r.Intn(10) {
	case 0:
		return &Expr{Kind: Add, X: x, Y: y}
	case 1:
		return &Expr{Kind: Sub, X: x, Y: y}
	case 2:
		return &Expr{Kind: MulMask, X: x, Y: y}
	case 3:
		return &Expr{Kind: DivSafe, X: x, Y: y}
	case 4:
		return &Expr{Kind: ModSafe, X: x, Y: y}
	case 5:
		return &Expr{Kind: Xor, X: x, Y: y}
	case 6:
		return &Expr{Kind: Or, X: x, Y: y}
	case 7:
		return &Expr{Kind: And, X: x, Y: y}
	case 8:
		return &Expr{Kind: Shl, X: x, K: int64(r.Intn(4))}
	default:
		return &Expr{Kind: Less, X: x, Y: y}
	}
}

// genStmt builds one random statement; d bounds control-flow nesting.
// Declared variables are appended to c.vars (callers manage block scope).
func (p *Prog) genStmt(r *rand.Rand, c *ctx, d int) *Stmt {
	switch r.Intn(6) {
	case 0: // new variable
		p.nextID++
		name := fmt.Sprintf("v%d", p.nextID)
		s := &Stmt{Kind: Decl, Name: name, Val: p.genExpr(r, c, 2)}
		c.vars = append(c.vars, name)
		c.mut = append(c.mut, name)
		return s
	case 1: // assignment
		if len(c.mut) > 0 {
			return &Stmt{Kind: Assign, Name: pick(r, c.mut), Val: p.genExpr(r, c, 2)}
		}
	case 2: // array store
		if len(c.arrays) > 0 {
			a := c.arrays[r.Intn(len(c.arrays))]
			return &Stmt{Kind: Store, Name: a.Name, Mask: a.Size - 1,
				Idx: p.genExpr(r, c, 1), Val: p.genExpr(r, c, 2)}
		}
	case 3: // if/else
		if d > 0 {
			n, nm := len(c.vars), len(c.mut)
			s := &Stmt{Kind: If, Cond: p.genExpr(r, c, 1)}
			if t := p.genStmt(r, c, d-1); t != nil {
				s.Then = append(s.Then, *t)
			}
			c.vars, c.mut = c.vars[:n], c.mut[:nm] // block scope ends
			if e := p.genStmt(r, c, d-1); e != nil {
				s.Else = append(s.Else, *e)
			}
			c.vars, c.mut = c.vars[:n], c.mut[:nm]
			if len(s.Then) == 0 && len(s.Else) == 0 {
				return nil
			}
			return s
		}
	case 4: // bounded for loop
		if d > 0 {
			n, nm := len(c.vars), len(c.mut)
			p.nextID++
			iv := fmt.Sprintf("i%d", p.nextID)
			s := &Stmt{Kind: For, Name: iv, Trip: 3 + r.Intn(6)}
			c.vars = append(c.vars, iv) // readable, deliberately not in mut
			if b := p.genStmt(r, c, d-1); b != nil {
				s.Body = append(s.Body, *b)
			}
			c.vars, c.mut = c.vars[:n], c.mut[:nm] // loop scope ends
			if len(s.Body) == 0 {
				return nil
			}
			return s
		}
	default: // accumulate into a variable
		if len(c.mut) > 0 {
			return &Stmt{Kind: AddAssign, Name: pick(r, c.mut), Val: p.genExpr(r, c, 2)}
		}
	}
	return nil
}

// New generates a random safe program from r.
func New(r *rand.Rand) *Prog {
	p := &Prog{}
	// Global arrays.
	nArr := 1 + r.Intn(2)
	for i := 0; i < nArr; i++ {
		size := int64(1) << (3 + r.Intn(3)) // 8..32
		p.Arrays = append(p.Arrays, Array{Name: fmt.Sprintf("g%d", i), Size: size})
	}
	// Heap arrays (always at least one, so bug planting has a target).
	nHeap := 1 + r.Intn(2)
	for i := 0; i < nHeap; i++ {
		size := int64(1) << (3 + r.Intn(2)) // 8..16
		p.Arrays = append(p.Arrays, Array{Name: fmt.Sprintf("h%d", i),
			Size: size, Heap: true, AllocElems: size})
	}
	// Helper functions: can see globals and earlier helpers only; bodies
	// stay loop-free so call trees cannot multiply loop trip counts.
	nFn := 1 + r.Intn(3)
	for i := 0; i < nFn; i++ {
		fn := Fn{Name: fmt.Sprintf("f%d", i)}
		c := &ctx{vars: []string{"x"}, mut: []string{"x"},
			arrays: p.globals(), funcs: funcNames(p.Funcs)}
		for s := 0; s < 1+r.Intn(3); s++ {
			if st := p.genStmt(r, c, 0); st != nil {
				fn.Body = append(fn.Body, *st)
			}
		}
		fn.Ret = p.genExpr(r, c, 2)
		p.Funcs = append(p.Funcs, fn)
	}
	// main: sees everything.
	c := &ctx{vars: []string{"acc"}, mut: []string{"acc"},
		arrays: p.Arrays, funcs: funcNames(p.Funcs)}
	for s := 0; s < 3+r.Intn(3); s++ {
		if st := p.genStmt(r, c, 2); st != nil {
			p.Main = append(p.Main, *st)
		}
	}
	return p
}

func funcNames(fns []Fn) []string {
	var out []string
	for _, f := range fns {
		out = append(out, f.Name)
	}
	return out
}

// Render emits the program as MiniC source.
func (p *Prog) Render() string {
	var b strings.Builder
	for _, a := range p.globals() {
		fmt.Fprintf(&b, "int %s[%d];\n", a.Name, a.Size)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "int %s(int x) {\n", f.Name)
		renderStmts(&b, f.Body, "    ")
		fmt.Fprintf(&b, "    return %s;\n}\n", f.Ret.Render())
	}
	fmt.Fprintf(&b, "int main() {\n")
	for _, a := range p.heaps() {
		fmt.Fprintf(&b, "    int *%s = malloc(%d);\n", a.Name, 8*a.AllocElems)
	}
	// Zero-fill every heap array before use: fresh allocations start
	// undefined under the definedness shadow, and safe programs must stay
	// silent under JMSan just as they do under JASan. Planted
	// uninitialized-read arrays (Uninit) deliberately skip the fill.
	for _, a := range p.heaps() {
		if a.Uninit {
			continue
		}
		iv := "zi" + a.Name
		fmt.Fprintf(&b, "    for (int %s = 0; %s < %d; %s++) { %s[%s] = 0; }\n",
			iv, iv, a.AllocElems, iv, a.Name, iv)
	}
	fmt.Fprintf(&b, "    int acc = 1;\n")
	renderStmts(&b, p.Main, "    ")
	for _, a := range p.heaps() {
		fmt.Fprintf(&b, "    free(%s);\n", a.Name)
	}
	renderStmts(&b, p.PostFree, "    ")
	fmt.Fprintf(&b, "    return (acc ^ (acc >> 3)) & 127;\n}\n")
	return b.String()
}

func renderStmts(b *strings.Builder, ss []Stmt, indent string) {
	for i := range ss {
		ss[i].render(b, indent)
	}
}

func (s *Stmt) render(b *strings.Builder, indent string) {
	switch s.Kind {
	case Decl:
		fmt.Fprintf(b, "%sint %s = %s;\n", indent, s.Name, s.Val.Render())
	case Assign:
		fmt.Fprintf(b, "%s%s = %s;\n", indent, s.Name, s.Val.Render())
	case AddAssign:
		fmt.Fprintf(b, "%s%s += %s;\n", indent, s.Name, s.Val.Render())
	case Store:
		fmt.Fprintf(b, "%s%s[(%s) & %d] = %s;\n",
			indent, s.Name, s.Idx.Render(), s.Mask, s.Val.Render())
	case RawStore:
		fmt.Fprintf(b, "%s%s[%d] = %s;\n", indent, s.Name, s.K, s.Val.Render())
	case RawFree:
		// Planted double free: only rendered into PostFree, after the
		// epilogue already freed every heap array once.
		fmt.Fprintf(b, "%sfree(%s);\n", indent, s.Name)
	case RawLoad:
		// Planted uninitialized read: both indices (K and Mask double as
		// the two raw element indices) load never-written slots, and both
		// loads feed the comparison — a definedness sink — on every
		// execution, whichever way the branch goes. Only planted into
		// main, where `acc` is always in scope.
		fmt.Fprintf(b, "%sif (%s[%d] < %s[%d]) { acc += 1; } else { acc += 3; }\n",
			indent, s.Name, s.K, s.Name, s.Mask)
	case If:
		fmt.Fprintf(b, "%sif (%s) {\n", indent, s.Cond.Render())
		renderStmts(b, s.Then, indent+"    ")
		fmt.Fprintf(b, "%s} else {\n", indent)
		renderStmts(b, s.Else, indent+"    ")
		fmt.Fprintf(b, "%s}\n", indent)
	case For:
		fmt.Fprintf(b, "%sfor (int %s = 0; %s < %d; %s++) {\n",
			indent, s.Name, s.Name, s.Trip, s.Name)
		renderStmts(b, s.Body, indent+"    ")
		fmt.Fprintf(b, "%s}\n", indent)
	}
}

// Render emits the expression as MiniC source.
func (e *Expr) Render() string {
	switch e.Kind {
	case Const:
		return fmt.Sprintf("%d", e.K)
	case VarRef:
		return e.Name
	case Index:
		return fmt.Sprintf("%s[(%s) & %d]", e.Name, e.X.Render(), e.K)
	case Call:
		return fmt.Sprintf("%s(%s)", e.Name, e.X.Render())
	case Add:
		return fmt.Sprintf("(%s + %s)", e.X.Render(), e.Y.Render())
	case Sub:
		return fmt.Sprintf("(%s - %s)", e.X.Render(), e.Y.Render())
	case MulMask:
		return fmt.Sprintf("((%s & 1023) * (%s & 255))", e.X.Render(), e.Y.Render())
	case DivSafe:
		return fmt.Sprintf("(%s / (((%s) & 7) + 1))", e.X.Render(), e.Y.Render())
	case ModSafe:
		return fmt.Sprintf("(%s %% (((%s) & 7) + 2))", e.X.Render(), e.Y.Render())
	case Xor:
		return fmt.Sprintf("(%s ^ %s)", e.X.Render(), e.Y.Render())
	case Or:
		return fmt.Sprintf("(%s | %s)", e.X.Render(), e.Y.Render())
	case And:
		return fmt.Sprintf("(%s & %s)", e.X.Render(), e.Y.Render())
	case Shl:
		return fmt.Sprintf("((%s) << %d)", e.X.Render(), e.K)
	case Less:
		return fmt.Sprintf("(%s < %s)", e.X.Render(), e.Y.Render())
	}
	return "0"
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	q := &Prog{
		Arrays:  append([]Array(nil), p.Arrays...),
		Main:    cloneStmts(p.Main),
		nextID:  p.nextID,
		Planted: append([]string(nil), p.Planted...),
	}
	q.PostFree = cloneStmts(p.PostFree)
	for _, f := range p.Funcs {
		q.Funcs = append(q.Funcs, Fn{Name: f.Name, Body: cloneStmts(f.Body), Ret: f.Ret.clone()})
	}
	return q
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i := range ss {
		s := ss[i]
		s.Idx = s.Idx.clone()
		s.Val = s.Val.clone()
		s.Cond = s.Cond.clone()
		s.Then = cloneStmts(s.Then)
		s.Else = cloneStmts(s.Else)
		s.Body = cloneStmts(s.Body)
		out[i] = s
	}
	return out
}

func (e *Expr) clone() *Expr {
	if e == nil {
		return nil
	}
	c := *e
	c.X = e.X.clone()
	c.Y = e.Y.clone()
	return &c
}

// NumStmts counts statements across the whole program (size control for
// mutation and the minimiser's progress metric).
func (p *Prog) NumStmts() int {
	n := countStmts(p.Main) + countStmts(p.PostFree)
	for _, f := range p.Funcs {
		n += countStmts(f.Body)
	}
	return n
}

func countStmts(ss []Stmt) int {
	n := 0
	for i := range ss {
		n++
		n += countStmts(ss[i].Then) + countStmts(ss[i].Else) + countStmts(ss[i].Body)
	}
	return n
}
