package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"

	"repro/internal/fuzz/gen"
	"repro/internal/metrics"
)

// Entry is one retained corpus seed. Exactly one of Prog (domain A) or
// Data (domain B) is set.
type Entry struct {
	ID   string
	Prog *gen.Prog
	Data []byte
	// Cov is the coverage the entry's run observed.
	Cov *metrics.Bitmap
	// NewBits is how many global-coverage bits the entry contributed when
	// admitted — the dominant term of its scheduling energy.
	NewBits int
	// Size is the entry's size in scheduling units (statements for
	// programs, 64-byte chunks for module images).
	Size int
	// Picks counts times the scheduler selected the entry as a parent;
	// energy decays with it so the whole corpus gets attention.
	Picks int
}

// EntryID names an input by content.
func EntryID(content []byte) string {
	h := sha256.Sum256(content)
	return hex.EncodeToString(h[:8])
}

// Corpus is the novelty-gated seed pool of one fuzzing domain.
type Corpus struct {
	Entries []*Entry
	// Global is the union coverage over all admitted entries.
	Global *metrics.Bitmap
	// Adds counts admissions; Rejects counts novelty-gate rejections.
	Adds, Rejects int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{Global: &metrics.Bitmap{}}
}

// Add admits e if it covers anything the corpus has not seen (novelty
// gate), or unconditionally when force is set (initial seeds). It reports
// whether the entry was admitted.
func (c *Corpus) Add(e *Entry, force bool) bool {
	nb := c.Global.NewBits(e.Cov)
	if nb == 0 && !force {
		c.Rejects++
		return false
	}
	e.NewBits = nb
	c.Global.Merge(e.Cov)
	c.Entries = append(c.Entries, e)
	c.Adds++
	return true
}

// energy is the integer scheduling weight: novelty dominates, small inputs
// get a bonus, repeatedly-picked entries decay.
func energy(e *Entry) int {
	nb := e.NewBits
	if nb > 32 {
		nb = 32
	}
	en := 2 + 4*nb
	if e.Size < 16 {
		en += 16 - e.Size
	}
	en = en / (1 + e.Picks/8)
	if en < 1 {
		en = 1
	}
	return en
}

// Pick selects a parent entry, weighted by energy, and charges the pick.
// The corpus must be non-empty.
func (c *Corpus) Pick(r *rand.Rand) *Entry {
	total := 0
	for _, e := range c.Entries {
		total += energy(e)
	}
	t := r.Intn(total)
	for _, e := range c.Entries {
		t -= energy(e)
		if t < 0 {
			e.Picks++
			return e
		}
	}
	e := c.Entries[len(c.Entries)-1]
	e.Picks++
	return e
}
